# Minimal bare-metal LBP program: store 42 and exit (Figure 6 protocol).
main:
	la a0, out
	li a1, 42
	sw a1, 0(a0)
	li ra, 0
	li t0, -1
	p_ret
	.data
out:
	.word 0
