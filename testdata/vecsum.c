/* Sample Deterministic OpenMP program: parallel vector sum with a
   reduction over the backward line. Used by the CLI tests and as a
   starting point for experiments (see README). */
#include <det_omp.h>
#define NUM_HART 8
#define N 64

int data[N] = {[0 ... 63] = 2};
int total;

void main() {
	int t;
	omp_set_num_threads(NUM_HART);
	total = 0;
	#pragma omp parallel for reduction(+:total)
	for (t = 0; t < NUM_HART; t++) {
		int i;
		int *p;
		p = data + t * (N / NUM_HART);
		for (i = 0; i < N / NUM_HART; i++) {
			total += *p;
			p = p + 1;
		}
	}
}
