package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// echoHandler implements the test server: "echo" returns its params,
// "refuse" returns a *Error, "notify" pushes k notifications back,
// "hang" blocks until its connection context cancels.
type echoHandler struct {
	hung chan struct{} // receives once hang observes its cancel
}

func (h *echoHandler) ServeRPC(ctx context.Context, conn *ServerConn, method string, params json.RawMessage) (any, error) {
	switch method {
	case "echo":
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
		}
		return v, nil
	case "refuse":
		return nil, &Error{Code: 42, Message: "on principle"}
	case "boom":
		return nil, errors.New("handler exploded")
	case "notify":
		var n int
		if err := json.Unmarshal(params, &n); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := conn.Notify("tick", i); err != nil {
				return nil, err
			}
		}
		return n, nil
	case "hang":
		<-ctx.Done()
		if h.hung != nil {
			h.hung <- struct{}{}
		}
		return nil, ctx.Err()
	}
	return nil, &Error{Code: CodeMethodNotFound, Message: method}
}

// startServer boots a server on an ephemeral port and returns its
// address; cleanup closes it.
func startServer(t *testing.T, h Handler) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

func TestCallRoundTrip(t *testing.T) {
	addr, _ := startServer(t, &echoHandler{})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var got map[string]any
	if err := c.Call(context.Background(), "echo", map[string]any{"x": "y"}, &got); err != nil {
		t.Fatal(err)
	}
	if got["x"] != "y" {
		t.Errorf("echo returned %v, want x=y", got)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	addr, _ := startServer(t, &echoHandler{})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const calls = 32
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var got map[string]any
			params := map[string]any{"i": fmt.Sprint(i)}
			if err := c.Call(context.Background(), "echo", params, &got); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if got["i"] != fmt.Sprint(i) {
				t.Errorf("call %d got %v: responses crossed", i, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestRemoteErrorIsTerminal(t *testing.T) {
	addr, _ := startServer(t, &echoHandler{})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Call(context.Background(), "refuse", nil, nil)
	var re *Error
	if !errors.As(err, &re) || re.Code != 42 {
		t.Fatalf("refuse returned %v, want *Error code 42", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Error("a remote refusal must not look like a transport death")
	}
	// A plain handler error maps to CodeInternal and the connection
	// stays usable.
	err = c.Call(context.Background(), "boom", nil, nil)
	if !errors.As(err, &re) || re.Code != CodeInternal {
		t.Fatalf("boom returned %v, want CodeInternal", err)
	}
	if err := c.Call(context.Background(), "echo", map[string]any{}, nil); err != nil {
		t.Fatalf("connection unusable after a remote error: %v", err)
	}
}

func TestNotificationsDuringCall(t *testing.T) {
	addr, _ := startServer(t, &echoHandler{})
	var mu sync.Mutex
	var ticks []int
	c, err := Dial(addr, func(method string, params json.RawMessage) {
		if method != "tick" {
			t.Errorf("unexpected notification %q", method)
			return
		}
		var i int
		if err := json.Unmarshal(params, &i); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		ticks = append(ticks, i)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var n int
	if err := c.Call(context.Background(), "notify", 5, &n); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("notify result = %d, want 5", n)
	}
	// The notifications were written before the response on the same
	// ordered stream, so they have all been handled by now.
	mu.Lock()
	defer mu.Unlock()
	if len(ticks) != 5 {
		t.Fatalf("received %d notifications, want 5 (%v)", len(ticks), ticks)
	}
	for i, v := range ticks {
		if v != i {
			t.Errorf("tick %d = %d: notifications reordered", i, v)
		}
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	h := &echoHandler{hung: make(chan struct{}, 1)}
	addr, srv := startServer(t, h)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	errc := make(chan error, 1)
	go func() { errc <- c.Call(context.Background(), "hang", nil, nil) }()
	time.Sleep(10 * time.Millisecond) // let the call reach the handler
	srv.Close()

	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("pending call returned %v, want ErrClosed", err)
	}
	// The handler's context cancels, so the worker-side job unwinds.
	select {
	case <-h.hung:
	case <-time.After(5 * time.Second):
		t.Fatal("handler context never canceled after server close")
	}
	// New calls on the dead connection refuse immediately.
	if err := c.Call(context.Background(), "echo", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call on dead connection returned %v, want ErrClosed", err)
	}
	select {
	case <-c.Closed():
	default:
		t.Error("Closed() not signaled after transport death")
	}
}

func TestCallContextCancel(t *testing.T) {
	addr, _ := startServer(t, &echoHandler{})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.Call(ctx, "hang", nil, nil) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled call returned %v, want context.Canceled", err)
	}
	// The connection survives an abandoned call.
	if err := c.Call(context.Background(), "echo", map[string]any{}, nil); err != nil {
		t.Fatalf("connection unusable after abandoned call: %v", err)
	}
}

func TestClientNotification(t *testing.T) {
	// Client-to-server notifications dispatch to the handler with no
	// reply; observable via a follow-up call ordering on the stream.
	got := make(chan string, 1)
	h := handlerFunc(func(ctx context.Context, conn *ServerConn, method string, params json.RawMessage) (any, error) {
		if method == "note" {
			var s string
			json.Unmarshal(params, &s)
			got <- s
			return nil, nil
		}
		return "ok", nil
	})
	addr, _ := startServer(t, h)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Notify("note", "hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "hello" {
			t.Errorf("notification carried %q, want hello", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notification never reached the handler")
	}
}

// handlerFunc adapts a function to Handler.
type handlerFunc func(ctx context.Context, conn *ServerConn, method string, params json.RawMessage) (any, error)

func (f handlerFunc) ServeRPC(ctx context.Context, conn *ServerConn, method string, params json.RawMessage) (any, error) {
	return f(ctx, conn, method, params)
}
