// Package rpc is the wire protocol between a coordinator lbp-serve and
// its worker backends: a minimal JSON-RPC 2.0 peer over a stream
// transport, newline-delimited JSON frames on a TCP connection.
//
// The shape follows the classic bidirectional JSON-RPC split:
//
//   - The client (coordinator side) issues calls — Call multiplexes any
//     number of concurrent requests over one connection by id — and
//     receives server-initiated notifications (requests without an id),
//     which carry mid-job progress such as streamed checkpoints.
//   - The server (worker side) dispatches each incoming call to a
//     Handler in its own goroutine and can push notifications back over
//     the same connection while a call is still pending.
//
// Failure semantics are deliberately coarse, because the dispatch layer
// above needs exactly one distinction: a *Error return means the remote
// handler ran and refused (terminal — retrying elsewhere would fail the
// same way), while any other error means the transport died (the peer
// may never have seen, or may still be running, the request — the
// caller decides whether to re-dispatch). ErrClosed wraps every
// transport-death path so callers can errors.Is for it.
package rpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// message is one JSON-RPC frame: a request (Method set, ID set), a
// notification (Method set, ID nil) or a response (Method empty).
type message struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      *uint64         `json:"id,omitempty"`
	Method  string          `json:"method,omitempty"`
	Params  json.RawMessage `json:"params,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *Error          `json:"error,omitempty"`
}

// Error is a remote handler's refusal: the request was delivered and
// answered, and the answer is "no". It is terminal — unlike a transport
// error, retrying the call on another connection would refuse again.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("rpc: remote error %d: %s", e.Code, e.Message) }

// JSON-RPC 2.0 predefined error codes (the subset this repo uses).
const (
	CodeParse          = -32700
	CodeInvalidRequest = -32600
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeInternal       = -32603
)

// ErrClosed reports that the connection died with the call outstanding:
// the remote may or may not have processed it.
var ErrClosed = errors.New("rpc: connection closed")

// writeMessage sends one frame. The encoder owns framing (Encode
// appends the newline); enc must be guarded by the caller's mutex.
func writeMessage(enc *json.Encoder, m *message) error {
	m.JSONRPC = "2.0"
	return enc.Encode(m)
}

// Conn is the client side of one connection. It is safe for concurrent
// use: any number of goroutines may Call at once.
type Conn struct {
	c   net.Conn
	enc *json.Encoder
	wmu sync.Mutex // serializes frame writes

	mu     sync.Mutex
	calls  map[uint64]chan *message
	nextID uint64
	err    error // set once the read loop exits
	closed chan struct{}

	notify func(method string, params json.RawMessage)
}

// Dial connects to a server. The notify callback, when non-nil,
// receives server-initiated notifications; it runs on the read loop, so
// it must not block (hand off long work to another goroutine).
func Dial(addr string, notify func(method string, params json.RawMessage)) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc, notify), nil
}

// NewConn wraps an established transport as a client connection.
func NewConn(nc net.Conn, notify func(method string, params json.RawMessage)) *Conn {
	c := &Conn{
		c:      nc,
		enc:    json.NewEncoder(nc),
		calls:  make(map[uint64]chan *message),
		closed: make(chan struct{}),
		notify: notify,
	}
	go c.readLoop()
	return c
}

// readLoop demultiplexes responses to their pending calls and routes
// notifications to the handler, until the transport dies.
func (c *Conn) readLoop() {
	dec := json.NewDecoder(bufio.NewReader(c.c))
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			c.fail(err)
			return
		}
		switch {
		case m.Method != "" && m.ID == nil:
			if c.notify != nil {
				c.notify(m.Method, m.Params)
			}
		case m.Method == "" && m.ID != nil:
			c.mu.Lock()
			ch := c.calls[*m.ID]
			delete(c.calls, *m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- &m
			}
		default:
			// A server calling methods on us is outside this protocol;
			// drop the frame rather than wedge the connection.
		}
	}
}

// fail marks the connection dead and wakes every pending call.
func (c *Conn) fail(cause error) {
	c.mu.Lock()
	if c.err == nil {
		if cause == nil || errors.Is(cause, io.EOF) {
			c.err = ErrClosed
		} else {
			c.err = fmt.Errorf("%w: %v", ErrClosed, cause)
		}
		close(c.closed)
	}
	pending := c.calls
	c.calls = make(map[uint64]chan *message)
	c.mu.Unlock()
	c.c.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// Close tears down the connection; pending calls return ErrClosed.
func (c *Conn) Close() error {
	c.fail(nil)
	return nil
}

// Err returns the terminal connection error, nil while it is alive.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Closed is closed once the connection has died.
func (c *Conn) Closed() <-chan struct{} { return c.closed }

// Call invokes method on the peer and decodes the result into result
// (which may be nil to discard it). A *Error return is the remote
// handler's refusal; any other error wraps ErrClosed (transport death)
// or is the context's. On ctx expiry the call is abandoned — the remote
// may still be running it; protocol-level cancellation is the caller's
// business (see dispatch's cancel notifications).
func (c *Conn) Call(ctx context.Context, method string, params, result any) error {
	raw, err := marshalParams(params)
	if err != nil {
		return err
	}
	ch := make(chan *message, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.calls[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err = writeMessage(c.enc, &message{ID: &id, Method: method, Params: raw})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		c.fail(err)
		return fmt.Errorf("%w: %v", ErrClosed, err)
	}

	select {
	case m, ok := <-ch:
		if !ok {
			return c.Err()
		}
		if m.Error != nil {
			return m.Error
		}
		if result != nil && len(m.Result) > 0 {
			if err := json.Unmarshal(m.Result, result); err != nil {
				return fmt.Errorf("rpc: decoding %s result: %w", method, err)
			}
		}
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// Notify sends a fire-and-forget notification to the peer.
func (c *Conn) Notify(method string, params any) error {
	raw, err := marshalParams(params)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeMessage(c.enc, &message{Method: method, Params: raw}); err != nil {
		return fmt.Errorf("%w: %v", ErrClosed, err)
	}
	return nil
}

func marshalParams(params any) (json.RawMessage, error) {
	if params == nil {
		return nil, nil
	}
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, fmt.Errorf("rpc: encoding params: %w", err)
	}
	return raw, nil
}

// Handler dispatches one incoming call. The returned value is encoded
// as the result; a *Error return travels verbatim, any other error
// becomes a CodeInternal *Error. ctx is canceled when the connection
// dies, so long-running handlers stop working for a peer that will
// never read the answer.
type Handler interface {
	ServeRPC(ctx context.Context, conn *ServerConn, method string, params json.RawMessage) (any, error)
}

// ServerConn is the server's end of one client connection; handlers use
// it to push notifications while calls are in flight.
type ServerConn struct {
	c   net.Conn
	enc *json.Encoder
	wmu sync.Mutex
}

// Notify pushes a notification to the connected client.
func (sc *ServerConn) Notify(method string, params any) error {
	raw, err := marshalParams(params)
	if err != nil {
		return err
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if err := writeMessage(sc.enc, &message{Method: method, Params: raw}); err != nil {
		return fmt.Errorf("%w: %v", ErrClosed, err)
	}
	return nil
}

func (sc *ServerConn) reply(id uint64, result any, err error) error {
	m := &message{ID: &id}
	if err != nil {
		var re *Error
		if !errors.As(err, &re) {
			re = &Error{Code: CodeInternal, Message: err.Error()}
		}
		m.Error = re
	} else {
		raw, err := json.Marshal(result)
		if err != nil {
			m.Error = &Error{Code: CodeInternal, Message: fmt.Sprintf("encoding result: %v", err)}
		} else {
			m.Result = raw
		}
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	return writeMessage(sc.enc, m)
}

// Server accepts connections and serves calls on each.
type Server struct {
	h Handler

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  bool
}

// NewServer builds a server around a handler; start it with Serve.
func NewServer(h Handler) *Server { return &Server{h: h, conns: make(map[net.Conn]struct{})} }

// Serve accepts connections on l until Close. It always returns a
// non-nil error; after Close that error is net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			nc.Close()
			return net.ErrClosed
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// Close stops accepting and severs every live connection (in-flight
// handler contexts cancel).
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	return nil
}

// serveConn reads calls from one client and dispatches each to the
// handler in its own goroutine, so a long-running job never blocks a
// health probe on the same connection.
func (s *Server) serveConn(nc net.Conn) {
	ctx, cancel := context.WithCancel(context.Background())
	sc := &ServerConn{c: nc, enc: json.NewEncoder(nc)}
	dec := json.NewDecoder(bufio.NewReader(nc))
	var wg sync.WaitGroup
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			break
		}
		if m.Method == "" {
			continue // a stray response; nothing to do with it
		}
		wg.Add(1)
		go func(m message) {
			defer wg.Done()
			res, err := s.h.ServeRPC(ctx, sc, m.Method, m.Params)
			if m.ID != nil {
				_ = sc.reply(*m.ID, res, err)
			}
		}(m)
	}
	cancel()
	nc.Close()
	wg.Wait()
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}
