package workloads

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/trace"
)

// buildSensors assembles the fusion program and attaches devices with the
// given per-round arrival cycles (one slice per sensor).
func buildSensors(t *testing.T, rounds int, arrivals [4][]lbp.SensorEvent) (*lbp.Machine, *lbp.Actuator) {
	t.Helper()
	src := SensorFusionSource(rounds)
	asmText, err := cc.BuildProgram(src, cc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := lbp.New(lbp.DefaultConfig(1))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	sflag, sval := prog.Symbols["sflag"], prog.Symbols["sval"]
	for i := 0; i < 4; i++ {
		m.AddDevice(&lbp.Sensor{
			Name:      "sensor",
			ValueAddr: sval + uint32(4*i),
			FlagAddr:  sflag + uint32(4*i),
			Events:    arrivals[i],
		})
	}
	act := &lbp.Actuator{
		Name:      "actuator",
		ValueAddr: prog.Symbols["factuator"],
		SeqAddr:   prog.Symbols["aseq"],
	}
	m.AddDevice(act)
	return m, act
}

func arrivalsAt(base uint64, vals [4]uint32) [4][]lbp.SensorEvent {
	var out [4][]lbp.SensorEvent
	for i := 0; i < 4; i++ {
		out[i] = []lbp.SensorEvent{{Cycle: base + uint64(i*37), Value: vals[i]}}
	}
	return out
}

func TestSensorFusion(t *testing.T) {
	m, act := buildSensors(t, 1, arrivalsAt(500, [4]uint32{10, 20, 30, 40}))
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if len(act.Writes) != 1 {
		t.Fatalf("actuator writes: %+v", act.Writes)
	}
	if act.Writes[0].Value != 25 {
		t.Errorf("fusion = %d, want 25", act.Writes[0].Value)
	}
}

func TestSensorFusionOrderIndependent(t *testing.T) {
	// Sensors responding in a different (reversed) order produce the same
	// fused value: the static code position fixes the semantics.
	rev := [4][]lbp.SensorEvent{}
	vals := [4]uint32{10, 20, 30, 40}
	for i := 0; i < 4; i++ {
		rev[i] = []lbp.SensorEvent{{Cycle: 500 + uint64((3-i)*211), Value: vals[i]}}
	}
	m, act := buildSensors(t, 1, rev)
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if len(act.Writes) != 1 || act.Writes[0].Value != 25 {
		t.Errorf("fusion under reversed arrivals: %+v", act.Writes)
	}
}

func TestSensorFusionMultiRound(t *testing.T) {
	var arr [4][]lbp.SensorEvent
	for i := 0; i < 4; i++ {
		arr[i] = []lbp.SensorEvent{
			{Cycle: 400 + uint64(i*13), Value: uint32(i)},
			{Cycle: 30000 + uint64(i*31), Value: uint32(10 * (i + 1))},
		}
	}
	m, act := buildSensors(t, 2, arr)
	if _, err := m.Run(4_000_000); err != nil {
		t.Fatal(err)
	}
	if len(act.Writes) != 2 {
		t.Fatalf("writes: %+v", act.Writes)
	}
	if act.Writes[0].Value != (0+1+2+3)/4 {
		t.Errorf("round 0 fusion = %d", act.Writes[0].Value)
	}
	if act.Writes[1].Value != (10+20+30+40)/4 {
		t.Errorf("round 1 fusion = %d", act.Writes[1].Value)
	}
}

// Same input schedule -> identical event digests (cycle determinism with
// external inputs); different schedules -> same result, different cycles.
func TestSensorDeterminism(t *testing.T) {
	run := func(base uint64) (uint64, uint64, uint32) {
		m, act := buildSensors(t, 1, arrivalsAt(base, [4]uint32{4, 8, 12, 16}))
		rec := trace.New(0)
		m.SetTrace(rec)
		res, err := m.Run(2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rec.Digest(), res.Stats.Cycles, act.Writes[0].Value
	}
	d1, c1, v1 := run(600)
	d2, c2, v2 := run(600)
	d3, c3, v3 := run(2600)
	if d1 != d2 || c1 != c2 {
		t.Error("identical schedules must reproduce the run exactly")
	}
	if v1 != v2 || v1 != v3 || v1 != 10 {
		t.Errorf("fused values: %d %d %d, want 10", v1, v2, v3)
	}
	if c3 <= c1 {
		t.Errorf("later inputs must lengthen the run (%d vs %d)", c3, c1)
	}
	_ = d3
}
