package workloads

import "fmt"

// SensorFusionSource generates the Figure 16 program: `rounds` iterations
// of a parallel-sections team in which four harts each poll one sensor
// port, followed by a sequential fusion written to the actuator. The
// sensors may respond in any (non-deterministic) order; the static
// position of the reads fixes the semantics, so the fused output is
// deterministic even though the run's cycle count is not.
//
// The machine-side devices (lbp.Sensor, lbp.Actuator) attach to the
// sflag/sval and factuator/aseq globals; resolve their addresses from the
// assembled program's symbol table.
func SensorFusionSource(rounds int) string {
	return fmt.Sprintf(`/* sensor fusion, Figure 16 */
#include <det_omp.h>
#define ROUNDS %d

int sflag[4];
int sval[4];
int s[4];
int round;
int factuator;
int aseq;

void get_sensor(int i) {
	while (lbp_poll(&sflag[i]) <= round) {}
	s[i] = sval[i];
}

void main() {
	for (round = 0; round < ROUNDS; round++) {
		#pragma omp parallel sections
		{
			#pragma omp section
			get_sensor(0);
			#pragma omp section
			get_sensor(1);
			#pragma omp section
			get_sensor(2);
			#pragma omp section
			get_sensor(3);
		}
		factuator = (s[0] + s[1] + s[2] + s[3]) / 4;
		aseq = round + 1;
	}
}
`, rounds)
}
