package workloads

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
)

// BuildMatmul compiles and assembles a matmul variant for h harts,
// targeting an h/4-core machine.
func BuildMatmul(v MatmulVariant, h int) (*asm.Program, error) {
	src, err := MatmulSource(v, h)
	if err != nil {
		return nil, err
	}
	opt := cc.DefaultOptions()
	opt.Cores = h / 4
	opt.SharedBankBytes = SharedBankBytes(h)
	opt.BankReserveBytes = 4 * reserveWords
	asmText, err := cc.BuildProgram(src, opt)
	if err != nil {
		return nil, fmt.Errorf("workloads: compile %s/%d: %w", v, h, err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		return nil, fmt.Errorf("workloads: assemble %s/%d: %w", v, h, err)
	}
	return prog, nil
}

// MatmulConfig is the machine configuration matching BuildMatmul:
// h/4 cores with the experiment's shared bank size. Machines are built
// from it through the internal/sim session layer.
func MatmulConfig(h int) lbp.Config {
	cfg := lbp.DefaultConfig(h / 4)
	cfg.Mem.SharedBytes = SharedBankBytes(h)
	return cfg
}

// MaxMatmulCycles bounds a matmul run generously.
func MaxMatmulCycles(h int) uint64 {
	n := uint64(h)
	return 2000*n*n*n/2 + 1_000_000
}

// VerifyMatmul checks Z == h/2 everywhere after a run.
func VerifyMatmul(m *lbp.Machine, p *asm.Program, v MatmulVariant, h int) error {
	want := uint32(h / 2)
	read := func(addr uint32) (uint32, error) {
		val, ok := m.ReadShared(addr)
		if !ok {
			return 0, fmt.Errorf("workloads: unmapped Z address %#x", addr)
		}
		return val, nil
	}
	switch v {
	case Base, Copy:
		z, ok := p.Symbols["Z"]
		if !ok {
			return fmt.Errorf("workloads: no Z symbol")
		}
		for i := 0; i < h*h; i++ {
			val, err := read(z + uint32(4*i))
			if err != nil {
				return err
			}
			if val != want {
				return fmt.Errorf("workloads: %s/%d: Z[%d] = %d, want %d", v, h, i, val, want)
			}
		}
	default:
		// distributed layout: line i of Z in bank i/4
		bankBytes := m.Config().Mem.SharedBytes
		for i := 0; i < h; i++ {
			base := 0x80000000 + uint32(i/4)*bankBytes +
				4*uint32(reserveWords+4*h+(i%4)*h)
			for j := 0; j < h; j++ {
				val, err := read(base + uint32(4*j))
				if err != nil {
					return err
				}
				if val != want {
					return fmt.Errorf("workloads: %s/%d: Z[%d][%d] = %d, want %d",
						v, h, i, j, val, want)
				}
			}
		}
	}
	return nil
}
