// Package workloads generates the MiniC sources of the paper's benchmark
// programs: the five integer matrix multiplication variants of Section 7
// (base, copy, distributed, distributed+copy, tiled) and the sensor-fusion
// example of Section 6.
//
// Each matmul run multiplies X (h x h/2) with Y (h/2 x h) into Z (h x h),
// where h is the hart count (16, 64 or 256 in the paper); both inputs are
// all-ones, so Z must be h/2 everywhere. One parallel-for iteration (one
// team member, one hart) computes one line — or, for the tiled variant,
// one tile — of Z.
package workloads

import (
	"fmt"
	"strings"
)

// MatmulVariant names one of the paper's five program versions.
type MatmulVariant string

// The five versions of Section 7.
const (
	Base        MatmulVariant = "base"
	Copy        MatmulVariant = "copy"
	Distributed MatmulVariant = "distributed"
	DistCopy    MatmulVariant = "d+c"
	Tiled       MatmulVariant = "tiled"
)

// Variants lists all matmul variants in the paper's order.
var Variants = []MatmulVariant{Base, Copy, Distributed, DistCopy, Tiled}

// reserveWords is the per-bank reserve (in words) before __bank data; it
// must match the cc.Options.BankReserveBytes/4 used by BuildMatmul.
const reserveWords = 128

// SharedBankBytes returns the per-core shared bank size used for the
// matmul experiments: 64*h bytes, so that the base version's sequential
// matrices (10*h*h bytes) span most of the machine's banks, as on the
// paper's FPGA memory. h must make this a power of two (16, 64, 256 do).
func SharedBankBytes(h int) uint32 { return uint32(64 * h) }

// isqrt returns the integer square root when exact, else 0.
func isqrt(h int) int {
	for r := 1; r*r <= h; r++ {
		if r*r == h {
			return r
		}
	}
	return 0
}

// MatmulSource generates the MiniC source of a variant for h harts.
// h must be a multiple of 4 with an integer square root for Tiled
// (16, 64, 256 satisfy both).
func MatmulSource(v MatmulVariant, h int) (string, error) {
	if h < 4 || h%4 != 0 {
		return "", fmt.Errorf("workloads: hart count %d must be a positive multiple of 4", h)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "/* %s matrix multiplication, %d harts */\n", v, h)
	b.WriteString("#include <det_omp.h>\n")
	fmt.Fprintf(&b, "#define H %d\n", h)
	fmt.Fprintf(&b, "#define COLX %d\n", h/2)
	fmt.Fprintf(&b, "#define RESW %d\n", reserveWords)
	switch v {
	case Base:
		b.WriteString(baseSource(false))
	case Copy:
		b.WriteString(baseSource(true))
	case Distributed, DistCopy:
		b.WriteString(bankArrays(h))
		b.WriteString(distributedSource(v == DistCopy))
	case Tiled:
		r := isqrt(h)
		if r == 0 {
			return "", fmt.Errorf("workloads: tiled needs a square hart count, got %d", h)
		}
		fmt.Fprintf(&b, "#define TS %d\n", r)   // tile side
		fmt.Fprintf(&b, "#define TK %d\n", r/2) // k-tile depth
		b.WriteString(bankArrays(h))
		b.WriteString(tiledSource())
	default:
		return "", fmt.Errorf("workloads: unknown variant %q", v)
	}
	return b.String(), nil
}

// baseSource is the Figure 18 program: global matrices placed sequentially
// from the shared base; each hart computes one line of Z with the
// j-outer / k-inner loop. withCopy first copies the X line to the hart's
// local stack (the "copy" version).
func baseSource(withCopy bool) string {
	copyDecl, copyLoop, xBase := "", "", "x0"
	if withCopy {
		copyDecl = "\tint xl[COLX];\n"
		copyLoop = `	px = x0;
	for (k = 0; k < COLX; k++) { xl[k] = *px; px = px + 1; }
`
		xBase = "xl"
	}
	return `
int X[H*COLX] = {[0 ... H*COLX-1] = 1};
int Y[COLX*H] = {[0 ... COLX*H-1] = 1};
int Z[H*H];

void thread(int t) {
	int j; int k; int tmp;
	int *px; int *py; int *pz; int *xe;
	int *x0;
` + copyDecl + `	x0 = X + t * COLX;
	pz = Z + t * H;
` + copyLoop + `	for (j = 0; j < H; j++) {
		tmp = 0;
		px = ` + xBase + `;
		xe = ` + xBase + ` + COLX;
		py = Y + j;
		while (px < xe) {
			tmp = tmp + *px * *py;
			px = px + 1;
			py = py + H;
		}
		*pz = tmp;
		pz = pz + 1;
	}
}

void main() {
	int t;
	omp_set_num_threads(H);
	#pragma omp parallel for
	for (t = 0; t < H; t++) thread(t);
}
`
}

// bankArrays declares one initialized data array per shared bank,
// realizing the paper's distribution: each bank holds 4 lines of X
// (4*COLX = 2H words, all ones), 2 lines of Y (2H words, all ones) and
// 4 lines of Z (4H words, zero).
func bankArrays(h int) string {
	var b strings.Builder
	cores := h / 4
	for c := 0; c < cores; c++ {
		fmt.Fprintf(&b, "int __dbank%d[8*H] __bank(%d) = {[0 ... 4*H-1] = 1};\n", c, c)
	}
	b.WriteString(`
/* distributed layout accessors: line i of X lives in bank i/4, line k of
   Y in bank k/2, line i of Z in bank i/4 (Section 7, "distributed"). */
int *xrow(int i) { return lbp_bank_ptr(i >> 2) + RESW + (i & 3) * COLX; }
int *yrow(int k) { return lbp_bank_ptr(k >> 1) + RESW + 2*H + (k & 1) * H; }
int *zrow(int i) { return lbp_bank_ptr(i >> 2) + RESW + 4*H + (i & 3) * H; }
`)
	return b.String()
}

// distributedSource computes one Z line per hart with the k-outer /
// j-inner schedule: the X line is in the hart's own bank, the Y lines
// stream from all banks, and the Z line accumulates in the local stack.
// withCopy also copies the X line to the stack first (the "d+c" version).
func distributedSource(withCopy bool) string {
	xAccess := "*px"
	copyDecl, copyLoop := "", ""
	if withCopy {
		copyDecl = "\tint xl[COLX];\n"
		copyLoop = `	px = xrow(t);
	for (k = 0; k < COLX; k++) { xl[k] = *px; px = px + 1; }
`
		xAccess = "xl[k]"
	}
	return `
void thread(int t) {
	int j; int k; int xk;
	int *px; int *py; int *pz; int *ye;
	int zl[H];
` + copyDecl + `	for (j = 0; j < H; j++) zl[j] = 0;
` + copyLoop + `	px = xrow(t);
	for (k = 0; k < COLX; k++) {
		xk = ` + xAccess + `;
` + func() string {
		if withCopy {
			return ""
		}
		return "\t\tpx = px + 1;\n"
	}() + `		py = yrow(k);
		ye = py + H;
		pz = zl;
		while (py < ye) {
			*pz = *pz + xk * *py;
			py = py + 1;
			pz = pz + 1;
		}
	}
	pz = zrow(t);
	for (j = 0; j < H; j++) { *pz = zl[j]; pz = pz + 1; }
}

void main() {
	int t;
	omp_set_num_threads(H);
	#pragma omp parallel for
	for (t = 0; t < H; t++) thread(t);
}
`
}

// tiledSource is the classic five-nested-loop tiled multiplication on the
// distributed layout: hart t computes the (t/TS, t%TS) tile of Z, copying
// each X and Y tile into the local stack before the all-local inner loops
// (Section 7, "tiled": X/Y tiles have H/2 elements, Z tiles have H).
func tiledSource() string {
	return `
void thread(int t) {
	int tr; int tc; int kt; int i; int j; int k;
	int tmp;
	int *p; int *q;
	int xt[TS*TK];
	int yt[TK*TS];
	int zt[TS*TS];
	tr = t / TS;
	tc = t % TS;
	for (i = 0; i < TS*TS; i++) zt[i] = 0;
	for (kt = 0; kt < TS; kt++) {
		/* copy the X tile (TS x TK) */
		q = xt;
		for (i = 0; i < TS; i++) {
			p = xrow(tr*TS + i) + kt*TK;
			for (k = 0; k < TK; k++) { *q = *p; p = p + 1; q = q + 1; }
		}
		/* copy the Y tile (TK x TS) */
		q = yt;
		for (k = 0; k < TK; k++) {
			p = yrow(kt*TK + k) + tc*TS;
			for (j = 0; j < TS; j++) { *q = *p; p = p + 1; q = q + 1; }
		}
		/* multiply the tiles: all accesses local */
		for (i = 0; i < TS; i++) {
			for (j = 0; j < TS; j++) {
				int *pa; int *pe; int *pb;
				tmp = zt[i*TS + j];
				pa = xt + i*TK;
				pe = pa + TK;
				pb = yt + j;
				while (pa < pe) {
					tmp = tmp + *pa * *pb;
					pa = pa + 1;
					pb = pb + TS;
				}
				zt[i*TS + j] = tmp;
			}
		}
	}
	/* write the Z tile back */
	for (i = 0; i < TS; i++) {
		p = zrow(tr*TS + i) + tc*TS;
		q = zt + i*TS;
		for (j = 0; j < TS; j++) { *p = *q; p = p + 1; q = q + 1; }
	}
}

void main() {
	int t;
	omp_set_num_threads(H);
	#pragma omp parallel for
	for (t = 0; t < H; t++) thread(t);
}
`
}
