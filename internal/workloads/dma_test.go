package workloads

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
)

func runDMA(t *testing.T, nt int, arrivalBase uint64) (*lbp.Machine, *asm.Program, *lbp.Result) {
	t.Helper()
	src := DMASource(nt)
	opt := cc.DefaultOptions()
	opt.Cores = nt / 4
	opt.BankReserveBytes = 512
	asmText, err := cc.BuildProgram(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := lbp.New(lbp.DefaultConfig(nt / 4))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	// the input device streams nt-1 words
	events := make([]lbp.SensorEvent, nt-1)
	for i := range events {
		events[i] = lbp.SensorEvent{
			Cycle: arrivalBase + uint64(200*i),
			Value: uint32(7 * (i + 1)),
		}
	}
	m.AddDevice(&lbp.Sensor{
		Name:      "dma-input",
		ValueAddr: prog.Symbols["inval"],
		FlagAddr:  prog.Symbols["inflag"],
		Events:    events,
	})
	res, err := m.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return m, prog, res
}

func TestDMADistributesAndSynchronizes(t *testing.T) {
	m, prog, res := runDMA(t, 16, 2000)
	base := prog.Symbols["out"]
	for i := 0; i < 15; i++ {
		want := uint32(7*(i+1))*2 + uint32(1000+i)
		if v, _ := m.ReadShared(base + uint32(4*i)); v != want {
			t.Errorf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if res.Stats.RemoteSends != 15 {
		t.Errorf("backward-line sends = %d, want 15", res.Stats.RemoteSends)
	}
}

func TestDMAInputTimingOnlyMovesCycles(t *testing.T) {
	m1, prog, r1 := runDMA(t, 8, 1000)
	m2, _, r2 := runDMA(t, 8, 30000)
	base := prog.Symbols["out"]
	for i := 0; i < 7; i++ {
		v1, _ := m1.ReadShared(base + uint32(4*i))
		v2, _ := m2.ReadShared(base + uint32(4*i))
		if v1 != v2 {
			t.Errorf("out[%d] differs under timing: %d vs %d", i, v1, v2)
		}
	}
	if r2.Stats.Cycles <= r1.Stats.Cycles {
		t.Errorf("later inputs must lengthen the run: %d vs %d",
			r2.Stats.Cycles, r1.Stats.Cycles)
	}
}
