package workloads

import (
	"testing"

	"repro/internal/lbp"
)

// runVariant builds and runs one variant at hart count h and verifies Z.
func runVariant(t *testing.T, v MatmulVariant, h int) *lbp.Result {
	t.Helper()
	prog, err := BuildMatmul(v, h)
	if err != nil {
		t.Fatal(err)
	}
	m := lbp.New(MatmulConfig(h))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(MaxMatmulCycles(h))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMatmul(m, prog, v, h); err != nil {
		t.Error(err)
	}
	return res
}

func TestAllVariants16Harts(t *testing.T) {
	for _, v := range Variants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			res := runVariant(t, v, 16)
			if res.Stats.Forks != 15 {
				t.Errorf("forks = %d, want 15", res.Stats.Forks)
			}
			t.Logf("%-12s h=16: cycles=%d retired=%d ipc=%.2f",
				v, res.Stats.Cycles, res.Stats.Retired, res.Stats.IPC())
		})
	}
}

func TestVariants64Harts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, v := range []MatmulVariant{Base, Tiled} {
		v := v
		t.Run(string(v), func(t *testing.T) {
			res := runVariant(t, v, 64)
			t.Logf("%-12s h=64: cycles=%d retired=%d ipc=%.2f",
				v, res.Stats.Cycles, res.Stats.Retired, res.Stats.IPC())
		})
	}
}

func TestMatmulSourceErrors(t *testing.T) {
	if _, err := MatmulSource(Base, 3); err == nil {
		t.Error("non-multiple-of-4 must fail")
	}
	if _, err := MatmulSource(Tiled, 8); err == nil {
		t.Error("non-square tiled must fail")
	}
	if _, err := MatmulSource(MatmulVariant("bogus"), 16); err == nil {
		t.Error("unknown variant must fail")
	}
}

func TestAllHartsBusy(t *testing.T) {
	prog, err := BuildMatmul(Base, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := lbp.New(MatmulConfig(16))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(MaxMatmulCycles(16))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Stats.PerHart {
		if r == 0 {
			t.Errorf("hart %d retired nothing", i)
		}
	}
}

// Golden regression guard: the recorded EXPERIMENTS.md numbers must stay
// within 15% (codegen changes legitimately move them a little; a large
// jump means the experiment changed meaning).
func TestGoldenInstructionCounts(t *testing.T) {
	golden := map[MatmulVariant]uint64{
		Base:        21820,
		Copy:        23420,
		Distributed: 31660,
		DistCopy:    33580,
		Tiled:       85052,
	}
	for v, want := range golden {
		res := runVariant(t, v, 16)
		got := res.Stats.Retired
		lo, hi := want*85/100, want*115/100
		if got < lo || got > hi {
			t.Errorf("%s retired %d, recorded %d (±15%%): update EXPERIMENTS.md",
				v, got, want)
		}
	}
}

// The same program produces the same Z on every machine size that fits
// it (here: base for 16 harts run on 4 cores vs the same image on a
// bigger 8-core machine) — timing changes, semantics do not.
func TestResultIndependentOfMachineSize(t *testing.T) {
	prog, err := BuildMatmul(Base, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{4, 8} {
		cfg := lbp.DefaultConfig(cores)
		cfg.Mem.SharedBytes = SharedBankBytes(16)
		m := lbp.New(cfg)
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(MaxMatmulCycles(16)); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if err := VerifyMatmul(m, prog, Base, 16); err != nil {
			t.Errorf("%d cores: %v", cores, err)
		}
	}
}
