package workloads

import "fmt"

// DMASource generates the Section 6 DMA pattern: "using one hart as an
// input controller to fill all the shared memory banks with a structured
// data distributed to the computing harts. The synchronization of the
// DMA with the using harts is done through p_swre and p_lwre pairs of
// X_PAR instructions rather than through interrupts."
//
// A team of `nt` harts is created; the LAST member is the DMA controller
// (like Figure 17's input controller on the last hart, because the
// backward line only reaches prior harts). The controller polls the
// input port, copies each arriving word into the consumer's own shared
// bank, and releases the consumer with a result-buffer send. Consumer t
// blocks on lbp_recv_result until its datum arrived, then computes on it
// — no interrupts, no OS, just read-after-write dependencies.
//
// Machine side: attach an lbp.Sensor to inflag/inval, scheduling nt-1
// arrivals; results land in `out` (consumer t stores value*2+t).
func DMASource(nt int) string {
	return fmt.Sprintf(`/* DMA input controller, Section 6 */
#include <det_omp.h>
#define NT %d
#define RESW 128

int inflag;
int inval;
int out[NT];

/* chunk slot of consumer t, in its own bank */
int *slot(int t) { return lbp_bank_ptr(t >> 2) + RESW + (t & 3); }

void consumer(int t) {
	int token;
	token = lbp_recv_result(0);     /* blocks until the DMA released us */
	out[t] = *slot(t) * 2 + token;  /* datum is already in our bank */
}

void controller(int nwords) {
	int n;
	int v;
	for (n = 0; n < nwords; n++) {
		while (lbp_poll(&inflag) <= n) {}   /* poll the input port */
		v = inval;
		*slot(n) = v;                       /* fill the consumer's bank */
		lbp_syncm();                        /* drain before releasing */
		lbp_send_result(n, 1000 + n, 0);    /* release consumer n */
	}
}

void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < NT; t++) {
		if (t == NT - 1) controller(NT - 1);
		else consumer(t);
	}
}
`, nt)
}
