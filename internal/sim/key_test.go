package sim

import (
	"testing"

	"repro/internal/lbp"
)

// TestCacheKeyCanonicalization: keys ignore request syntax and
// host-side knobs, and respond to every result-affecting field.
func TestCacheKeyCanonicalization(t *testing.T) {
	prog := exitProgram(t)
	base := Spec{Program: prog, Cores: 2, MaxCycles: 10_000, Trace: TraceSpec{Digest: true}}
	key := func(s Spec) string {
		t.Helper()
		k, err := CacheKey(s)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	want := key(base)
	if len(want) != 64 {
		t.Fatalf("key %q is not 64 hex digits", want)
	}

	same := []struct {
		name string
		spec Spec
	}{
		{"identical", base},
		{"simworkers is results-neutral", func() Spec { s := base; s.SimWorkers = 8; return s }()},
		{"fast-forward is results-neutral", func() Spec { s := base; s.NoFastForward = true; return s }()},
		{"explicit equivalent config", func() Spec {
			s := base
			cfg := lbp.DefaultConfig(2)
			s.Config, s.Cores = &cfg, 0
			return s
		}()},
	}
	for _, tc := range same {
		if got := key(tc.spec); got != want {
			t.Errorf("%s: key %s != %s", tc.name, got[:12], want[:12])
		}
	}

	diff := []struct {
		name string
		spec Spec
	}{
		{"cores", func() Spec { s := base; s.Cores = 4; return s }()},
		{"bank bytes", func() Spec { s := base; s.SharedBankBytes = 1 << 15; return s }()},
		{"max cycles", func() Spec { s := base; s.MaxCycles = 20_000; return s }()},
		{"digest off", func() Spec { s := base; s.Trace.Digest = false; return s }()},
		{"ring", func() Spec { s := base; s.Trace.Ring = 16; return s }()},
		{"profile", func() Spec { s := base; s.Profile = true; return s }()},
	}
	for _, tc := range diff {
		if got := key(tc.spec); got == want {
			t.Errorf("%s: result-affecting change kept key %s", tc.name, got[:12])
		}
	}

	// A zero budget resolves to the default budget's key.
	a, b := base, base
	a.MaxCycles = 0
	b.MaxCycles = defaultMaxCycles
	if key(a) != key(b) {
		t.Error("zero MaxCycles does not canonicalize to the default budget")
	}
}

// TestCacheKeyErrors: no program and device-bearing specs are not
// addressable.
func TestCacheKeyErrors(t *testing.T) {
	if _, err := CacheKey(Spec{}); err == nil {
		t.Error("CacheKey accepted a program-less spec")
	}
	spec := Spec{Program: exitProgram(t), Devices: []lbp.Device{nil}}
	if _, err := CacheKey(spec); err == nil {
		t.Error("CacheKey accepted a spec with devices")
	}
}
