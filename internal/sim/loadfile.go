package sim

import (
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/cc"
)

// LoadFile builds a program from a .c, .s or .img file; the format is
// chosen by extension. cores and bank parameterize the MiniC runtime
// (.c only) and should match the machine the program will run on.
func LoadFile(path string, cores int, bank uint32) (*asm.Program, error) {
	switch {
	case strings.HasSuffix(path, ".img"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return asm.ReadImage(f)
	case strings.HasSuffix(path, ".c"):
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		opt := cc.DefaultOptions()
		opt.Cores = cores
		opt.SharedBankBytes = bank
		asmText, err := cc.BuildProgram(string(src), opt)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(asmText, asm.Options{})
	default: // .s
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(string(src), asm.Options{})
	}
}
