package sim

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/asm"
)

// exitSource is the smallest runnable program (the Figure 6 bare-metal
// exit identity): pool churn tests reset and reuse machines hundreds of
// times, so the program must be trivial.
const exitSource = "main:\n\tli ra, 0\n\tli t0, -1\n\tp_ret\n"

func exitProgram(t *testing.T) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(exitSource, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// tinySpec builds distinct pool keys cheaply: MaxCycles is part of the
// key, so varying it yields incompatible specs on the same geometry.
func tinySpec(prog *asm.Program, maxCycles uint64) Spec {
	return Spec{Program: prog, Cores: 1, MaxCycles: maxCycles}
}

// TestPoolEvictsOldestPerKey: the per-key bound drops the oldest idle
// session, keeping the most recently returned machines warm.
func TestPoolEvictsOldestPerKey(t *testing.T) {
	prog := exitProgram(t)
	spec := tinySpec(prog, 10_000)
	var p Pool
	p.SetCapacity(2, 64)
	var sess [3]*Session
	for i := range sess {
		s, err := p.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		sess[i] = s
	}
	for _, s := range sess {
		p.Put(s)
	}
	if got := p.Idle(); got != 2 {
		t.Fatalf("idle = %d, want 2 (per-key bound)", got)
	}
	if st := p.Stats(); st.Evictions != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 1 eviction, 3 misses", st)
	}
	// LIFO reuse: newest first, and the oldest (sess[0]) is gone.
	for i, want := range []*Session{sess[2], sess[1]} {
		got, warm, err := p.GetWarm(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !warm || got != want {
			t.Errorf("get %d: warm=%v session=%p, want warm %p", i, warm, got, want)
		}
	}
	got, warm, err := p.GetWarm(spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm || got == sess[0] {
		t.Error("evicted session was handed back out")
	}
}

// TestPoolTotalCapacityEvictsAcrossKeys: the total bound evicts the
// globally oldest idle session, whatever key it belongs to.
func TestPoolTotalCapacityEvictsAcrossKeys(t *testing.T) {
	prog := exitProgram(t)
	specs := []Spec{tinySpec(prog, 1000), tinySpec(prog, 2000), tinySpec(prog, 3000)}
	var p Pool
	p.SetCapacity(4, 2)
	var sess [3]*Session
	for i, sp := range specs {
		s, err := p.Get(sp)
		if err != nil {
			t.Fatal(err)
		}
		sess[i] = s
	}
	for _, s := range sess {
		p.Put(s)
	}
	if got := p.Idle(); got != 2 {
		t.Fatalf("idle = %d, want 2 (total bound)", got)
	}
	// sess[0] (oldest overall) was evicted; the other two are warm.
	if _, warm, err := p.GetWarm(specs[0]); err != nil || warm {
		t.Errorf("spec 0: warm=%v err=%v, want a fresh build", warm, err)
	}
	for i := 1; i < 3; i++ {
		got, warm, err := p.GetWarm(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !warm || got != sess[i] {
			t.Errorf("spec %d: warm=%v session=%p, want warm %p", i, warm, got, sess[i])
		}
	}
}

// TestPoolShrinkOnSetCapacity: tightening the bounds evicts immediately.
func TestPoolShrinkOnSetCapacity(t *testing.T) {
	prog := exitProgram(t)
	var p Pool
	var sess [6]*Session
	for i := range sess {
		s, err := p.Get(tinySpec(prog, uint64(1000*(1+i%3))))
		if err != nil {
			t.Fatal(err)
		}
		sess[i] = s
	}
	for _, s := range sess {
		p.Put(s)
	}
	if got := p.Idle(); got != 6 {
		t.Fatalf("idle = %d, want 6", got)
	}
	p.SetCapacity(1, 2)
	if got := p.Idle(); got > 2 {
		t.Errorf("idle = %d after SetCapacity(1, 2), want <= 2", got)
	}
	for key, list := range p.free {
		if len(list) > 1 {
			t.Errorf("key %+v holds %d idle sessions, want <= 1", key, len(list))
		}
	}
}

// TestPoolBoundUnderConcurrentGetPut is the regression test for the
// unbounded-growth bug: many goroutines churning Get/Put across several
// geometries must never leave more idle sessions than the bounds allow.
// Runs under -race in tier-1.
func TestPoolBoundUnderConcurrentGetPut(t *testing.T) {
	prog := exitProgram(t)
	specs := []Spec{tinySpec(prog, 1000), tinySpec(prog, 2000), tinySpec(prog, 3000)}
	var p Pool
	p.SetCapacity(2, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s, err := p.Get(specs[(g+i)%len(specs)])
				if err != nil {
					t.Error(err)
					return
				}
				if n := p.Idle(); n > 3 {
					t.Errorf("idle = %d mid-churn, want <= 3", n)
					return
				}
				p.Put(s)
			}
		}(g)
	}
	wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	sum := 0
	for key, list := range p.free {
		if len(list) > 2 {
			t.Errorf("key %+v holds %d idle sessions, want <= 2", key, len(list))
		}
		sum += len(list)
	}
	if sum != p.count || p.count > 3 {
		t.Errorf("count = %d (lists sum %d), want consistent and <= 3", p.count, sum)
	}
	st := p.stats
	if st.Hits+st.Misses != 800 {
		t.Errorf("hits %d + misses %d != 800 gets", st.Hits, st.Misses)
	}
	if st.Hits == 0 {
		t.Error("no warm reuse under churn")
	}
}

// TestPoolResetFailureFallsBackCold: a warm machine whose Reset fails
// must not kill the job — the pool drops it, builds a cold machine,
// counts the Get as a miss, and bumps ResetFailures.
func TestPoolResetFailureFallsBackCold(t *testing.T) {
	prog := exitProgram(t)
	spec := tinySpec(prog, 10_000)
	var p Pool
	warmed, err := p.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(warmed)

	p.resetHook = func(s *Session, prog *asm.Program) error {
		return fmt.Errorf("forced reset failure")
	}
	s, warm, err := p.GetWarm(spec)
	if err != nil {
		t.Fatalf("GetWarm after reset failure: %v (the job must survive)", err)
	}
	if warm || s == warmed {
		t.Errorf("warm=%v session=%p, want a cold build distinct from %p", warm, s, warmed)
	}
	if _, err := s.Run(); err != nil {
		t.Errorf("cold fallback session does not run: %v", err)
	}
	st := p.Stats()
	if st.ResetFailures != 1 || st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 reset failure, 0 hits, 2 misses", st)
	}
	if got := p.Idle(); got != 0 {
		t.Errorf("idle = %d, want 0 (the bad machine must be dropped)", got)
	}

	// With the hook cleared the pool behaves normally again.
	p.resetHook = nil
	p.Put(s)
	again, warm, err := p.GetWarm(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !warm || again != s {
		t.Errorf("recovery get: warm=%v session=%p, want warm %p", warm, again, s)
	}
}
