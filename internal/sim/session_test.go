package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/perf"
	"repro/internal/workloads"
)

// outcome is everything a split run must reproduce bit-exactly.
// FastForwarded is excluded: it is a host-side diagnostic, and the
// resume leg legitimately single-steps the quiescent cycle it wakes on.
type outcome struct {
	halt   string
	stats  lbp.Stats
	mem    interface{}
	digest uint64
	events uint64
	perf   *perf.Snapshot
}

func runToEnd(t *testing.T, sess *Session) (*lbp.Result, outcome) {
	t.Helper()
	res, err := sess.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	st := res.Stats
	st.FastForwarded = 0
	return res, outcome{
		halt:   res.Halt,
		stats:  st,
		mem:    res.Mem,
		digest: sess.Recorder().Digest(),
		events: sess.Recorder().Count(),
		perf:   sess.PerfSnapshot(),
	}
}

// knobs is one host-side configuration of a run leg.
type knobs struct {
	workers int
	ffwd    bool
}

// TestCheckpointResumeEquivalenceMatrix is the tentpole acceptance
// test: Run(N) must equal Run(k) + Checkpoint + Resume + run-to-end —
// same halt, stats, memory stats, digest, event count and perf
// snapshot — for every combination of SimWorkers × fast-forward on
// both sides of the split. Runs under -race in tier-1, so it also
// asserts the sharded legs touch no shared mutable state.
func TestCheckpointResumeEquivalenceMatrix(t *testing.T) {
	legs := []knobs{{1, true}, {1, false}, {2, true}, {2, false}}
	for _, h := range []int{4, 16, 64} {
		h := h
		if h == 64 && testing.Short() {
			continue
		}
		prog, err := workloads.BuildMatmul(workloads.Base, h)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		cfg := workloads.MatmulConfig(h)
		spec := Spec{
			Program:   prog,
			Config:    &cfg,
			MaxCycles: workloads.MaxMatmulCycles(h),
			Trace:     TraceSpec{Digest: true},
			Profile:   true,
		}
		base, err := New(spec)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		baseRes, want := runToEnd(t, base)
		k := baseRes.Stats.Cycles / 2

		// The full 4x4 leg matrix at the small sizes; rotated pairs at
		// h=64 to keep the -race run affordable.
		for i, first := range legs {
			for j, second := range legs {
				if h == 64 && j != (i+1)%len(legs) {
					continue
				}
				sp := spec
				sp.SimWorkers = first.workers
				sp.NoFastForward = !first.ffwd
				sess, err := New(sp)
				if err != nil {
					t.Fatalf("h=%d %v|%v: %v", h, first, second, err)
				}
				res, err := sess.Advance(k)
				if err != nil {
					t.Fatalf("h=%d %v|%v: advance: %v", h, first, second, err)
				}
				if res != nil {
					t.Fatalf("h=%d %v|%v: finished before the split point", h, first, second)
				}
				cp, err := sess.Checkpoint()
				if err != nil {
					t.Fatalf("h=%d %v|%v: checkpoint: %v", h, first, second, err)
				}
				resumed, err := Resume(cp, ResumeSpec{
					MaxCycles:     workloads.MaxMatmulCycles(h),
					SimWorkers:    second.workers,
					NoFastForward: !second.ffwd,
				})
				if err != nil {
					t.Fatalf("h=%d %v|%v: resume: %v", h, first, second, err)
				}
				if resumed.Machine().Cycle() != k {
					t.Fatalf("h=%d %v|%v: resumed at cycle %d, want %d",
						h, first, second, resumed.Machine().Cycle(), k)
				}
				_, got := runToEnd(t, resumed)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("h=%d %v|%v: split run diverged:\n got %+v\nwant %+v",
						h, first, second, got, want)
				}
				if err := workloads.VerifyMatmul(resumed.Machine(), prog, workloads.Base, h); err != nil {
					t.Errorf("h=%d %v|%v: %v", h, first, second, err)
				}
			}
		}
	}
}

// setGetProgram compiles the placed set/get program (the Figure 4
// layout: hart t owns chunk words of core t/4's bank) for an n-core
// machine. It is the workload of the large-geometry tests below — all
// 4n harts fork, so the serpentine wave crosses every core and the
// full router hierarchy carries traffic.
func setGetProgram(t *testing.T, cores, chunk int) *asm.Program {
	t.Helper()
	src := fmt.Sprintf(`
#define H %d
#define CHUNK %d
#define RESW 128

int *vchunk(int t) { return lbp_bank_ptr(t >> 2) + RESW + (t & 3) * CHUNK; }

void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < H; t++) {
		int *p; int i;
		p = vchunk(t);
		for (i = 0; i < CHUNK; i++) { *p = t + i; p = p + 1; }
	}
	#pragma omp parallel for
	for (t = 0; t < H; t++) {
		int *p; int i; int acc;
		p = vchunk(t);
		acc = 0;
		for (i = 0; i < CHUNK; i++) { acc = acc + *p; p = p + 1; }
		*vchunk(t) = acc;
	}
}
`, cores*4, chunk)
	opt := cc.DefaultOptions()
	opt.Cores = cores
	opt.BankReserveBytes = 512
	asmText, err := cc.BuildProgram(src, opt)
	if err != nil {
		t.Fatalf("%d cores: compile: %v", cores, err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatalf("%d cores: assemble: %v", cores, err)
	}
	return prog
}

// TestEquivalence256Cores: on a 256-core machine — two router levels
// deeper than the paper's 64-core chip — every {-simworkers} × {-ffwd}
// crossing must produce one outcome, digest included. Runs under -race
// in tier-1, so the sharded compute phase and the per-worker commit
// lanes are also checked for data races at depth.
func TestEquivalence256Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: 256-core machine")
	}
	prog := setGetProgram(t, 256, 16)
	spec := Spec{
		Program:   prog,
		Cores:     256,
		MaxCycles: 50_000_000,
		Trace:     TraceSpec{Digest: true},
	}
	var want outcome
	for i, k := range []knobs{{1, true}, {1, false}, {2, true}, {2, false}} {
		sp := spec
		sp.SimWorkers = k.workers
		sp.NoFastForward = !k.ffwd
		sess, err := New(sp)
		if err != nil {
			t.Fatalf("%+v: %v", k, err)
		}
		_, got := runToEnd(t, sess)
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%+v diverged from {1 true}:\n got %+v\nwant %+v", k, got, want)
		}
	}
}

// TestCheckpointResume1024Cores: split-run bit-identity at the largest
// supported geometry. The split leg advances under one host-knob
// setting, checkpoints through the sharded v2 format (16 shards of 64
// cores), and resumes under another; halt, stats, memory stats and
// digest must match the uninterrupted run exactly.
func TestCheckpointResume1024Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: 1024-core machine")
	}
	prog := setGetProgram(t, 1024, 16)
	spec := Spec{
		Program:   prog,
		Cores:     1024,
		MaxCycles: 50_000_000,
		Trace:     TraceSpec{Digest: true},
	}
	base, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, want := runToEnd(t, base)
	k := baseRes.Stats.Cycles / 2

	sp := spec
	sp.SimWorkers = 2
	sp.NoFastForward = true
	sess, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sess.Advance(k); err != nil || res != nil {
		t.Fatalf("advance to %d: res=%v err=%v", k, res, err)
	}
	cp, err := sess.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	resumed, err := Resume(cp, ResumeSpec{
		MaxCycles:  50_000_000,
		SimWorkers: 3,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed.Machine().Cycle() != k {
		t.Fatalf("resumed at cycle %d, want %d", resumed.Machine().Cycle(), k)
	}
	_, got := runToEnd(t, resumed)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("split run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// sensorDevices builds the Figure 16 device set for prog; called twice
// per test so the resumed machine gets fresh, identically configured
// devices (their mutable state comes from the checkpoint).
func sensorDevices(prog *asm.Program) ([]lbp.Device, *lbp.Actuator) {
	var devices []lbp.Device
	for i := 0; i < 4; i++ {
		devices = append(devices, &lbp.Sensor{
			ValueAddr: prog.Symbols["sval"] + uint32(4*i),
			FlagAddr:  prog.Symbols["sflag"] + uint32(4*i),
			Events: []lbp.SensorEvent{
				{Cycle: 1000 + uint64(101*i), Value: uint32(10 * (i + 1))},
				{Cycle: 4000 + uint64(57*i), Value: uint32(20 * (i + 1))},
			},
		})
	}
	act := &lbp.Actuator{
		ValueAddr: prog.Symbols["factuator"],
		SeqAddr:   prog.Symbols["aseq"],
	}
	return append(devices, act), act
}

// TestCheckpointResumeDevices splits a device-driven run in the middle
// of the sensor schedule: the resumed machine reattaches fresh devices,
// restores their cursors from the checkpoint, and must reproduce the
// uninterrupted run's actuator writes and cycle count exactly.
func TestCheckpointResumeDevices(t *testing.T) {
	asmText, err := cc.BuildProgram(workloads.SensorFusionSource(2), cc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*Session, *lbp.Actuator) {
		devices, act := sensorDevices(prog)
		sess, err := New(Spec{
			Program:   prog,
			Cores:     1,
			Devices:   devices,
			MaxCycles: 50_000_000,
			Trace:     TraceSpec{Digest: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sess, act
	}
	base, baseAct := run()
	baseRes, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(baseAct.Writes) == 0 {
		t.Fatal("sensor fusion produced no actuator writes")
	}

	// Split between the two sensor rounds: some device state (cursors,
	// observed writes) is already non-initial at the checkpoint.
	const k = 2500
	sess, _ := run()
	if res, err := sess.Advance(k); err != nil || res != nil {
		t.Fatalf("advance: res=%v err=%v", res, err)
	}
	cp, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	devices, act := sensorDevices(prog)
	resumed, err := Resume(cp, ResumeSpec{Devices: devices, MaxCycles: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != baseRes.Stats.Cycles {
		t.Errorf("cycles = %d, want %d", res.Stats.Cycles, baseRes.Stats.Cycles)
	}
	if !reflect.DeepEqual(act.Writes, baseAct.Writes) {
		t.Errorf("actuator writes diverged:\n got %+v\nwant %+v", act.Writes, baseAct.Writes)
	}
	if resumed.Recorder().Digest() != base.Recorder().Digest() ||
		resumed.Recorder().Count() != base.Recorder().Count() {
		t.Errorf("trace diverged: %#x/%d, want %#x/%d",
			resumed.Recorder().Digest(), resumed.Recorder().Count(),
			base.Recorder().Digest(), base.Recorder().Count())
	}
	// A session with devices must refuse to be reset for pooling.
	if err := resumed.Reset(prog); err == nil {
		t.Error("Reset must refuse a session with devices")
	}
}

// TestRunWithCheckpointsResume is E13 end to end at the library level:
// periodic checkpointing does not disturb the run, and resuming the
// last saved checkpoint finishes with the single-run digest.
func TestRunWithCheckpointsResume(t *testing.T) {
	prog, err := workloads.BuildMatmul(workloads.Base, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.MatmulConfig(16)
	spec := Spec{
		Program:   prog,
		Config:    &cfg,
		MaxCycles: workloads.MaxMatmulCycles(16),
		Trace:     TraceSpec{Digest: true},
	}
	base, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, want := runToEnd(t, base)

	sess, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var last []byte
	var saves int
	res, err := sess.RunWithCheckpoints(1000, func(cp []byte) error {
		last = cp
		saves++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if saves == 0 {
		t.Fatal("no checkpoints were saved (run shorter than the interval?)")
	}
	if sess.Recorder().Digest() != want.digest || res.Halt != want.halt {
		t.Errorf("checkpointing run diverged: digest %#x, want %#x", sess.Recorder().Digest(), want.digest)
	}

	resumed, err := Resume(last, ResumeSpec{MaxCycles: workloads.MaxMatmulCycles(16)})
	if err != nil {
		t.Fatal(err)
	}
	_, got := runToEnd(t, resumed)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resume of last checkpoint diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunSliced: slicing a run for cooperative cancellation never
// disturbs the simulated results, and a run stopped by a check error
// pauses at a cycle boundary from which checkpoint+resume reproduces
// the uninterrupted run bit-exactly.
func TestRunSliced(t *testing.T) {
	prog, err := workloads.BuildMatmul(workloads.Base, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.MatmulConfig(4)
	spec := Spec{
		Program:   prog,
		Config:    &cfg,
		MaxCycles: workloads.MaxMatmulCycles(4),
		Trace:     TraceSpec{Digest: true},
		Profile:   true,
	}
	base, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, want := runToEnd(t, base)

	sess, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunSliced(0, func(uint64) error { return nil }); err == nil {
		t.Error("RunSliced must reject a zero slice")
	}
	checks := 0
	res, err := sess.RunSliced(500, func(uint64) error { checks++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if checks < 2 {
		t.Errorf("check ran %d times, want at least one slice boundary", checks)
	}
	st := res.Stats
	st.FastForwarded = 0
	got := outcome{
		halt:   res.Halt,
		stats:  st,
		mem:    res.Mem,
		digest: sess.Recorder().Digest(),
		events: sess.Recorder().Count(),
		perf:   sess.PerfSnapshot(),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sliced run diverged:\n got %+v\nwant %+v", got, want)
	}

	// A check error stops mid-run; checkpoint + resume finishes the run
	// with the uninterrupted digest.
	stop := errors.New("preempt")
	half := want.stats.Cycles / 2
	sess2, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err = sess2.RunSliced(500, func(c uint64) error {
		if c >= half {
			return stop
		}
		return nil
	})
	if res != nil || !errors.Is(err, stop) {
		t.Fatalf("RunSliced = (%v, %v), want the check error", res, err)
	}
	cp, err := sess2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(cp, ResumeSpec{MaxCycles: workloads.MaxMatmulCycles(4)})
	if err != nil {
		t.Fatal(err)
	}
	_, got = runToEnd(t, resumed)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("preempted+resumed run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestPoolReuse asserts warm-machine reuse is invisible: a pooled,
// reset machine reproduces a fresh machine's digest, and the pool
// actually hands the same session back.
func TestPoolReuse(t *testing.T) {
	prog, err := workloads.BuildMatmul(workloads.Base, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.MatmulConfig(4)
	spec := Spec{
		Program:   prog,
		Config:    &cfg,
		MaxCycles: workloads.MaxMatmulCycles(4),
		Trace:     TraceSpec{Digest: true},
	}
	var p Pool
	first, err := p.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, want := runToEnd(t, first)
	p.Put(first)

	second, err := p.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("pool built a fresh machine instead of reusing the warm one")
	}
	_, got := runToEnd(t, second)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("warm run diverged:\n got %+v\nwant %+v", got, want)
	}

	// A different configuration must never receive the pooled machine.
	other := spec
	other.Profile = true
	p.Put(second)
	third, err := p.Get(other)
	if err != nil {
		t.Fatal(err)
	}
	if third == second {
		t.Error("pool reused a machine across different observer settings")
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := New(Spec{}); err == nil {
		t.Error("New must require a program")
	}
	prog, err := workloads.BuildMatmul(workloads.Base, 4)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(Spec{Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.MaxCycles(); got != defaultMaxCycles {
		t.Errorf("default budget = %d, want %d", got, defaultMaxCycles)
	}
	if _, err := sess.RunWithCheckpoints(0, func([]byte) error { return nil }); err == nil {
		t.Error("RunWithCheckpoints must reject a zero interval")
	}
}

// TestSpecGeometryValidation: sim.New is the common funnel for machine
// geometry, so it rejects core counts outside [1, lbp.MaxCores] and
// degenerate router degrees before any machine is built. Both the Cores
// shorthand and an explicit Config go through the same check.
func TestSpecGeometryValidation(t *testing.T) {
	prog, err := workloads.BuildMatmul(workloads.Base, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{lbp.MaxCores + 1, 4096} {
		if _, err := New(Spec{Program: prog, Cores: cores}); err == nil {
			t.Errorf("New accepted %d cores, want geometry error", cores)
		}
	}
	cfg := lbp.DefaultConfig(4)
	cfg.Cores = 0
	if _, err := New(Spec{Program: prog, Config: &cfg}); err == nil {
		t.Error("New accepted a Config with 0 cores")
	}
	bad := lbp.DefaultConfig(4)
	bad.Mem.RouterDegree = 1
	if _, err := New(Spec{Program: prog, Config: &bad}); err == nil {
		t.Error("New accepted router degree 1")
	}
	// The largest supported geometry still builds.
	if _, err := New(Spec{Program: prog, Cores: lbp.MaxCores}); err != nil {
		t.Errorf("New rejected %d cores: %v", lbp.MaxCores, err)
	}
}
