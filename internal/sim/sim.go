// Package sim is the session layer over the LBP simulator: a
// declarative Spec describes one simulation — program, machine
// geometry, devices, cycle budget, observers and host execution knobs —
// and a Session builds, runs, checkpoints, resumes and resets the
// underlying machine. Every runner in this repository (cmd/lbp-run,
// cmd/lbp-bench, internal/figures, internal/core) builds machines
// through this package, so the build-attach-knob ordering that
// determinism depends on lives in exactly one place.
//
// Host knobs (worker count, fast-forward) never affect simulated
// results; observers (trace recorder, perf counters) never affect
// simulated timing. A Session is not safe for concurrent use, but
// independent Sessions are, and Pool hands out warm machines safely
// from many goroutines.
package sim

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/lbp"
	"repro/internal/perf"
	"repro/internal/trace"
)

// defaultMaxCycles bounds a run when the Spec does not.
const defaultMaxCycles = 100_000_000

// TraceSpec configures event tracing. The zero value records nothing.
type TraceSpec struct {
	Digest bool // fold every event into the determinism digest
	Ring   int  // retain the last Ring events for inspection
}

func (t TraceSpec) enabled() bool { return t.Digest || t.Ring > 0 }

// Spec declares one simulation. The zero value of every field is the
// default: a 4-core machine with the paper-inspired configuration, no
// devices, a 100M-cycle budget, no tracing or profiling, single-threaded
// stepping with fast-forward on. Only Program is required.
type Spec struct {
	// Program is the assembled program to load (required).
	Program *asm.Program

	// Config, when non-nil, is the complete machine configuration and
	// overrides Cores/SharedBankBytes.
	Config *lbp.Config

	// Cores sizes a default-configured machine when Config is nil
	// (0 = 4 cores); SharedBankBytes then overrides the per-core shared
	// bank size (0 = keep the default).
	Cores           int
	SharedBankBytes uint32

	// Devices are attached to the machine in order. Sessions with
	// devices cannot be pooled or reset (device state is external).
	Devices []lbp.Device

	// MaxCycles is the absolute run budget (0 = 100M).
	MaxCycles uint64

	Trace   TraceSpec
	Profile bool // enable the deterministic performance counters

	// SimWorkers is the intra-run host worker count: 0 or 1 steps the
	// machine single-threaded, n > 1 shards the compute phase across n
	// threads, negative selects all host CPUs. Never affects results.
	SimWorkers int

	// NoFastForward disables idle-cycle fast-forward (also results-
	// neutral; exposed for the equivalence tests).
	NoFastForward bool
}

// machineConfig resolves the machine configuration of the Spec.
func (s *Spec) machineConfig() lbp.Config {
	if s.Config != nil {
		return *s.Config
	}
	cores := s.Cores
	if cores <= 0 {
		cores = 4
	}
	cfg := lbp.DefaultConfig(cores)
	if s.SharedBankBytes != 0 {
		cfg.Mem.SharedBytes = s.SharedBankBytes
	}
	return cfg
}

// Session is one live simulation built from a Spec.
type Session struct {
	spec Spec
	cfg  lbp.Config
	m    *lbp.Machine
	rec  *trace.Recorder
}

// New builds a machine from the Spec and loads its program.
func New(spec Spec) (*Session, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("sim: Spec.Program is required")
	}
	s := &Session{spec: spec, cfg: spec.machineConfig()}
	if err := lbp.ValidateGeometry(s.cfg.Cores, s.cfg.Mem.RouterDegree); err != nil {
		return nil, err
	}
	s.m = lbp.New(s.cfg)
	s.attachObservers()
	if err := s.m.LoadProgram(spec.Program); err != nil {
		return nil, err
	}
	for _, d := range spec.Devices {
		s.m.AddDevice(d)
	}
	s.applyHostKnobs()
	return s, nil
}

// attachObservers wires the trace recorder and performance counters.
func (s *Session) attachObservers() {
	if s.spec.Trace.enabled() {
		s.rec = trace.New(s.spec.Trace.Ring)
	} else {
		s.rec = nil
	}
	s.m.SetTrace(s.rec)
	if s.spec.Profile {
		s.m.EnableProfiling()
	}
}

// applyHostKnobs installs the results-neutral execution settings.
func (s *Session) applyHostKnobs() {
	switch {
	case s.spec.SimWorkers < 0:
		s.m.SetSimWorkers(0) // all host CPUs
	case s.spec.SimWorkers > 1:
		s.m.SetSimWorkers(s.spec.SimWorkers)
	default:
		s.m.SetSimWorkers(1)
	}
	s.m.SetFastForward(!s.spec.NoFastForward)
}

// MaxCycles returns the resolved run budget.
func (s *Session) MaxCycles() uint64 {
	if s.spec.MaxCycles == 0 {
		return defaultMaxCycles
	}
	return s.spec.MaxCycles
}

// Run advances the machine until the program exits or the budget
// elapses. The budget is absolute: a resumed session counts the cycles
// already simulated against it.
func (s *Session) Run() (*lbp.Result, error) { return s.m.Run(s.MaxCycles()) }

// Advance runs at most n more cycles; (nil, nil) means the machine
// paused at a cycle boundary (see lbp.Machine.Advance).
func (s *Session) Advance(n uint64) (*lbp.Result, error) { return s.m.Advance(n) }

// Checkpoint serializes the machine's full architectural state.
func (s *Session) Checkpoint() ([]byte, error) { return s.m.Checkpoint() }

// RunSliced runs to completion like Run, but advances in slices of at
// most `slice` cycles and calls check at every slice boundary (and once
// before the first slice). A non-nil check error pauses the machine at
// a cycle boundary — it can then be checkpointed or advanced further —
// and is returned verbatim. This is the cooperative-cancellation hook:
// a serving layer checks wall-clock deadlines and shutdown signals
// between slices without ever disturbing the simulated results, which
// are bit-identical for every slice size.
func (s *Session) RunSliced(slice uint64, check func(cycle uint64) error) (*lbp.Result, error) {
	if slice == 0 {
		return nil, fmt.Errorf("sim: slice must be positive")
	}
	max := s.MaxCycles()
	for {
		if err := check(s.m.Cycle()); err != nil {
			return nil, err
		}
		c := s.m.Cycle()
		if c >= max {
			// Budget exhausted: Run produces the canonical error.
			return s.m.Run(max)
		}
		n := slice
		if c+n > max {
			n = max - c
		}
		res, err := s.m.Advance(n)
		if res != nil || err != nil {
			return res, err
		}
	}
}

// RunWithCheckpoints runs to completion like Run, but pauses every
// `every` cycles and hands a freshly serialized checkpoint to save.
// Resuming the last saved checkpoint reproduces the remainder of the
// run bit-exactly.
func (s *Session) RunWithCheckpoints(every uint64, save func(cp []byte) error) (*lbp.Result, error) {
	if every == 0 {
		return nil, fmt.Errorf("sim: checkpoint interval must be positive")
	}
	max := s.MaxCycles()
	for {
		n := every
		if c := s.m.Cycle(); c+n > max {
			n = 0
			if max > c {
				n = max - c
			}
		}
		res, err := s.m.Advance(n)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
		if s.m.Cycle() >= max {
			// Budget exhausted: Run produces the canonical error.
			return s.m.Run(max)
		}
		cp, err := s.m.Checkpoint()
		if err != nil {
			return nil, err
		}
		if err := save(cp); err != nil {
			return nil, err
		}
	}
}

// Reset returns the warm machine to its initial state and loads prog,
// reattaching fresh observers. Sessions with devices refuse: device
// state lives outside the machine and would leak between runs.
func (s *Session) Reset(prog *asm.Program) error {
	if len(s.spec.Devices) > 0 {
		return fmt.Errorf("sim: cannot reset a session with devices")
	}
	if prog == nil {
		return fmt.Errorf("sim: Reset needs a program")
	}
	if err := s.m.Reset(prog); err != nil {
		return err
	}
	s.spec.Program = prog
	s.attachObservers()
	s.applyHostKnobs()
	return nil
}

// Machine exposes the underlying machine (shared-memory reads,
// SimWorkers introspection). The session owns its lifecycle.
func (s *Session) Machine() *lbp.Machine { return s.m }

// Recorder returns the attached trace recorder, nil when tracing is off.
func (s *Session) Recorder() *trace.Recorder { return s.rec }

// Config returns the resolved machine configuration.
func (s *Session) Config() lbp.Config { return s.cfg }

// PerfSnapshot returns the deterministic counter snapshot (nil unless
// the Spec enabled profiling).
func (s *Session) PerfSnapshot() *perf.Snapshot { return s.m.PerfSnapshot() }

// ResumeSpec carries what a checkpoint cannot: the devices to reattach
// (freshly built with the original configuration, in AddDevice order)
// and the host-side knobs of the resuming process. Trace and profiling
// configuration travel inside the checkpoint.
type ResumeSpec struct {
	Devices       []lbp.Device
	MaxCycles     uint64 // absolute budget, counting already-simulated cycles
	SimWorkers    int
	NoFastForward bool
}

// Resume rebuilds a session from Checkpoint bytes. Advancing it
// reproduces the uninterrupted run bit-exactly, for any SimWorkers and
// fast-forward combination on either side of the split.
func Resume(cp []byte, rs ResumeSpec) (*Session, error) {
	m, err := lbp.Restore(cp, rs.Devices...)
	if err != nil {
		return nil, err
	}
	s := &Session{
		spec: Spec{
			Devices:       rs.Devices,
			MaxCycles:     rs.MaxCycles,
			SimWorkers:    rs.SimWorkers,
			NoFastForward: rs.NoFastForward,
		},
		cfg: m.Config(),
		m:   m,
		rec: m.Trace(),
	}
	s.applyHostKnobs()
	return s, nil
}
