package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CacheKey returns the canonical content address of a Spec's
// deterministic outcome: the SHA-256, in lowercase hex, of the
// serialized program image, the fully resolved machine configuration,
// and the result-affecting run parameters (cycle budget, trace digest
// and ring settings, profiling). Every run in this repository is
// deterministic (DESIGN.md §6), so two Specs with equal keys produce
// bit-identical results — which is what makes a content-addressed
// result cache sound (DESIGN.md §9).
//
// Canonicalization folds syntactically different but semantically
// identical Specs onto one key:
//
//   - Config-vs-Cores: a Spec carrying an explicit *lbp.Config and one
//     declaring the equivalent Cores/SharedBankBytes hash the resolved
//     lbp.Config, not the request syntax.
//   - A zero MaxCycles hashes as the resolved default budget.
//   - Host-side knobs (SimWorkers, NoFastForward) are excluded: they
//     are results-neutral by construction, proven by the equivalence
//     matrix tests.
//   - Programs hash by serialized image, so MiniC source and the
//     lbp-asm image it compiles to share a key.
//
// Specs with devices have no key: device state lives outside the
// machine, so their runs are not pure functions of the Spec.
func CacheKey(spec Spec) (string, error) {
	if spec.Program == nil {
		return "", fmt.Errorf("sim: CacheKey requires a program")
	}
	if len(spec.Devices) > 0 {
		return "", fmt.Errorf("sim: a spec with devices has no cache key (device state is external)")
	}
	h := sha256.New()
	fmt.Fprintln(h, "lbp-result-key-v1")
	if err := spec.Program.WriteImage(h); err != nil {
		return "", err
	}
	max := spec.MaxCycles
	if max == 0 {
		max = defaultMaxCycles
	}
	// %#v over the resolved Config covers every machine parameter by
	// name, so adding a result-affecting field changes keys instead of
	// silently aliasing old entries.
	fmt.Fprintf(h, "cfg %#v\n", spec.machineConfig())
	fmt.Fprintf(h, "max %d digest %t ring %d profile %t\n",
		max, spec.Trace.Digest, spec.Trace.Ring, spec.Profile)
	return hex.EncodeToString(h.Sum(nil)), nil
}
