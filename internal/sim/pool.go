package sim

import (
	"sync"

	"repro/internal/asm"
	"repro/internal/lbp"
)

// poolKey identifies the sessions that are interchangeable after a
// Reset: same machine configuration and same observer/knob settings.
// The resolved lbp.Config is comparable (it is all scalars), so the key
// can be a map key directly.
type poolKey struct {
	cfg     lbp.Config
	profile bool
	digest  bool
	ring    int
	workers int
	noffwd  bool
	max     uint64
}

func specKey(spec *Spec, cfg lbp.Config) poolKey {
	return poolKey{
		cfg:     cfg,
		profile: spec.Profile,
		digest:  spec.Trace.Digest,
		ring:    spec.Trace.Ring,
		workers: spec.SimWorkers,
		noffwd:  spec.NoFastForward,
		max:     spec.MaxCycles,
	}
}

// Default pool capacities: a long sweep over many geometries must not
// pin every machine it ever built in memory, so the zero-value Pool is
// bounded. SetCapacity overrides both bounds.
const (
	DefaultPoolPerKey = 4
	DefaultPoolTotal  = 64
)

// PoolStats counts pool traffic. Hits are Gets served by a warm
// machine, Misses are Gets that built a fresh one (including sessions
// with devices, which always bypass the pool), Evictions are idle
// sessions dropped to respect the capacity bounds. ResetFailures are
// warm machines that refused their Reset on checkout; each one is
// dropped and replaced by a cold build, and the Get recounts as a
// miss.
type PoolStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	ResetFailures uint64
}

// pooled is one idle session with its admission sequence number; seq
// orders evictions (smallest = oldest).
type pooled struct {
	s   *Session
	seq uint64
}

// Pool reuses warm machines across runs: Get returns a reset session
// for the Spec (building a fresh one only when no compatible machine is
// free), Put returns a finished session for reuse. Sweeps that build
// the same machine geometry hundreds of times skip the per-run
// allocation of banks, link queues and reorder buffers.
//
// Capacity is bounded: at most perKey idle sessions per configuration
// and total across all configurations (DefaultPoolPerKey and
// DefaultPoolTotal unless SetCapacity was called). Put beyond a bound
// drops the oldest idle session, so a sweep over many geometries keeps
// only the most recently used machines warm.
//
// A Pool is safe for concurrent use. Sessions with devices bypass the
// pool entirely (they cannot be reset).
type Pool struct {
	mu     sync.Mutex
	free   map[poolKey][]pooled
	seq    uint64
	count  int
	perKey int // 0 = DefaultPoolPerKey
	total  int // 0 = DefaultPoolTotal
	stats  PoolStats

	// resetHook, when non-nil, replaces Session.Reset on warm
	// checkout; tests use it to force reset failures.
	resetHook func(*Session, *asm.Program) error
}

// SetCapacity bounds the idle sessions kept per configuration and in
// total; non-positive values restore the defaults. Shrinking a bound
// evicts oldest-first immediately.
func (p *Pool) SetCapacity(perKey, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.perKey, p.total = perKey, total
	pk, tot := p.caps()
	for key, list := range p.free {
		for len(list) > pk {
			list = p.dropOldestLocked(key, list)
		}
	}
	for p.count > tot {
		p.evictOldestLocked()
	}
}

// caps resolves the configured bounds. Callers hold p.mu.
func (p *Pool) caps() (perKey, total int) {
	perKey, total = p.perKey, p.total
	if perKey <= 0 {
		perKey = DefaultPoolPerKey
	}
	if total <= 0 {
		total = DefaultPoolTotal
	}
	return perKey, total
}

// dropOldestLocked removes the oldest idle session of one key list and
// stores the shrunk list back, returning it. Callers hold p.mu.
func (p *Pool) dropOldestLocked(key poolKey, list []pooled) []pooled {
	copy(list, list[1:])
	list[len(list)-1] = pooled{}
	list = list[:len(list)-1]
	if len(list) == 0 {
		delete(p.free, key)
	} else {
		p.free[key] = list
	}
	p.count--
	p.stats.Evictions++
	return list
}

// evictOldestLocked drops the globally oldest idle session. Lists are
// appended in seq order, so the oldest entry of every list is its
// front. Callers hold p.mu.
func (p *Pool) evictOldestLocked() {
	var oldestKey poolKey
	var oldest []pooled
	found := false
	for key, list := range p.free {
		if !found || list[0].seq < oldest[0].seq {
			oldestKey, oldest, found = key, list, true
		}
	}
	if found {
		p.dropOldestLocked(oldestKey, oldest)
	}
}

// Get returns a session for the Spec, reusing a pooled machine when one
// with an identical configuration is free.
func (p *Pool) Get(spec Spec) (*Session, error) {
	s, _, err := p.GetWarm(spec)
	return s, err
}

// GetWarm is Get, also reporting whether the session came from the pool
// (warm = a reset machine was reused rather than built). A warm machine
// whose Reset fails is dropped — the Get recounts as a miss, builds a
// cold machine instead, and bumps ResetFailures — so one bad pooled
// machine never kills the job it happened to be handed to.
func (p *Pool) GetWarm(spec Spec) (*Session, bool, error) {
	if len(spec.Devices) > 0 {
		p.mu.Lock()
		p.stats.Misses++
		p.mu.Unlock()
		s, err := New(spec)
		return s, false, err
	}
	key := specKey(&spec, spec.machineConfig())
	p.mu.Lock()
	reset := p.resetHook
	var s *Session
	if list := p.free[key]; len(list) > 0 {
		s = list[len(list)-1].s
		list[len(list)-1] = pooled{}
		list = list[:len(list)-1]
		if len(list) == 0 {
			delete(p.free, key)
		} else {
			p.free[key] = list
		}
		p.count--
	}
	p.mu.Unlock()
	if reset == nil {
		reset = (*Session).Reset
	}
	if s != nil {
		err := reset(s, spec.Program)
		if err == nil {
			p.mu.Lock()
			p.stats.Hits++
			p.mu.Unlock()
			return s, true, nil
		}
		p.mu.Lock()
		p.stats.ResetFailures++
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.stats.Misses++
	p.mu.Unlock()
	s, err := New(spec)
	return s, false, err
}

// Put returns a finished session to the pool, evicting the oldest idle
// session when a capacity bound is hit. Sessions that cannot be reset
// (devices, resumed from a checkpoint) are silently dropped.
func (p *Pool) Put(s *Session) {
	if s == nil || len(s.spec.Devices) > 0 || s.spec.Program == nil {
		return
	}
	key := specKey(&s.spec, s.cfg)
	p.mu.Lock()
	if p.free == nil {
		p.free = make(map[poolKey][]pooled)
	}
	perKey, total := p.caps()
	if list := p.free[key]; len(list) >= perKey {
		p.dropOldestLocked(key, list)
	} else if p.count >= total {
		p.evictOldestLocked()
	}
	p.seq++
	p.free[key] = append(p.free[key], pooled{s: s, seq: p.seq})
	p.count++
	p.mu.Unlock()
}

// Idle returns the number of idle sessions currently pooled.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Stats returns a snapshot of the pool traffic counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
