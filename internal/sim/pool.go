package sim

import (
	"sync"

	"repro/internal/lbp"
)

// poolKey identifies the sessions that are interchangeable after a
// Reset: same machine configuration and same observer/knob settings.
// The resolved lbp.Config is comparable (it is all scalars), so the key
// can be a map key directly.
type poolKey struct {
	cfg     lbp.Config
	profile bool
	digest  bool
	ring    int
	workers int
	noffwd  bool
	max     uint64
}

func specKey(spec *Spec, cfg lbp.Config) poolKey {
	return poolKey{
		cfg:     cfg,
		profile: spec.Profile,
		digest:  spec.Trace.Digest,
		ring:    spec.Trace.Ring,
		workers: spec.SimWorkers,
		noffwd:  spec.NoFastForward,
		max:     spec.MaxCycles,
	}
}

// Pool reuses warm machines across runs: Get returns a reset session
// for the Spec (building a fresh one only when no compatible machine is
// free), Put returns a finished session for reuse. Sweeps that build
// the same machine geometry hundreds of times skip the per-run
// allocation of banks, link queues and reorder buffers.
//
// A Pool is safe for concurrent use. Sessions with devices bypass the
// pool entirely (they cannot be reset).
type Pool struct {
	mu   sync.Mutex
	free map[poolKey][]*Session
}

// Get returns a session for the Spec, reusing a pooled machine when one
// with an identical configuration is free.
func (p *Pool) Get(spec Spec) (*Session, error) {
	if len(spec.Devices) > 0 {
		return New(spec)
	}
	key := specKey(&spec, spec.machineConfig())
	p.mu.Lock()
	var s *Session
	if list := p.free[key]; len(list) > 0 {
		s = list[len(list)-1]
		list[len(list)-1] = nil
		p.free[key] = list[:len(list)-1]
	}
	p.mu.Unlock()
	if s == nil {
		return New(spec)
	}
	if err := s.Reset(spec.Program); err != nil {
		return nil, err
	}
	return s, nil
}

// Put returns a finished session to the pool. Sessions that cannot be
// reset (devices, resumed from a checkpoint) are silently dropped.
func (p *Pool) Put(s *Session) {
	if s == nil || len(s.spec.Devices) > 0 || s.spec.Program == nil {
		return
	}
	key := specKey(&s.spec, s.cfg)
	p.mu.Lock()
	if p.free == nil {
		p.free = make(map[poolKey][]*Session)
	}
	p.free[key] = append(p.free[key], s)
	p.mu.Unlock()
}
