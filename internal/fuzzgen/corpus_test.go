package fuzzgen

import (
	"path/filepath"
	"testing"
)

// TestCorpusReplay re-runs every checked-in fuzzer finding under
// testdata/fuzz across the full execution matrix. Each entry is a
// minimized program that once diverged from the reference; a failure
// here means a fixed compiler or simulator bug has regressed.
func TestCorpusReplay(t *testing.T) {
	files, err := CorpusFiles(filepath.Join("testdata", "fuzz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("corpus is empty; expected checked-in regression programs")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			if err := ReplayFile(path, CheckOptions{}); err != nil {
				t.Error(err)
			}
		})
	}
}
