package fuzzgen

import "math"

// The reference evaluator: sequential C semantics over int32, with the
// RV32IM edge cases the machine implements (shift amounts masked to 5
// bits, x/0 = -1, x%0 = x, INT_MIN/-1 = INT_MIN rem 0). Parallel
// constructs are race-free by construction, so evaluating them in
// iteration (or section) order is exactly the value every schedule of
// the deterministic machine must produce.

// State is the final memory image of a program: one entry per global
// (length 1 for scalars).
type State map[string][]int32

// Eval runs the program sequentially and returns the final state of
// every global.
func (p *Prog) Eval() State {
	ev := &evaluator{state: make(State, len(p.Globals)), loops: map[string]int32{}}
	for _, g := range p.Globals {
		n := g.Len
		if n == 0 {
			n = 1
		}
		vals := make([]int32, n)
		copy(vals, g.Init)
		ev.state[g.Name] = vals
	}
	ev.stmts(p.Stmts)
	return ev.state
}

type evaluator struct {
	state State
	loops map[string]int32
}

func (ev *evaluator) stmts(list []Stmt) {
	for _, s := range list {
		ev.stmt(s)
	}
}

func (ev *evaluator) stmt(s Stmt) {
	switch s := s.(type) {
	case *Assign:
		cell := ev.state[s.Name]
		cell[0] = applyAssign(s.Op, cell[0], ev.expr(s.E))
	case *Store:
		arr := ev.state[s.Name]
		var i int32
		if s.Idx == nil {
			i = ev.loops[s.Loop]
		} else {
			i = ev.expr(s.Idx) & s.Mask
		}
		arr[i] = applyAssign(s.Op, arr[i], ev.expr(s.E))
	case *If:
		if ev.expr(s.Cond) != 0 {
			ev.stmts(s.Then)
		} else {
			ev.stmts(s.Else)
		}
	case *SeqFor:
		for i := 0; i < s.N; i++ {
			ev.loops[s.Var] = int32(i)
			ev.stmts(s.Body)
		}
		delete(ev.loops, s.Var)
	case *ParFor:
		// Sequential iteration order; see the package comment for why
		// this equals every parallel schedule.
		for k := 0; k < s.Trip; k++ {
			ev.loops[s.Var] = int32(s.Lo + k)
			for _, w := range s.Writes {
				ev.stmt(w)
			}
			if s.Red != nil {
				cell := ev.state[s.Red.Name]
				cell[0] = applyBin(s.Red.Op, cell[0], ev.expr(s.Red.E))
			}
		}
		delete(ev.loops, s.Var)
	case *Sections:
		for _, sec := range s.Secs {
			ev.stmt(sec)
		}
	}
}

func (ev *evaluator) expr(e *Expr) int32 {
	switch e.Kind {
	case ENum:
		return e.Num
	case EScalar:
		return ev.state[e.Name][0]
	case ELoop:
		return ev.loops[e.Name]
	case EIndex:
		arr := ev.state[e.Name]
		var i int32
		if e.Idx == nil {
			i = ev.loops[e.Loop]
		} else {
			i = ev.expr(e.Idx) & e.Mask
		}
		return arr[i]
	case EUnary:
		v := ev.expr(e.X)
		switch e.Op {
		case "-":
			return -v
		case "~":
			return ^v
		case "!":
			if v == 0 {
				return 1
			}
			return 0
		}
	case EBinary:
		// All operands are pure, so evaluating both sides of && and ||
		// matches short-circuit semantics.
		return applyBin(e.Op, ev.expr(e.X), ev.expr(e.Y))
	case ECond:
		if ev.expr(e.X) != 0 {
			return ev.expr(e.Y)
		}
		return ev.expr(e.Z)
	}
	panic("fuzzgen: unknown expression kind")
}

// applyAssign applies an assignment operator to the old value.
func applyAssign(op string, old, v int32) int32 {
	if op == "=" {
		return v
	}
	return applyBin(op[:len(op)-1], old, v)
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// applyBin is the int32 machine semantics of one binary operator.
func applyBin(op string, l, r int32) int32 {
	switch op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<":
		return b2i(l < r)
	case ">":
		return b2i(l > r)
	case "<=":
		return b2i(l <= r)
	case ">=":
		return b2i(l >= r)
	case "==":
		return b2i(l == r)
	case "!=":
		return b2i(l != r)
	case "&&":
		return b2i(l != 0 && r != 0)
	case "||":
		return b2i(l != 0 || r != 0)
	case "<<":
		return l << (uint32(r) & 31)
	case ">>":
		return l >> (uint32(r) & 31)
	case "/":
		if r == 0 {
			return -1 // RV32IM div-by-zero
		}
		if l == math.MinInt32 && r == -1 {
			return math.MinInt32 // RV32IM overflow
		}
		return l / r
	case "%":
		if r == 0 {
			return l
		}
		if l == math.MinInt32 && r == -1 {
			return 0
		}
		return l % r
	}
	panic("fuzzgen: unknown operator " + op)
}
