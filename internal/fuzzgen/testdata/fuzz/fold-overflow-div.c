int out;
void main() { out = (2000000000 + 2000000000) / 3; }
