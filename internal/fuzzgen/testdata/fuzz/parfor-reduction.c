int a[8];
int sum;
void main() {
	for (int i0 = 0; i0 < 8; i0++) { a[i0] = i0 * 3; }
	sum = 0;
	#pragma omp parallel for reduction(+:sum)
	for (int i1 = 0; i1 < 8; i1++) { sum = sum + (a[i1] ^ i1); }
}
