package fuzzgen

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig tunes the program generator. The zero value picks
// everything randomly with the defaults below.
type GenConfig struct {
	// MinCores pins the smallest machine the program targets (1, 2 or
	// 4); 0 chooses randomly. Team sizes never exceed 4*MinCores harts
	// and __bank placements stay below MinCores.
	MinCores int
	// MaxStmts bounds the top-level statement count (0 = 8).
	MaxStmts int
}

// Generate builds one random program from the seed. The same seed and
// config always produce the identical program.
func Generate(seed int64, cfg GenConfig) *Prog {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	p := &Prog{Seed: seed, MinCores: cfg.MinCores}
	if p.MinCores == 0 {
		p.MinCores = []int{1, 2, 2, 4}[g.rng.Intn(4)]
	}
	g.p = p
	g.genGlobals()
	max := cfg.MaxStmts
	if max <= 0 {
		max = 8
	}
	n := 3 + g.rng.Intn(max-2)
	for i := 0; i < n; i++ {
		p.Stmts = append(p.Stmts, g.genStmt(2, nil, true))
	}
	if !hasParallel(p.Stmts) {
		// Every program exercises at least one parallel construct:
		// that is the point of a determinism fuzzer.
		p.Stmts = append(p.Stmts, g.genParFor(nil))
	}
	return p
}

type gen struct {
	rng   *rand.Rand
	p     *Prog
	loopN int
}

func hasParallel(list []Stmt) bool {
	for _, s := range list {
		switch s := s.(type) {
		case *ParFor, *Sections:
			return true
		case *SeqFor:
			if hasParallel(s.Body) {
				return true
			}
		case *If:
			if hasParallel(s.Then) || hasParallel(s.Else) {
				return true
			}
		}
	}
	return false
}

// ---- globals --------------------------------------------------------------

var arrayLens = []int{4, 8, 16}

func (g *gen) genGlobals() {
	nScalars := 2 + g.rng.Intn(4)
	nArrays := 2 + g.rng.Intn(3)
	for i := 0; i < nScalars; i++ {
		gl := &Global{Name: fmt.Sprintf("g%d", i), Bank: -1}
		if g.rng.Intn(2) == 0 {
			gl.Init = []int32{g.genConst()}
		}
		g.p.Globals = append(g.p.Globals, gl)
	}
	for i := 0; i < nArrays; i++ {
		gl := &Global{Name: fmt.Sprintf("a%d", i), Bank: -1,
			Len: arrayLens[g.rng.Intn(len(arrayLens))]}
		if g.p.MinCores > 1 && g.rng.Intn(3) == 0 {
			gl.Bank = g.rng.Intn(g.p.MinCores)
		}
		if g.rng.Intn(2) == 0 {
			gl.Init = make([]int32, gl.Len)
			for j := range gl.Init {
				gl.Init[j] = g.genConst()
			}
		}
		g.p.Globals = append(g.p.Globals, gl)
	}
}

// genConst picks an initial or literal value: usually small, with an
// occasional 32-bit extreme so constant folding and wraparound paths
// get exercised.
func (g *gen) genConst() int32 {
	switch g.rng.Intn(8) {
	case 0:
		return []int32{math.MinInt32, math.MaxInt32, -1, 0, 1,
			2000000000, -2000000000, 1 << 30}[g.rng.Intn(8)]
	default:
		return int32(g.rng.Intn(2001) - 1000)
	}
}

func (g *gen) scalars() []*Global {
	var out []*Global
	for _, gl := range g.p.Globals {
		if !gl.IsArray() {
			out = append(out, gl)
		}
	}
	return out
}

func (g *gen) arrays() []*Global {
	var out []*Global
	for _, gl := range g.p.Globals {
		if gl.IsArray() {
			out = append(out, gl)
		}
	}
	return out
}

// ---- statements -----------------------------------------------------------

var assignOps = []string{"=", "=", "=", "+=", "-=", "*=", "&=", "|=", "^="}

// genStmt emits one statement. depth bounds nesting of sequential
// control flow; loops are the sequential loop variables in scope
// (readable by sequential expressions only); top marks main's
// top-level statement list, the only place parallel sections go.
func (g *gen) genStmt(depth int, loops []string, top bool) Stmt {
	ctx := g.seqCtx(loops)
	r := g.rng.Intn(100)
	switch {
	case r < 30:
		return g.genAssign(ctx)
	case r < 45:
		return g.genStore(ctx)
	case r < 55 && depth > 0:
		return g.genIf(depth, loops)
	case r < 70 && depth > 0:
		return g.genSeqFor(depth, loops)
	case r < 85:
		return g.genParFor(loops)
	case top:
		if s := g.genSections(); s != nil {
			return s
		}
		return g.genAssign(ctx)
	default:
		return g.genParFor(loops)
	}
}

func (g *gen) genAssign(ctx *exprCtx) *Assign {
	sc := g.scalars()
	dst := sc[g.rng.Intn(len(sc))]
	return &Assign{Name: dst.Name, Op: assignOps[g.rng.Intn(len(assignOps))],
		E: g.genExpr(ctx, 1+g.rng.Intn(3))}
}

func (g *gen) genStore(ctx *exprCtx) *Store {
	ar := g.arrays()
	dst := ar[g.rng.Intn(len(ar))]
	return &Store{Name: dst.Name, Mask: int32(dst.Len - 1),
		Idx: g.genExpr(ctx, 1), Op: assignOps[g.rng.Intn(len(assignOps))],
		E: g.genExpr(ctx, 1+g.rng.Intn(3))}
}

func (g *gen) genIf(depth int, loops []string) *If {
	ctx := g.seqCtx(loops)
	s := &If{Cond: g.genExpr(ctx, 2)}
	for i, n := 0, 1+g.rng.Intn(2); i < n; i++ {
		s.Then = append(s.Then, g.genSeqInner(depth-1, loops))
	}
	if g.rng.Intn(2) == 0 {
		for i, n := 0, 1+g.rng.Intn(2); i < n; i++ {
			s.Else = append(s.Else, g.genSeqInner(depth-1, loops))
		}
	}
	return s
}

// genSeqInner picks a statement allowed inside if/for bodies.
func (g *gen) genSeqInner(depth int, loops []string) Stmt {
	ctx := g.seqCtx(loops)
	r := g.rng.Intn(100)
	switch {
	case r < 40:
		return g.genAssign(ctx)
	case r < 70:
		return g.genStore(ctx)
	case r < 80 && depth > 0:
		return g.genSeqFor(depth, loops)
	case r < 90 && depth > 0:
		return g.genIf(depth, loops)
	default:
		return g.genParFor(loops)
	}
}

func (g *gen) genSeqFor(depth int, loops []string) *SeqFor {
	v := g.newLoopVar()
	s := &SeqFor{Var: v, N: 2 + g.rng.Intn(8)}
	inner := append(append([]string(nil), loops...), v)
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		s.Body = append(s.Body, g.genSeqInner(depth-1, inner))
	}
	return s
}

func (g *gen) newLoopVar() string {
	g.loopN++
	return fmt.Sprintf("i%d", g.loopN)
}

// genParFor builds a race-free parallel loop. Outer sequential loop
// variables are main locals the outlined body cannot capture, so body
// expressions see only the loop's own variable.
func (g *gen) genParFor(loops []string) *ParFor {
	_ = loops // documented: deliberately not readable inside the region
	v := g.newLoopVar()
	lo := 0
	if g.rng.Intn(4) == 0 {
		lo = 1 + g.rng.Intn(2)
	}
	// Write targets: 1-2 distinct arrays long enough for [lo, lo+trip).
	ar := g.arrays()
	dst := ar[g.rng.Intn(len(ar))]
	maxTrip := 4 * g.p.MinCores
	if m := dst.Len - lo; m < maxTrip {
		maxTrip = m
	}
	trip := 1 + g.rng.Intn(maxTrip)
	writeSet := map[string]bool{dst.Name: true}
	writes := []*Global{dst}
	if g.rng.Intn(2) == 0 {
		for _, cand := range g.rng.Perm(len(ar)) {
			a := ar[cand]
			if !writeSet[a.Name] && a.Len >= lo+trip {
				writeSet[a.Name] = true
				writes = append(writes, a)
				break
			}
		}
	}
	s := &ParFor{Var: v, Lo: lo, Trip: trip}

	// Reduction: one scalar, excluded from every body expression
	// (references to it are privatized by the OpenMP transform).
	var redVar string
	if g.rng.Intn(5) < 2 {
		sc := g.scalars()
		red := sc[g.rng.Intn(len(sc))]
		redVar = red.Name
		s.Red = &Reduction{Name: red.Name,
			Op: []string{"+", "+", "*", "&", "|", "^"}[g.rng.Intn(6)]}
	}

	ctx := &exprCtx{loops: []string{v}, ownLoop: v}
	for _, gl := range g.p.Globals {
		switch {
		case !gl.IsArray():
			if gl.Name != redVar {
				ctx.scalars = append(ctx.scalars, gl.Name)
			}
		case writeSet[gl.Name]:
			ctx.ownArrs = append(ctx.ownArrs, gl)
		default:
			ctx.randArrs = append(ctx.randArrs, gl)
			if gl.Len >= lo+trip {
				ctx.ownArrs = append(ctx.ownArrs, gl)
			}
		}
	}
	for _, w := range writes {
		s.Writes = append(s.Writes, &Store{Name: w.Name, Mask: int32(w.Len - 1),
			Loop: v, Op: assignOps[g.rng.Intn(len(assignOps))],
			E: g.genExpr(ctx, 1+g.rng.Intn(3))})
	}
	if s.Red != nil {
		s.Red.E = g.genExpr(ctx, 1+g.rng.Intn(3))
	}
	return s
}

// genSections builds parallel sections with pairwise-disjoint scalar
// targets; expressions read only scalars no section writes (plus any
// array). Returns nil when too few scalars exist.
func (g *gen) genSections() *Sections {
	sc := g.scalars()
	max := len(sc)
	if max > 4 {
		max = 4
	}
	if m := 4 * g.p.MinCores; max > m {
		max = m
	}
	if max < 2 {
		return nil
	}
	n := 2 + g.rng.Intn(max-1)
	perm := g.rng.Perm(len(sc))
	written := map[string]bool{}
	var dsts []*Global
	for _, i := range perm[:n] {
		written[sc[i].Name] = true
		dsts = append(dsts, sc[i])
	}
	ctx := &exprCtx{randArrs: g.arrays()}
	for _, gl := range sc {
		if !written[gl.Name] {
			ctx.scalars = append(ctx.scalars, gl.Name)
		}
	}
	s := &Sections{}
	for _, d := range dsts {
		s.Secs = append(s.Secs, &Assign{Name: d.Name, Op: "=",
			E: g.genExpr(ctx, 1+g.rng.Intn(3))})
	}
	return s
}

// seqCtx is the expression context of sequential code: everything is
// readable.
func (g *gen) seqCtx(loops []string) *exprCtx {
	ctx := &exprCtx{loops: loops}
	for _, gl := range g.p.Globals {
		if gl.IsArray() {
			ctx.randArrs = append(ctx.randArrs, gl)
		} else {
			ctx.scalars = append(ctx.scalars, gl.Name)
		}
	}
	return ctx
}

// ---- expressions ----------------------------------------------------------

// exprCtx lists what an expression may read.
type exprCtx struct {
	loops    []string  // readable loop variables
	scalars  []string  // readable scalar globals
	randArrs []*Global // arrays readable at any (masked) index
	ownArrs  []*Global // arrays readable at the own element [ownLoop]
	ownLoop  string
}

func (g *gen) genLeaf(ctx *exprCtx) *Expr {
	for {
		switch g.rng.Intn(5) {
		case 0:
			return &Expr{Kind: ENum, Num: g.genConst()}
		case 1:
			if len(ctx.loops) > 0 {
				return &Expr{Kind: ELoop, Name: ctx.loops[g.rng.Intn(len(ctx.loops))]}
			}
		case 2:
			if len(ctx.scalars) > 0 {
				return &Expr{Kind: EScalar, Name: ctx.scalars[g.rng.Intn(len(ctx.scalars))]}
			}
		case 3:
			if len(ctx.randArrs) > 0 {
				a := ctx.randArrs[g.rng.Intn(len(ctx.randArrs))]
				return &Expr{Kind: EIndex, Name: a.Name, Mask: int32(a.Len - 1),
					Idx: g.genShallow(ctx)}
			}
		case 4:
			if len(ctx.ownArrs) > 0 && ctx.ownLoop != "" {
				a := ctx.ownArrs[g.rng.Intn(len(ctx.ownArrs))]
				return &Expr{Kind: EIndex, Name: a.Name, Loop: ctx.ownLoop}
			}
		}
	}
}

// genShallow builds a small index expression (constants, loop vars and
// scalars only, depth 1).
func (g *gen) genShallow(ctx *exprCtx) *Expr {
	shallow := &exprCtx{loops: ctx.loops, scalars: ctx.scalars}
	return g.genExpr(shallow, 1)
}

var binOps = []string{"+", "-", "*", "&", "|", "^",
	"<", ">", "<=", ">=", "==", "!=", "&&", "||"}

// genConstExpr builds an expression whose leaves are all literals.
// The compiler folds it entirely, so any divergence between folding
// and the machine's 32-bit arithmetic shows up as a value mismatch.
// Operators here include the full non-ring set (comparisons, raw
// divide, raw shift) because those observe overflowed intermediates.
func (g *gen) genConstExpr(depth int) *Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return &Expr{Kind: ENum, Num: g.genConst()}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%",
		"<", ">", "<=", ">=", "==", "!="}
	return &Expr{Kind: EBinary, Op: ops[g.rng.Intn(len(ops))],
		X: g.genConstExpr(depth - 1), Y: g.genConstExpr(depth - 1)}
}

func (g *gen) genExpr(ctx *exprCtx, depth int) *Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.genLeaf(ctx)
	}
	switch r := g.rng.Intn(20); {
	case r < 2:
		return &Expr{Kind: EUnary, Op: []string{"-", "~", "!"}[g.rng.Intn(3)],
			X: g.genExpr(ctx, depth-1)}
	case r < 4:
		return &Expr{Kind: ECond, X: g.genExpr(ctx, depth-1),
			Y: g.genExpr(ctx, depth-1), Z: g.genExpr(ctx, depth-1)}
	case r < 6: // shift with a masked amount (keeps values varied)
		return &Expr{Kind: EBinary, Op: []string{"<<", ">>"}[g.rng.Intn(2)],
			X: g.genExpr(ctx, depth-1),
			Y: &Expr{Kind: EBinary, Op: "&", X: g.genExpr(ctx, depth-1),
				Y: &Expr{Kind: ENum, Num: 7}}}
	case r < 8: // division with a small positive denominator
		return &Expr{Kind: EBinary, Op: []string{"/", "%"}[g.rng.Intn(2)],
			X: g.genExpr(ctx, depth-1),
			Y: &Expr{Kind: EBinary, Op: "+",
				X: &Expr{Kind: EBinary, Op: "&", X: g.genExpr(ctx, depth-1),
					Y: &Expr{Kind: ENum, Num: 15}},
				Y: &Expr{Kind: ENum, Num: 1}}}
	case r < 9: // raw divide/shift: exercises the RV32IM edge semantics
		return &Expr{Kind: EBinary,
			Op: []string{"/", "%", "<<", ">>"}[g.rng.Intn(4)],
			X:  g.genExpr(ctx, depth-1), Y: g.genExpr(ctx, depth-1)}
	case r < 11: // constant-only subtree: folds completely at compile
		// time, so this differentially tests foldConst against the
		// machine (the production that pins the int64-folding bug).
		return &Expr{Kind: EBinary, Op: binOps[g.rng.Intn(len(binOps))],
			X: g.genConstExpr(depth), Y: g.genExpr(ctx, depth-1)}
	default:
		return &Expr{Kind: EBinary, Op: binOps[g.rng.Intn(len(binOps))],
			X: g.genExpr(ctx, depth-1), Y: g.genExpr(ctx, depth-1)}
	}
}
