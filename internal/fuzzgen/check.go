package fuzzgen

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/sim"
)

// The differential checker: one program, one reference result, a
// matrix of machine geometries and host execution knobs. Host knobs
// (-simworkers, -ffwd) must never change anything; machine geometry
// (cores) may change timing — and therefore the trace digest — but
// never a computed value.

// CheckOptions configures the execution matrix.
type CheckOptions struct {
	// MaxCycles bounds every run (0 = 20M).
	MaxCycles uint64
	// Workers are the -simworkers values (nil = {1, 3}).
	Workers []int
	// FFwd are the fast-forward settings (nil = {true, false}).
	FFwd []bool
	// MaxCores caps the cores ladder {1,2,4,256} (0 = 4). Programs run
	// on every ladder entry >= their MinCores. The default cap keeps
	// smoke campaigns fast; raising it to 256 adds a deep-router-tree
	// geometry to every check.
	MaxCores int
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	if o.Workers == nil {
		o.Workers = []int{1, 3}
	}
	if o.FFwd == nil {
		o.FFwd = []bool{true, false}
	}
	if o.MaxCores == 0 {
		o.MaxCores = 4
	}
	return o
}

// coresLadder lists the machine sizes a program is checked on. The
// 256-core rung runs the same programs through a three-level router
// hierarchy (degree 4), where a divergence would implicate the
// generalized tree rather than the program.
func coresLadder(minCores, maxCores int) []int {
	var out []int
	for _, c := range []int{1, 2, 4, 256} {
		if c >= minCores && c <= maxCores {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{minCores}
	}
	return out
}

// Failure describes one divergence.
type Failure struct {
	Prog   *Prog // nil when replaying a source file
	Source string
	Stage  string // compile | assemble | run | value | digest
	Detail string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("%s: %s\nsource:\n%s", f.Stage, f.Detail, f.Source)
}

// Check renders, compiles and differentially runs one generated
// program. It returns the number of simulated runs and the first
// divergence found (nil if all runs agree with the reference).
func Check(p *Prog, opt CheckOptions) (int, *Failure) {
	runs, f := CheckSource(p.Render(), p.MinCores, p.Eval(), opt)
	if f != nil {
		f.Prog = p
	}
	return runs, f
}

// CheckSource compiles MiniC source and checks every matrix cell
// against the expected final memory image. Only globals named in
// expect are compared.
func CheckSource(src string, minCores int, expect State, opt CheckOptions) (int, *Failure) {
	opt = opt.withDefaults()
	fail := func(stage, format string, args ...any) *Failure {
		return &Failure{Source: src, Stage: stage, Detail: fmt.Sprintf(format, args...)}
	}
	ccOpt := cc.DefaultOptions()
	ccOpt.Cores = minCores
	asmText, err := cc.BuildProgram(src, ccOpt)
	if err != nil {
		return 0, fail("compile", "%v", err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		return 0, fail("assemble", "%v", err)
	}
	runs := 0
	for _, cores := range coresLadder(minCores, opt.MaxCores) {
		// Every host-knob combination on one machine geometry must
		// produce one digest; only the geometry may change timing.
		var wantDig uint64
		var wantCfg string
		for _, workers := range opt.Workers {
			for _, ffwd := range opt.FFwd {
				cfg := fmt.Sprintf("cores=%d simworkers=%d ffwd=%v", cores, workers, ffwd)
				sess, err := sim.New(sim.Spec{
					Program:       prog,
					Cores:         cores,
					MaxCycles:     opt.MaxCycles,
					Trace:         sim.TraceSpec{Digest: true},
					SimWorkers:    workers,
					NoFastForward: !ffwd,
				})
				if err != nil {
					return runs, fail("run", "%s: %v", cfg, err)
				}
				res, err := sess.Run()
				if err != nil {
					return runs, fail("run", "%s: %v", cfg, err)
				}
				runs++
				if res.Halt != "exit" {
					return runs, fail("run", "%s: halt %q after %d cycles",
						cfg, res.Halt, res.Stats.Cycles)
				}
				if d := compareState(sess, prog.Symbols, expect); d != "" {
					return runs, fail("value", "%s: %s", cfg, d)
				}
				dig := sess.Recorder().Digest()
				if wantCfg == "" {
					wantDig, wantCfg = dig, cfg
				} else if dig != wantDig {
					return runs, fail("digest",
						"%s: digest %#x differs from %#x of %s", cfg, dig, wantDig, wantCfg)
				}
			}
		}
	}
	return runs, nil
}

// compareState reads every expected global back from shared memory and
// diffs it against the reference evaluator's final state.
func compareState(sess *sim.Session, symbols map[string]uint32, expect State) string {
	var diffs []string
	for name, want := range expect {
		addr, ok := symbols[name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("global %q missing from the symbol table", name))
			continue
		}
		got, ok := sess.Machine().ReadSharedSlice(addr, len(want))
		if !ok {
			diffs = append(diffs, fmt.Sprintf("global %q unreadable at %#x", name, addr))
			continue
		}
		for i, w := range want {
			if int32(got[i]) != w {
				loc := name
				if len(want) > 1 {
					loc = fmt.Sprintf("%s[%d]", name, i)
				}
				diffs = append(diffs, fmt.Sprintf("%s = %d, reference %d", loc, int32(got[i]), w))
			}
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	if len(diffs) > 8 {
		diffs = append(diffs[:8], fmt.Sprintf("... and %d more", len(diffs)-8))
	}
	return strings.Join(diffs, "; ")
}

// ---- campaigns ------------------------------------------------------------

// CampaignStats summarizes one fuzzing campaign.
type CampaignStats struct {
	Programs int
	Runs     int
	Failures []*Failure
}

// Campaign generates and checks n programs. The master seed derives
// one sub-seed per program, so any failing program is reproducible
// from its own Prog.Seed alone. report, when non-nil, is called after
// every program (f is nil for a pass). Failing programs are minimized
// with Shrink before being recorded.
func Campaign(seed int64, n int, gcfg GenConfig, opt CheckOptions,
	report func(i int, p *Prog, f *Failure)) CampaignStats {
	seeds := subSeeds(seed, n)
	var st CampaignStats
	for i := 0; i < n; i++ {
		p := Generate(seeds[i], gcfg)
		runs, f := Check(p, opt)
		st.Programs++
		st.Runs += runs
		if f != nil {
			min := Shrink(p, func(q *Prog) bool {
				_, qf := Check(q, opt)
				return qf != nil
			}, 300)
			if _, mf := Check(min, opt); mf != nil {
				f = mf
			}
		}
		if f != nil {
			st.Failures = append(st.Failures, f)
		}
		if report != nil {
			report(i, p, f)
		}
	}
	return st
}

// subSeeds expands one master seed into n independent program seeds.
func subSeeds(seed int64, n int) []int64 {
	out := make([]int64, n)
	s := uint64(seed)
	for i := range out {
		// splitmix64: decorrelates adjacent master seeds.
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		out[i] = int64((z ^ (z >> 31)) &^ (1 << 63))
	}
	return out
}
