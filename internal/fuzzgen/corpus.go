package fuzzgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The regression corpus: every minimized fuzzer finding is checked in
// as a <name>.c MiniC source plus a <name>.json sidecar holding the
// reference-evaluator expectation, and replayed as a deterministic
// unit test (internal/fuzzgen/corpus_test.go) on every tier-1 run.

// CorpusEntry is the sidecar metadata of one corpus program.
type CorpusEntry struct {
	// Seed reproduces the originating (pre-shrink) program via
	// Generate; 0 for hand-written entries.
	Seed int64 `json:"seed,omitempty"`
	// MinCores is the smallest machine the program targets.
	MinCores int `json:"min_cores"`
	// Expect maps every checked global to its reference final value
	// (one element for scalars).
	Expect map[string][]int32 `json:"expect"`
}

// WriteCorpus writes p as dir/name.c + dir/name.json.
func WriteCorpus(dir, name string, p *Prog) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	entry := CorpusEntry{Seed: p.Seed, MinCores: p.MinCores, Expect: p.Eval()}
	meta, err := json.MarshalIndent(entry, "", "  ")
	if err != nil {
		return err
	}
	meta = append(meta, '\n')
	if err := os.WriteFile(filepath.Join(dir, name+".c"), []byte(p.Render()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".json"), meta, 0o644)
}

// ReplayFile checks one corpus program (path to the .c file; the .json
// sidecar sits next to it) across the full execution matrix.
func ReplayFile(path string, opt CheckOptions) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	meta, err := os.ReadFile(strings.TrimSuffix(path, ".c") + ".json")
	if err != nil {
		return err
	}
	var entry CorpusEntry
	if err := json.Unmarshal(meta, &entry); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if entry.MinCores < 1 {
		entry.MinCores = 1
	}
	if _, f := CheckSource(string(src), entry.MinCores, entry.Expect, opt); f != nil {
		return fmt.Errorf("%s: %v", path, f)
	}
	return nil
}

// CorpusFiles lists the .c programs of a corpus directory, sorted.
func CorpusFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
