package fuzzgen

import (
	"strings"
	"testing"

	"repro/internal/cc"
)

// TestGenerateDeterministic pins that the generator is a pure function
// of its seed: campaigns and corpus sidecars are reproducible from
// Prog.Seed alone.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, 0x9E3779B9} {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if a.Render() != b.Render() {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		if a.MinCores != b.MinCores {
			t.Fatalf("seed %d: MinCores %d != %d", seed, a.MinCores, b.MinCores)
		}
	}
	if Generate(1, GenConfig{}).Render() == Generate(2, GenConfig{}).Render() {
		t.Fatal("seeds 1 and 2 generated the identical program")
	}
}

// TestGeneratedProgramsCompile checks a wide band of seeds render to
// MiniC the compiler accepts: the generator must stay inside the
// dialect (capture rules, trip bounds, __bank placement).
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := Generate(seed, GenConfig{})
		opt := cc.DefaultOptions()
		opt.Cores = p.MinCores
		if _, err := cc.BuildProgram(p.Render(), opt); err != nil {
			t.Errorf("seed %d does not compile: %v\nsource:\n%s", seed, err, p.Render())
		}
	}
}

// TestCampaignFixedSeed is the in-tree fuzzing smoke: a small fixed-
// seed campaign across the full {cores}x{workers}x{ffwd} matrix must
// find zero divergences.
func TestCampaignFixedSeed(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	stats := Campaign(1, n, GenConfig{}, CheckOptions{}, nil)
	if stats.Programs != n {
		t.Fatalf("ran %d programs, want %d", stats.Programs, n)
	}
	if stats.Runs == 0 {
		t.Fatal("campaign simulated zero runs")
	}
	for _, f := range stats.Failures {
		t.Errorf("divergence: %v", f)
	}
}

// TestCheckRejectsWrongExpectation makes sure the checker actually
// compares values: a deliberately wrong reference must fail.
func TestCheckRejectsWrongExpectation(t *testing.T) {
	src := "int out;\nvoid main() { out = 7; }\n"
	opt := CheckOptions{Workers: []int{1}, FFwd: []bool{true}, MaxCores: 1}
	if _, f := CheckSource(src, 1, State{"out": {7}}, opt); f != nil {
		t.Fatalf("correct expectation rejected: %v", f)
	}
	_, f := CheckSource(src, 1, State{"out": {8}}, opt)
	if f == nil {
		t.Fatal("wrong expectation accepted")
	}
	if f.Stage != "value" {
		t.Fatalf("stage %q, want value", f.Stage)
	}
}

// TestShrinkMinimizes drives the shrinker with a structural predicate
// and checks the result is both smaller and still failing.
func TestShrinkMinimizes(t *testing.T) {
	p := Generate(7, GenConfig{MinCores: 2, MaxStmts: 10})
	// Predicate: the program still contains a parallel for. Shrinking
	// must preserve it while stripping everything else it can.
	failing := func(q *Prog) bool {
		found := false
		walkStmts(q.Stmts, func(s Stmt) {
			if _, ok := s.(*ParFor); ok {
				found = true
			}
		})
		return found
	}
	min := Shrink(p, failing, 500)
	if !failing(min) {
		t.Fatal("shrunk program no longer satisfies the predicate")
	}
	if len(min.Stmts) > 1 {
		t.Errorf("shrink kept %d top-level statements, want 1:\n%s",
			len(min.Stmts), min.Render())
	}
	if failing(p) && len(min.Render()) > len(p.Render()) {
		t.Errorf("shrink grew the program: %d -> %d bytes",
			len(p.Render()), len(min.Render()))
	}
	// The original must be untouched (Shrink works on a clone).
	if p.Render() != Generate(7, GenConfig{MinCores: 2, MaxStmts: 10}).Render() {
		t.Error("Shrink mutated its input program")
	}
}

// TestEvalRV32IMEdges pins the reference evaluator's divide, remainder
// and shift semantics to the machine's (internal/lbp/exec.go).
func TestEvalRV32IMEdges(t *testing.T) {
	const minInt32 = -2147483648
	cases := []struct {
		op      string
		l, r, w int32
	}{
		{"/", 7, 0, -1},
		{"/", minInt32, -1, minInt32},
		{"%", 7, 0, 7},
		{"%", minInt32, -1, 0},
		{"<<", 1, 33, 2},
		{">>", minInt32, 31, -1},
		{">>", -1, 100, -1 >> 4}, // 100 & 31 == 4
	}
	for _, c := range cases {
		if got := applyBin(c.op, c.l, c.r); got != c.w {
			t.Errorf("applyBin(%q, %d, %d) = %d, want %d", c.op, c.l, c.r, got, c.w)
		}
	}
}

// TestRenderContainsPragmas sanity-checks the rendered dialect shape.
func TestRenderContainsPragmas(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := Generate(seed, GenConfig{}).Render()
		if !strings.Contains(src, "#pragma omp parallel") {
			t.Errorf("seed %d rendered no parallel construct:\n%s", seed, src)
		}
		if !strings.Contains(src, "void main()") {
			t.Errorf("seed %d rendered no main:\n%s", seed, src)
		}
	}
}
