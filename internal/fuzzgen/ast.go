// Package fuzzgen generates random whole MiniC + Deterministic OpenMP
// programs, evaluates them under sequential C semantics with a Go
// reference evaluator, and differentially checks the compiled program
// on the simulated LBP machine across a {cores} × {-simworkers} ×
// {-ffwd} matrix: every run must reproduce the reference memory image
// bit-for-bit and all runs on one machine geometry must share a single
// trace digest.
//
// Programs are race-free by construction, so their parallel and
// sequential semantics coincide (the paper's determinism claim then
// says every schedule must produce the sequential answer):
//
//   - a `#pragma omp parallel for` iteration writes only its own
//     element arr[i] of each target array, reads arrays outside the
//     region's write set (or its own element), and never writes
//     scalars except through a reduction clause;
//   - reduction operators are limited to the associative-commutative
//     int32 ring ops (+ * & | ^), so any combination order is exact;
//   - `parallel sections` write pairwise-disjoint scalars and read
//     only state no section writes.
//
// All arithmetic is two's-complement int32 with the RV32IM edge
// semantics the machine implements (shift amounts mask to 5 bits,
// x/0 = -1, x%0 = x, INT_MIN/-1 = INT_MIN), which agree with C
// everywhere C defines the result.
package fuzzgen

import (
	"fmt"
	"strings"
)

// ---- Expressions ----------------------------------------------------------

// ExprKind discriminates expression nodes.
type ExprKind uint8

const (
	ENum    ExprKind = iota
	EScalar          // scalar global (Name)
	ELoop            // loop variable (Name)
	EIndex           // array element read, see Expr.Idx
	EUnary           // Op: - ~ !
	EBinary          // Op: + - * / % & | ^ << >> < > <= >= == != && ||
	ECond            // X ? Y : Z
)

// Expr is an int32-valued expression. EIndex reads array Name: with a
// non-nil Idx the rendered index is ((Idx) & Mask) (Mask = len-1, so
// the access is always in bounds); with a nil Idx it is the own-element
// read Name[Loop] inside a parallel loop.
type Expr struct {
	Kind ExprKind
	Op   string
	Num  int32
	Name string
	Idx  *Expr
	Loop string
	Mask int32
	X    *Expr
	Y    *Expr
	Z    *Expr
}

// ---- Statements -----------------------------------------------------------

// Stmt is a statement of the generated program.
type Stmt interface{ stmt() }

// Assign updates a scalar global: Name Op E (Op is "=" or a compound
// assignment operator).
type Assign struct {
	Name string
	Op   string // = += -= *= &= |= ^=
	E    *Expr
}

// Store updates an array element. With a non-nil Idx the target is
// Name[(Idx) & Mask]; a nil Idx is the own-element store Name[Loop]
// of a parallel-for iteration.
type Store struct {
	Name string
	Mask int32
	Idx  *Expr
	Loop string
	Op   string // = += -= *= &= |= ^=
	E    *Expr
}

// If is a two-way branch over sequential statements.
type If struct {
	Cond *Expr
	Then []Stmt
	Else []Stmt // may be empty
}

// SeqFor is a sequential counted loop: for (Var = 0; Var < N; Var++).
type SeqFor struct {
	Var  string
	N    int
	Body []Stmt
}

// Reduction is a `reduction(Op:Name)` clause; each iteration performs
// Name = Name Op (E). Op is one of + * & | ^ (associative and
// commutative over int32, so the combine order cannot matter).
type Reduction struct {
	Name string
	Op   string
	E    *Expr
}

// ParFor is a `#pragma omp parallel for` loop running Trip team
// members i = Lo .. Lo+Trip-1. Every write is an own-element store
// (Idx == nil, Loop == Var); expressions inside the body read only
// the loop variable, scalars (minus the reduction variable), arrays
// outside the write set, and own elements.
type ParFor struct {
	Var    string
	Lo     int
	Trip   int
	Red    *Reduction // optional
	Writes []*Store
}

// Sections is a `#pragma omp parallel sections` block; each section
// assigns one scalar global, all targets pairwise distinct.
type Sections struct {
	Secs []*Assign
}

func (*Assign) stmt()   {}
func (*Store) stmt()    {}
func (*If) stmt()       {}
func (*SeqFor) stmt()   {}
func (*ParFor) stmt()   {}
func (*Sections) stmt() {}

// ---- Program --------------------------------------------------------------

// Global declares one global: a scalar (Len == 0) or an int array of
// Len elements (a power of two). Bank >= 0 pins it to shared bank
// Bank via __bank(n); Init holds the initial values (length 1 for a
// scalar, Len for an array).
type Global struct {
	Name string
	Len  int
	Bank int
	Init []int32
}

// IsArray reports whether the global is an array.
func (g *Global) IsArray() bool { return g.Len > 0 }

// Prog is one generated program plus the metadata the differential
// checker needs: Seed reproduces it via Generate, and MinCores is the
// smallest machine it may run on (team sizes fit 4*MinCores harts and
// __bank placements stay below MinCores).
type Prog struct {
	Seed     int64
	MinCores int
	Globals  []*Global
	Stmts    []Stmt
}

// Global returns the named global, or nil.
func (p *Prog) Global(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// ---- Rendering ------------------------------------------------------------

// Render emits the program as MiniC source accepted by internal/cc.
func (p *Prog) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* fuzzgen seed=%d mincores=%d */\n", p.Seed, p.MinCores)
	for _, g := range p.Globals {
		b.WriteString("int ")
		b.WriteString(g.Name)
		if g.IsArray() {
			fmt.Fprintf(&b, "[%d]", g.Len)
		}
		if g.Bank >= 0 {
			fmt.Fprintf(&b, " __bank(%d)", g.Bank)
		}
		if len(g.Init) > 0 {
			if g.IsArray() {
				b.WriteString(" = {")
				for i, v := range g.Init {
					if i > 0 {
						b.WriteString(", ")
					}
					fmt.Fprintf(&b, "%d", v)
				}
				b.WriteString("}")
			} else {
				fmt.Fprintf(&b, " = %d", g.Init[0])
			}
		}
		b.WriteString(";\n")
	}
	b.WriteString("void main() {\n")
	renderStmts(&b, p.Stmts, 1)
	b.WriteString("}\n")
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteByte('\t')
	}
}

func renderStmts(b *strings.Builder, list []Stmt, depth int) {
	for _, s := range list {
		renderStmt(b, s, depth)
	}
}

func renderStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *Assign:
		indent(b, depth)
		fmt.Fprintf(b, "%s %s ", s.Name, s.Op)
		renderExpr(b, s.E)
		b.WriteString(";\n")
	case *Store:
		indent(b, depth)
		b.WriteString(s.Name)
		renderIndex(b, s.Idx, s.Loop, s.Mask)
		fmt.Fprintf(b, " %s ", s.Op)
		renderExpr(b, s.E)
		b.WriteString(";\n")
	case *If:
		indent(b, depth)
		b.WriteString("if (")
		renderExpr(b, s.Cond)
		b.WriteString(") {\n")
		renderStmts(b, s.Then, depth+1)
		indent(b, depth)
		if len(s.Else) == 0 {
			b.WriteString("}\n")
			return
		}
		b.WriteString("} else {\n")
		renderStmts(b, s.Else, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *SeqFor:
		indent(b, depth)
		fmt.Fprintf(b, "for (int %s = 0; %s < %d; %s++) {\n", s.Var, s.Var, s.N, s.Var)
		renderStmts(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *ParFor:
		indent(b, depth)
		b.WriteString("#pragma omp parallel for")
		if s.Red != nil {
			fmt.Fprintf(b, " reduction(%s:%s)", s.Red.Op, s.Red.Name)
		}
		b.WriteString("\n")
		indent(b, depth)
		fmt.Fprintf(b, "for (int %s = %d; %s < %d; %s++) {\n",
			s.Var, s.Lo, s.Var, s.Lo+s.Trip, s.Var)
		for _, w := range s.Writes {
			renderStmt(b, w, depth+1)
		}
		if s.Red != nil {
			indent(b, depth+1)
			fmt.Fprintf(b, "%s = %s %s (", s.Red.Name, s.Red.Name, s.Red.Op)
			renderExpr(b, s.Red.E)
			b.WriteString(");\n")
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *Sections:
		indent(b, depth)
		b.WriteString("#pragma omp parallel sections\n")
		indent(b, depth)
		b.WriteString("{\n")
		for _, sec := range s.Secs {
			indent(b, depth+1)
			b.WriteString("#pragma omp section\n")
			renderStmt(b, sec, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	}
}

func renderIndex(b *strings.Builder, idx *Expr, loop string, mask int32) {
	if idx == nil {
		fmt.Fprintf(b, "[%s]", loop)
		return
	}
	b.WriteString("[(")
	renderExpr(b, idx)
	fmt.Fprintf(b, ") & %d]", mask)
}

func renderExpr(b *strings.Builder, e *Expr) {
	switch e.Kind {
	case ENum:
		fmt.Fprintf(b, "%d", e.Num)
	case EScalar, ELoop:
		b.WriteString(e.Name)
	case EIndex:
		b.WriteString(e.Name)
		renderIndex(b, e.Idx, e.Loop, e.Mask)
	case EUnary:
		fmt.Fprintf(b, "(%s(", e.Op)
		renderExpr(b, e.X)
		b.WriteString("))")
	case EBinary:
		b.WriteString("((")
		renderExpr(b, e.X)
		fmt.Fprintf(b, ") %s (", e.Op)
		renderExpr(b, e.Y)
		b.WriteString("))")
	case ECond:
		b.WriteString("((")
		renderExpr(b, e.X)
		b.WriteString(") ? (")
		renderExpr(b, e.Y)
		b.WriteString(") : (")
		renderExpr(b, e.Z)
		b.WriteString("))")
	}
}

// ---- Cloning (the shrinker mutates deep copies) ---------------------------

// Clone deep-copies the program.
func (p *Prog) Clone() *Prog {
	c := &Prog{Seed: p.Seed, MinCores: p.MinCores}
	for _, g := range p.Globals {
		gg := *g
		gg.Init = append([]int32(nil), g.Init...)
		c.Globals = append(c.Globals, &gg)
	}
	c.Stmts = cloneStmts(p.Stmts)
	return c
}

func cloneStmts(list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Assign:
		return &Assign{Name: s.Name, Op: s.Op, E: cloneExpr(s.E)}
	case *Store:
		return &Store{Name: s.Name, Mask: s.Mask, Idx: cloneExpr(s.Idx),
			Loop: s.Loop, Op: s.Op, E: cloneExpr(s.E)}
	case *If:
		return &If{Cond: cloneExpr(s.Cond), Then: cloneStmts(s.Then), Else: cloneStmts(s.Else)}
	case *SeqFor:
		return &SeqFor{Var: s.Var, N: s.N, Body: cloneStmts(s.Body)}
	case *ParFor:
		c := &ParFor{Var: s.Var, Lo: s.Lo, Trip: s.Trip}
		if s.Red != nil {
			c.Red = &Reduction{Name: s.Red.Name, Op: s.Red.Op, E: cloneExpr(s.Red.E)}
		}
		for _, w := range s.Writes {
			c.Writes = append(c.Writes, cloneStmt(w).(*Store))
		}
		return c
	case *Sections:
		c := &Sections{}
		for _, sec := range s.Secs {
			c.Secs = append(c.Secs, cloneStmt(sec).(*Assign))
		}
		return c
	}
	panic("fuzzgen: unknown statement type")
}

func cloneExpr(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.Idx = cloneExpr(e.Idx)
	c.X = cloneExpr(e.X)
	c.Y = cloneExpr(e.Y)
	c.Z = cloneExpr(e.Z)
	return &c
}
