package fuzzgen

// The shrinker: greedy delta debugging over the program AST. Each
// candidate edit is applied to a deep copy; an edit is kept only if
// the copy still fails the predicate. Edits shrink strictly (fewer
// statements, smaller loops, smaller expressions), so the loop
// terminates; budget bounds the total number of predicate calls for
// the pathological cases.

// Shrink minimizes p while failing(p) stays true. The predicate is
// "any failure", so a shrink can in principle slide from one bug to
// another — the minimized program still reproduces a real divergence.
func Shrink(p *Prog, failing func(*Prog) bool, budget int) *Prog {
	cur := p.Clone()
	s := &shrinker{failing: failing, budget: budget}
	for {
		improved := false
		if s.shrinkStmts(cur, &cur.Stmts) {
			improved = true
		}
		if s.shrinkLoops(cur) {
			improved = true
		}
		if s.shrinkExprs(cur) {
			improved = true
		}
		if s.pruneGlobals(cur) {
			improved = true
		}
		if !improved || s.budget <= 0 {
			return cur
		}
	}
}

type shrinker struct {
	failing func(*Prog) bool
	budget  int
}

// try re-checks the (already mutated) program; undo restores it when
// the mutation no longer fails.
func (s *shrinker) try(p *Prog, undo func()) bool {
	if s.budget <= 0 {
		undo()
		return false
	}
	s.budget--
	if s.failing(p) {
		return true
	}
	undo()
	return false
}

// shrinkStmts tries removing statements, hoisting loop/if bodies into
// their parent list, and stripping parallel-for clauses.
func (s *shrinker) shrinkStmts(p *Prog, list *[]Stmt) bool {
	improved := false
	for i := 0; i < len(*list); {
		old := *list
		removed := old[i]
		*list = append(append([]Stmt{}, old[:i]...), old[i+1:]...)
		if s.try(p, func() { *list = old }) {
			improved = true
			continue // same index now holds the next statement
		}
		switch st := removed.(type) {
		case *If:
			if s.shrinkStmts(p, &st.Then) {
				improved = true
			}
			if s.shrinkStmts(p, &st.Else) {
				improved = true
			}
		case *SeqFor:
			if s.shrinkStmts(p, &st.Body) {
				improved = true
			}
		case *ParFor:
			if st.Red != nil {
				red := st.Red
				st.Red = nil
				if s.try(p, func() { st.Red = red }) {
					improved = true
				}
			}
			for w := 0; w < len(st.Writes); {
				oldW := st.Writes
				st.Writes = append(append([]*Store{}, oldW[:w]...), oldW[w+1:]...)
				if s.try(p, func() { st.Writes = oldW }) {
					improved = true
					continue
				}
				w++
			}
		case *Sections:
			for w := 0; w < len(st.Secs) && len(st.Secs) > 1; {
				oldW := st.Secs
				st.Secs = append(append([]*Assign{}, oldW[:w]...), oldW[w+1:]...)
				if s.try(p, func() { st.Secs = oldW }) {
					improved = true
					continue
				}
				w++
			}
		}
		i++
	}
	return improved
}

// shrinkLoops reduces trip counts toward 1.
func (s *shrinker) shrinkLoops(p *Prog) bool {
	improved := false
	walkStmts(p.Stmts, func(st Stmt) {
		switch st := st.(type) {
		case *SeqFor:
			for _, n := range []int{1, st.N / 2} {
				if n >= 1 && n < st.N {
					old := st.N
					st.N = n
					if s.try(p, func() { st.N = old }) {
						improved = true
						break
					}
				}
			}
		case *ParFor:
			for _, n := range []int{1, st.Trip / 2} {
				if n >= 1 && n < st.Trip {
					old := st.Trip
					st.Trip = n
					if s.try(p, func() { st.Trip = old }) {
						improved = true
						break
					}
				}
			}
			if st.Lo != 0 {
				old := st.Lo
				st.Lo = 0
				if s.try(p, func() { st.Lo = old }) {
					improved = true
				}
			}
		}
	})
	return improved
}

// shrinkExprs tries replacing every expression node with one of its
// children or a literal.
func (s *shrinker) shrinkExprs(p *Prog) bool {
	improved := false
	walkExprSlots(p.Stmts, func(slot **Expr) {
		e := *slot
		if e == nil || e.Kind == ENum {
			return
		}
		var cands []*Expr
		for _, c := range []*Expr{e.X, e.Y, e.Z} {
			if c != nil {
				cands = append(cands, c)
			}
		}
		cands = append(cands, &Expr{Kind: ENum, Num: 0}, &Expr{Kind: ENum, Num: 1})
		for _, c := range cands {
			if sameShape(e, c) {
				continue
			}
			*slot = c
			if s.try(p, func() { *slot = e }) {
				improved = true
				return
			}
		}
	})
	return improved
}

func sameShape(a, b *Expr) bool {
	return a.Kind == ENum && b.Kind == ENum && a.Num == b.Num
}

// pruneGlobals drops globals the program no longer references.
func (s *shrinker) pruneGlobals(p *Prog) bool {
	used := map[string]bool{}
	walkStmts(p.Stmts, func(st Stmt) {
		switch st := st.(type) {
		case *Assign:
			used[st.Name] = true
		case *Store:
			used[st.Name] = true
		case *ParFor:
			if st.Red != nil {
				used[st.Red.Name] = true
			}
		case *Sections:
			for _, sec := range st.Secs {
				used[sec.Name] = true
			}
		}
	})
	walkExprSlots(p.Stmts, func(slot **Expr) {
		if e := *slot; e != nil && (e.Kind == EScalar || e.Kind == EIndex) {
			used[e.Name] = true
		}
	})
	improved := false
	for i := 0; i < len(p.Globals); {
		if used[p.Globals[i].Name] {
			i++
			continue
		}
		old := p.Globals
		p.Globals = append(append([]*Global{}, old[:i]...), old[i+1:]...)
		if s.try(p, func() { p.Globals = old }) {
			improved = true
			continue
		}
		i++
	}
	return improved
}

// ---- AST walkers ----------------------------------------------------------

// walkStmts visits every statement (including parallel-for writes and
// section assignments) depth-first.
func walkStmts(list []Stmt, fn func(Stmt)) {
	for _, st := range list {
		fn(st)
		switch st := st.(type) {
		case *If:
			walkStmts(st.Then, fn)
			walkStmts(st.Else, fn)
		case *SeqFor:
			walkStmts(st.Body, fn)
		case *ParFor:
			for _, w := range st.Writes {
				fn(w)
			}
		case *Sections:
			for _, sec := range st.Secs {
				fn(sec)
			}
		}
	}
}

// walkExprSlots visits every expression slot in the tree, outermost
// first, so a shrink can replace whole expressions before their parts.
func walkExprSlots(list []Stmt, fn func(**Expr)) {
	var walkExpr func(slot **Expr)
	walkExpr = func(slot **Expr) {
		if *slot == nil {
			return
		}
		fn(slot)
		e := *slot
		walkExpr(&e.Idx)
		walkExpr(&e.X)
		walkExpr(&e.Y)
		walkExpr(&e.Z)
	}
	var walk func(st Stmt)
	walk = func(st Stmt) {
		switch st := st.(type) {
		case *Assign:
			walkExpr(&st.E)
		case *Store:
			walkExpr(&st.Idx)
			walkExpr(&st.E)
		case *If:
			walkExpr(&st.Cond)
			for _, c := range st.Then {
				walk(c)
			}
			for _, c := range st.Else {
				walk(c)
			}
		case *SeqFor:
			for _, c := range st.Body {
				walk(c)
			}
		case *ParFor:
			for _, w := range st.Writes {
				walk(w)
			}
			if st.Red != nil {
				walkExpr(&st.Red.E)
			}
		case *Sections:
			for _, sec := range st.Secs {
				walk(sec)
			}
		}
	}
	for _, st := range list {
		walk(st)
	}
}
