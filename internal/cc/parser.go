package cc

import "math"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []Token
	pos     int
	structs map[string]*Type // by typedef/struct name
}

// Parse builds the AST of a MiniC translation unit.
func Parse(src string) (*Program, error) {
	toks, includes, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, structs: map[string]*Type{}}
	prog := &Program{Structs: p.structs, Includes: includes}
	for !p.at(TEOF) {
		if p.atPragma() {
			// top-level pragmas (e.g. GCC stuff) are ignored
			p.next()
			continue
		}
		if err := p.topLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }
func (p *parser) atPragma() bool    { return p.cur().Kind == TPragma }

func (p *parser) atPunct(v string) bool {
	return p.cur().Kind == TPunct && p.cur().Val == v
}

func (p *parser) atIdent(v string) bool {
	return p.cur().Kind == TIdent && p.cur().Val == v
}

func (p *parser) acceptPunct(v string) bool {
	if p.atPunct(v) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(v string) bool {
	if p.atIdent(v) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(v string) error {
	if !p.acceptPunct(v) {
		return errf(p.cur().Line, p.cur().Col, "expected %q, got %q", v, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TIdent || keywords[t.Val] {
		return t, errf(t.Line, t.Col, "expected identifier, got %q", t)
	}
	p.pos++
	return t, nil
}

// atTypeStart reports whether the current token begins a type.
func (p *parser) atTypeStart() bool {
	t := p.cur()
	if t.Kind != TIdent {
		return false
	}
	switch t.Val {
	case "int", "void", "struct", "unsigned", "const", "static":
		return true
	}
	_, isType := p.structs[t.Val]
	return isType
}

// parseTypeSpec parses the base type (no declarator stars).
func (p *parser) parseTypeSpec() (*Type, error) {
	for p.acceptIdent("const") || p.acceptIdent("static") || p.acceptIdent("unsigned") {
	}
	t := p.cur()
	switch {
	case p.acceptIdent("int"):
		return typeInt, nil
	case p.acceptIdent("void"):
		return typeVoid, nil
	case p.acceptIdent("struct"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.atPunct("{") {
			return p.parseStructBody(name.Val)
		}
		st, ok := p.structs[name.Val]
		if !ok {
			return nil, errf(name.Line, name.Col, "unknown struct %q", name.Val)
		}
		return st, nil
	case t.Kind == TIdent:
		if st, ok := p.structs[t.Val]; ok {
			p.pos++
			return st, nil
		}
	}
	return nil, errf(t.Line, t.Col, "expected type, got %q", t)
}

// parseStructBody parses "{ fields }" and registers the struct.
func (p *parser) parseStructBody(name string) (*Type, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &Type{Kind: TypeStruct, Name: name}
	off := 0
	for !p.acceptPunct("}") {
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		for {
			ft := base
			for p.acceptPunct("*") {
				ft = ptrTo(ft)
			}
			fn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.acceptPunct("[") {
				lenTok := p.cur()
				n, err := p.parseConstExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				if n <= 0 {
					return nil, errf(lenTok.Line, lenTok.Col, "bad array length %d", n)
				}
				ft = &Type{Kind: TypeArray, Elem: ft, Len: int(n)}
			}
			st.Fields = append(st.Fields, Field{Name: fn.Val, Type: ft, Offset: off})
			off += ft.Size()
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	st.size = off
	p.structs[name] = st
	return st, nil
}

// topLevel parses one global declaration.
func (p *parser) topLevel(prog *Program) error {
	// typedef struct {...} name;
	if p.acceptIdent("typedef") {
		if !p.acceptIdent("struct") {
			return errf(p.cur().Line, p.cur().Col, "only 'typedef struct' is supported")
		}
		var tagName string
		if p.cur().Kind == TIdent && !p.atPunct("{") && !keywords[p.cur().Val] {
			tagName = p.next().Val
		}
		st, err := p.parseStructBody(tagName)
		if err != nil {
			return err
		}
		alias, err := p.expectIdent()
		if err != nil {
			return err
		}
		if st.Name == "" {
			st.Name = alias.Val
		}
		p.structs[alias.Val] = st
		return p.expectPunct(";")
	}
	if p.atIdent("struct") && p.toks[p.pos+2].Kind == TPunct && p.toks[p.pos+2].Val == "{" {
		p.next() // struct
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if _, err := p.parseStructBody(name.Val); err != nil {
			return err
		}
		return p.expectPunct(";")
	}

	base, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	for {
		t := base
		for p.acceptPunct("*") {
			t = ptrTo(t)
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if p.atPunct("(") {
			fn, err := p.parseFunc(t, name)
			if err != nil {
				return err
			}
			prog.Funcs = append(prog.Funcs, fn)
			return nil
		}
		vd, err := p.parseVarTail(t, name)
		if err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, vd)
		if p.acceptPunct(",") {
			continue
		}
		return p.expectPunct(";")
	}
}

// parseVarTail parses the rest of a variable declaration after the name:
// optional array length, __bank attribute and initializer.
func (p *parser) parseVarTail(t *Type, name Token) (*VarDecl, error) {
	vd := &VarDecl{Name: name.Val, Type: t, Bank: -1, Line: name.Line}
	if p.acceptPunct("[") {
		n, err := p.parseConstExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, errf(name.Line, name.Col, "bad array length %d for %q", n, name.Val)
		}
		vd.Type = &Type{Kind: TypeArray, Elem: t, Len: int(n)}
	}
	if p.acceptIdent("__bank") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		n, err := p.parseConstExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		vd.Bank = int(n)
	}
	if p.acceptPunct("=") {
		if p.atPunct("{") {
			list, err := p.parseArrayInit(vd)
			if err != nil {
				return nil, err
			}
			vd.List = list
		} else {
			e, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			vd.Init = e
		}
	}
	return vd, nil
}

// parseArrayInit parses "{ e, e, ... }" and "{ [a ... b] = v }" forms.
func (p *parser) parseArrayInit(vd *VarDecl) ([]InitEntry, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []InitEntry
	idx := 0
	for !p.acceptPunct("}") {
		if p.acceptPunct("[") {
			lo, err := p.parseConstExpr()
			if err != nil {
				return nil, err
			}
			hi := lo
			if p.acceptPunct("...") {
				hi, err = p.parseConstExpr()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			v, err := p.parseConstExpr()
			if err != nil {
				return nil, err
			}
			out = append(out, InitEntry{Lo: int(lo), Hi: int(hi), Value: v})
			idx = int(hi) + 1
		} else {
			v, err := p.parseConstExpr()
			if err != nil {
				return nil, err
			}
			out = append(out, InitEntry{Lo: idx, Hi: idx, Value: v})
			idx++
		}
		if !p.acceptPunct(",") {
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			break
		}
	}
	return out, nil
}

// parseConstExpr parses and folds a constant expression.
func (p *parser) parseConstExpr() (int64, error) {
	e, err := p.parseCond()
	if err != nil {
		return 0, err
	}
	v, ok := foldConst(e)
	if !ok {
		return 0, errf(e.Line, e.Col, "expression is not constant")
	}
	return v, nil
}

// foldConst evaluates a constant expression at compile time. Every
// intermediate result is truncated to int32, because that is what the
// RV32IM machine computes at run time: folding in a wider type would
// let an overflowed subexpression (e.g. 2000000000 + 2000000000) feed
// a comparison, shift or division with a value the hardware never
// sees. Found by the determinism fuzzer (testdata/fuzz/fold-*.c).
func foldConst(e *Expr) (int64, bool) {
	v, ok := foldConst32(e)
	return int64(v), ok
}

func foldConst32(e *Expr) (int32, bool) {
	switch e.Kind {
	case ENum:
		return int32(e.Num), true
	case EUnary:
		v, ok := foldConst32(e.Lhs)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case EBinary:
		a, ok1 := foldConst32(e.Lhs)
		b, ok2 := foldConst32(e.Rhs)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				// The machine defines x/0 = -1, but refusing to fold
				// keeps division-by-zero visible in the emitted code.
				return 0, false
			}
			if a == math.MinInt32 && b == -1 {
				return math.MinInt32, true // RV32IM overflow case
			}
			return a / b, true
		case "%":
			if b == 0 {
				return 0, false
			}
			if a == math.MinInt32 && b == -1 {
				return 0, true // RV32IM overflow case
			}
			return a % b, true
		case "<<":
			return a << (uint32(b) & 31), true
		case ">>":
			return a >> (uint32(b) & 31), true
		case "&":
			return a & b, true
		case "|":
			return a | b, true
		case "^":
			return a ^ b, true
		case "==":
			return b2i(a == b), true
		case "!=":
			return b2i(a != b), true
		case "<":
			return b2i(a < b), true
		case ">":
			return b2i(a > b), true
		case "<=":
			return b2i(a <= b), true
		case ">=":
			return b2i(a >= b), true
		case "&&":
			return b2i(a != 0 && b != 0), true
		case "||":
			return b2i(a != 0 || b != 0), true
		}
	case ECond:
		c, ok := foldConst32(e.Lhs)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return foldConst32(e.Rhs)
		}
		return foldConst32(e.Third)
	}
	return 0, false
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// parseFunc parses a function definition after its name.
func (p *parser) parseFunc(ret *Type, name Token) (*FuncDecl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Val, Ret: ret, Line: name.Line}
	if !p.acceptPunct(")") {
		if p.atIdent("void") && p.toks[p.pos+1].Val == ")" {
			p.next()
			p.next()
		} else {
			for {
				base, err := p.parseTypeSpec()
				if err != nil {
					return nil, err
				}
				t := base
				for p.acceptPunct("*") {
					t = ptrTo(t)
				}
				pn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if p.acceptPunct("[") { // array param decays to pointer
					if !p.atPunct("]") {
						if _, err := p.parseConstExpr(); err != nil {
							return nil, err
						}
					}
					if err := p.expectPunct("]"); err != nil {
						return nil, err
					}
					t = ptrTo(t)
				}
				fn.Params = append(fn.Params, &VarDecl{Name: pn.Val, Type: t, Bank: -1, Line: pn.Line})
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
	}
	if p.acceptPunct(";") { // prototype: record with nil body
		fn.Body = nil
		return fn, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// ---- statements ----

func (p *parser) parseBlock() (*Stmt, error) {
	line := p.cur().Line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := &Stmt{Kind: SBlock, Line: line}
	for !p.acceptPunct("}") {
		if p.at(TEOF) {
			return nil, errf(line, 1, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	return blk, nil
}

func (p *parser) parseStmt() (*Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TPragma:
		p.next()
		return &Stmt{Kind: SPragma, Prag: t.Val, Line: t.Line}, nil
	case p.atPunct("{"):
		return p.parseBlock()
	case p.acceptPunct(";"):
		return &Stmt{Kind: SEmpty, Line: t.Line}, nil
	case p.acceptIdent("if"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &Stmt{Kind: SIf, Expr: cond, Body: body, Line: t.Line}
		if p.acceptIdent("else") {
			st.Else, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.acceptIdent("while"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: SWhile, Expr: cond, Body: body, Line: t.Line}, nil
	case p.acceptIdent("do"):
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if !p.acceptIdent("while") {
			return nil, errf(p.cur().Line, p.cur().Col, "expected 'while' after do body")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: SDoWhile, Expr: cond, Body: body, Line: t.Line}, nil
	case p.acceptIdent("for"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		st := &Stmt{Kind: SFor, Line: t.Line}
		if !p.acceptPunct(";") {
			if p.atTypeStart() {
				d, err := p.parseLocalDecl()
				if err != nil {
					return nil, err
				}
				st.Init = d
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Init = &Stmt{Kind: SExpr, Expr: e, Line: t.Line}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
			}
		}
		if !p.atPunct(";") {
			var err error
			st.Cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.atPunct(")") {
			var err error
			st.Post, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case p.acceptIdent("return"):
		st := &Stmt{Kind: SReturn, Line: t.Line}
		if !p.atPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Expr = e
		}
		return st, p.expectPunct(";")
	case p.acceptIdent("break"):
		return &Stmt{Kind: SBreak, Line: t.Line}, p.expectPunct(";")
	case p.acceptIdent("continue"):
		return &Stmt{Kind: SContinue, Line: t.Line}, p.expectPunct(";")
	case p.atTypeStart():
		return p.parseLocalDecl()
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Stmt{Kind: SExpr, Expr: e, Line: t.Line}, p.expectPunct(";")
}

// parseLocalDecl parses "type name [= init] (, name...)?;" producing a
// block of SDecl statements when several names are declared.
func (p *parser) parseLocalDecl() (*Stmt, error) {
	line := p.cur().Line
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	var decls []*Stmt
	for {
		t := base
		for p.acceptPunct("*") {
			t = ptrTo(t)
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		vd, err := p.parseVarTail(t, name)
		if err != nil {
			return nil, err
		}
		decls = append(decls, &Stmt{Kind: SDecl, Decl: vd, Line: name.Line})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &Stmt{Kind: SBlock, List: decls, Line: line, NoScope: true}, nil
}
