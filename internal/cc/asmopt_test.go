package cc

import (
	"strings"
	"testing"
)

func TestPeepholeForwardProp(t *testing.T) {
	in := []string{
		"\tmv t1, s0",
		"\tlw t1, 0(t1)",
	}
	out := peephole(in)
	if len(out) != 1 || strings.TrimSpace(out[0]) != "lw t1, 0(s0)" {
		t.Errorf("got %q", out)
	}
}

func TestPeepholeBackwardCollapse(t *testing.T) {
	in := []string{
		"\taddi t1, s0, 4",
		"\tmv s0, t1",
		"\tli t1, 0", // t1 dead between mv and redefinition
	}
	out := peephole(in)
	if len(out) != 2 || strings.TrimSpace(out[0]) != "addi s0, s0, 4" {
		t.Errorf("got %q", out)
	}
}

func TestPeepholeBranchConsumesCopy(t *testing.T) {
	// A temp is dead past a statement boundary, so the copy folds into
	// the branch that consumes it.
	in := []string{
		"\tmv t1, s0",
		"\tbeq t1, zero, .Lx",
	}
	out := peephole(in)
	if len(out) != 1 || strings.TrimSpace(out[0]) != "beq s0, zero, .Lx" {
		t.Errorf("got %q", out)
	}
}

func TestPeepholeLabelStopsProp(t *testing.T) {
	in := []string{
		"\tmv t1, s0",
		".Lx:", // x may be live-in at a label: the copy must survive
		"\tadd t2, t1, t1",
		"\tli t1, 0",
	}
	out := peephole(in)
	if strings.TrimSpace(out[0]) != "mv t1, s0" {
		t.Errorf("got %q", out)
	}
}

func TestPeepholeSourceOverwriteAborts(t *testing.T) {
	in := []string{
		"\tmv t1, s0",
		"\taddi s0, s0, 4", // y changes while x live
		"\tadd t2, t1, t1",
		"\tli t1, 0",
	}
	out := peephole(in)
	if strings.TrimSpace(out[0]) != "mv t1, s0" {
		t.Errorf("mv must survive: %q", out)
	}
}

func TestPeepholeStoreUse(t *testing.T) {
	in := []string{
		"\tmv t1, s3",
		"\tsw t1, 0(t2)",
		"\tli t1, 7",
	}
	out := peephole(in)
	if len(out) != 2 || strings.TrimSpace(out[0]) != "sw s3, 0(t2)" {
		t.Errorf("got %q", out)
	}
}

func TestPeepholeMemBaseUse(t *testing.T) {
	in := []string{
		"\tmv t2, s1",
		"\tsw s0, 4(t2)",
		"\tli t2, 0",
	}
	out := peephole(in)
	if len(out) != 2 || strings.TrimSpace(out[0]) != "sw s0, 4(s1)" {
		t.Errorf("got %q", out)
	}
}

// The paper's 7-instruction inner loop (2 loads, mul, add, 2 increments,
// branch): our compiled pointer-walk kernel must stay within 10
// instructions per iteration.
func TestInnerLoopQuality(t *testing.T) {
	asmText, err := BuildProgram(`
int X[64] = {[0 ... 63] = 1};
int Y[64] = {[0 ... 63] = 1};
int out;
void main() {
	int *px;
	int *py;
	int *xe;
	int tmp;
	px = X;
	py = Y;
	xe = X + 64;
	tmp = 0;
	while (px < xe) {
		tmp = tmp + *px * *py;
		px = px + 1;
		py = py + 1;
	}
	out = tmp;
}
`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(asmText, "\n")
	// find the while-loop body: between the "while" label and its branch
	start, end := -1, -1
	for i, l := range lines {
		if strings.HasPrefix(l, ".Lwhile") {
			start = i
		}
		if start >= 0 && strings.Contains(l, "j .Lwhile") {
			end = i
			break
		}
	}
	if start < 0 || end < 0 {
		t.Fatalf("loop not found in:\n%s", asmText)
	}
	count := 0
	for _, l := range lines[start:end] {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasSuffix(l, ":") && !strings.HasPrefix(l, "#") {
			count++
		}
	}
	if count > 10 {
		t.Errorf("inner loop has %d instructions, want <= 10:\n%s",
			count, strings.Join(lines[start:end+1], "\n"))
	}
}
