package cc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/lbp"
	"repro/internal/trace"
)

// Differential testing: random integer expressions are evaluated by a Go
// reference evaluator and by the compiled program running on the
// simulated LBP; the results must agree bit-for-bit.

// exprGen builds a random expression string over variables a..e and a
// parallel Go evaluation.
type exprGen struct {
	rng  *rand.Rand
	vars map[string]int32
}

func (g *exprGen) gen(depth int) (string, int32) {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		// leaf
		if g.rng.Intn(2) == 0 {
			names := []string{"a", "b", "c", "d", "e"}
			n := names[g.rng.Intn(len(names))]
			return n, g.vars[n]
		}
		v := int32(g.rng.Intn(2000) - 1000)
		return fmt.Sprintf("%d", v), v
	}
	switch g.rng.Intn(16) {
	case 0, 1:
		s, v := g.gen(depth - 1)
		return "(-" + "(" + s + "))", -v
	case 2:
		s, v := g.gen(depth - 1)
		return "(~(" + s + "))", ^v
	case 3:
		s, v := g.gen(depth - 1)
		r := int32(0)
		if v == 0 {
			r = 1
		}
		return "(!(" + s + "))", r
	case 4: // ternary
		c, cv := g.gen(depth - 1)
		a, av := g.gen(depth - 1)
		b, bv := g.gen(depth - 1)
		r := bv
		if cv != 0 {
			r = av
		}
		return "((" + c + ") ? (" + a + ") : (" + b + "))", r
	default:
		ops := []string{"+", "-", "*", "&", "|", "^", "<", ">", "<=", ">=",
			"==", "!=", "&&", "||", "<<", ">>", "/", "%"}
		op := ops[g.rng.Intn(len(ops))]
		l, lv := g.gen(depth - 1)
		r, rv := g.gen(depth - 1)
		switch op {
		case "+":
			return bin(l, op, r), lv + rv
		case "-":
			return bin(l, op, r), lv - rv
		case "*":
			return bin(l, op, r), lv * rv
		case "&":
			return bin(l, op, r), lv & rv
		case "|":
			return bin(l, op, r), lv | rv
		case "^":
			return bin(l, op, r), lv ^ rv
		case "<":
			return bin(l, op, r), b2i32(lv < rv)
		case ">":
			return bin(l, op, r), b2i32(lv > rv)
		case "<=":
			return bin(l, op, r), b2i32(lv <= rv)
		case ">=":
			return bin(l, op, r), b2i32(lv >= rv)
		case "==":
			return bin(l, op, r), b2i32(lv == rv)
		case "!=":
			return bin(l, op, r), b2i32(lv != rv)
		case "&&":
			return bin(l, op, r), b2i32(lv != 0 && rv != 0)
		case "||":
			return bin(l, op, r), b2i32(lv != 0 || rv != 0)
		case "<<":
			// mask the shift amount like the hardware does
			sh := "((" + r + ") & 7)"
			return bin(l, "<<", sh), lv << uint(rv&7)
		case ">>":
			sh := "((" + r + ") & 7)"
			return bin(l, ">>", sh), lv >> uint(rv&7)
		case "/":
			den := "(((" + r + ") & 15) + 1)" // never zero
			d := (rv & 15) + 1
			return bin(l, "/", den), lv / d
		case "%":
			den := "(((" + r + ") & 15) + 1)"
			d := (rv & 15) + 1
			return bin(l, "%", den), lv % d
		}
	}
	return "0", 0
}

func bin(l, op, r string) string { return "((" + l + ") " + op + " (" + r + "))" }

func b2i32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func TestDifferentialExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	const rounds = 12
	const exprsPerRound = 10
	for round := 0; round < rounds; round++ {
		vars := map[string]int32{
			"a": int32(rng.Intn(200) - 100),
			"b": int32(rng.Intn(2000) - 1000),
			"c": int32(rng.Intn(65536) - 32768),
			"d": int32(rng.Intn(7)) - 3,
			"e": int32(rng.Int31()),
		}
		g := &exprGen{rng: rng, vars: vars}
		var body strings.Builder
		want := make([]int32, exprsPerRound)
		for i := 0; i < exprsPerRound; i++ {
			s, v := g.gen(4)
			want[i] = v
			fmt.Fprintf(&body, "\tout[%d] = %s;\n", i, s)
		}
		src := fmt.Sprintf(`
int out[%d];
void main() {
	int a; int b; int c; int d; int e;
	a = %d; b = %d; c = %d; d = %d; e = %d;
%s
}
`, exprsPerRound, vars["a"], vars["b"], vars["c"], vars["d"], vars["e"], body.String())
		asmText, err := BuildProgram(src, DefaultOptions())
		if err != nil {
			t.Fatalf("round %d: compile: %v\n%s", round, err, src)
		}
		prog, err := asm.Assemble(asmText, asm.Options{})
		if err != nil {
			t.Fatalf("round %d: assemble: %v", round, err)
		}
		m := lbp.New(lbp.DefaultConfig(1))
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(10_000_000); err != nil {
			t.Fatalf("round %d: run: %v\nsource:\n%s", round, err, src)
		}
		got, _ := m.ReadSharedSlice(prog.Symbols["out"], exprsPerRound)
		for i := range want {
			if int32(got[i]) != want[i] {
				t.Errorf("round %d expr %d: machine %d, reference %d\nsource:\n%s",
					round, i, int32(got[i]), want[i], src)
			}
		}
	}
}

// Differential test of compound assignments and inc/dec against a Go
// reference trace.
func TestDifferentialCompound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 8; round++ {
		x := int32(rng.Intn(100) + 1)
		ref := x
		var body strings.Builder
		ops := []string{"+=", "-=", "*=", "&=", "|=", "^=", "<<=", ">>="}
		for i := 0; i < 12; i++ {
			op := ops[rng.Intn(len(ops))]
			v := int32(rng.Intn(7) + 1)
			fmt.Fprintf(&body, "\tx %s %d;\n", op, v)
			switch op {
			case "+=":
				ref += v
			case "-=":
				ref -= v
			case "*=":
				ref *= v
			case "&=":
				ref &= v
			case "|=":
				ref |= v
			case "^=":
				ref ^= v
			case "<<=":
				ref <<= uint(v)
			case ">>=":
				ref >>= uint(v)
			}
			if rng.Intn(2) == 0 {
				body.WriteString("\tx++;\n")
				ref++
			} else {
				body.WriteString("\t--x;\n")
				ref--
			}
		}
		src := fmt.Sprintf(`
int out;
void main() {
	int x;
	x = %d;
%s	out = x;
}
`, x, body.String())
		asmText, err := BuildProgram(src, DefaultOptions())
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		prog, err := asm.Assemble(asmText, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := lbp.New(lbp.DefaultConfig(1))
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if got, _ := m.ReadShared(prog.Symbols["out"]); int32(got) != ref {
			t.Errorf("round %d: machine %d, reference %d\n%s", round, int32(got), ref, src)
		}
	}
}

// The same random program compiled with and without the peephole pass
// must compute identical results (the optimizer is semantics-preserving).
func TestDifferentialMemoryLvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 6; round++ {
		n := 8
		ref := make([]int32, n)
		var body strings.Builder
		for i := 0; i < 24; i++ {
			idx := rng.Intn(n)
			v := int32(rng.Intn(50))
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&body, "\tarr[%d] = %d;\n", idx, v)
				ref[idx] = v
			case 1:
				fmt.Fprintf(&body, "\tarr[%d] += %d;\n", idx, v)
				ref[idx] += v
			case 2:
				fmt.Fprintf(&body, "\tarr[%d]++;\n", idx)
				ref[idx]++
			case 3:
				j := rng.Intn(n)
				fmt.Fprintf(&body, "\tarr[%d] = arr[%d] * 2 + 1;\n", idx, j)
				ref[idx] = ref[j]*2 + 1
			}
		}
		src := fmt.Sprintf(`
int arr[%d];
void main() {
%s}
`, n, body.String())
		asmText, err := BuildProgram(src, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.Assemble(asmText, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := lbp.New(lbp.DefaultConfig(1))
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		got, _ := m.ReadSharedSlice(prog.Symbols["arr"], n)
		for i := range ref {
			if int32(got[i]) != ref[i] {
				t.Errorf("round %d: arr[%d] = %d, reference %d\n%s",
					round, i, int32(got[i]), ref[i], src)
			}
		}
	}
}

// Regression: the peephole once dropped copies that carried live values
// across the jumps inside ?:/&&/|| value constructs, and collapsed
// temp-to-temp copies (dupTop) whose source stayed live. Both patterns
// appear when a conditional value feeds a compound memory update.
func TestConditionalValueInMemoryUpdate(t *testing.T) {
	src := `
int arr[4] = {10, 20, 30, 40};
int out[4];
void main() {
	int i;
	for (i = 0; i < 4; i++) {
		arr[i] += (i < 2) ? 100 : (i && 1) * 1000;
	}
	out[0] = (arr[0] > 100) ? arr[0] : -1;
	out[1] = arr[1];
	out[2] = (0 || arr[2]) + (arr[2] ? 5 : 7);
	out[3] = arr[3];
}
`
	asmText, err := BuildProgram(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := lbp.New(lbp.DefaultConfig(1))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadSharedSlice(prog.Symbols["out"], 4)
	// arr after the loop: {110, 120, 1030, 1040}; (0||1030) is 1 in C
	want := []uint32{110, 120, 1 + 5, 1040}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Every random program is also a determinism test: two runs of the same
// image produce identical event digests.
func TestRandomProgramsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := &exprGen{rng: rng, vars: map[string]int32{"a": 3, "b": -7, "c": 100, "d": 0, "e": 11}}
	var body strings.Builder
	for i := 0; i < 6; i++ {
		s, _ := g.gen(4)
		fmt.Fprintf(&body, "\tout[%d] = %s;\n", i, s)
	}
	src := fmt.Sprintf(`
int out[6];
void main() {
	int a; int b; int c; int d; int e;
	a = 3; b = -7; c = 100; d = 0; e = 11;
%s
}
`, body.String())
	asmText, err := BuildProgram(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	digest := func() uint64 {
		m := lbp.New(lbp.DefaultConfig(1))
		rec := trace.New(0)
		m.SetTrace(rec)
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return rec.Digest()
	}
	if digest() != digest() {
		t.Error("random program runs diverged")
	}
}

// Separate Machine instances are fully isolated: running several
// concurrently from goroutines must not interfere (the simulated machine
// itself uses no goroutines; the host may parallelize experiments).
func TestMachinesIsolatedAcrossGoroutines(t *testing.T) {
	asmText, err := BuildProgram(`
int out;
void main() {
	int i;
	out = 0;
	for (i = 0; i < 500; i++) out += i;
}
`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		cycles uint64
		val    uint32
	}
	results := make(chan outcome, 8)
	for g := 0; g < 8; g++ {
		go func() {
			m := lbp.New(lbp.DefaultConfig(1))
			if err := m.LoadProgram(prog); err != nil {
				results <- outcome{}
				return
			}
			res, err := m.Run(10_000_000)
			if err != nil {
				results <- outcome{}
				return
			}
			v, _ := m.ReadShared(prog.Symbols["out"])
			results <- outcome{res.Stats.Cycles, v}
		}()
	}
	first := <-results
	for i := 1; i < 8; i++ {
		r := <-results
		if r != first || r.val != 124750 {
			t.Errorf("goroutine run diverged: %+v vs %+v", r, first)
		}
	}
}
