package cc

import "strings"

// Peephole optimization of the emitted body lines. Two conservative local
// rewrites remove the register-shuffling `mv` instructions the stack-based
// expression evaluator produces, bringing hot-loop instruction counts
// close to the paper's hand-counted kernels:
//
//  1. forward copy propagation:  "mv X, Y" followed (within a branchless
//     window in which Y is not redefined) by instructions reading X, the
//     last of which overwrites X -> the reads become reads of Y and the
//     mv disappears.
//  2. backward copy elimination: "op X, ..." directly followed by
//     "mv D, X" where X is dead afterwards -> "op D, ...".
//
// Both run only on straight-line code: any label or control transfer ends
// the analysis window.

// instLine is a parsed assembly line.
type instLine struct {
	raw  string
	mn   string
	ops  []string
	memB string // base register of a memory operand, "" if none
}

func parseLine(l string) instLine {
	t := strings.TrimSpace(l)
	il := instLine{raw: l}
	if t == "" || strings.HasSuffix(t, ":") || strings.HasPrefix(t, ".") ||
		strings.HasPrefix(t, "#") {
		return il
	}
	mn, rest, _ := strings.Cut(t, " ")
	il.mn = mn
	for _, f := range strings.Split(rest, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if open := strings.IndexByte(f, '('); open >= 0 && strings.HasSuffix(f, ")") {
			il.memB = f[open+1 : len(f)-1]
			il.ops = append(il.ops, f[:open])
			continue
		}
		il.ops = append(il.ops, f)
	}
	return il
}

// control mnemonics that terminate a peephole window.
var controlMn = map[string]bool{
	"j": true, "jal": true, "jalr": true, "jr": true, "call": true,
	"ret": true, "p_ret": true, "p_jal": true, "p_jalr": true,
	"beq": true, "bne": true, "blt": true, "bge": true, "bltu": true,
	"bgeu": true, "bgt": true, "ble": true, "bgtu": true, "bleu": true,
	"beqz": true, "bnez": true, "bltz": true, "bgez": true, "blez": true,
	"bgtz": true, "ecall": true, "ebreak": true, "p_syncm": true,
}

// writesDest reports whether the mnemonic's first operand is a destination
// register.
func writesDest(mn string) bool {
	switch mn {
	case "sw", "sh", "sb", "p_swcv", "p_swre", "fence", "nop", "p_syncm":
		return false
	}
	if controlMn[mn] {
		return mn == "jal" || mn == "jalr" // write ra forms handled as barriers anyway
	}
	return true
}

// destOf returns the destination register of a line ("" if none).
func (il *instLine) destOf() string {
	if il.mn == "" || !writesDest(il.mn) || len(il.ops) == 0 {
		return ""
	}
	return il.ops[0]
}

// usesReg reports whether the line reads register r.
func (il *instLine) usesReg(r string) bool {
	if il.memB == r {
		return true
	}
	start := 0
	if il.destOf() != "" {
		start = 1
	}
	for i := start; i < len(il.ops); i++ {
		if il.ops[i] == r {
			return true
		}
	}
	// stores read their first operand too
	switch il.mn {
	case "sw", "sh", "sb":
		return len(il.ops) > 0 && il.ops[0] == r
	case "p_swcv", "p_swre":
		for _, o := range il.ops {
			if o == r {
				return true
			}
		}
	}
	return false
}

// substReg replaces reads of `from` with `to`, returning the new raw line.
func (il *instLine) substReg(from, to string) string {
	t := strings.TrimSpace(il.raw)
	mn, rest, _ := strings.Cut(t, " ")
	parts := strings.Split(rest, ",")
	dest := il.destOf()
	first := true
	for i := range parts {
		p := strings.TrimSpace(parts[i])
		isDest := first && dest != ""
		first = false
		switch {
		case strings.Contains(p, "(") && strings.HasSuffix(p, ")"):
			open := strings.IndexByte(p, '(')
			if p[open+1:len(p)-1] == from {
				p = p[:open+1] + to + ")"
			}
		case p == from && (!isDest || !writesDest(mn) || mn == "sw" || mn == "sh" || mn == "sb"):
			p = to
		}
		parts[i] = p
	}
	return "\t" + mn + " " + strings.Join(parts, ", ")
}

const peepholeWindow = 16

// isTempReg reports whether r is an expression temp (single-use values).
func isTempReg(r string) bool {
	for _, t := range tempRegs {
		if t == r {
			return true
		}
	}
	return r == scratch
}

// peephole applies the two rewrites until a fixed point (bounded).
func peephole(lines []string) []string {
	for pass := 0; pass < 4; pass++ {
		changed := false
		lines, changed = peepholeOnce(lines)
		if !changed {
			return lines
		}
	}
	return lines
}

func peepholeOnce(lines []string) ([]string, bool) {
	parsed := make([]instLine, len(lines))
	for i, l := range lines {
		parsed[i] = parseLine(l)
	}
	changed := false
	var out []string
	for i := 0; i < len(lines); i++ {
		il := parsed[i]
		// rewrite 1: forward copy propagation of "mv X, Y"
		if il.mn == "mv" && len(il.ops) == 2 && isTempReg(il.ops[0]) {
			x, y := il.ops[0], il.ops[1]
			if newLines, ok := tryForwardProp(parsed, i, x, y); ok {
				out = append(out, newLines...)
				i += len(newLines) // consumed i+1 .. i+len(newLines)
				changed = true
				continue
			}
		}
		// rewrite 2: "op X, ..." ; "mv D, X" with X dead after
		if d := il.destOf(); d != "" && isTempReg(d) && i+1 < len(lines) {
			nx := parsed[i+1]
			// sources are read before the destination is written, so the
			// destination may alias a source of il. A statement boundary
			// only proves d dead when the copy lands outside the temp set
			// (temp-to-temp copies — dupTop — keep d live as a stack entry).
			if nx.mn == "mv" && len(nx.ops) == 2 && nx.ops[1] == d && nx.ops[0] != d &&
				deadAfter(parsed, i+2, d, !isTempReg(nx.ops[0])) {
				out = append(out, il.substDest(nx.ops[0]))
				i++ // skip the mv
				changed = true
				continue
			}
		}
		out = append(out, lines[i])
	}
	return out, changed
}

// substDest rewrites the destination register of the line.
func (il *instLine) substDest(to string) string {
	t := strings.TrimSpace(il.raw)
	mn, rest, _ := strings.Cut(t, " ")
	parts := strings.Split(rest, ",")
	if len(parts) == 0 {
		return il.raw
	}
	from := strings.TrimSpace(parts[0])
	parts[0] = to
	// same register may appear as a source; keep sources intact
	for i := 1; i < len(parts); i++ {
		parts[i] = strings.TrimSpace(parts[i])
	}
	_ = from
	return "\t" + mn + " " + strings.Join(parts, ", ")
}

// deadAfter reports whether temp register r is dead in the window
// starting at index i. When allowBoundary is set, a label or control
// transfer (after its own register reads) counts as death — valid only
// when the caller knows r cannot be a live expression-stack entry there.
func deadAfter(parsed []instLine, i int, r string, allowBoundary bool) bool {
	for j := i; j < len(parsed) && j < i+peepholeWindow; j++ {
		il := parsed[j]
		if il.usesReg(r) {
			return false // branches and calls read their sources first
		}
		if il.mn == "" || controlMn[il.mn] {
			return allowBoundary
		}
		if il.destOf() == r {
			return true
		}
	}
	return false
}

// tryForwardProp attempts rewrite 1 at the mv on index i. On success it
// returns the replacement lines covering indexes i..end (mv removed).
func tryForwardProp(parsed []instLine, i int, x, y string) ([]string, bool) {
	var repl []string
	for j := i + 1; j < len(parsed) && j <= i+peepholeWindow; j++ {
		il := parsed[j]
		line := il.raw
		if il.usesReg(x) {
			line = il.substReg(x, y)
		}
		if il.mn == "" {
			return nil, false // label: conservative (x may be live-in there)
		}
		if controlMn[il.mn] {
			if !il.usesReg(x) {
				// x may carry a live value across the transfer (the
				// ?:/&&/|| value patterns do exactly that): keep the copy
				return nil, false
			}
			// the control instruction consumes x (substituted above); a
			// consumed temp is dead past its branch
			repl = append(repl, line)
			return repl, true
		}
		repl = append(repl, line)
		if il.destOf() == x {
			return repl, true // x redefined: the copy is fully propagated
		}
		if il.destOf() == y {
			return nil, false // y changes while x still live
		}
	}
	return nil, false
}
