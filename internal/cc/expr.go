package cc

// Expression parsing: standard C precedence.

// binary operator precedence (higher binds tighter).
var ccBinPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

// parseExpr parses a full expression (comma operator not supported).
func (p *parser) parseExpr() (*Expr, error) {
	return p.parseAssign()
}

func (p *parser) parseAssign() (*Expr, error) {
	lhs, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TPunct && assignOps[t.Val] {
		p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EAssign, Op: t.Val, Lhs: lhs, Rhs: rhs, Line: t.Line, Col: t.Col}, nil
	}
	return lhs, nil
}

func (p *parser) parseCond() (*Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return cond, nil
	}
	t := p.next()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	return &Expr{Kind: ECond, Lhs: cond, Rhs: then, Third: els, Line: t.Line, Col: t.Col}, nil
}

func (p *parser) parseBinary(minPrec int) (*Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TPunct {
			return lhs, nil
		}
		prec, ok := ccBinPrec[t.Val]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: EBinary, Op: t.Val, Lhs: lhs, Rhs: rhs, Line: t.Line, Col: t.Col}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	t := p.cur()
	if t.Kind == TPunct {
		switch t.Val {
		case "-", "!", "~", "*", "&":
			p.next()
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: EUnary, Op: t.Val, Lhs: e, Line: t.Line, Col: t.Col}, nil
		case "+":
			p.next()
			return p.parseUnary()
		case "++", "--":
			p.next()
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: EIncDec, Op: t.Val, Lhs: e, Prefix: true, Line: t.Line, Col: t.Col}, nil
		case "(":
			// cast: "(int)" / "(type_t *)" / "(void *)": value unchanged,
			// static type retargeted
			if p.isCastAhead() {
				p.next() // (
				ct, err := p.parseTypeSpec()
				if err != nil {
					return nil, err
				}
				for p.acceptPunct("*") {
					ct = ptrTo(ct)
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				e, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Expr{Kind: ECast, Lhs: e, CastTo: ct, Line: t.Line, Col: t.Col}, nil
			}
		}
	}
	if t.Kind == TIdent && t.Val == "sizeof" {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		ty, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		for p.acceptPunct("*") {
			ty = ptrTo(ty)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &Expr{Kind: ENum, Num: int64(ty.Size()), Line: t.Line, Col: t.Col}, nil
	}
	return p.parsePostfix()
}

// isCastAhead peeks past "(" for a type name followed by ")" or "*...)".
func (p *parser) isCastAhead() bool {
	save := p.pos
	defer func() { p.pos = save }()
	if !p.acceptPunct("(") {
		return false
	}
	if !p.atTypeStart() {
		return false
	}
	if _, err := p.parseTypeSpec(); err != nil {
		return false
	}
	for p.acceptPunct("*") {
	}
	return p.atPunct(")")
}

func (p *parser) parsePostfix() (*Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.acceptPunct("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &Expr{Kind: EIndex, Lhs: e, Rhs: idx, Line: t.Line, Col: t.Col}
		case p.acceptPunct("("):
			call := &Expr{Kind: ECall, Lhs: e, Line: t.Line, Col: t.Col}
			if !p.acceptPunct(")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.acceptPunct(",") {
						break
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			e = call
		case p.acceptPunct("."):
			f, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &Expr{Kind: EMember, Lhs: e, Name: f.Val, Line: t.Line, Col: t.Col}
		case p.acceptPunct("->"):
			f, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &Expr{Kind: EMember, Lhs: e, Name: f.Val, Arrow: true, Line: t.Line, Col: t.Col}
		case p.atPunct("++") || p.atPunct("--"):
			p.next()
			e = &Expr{Kind: EIncDec, Op: t.Val, Lhs: e, Line: t.Line, Col: t.Col}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TNum:
		p.next()
		return &Expr{Kind: ENum, Num: t.Num, Line: t.Line, Col: t.Col}, nil
	case p.acceptPunct("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	case t.Kind == TIdent && !keywords[t.Val]:
		p.next()
		return &Expr{Kind: EVar, Name: t.Val, Line: t.Line, Col: t.Col}, nil
	}
	return nil, errf(t.Line, t.Col, "unexpected token %q in expression", t)
}
