package cc

import "repro/internal/detomp"

// BuildProgram compiles MiniC source into a complete assembly program,
// appending the Deterministic OpenMP runtime when the code launches
// parallel teams.
func BuildProgram(src string, opt Options) (string, error) {
	asmText, err := Compile(src, opt)
	if err != nil {
		return "", err
	}
	if UsesParallel(asmText) && !detomp.UsesRuntime(asmText) {
		// Insert the runtime before the data section so it assembles
		// into the text image.
		asmText = insertBeforeData(asmText, detomp.Runtime())
	}
	return asmText, nil
}

func insertBeforeData(asmText, runtime string) string {
	const marker = "\t.data\n"
	if i := indexOf(asmText, marker); i >= 0 {
		return asmText[:i] + runtime + "\n" + asmText[i:]
	}
	return asmText + runtime
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
