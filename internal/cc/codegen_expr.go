package cc

// pushComputed allocates a stack entry and lets f compute the value into
// the chosen register (the entry's temp register, or the scratch for
// frame-resident entries).
func (g *codegen) pushComputed(f func(dst string)) {
	r, inReg := g.push()
	if !inReg {
		r = scratch
	}
	f(r)
	g.storeTop(r)
}

// dupTop duplicates the top stack entry.
func (g *codegen) dupTop() {
	i := len(g.stack) - 1
	var src string
	if i < len(tempRegs) && !g.stack[i].flushed {
		src = tempRegs[i]
	} else {
		src = ""
	}
	off := g.slotOff(i)
	g.pushComputed(func(dst string) {
		if src != "" {
			g.emit("mv %s, %s", dst, src)
		} else {
			g.emit("lw %s, %d(sp)", dst, off)
		}
	})
}

// genExpr evaluates e and pushes its value (or decayed address).
func (g *codegen) genExpr(e *Expr) error {
	if v, ok := foldConst(e); ok {
		g.pushComputed(func(dst string) { g.emit("li %s, %d", dst, int32(v)) })
		return nil
	}
	switch e.Kind {
	case ENum:
		g.pushComputed(func(dst string) { g.emit("li %s, %d", dst, int32(e.Num)) })
		return nil
	case ECast:
		return g.genExpr(e.Lhs)
	case EVar:
		return g.genVarValue(e)
	case EUnary:
		return g.genUnary(e)
	case EBinary:
		return g.genBinary(e)
	case EAssign:
		return g.genAssign(e, true)
	case EIncDec:
		return g.genIncDec(e, true)
	case ECond:
		return g.genCondValue(e)
	case ECall:
		pushed, err := g.genCall(e, true)
		if err != nil {
			return err
		}
		if !pushed {
			return g.errf(e.Line, "void value used in an expression")
		}
		return nil
	case EIndex:
		if !e.Type.IsScalar() {
			// address of an aggregate element
			return g.genAddr(e)
		}
		if err := g.genAddr(e); err != nil {
			return err
		}
		a := g.pop(scratch)
		g.pushComputed(func(dst string) { g.emit("lw %s, 0(%s)", dst, a) })
		return nil
	case EMember:
		if !e.Type.IsScalar() {
			return g.genAddr(e)
		}
		if err := g.genAddr(e); err != nil {
			return err
		}
		a := g.pop(scratch)
		g.pushComputed(func(dst string) { g.emit("lw %s, 0(%s)", dst, a) })
		return nil
	}
	return g.errf(e.Line, "internal: expression kind %d", e.Kind)
}

// genVarValue pushes the value of a variable (or the address for arrays,
// structs and functions).
func (g *codegen) genVarValue(e *Expr) error {
	sym := e.Sym
	switch {
	case sym.Kind == SymFunc:
		g.pushComputed(func(dst string) { g.emit("la %s, %s", dst, sym.Name) })
	case sym.Reg >= 0:
		g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, sReg(sym)) })
	case sym.Kind == SymGlobal:
		if sym.Type.IsScalar() {
			g.pushComputed(func(dst string) {
				g.emit("la %s, %s", dst, sym.AsmName)
				g.emit("lw %s, 0(%s)", dst, dst)
			})
		} else {
			g.pushComputed(func(dst string) { g.emit("la %s, %s", dst, sym.AsmName) })
		}
	default: // frame-resident local or param
		if sym.Type.IsScalar() {
			g.pushComputed(func(dst string) { g.emitFrameLoad(dst, sym.FrameOff) })
		} else {
			g.pushComputed(func(dst string) { g.emitFrameAddr(dst, sym.FrameOff) })
		}
	}
	return nil
}

// genAddr pushes the address of an lvalue.
func (g *codegen) genAddr(e *Expr) error {
	switch e.Kind {
	case EVar:
		sym := e.Sym
		switch {
		case sym.Kind == SymGlobal:
			g.pushComputed(func(dst string) { g.emit("la %s, %s", dst, sym.AsmName) })
		case sym.Reg >= 0:
			return g.errf(e.Line, "internal: address of register variable %q", sym.Name)
		default:
			g.pushComputed(func(dst string) { g.emitFrameAddr(dst, sym.FrameOff) })
		}
		return nil
	case EUnary:
		if e.Op != "*" {
			return g.errf(e.Line, "internal: genAddr of unary %s", e.Op)
		}
		return g.genExpr(e.Lhs)
	case EIndex:
		// base address or pointer value
		if e.Lhs.Type.Kind == TypeArray {
			if err := g.genAddr(e.Lhs); err != nil {
				return err
			}
		} else {
			if err := g.genExpr(e.Lhs); err != nil {
				return err
			}
		}
		if err := g.genExpr(e.Rhs); err != nil {
			return err
		}
		b := g.pop(scratch)
		g.scaleInPlace(b, decay(e.Lhs.Type).Elem.Size())
		a := g.pop("a7")
		g.pushComputed(func(dst string) { g.emit("add %s, %s, %s", dst, a, b) })
		return nil
	case EMember:
		var off int
		st := e.Lhs.Type
		if e.Arrow {
			st = decay(st).Elem
		}
		for _, f := range st.Fields {
			if f.Name == e.Name {
				off = f.Offset
			}
		}
		var err error
		if e.Arrow {
			err = g.genExpr(e.Lhs)
		} else {
			err = g.genAddr(e.Lhs)
		}
		if err != nil {
			return err
		}
		a := g.pop(scratch)
		g.pushComputed(func(dst string) { g.emit("addi %s, %s, %d", dst, a, off) })
		return nil
	}
	return g.errf(e.Line, "internal: genAddr of kind %d", e.Kind)
}

// scaleInPlace multiplies register r by size (for pointer arithmetic).
func (g *codegen) scaleInPlace(r string, size int) {
	if size == 1 {
		return
	}
	if k := log2(size); k > 0 {
		g.emit("slli %s, %s, %d", r, r, k)
		return
	}
	g.emit("li a6, %d", size)
	g.emit("mul %s, %s, a6", r, r)
}

func log2(v int) int {
	for k := 1; k < 31; k++ {
		if 1<<k == v {
			return k
		}
	}
	return 0
}

func (g *codegen) genUnary(e *Expr) error {
	switch e.Op {
	case "&":
		return g.genAddr(e.Lhs)
	case "*":
		if !e.Type.IsScalar() {
			return g.genExpr(e.Lhs) // aggregate: address
		}
		if err := g.genExpr(e.Lhs); err != nil {
			return err
		}
		a := g.pop(scratch)
		g.pushComputed(func(dst string) { g.emit("lw %s, 0(%s)", dst, a) })
		return nil
	}
	if err := g.genExpr(e.Lhs); err != nil {
		return err
	}
	a := g.pop(scratch)
	g.pushComputed(func(dst string) {
		switch e.Op {
		case "-":
			g.emit("neg %s, %s", dst, a)
		case "~":
			g.emit("not %s, %s", dst, a)
		case "!":
			g.emit("seqz %s, %s", dst, a)
		}
	})
	return nil
}

func (g *codegen) genBinary(e *Expr) error {
	switch e.Op {
	case "&&", "||":
		return g.genBoolValue(e)
	}
	// constant right operand fast paths
	if rv, ok := foldConst(e.Rhs); ok && e.Lhs.Type != nil &&
		decay(e.Lhs.Type).IsScalar() {
		isPtr := decay(e.Lhs.Type).Kind == TypePtr
		switch e.Op {
		case "+", "-":
			v := rv
			if isPtr {
				v *= int64(decay(e.Lhs.Type).Elem.Size())
			}
			if e.Op == "-" {
				v = -v
			}
			if v >= -2048 && v <= 2047 {
				if err := g.genExpr(e.Lhs); err != nil {
					return err
				}
				a := g.pop(scratch)
				g.pushComputed(func(dst string) { g.emit("addi %s, %s, %d", dst, a, v) })
				return nil
			}
		case "*":
			if k := log2(int(rv)); k > 0 && !isPtr {
				if err := g.genExpr(e.Lhs); err != nil {
					return err
				}
				a := g.pop(scratch)
				g.pushComputed(func(dst string) { g.emit("slli %s, %s, %d", dst, a, k) })
				return nil
			}
		case "<<", ">>":
			if rv >= 0 && rv < 32 && !isPtr {
				if err := g.genExpr(e.Lhs); err != nil {
					return err
				}
				a := g.pop(scratch)
				op := "slli"
				if e.Op == ">>" {
					op = "srai"
				}
				g.pushComputed(func(dst string) { g.emit("%s %s, %s, %d", op, dst, a, rv) })
				return nil
			}
		case "&", "|", "^":
			if rv >= -2048 && rv <= 2047 && !isPtr {
				if err := g.genExpr(e.Lhs); err != nil {
					return err
				}
				a := g.pop(scratch)
				op := map[string]string{"&": "andi", "|": "ori", "^": "xori"}[e.Op]
				g.pushComputed(func(dst string) { g.emit("%s %s, %s, %d", op, dst, a, rv) })
				return nil
			}
		}
	}
	if err := g.genExpr(e.Lhs); err != nil {
		return err
	}
	if err := g.genExpr(e.Rhs); err != nil {
		return err
	}
	return g.genBinaryTop(e.Op, e.Lhs.Type, e.Rhs.Type, e.Line)
}

// genBinaryTop applies op to the two top stack entries (lhs below rhs).
func (g *codegen) genBinaryTop(op string, lt, rt *Type, line int) error {
	// pointer arithmetic scaling
	ldt, rdt := decay(lt), decay(rt)
	b := g.pop(scratch)
	if op == "+" || op == "-" {
		if ldt.Kind == TypePtr && rdt.Kind == TypeInt {
			g.scaleInPlace(b, ldt.Elem.Size())
		}
	}
	a := g.pop("a7")
	if op == "+" && rdt.Kind == TypePtr && ldt.Kind == TypeInt {
		g.scaleInPlace(a, rdt.Elem.Size())
	}
	g.pushComputed(func(dst string) {
		switch op {
		case "+":
			g.emit("add %s, %s, %s", dst, a, b)
		case "-":
			g.emit("sub %s, %s, %s", dst, a, b)
			if ldt.Kind == TypePtr && rdt.Kind == TypePtr {
				sz := ldt.Elem.Size()
				if k := log2(sz); k > 0 {
					g.emit("srai %s, %s, %d", dst, dst, k)
				} else if sz > 1 {
					g.emit("li a6, %d", sz)
					g.emit("div %s, %s, a6", dst, dst)
				}
			}
		case "*":
			g.emit("mul %s, %s, %s", dst, a, b)
		case "/":
			g.emit("div %s, %s, %s", dst, a, b)
		case "%":
			g.emit("rem %s, %s, %s", dst, a, b)
		case "&":
			g.emit("and %s, %s, %s", dst, a, b)
		case "|":
			g.emit("or %s, %s, %s", dst, a, b)
		case "^":
			g.emit("xor %s, %s, %s", dst, a, b)
		case "<<":
			g.emit("sll %s, %s, %s", dst, a, b)
		case ">>":
			g.emit("sra %s, %s, %s", dst, a, b)
		case "<":
			g.emit("slt %s, %s, %s", dst, a, b)
		case ">":
			g.emit("slt %s, %s, %s", dst, b, a)
		case "<=":
			g.emit("slt %s, %s, %s", dst, b, a)
			g.emit("xori %s, %s, 1", dst, dst)
		case ">=":
			g.emit("slt %s, %s, %s", dst, a, b)
			g.emit("xori %s, %s, 1", dst, dst)
		case "==":
			g.emit("sub %s, %s, %s", dst, a, b)
			g.emit("seqz %s, %s", dst, dst)
		case "!=":
			g.emit("sub %s, %s, %s", dst, a, b)
			g.emit("snez %s, %s", dst, dst)
		}
	})
	return nil
}

// genBoolValue materializes a short-circuit expression as 0/1.
func (g *codegen) genBoolValue(e *Expr) error {
	r, inReg := g.push()
	if !inReg {
		r = scratch
	}
	falseL := g.newLabel("bfalse")
	endL := g.newLabel("bend")
	// temporarily hide our entry so nested condition codegen balances
	if err := g.genCondBranch(e, falseL, false); err != nil {
		return err
	}
	g.emit("li %s, 1", r)
	g.storeTop(r)
	g.emit("j %s", endL)
	g.emitLabel(falseL)
	g.emit("li %s, 0", r)
	g.storeTop(r)
	g.emitLabel(endL)
	return nil
}

// genCondValue evaluates c ? a : b.
func (g *codegen) genCondValue(e *Expr) error {
	r, inReg := g.push()
	if !inReg {
		r = scratch
	}
	elseL := g.newLabel("celse")
	endL := g.newLabel("cend")
	if err := g.genCondBranch(e.Lhs, elseL, false); err != nil {
		return err
	}
	if err := g.genExpr(e.Rhs); err != nil {
		return err
	}
	v := g.pop(scratch2(r))
	g.emit("mv %s, %s", r, v)
	g.storeTop(r)
	g.emit("j %s", endL)
	g.emitLabel(elseL)
	if err := g.genExpr(e.Third); err != nil {
		return err
	}
	v = g.pop(scratch2(r))
	g.emit("mv %s, %s", r, v)
	g.storeTop(r)
	g.emitLabel(endL)
	return nil
}

// genAssign generates an assignment; pushes the assigned value when
// needValue is set.
func (g *codegen) genAssign(e *Expr, needValue bool) error {
	lhs := e.Lhs
	simpleVar := lhs.Kind == EVar && lhs.Sym.Kind != SymGlobal && lhs.Sym.Reg >= 0
	if e.Op == "=" {
		if simpleVar {
			if err := g.genExpr(e.Rhs); err != nil {
				return err
			}
			r := g.pop(scratch)
			g.emit("mv %s, %s", sReg(lhs.Sym), r)
			if needValue {
				g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, sReg(lhs.Sym)) })
			}
			return nil
		}
		if lhs.Kind == EVar && lhs.Sym.Reg < 0 && lhs.Sym.Kind != SymGlobal {
			if err := g.genExpr(e.Rhs); err != nil {
				return err
			}
			r := g.pop(scratch)
			g.emitFrameStore(r, lhs.Sym.FrameOff)
			if needValue {
				g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, r) })
			}
			return nil
		}
		if err := g.genAddr(lhs); err != nil {
			return err
		}
		if err := g.genExpr(e.Rhs); err != nil {
			return err
		}
		b := g.pop(scratch)
		a := g.pop("a7")
		g.emit("sw %s, 0(%s)", b, a)
		if needValue {
			g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, b) })
		}
		return nil
	}
	// compound assignment: lhs op= rhs
	op := e.Op[:len(e.Op)-1]
	if simpleVar {
		if err := g.genExpr(lhs); err != nil {
			return err
		}
		if err := g.genExpr(e.Rhs); err != nil {
			return err
		}
		if err := g.genBinaryTop(op, lhs.Type, e.Rhs.Type, e.Line); err != nil {
			return err
		}
		r := g.pop(scratch)
		g.emit("mv %s, %s", sReg(lhs.Sym), r)
		if needValue {
			g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, sReg(lhs.Sym)) })
		}
		return nil
	}
	if err := g.genAddr(lhs); err != nil {
		return err
	}
	g.dupTop()
	a := g.pop(scratch)
	g.pushComputed(func(dst string) { g.emit("lw %s, 0(%s)", dst, a) })
	if err := g.genExpr(e.Rhs); err != nil {
		return err
	}
	if err := g.genBinaryTop(op, lhs.Type, e.Rhs.Type, e.Line); err != nil {
		return err
	}
	b := g.pop(scratch)
	addr := g.pop("a7")
	g.emit("sw %s, 0(%s)", b, addr)
	if needValue {
		g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, b) })
	}
	return nil
}

// genIncDec generates ++/--.
func (g *codegen) genIncDec(e *Expr, needValue bool) error {
	delta := 1
	if decay(e.Lhs.Type).Kind == TypePtr {
		delta = decay(e.Lhs.Type).Elem.Size()
	}
	if e.Op == "--" {
		delta = -delta
	}
	lhs := e.Lhs
	if lhs.Kind == EVar && lhs.Sym.Reg >= 0 {
		r := sReg(lhs.Sym)
		if needValue && !e.Prefix {
			g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, r) })
		}
		g.emit("addi %s, %s, %d", r, r, delta)
		if needValue && e.Prefix {
			g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, r) })
		}
		return nil
	}
	if err := g.genAddr(lhs); err != nil {
		return err
	}
	g.dupTop()
	a := g.pop(scratch)
	g.pushComputed(func(dst string) {
		g.emit("lw %s, 0(%s)", dst, a)
		g.emit("addi %s, %s, %d", dst, dst, delta)
	})
	b := g.pop(scratch)
	addr := g.pop("a7")
	g.emit("sw %s, 0(%s)", b, addr)
	if needValue {
		d := delta
		pre := e.Prefix
		g.pushComputed(func(dst string) {
			if pre {
				g.emit("mv %s, %s", dst, b)
			} else {
				g.emit("addi %s, %s, %d", dst, b, -d)
			}
		})
	}
	return nil
}

// genExprForEffect evaluates an expression statement, avoiding a dead
// result push where possible. Reports whether a value was pushed.
func (g *codegen) genExprForEffect(e *Expr) (bool, error) {
	switch e.Kind {
	case EAssign:
		return false, g.genAssign(e, false)
	case EIncDec:
		return false, g.genIncDec(e, false)
	case ECall:
		return g.genCall(e, false)
	case ECast:
		return g.genExprForEffect(e.Lhs)
	}
	if err := g.genExpr(e); err != nil {
		return false, err
	}
	return true, nil
}
