package cc

import (
	"fmt"
	"sort"
)

// genCall generates a function call or builtin. Reports whether a result
// value was pushed.
func (g *codegen) genCall(e *Expr, needValue bool) (bool, error) {
	name := e.Lhs.Name
	switch name {
	case "__lbp_parallel":
		return false, g.genParallelLaunch(e)
	case "omp_set_num_threads":
		// Team sizes are the loop trip counts in Deterministic OpenMP;
		// the call is accepted for source compatibility and discarded.
		used, err := g.genExprForEffect(e.Args[0])
		if err != nil {
			return false, err
		}
		if used {
			g.pop(scratch)
		}
		return false, nil
	case "omp_get_thread_num", "omp_get_num_threads":
		// inside an outlined parallel region these are the index/nt
		// parameters of the detomp thread ABI; outside, member 0 of 1
		if !g.fn.IsThread {
			v := int64(0)
			if name == "omp_get_num_threads" {
				v = 1
			}
			g.pushComputed(func(dst string) { g.emit("li %s, %d", dst, v) })
			return true, nil
		}
		paramName := "__lbp_nt"
		if name == "omp_get_thread_num" {
			// the index parameter carries the loop variable's name
			paramName = g.fn.Params[1].Name
		}
		for _, sym := range g.fn.locals {
			if sym.Kind == SymParam && sym.Name == paramName {
				sym := sym
				if sym.Reg >= 0 {
					g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, sReg(sym)) })
				} else {
					g.pushComputed(func(dst string) { g.emitFrameLoad(dst, sym.FrameOff) })
				}
				return true, nil
			}
		}
		return false, g.errf(e.Line, "internal: %s outside a region", name)
	case "lbp_send_result":
		bufv, ok := foldConst(e.Args[2])
		if !ok {
			return false, g.errf(e.Line, "lbp_send_result buffer index must be constant")
		}
		if err := g.genExpr(e.Args[0]); err != nil {
			return false, err
		}
		if err := g.genExpr(e.Args[1]); err != nil {
			return false, err
		}
		val := g.pop(scratch)
		tgt := g.pop("a7")
		g.emit("p_swre %s, %s, %d", tgt, val, bufv)
		return false, nil
	case "lbp_recv_result":
		bufv, ok := foldConst(e.Args[0])
		if !ok {
			return false, g.errf(e.Line, "lbp_recv_result buffer index must be constant")
		}
		g.pushComputed(func(dst string) { g.emit("p_lwre %s, %d", dst, bufv) })
		return true, nil
	case "lbp_hart_id":
		g.pushComputed(func(dst string) {
			g.emit("p_set %s, zero", dst)
			g.emit("slli %s, %s, 1", dst, dst)
			g.emit("srli %s, %s, 17", dst, dst)
		})
		return true, nil
	case "lbp_team":
		if g.fn.IsThread {
			off := g.teamOff
			g.pushComputed(func(dst string) { g.emit("lw %s, %d(sp)", dst, off) })
		} else {
			g.pushComputed(func(dst string) { g.emit("p_set %s, zero", dst) })
		}
		return true, nil
	case "lbp_bank_ptr":
		k := log2(int(g.opt.SharedBankBytes))
		if k == 0 {
			return false, g.errf(e.Line, "SharedBankBytes must be a power of two")
		}
		if err := g.genExpr(e.Args[0]); err != nil {
			return false, err
		}
		a := g.pop(scratch)
		g.emit("slli %s, %s, %d", a, a, k)
		g.pushComputed(func(dst string) {
			// dst may alias a; build the base in a6 first
			g.emit("lui a6, 0x80000")
			g.emit("add %s, a6, %s", dst, a)
		})
		return true, nil
	case "lbp_poll":
		if err := g.genExpr(e.Args[0]); err != nil {
			return false, err
		}
		a := g.pop(scratch)
		g.pushComputed(func(dst string) { g.emit("lw %s, 0(%s)", dst, a) })
		return true, nil
	case "lbp_halt":
		g.emit("ebreak")
		return false, nil
	case "lbp_syncm":
		g.emit("p_syncm")
		return false, nil
	}

	// regular call
	fn := e.Lhs.Sym.Func
	for _, arg := range e.Args {
		if err := g.genExpr(arg); err != nil {
			return false, err
		}
	}
	n := len(e.Args)
	base := len(g.stack) - n
	// entries below the arguments must survive the call: flush them
	for i := 0; i < base; i++ {
		if i < len(tempRegs) && !g.stack[i].flushed {
			g.emit("sw %s, %d(sp)", tempRegs[i], g.slotOff(i))
			g.stack[i].flushed = true
		}
	}
	// arguments move straight from their temp registers when possible
	for i := 0; i < n; i++ {
		idx := base + i
		if idx < len(tempRegs) && !g.stack[idx].flushed {
			g.emit("mv %s, %s", argRegs[i], tempRegs[idx])
		} else {
			g.emit("lw %s, %d(sp)", argRegs[i], g.slotOff(idx))
		}
	}
	g.stack = g.stack[:base]
	g.emit("jal %s", fn.Name)
	if fn.Ret.Kind == TypeVoid {
		return false, nil
	}
	if needValue {
		g.pushComputed(func(dst string) { g.emit("mv %s, %s", dst, "a0") })
		return true, nil
	}
	return false, nil
}

// genParallelLaunch lowers __lbp_parallel(f, trip): the Deterministic
// OpenMP team launch of Figure 2. The caller's frame already holds ra
// and t0 (layoutFunc guarantees savesRA/savesT0), which are restored
// after the join because the launch consumes both registers.
func (g *codegen) genParallelLaunch(e *Expr) error {
	fnArg := e.Args[0]
	if fnArg.Kind != EVar || fnArg.Sym == nil || fnArg.Sym.Kind != SymFunc {
		return g.errf(e.Line, "__lbp_parallel needs a direct function reference")
	}
	if err := g.genExpr(e.Args[1]); err != nil {
		return err
	}
	g.flushForCall()
	trip := g.pop("a3")
	if trip != "a3" {
		g.emit("mv a3, %s", trip)
	}
	g.emit("li t0, -1")
	g.emit("p_set t0, t0")
	g.emit("la a0, %s", fnArg.Sym.Func.Name)
	g.emit("li a1, 0")
	g.emit("jal LBP_parallel_start")
	g.emit("lw ra, 0(sp)")
	g.emit("lw t0, 4(sp)")
	return nil
}

// ---- data section ---------------------------------------------------------

// genData emits the globals. Default-placement globals are laid out
// sequentially from the shared base; __bank(n) globals are placed at the
// start of bank n (after any default data that reaches into that bank).
func (g *codegen) genData() error {
	if len(g.prog.Globals) == 0 {
		return nil
	}
	g.out.WriteString("\t.data\n")
	bankSize := g.opt.SharedBankBytes
	if bankSize == 0 {
		bankSize = 1 << 16
	}
	cursor := uint32(sharedBase)
	var banked []*VarDecl
	for _, d := range g.prog.Globals {
		if d.Bank >= 0 {
			banked = append(banked, d)
			continue
		}
		if err := g.emitGlobal(d); err != nil {
			return err
		}
		cursor += uint32((d.Type.Size() + 3) &^ 3)
	}
	// group banked globals by bank, preserving declaration order
	sort.SliceStable(banked, func(i, j int) bool { return banked[i].Bank < banked[j].Bank })
	curBank := -1
	var bankCursor uint32
	for _, d := range banked {
		if g.opt.Cores > 0 && d.Bank >= g.opt.Cores {
			return errf(d.Line, 1, "__bank(%d) exceeds the %d-core machine", d.Bank, g.opt.Cores)
		}
		if d.Bank != curBank {
			curBank = d.Bank
			start := uint32(sharedBase) + uint32(curBank)*bankSize + g.opt.BankReserveBytes
			if cursor > start {
				return errf(d.Line, 1,
					"default globals (%d bytes) overflow the %d-byte bank reserve before __bank(%d)",
					cursor-sharedBase, g.opt.BankReserveBytes, curBank)
			}
			bankCursor = start
			g.out.WriteString(fmt.Sprintf("\t.org 0x%x\n", bankCursor))
		}
		if err := g.emitGlobal(d); err != nil {
			return err
		}
		bankCursor += uint32((d.Type.Size() + 3) &^ 3)
		limit := uint32(sharedBase) + uint32(curBank+1)*bankSize
		if bankCursor > limit {
			return errf(d.Line, 1, "__bank(%d) globals overflow the %d-byte bank", curBank, bankSize)
		}
	}
	return nil
}

func (g *codegen) emitGlobal(d *VarDecl) error {
	g.out.WriteString(d.Name + ":\n")
	size := d.Type.Size()
	switch {
	case d.Init != nil:
		v, _ := foldConst(d.Init)
		g.out.WriteString(fmt.Sprintf("\t.word %d\n", int32(v)))
	case d.List != nil:
		// expand entries into a dense image
		n := d.Type.Len
		vals := make([]int64, n)
		for _, ent := range d.List {
			if ent.Lo < 0 || ent.Hi >= n || ent.Lo > ent.Hi {
				return errf(d.Line, 1, "initializer range [%d...%d] outside %q[%d]",
					ent.Lo, ent.Hi, d.Name, n)
			}
			for i := ent.Lo; i <= ent.Hi; i++ {
				vals[i] = ent.Value
			}
		}
		// emit runs compactly with .fill
		for i := 0; i < n; {
			j := i
			for j < n && vals[j] == vals[i] {
				j++
			}
			if j-i >= 4 {
				g.out.WriteString(fmt.Sprintf("\t.fill %d, %d\n", j-i, int32(vals[i])))
			} else {
				for k := i; k < j; k++ {
					g.out.WriteString(fmt.Sprintf("\t.word %d\n", int32(vals[k])))
				}
			}
			i = j
		}
	default:
		g.out.WriteString(fmt.Sprintf("\t.space %d\n", (size+3)&^3))
	}
	return nil
}
