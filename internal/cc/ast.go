package cc

// Types ------------------------------------------------------------------

// TypeKind discriminates MiniC types.
type TypeKind uint8

const (
	TypeInt TypeKind = iota
	TypeVoid
	TypePtr
	TypeArray
	TypeStruct
)

// Type is a MiniC type. Types are structurally compared except structs,
// which are nominal.
type Type struct {
	Kind   TypeKind
	Elem   *Type // Ptr, Array
	Len    int   // Array
	Name   string
	Fields []Field // Struct
	size   int
}

// Field is a struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int
}

var (
	typeInt  = &Type{Kind: TypeInt, size: 4}
	typeVoid = &Type{Kind: TypeVoid}
)

// Size returns the byte size of the type.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeInt, TypePtr:
		return 4
	case TypeArray:
		return t.Len * t.Elem.Size()
	case TypeStruct:
		return t.size
	}
	return 0
}

// IsScalar reports whether the type fits a register.
func (t *Type) IsScalar() bool { return t.Kind == TypeInt || t.Kind == TypePtr }

func ptrTo(t *Type) *Type { return &Type{Kind: TypePtr, Elem: t} }

// String renders a type for diagnostics.
func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeVoid:
		return "void"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return t.Elem.String() + "[]"
	case TypeStruct:
		return "struct " + t.Name
	}
	return "?"
}

func sameType(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TypePtr:
		return sameType(a.Elem, b.Elem)
	case TypeArray:
		return a.Len == b.Len && sameType(a.Elem, b.Elem)
	case TypeStruct:
		return a.Name == b.Name
	}
	return true
}

// Expressions --------------------------------------------------------------

// ExprKind discriminates expression nodes.
type ExprKind uint8

const (
	ENum ExprKind = iota
	EVar
	EUnary  // Op: - ! ~ * &  (Deref and AddrOf)
	EBinary // arithmetic/comparison/logical/shift
	EAssign // Op: = += -= *= /= %= &= |= ^= <<= >>=
	ECond   // ?:
	ECall
	EIndex  // a[i]
	EMember // s.f  or  p->f (Arrow)
	EIncDec // ++/-- (Prefix flag)
	ECast   // (int) e — accepted and ignored
)

// Expr is an expression node. Type is filled by sema.
type Expr struct {
	Kind   ExprKind
	Op     string
	Num    int64
	Name   string
	Lhs    *Expr
	Rhs    *Expr
	Third  *Expr
	Args   []*Expr
	Prefix bool  // EIncDec
	Arrow  bool  // EMember via ->
	CastTo *Type // ECast target type
	Line   int
	Col    int

	Type *Type
	Sym  *Symbol // EVar resolution
}

// Statements ----------------------------------------------------------------

// StmtKind discriminates statement nodes.
type StmtKind uint8

const (
	SExpr StmtKind = iota
	SDecl
	SIf
	SFor
	SWhile
	SDoWhile
	SReturn
	SBreak
	SContinue
	SBlock
	SEmpty
	SPragma // unconsumed pragma attached to the following statement
)

// Stmt is a statement node.
type Stmt struct {
	Kind    StmtKind
	Expr    *Expr // SExpr, SReturn (may be nil), SIf/SWhile cond
	Init    *Stmt // SFor
	Cond    *Expr // SFor
	Post    *Expr // SFor
	Body    *Stmt // SIf then, loops
	Else    *Stmt // SIf
	List    []*Stmt
	Decl    *VarDecl
	Prag    string // SPragma
	Line    int
	NoScope bool // SBlock that does not open a scope (multi-name decl)
}

// Declarations ---------------------------------------------------------------

// VarDecl declares a variable (global or local).
type VarDecl struct {
	Name string
	Type *Type
	Init *Expr       // scalar initializer
	List []InitEntry // array initializer entries
	Bank int         // shared-bank placement (__bank(n)); -1 = default
	Line int
	Sym  *Symbol
}

// InitEntry is one element (or GNU range) of an array initializer.
type InitEntry struct {
	Lo, Hi int // inclusive index range
	Value  int64
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name     string
	Ret      *Type
	Params   []*VarDecl
	Body     *Stmt
	Line     int
	IsThread bool // outlined OpenMP body: ends with p_ret

	locals []*Symbol // filled by sema
}

// Program is a parsed translation unit.
type Program struct {
	Structs  map[string]*Type
	Globals  []*VarDecl
	Funcs    []*FuncDecl
	Includes []string
}

// Symbols ---------------------------------------------------------------------

// SymKind discriminates symbol storage.
type SymKind uint8

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
)

// Symbol is a resolved name.
type Symbol struct {
	Kind      SymKind
	Name      string
	Type      *Type
	Decl      *VarDecl
	Func      *FuncDecl
	AddrTaken bool

	// Storage assignment (codegen):
	Reg      int // callee-saved register number, or -1 if in memory
	FrameOff int // frame offset when in memory
	AsmName  string
	ParamIdx int
}
