package cc

import (
	"strings"
	"testing"
)

// Unit tests of the OpenMP transform itself (omp.go): pragma
// classification, loop-shape validation and reduction-clause parsing.

func TestPragmaKind(t *testing.T) {
	cases := map[string]string{
		"omp parallel for":                  "parallel for",
		"omp parallel for reduction(+:x)":   "parallel for",
		"omp parallel for schedule(static)": "parallel for",
		"omp  parallel   for":               "parallel for",
		"omp parallel sections":             "parallel sections",
		"omp section":                       "section",
		"omp barrier":                       "barrier",
		"GCC ivdep":                         "ignored",
		"once":                              "ignored",
	}
	for prag, want := range cases {
		if got := pragmaKind(prag); got != want {
			t.Errorf("pragmaKind(%q) = %q, want %q", prag, got, want)
		}
	}
}

func TestReductionClause(t *testing.T) {
	op, name, ok, err := reductionClause("omp parallel for reduction(+:total)")
	if err != nil || !ok || op != "+" || name != "total" {
		t.Errorf("got %q %q %v %v", op, name, ok, err)
	}
	op, name, ok, err = reductionClause("omp parallel for reduction( * : p )")
	if err != nil || !ok || op != "*" || name != "p" {
		t.Errorf("got %q %q %v %v", op, name, ok, err)
	}
	if _, _, ok, _ := reductionClause("omp parallel for"); ok {
		t.Error("no clause must report ok=false")
	}
	if _, _, _, err := reductionClause("omp parallel for reduction(min:x)"); err == nil {
		t.Error("unsupported operator must error")
	}
	if _, _, _, err := reductionClause("omp parallel for reduction(+x)"); err == nil {
		t.Error("malformed clause must error")
	}
}

func TestLoopShapeVariants(t *testing.T) {
	accepted := []string{
		"for (t = 0; t < 8; t++) g = t;",
		"for (t = 0; t < 8; ++t) g = t;",
		"for (t = 0; t <= 7; t += 1) g = t;",
		"for (t = 2; t < 8; t = t + 1) g = t;",
		"for (int t = 0; t < N; t++) g = t;",
	}
	for _, loop := range accepted {
		src := "#define N 8\nint g;\nvoid main() { int t;\n#pragma omp parallel for\n" +
			loop + "\n}"
		if _, err := BuildProgram(src, DefaultOptions()); err != nil {
			t.Errorf("loop %q rejected: %v", loop, err)
		}
	}
	rejected := []struct{ loop, wantSub string }{
		{"for (t = g; t < 8; t++) g = t;", "constant"},
		{"for (t = 0; t > 8; t++) g = t;", "condition"},
		{"for (t = 0; t < 8; t += 2) g = t;", "increment"},
		{"for (t = 0; t < 8; t--) g = t;", "increment"},
		{"for (; t < 8; t++) g = t;", "initialization"},
		{"for (t = 0; q < 8; t++) g = t;", "condition"},
	}
	for _, c := range rejected {
		src := "int g;\nint q;\nvoid main() { int t;\n#pragma omp parallel for\n" +
			c.loop + "\n}"
		_, err := BuildProgram(src, DefaultOptions())
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("loop %q: err = %v, want containing %q", c.loop, err, c.wantSub)
		}
	}
}

func TestSectionsValidation(t *testing.T) {
	_, err := BuildProgram(`
void main() {
	#pragma omp parallel sections
	{
		int stray;
	}
}`, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "before the first") {
		t.Errorf("stray statement: %v", err)
	}
	_, err = BuildProgram(`
void main() {
	#pragma omp parallel sections
	{
	}
}`, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "without any") {
		t.Errorf("empty sections: %v", err)
	}
	_, err = BuildProgram(`
void main() {
	#pragma omp parallel sections
	while (1) {}
}`, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "must precede a block") {
		t.Errorf("non-block: %v", err)
	}
}

func TestNestedPragmaInsideIf(t *testing.T) {
	// pragmas inside nested statements are found by the walker
	asmText, err := BuildProgram(`
int v[4];
void main() {
	int enable;
	enable = 1;
	if (enable) {
		int t;
		#pragma omp parallel for
		for (t = 0; t < 4; t++) v[t] = t;
	}
}`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, "LBP_parallel_start") {
		t.Error("nested pragma not lowered")
	}
}

func TestUnsupportedOmpPragma(t *testing.T) {
	_, err := BuildProgram(`
void main() {
	#pragma omp critical
	{ }
}`, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "unsupported pragma") {
		t.Errorf("err = %v", err)
	}
}

func TestOutlinedFunctionNamesUnique(t *testing.T) {
	asmText, err := BuildProgram(`
int a[4];
int b[4];
void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < 4; t++) a[t] = t;
	#pragma omp parallel for
	for (t = 0; t < 4; t++) b[t] = t;
}`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, "__omp_body_1_main") ||
		!strings.Contains(asmText, "__omp_body_2_main") {
		t.Error("outlined bodies must get distinct names")
	}
}
