package cc

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/lbp"
)

// compileAndRun compiles MiniC, assembles and runs it on an n-core LBP.
func compileAndRun(t *testing.T, cores int, src string) (*lbp.Machine, *lbp.Result) {
	t.Helper()
	opt := DefaultOptions()
	opt.Cores = cores
	asmText, err := BuildProgram(src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, numbered(asmText))
	}
	m := lbp.New(lbp.DefaultConfig(cores))
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(50_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

func numbered(s string) string {
	var b strings.Builder
	for i, l := range strings.Split(s, "\n") {
		b.WriteString(strings.TrimRight(itoa(i+1)+"\t"+l, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var d [12]byte
	i := len(d)
	for v > 0 {
		i--
		d[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		d[i] = '-'
	}
	return string(d[i:])
}

// readGlobal reads global `name` (word offset o) by scanning the symbol
// table of a freshly assembled program.
func globalAddr(t *testing.T, src string, name string) uint32 {
	t.Helper()
	opt := DefaultOptions()
	asmText, err := BuildProgram(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, ok := p.Symbols[name]
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	return a
}

func TestSimpleMain(t *testing.T) {
	m, _ := compileAndRun(t, 1, `
int out;
void main() {
	out = 6 * 7;
}
`)
	if v, _ := m.ReadShared(globalAddr(t, "int out;\nvoid main(){out=6*7;}", "out")); v != 42 {
		t.Errorf("out = %d", v)
	}
}

const resultHelpers = `
int __res[16];
void put(int i, int v) { __res[i] = v; }
`

// run runs src (which uses put(i,v) to report results) and returns __res.
func runAndResults(t *testing.T, cores int, src string) []uint32 {
	t.Helper()
	full := resultHelpers + src
	m, _ := compileAndRun(t, cores, full)
	addr := globalAddr(t, full, "__res")
	got, ok := m.ReadSharedSlice(addr, 16)
	if !ok {
		t.Fatal("cannot read results")
	}
	return got
}

func TestArithmeticAndControlFlow(t *testing.T) {
	got := runAndResults(t, 1, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
void main() {
	int i;
	int acc;
	acc = 0;
	for (i = 1; i <= 10; i++) acc += i;
	put(0, acc);                  /* 55 */
	put(1, fib(10));              /* 55 */
	acc = 0;
	i = 0;
	while (i < 5) { acc = acc * 2 + 1; i++; }
	put(2, acc);                  /* 31 */
	do { acc--; } while (acc > 28);
	put(3, acc);                  /* 28 */
	put(4, 100 / 7);
	put(5, 100 % 7);
	put(6, (3 < 5) && (5 < 3) ? 1 : 2);
	put(7, 1 << 10);
	put(8, -25 >> 2);
	put(9, ~0 & 0xFF);
	put(10, 5 ^ 3);
	put(11, !0 + !7);
}
`)
	want := []uint32{55, 55, 31, 28, 14, 2, 2, 1024, 0xFFFFFFF9, 255, 6, 1}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("res[%d] = %d (%#x), want %d", i, int32(got[i]), got[i], int32(w))
		}
	}
}

func TestArraysPointersStructs(t *testing.T) {
	got := runAndResults(t, 1, `
typedef struct { int x; int y; } point_t;
int vec[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int rng[10] = {[0 ... 9] = 3};
point_t origin;
void main() {
	int i;
	int sum;
	int *p;
	point_t pt;
	point_t *pp;
	sum = 0;
	for (i = 0; i < 8; i++) sum += vec[i];
	put(0, sum);                 /* 36 */
	sum = 0;
	p = vec;
	for (i = 0; i < 8; i++) { sum += *p; p++; }
	put(1, sum);                 /* 36 */
	put(2, p - vec);             /* 8 */
	pt.x = 3; pt.y = 4;
	pp = &pt;
	put(3, pp->x * pp->x + pp->y * pp->y);  /* 25 */
	origin.x = 10;
	put(4, origin.x + origin.y); /* 10 */
	sum = 0;
	for (i = 0; i < 10; i++) sum += rng[i];
	put(5, sum);                 /* 30 */
	vec[3] = 40;
	put(6, *(vec + 3));          /* 40 */
	put(7, sizeof(point_t));     /* 8 */
	i = 5;
	p = &i;
	*p = 9;
	put(8, i);                   /* 9 */
}
`)
	want := []uint32{36, 36, 8, 25, 10, 30, 40, 8, 9}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("res[%d] = %d, want %d", i, got[i], w)
		}
	}
}

func TestLocalArrays(t *testing.T) {
	got := runAndResults(t, 1, `
void main() {
	int buf[10];
	int i;
	int s;
	for (i = 0; i < 10; i++) buf[i] = i * i;
	s = 0;
	for (i = 0; i < 10; i++) s += buf[i];
	put(0, s);  /* 285 */
}
`)
	if got[0] != 285 {
		t.Errorf("sum of squares = %d", got[0])
	}
}

func TestFunctionCallsAndSpills(t *testing.T) {
	got := runAndResults(t, 1, `
int add3(int a, int b, int c) { return a + b + c; }
int deep(int a, int b, int c, int d, int e, int f, int g) {
	return a + b*2 + c*3 + d*4 + e*5 + f*6 + g*7;
}
void main() {
	/* deep expression with calls inside */
	put(0, add3(1, add3(2, 3, 4), add3(5, 6, add3(7, 8, 9))));
	put(1, deep(1, 1, 1, 1, 1, 1, 1));  /* 28 */
	put(2, ((((1+2)*(3+4))+((5+6)*(7+8)))*2) + add3(1,2,3));  /* 378 */
}
`)
	want := []uint32{1 + 9 + 35, 28, 378}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("res[%d] = %d, want %d", i, got[i], w)
		}
	}
}

func TestDefineAndInclude(t *testing.T) {
	got := runAndResults(t, 1, `
#include <det_omp.h>
#define N 8
#define DOUBLE_N (N*2)
void main() {
	put(0, N);
	put(1, DOUBLE_N);
}
`)
	if got[0] != 8 || got[1] != 16 {
		t.Errorf("macros: %v", got[:2])
	}
}

func TestParallelFor(t *testing.T) {
	got := runAndResults(t, 2, `
#include <det_omp.h>
#define NUM_HART 8
int v[8];
void main() {
	int t;
	omp_set_num_threads(NUM_HART);
	#pragma omp parallel for
	for (t = 0; t < NUM_HART; t++) v[t] = t * 10;
	int i;
	int s;
	s = 0;
	for (i = 0; i < 8; i++) s += v[i];
	put(0, s);  /* 280 */
	put(1, v[7]);
}
`)
	if got[0] != 280 || got[1] != 70 {
		t.Errorf("parallel for: %v", got[:2])
	}
}

func TestParallelForCallsFunction(t *testing.T) {
	// the paper's canonical shape: the body calls a thread function
	got := runAndResults(t, 4, `
#define NUM_HART 16
int v[16];
void thread(int t) { v[t] = 100 + t; }
void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < NUM_HART; t++) thread(t);
	int i;
	int s;
	s = 0;
	for (i = 0; i < 16; i++) s += v[i] - 100;
	put(0, s);  /* 120 */
}
`)
	if got[0] != 120 {
		t.Errorf("sum of indexes = %d, want 120", got[0])
	}
}

func TestTwoPhaseSetGet(t *testing.T) {
	// Figure 4: two successive parallel loops with the hardware barrier.
	got := runAndResults(t, 2, `
#define NUM_HART 8
int v[8];
int w[8];
void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < NUM_HART; t++) v[t] = t + 1;
	#pragma omp parallel for
	for (t = 0; t < NUM_HART; t++) w[t] = v[t] * 2;
	int s;
	int i;
	s = 0;
	for (i = 0; i < 8; i++) s += w[i];
	put(0, s);  /* 2*36 = 72 */
}
`)
	if got[0] != 72 {
		t.Errorf("two phase sum = %d, want 72", got[0])
	}
}

func TestParallelForReduction(t *testing.T) {
	got := runAndResults(t, 2, `
#define NUM_HART 8
int total;
void main() {
	int t;
	total = 0;
	#pragma omp parallel for reduction(+:total)
	for (t = 0; t < NUM_HART; t++) total += (t + 1) * (t + 1);
	put(0, total);  /* 1+4+...+64 = 204 */
}
`)
	if got[0] != 204 {
		t.Errorf("reduction = %d, want 204", got[0])
	}
}

func TestParallelSections(t *testing.T) {
	got := runAndResults(t, 1, `
int a;
int b;
int c;
void main() {
	#pragma omp parallel sections
	{
		#pragma omp section
		a = 11;
		#pragma omp section
		b = 22;
		#pragma omp section
		c = 33;
	}
	put(0, a + b + c);
}
`)
	if got[0] != 66 {
		t.Errorf("sections = %d, want 66", got[0])
	}
}

func TestNonZeroLowerBound(t *testing.T) {
	got := runAndResults(t, 1, `
int v[8];
void main() {
	int t;
	#pragma omp parallel for
	for (t = 2; t < 6; t++) v[t] = t;
	put(0, v[2] + v[3] + v[4] + v[5]);
	put(1, v[0] + v[1] + v[6] + v[7]);
}
`)
	if got[0] != 14 || got[1] != 0 {
		t.Errorf("bounds: %v", got[:2])
	}
}

func TestBankPlacement(t *testing.T) {
	src := resultHelpers + `
int x0[4] __bank(1) = {1, 2, 3, 4};
int x1[4] __bank(3);
void main() {
	int i;
	for (i = 0; i < 4; i++) x1[i] = x0[i] * 2;
	put(0, x1[3]);
}
`
	m, _ := compileAndRun(t, 4, src)
	if a := globalAddr(t, src, "x0"); a != 0x80011000 {
		t.Errorf("x0 at %#x, want bank 1 base + reserve", a)
	}
	if a := globalAddr(t, src, "x1"); a != 0x80031000 {
		t.Errorf("x1 at %#x, want bank 3 base + reserve", a)
	}
	if v, _ := m.ReadShared(globalAddr(t, src, "__res")); v != 8 {
		t.Errorf("x1[3] = %d", v)
	}
}

func TestBankPtrBuiltin(t *testing.T) {
	got := runAndResults(t, 4, `
void main() {
	int *p;
	p = lbp_bank_ptr(2);
	*p = 77;
	put(0, *lbp_bank_ptr(2));
	put(1, lbp_hart_id());
}
`)
	if got[0] != 77 {
		t.Errorf("bank ptr write/read = %d", got[0])
	}
	if got[1] != 0 {
		t.Errorf("hart id of main = %d", got[1])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"void main() { x = 1; }", "undefined identifier"},
		{"void main() { int x; int x; }", "redeclaration"},
		{"int f(); void main() { f(1); }", "wants 0 arguments"},
		{"void main() { break; }", "break outside"},
		{"int g; int g;", "redefinition"},
		{"void main() { return 1; }", "return with value in void"},
		{"#define F(x) x\nvoid main(){}", "function-like macro"},
		{"void main() { #pragma omp parallel for\n while(1) {} }", "must precede a for loop"},
		{"void main() { int y; #pragma omp parallel for\n for (int t=0;t<4;t++) y=t; }", "cannot be captured"},
		{"void main() { struct nope s; }", "unknown struct"},
		{"void main() { 3 = 4; }", "non-lvalue"},
		{"void main() { int a; a.x = 1; }", "member access on non-struct"},
	}
	for _, c := range cases {
		_, err := BuildProgram(c.src, DefaultOptions())
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("BuildProgram(%.40q...) err = %v, want containing %q", c.src, err, c.wantSub)
		}
	}
}

func TestHartsAreUsedByParallelFor(t *testing.T) {
	full := resultHelpers + `
int v[16];
void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < 16; t++) v[t] = t;
	put(0, 1);
}
`
	m, res := compileAndRun(t, 4, full)
	_ = m
	for i := 0; i < 16; i++ {
		if res.Stats.PerHart[i] == 0 {
			t.Errorf("hart %d idle", i)
		}
	}
	if res.Stats.Forks != 15 {
		t.Errorf("forks = %d", res.Stats.Forks)
	}
}

func TestOmpGetThreadNum(t *testing.T) {
	got := runAndResults(t, 1, `
int ids[4];
int nts[4];
void main() {
	int t;
	#pragma omp parallel for schedule(static)
	for (t = 0; t < 4; t++) {
		ids[t] = omp_get_thread_num();
		nts[t] = omp_get_num_threads();
	}
	put(0, ids[0] + ids[1]*10 + ids[2]*100 + ids[3]*1000);
	put(1, nts[0] + nts[3]);
	put(2, omp_get_thread_num());  /* outside a region: 0 */
	put(3, omp_get_num_threads()); /* outside a region: 1 */
}
`)
	if got[0] != 3210 {
		t.Errorf("thread nums = %d, want 3210", got[0])
	}
	if got[1] != 8 {
		t.Errorf("team sizes = %d, want 8", got[1])
	}
	if got[2] != 0 || got[3] != 1 {
		t.Errorf("outside region: %d %d", got[2], got[3])
	}
}

func TestNestedLoopsAndRecursionDepth(t *testing.T) {
	got := runAndResults(t, 1, `
int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}
void main() {
	int i;
	int j;
	int k;
	int s;
	s = 0;
	for (i = 0; i < 4; i++)
		for (j = 0; j < 4; j++)
			for (k = 0; k < 4; k++)
				s += i * 16 + j * 4 + k;
	put(0, s);          /* sum 0..63 = 2016 */
	put(1, ack(2, 3));  /* 9 */
}
`)
	if got[0] != 2016 {
		t.Errorf("triple loop sum = %d", got[0])
	}
	if got[1] != 9 {
		t.Errorf("ackermann(2,3) = %d", got[1])
	}
}

func TestPointerArgumentsAndArrays(t *testing.T) {
	got := runAndResults(t, 1, `
void fill(int *p, int n, int v) {
	int i;
	for (i = 0; i < n; i++) { *p = v + i; p = p + 1; }
}
int sum(int a[], int n) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < n; i++) s += a[i];
	return s;
}
int buf[10];
void main() {
	fill(buf, 10, 5);
	put(0, sum(buf, 10));       /* 5..14 = 95 */
	fill(buf + 5, 3, 100);
	put(1, buf[5] + buf[6] + buf[7]);  /* 100+101+102 */
	put(2, sum(buf + 8, 2));    /* 13 + 14 = 27 */
}
`)
	if got[0] != 95 || got[1] != 303 || got[2] != 27 {
		t.Errorf("pointer args: %v", got[:3])
	}
}

func TestBreakContinueInLoops(t *testing.T) {
	got := runAndResults(t, 1, `
void main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 100; i++) {
		if (i == 10) break;
		if (i % 2) continue;
		s += i;
	}
	put(0, s);  /* 0+2+4+6+8 = 20 */
	s = 0;
	i = 0;
	while (1) {
		i++;
		if (i > 5) break;
		s += i;
	}
	put(1, s);  /* 15 */
	s = 0;
	do {
		s++;
		if (s == 3) continue;
		s++;
	} while (s < 10);
	put(2, s);
}
`)
	if got[0] != 20 || got[1] != 15 {
		t.Errorf("break/continue: %v", got[:2])
	}
	if got[2] < 10 {
		t.Errorf("do-while: %d", got[2])
	}
}

func TestGlobalInitializerExpressions(t *testing.T) {
	got := runAndResults(t, 1, `
#define BASE 100
int a = BASE + 1;
int b = (1 << 4) | 3;
int c = -BASE;
int d = 'A';
void main() {
	put(0, a);
	put(1, b);
	put(2, -c);
	put(3, d);
}
`)
	want := []uint32{101, 19, 100, 65}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("global %d = %d, want %d", i, got[i], w)
		}
	}
}

// The paper's Figure 1 program, with the elided /*...*/ parts filled in,
// compiled as written: the only Deterministic OpenMP change is the header
// name. Exercises void* parameters and struct-pointer casts (Figure 2's
// translated form uses exactly this idiom).
func TestPaperFigure1Verbatim(t *testing.T) {
	got := runAndResults(t, 2, `
#include <det_omp.h>
#define NUM_HART 8

typedef struct type_s { int t; int scale; } type_t;

int v[NUM_HART];

void thread(void *arg) {
	type_t *pt;
	pt = (type_t *)arg;
	v[pt->t] = pt->t * pt->scale;
}

type_t st[NUM_HART];

void main() {
	int t;
	omp_set_num_threads(NUM_HART);
	for (t = 0; t < NUM_HART; t++) st[t].scale = 3;
	#pragma omp parallel for
	for (t = 0; t < NUM_HART; t++) {
		st[t].t = t;                /* the translator's pt->t = t */
		thread((void *)&st[t]);
	}
	int s;
	int i;
	s = 0;
	for (i = 0; i < NUM_HART; i++) s += v[i];
	put(0, s);
}
`)
	// Each member fills its own argument struct on its own hart before
	// the call (the paper's single shared struct of Figure 2 relies on
	// the translator transmitting the value before the next iteration
	// overwrites it; with per-iteration bodies, one struct per member is
	// the race-free equivalent).
	if got[0] != uint32(3*(0+1+2+3+4+5+6+7)) {
		t.Errorf("sum = %d, want 84", got[0])
	}
}

func TestVoidPointerRules(t *testing.T) {
	got := runAndResults(t, 1, `
int x;
int deref_after_cast(void *p) { return *(int *)p; }
void main() {
	x = 99;
	put(0, deref_after_cast((void *)&x));
	put(1, sizeof(void *));
}
`)
	if got[0] != 99 || got[1] != 4 {
		t.Errorf("void* handling: %v", got[:2])
	}
	// dereferencing a void* must be rejected
	_, err := BuildProgram("void main() { void *p; int y; p = &y; y = *p; }", DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "void pointer") {
		t.Errorf("err = %v", err)
	}
}

func TestCastChangesPointerArithmetic(t *testing.T) {
	got := runAndResults(t, 1, `
typedef struct { int a; int b; } pair_t;
pair_t pairs[4];
void main() {
	int i;
	pair_t *p;
	for (i = 0; i < 4; i++) { pairs[i].a = i; pairs[i].b = 10 * i; }
	p = pairs + 2;          /* struct-pointer arithmetic scales by 8 */
	put(0, p->a);
	put(1, p->b);
	put(2, ((int *)pairs)[5]);  /* int view of the same memory: pairs[2].b */
}
`)
	if got[0] != 2 || got[1] != 20 {
		t.Errorf("struct pointer arithmetic: %v", got[:2])
	}
	if got[2] != 20 {
		t.Errorf("cast reinterpretation: %d, want 20", got[2])
	}
}
