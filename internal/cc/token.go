// Package cc implements MiniC, a from-scratch compiler for the C subset
// used by the paper's Deterministic OpenMP programs. It covers integer
// scalars, pointers, one-dimensional arrays, structs of ints, functions,
// the usual statements and expressions, a small preprocessor (#define,
// #include, #pragma) and the OpenMP pragmas `parallel for` (with an
// optional reduction clause) and `parallel sections`.
//
// The compiler emits RV32IM + X_PAR assembly that links against the
// Deterministic OpenMP runtime (package detomp): each `parallel for`
// iteration becomes one team member placed deterministically on the LBP
// core line, exactly as Figures 2-4 of the paper describe.
package cc

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind uint8

const (
	TEOF TokKind = iota
	TIdent
	TNum
	TPunct
	TPragma // a "#pragma ..." line; Val holds the text after "#pragma"
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Val  string
	Num  int64
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "<eof>"
	case TNum:
		return fmt.Sprintf("%d", t.Num)
	case TPragma:
		return "#pragma " + t.Val
	default:
		return t.Val
	}
}

// Error is a compile error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("cc: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// keywords of MiniC.
var keywords = map[string]bool{
	"int": true, "void": true, "if": true, "else": true, "for": true,
	"while": true, "do": true, "return": true, "break": true,
	"continue": true, "struct": true, "typedef": true, "sizeof": true,
	"static": true, "const": true, "unsigned": true,
}

// multi-character punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

// lexer turns source text into tokens, running the preprocessor
// (object-like #define expansion, #include recording, #pragma capture).
type lexer struct {
	src      string
	pos      int
	line     int
	col      int
	macros   map[string][]Token
	includes []string
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1, macros: map[string][]Token{}}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace and comments; reports whether a newline
// was crossed (used for directive boundaries).
func (l *lexer) skipSpace(stopAtNewline bool) (newline bool, err error) {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == '\n':
			if stopAtNewline {
				return true, nil
			}
			newline = true
			l.advance()
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '\\' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\n':
			l.advance()
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return newline, errf(l.line, l.col, "unterminated block comment")
			}
		default:
			return newline, nil
		}
	}
	return newline, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// rawToken lexes one token without macro expansion.
func (l *lexer) rawToken() (Token, error) {
	if _, err := l.skipSpace(false); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TEOF, Line: line, Col: col}, nil
	}
	c := l.peekByte()
	switch {
	case c == '#':
		return l.directive()
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.peekByte()) {
			l.advance()
		}
		return Token{Kind: TIdent, Val: l.src[start:l.pos], Line: line, Col: col}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (isIdentChar(l.peekByte())) {
			l.advance()
		}
		lit := l.src[start:l.pos]
		v, err := parseIntLit(lit)
		if err != nil {
			return Token{}, errf(line, col, "bad number %q", lit)
		}
		return Token{Kind: TNum, Num: v, Line: line, Col: col}, nil
	case c == '\'':
		l.advance()
		var v int64
		if l.pos >= len(l.src) {
			return Token{}, errf(line, col, "unterminated char literal")
		}
		if l.peekByte() == '\\' {
			l.advance()
			if l.pos >= len(l.src) {
				return Token{}, errf(line, col, "unterminated char literal")
			}
			switch l.advance() {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return Token{}, errf(line, col, "bad escape in char literal")
			}
		} else {
			v = int64(l.advance())
		}
		if l.pos >= len(l.src) || l.peekByte() != '\'' {
			return Token{}, errf(line, col, "unterminated char literal")
		}
		l.advance()
		return Token{Kind: TNum, Num: v, Line: line, Col: col}, nil
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TPunct, Val: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, errf(line, col, "unexpected character %q", string(c))
}

func parseIntLit(lit string) (int64, error) {
	s := lit
	base := int64(10)
	switch {
	case strings.HasPrefix(s, "0x"), strings.HasPrefix(s, "0X"):
		base, s = 16, s[2:]
	case strings.HasPrefix(s, "0b"), strings.HasPrefix(s, "0B"):
		base, s = 2, s[2:]
	case len(s) > 1 && s[0] == '0':
		base, s = 8, s[1:]
	}
	// strip u/l suffixes
	for len(s) > 0 && (s[len(s)-1] == 'u' || s[len(s)-1] == 'U' ||
		s[len(s)-1] == 'l' || s[len(s)-1] == 'L') {
		s = s[:len(s)-1]
	}
	if s == "" {
		if lit == "0" {
			return 0, nil
		}
		return 0, fmt.Errorf("empty literal")
	}
	var v int64
	for _, c := range s {
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		if d >= base {
			return 0, fmt.Errorf("digit out of base")
		}
		v = v*base + d
	}
	return v, nil
}

// directive handles a '#' line: include, define, pragma, ifdef-free subset.
func (l *lexer) directive() (Token, error) {
	line, col := l.line, l.col
	l.advance() // '#'
	if _, err := l.skipSpace(true); err != nil {
		return Token{}, err
	}
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.peekByte()) {
		l.advance()
	}
	name := l.src[start:l.pos]
	restStart := l.pos
	for l.pos < len(l.src) && l.peekByte() != '\n' {
		if l.peekByte() == '\\' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\n' {
			l.advance()
		}
		l.advance()
	}
	rest := strings.TrimSpace(l.src[restStart:l.pos])
	switch name {
	case "include":
		l.includes = append(l.includes, strings.Trim(rest, "<>\" "))
		return l.rawToken()
	case "pragma":
		return Token{Kind: TPragma, Val: rest, Line: line, Col: col}, nil
	case "define":
		if err := l.define(rest, line); err != nil {
			return Token{}, err
		}
		return l.rawToken()
	default:
		return Token{}, errf(line, col, "unsupported preprocessor directive #%s", name)
	}
}

// define registers an object-like macro.
func (l *lexer) define(rest string, line int) error {
	i := 0
	for i < len(rest) && isIdentChar(rest[i]) {
		i++
	}
	name := rest[:i]
	if name == "" {
		return errf(line, 1, "#define without a name")
	}
	if i < len(rest) && rest[i] == '(' {
		return errf(line, 1, "function-like macro %q is not supported", name)
	}
	body := strings.TrimSpace(rest[i:])
	sub := newLexer(body)
	var toks []Token
	for {
		t, err := sub.rawToken()
		if err != nil {
			return errf(line, 1, "in #define %s: %v", name, err)
		}
		if t.Kind == TEOF {
			break
		}
		t.Line = line
		toks = append(toks, t)
	}
	l.macros[name] = toks
	return nil
}

// Lex tokenizes the whole source with macro expansion.
func Lex(src string) ([]Token, []string, error) {
	l := newLexer(src)
	var out []Token
	expanding := map[string]bool{}
	var expand func(t Token) error
	expand = func(t Token) error {
		if t.Kind == TIdent && !expanding[t.Val] {
			if body, ok := l.macros[t.Val]; ok {
				expanding[t.Val] = true
				for _, bt := range body {
					bt.Line = t.Line
					bt.Col = t.Col
					if err := expand(bt); err != nil {
						return err
					}
				}
				expanding[t.Val] = false
				return nil
			}
		}
		out = append(out, t)
		return nil
	}
	for {
		t, err := l.rawToken()
		if err != nil {
			return nil, nil, err
		}
		if t.Kind == TEOF {
			out = append(out, t)
			return out, l.includes, nil
		}
		if err := expand(t); err != nil {
			return nil, nil, err
		}
	}
}
