package cc

import "testing"

// Regression tests for bugs found by the whole-program determinism
// fuzzer (cmd/lbp-fuzz). Each case is a minimized MiniC program whose
// machine result once diverged from the sequential reference; the
// corresponding corpus entries live under internal/fuzzgen/testdata/fuzz/.

// TestFoldConstTruncatesToInt32 pins the foldConst fix: constant
// folding used to evaluate in int64, so an overflowed subexpression
// (2000000000 + 2000000000 = 4000000000, which the 32-bit machine
// wraps to -294967296) fed comparisons, divisions and shifts with a
// value the hardware never computes. Folding must observe int32 wrap
// at every step.
func TestFoldConstTruncatesToInt32(t *testing.T) {
	cases := []struct {
		name string
		expr string
		want int32
	}{
		// The three original fuzzer findings: a non-ring operator over
		// an overflowed intermediate. int32(4000000000) = -294967296.
		{"overflow-compare", "(2000000000 + 2000000000) < 0", 1},
		{"overflow-div", "(2000000000 + 2000000000) / 3", -98322432},
		{"overflow-shift", "(2000000000 * 2) >> 4", -18435456},
		// Logical not over the wrapped (nonzero) sum.
		{"overflow-not", "!(2000000000 + 2000000000)", 0},
		// RV32IM division overflow: INT_MIN / -1 = INT_MIN, INT_MIN % -1 = 0.
		{"intmin-div", "(-2147483647 - 1) / -1", -2147483648},
		{"intmin-rem", "(-2147483647 - 1) % -1", 0},
		// Ring ops stay correct under end-truncation; pin them anyway.
		{"overflow-add-chain", "2000000000 + 2000000000 + 2000000000", 1705032704},
		{"shift-mask", "1 << 33", 2}, // shift amounts mask &31
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := "int out;\nvoid main() { out = " + c.expr + "; }\n"
			m, res := compileAndRun(t, 1, src)
			if res.Halt != "exit" {
				t.Fatalf("halt %q", res.Halt)
			}
			v, _ := m.ReadShared(globalAddr(t, src, "out"))
			if int32(v) != c.want {
				t.Errorf("out = %s: machine %d, want %d", c.expr, int32(v), c.want)
			}
		})
	}
}

// TestFoldConstArrayLength checks the fold is still usable where a
// positive constant is required (array lengths, loop bounds).
func TestFoldConstArrayLength(t *testing.T) {
	src := `
int a[2 * 4];
void main() {
	for (int i = 0; i < 8; i++) { a[i] = i + 1; }
}
`
	m, res := compileAndRun(t, 1, src)
	if res.Halt != "exit" {
		t.Fatalf("halt %q", res.Halt)
	}
	got, ok := m.ReadSharedSlice(globalAddr(t, src, "a"), 8)
	if !ok {
		t.Fatal("array unreadable")
	}
	for i, v := range got {
		if int32(v) != int32(i+1) {
			t.Errorf("a[%d] = %d, want %d", i, int32(v), i+1)
		}
	}
}
