package cc

import (
	"fmt"
	"strings"
)

// The OpenMP transform: runs on the parsed AST (before sema). It rewrites
//
//	#pragma omp parallel for [reduction(op:var)]
//	for (i = LO; i < HI; i++) BODY
//
// into an outlined thread function and a call to the synthetic builtin
// __lbp_parallel(f, trip), which codegen lowers to the Deterministic
// OpenMP team launch (Figure 2 of the paper: LBP_parallel_start). Each
// loop iteration becomes one team member, placed deterministically along
// the LBP core line.
//
// It also rewrites
//
//	#pragma omp parallel sections { #pragma omp section S0 ... }
//
// into one outlined function dispatching on the member index.

// ompPass rewrites all parallel pragmas in the program.
func ompPass(prog *Program) error {
	o := &ompTransform{prog: prog}
	for _, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		o.fn = f
		if err := o.walk(f.Body); err != nil {
			return err
		}
	}
	prog.Funcs = append(prog.Funcs, o.outlined...)
	return nil
}

type ompTransform struct {
	prog     *Program
	fn       *FuncDecl
	outlined []*FuncDecl
	counter  int
}

func (o *ompTransform) walk(st *Stmt) error {
	switch st.Kind {
	case SBlock:
		for i := 0; i < len(st.List); i++ {
			c := st.List[i]
			if c.Kind == SPragma {
				kind := pragmaKind(c.Prag)
				switch kind {
				case "parallel for":
					if i+1 >= len(st.List) || st.List[i+1].Kind != SFor {
						return errf(c.Line, 1, "#pragma omp parallel for must precede a for loop")
					}
					repl, err := o.lowerParallelFor(c, st.List[i+1])
					if err != nil {
						return err
					}
					st.List[i] = &Stmt{Kind: SEmpty, Line: c.Line}
					st.List[i+1] = repl
					i++
					continue
				case "parallel sections":
					if i+1 >= len(st.List) || st.List[i+1].Kind != SBlock {
						return errf(c.Line, 1, "#pragma omp parallel sections must precede a block")
					}
					repl, err := o.lowerParallelSections(c, st.List[i+1])
					if err != nil {
						return err
					}
					st.List[i] = &Stmt{Kind: SEmpty, Line: c.Line}
					st.List[i+1] = repl
					i++
					continue
				case "", "ignored":
					continue
				default:
					return errf(c.Line, 1, "unsupported pragma %q", c.Prag)
				}
			}
			if err := o.walk(c); err != nil {
				return err
			}
		}
	case SIf:
		if err := o.walk(st.Body); err != nil {
			return err
		}
		if st.Else != nil {
			return o.walk(st.Else)
		}
	case SFor, SWhile, SDoWhile:
		return o.walk(st.Body)
	}
	return nil
}

// pragmaKind classifies a pragma line.
func pragmaKind(p string) string {
	fields := strings.Fields(p)
	if len(fields) == 0 || fields[0] != "omp" {
		return "ignored" // non-omp pragmas pass through silently
	}
	rest := strings.Join(fields[1:], " ")
	switch {
	case strings.HasPrefix(rest, "parallel for"):
		return "parallel for"
	case strings.HasPrefix(rest, "parallel sections"):
		return "parallel sections"
	case rest == "section":
		return "section"
	}
	return rest
}

// reductionClause extracts "reduction(op:var)" from a pragma, if present.
func reductionClause(p string) (op, name string, ok bool, err error) {
	i := strings.Index(p, "reduction")
	if i < 0 {
		return "", "", false, nil
	}
	rest := p[i+len("reduction"):]
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "(") {
		return "", "", false, fmt.Errorf("malformed reduction clause")
	}
	close := strings.Index(rest, ")")
	if close < 0 {
		return "", "", false, fmt.Errorf("malformed reduction clause")
	}
	inner := rest[1:close]
	parts := strings.SplitN(inner, ":", 2)
	if len(parts) != 2 {
		return "", "", false, fmt.Errorf("reduction clause needs op:var")
	}
	op = strings.TrimSpace(parts[0])
	name = strings.TrimSpace(parts[1])
	if op != "+" && op != "*" && op != "|" && op != "&" && op != "^" {
		return "", "", false, fmt.Errorf("unsupported reduction operator %q", op)
	}
	return op, name, true, nil
}

// loopShape validates the canonical parallel-for shape and returns the
// loop variable name, the constant lower bound and the trip-count
// expression (evaluated at the launch site).
func loopShape(f *Stmt) (ivar string, lo int64, trip *Expr, err error) {
	bad := func(msg string) error {
		return errf(f.Line, 1, "parallel for: %s (need 'for (i = const; i < expr; i++)')", msg)
	}
	// init: "i = const" or "int i = const"
	var name string
	var loExpr *Expr
	switch {
	case f.Init == nil:
		return "", 0, nil, bad("missing initialization")
	case f.Init.Kind == SExpr && f.Init.Expr.Kind == EAssign && f.Init.Expr.Op == "=" &&
		f.Init.Expr.Lhs.Kind == EVar:
		name = f.Init.Expr.Lhs.Name
		loExpr = f.Init.Expr.Rhs
	case f.Init.Kind == SDecl && f.Init.Decl.Init != nil:
		name = f.Init.Decl.Name
		loExpr = f.Init.Decl.Init
	default:
		return "", 0, nil, bad("unsupported initialization")
	}
	loV, ok := foldConst(loExpr)
	if !ok {
		return "", 0, nil, bad("lower bound must be a constant")
	}
	// cond: "i < expr" or "i <= expr"
	if f.Cond == nil || f.Cond.Kind != EBinary ||
		(f.Cond.Op != "<" && f.Cond.Op != "<=") ||
		f.Cond.Lhs.Kind != EVar || f.Cond.Lhs.Name != name {
		return "", 0, nil, bad("unsupported condition")
	}
	hi := f.Cond.Rhs
	// post: i++ / ++i / i += 1 / i = i + 1
	okPost := false
	if p := f.Post; p != nil {
		switch {
		case p.Kind == EIncDec && p.Op == "++" && p.Lhs.Kind == EVar && p.Lhs.Name == name:
			okPost = true
		case p.Kind == EAssign && p.Op == "+=" && p.Lhs.Kind == EVar && p.Lhs.Name == name:
			if v, c := foldConst(p.Rhs); c && v == 1 {
				okPost = true
			}
		case p.Kind == EAssign && p.Op == "=" && p.Lhs.Kind == EVar && p.Lhs.Name == name &&
			p.Rhs.Kind == EBinary && p.Rhs.Op == "+" &&
			p.Rhs.Lhs.Kind == EVar && p.Rhs.Lhs.Name == name:
			if v, c := foldConst(p.Rhs.Rhs); c && v == 1 {
				okPost = true
			}
		}
	}
	if !okPost {
		return "", 0, nil, bad("unsupported increment")
	}
	// trip = hi - lo (+1 for <=)
	trip = hi
	if loV != 0 {
		trip = &Expr{Kind: EBinary, Op: "-", Lhs: hi,
			Rhs: &Expr{Kind: ENum, Num: loV}, Line: f.Line}
	}
	if f.Cond.Op == "<=" {
		trip = &Expr{Kind: EBinary, Op: "+", Lhs: trip,
			Rhs: &Expr{Kind: ENum, Num: 1}, Line: f.Line}
	}
	return name, loV, trip, nil
}

// threadParams builds the parameter list of an outlined thread function,
// matching the detomp runtime ABI: a1=data, a2=index, a3=nt, a4=team.
func threadParams(ivar string) []*VarDecl {
	return []*VarDecl{
		{Name: "__lbp_data", Type: typeInt, Bank: -1},
		{Name: ivar, Type: typeInt, Bank: -1},
		{Name: "__lbp_nt", Type: typeInt, Bank: -1},
		{Name: "__lbp_team", Type: typeInt, Bank: -1},
	}
}

// lowerParallelFor outlines the loop body and synthesizes the launch.
func (o *ompTransform) lowerParallelFor(prag *Stmt, f *Stmt) (*Stmt, error) {
	ivar, lo, trip, err := loopShape(f)
	if err != nil {
		return nil, err
	}
	redOp, redVar, hasRed, rerr := reductionClause(prag.Prag)
	if rerr != nil {
		return nil, errf(prag.Line, 1, "%v", rerr)
	}

	o.counter++
	name := fmt.Sprintf("__omp_body_%d_%s", o.counter, o.fn.Name)
	thread := &FuncDecl{
		Name:     name,
		Ret:      typeVoid,
		Params:   threadParams(ivar),
		Line:     f.Line,
		IsThread: true,
	}
	body := &Stmt{Kind: SBlock, Line: f.Line}
	if lo != 0 {
		// i = LO + index
		body.List = append(body.List, &Stmt{Kind: SExpr, Line: f.Line, Expr: &Expr{
			Kind: EAssign, Op: "=",
			Lhs: &Expr{Kind: EVar, Name: ivar, Line: f.Line},
			Rhs: &Expr{Kind: EBinary, Op: "+",
				Lhs:  &Expr{Kind: ENum, Num: lo},
				Rhs:  &Expr{Kind: EVar, Name: ivar, Line: f.Line},
				Line: f.Line},
			Line: f.Line,
		}})
	}
	loopBody := f.Body
	if hasRed {
		// declare the private accumulator and rewrite references
		initVal := int64(0)
		switch redOp {
		case "*":
			initVal = 1
		case "&":
			initVal = -1
		}
		body.List = append(body.List, &Stmt{Kind: SDecl, Line: f.Line, Decl: &VarDecl{
			Name: "__lbp_red", Type: typeInt, Bank: -1, Line: f.Line,
			Init: &Expr{Kind: ENum, Num: initVal},
		}})
		renameVar(loopBody, redVar, "__lbp_red")
	}
	body.List = append(body.List, loopBody)
	if hasRed {
		// lbp_send_result(__lbp_team, __lbp_red, 0)
		body.List = append(body.List, &Stmt{Kind: SExpr, Line: f.Line, Expr: &Expr{
			Kind: ECall, Line: f.Line,
			Lhs: &Expr{Kind: EVar, Name: "lbp_send_result", Line: f.Line},
			Args: []*Expr{
				{Kind: EVar, Name: "__lbp_team", Line: f.Line},
				{Kind: EVar, Name: "__lbp_red", Line: f.Line},
				{Kind: ENum, Num: 0},
			},
		}})
	}
	thread.Body = body
	o.outlined = append(o.outlined, thread)

	// launch site: __lbp_parallel(thread, trip)
	launch := &Stmt{Kind: SBlock, Line: f.Line, NoScope: true}
	launch.List = append(launch.List, &Stmt{Kind: SExpr, Line: f.Line, Expr: &Expr{
		Kind: ECall, Line: f.Line,
		Lhs:  &Expr{Kind: EVar, Name: "__lbp_parallel", Line: f.Line},
		Args: []*Expr{{Kind: EVar, Name: name, Line: f.Line}, trip},
	}})
	if hasRed {
		// for (__i = 0; __i < trip; __i++) red = red OP lbp_recv_result(0)
		cnt := fmt.Sprintf("__lbp_redi_%d", o.counter)
		recv := &Expr{Kind: ECall, Line: f.Line,
			Lhs:  &Expr{Kind: EVar, Name: "lbp_recv_result", Line: f.Line},
			Args: []*Expr{{Kind: ENum, Num: 0}}}
		loop := &Stmt{Kind: SFor, Line: f.Line,
			Init: &Stmt{Kind: SDecl, Line: f.Line, Decl: &VarDecl{
				Name: cnt, Type: typeInt, Bank: -1, Line: f.Line,
				Init: &Expr{Kind: ENum, Num: 0}}},
			Cond: &Expr{Kind: EBinary, Op: "<",
				Lhs: &Expr{Kind: EVar, Name: cnt, Line: f.Line}, Rhs: cloneExpr(trip), Line: f.Line},
			Post: &Expr{Kind: EIncDec, Op: "++",
				Lhs: &Expr{Kind: EVar, Name: cnt, Line: f.Line}, Line: f.Line},
			Body: &Stmt{Kind: SExpr, Line: f.Line, Expr: &Expr{
				Kind: EAssign, Op: "=",
				Lhs: &Expr{Kind: EVar, Name: redVar, Line: f.Line},
				Rhs: &Expr{Kind: EBinary, Op: redOp,
					Lhs:  &Expr{Kind: EVar, Name: redVar, Line: f.Line},
					Rhs:  recv,
					Line: f.Line},
				Line: f.Line,
			}},
		}
		launch.List = append(launch.List, loop)
	}
	return launch, nil
}

// lowerParallelSections outlines each section into one dispatcher thread.
func (o *ompTransform) lowerParallelSections(prag *Stmt, blk *Stmt) (*Stmt, error) {
	var sections []*Stmt
	var cur *Stmt
	for _, s := range blk.List {
		if s.Kind == SPragma && pragmaKind(s.Prag) == "section" {
			cur = &Stmt{Kind: SBlock, Line: s.Line}
			sections = append(sections, cur)
			continue
		}
		if cur == nil {
			if s.Kind == SEmpty {
				continue
			}
			return nil, errf(s.Line, 1, "statement before the first #pragma omp section")
		}
		cur.List = append(cur.List, s)
	}
	if len(sections) == 0 {
		return nil, errf(prag.Line, 1, "parallel sections without any #pragma omp section")
	}
	o.counter++
	name := fmt.Sprintf("__omp_sections_%d_%s", o.counter, o.fn.Name)
	thread := &FuncDecl{
		Name:     name,
		Ret:      typeVoid,
		Params:   threadParams("__lbp_index"),
		Line:     prag.Line,
		IsThread: true,
	}
	// if (idx == 0) S0 else if (idx == 1) S1 ...
	var chain *Stmt
	for i := len(sections) - 1; i >= 0; i-- {
		cond := &Expr{Kind: EBinary, Op: "==",
			Lhs:  &Expr{Kind: EVar, Name: "__lbp_index", Line: prag.Line},
			Rhs:  &Expr{Kind: ENum, Num: int64(i)},
			Line: prag.Line}
		chain = &Stmt{Kind: SIf, Expr: cond, Body: sections[i], Else: chain, Line: prag.Line}
	}
	thread.Body = &Stmt{Kind: SBlock, List: []*Stmt{chain}, Line: prag.Line}
	o.outlined = append(o.outlined, thread)

	return &Stmt{Kind: SExpr, Line: prag.Line, Expr: &Expr{
		Kind: ECall, Line: prag.Line,
		Lhs: &Expr{Kind: EVar, Name: "__lbp_parallel", Line: prag.Line},
		Args: []*Expr{
			{Kind: EVar, Name: name, Line: prag.Line},
			{Kind: ENum, Num: int64(len(sections))},
		},
	}}, nil
}

// renameVar rewrites every reference to `from` into `to` in a subtree.
func renameVar(st *Stmt, from, to string) {
	if st == nil {
		return
	}
	rewriteExprs(st, func(e *Expr) {
		if e.Kind == EVar && e.Name == from {
			e.Name = to
		}
	})
}

// rewriteExprs applies fn to every expression in a statement subtree.
func rewriteExprs(st *Stmt, fn func(*Expr)) {
	if st == nil {
		return
	}
	var we func(e *Expr)
	we = func(e *Expr) {
		if e == nil {
			return
		}
		fn(e)
		we(e.Lhs)
		we(e.Rhs)
		we(e.Third)
		for _, a := range e.Args {
			we(a)
		}
	}
	we(st.Expr)
	we(st.Cond)
	we(st.Post)
	if st.Decl != nil {
		we(st.Decl.Init)
	}
	rewriteExprs(st.Init, fn)
	rewriteExprs(st.Body, fn)
	rewriteExprs(st.Else, fn)
	for _, c := range st.List {
		rewriteExprs(c, fn)
	}
}

// cloneExpr deep-copies an expression tree (pre-sema).
func cloneExpr(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.Lhs = cloneExpr(e.Lhs)
	c.Rhs = cloneExpr(e.Rhs)
	c.Third = cloneExpr(e.Third)
	if e.Args != nil {
		c.Args = make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = cloneExpr(a)
		}
	}
	return &c
}
