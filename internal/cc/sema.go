package cc

// Builtin functions of the Deterministic OpenMP dialect.
type builtin struct {
	name  string
	ret   *Type
	nargs int
}

var builtins = []builtin{
	{"omp_set_num_threads", typeVoid, 1},
	{"omp_get_thread_num", typeInt, 0},  // team member index (in a region)
	{"omp_get_num_threads", typeInt, 0}, // team size (in a region)
	{"lbp_send_result", typeVoid, 3},    // (target identity, value, buffer)
	{"lbp_recv_result", typeInt, 1},     // (buffer)
	{"lbp_hart_id", typeInt, 0},
	{"lbp_team", typeInt, 0},
	{"lbp_bank_ptr", ptrTo(typeInt), 1},
	{"lbp_poll", typeInt, 1},        // (addr-expression): volatile word load
	{"lbp_halt", typeVoid, 0},       // stop the machine (ebreak)
	{"lbp_syncm", typeVoid, 0},      // p_syncm: drain this hart's memory accesses
	{"__lbp_parallel", typeVoid, 2}, // synthesized by the OpenMP transform
}

// IsBuiltin reports whether name is a compiler builtin.
func IsBuiltin(name string) bool {
	for _, b := range builtins {
		if b.name == name {
			return true
		}
	}
	return false
}

// scope is a lexical scope.
type scope struct {
	parent *scope
	syms   map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

// sema performs name resolution and type checking.
type sema struct {
	prog    *Program
	globals *scope
	fn      *FuncDecl
	cur     *scope
	loop    int // loop nesting depth for break/continue
}

// Analyze resolves and type-checks the program in place.
func Analyze(prog *Program) error {
	s := &sema{prog: prog, globals: &scope{syms: map[string]*Symbol{}}}
	for _, b := range builtins {
		s.globals.syms[b.name] = &Symbol{Kind: SymFunc, Name: b.name,
			Type: b.ret, Func: &FuncDecl{Name: b.name, Ret: b.ret}}
	}
	for _, g := range prog.Globals {
		if prev := s.globals.syms[g.Name]; prev != nil {
			return errf(g.Line, 1, "redefinition of %q", g.Name)
		}
		sym := &Symbol{Kind: SymGlobal, Name: g.Name, Type: g.Type, Decl: g,
			AsmName: g.Name, Reg: -1}
		g.Sym = sym
		s.globals.syms[g.Name] = sym
		if g.Init != nil {
			if _, ok := foldConst(g.Init); !ok {
				return errf(g.Line, 1, "global %q initializer is not constant", g.Name)
			}
		}
		if g.List != nil && g.Type.Kind != TypeArray {
			return errf(g.Line, 1, "brace initializer on non-array %q", g.Name)
		}
	}
	for _, f := range prog.Funcs {
		if prev := s.globals.syms[f.Name]; prev != nil {
			if prev.Kind == SymFunc && prev.Func.Body == nil && f.Body != nil {
				prev.Func = f // definition after prototype
			} else if f.Body == nil {
				continue // repeated prototype
			} else {
				return errf(f.Line, 1, "redefinition of %q", f.Name)
			}
		} else {
			s.globals.syms[f.Name] = &Symbol{Kind: SymFunc, Name: f.Name,
				Type: f.Ret, Func: f}
		}
	}
	for _, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		if err := s.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (s *sema) checkFunc(f *FuncDecl) error {
	s.fn = f
	s.cur = &scope{parent: s.globals, syms: map[string]*Symbol{}}
	for i, p := range f.Params {
		if !p.Type.IsScalar() {
			return errf(p.Line, 1, "parameter %q must be int or pointer", p.Name)
		}
		sym := &Symbol{Kind: SymParam, Name: p.Name, Type: p.Type, Decl: p,
			ParamIdx: i, Reg: -1}
		p.Sym = sym
		s.cur.syms[p.Name] = sym
		f.locals = append(f.locals, sym)
	}
	if err := s.stmt(f.Body); err != nil {
		return err
	}
	s.fn = nil
	return nil
}

func (s *sema) stmt(st *Stmt) error {
	switch st.Kind {
	case SEmpty, SPragma:
		return nil
	case SBlock:
		if !st.NoScope {
			s.cur = &scope{parent: s.cur, syms: map[string]*Symbol{}}
			defer func() { s.cur = s.cur.parent }()
		}
		for _, c := range st.List {
			if err := s.stmt(c); err != nil {
				return err
			}
		}
		return nil
	case SDecl:
		return s.declareLocal(st.Decl)
	case SExpr:
		_, err := s.expr(st.Expr)
		return err
	case SIf:
		if _, err := s.expr(st.Expr); err != nil {
			return err
		}
		if err := s.stmt(st.Body); err != nil {
			return err
		}
		if st.Else != nil {
			return s.stmt(st.Else)
		}
		return nil
	case SWhile, SDoWhile:
		if _, err := s.expr(st.Expr); err != nil {
			return err
		}
		s.loop++
		defer func() { s.loop-- }()
		return s.stmt(st.Body)
	case SFor:
		s.cur = &scope{parent: s.cur, syms: map[string]*Symbol{}}
		defer func() { s.cur = s.cur.parent }()
		if st.Init != nil {
			if err := s.stmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if _, err := s.expr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := s.expr(st.Post); err != nil {
				return err
			}
		}
		s.loop++
		defer func() { s.loop-- }()
		return s.stmt(st.Body)
	case SReturn:
		if st.Expr != nil {
			if s.fn.Ret.Kind == TypeVoid {
				return errf(st.Line, 1, "return with value in void function %q", s.fn.Name)
			}
			_, err := s.expr(st.Expr)
			return err
		}
		if s.fn.Ret.Kind != TypeVoid {
			return errf(st.Line, 1, "return without value in %q", s.fn.Name)
		}
		return nil
	case SBreak:
		if s.loop == 0 {
			return errf(st.Line, 1, "break outside a loop")
		}
		return nil
	case SContinue:
		if s.loop == 0 {
			return errf(st.Line, 1, "continue outside a loop")
		}
		return nil
	}
	return errf(st.Line, 1, "internal: unknown statement kind %d", st.Kind)
}

func (s *sema) declareLocal(d *VarDecl) error {
	if _, dup := s.cur.syms[d.Name]; dup {
		return errf(d.Line, 1, "redeclaration of %q", d.Name)
	}
	if d.Type.Kind == TypeVoid {
		return errf(d.Line, 1, "variable %q has void type", d.Name)
	}
	if d.Bank >= 0 {
		return errf(d.Line, 1, "__bank placement only applies to globals (%q)", d.Name)
	}
	if d.List != nil {
		return errf(d.Line, 1, "brace initializers are only supported on globals (%q)", d.Name)
	}
	sym := &Symbol{Kind: SymLocal, Name: d.Name, Type: d.Type, Decl: d, Reg: -1}
	d.Sym = sym
	s.cur.syms[d.Name] = sym
	s.fn.locals = append(s.fn.locals, sym)
	if d.Init != nil {
		if _, err := s.expr(d.Init); err != nil {
			return err
		}
	}
	return nil
}

// decay converts array-typed expressions to pointers in value contexts.
func decay(t *Type) *Type {
	if t.Kind == TypeArray {
		return ptrTo(t.Elem)
	}
	return t
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e *Expr) bool {
	switch e.Kind {
	case EVar:
		return true
	case EIndex, EMember:
		return true
	case EUnary:
		return e.Op == "*"
	}
	return false
}

func (s *sema) expr(e *Expr) (*Type, error) {
	t, err := s.exprInner(e)
	if err != nil {
		return nil, err
	}
	e.Type = t
	return t, nil
}

func (s *sema) exprInner(e *Expr) (*Type, error) {
	switch e.Kind {
	case ENum:
		return typeInt, nil
	case EVar:
		sym := s.cur.lookup(e.Name)
		if sym == nil {
			hint := ""
			if s.fn != nil && s.fn.IsThread {
				hint = " (locals of the enclosing function cannot be captured in a parallel region)"
			}
			return nil, errf(e.Line, e.Col, "undefined identifier %q%s", e.Name, hint)
		}
		e.Sym = sym
		if sym.Kind == SymFunc {
			return typeInt, nil // function designator used as a value
		}
		return sym.Type, nil
	case ECast:
		if _, err := s.expr(e.Lhs); err != nil {
			return nil, err
		}
		if e.CastTo == nil {
			return e.Lhs.Type, nil
		}
		if !e.CastTo.IsScalar() && e.CastTo.Kind != TypeVoid {
			return nil, errf(e.Line, e.Col, "cannot cast to %s", e.CastTo)
		}
		return e.CastTo, nil
	case EUnary:
		lt, err := s.expr(e.Lhs)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-", "~", "!":
			if !decay(lt).IsScalar() {
				return nil, errf(e.Line, e.Col, "unary %s on %s", e.Op, lt)
			}
			return typeInt, nil
		case "*":
			dt := decay(lt)
			if dt.Kind != TypePtr {
				return nil, errf(e.Line, e.Col, "dereference of non-pointer %s", lt)
			}
			if dt.Elem.Kind == TypeVoid {
				return nil, errf(e.Line, e.Col, "dereference of void pointer")
			}
			return dt.Elem, nil
		case "&":
			if !isLvalue(e.Lhs) {
				return nil, errf(e.Line, e.Col, "cannot take the address of this expression")
			}
			markAddrTaken(e.Lhs)
			return ptrTo(lt), nil
		}
	case EBinary:
		lt, err := s.expr(e.Lhs)
		if err != nil {
			return nil, err
		}
		rt, err := s.expr(e.Rhs)
		if err != nil {
			return nil, err
		}
		ldt, rdt := decay(lt), decay(rt)
		if !ldt.IsScalar() || !rdt.IsScalar() {
			return nil, errf(e.Line, e.Col, "binary %s on %s and %s", e.Op, lt, rt)
		}
		switch e.Op {
		case "+":
			if ldt.Kind == TypePtr && rdt.Kind == TypePtr {
				return nil, errf(e.Line, e.Col, "cannot add two pointers")
			}
			if ldt.Kind == TypePtr {
				return ldt, nil
			}
			if rdt.Kind == TypePtr {
				return rdt, nil
			}
			return typeInt, nil
		case "-":
			if ldt.Kind == TypePtr && rdt.Kind == TypePtr {
				return typeInt, nil // element difference
			}
			if ldt.Kind == TypePtr {
				return ldt, nil
			}
			if rdt.Kind == TypePtr {
				return nil, errf(e.Line, e.Col, "int - pointer is invalid")
			}
			return typeInt, nil
		default:
			return typeInt, nil
		}
	case EAssign:
		if !isLvalue(e.Lhs) {
			return nil, errf(e.Line, e.Col, "assignment to non-lvalue")
		}
		lt, err := s.expr(e.Lhs)
		if err != nil {
			return nil, err
		}
		if !lt.IsScalar() {
			return nil, errf(e.Line, e.Col, "assignment to non-scalar %s", lt)
		}
		if _, err := s.expr(e.Rhs); err != nil {
			return nil, err
		}
		return lt, nil
	case ECond:
		if _, err := s.expr(e.Lhs); err != nil {
			return nil, err
		}
		tt, err := s.expr(e.Rhs)
		if err != nil {
			return nil, err
		}
		if _, err := s.expr(e.Third); err != nil {
			return nil, err
		}
		return decay(tt), nil
	case ECall:
		if e.Lhs.Kind != EVar {
			return nil, errf(e.Line, e.Col, "only direct calls are supported")
		}
		sym := s.cur.lookup(e.Lhs.Name)
		if sym == nil || sym.Kind != SymFunc {
			return nil, errf(e.Line, e.Col, "call of undefined function %q", e.Lhs.Name)
		}
		e.Lhs.Sym = sym
		fn := sym.Func
		if !IsBuiltin(fn.Name) && len(e.Args) != len(fn.Params) {
			return nil, errf(e.Line, e.Col, "%q wants %d arguments, got %d",
				fn.Name, len(fn.Params), len(e.Args))
		}
		if IsBuiltin(fn.Name) {
			for _, b := range builtins {
				if b.name == fn.Name && len(e.Args) != b.nargs {
					return nil, errf(e.Line, e.Col, "%q wants %d arguments, got %d",
						fn.Name, b.nargs, len(e.Args))
				}
			}
		}
		if len(e.Args) > 7 {
			return nil, errf(e.Line, e.Col, "more than 7 arguments are not supported")
		}
		for _, a := range e.Args {
			if _, err := s.expr(a); err != nil {
				return nil, err
			}
		}
		return fn.Ret, nil
	case EIndex:
		bt, err := s.expr(e.Lhs)
		if err != nil {
			return nil, err
		}
		dt := decay(bt)
		if dt.Kind != TypePtr {
			return nil, errf(e.Line, e.Col, "indexing non-array %s", bt)
		}
		it, err := s.expr(e.Rhs)
		if err != nil {
			return nil, err
		}
		if decay(it).Kind != TypeInt {
			return nil, errf(e.Line, e.Col, "array index must be int, got %s", it)
		}
		if bt.Kind == TypeArray {
			markAddrTaken(e.Lhs)
		}
		return dt.Elem, nil
	case EMember:
		bt, err := s.expr(e.Lhs)
		if err != nil {
			return nil, err
		}
		st := bt
		if e.Arrow {
			if decay(bt).Kind != TypePtr {
				return nil, errf(e.Line, e.Col, "-> on non-pointer %s", bt)
			}
			st = decay(bt).Elem
		} else {
			markAddrTaken(e.Lhs)
		}
		if st.Kind != TypeStruct {
			return nil, errf(e.Line, e.Col, "member access on non-struct %s", st)
		}
		for _, f := range st.Fields {
			if f.Name == e.Name {
				return f.Type, nil
			}
		}
		return nil, errf(e.Line, e.Col, "struct %s has no member %q", st.Name, e.Name)
	case EIncDec:
		if !isLvalue(e.Lhs) {
			return nil, errf(e.Line, e.Col, "%s on non-lvalue", e.Op)
		}
		lt, err := s.expr(e.Lhs)
		if err != nil {
			return nil, err
		}
		if !lt.IsScalar() {
			return nil, errf(e.Line, e.Col, "%s on %s", e.Op, lt)
		}
		return lt, nil
	}
	return nil, errf(e.Line, e.Col, "internal: unknown expression kind %d", e.Kind)
}

// markAddrTaken forces the base variable of an lvalue into memory.
func markAddrTaken(e *Expr) {
	switch e.Kind {
	case EVar:
		if e.Sym != nil {
			e.Sym.AddrTaken = true
		}
	case EMember:
		if !e.Arrow {
			markAddrTaken(e.Lhs)
		}
	case EIndex:
		if e.Lhs.Type != nil && e.Lhs.Type.Kind == TypeArray {
			markAddrTaken(e.Lhs)
		}
	}
}
