package cc

import (
	"strings"
	"testing"
	"testing/quick"
)

func lexOK(t *testing.T, src string) []Token {
	t.Helper()
	toks, _, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]int64{
		"0":          0,
		"42":         42,
		"0x1F":       31,
		"0X1f":       31,
		"0b101":      5,
		"017":        15, // octal
		"123u":       123,
		"123UL":      123,
		"2147483647": 2147483647,
		"'A'":        65,
		"'\\n'":      10,
		"'\\t'":      9,
		"'\\0'":      0,
		"'\\\\'":     92,
	}
	for src, want := range cases {
		toks := lexOK(t, src)
		if len(toks) != 2 || toks[0].Kind != TNum || toks[0].Num != want {
			t.Errorf("Lex(%q) = %v, want %d", src, toks[0], want)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexOK(t, `
// line comment
a /* block
   spanning lines */ b
/* nested-ish ** stars */ c
`)
	var names []string
	for _, tk := range toks {
		if tk.Kind == TIdent {
			names = append(names, tk.Val)
		}
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("idents: %v", names)
	}
}

func TestLexPunctuatorMaximalMunch(t *testing.T) {
	toks := lexOK(t, "a<<=b>>=c&&d||e->f...")
	var ps []string
	for _, tk := range toks {
		if tk.Kind == TPunct {
			ps = append(ps, tk.Val)
		}
	}
	want := []string{"<<=", ">>=", "&&", "||", "->", "..."}
	if len(ps) != len(want) {
		t.Fatalf("puncts: %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("punct %d: %q, want %q", i, ps[i], want[i])
		}
	}
}

func TestLexMacroExpansion(t *testing.T) {
	toks := lexOK(t, `
#define A 1
#define B (A + A)
#define C B * B
int x = C;
`)
	var rendered []string
	for _, tk := range toks {
		if tk.Kind != TEOF {
			rendered = append(rendered, tk.String())
		}
	}
	s := strings.Join(rendered, " ")
	if !strings.Contains(s, "( 1 + 1 ) * ( 1 + 1 )") {
		t.Errorf("expansion: %s", s)
	}
}

func TestLexMacroSelfReference(t *testing.T) {
	// a self-referential macro must not loop forever
	toks := lexOK(t, "#define X X + 1\nint y = X;")
	if len(toks) < 5 {
		t.Errorf("tokens: %v", toks)
	}
}

func TestLexLineContinuation(t *testing.T) {
	toks := lexOK(t, "#define LONG 1 + \\\n 2\nint x = LONG;")
	count := 0
	for _, tk := range toks {
		if tk.Kind == TNum {
			count++
		}
	}
	if count != 2 {
		t.Errorf("continuation lost tokens: %v", toks)
	}
}

func TestLexPragmaCapture(t *testing.T) {
	toks := lexOK(t, "#pragma omp parallel for reduction(+:x)\nint y;")
	if toks[0].Kind != TPragma || !strings.Contains(toks[0].Val, "reduction(+:x)") {
		t.Errorf("pragma token: %v", toks[0])
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"int x = 0x;",
		"'unterminated",
		"/* never closed",
		"#define F(a) a",
		"#ifdef X\n#endif",
		"int x = @;",
	}
	for _, src := range bad {
		if _, _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestLexIncludesRecorded(t *testing.T) {
	_, incs, err := Lex("#include <det_omp.h>\n#include <stdio.h>\nint x;")
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 2 || incs[0] != "det_omp.h" || incs[1] != "stdio.h" {
		t.Errorf("includes: %v", incs)
	}
}

// Property: lexing never panics and always terminates with TEOF on
// arbitrary printable input.
func TestQuickLexTotal(t *testing.T) {
	f := func(raw []byte) bool {
		// constrain to printable ASCII to focus on lexical structure
		buf := make([]byte, len(raw))
		for i, b := range raw {
			buf[i] = 32 + b%95
		}
		toks, _, err := Lex(string(buf))
		if err != nil {
			return true // rejection is fine; crashing is not
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on arbitrary token soup.
func TestQuickParseTotal(t *testing.T) {
	f := func(raw []byte) bool {
		buf := make([]byte, len(raw))
		for i, b := range raw {
			buf[i] = 32 + b%95
		}
		_, err := Parse(string(buf))
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
