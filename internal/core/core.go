// Package core is the library's front door: the paper's primary
// contribution — Deterministic OpenMP programs executing on the LBP
// parallelizing manycore — behind one small API.
//
// A System couples a compiler configuration with a machine configuration
// so that bank placement (__bank, lbp_bank_ptr) and the simulated memory
// geometry always agree. Typical use:
//
//	sys := core.NewSystem(4)                  // 4 cores, 16 harts
//	prog, err := sys.CompileC(source)         // MiniC + #pragma omp
//	rep, err := sys.Run(prog)                 // deterministic execution
//	fmt.Println(rep.Cycles, rep.IPC, rep.Digest)
//
// Every run is cycle-deterministic: Run with the same program on an
// equally-configured System returns the identical Report, digest
// included. Verify that directly with RunRepeatable.
package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/sim"
)

// System describes one LBP machine and its toolchain.
type System struct {
	Cores   int
	Machine lbp.Config
	CC      cc.Options

	// MaxCycles bounds each run (default 100M).
	MaxCycles uint64

	// Devices are attached to every machine built by Run.
	Devices []func(prog *asm.Program) lbp.Device
}

// NewSystem returns a system with the paper-inspired defaults.
func NewSystem(cores int) *System {
	mc := lbp.DefaultConfig(cores)
	co := cc.DefaultOptions()
	co.Cores = cores
	co.SharedBankBytes = mc.Mem.SharedBytes
	return &System{
		Cores:     cores,
		Machine:   mc,
		CC:        co,
		MaxCycles: 100_000_000,
	}
}

// Program is a compiled, loadable LBP program.
type Program struct {
	*asm.Program
	Assembly string // the generated assembly, for inspection
}

// CompileC compiles MiniC (with Deterministic OpenMP pragmas) into a
// loadable program, appending the detomp runtime when needed.
func (s *System) CompileC(source string) (*Program, error) {
	asmText, err := cc.BuildProgram(source, s.CC)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: generated assembly rejected: %w", err)
	}
	return &Program{Program: prog, Assembly: asmText}, nil
}

// CompileAsm assembles X_PAR assembly into a loadable program.
func (s *System) CompileAsm(source string) (*Program, error) {
	prog, err := asm.Assemble(source, asm.Options{})
	if err != nil {
		return nil, err
	}
	return &Program{Program: prog, Assembly: source}, nil
}

// AddDevice registers a device constructor invoked per run with the
// loaded program (to resolve port symbol addresses).
func (s *System) AddDevice(mk func(prog *asm.Program) lbp.Device) {
	s.Devices = append(s.Devices, mk)
}

// Report is the outcome of one run.
type Report struct {
	Halt    string
	Cycles  uint64
	Retired uint64
	IPC     float64
	Stats   lbp.Stats
	Digest  uint64 // FNV-1a over the full event trace
	Events  uint64

	machine *lbp.Machine
}

// ReadWord reads a shared-memory word after the run (e.g. a global's
// value, via prog.Symbols).
func (r *Report) ReadWord(addr uint32) (uint32, bool) {
	return r.machine.ReadShared(addr)
}

// ReadWords reads n consecutive shared words.
func (r *Report) ReadWords(addr uint32, n int) ([]uint32, bool) {
	return r.machine.ReadSharedSlice(addr, n)
}

// Global reads the value of a named global variable.
func (r *Report) Global(prog *Program, name string) (uint32, error) {
	a, ok := prog.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("core: no symbol %q", name)
	}
	v, ok := r.ReadWord(a)
	if !ok {
		return 0, fmt.Errorf("core: symbol %q outside shared memory", name)
	}
	return v, nil
}

// Run executes the program on a fresh machine.
func (s *System) Run(prog *Program) (*Report, error) {
	var devices []lbp.Device
	for _, mk := range s.Devices {
		devices = append(devices, mk(prog.Program))
	}
	cfg := s.Machine
	sess, err := sim.New(sim.Spec{
		Program:   prog.Program,
		Config:    &cfg,
		Devices:   devices,
		MaxCycles: s.MaxCycles,
		Trace:     sim.TraceSpec{Digest: true},
	})
	if err != nil {
		return nil, err
	}
	res, err := sess.Run()
	if err != nil {
		return nil, err
	}
	rec := sess.Recorder()
	return &Report{
		Halt:    res.Halt,
		Cycles:  res.Stats.Cycles,
		Retired: res.Stats.Retired,
		IPC:     res.Stats.IPC(),
		Stats:   res.Stats,
		Digest:  rec.Digest(),
		Events:  rec.Count(),
		machine: sess.Machine(),
	}, nil
}

// RunRepeatable runs the program n times and checks cycle determinism:
// it returns the common report and an error if any run diverged.
func (s *System) RunRepeatable(prog *Program, n int) (*Report, error) {
	if n < 1 {
		n = 1
	}
	first, err := s.Run(prog)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		r, err := s.Run(prog)
		if err != nil {
			return nil, err
		}
		if r.Digest != first.Digest || r.Cycles != first.Cycles {
			return nil, fmt.Errorf(
				"core: run %d diverged: digest %#x/%#x cycles %d/%d (determinism violated)",
				i, r.Digest, first.Digest, r.Cycles, first.Cycles)
		}
	}
	return first, nil
}
