package core

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/lbp"
)

const squaresSrc = `
#include <det_omp.h>
#define NUM_HART 8
int squares[NUM_HART];
void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < NUM_HART; t++) squares[t] = t * t;
}
`

func TestCompileAndRunC(t *testing.T) {
	sys := NewSystem(2)
	prog, err := sys.CompileC(squaresSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Assembly, "LBP_parallel_start") {
		t.Error("runtime missing from the assembly")
	}
	rep, err := sys.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Halt != "exit" {
		t.Errorf("halt = %q", rep.Halt)
	}
	vals, ok := rep.ReadWords(prog.Symbols["squares"], 8)
	if !ok {
		t.Fatal("cannot read squares")
	}
	for i, v := range vals {
		if v != uint32(i*i) {
			t.Errorf("squares[%d] = %d", i, v)
		}
	}
	if rep.IPC <= 0 || rep.Cycles == 0 || rep.Events == 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestRunRepeatable(t *testing.T) {
	sys := NewSystem(2)
	prog, err := sys.CompileC(squaresSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunRepeatable(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest == 0 {
		t.Error("digest missing")
	}
}

func TestCompileAsmAndGlobal(t *testing.T) {
	sys := NewSystem(1)
	prog, err := sys.CompileAsm(`
main:
	la a0, answer
	li a1, 41
	addi a1, a1, 1
	sw a1, 0(a0)
	li ra, 0
	li t0, -1
	p_ret
	.data
answer:	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rep.Global(prog, "answer")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("answer = %d", v)
	}
	if _, err := rep.Global(prog, "nope"); err == nil {
		t.Error("unknown global must error")
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	sys := NewSystem(1)
	if _, err := sys.CompileC("void main() { x = 1; }"); err == nil {
		t.Error("bad C must fail")
	}
	if _, err := sys.CompileAsm("main:\n\tbogus x1\n"); err == nil {
		t.Error("bad assembly must fail")
	}
}

func TestSystemWithDevices(t *testing.T) {
	sys := NewSystem(1)
	sys.MaxCycles = 5_000_000
	prog, err := sys.CompileC(`
int flag;
int val;
int out;
void main() {
	while (lbp_poll(&flag) == 0) {}
	out = val + 1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.AddDevice(func(p *asm.Program) lbp.Device {
		return &lbp.Sensor{
			ValueAddr: p.Symbols["val"],
			FlagAddr:  p.Symbols["flag"],
			Events:    []lbp.SensorEvent{{Cycle: 700, Value: 122}},
		}
	})
	rep, err := sys.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rep.Global(prog, "out")
	if err != nil {
		t.Fatal(err)
	}
	if v != 123 {
		t.Errorf("out = %d", v)
	}
}

func TestBankGeometryAgreement(t *testing.T) {
	// The compiler's bank size must match the machine's so lbp_bank_ptr
	// arithmetic lands where data was placed.
	sys := NewSystem(4)
	if sys.CC.SharedBankBytes != sys.Machine.Mem.SharedBytes {
		t.Fatalf("geometry mismatch: %d vs %d",
			sys.CC.SharedBankBytes, sys.Machine.Mem.SharedBytes)
	}
	prog, err := sys.CompileC(`
int marker[2] __bank(3) = {77, 88};
int out;
void main() {
	out = *(lbp_bank_ptr(3) + 1024 + 1);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := rep.Global(prog, "out")
	if v != 88 {
		t.Errorf("bank read = %d, want 88", v)
	}
}
