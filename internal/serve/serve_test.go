package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// vecsumSource is the parallel vector-sum MiniC program from testdata,
// inlined so the tests are self-contained.
const vecsumSource = `
#include <det_omp.h>
#define NUM_HART 8
#define N 64

int data[N] = {[0 ... 63] = 2};
int total;

void main() {
	int t;
	omp_set_num_threads(NUM_HART);
	total = 0;
	#pragma omp parallel for reduction(+:total)
	for (t = 0; t < NUM_HART; t++) {
		int i;
		int *p;
		p = data + t * (N / NUM_HART);
		for (i = 0; i < N / NUM_HART; i++) {
			total += *p;
			p = p + 1;
		}
	}
}
`

// spinSource busy-loops long enough for a shutdown to preempt it
// mid-run (a few million simulated cycles), then exits cleanly.
const spinSource = `main:
	li t1, 2000000
loop:
	addi t1, t1, -1
	bne t1, zero, loop
	li ra, 0
	li t0, -1
	p_ret
`

// postJob submits one job and decodes the response, whatever the code.
func postJob(t *testing.T, url string, req JobRequest) (int, *JobResult) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, &jr
}

// directRun executes the request the way a local client would — through
// sim.Session, bypassing the service entirely — and returns the
// deterministic outcome the service must reproduce bit for bit.
func directRun(t *testing.T, req JobRequest, maxCycles uint64) *JobResult {
	t.Helper()
	prog, err := req.compile()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sim.New(sim.Spec{
		Program:         prog,
		Cores:           req.Cores,
		SharedBankBytes: req.BankBytes,
		MaxCycles:       maxCycles,
		Trace:           sim.TraceSpec{Digest: req.Digest, Ring: req.Ring},
		Profile:         req.Profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResult
	jr.fill(sess, res, req.Ring)
	return &jr
}

// TestDeterminismUnderLoad is the acceptance test: the same job
// submitted by many concurrent clients must return, for every one of
// them, exactly the cycles, retired count and trace digest of a direct
// sim.Session run. Runs under -race in tier-1.
func TestDeterminismUnderLoad(t *testing.T) {
	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true, Profile: true}
	want := directRun(t, req, 100_000_000)

	srv := New(Config{Workers: 4, QueueDepth: 64, Slice: 1024})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 12
	results := make([]*JobResult, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], results[i] = postJob(t, ts.URL, req)
		}(i)
	}
	wg.Wait()
	for i, jr := range results {
		if codes[i] != http.StatusOK || jr.Status != StatusOK {
			t.Errorf("client %d: HTTP %d status %q (%s)", i, codes[i], jr.Status, jr.Error)
			continue
		}
		if jr.Halt != want.Halt || jr.Cycles != want.Cycles || jr.Retired != want.Retired ||
			jr.Digest != want.Digest || jr.Events != want.Events {
			t.Errorf("client %d diverged: halt=%q cycles=%d retired=%d digest=%#x events=%d,"+
				" want halt=%q cycles=%d retired=%d digest=%#x events=%d",
				i, jr.Halt, jr.Cycles, jr.Retired, jr.Digest, jr.Events,
				want.Halt, want.Cycles, want.Retired, want.Digest, want.Events)
		}
		if jr.Perf == nil || jr.Perf.HartCycles != want.Perf.HartCycles ||
			jr.Perf.CommitCycles != want.Perf.CommitCycles {
			t.Errorf("client %d: perf snapshot diverged: %+v, want %+v", i, jr.Perf, want.Perf)
		}
		if jr.Mem == nil || *jr.Mem != *want.Mem {
			t.Errorf("client %d: memory stats diverged: %+v, want %+v", i, jr.Mem, want.Mem)
		}
	}
	// The pool must have been exercised: 12 jobs over 4 workers cannot
	// all have built fresh machines... but every reuse was invisible.
	if st := srv.pool.Stats(); st.Hits == 0 {
		t.Error("no warm-pool hits under load")
	}
}

// TestQueueOverflow: with one worker held at the gate and a single
// queue slot filled, the next job must be answered 429 with Retry-After
// — backpressure instead of unbounded queueing.
func TestQueueOverflow(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv := New(Config{
		Workers: 1, QueueDepth: 1, Slice: 1024,
		testGate: func() { started <- struct{}{}; <-release },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true}
	type reply struct {
		code int
		jr   *JobResult
	}
	replies := make(chan reply, 2)
	submit := func() {
		code, jr := postJob(t, ts.URL, req)
		replies <- reply{code, jr}
	}
	go submit() // runs, blocked at the gate
	<-started
	go submit() // sits in the queue
	waitFor(t, "queued job", func() bool { return srv.met.queueDepth.Load() == 1 })

	code, jr := postJob(t, ts.URL, req) // overflow
	if code != http.StatusTooManyRequests || jr.Status != StatusRejected {
		t.Errorf("overflow: HTTP %d status %q, want 429 rejected", code, jr.Status)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"source":"x","lang":"s"`)) // also bad JSON
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: HTTP %d, want 400", resp.StatusCode)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.code != http.StatusOK || r.jr.Status != StatusOK {
			t.Errorf("held job %d: HTTP %d status %q (%s)", i, r.code, r.jr.Status, r.jr.Error)
		}
	}
	if got := srv.met.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrain: shutdown refuses new work immediately but lets the
// in-flight job finish and answer 200.
func TestShutdownDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := New(Config{
		Workers: 1, QueueDepth: 4, Slice: 1024,
		testGate: func() { started <- struct{}{}; <-release },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true}
	got := make(chan *JobResult, 1)
	go func() {
		_, jr := postJob(t, ts.URL, req)
		got <- jr
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	waitFor(t, "draining", srv.draining)

	if code, jr := postJob(t, ts.URL, req); code != http.StatusServiceUnavailable {
		t.Errorf("post while draining: HTTP %d status %q, want 503", code, jr.Status)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz while draining: HTTP %d, want 503", resp.StatusCode)
		}
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	jr := <-got
	if jr.Status != StatusOK {
		t.Errorf("drained job: status %q (%s), want ok", jr.Status, jr.Error)
	}
}

// TestShutdownPreemptsAndCheckpointResumes: a shutdown whose grace
// expires preempts the running job at a slice boundary and checkpoints
// it; resuming that checkpoint finishes with exactly the digest of an
// uninterrupted run — preemption is invisible to the simulated results.
func TestShutdownPreemptsAndCheckpointResumes(t *testing.T) {
	req := JobRequest{Source: spinSource, Lang: "s", Cores: 1, Digest: true, MaxCycles: 50_000_000}
	want := directRun(t, req, req.MaxCycles)

	dir := t.TempDir()
	srv := New(Config{Workers: 1, QueueDepth: 4, Slice: 4096, CheckpointDir: dir})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	got := make(chan *JobResult, 1)
	codec := make(chan int, 1)
	go func() {
		code, jr := postJob(t, ts.URL, req)
		codec <- code
		got <- jr
	}()
	waitFor(t, "job running", func() bool { return srv.met.inflight.Load() == 1 })
	time.Sleep(50 * time.Millisecond) // let some slices elapse

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // grace already expired: preempt at the next slice
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code, jr := <-codec, <-got
	if code != http.StatusServiceUnavailable || jr.Status != StatusPreempted {
		t.Fatalf("preempted job: HTTP %d status %q (%s), want 503 preempted", code, jr.Status, jr.Error)
	}
	if jr.Checkpoint == "" {
		t.Fatalf("no checkpoint recorded: %s", jr.Error)
	}
	if filepath.Dir(jr.Checkpoint) != dir {
		t.Errorf("checkpoint %s not under %s", jr.Checkpoint, dir)
	}
	if got := srv.met.preempted.Load(); got != 1 {
		t.Errorf("preempted counter = %d, want 1", got)
	}

	data, err := os.ReadFile(jr.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.Resume(data, sim.ResumeSpec{MaxCycles: req.MaxCycles})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Halt != want.Halt || res.Stats.Cycles != want.Cycles ||
		res.Stats.Retired != want.Retired ||
		resumed.Recorder().Digest() != want.Digest ||
		resumed.Recorder().Count() != want.Events {
		t.Errorf("resumed run diverged: halt=%q cycles=%d retired=%d digest=%#x events=%d,"+
			" want halt=%q cycles=%d retired=%d digest=%#x events=%d",
			res.Halt, res.Stats.Cycles, res.Stats.Retired,
			resumed.Recorder().Digest(), resumed.Recorder().Count(),
			want.Halt, want.Cycles, want.Retired, want.Digest, want.Events)
	}
}

// TestJobDeadline: a job whose wall-clock deadline elapses mid-run is
// stopped cooperatively and answered 504.
func TestJobDeadline(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, Slice: 4096})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: spinSource, Lang: "s", Cores: 1, MaxCycles: 500_000_000, DeadlineMs: 30}
	code, jr := postJob(t, ts.URL, req)
	if code != http.StatusGatewayTimeout || jr.Status != StatusDeadline {
		t.Errorf("HTTP %d status %q (%s), want 504 deadline", code, jr.Status, jr.Error)
	}
}

// TestRequestValidation: malformed requests are refused with 400 before
// consuming a queue slot.
func TestRequestValidation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  JobRequest
	}{
		{"no program", JobRequest{}},
		{"both forms", JobRequest{Source: "main:\n", Image: []byte{1}}},
		{"bad lang", JobRequest{Source: "x", Lang: "rust"}},
		{"negative cores", JobRequest{Source: "x", Cores: -1}},
		{"bank not power of two", JobRequest{Source: "x", BankBytes: 12345}},
		{"negative ring", JobRequest{Source: "x", Ring: -1}},
		{"negative deadline", JobRequest{Source: "x", DeadlineMs: -1}},
		{"budget over cap", JobRequest{Source: "x", MaxCycles: 1 << 62}},
		{"compile error", JobRequest{Source: "void main() { undefined_fn(); }"}},
		{"bad assembly", JobRequest{Source: "not an instruction", Lang: "s"}},
	}
	for _, tc := range cases {
		code, jr := postJob(t, ts.URL, tc.req)
		if code != http.StatusBadRequest || jr.Error == "" {
			t.Errorf("%s: HTTP %d error %q, want 400 with a message", tc.name, code, jr.Error)
		}
	}
	if got := srv.met.accepted.Load(); got != 0 {
		t.Errorf("accepted counter = %d after validation failures, want 0", got)
	}
}

// TestHealthzAndMetrics: liveness answers ok and the metrics page
// carries the documented series.
func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d, want 200", resp.StatusCode)
	}

	if code, jr := postJob(t, ts.URL, JobRequest{Source: vecsumSource, Cores: 2, Digest: true}); code != http.StatusOK {
		t.Fatalf("job: HTTP %d (%s)", code, jr.Error)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	for _, series := range []string{
		"lbp_serve_jobs_accepted_total 1",
		"lbp_serve_jobs_completed_total 1",
		"lbp_serve_jobs_rejected_total 0",
		"lbp_serve_jobs_failed_total 0",
		"lbp_serve_queue_depth 0",
		"lbp_serve_pool_misses_total 1",
		"lbp_serve_sim_cycles_total",
		"lbp_serve_sim_cycles_per_second",
	} {
		if !strings.Contains(page, series) {
			t.Errorf("metrics page missing %q:\n%s", series, page)
		}
	}
}

// readAll drains a response body as a string and closes it.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
