package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/sim"
)

// vecsumSource is the parallel vector-sum MiniC program from testdata,
// inlined so the tests are self-contained.
const vecsumSource = `
#include <det_omp.h>
#define NUM_HART 8
#define N 64

int data[N] = {[0 ... 63] = 2};
int total;

void main() {
	int t;
	omp_set_num_threads(NUM_HART);
	total = 0;
	#pragma omp parallel for reduction(+:total)
	for (t = 0; t < NUM_HART; t++) {
		int i;
		int *p;
		p = data + t * (N / NUM_HART);
		for (i = 0; i < N / NUM_HART; i++) {
			total += *p;
			p = p + 1;
		}
	}
}
`

// spinSource busy-loops long enough for a shutdown to preempt it
// mid-run (a few million simulated cycles), then exits cleanly.
const spinSource = `main:
	li t1, 2000000
loop:
	addi t1, t1, -1
	bne t1, zero, loop
	li ra, 0
	li t0, -1
	p_ret
`

// postJob submits one job and decodes the response, whatever the code.
func postJob(t *testing.T, url string, req JobRequest) (int, *JobResult) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, &jr
}

// directRun executes the request the way a local client would — through
// sim.Session, bypassing the service entirely — and returns the
// deterministic outcome the service must reproduce bit for bit.
func directRun(t *testing.T, req JobRequest, maxCycles uint64) *JobResult {
	t.Helper()
	prog, err := req.compile()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sim.New(sim.Spec{
		Program:         prog,
		Cores:           req.Cores,
		SharedBankBytes: req.BankBytes,
		MaxCycles:       maxCycles,
		Trace:           sim.TraceSpec{Digest: req.Digest, Ring: req.Ring},
		Profile:         req.Profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResult
	jr.fill(sess, res, req.Ring)
	return &jr
}

// TestDeterminismUnderLoad is the acceptance test: the same job
// submitted by many concurrent clients must return, for every one of
// them, exactly the cycles, retired count and trace digest of a direct
// sim.Session run — including while other clients cancel long jobs
// mid-run, whose machines cycle back through the warm pool. Runs under
// -race in tier-1.
func TestDeterminismUnderLoad(t *testing.T) {
	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true, Profile: true}
	want := directRun(t, req, 100_000_000)

	srv := New(Config{Workers: 4, QueueDepth: 64, Slice: 1024})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 12
	const cancelers = 4
	spin, err := json.Marshal(JobRequest{Source: spinSource, Lang: "s", Cores: 1, Digest: true, MaxCycles: 400_000_000})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*JobResult, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < cancelers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/jobs", bytes.NewReader(spin))
			if err != nil {
				t.Error(err)
				return
			}
			// The cancellation races the run; either way the response
			// is irrelevant — what matters is that it cannot perturb
			// anyone else's digest.
			if resp, err := http.DefaultClient.Do(hr); err == nil {
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], results[i] = postJob(t, ts.URL, req)
		}(i)
	}
	wg.Wait()
	// Let the server finish the canceled jobs before reading counters.
	waitFor(t, "canceled jobs drained", func() bool {
		return srv.met.inflight.Load() == 0 && srv.met.queueDepth.Load() == 0
	})
	for i, jr := range results {
		if codes[i] != http.StatusOK || jr.Status != StatusOK {
			t.Errorf("client %d: HTTP %d status %q (%s)", i, codes[i], jr.Status, jr.Error)
			continue
		}
		if jr.Halt != want.Halt || jr.Cycles != want.Cycles || jr.Retired != want.Retired ||
			jr.Digest != want.Digest || jr.Events != want.Events {
			t.Errorf("client %d diverged: halt=%q cycles=%d retired=%d digest=%#x events=%d,"+
				" want halt=%q cycles=%d retired=%d digest=%#x events=%d",
				i, jr.Halt, jr.Cycles, jr.Retired, jr.Digest, jr.Events,
				want.Halt, want.Cycles, want.Retired, want.Digest, want.Events)
		}
		if jr.Perf == nil || jr.Perf.HartCycles != want.Perf.HartCycles ||
			jr.Perf.CommitCycles != want.Perf.CommitCycles {
			t.Errorf("client %d: perf snapshot diverged: %+v, want %+v", i, jr.Perf, want.Perf)
		}
		if jr.Mem == nil || *jr.Mem != *want.Mem {
			t.Errorf("client %d: memory stats diverged: %+v, want %+v", i, jr.Mem, want.Mem)
		}
	}
	// The pool must have been exercised: 12 jobs over 4 workers cannot
	// all have built fresh machines... but every reuse was invisible.
	st := srv.pool.Stats()
	if st.Hits == 0 {
		t.Error("no warm-pool hits under load")
	}
	if st.ResetFailures != 0 {
		t.Errorf("reset failures = %d, want 0", st.ResetFailures)
	}
	// Canceled jobs hand their machines back instead of discarding.
	if got := srv.met.poolDiscarded.Load(); got != 0 {
		t.Errorf("pool_discarded = %d under cancel-heavy load, want 0", got)
	}
}

// TestQueueOverflow: with one worker held at the gate and a single
// queue slot filled, the next job must be answered 429 with Retry-After
// — backpressure instead of unbounded queueing.
func TestQueueOverflow(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv := New(Config{
		Workers: 1, QueueDepth: 1, Slice: 1024,
		testGate: func() { started <- struct{}{}; <-release },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true}
	type reply struct {
		code int
		jr   *JobResult
	}
	replies := make(chan reply, 2)
	submit := func() {
		code, jr := postJob(t, ts.URL, req)
		replies <- reply{code, jr}
	}
	go submit() // runs, blocked at the gate
	<-started
	go submit() // sits in the queue
	waitFor(t, "queued job", func() bool { return srv.met.queueDepth.Load() == 1 })

	code, jr := postJob(t, ts.URL, req) // overflow
	if code != http.StatusTooManyRequests || jr.Status != StatusRejected {
		t.Errorf("overflow: HTTP %d status %q, want 429 rejected", code, jr.Status)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"source":"x","lang":"s"`)) // also bad JSON
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: HTTP %d, want 400", resp.StatusCode)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.code != http.StatusOK || r.jr.Status != StatusOK {
			t.Errorf("held job %d: HTTP %d status %q (%s)", i, r.code, r.jr.Status, r.jr.Error)
		}
	}
	if got := srv.met.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrain: shutdown refuses new work immediately but lets the
// in-flight job finish and answer 200.
func TestShutdownDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := New(Config{
		Workers: 1, QueueDepth: 4, Slice: 1024,
		testGate: func() { started <- struct{}{}; <-release },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true}
	got := make(chan *JobResult, 1)
	go func() {
		_, jr := postJob(t, ts.URL, req)
		got <- jr
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	waitFor(t, "draining", srv.draining)

	if code, jr := postJob(t, ts.URL, req); code != http.StatusServiceUnavailable {
		t.Errorf("post while draining: HTTP %d status %q, want 503", code, jr.Status)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz while draining: HTTP %d, want 503", resp.StatusCode)
		}
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	jr := <-got
	if jr.Status != StatusOK {
		t.Errorf("drained job: status %q (%s), want ok", jr.Status, jr.Error)
	}
}

// TestShutdownPreemptsAndCheckpointResumes: a shutdown whose grace
// expires preempts the running job at a slice boundary and checkpoints
// it; resuming that checkpoint finishes with exactly the digest of an
// uninterrupted run — preemption is invisible to the simulated results.
func TestShutdownPreemptsAndCheckpointResumes(t *testing.T) {
	req := JobRequest{Source: spinSource, Lang: "s", Cores: 1, Digest: true, MaxCycles: 50_000_000}
	want := directRun(t, req, req.MaxCycles)

	dir := t.TempDir()
	srv := New(Config{Workers: 1, QueueDepth: 4, Slice: 4096, CheckpointDir: dir})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	got := make(chan *JobResult, 1)
	codec := make(chan int, 1)
	go func() {
		code, jr := postJob(t, ts.URL, req)
		codec <- code
		got <- jr
	}()
	waitFor(t, "job running", func() bool { return srv.met.inflight.Load() == 1 })
	time.Sleep(50 * time.Millisecond) // let some slices elapse

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // grace already expired: preempt at the next slice
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code, jr := <-codec, <-got
	if code != http.StatusServiceUnavailable || jr.Status != StatusPreempted {
		t.Fatalf("preempted job: HTTP %d status %q (%s), want 503 preempted", code, jr.Status, jr.Error)
	}
	if jr.Checkpoint == "" {
		t.Fatalf("no checkpoint recorded: %s", jr.Error)
	}
	if filepath.Dir(jr.Checkpoint) != dir {
		t.Errorf("checkpoint %s not under %s", jr.Checkpoint, dir)
	}
	if got := srv.met.preempted.Load(); got != 1 {
		t.Errorf("preempted counter = %d, want 1", got)
	}

	data, err := os.ReadFile(jr.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.Resume(data, sim.ResumeSpec{MaxCycles: req.MaxCycles})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Halt != want.Halt || res.Stats.Cycles != want.Cycles ||
		res.Stats.Retired != want.Retired ||
		resumed.Recorder().Digest() != want.Digest ||
		resumed.Recorder().Count() != want.Events {
		t.Errorf("resumed run diverged: halt=%q cycles=%d retired=%d digest=%#x events=%d,"+
			" want halt=%q cycles=%d retired=%d digest=%#x events=%d",
			res.Halt, res.Stats.Cycles, res.Stats.Retired,
			resumed.Recorder().Digest(), resumed.Recorder().Count(),
			want.Halt, want.Cycles, want.Retired, want.Digest, want.Events)
	}
}

// TestJobDeadline: a job whose wall-clock deadline elapses mid-run is
// stopped cooperatively and answered 504.
func TestJobDeadline(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, Slice: 4096})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: spinSource, Lang: "s", Cores: 1, MaxCycles: 500_000_000, DeadlineMs: 30}
	code, jr := postJob(t, ts.URL, req)
	if code != http.StatusGatewayTimeout || jr.Status != StatusDeadline {
		t.Errorf("HTTP %d status %q (%s), want 504 deadline", code, jr.Status, jr.Error)
	}
}

// TestRequestValidation: malformed requests are refused with 400 before
// consuming a queue slot.
func TestRequestValidation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  JobRequest
	}{
		{"no program", JobRequest{}},
		{"both forms", JobRequest{Source: "main:\n", Image: []byte{1}}},
		{"bad lang", JobRequest{Source: "x", Lang: "rust"}},
		{"lang with image", JobRequest{Image: []byte{1}, Lang: "s"}},
		// Regression: bankBytes used to be silently ignored for image
		// jobs, running the image on a different machine geometry than
		// the one its data layout was assembled for.
		{"bank with image", JobRequest{Image: []byte{1}, BankBytes: 1 << 16}},
		{"negative cores", JobRequest{Source: "x", Cores: -1}},
		{"cores beyond MaxCores", JobRequest{Source: "x", Cores: 1025}},
		{"bank not power of two", JobRequest{Source: "x", BankBytes: 12345}},
		{"bank below the compiler reserve", JobRequest{Source: "x", BankBytes: 1024}},
		{"negative ring", JobRequest{Source: "x", Ring: -1}},
		{"negative deadline", JobRequest{Source: "x", DeadlineMs: -1}},
		{"budget over cap", JobRequest{Source: "x", MaxCycles: 1 << 62}},
		{"compile error", JobRequest{Source: "void main() { undefined_fn(); }"}},
		{"bad assembly", JobRequest{Source: "not an instruction", Lang: "s"}},
	}
	for _, tc := range cases {
		code, jr := postJob(t, ts.URL, tc.req)
		if code != http.StatusBadRequest || jr.Error == "" {
			t.Errorf("%s: HTTP %d error %q, want 400 with a message", tc.name, code, jr.Error)
		}
	}
	if got := srv.met.accepted.Load(); got != 0 {
		t.Errorf("accepted counter = %d after validation failures, want 0", got)
	}
}

// TestHealthzAndMetrics: liveness answers ok and the metrics page
// carries the documented series.
func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d, want 200", resp.StatusCode)
	}

	if code, jr := postJob(t, ts.URL, JobRequest{Source: vecsumSource, Cores: 2, Digest: true}); code != http.StatusOK {
		t.Fatalf("job: HTTP %d (%s)", code, jr.Error)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	for _, series := range []string{
		"lbp_serve_jobs_accepted_total 1",
		"lbp_serve_jobs_completed_total 1",
		"lbp_serve_jobs_rejected_total 0",
		"lbp_serve_jobs_failed_total 0",
		"lbp_serve_queue_depth 0",
		"lbp_serve_pool_misses_total 1",
		"lbp_serve_sim_cycles_total",
		"lbp_serve_sim_cycles_per_second",
		"lbp_serve_last_job_sim_cycles_per_second",
		"lbp_serve_decode_cache_hits_total",
		"lbp_serve_decode_cache_misses_total",
		"lbp_serve_decode_cache_entries",
	} {
		if !strings.Contains(page, series) {
			t.Errorf("metrics page missing %q:\n%s", series, page)
		}
	}
	// A job completed, so the per-job throughput gauge must be nonzero.
	if strings.Contains(page, "lbp_serve_last_job_sim_cycles_per_second 0\n") {
		t.Errorf("last-job throughput gauge is zero after a completed job:\n%s", page)
	}
}

// readAll drains a response body as a string and closes it.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// postJobRaw submits one job and returns the raw response body along
// with the decoded result, for byte-level payload comparisons.
func postJobRaw(t *testing.T, url string, req JobRequest) (int, []byte, *JobResult) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte(readAll(t, resp))
	var jr JobResult
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v\n%s", resp.StatusCode, err, raw)
	}
	return resp.StatusCode, raw, &jr
}

// stripHostFields removes the host-side diagnostic fields from a raw
// JSON response, leaving only the deterministic payload.
func stripHostFields(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"id", "cached", "poolWarm", "queueMs", "runMs"} {
		delete(m, k)
	}
	b, err := json.Marshal(m) // map keys marshal sorted: a canonical form
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newCachedServer builds a server backed by a fresh result cache and
// returns the cache directory for tests that reach into the layout.
func newCachedServer(t *testing.T, maxBytes int64, cfg Config) (*Server, *cache.Store, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := cache.Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = store
	return New(cfg), store, dir
}

// TestCacheHitRoundTrip is the tentpole acceptance test: a repeated
// job is served from the cache without simulating a cycle, and every
// deterministic field of the cached response is byte-identical to the
// cold run's.
func TestCacheHitRoundTrip(t *testing.T) {
	srv, store, _ := newCachedServer(t, 0, Config{Workers: 2, QueueDepth: 8, Slice: 1024})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true, Ring: 4, Profile: true}
	code, coldRaw, cold := postJobRaw(t, ts.URL, req)
	if code != http.StatusOK || cold.Status != StatusOK || cold.Cached {
		t.Fatalf("cold run: HTTP %d status %q cached=%v (%s)", code, cold.Status, cold.Cached, cold.Error)
	}
	cyclesAfterCold := srv.met.simCycles.Load()
	poolAfterCold := srv.pool.Stats()

	code, warmRaw, warm := postJobRaw(t, ts.URL, req)
	if code != http.StatusOK || warm.Status != StatusOK || !warm.Cached {
		t.Fatalf("repeat run: HTTP %d status %q cached=%v (%s)", code, warm.Status, warm.Cached, warm.Error)
	}
	if got, want := stripHostFields(t, warmRaw), stripHostFields(t, coldRaw); got != want {
		t.Errorf("cached payload differs from cold run:\ncold: %s\nwarm: %s", want, got)
	}
	if got := srv.met.simCycles.Load(); got != cyclesAfterCold {
		t.Errorf("cache hit simulated %d cycles, want 0", got-cyclesAfterCold)
	}
	if pool := srv.pool.Stats(); pool != poolAfterCold {
		t.Errorf("cache hit touched the machine pool: %+v -> %+v", poolAfterCold, pool)
	}
	if hits, misses := srv.met.cacheHits.Load(), srv.met.cacheMisses.Load(); hits != 1 || misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", hits, misses)
	}
	if st := store.Stats(); st.Entries != 1 {
		t.Errorf("store holds %d entries, want 1", st.Entries)
	}
	if warm.ID == cold.ID || warm.ID == "" {
		t.Errorf("cached response ID %q must be fresh (cold was %q)", warm.ID, cold.ID)
	}

	// The /metrics page reports the traffic.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page := readAll(t, resp)
	for _, series := range []string{
		"lbp_serve_cache_hits_total 1",
		"lbp_serve_cache_misses_total 1",
		"lbp_serve_cache_entries 1",
		"lbp_serve_cache_bytes",
	} {
		if !strings.Contains(page, series) {
			t.Errorf("metrics page missing %q", series)
		}
	}
}

// TestCacheCorruptEntry: an entry that rots on disk serves as a miss —
// the job re-simulates cold, repairs the entry, and the next repeat
// hits again. Corruption never surfaces as an error.
func TestCacheCorruptEntry(t *testing.T) {
	srv, _, cacheDir := newCachedServer(t, 0, Config{Workers: 1, QueueDepth: 4, Slice: 1024})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: spinSource, Lang: "s", Cores: 1, Digest: true, MaxCycles: 20_000_000}
	if code, _, jr := postJobRaw(t, ts.URL, req); code != http.StatusOK || jr.Cached {
		t.Fatalf("cold run: HTTP %d cached=%v (%s)", code, jr.Cached, jr.Error)
	}
	files, err := filepath.Glob(filepath.Join(cacheDir, "*", "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files = %v (err %v), want exactly 1", files, err)
	}
	if err := os.WriteFile(files[0], []byte(`{"cycles": 12`), 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, jr := postJobRaw(t, ts.URL, req)
	if code != http.StatusOK || jr.Status != StatusOK || jr.Cached {
		t.Fatalf("post-corruption run: HTTP %d status %q cached=%v (%s) — corruption must mean re-simulate, not fail",
			code, jr.Status, jr.Cached, jr.Error)
	}
	if code, _, jr := postJobRaw(t, ts.URL, req); code != http.StatusOK || !jr.Cached {
		t.Errorf("post-repair run: HTTP %d cached=%v, want a hit again", code, jr.Cached)
	}
	if hits, misses := srv.met.cacheHits.Load(), srv.met.cacheMisses.Load(); hits != 1 || misses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 1/2", hits, misses)
	}
}

// TestCacheEviction: a byte-bounded cache sheds the least recently
// used result; the evicted job simply simulates cold again.
func TestCacheEviction(t *testing.T) {
	// maxBytes 1: each stored payload survives only as the sole entry.
	srv, store, _ := newCachedServer(t, 1, Config{Workers: 1, QueueDepth: 4, Slice: 1024})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqA := JobRequest{Source: spinSource, Lang: "s", Cores: 1, Digest: true, MaxCycles: 20_000_000}
	reqB := reqA
	reqB.MaxCycles = 30_000_000 // different budget, different content address
	if code, _, jr := postJobRaw(t, ts.URL, reqA); code != http.StatusOK || jr.Cached {
		t.Fatalf("job A: HTTP %d cached=%v", code, jr.Cached)
	}
	if code, _, jr := postJobRaw(t, ts.URL, reqB); code != http.StatusOK || jr.Cached {
		t.Fatalf("job B: HTTP %d cached=%v", code, jr.Cached)
	}
	// B's store evicted A, so A is cold again.
	if code, _, jr := postJobRaw(t, ts.URL, reqA); code != http.StatusOK || jr.Cached {
		t.Errorf("job A after eviction: HTTP %d cached=%v, want a cold run", code, jr.Cached)
	}
	st := store.Stats()
	if st.Evictions == 0 || st.Entries != 1 {
		t.Errorf("store stats = %+v, want evictions > 0 and exactly 1 entry", st)
	}
	if hits := srv.met.cacheHits.Load(); hits != 0 {
		t.Errorf("cache hits = %d, want 0 (every lookup should have missed)", hits)
	}
}

// TestCacheConcurrentIdenticalRequests: identical jobs racing on an
// empty cache must all answer correctly — some simulate, some hit, all
// byte-identical in the deterministic fields. Runs under -race in
// tier-1 to cover the concurrent Get/Put paths.
func TestCacheConcurrentIdenticalRequests(t *testing.T) {
	srv, store, _ := newCachedServer(t, 0, Config{Workers: 4, QueueDepth: 64, Slice: 1024})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true}
	const clients = 10
	raws := make([][]byte, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], raws[i], _ = postJobRaw(t, ts.URL, req)
		}(i)
	}
	wg.Wait()
	want := stripHostFields(t, raws[0])
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("client %d: HTTP %d", i, codes[i])
			continue
		}
		if got := stripHostFields(t, raws[i]); got != want {
			t.Errorf("client %d payload diverged:\nwant %s\ngot  %s", i, want, got)
		}
	}
	if st := store.Stats(); st.Entries != 1 {
		t.Errorf("store holds %d entries after identical racing jobs, want 1", st.Entries)
	}
}

// TestOversizedBody413: a request body over the configured cap answers
// 413 Request Entity Too Large, not a generic 400.
func TestOversizedBody413(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1, MaxBodyBytes: 256})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big, err := json.Marshal(JobRequest{Source: strings.Repeat("x", 4096), Lang: "s"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResult
	if err := json.Unmarshal([]byte(readAll(t, resp)), &jr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge || jr.Error == "" {
		t.Errorf("oversized body: HTTP %d error %q, want 413 with a message", resp.StatusCode, jr.Error)
	}
	// A body under the cap still validates normally.
	if code, jr := postJob(t, ts.URL, JobRequest{Source: "x", Lang: "rust"}); code != http.StatusBadRequest {
		t.Errorf("small bad request: HTTP %d (%s), want 400", code, jr.Error)
	}
}

// TestCanceledJobReturnsMachineToPool: a client that goes away mid-run
// must not cost the pool its machine — GetWarm resets on checkout, so
// the half-run machine is exactly as reusable as a finished one.
func TestCanceledJobReturnsMachineToPool(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, Slice: 1024})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Source: spinSource, Lang: "s", Cores: 1, Digest: true, MaxCycles: 400_000_000}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	cancelOne := func() {
		ctx, cancel := context.WithCancel(context.Background())
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			resp, err := http.DefaultClient.Do(hr)
			if err == nil {
				resp.Body.Close()
			}
			close(done)
		}()
		waitFor(t, "job running", func() bool { return srv.met.inflight.Load() == 1 })
		cancel()
		<-done
		waitFor(t, "job finished", func() bool { return srv.met.inflight.Load() == 0 })
	}

	cancelOne()
	if idle := srv.pool.Idle(); idle != 1 {
		t.Fatalf("pool idle = %d after canceled job, want 1 (machine returned)", idle)
	}
	cancelOne() // the second canceled job must reuse the returned machine
	st := srv.pool.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("pool stats = %+v, want the second canceled job served warm (1 hit, 1 miss)", st)
	}
	if got := srv.met.failed.Load(); got != 2 {
		t.Errorf("failed counter = %d, want 2 canceled jobs", got)
	}
	if got := srv.met.poolDiscarded.Load(); got != 0 {
		t.Errorf("pool_discarded = %d, want 0 (nothing was preempted)", got)
	}
}

// TestDeadlineAndErrorJobsReturnMachines: the deadline and
// budget-exceeded paths also hand their machines back.
func TestDeadlineAndErrorJobsReturnMachines(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, Slice: 4096})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	deadline := JobRequest{Source: spinSource, Lang: "s", Cores: 1, MaxCycles: 500_000_000, DeadlineMs: 30}
	if code, jr := postJob(t, ts.URL, deadline); code != http.StatusGatewayTimeout {
		t.Fatalf("deadline job: HTTP %d (%s), want 504", code, jr.Error)
	}
	if idle := srv.pool.Idle(); idle != 1 {
		t.Errorf("pool idle = %d after deadline, want 1", idle)
	}

	budget := JobRequest{Source: spinSource, Lang: "s", Cores: 1, MaxCycles: 10_000}
	code, jr := postJob(t, ts.URL, budget)
	if code != http.StatusUnprocessableEntity || jr.Status != StatusError {
		t.Fatalf("budget job: HTTP %d status %q (%s), want 422 error", code, jr.Status, jr.Error)
	}
	// Same spec key as the deadline job? No — MaxCycles differs, so this
	// was a fresh build; what matters is both machines are idle now.
	if idle := srv.pool.Idle(); idle != 2 {
		t.Errorf("pool idle = %d after budget fault, want 2", idle)
	}
	if got := srv.met.poolDiscarded.Load(); got != 0 {
		t.Errorf("pool_discarded = %d, want 0", got)
	}
}
