package serve

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/dispatch"
)

// startWorkerBackend boots one in-process dispatch worker on an
// ephemeral port and returns its address and a stop func.
func startWorkerBackend(t *testing.T, cfg dispatch.WorkerConfig) (*dispatch.Worker, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := dispatch.NewWorker(cfg)
	go w.Serve(ln)
	return w, ln.Addr().String(), func() { w.Close() }
}

// newCoordinatorServer wires a serve.Server in coordinator mode over
// the given backends.
func newCoordinatorServer(t *testing.T, scfg Config, dcfg dispatch.Config) (*Server, *dispatch.Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := dispatch.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Dispatcher = coord
	srv := New(scfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
		coord.Close()
	})
	return srv, coord, ts
}

// distSpinSource is a short countdown loop (~150k cycles): long enough
// that a mid-campaign worker kill lands inside running jobs and
// checkpoints stream, short enough for the race detector on small
// hosts (the local-path tests use the 10× longer spinSource).
const distSpinSource = `main:
	li t1, 50000
loop:
	addi t1, t1, -1
	bne t1, zero, loop
	li ra, 0
	li t0, -1
	p_ret
`

// TestDistributedDeterminismUnderLoad is the distributed acceptance
// test: K concurrent clients × M worker backends, with one worker
// killed mid-campaign, and every successful response must carry
// exactly the cycles, retired count, digest and perf snapshot of a
// direct sim.Session run of the same request — whichever backend ran
// it, however many times it was re-dispatched. Runs under -race in
// tier-1.
func TestDistributedDeterminismUnderLoad(t *testing.T) {
	reqs := []JobRequest{
		{Source: vecsumSource, Cores: 2, Digest: true, Profile: true},
		{Source: vecsumSource, Cores: 4, Digest: true, Profile: true},
		{Source: distSpinSource, Lang: "s", Cores: 1, Digest: true, Profile: true, MaxCycles: 400_000_000},
	}
	wants := make([]*JobResult, len(reqs))
	for i, r := range reqs {
		wants[i] = directRun(t, r, 100_000_000)
	}

	const backendsN = 3
	workers := make([]*dispatch.Worker, backendsN)
	addrs := make([]string, backendsN)
	stops := make([]func(), backendsN)
	for i := range workers {
		// A small slice so kills land mid-run, not between jobs.
		workers[i], addrs[i], stops[i] = startWorkerBackend(t, dispatch.WorkerConfig{Slice: 4096})
		defer stops[i]()
	}
	srv, coord, ts := newCoordinatorServer(t, Config{},
		dispatch.Config{
			Backends:        addrs,
			RetryBackoff:    10 * time.Millisecond,
			CheckpointEvery: 64 << 10,
		})

	const rounds = 6 // clients per request: K = rounds × len(reqs)
	type reply struct {
		code int
		res  *JobResult
		req  int
	}
	replies := make(chan reply, rounds*len(reqs))
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		for ri := range reqs {
			wg.Add(1)
			go func(ri int) {
				defer wg.Done()
				code, res := postJob(t, ts.URL, reqs[ri])
				replies <- reply{code, res, ri}
			}(ri)
		}
	}
	// Kill one worker once the campaign is demonstrably in flight:
	// whatever it was running re-dispatches (from a checkpoint when one
	// streamed in time), and whatever routes to it afterward fails over.
	waitFor(t, "campaign in flight", func() bool {
		return coord.Metrics().Dispatched >= backendsN
	})
	stops[0]()
	wg.Wait()
	close(replies)

	perReq := make([]int, len(reqs))
	for r := range replies {
		if r.code != http.StatusOK || r.res.Status != StatusOK {
			t.Errorf("req %d: HTTP %d status %q (%s)", r.req, r.code, r.res.Status, r.res.Error)
			continue
		}
		perReq[r.req]++
		want := wants[r.req]
		got := r.res
		if got.Halt != want.Halt || got.Cycles != want.Cycles || got.Retired != want.Retired ||
			got.Digest != want.Digest || got.Events != want.Events {
			t.Errorf("req %d via %s diverged: halt=%q cycles=%d retired=%d digest=%#x events=%d,"+
				" want halt=%q cycles=%d retired=%d digest=%#x events=%d",
				r.req, got.Worker, got.Halt, got.Cycles, got.Retired, got.Digest, got.Events,
				want.Halt, want.Cycles, want.Retired, want.Digest, want.Events)
		}
		if got.Perf == nil || got.Perf.HartCycles != want.Perf.HartCycles ||
			got.Perf.CommitCycles != want.Perf.CommitCycles {
			t.Errorf("req %d: perf snapshot diverged: %+v, want %+v", r.req, got.Perf, want.Perf)
		}
		if got.Mem == nil || *got.Mem != *want.Mem {
			t.Errorf("req %d: memory stats diverged: %+v, want %+v", r.req, got.Mem, want.Mem)
		}
		if got.Worker == "" {
			t.Errorf("req %d: result carries no worker address", r.req)
		}
	}
	for ri, n := range perReq {
		if n != rounds {
			t.Errorf("req %d: %d/%d successful replies", ri, n, rounds)
		}
	}
	if got := srv.met.completed.Load(); got != uint64(rounds*len(reqs)) {
		t.Errorf("completed counter = %d, want %d", got, rounds*len(reqs))
	}
	// The surviving workers must not leak a single machine, whatever
	// mix of clean runs, steals and re-dispatched jobs they absorbed.
	waitFor(t, "surviving workers idle", func() bool {
		return workers[1].Metrics().MachinesOut == 0 && workers[2].Metrics().MachinesOut == 0
	})
	for i := 1; i < backendsN; i++ {
		m := workers[i].Metrics()
		if m.CheckedOut != m.PoolReturned+m.PoolDiscarded {
			t.Errorf("worker %d leaks machines: %+v", i, m)
		}
	}
}

// TestDistributedCacheAndStatusMapping: in coordinator mode the shared
// result cache still answers repeat jobs without a dispatch, cached
// payloads zero the host-side worker field, and a job whose machine
// runs out of cycle budget maps to 422 exactly like the local path.
func TestDistributedCacheAndStatusMapping(t *testing.T) {
	store, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, addr, stop := startWorkerBackend(t, dispatch.WorkerConfig{})
	defer stop()
	_, coord, ts := newCoordinatorServer(t, Config{Cache: store},
		dispatch.Config{Backends: []string{addr}})

	req := JobRequest{Source: vecsumSource, Cores: 2, Digest: true}
	code, cold := postJob(t, ts.URL, req)
	if code != http.StatusOK || cold.Cached {
		t.Fatalf("cold job: HTTP %d cached=%v (%s)", code, cold.Cached, cold.Error)
	}
	if cold.Worker == "" {
		t.Error("cold result carries no worker address")
	}
	code, warm := postJob(t, ts.URL, req)
	if code != http.StatusOK || !warm.Cached {
		t.Fatalf("repeat job: HTTP %d cached=%v, want a cache hit", code, warm.Cached)
	}
	if warm.Worker != "" {
		t.Errorf("cached result names worker %q, want host fields zeroed", warm.Worker)
	}
	if warm.Digest != cold.Digest || warm.Cycles != cold.Cycles {
		t.Errorf("cache hit diverged: digest %#x cycles %d, want %#x %d",
			warm.Digest, warm.Cycles, cold.Digest, cold.Cycles)
	}
	if got := coord.Metrics().Dispatched; got != 1 {
		t.Errorf("dispatched = %d after a cache hit, want 1", got)
	}

	code, res := postJob(t, ts.URL, JobRequest{Source: spinSource, Lang: "s", Cores: 1, MaxCycles: 1000})
	if code != http.StatusUnprocessableEntity || res.Status != StatusError {
		t.Errorf("budget-exceeded job: HTTP %d status %q, want 422 %q", code, res.Status, StatusError)
	}
	if !strings.Contains(res.Error, "cycle") {
		t.Errorf("budget error %q does not mention the cycle budget", res.Error)
	}
}

// TestDistributedAllBackendsDead: when no worker is reachable the
// client gets 502 with a dispatch failure, not a hang.
func TestDistributedAllBackendsDead(t *testing.T) {
	_, _, ts := newCoordinatorServer(t, Config{},
		dispatch.Config{
			Backends:     []string{"127.0.0.1:1", "127.0.0.1:2"},
			RetryBackoff: time.Millisecond,
			DialTimeout:  50 * time.Millisecond,
		})
	code, res := postJob(t, ts.URL, JobRequest{Source: vecsumSource, Cores: 2})
	if code != http.StatusBadGateway || res.Status != StatusError {
		t.Errorf("dead fleet: HTTP %d status %q, want 502 %q", code, res.Status, StatusError)
	}
}
