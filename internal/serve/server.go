// Package serve is the batching simulation service over sim.Pool: a
// long-running HTTP/JSON front end that runs simulation jobs on warm
// machines through a bounded worker pool with a bounded admission
// queue.
//
// The serving layer preserves the simulator's determinism guarantee
// end to end: any client, any concurrency, any queue state — the
// deterministic fields of a JobResult (cycles, retired, digest, perf)
// are bit-identical to a local sim.Session run of the same request.
// Everything host-side (admission, slicing, deadlines, preemption)
// happens between Advance legs at cycle boundaries, where it cannot
// perturb simulated state.
//
// Because results are pure functions of the canonical job
// (sim.CacheKey), the server consults a content-addressed result cache
// (internal/cache) before simulating anything: a repeat job is an O(1)
// disk read answered with the byte-identical deterministic payload of
// the cold run, marked "cached": true.
//
// Backpressure and lifecycle:
//
//   - Admission is a bounded queue; overflow answers 429 with
//     Retry-After instead of queueing unboundedly.
//   - Each job runs under a simulated-cycle budget and a host
//     wall-clock deadline, enforced cooperatively between Advance
//     slices (sim.Session.RunSliced).
//   - Shutdown stops admission, drains queued and running jobs, and —
//     once the grace context expires — preempts still-running jobs,
//     checkpointing their machine state to disk for lbp-run -resume.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Config parameterizes a Server. The zero value of every field selects
// a sensible default.
type Config struct {
	Workers    int // concurrent simulations (0 = GOMAXPROCS)
	QueueDepth int // jobs admitted but not yet running (0 = 64)

	DefaultMaxCycles uint64 // budget when a request omits maxCycles (0 = 100M)
	MaxCyclesCap     uint64 // largest acceptable per-job budget (0 = 1G)

	// Deadline is the default and maximum per-job wall-clock run time;
	// requests may only shorten it (0 = 60s).
	Deadline time.Duration

	// Slice is the Advance granularity between cancellation checks, in
	// simulated cycles (0 = 1M). Smaller reacts faster, larger wastes
	// less host time on checks; simulated results never depend on it.
	Slice uint64

	// CheckpointDir receives the serialized machine state of jobs
	// preempted by shutdown ("" = discard preempted state).
	CheckpointDir string

	// PoolPerKey/PoolTotal bound the warm-machine pool
	// (0 = sim.DefaultPoolPerKey / sim.DefaultPoolTotal).
	PoolPerKey int
	PoolTotal  int

	// Cache, when non-nil, is the content-addressed result store
	// consulted before any cycle is simulated (nil = no caching).
	Cache *cache.Store

	// Dispatcher, when non-nil, turns the server into a coordinator:
	// jobs that miss the cache are sharded across worker backends
	// instead of running on the local pool. The HTTP surface is
	// unchanged; the shared cache is still consulted (and filled)
	// before any job is dispatched.
	Dispatcher Dispatcher

	MaxBodyBytes int64 // request body cap (0 = 8 MiB)

	// testGate, when set, is called by a worker after dequeuing a job
	// and before running it; tests use it to hold jobs at a known point.
	testGate func()
}

// normalize fills in the defaults.
func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultMaxCycles == 0 {
		c.DefaultMaxCycles = 100_000_000
	}
	if c.MaxCyclesCap == 0 {
		c.MaxCyclesCap = 1_000_000_000
	}
	if c.Deadline <= 0 {
		c.Deadline = 60 * time.Second
	}
	if c.Slice == 0 {
		c.Slice = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
}

// Sentinel errors returned by the slice check to classify why a run
// stopped early.
var (
	errPreempted = errors.New("preempted by server shutdown")
	errDeadline  = errors.New("wall-clock deadline elapsed")
	errCanceled  = errors.New("client canceled the request")
)

// statusClientClosedRequest is the de-facto code for "client went away"
// (the client never sees it; it keeps access logs honest).
const statusClientClosedRequest = 499

// job is one admitted simulation request flowing through the queue.
type job struct {
	id       string
	req      JobRequest
	spec     sim.Spec
	cacheKey string // content address of the result ("" = uncacheable)
	deadline time.Duration
	ctx      context.Context // the client's request context
	enqueued time.Time
	done     chan struct{} // closed by the worker when res/code are final
	res      JobResult
	code     int
}

// fail records a terminal non-OK outcome.
func (j *job) fail(code int, status string, err error) {
	j.code = code
	j.res.Status = status
	j.res.Error = err.Error()
}

// Server runs simulation jobs from an admission queue on a bounded
// worker pool over a shared warm-machine sim.Pool.
type Server struct {
	cfg  Config
	pool sim.Pool
	met  metrics
	mux  *http.ServeMux

	queue  chan *job
	wg     sync.WaitGroup // the workers
	nextID atomic.Uint64  // lock-free: ID allocation must not contend with admission

	admitMu  sync.Mutex // guards drain + queue sends vs close
	drain    bool
	drainCtx context.Context // canceled when the shutdown grace expires
	stopNow  context.CancelFunc
}

// New builds a Server and starts its workers. Stop it with Shutdown.
func New(cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
	}
	s.pool.SetCapacity(cfg.PoolPerKey, cfg.PoolTotal)
	s.drainCtx, s.stopNow = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleJobs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler (POST /jobs, GET /healthz,
// GET /metrics).
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown gracefully stops the server: admission closes immediately
// (new jobs get 503), queued and running jobs drain to completion, and
// when ctx expires first, still-running jobs are preempted at their
// next slice boundary and checkpointed to Config.CheckpointDir.
// Shutdown returns once every admitted job has been answered.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	if s.drain {
		s.admitMu.Unlock()
		return errors.New("serve: already shut down")
	}
	s.drain = true
	close(s.queue)
	s.admitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.stopNow() // preempt in-flight jobs at their next slice
		<-done
	}
	s.stopNow()
	return nil
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	return s.drain
}

// Errors distinguishing the two admission refusals.
var (
	errDraining  = errors.New("server is shutting down")
	errQueueFull = errors.New("admission queue is full")
)

// admit enqueues a job without blocking, refusing when the queue is
// full or the server is draining.
func (s *Server) admit(j *job) error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.drain {
		return errDraining
	}
	select {
	case s.queue <- j:
		s.met.accepted.Add(1)
		s.met.queueDepth.Add(1)
		return nil
	default:
		s.met.rejected.Add(1)
		return errQueueFull
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.met.queueDepth.Add(-1)
		if gate := s.cfg.testGate; gate != nil {
			gate()
		}
		s.met.inflight.Add(1)
		s.runJob(j)
		s.met.inflight.Add(-1)
		close(j.done)
	}
}

// runJob executes one admitted job and fills its result.
func (s *Server) runJob(j *job) {
	start := time.Now()
	j.res.QueueMs = float64(start.Sub(j.enqueued)) / float64(time.Millisecond)
	if s.drainCtx.Err() != nil {
		// The grace period expired while the job sat in the queue: it
		// never started, so there is no state worth checkpointing.
		s.met.failed.Add(1)
		j.fail(http.StatusServiceUnavailable, StatusRejected,
			errors.New("server shut down before the job started"))
		return
	}
	sess, warm, err := s.pool.GetWarm(j.spec)
	if err != nil {
		s.met.failed.Add(1)
		j.fail(http.StatusInternalServerError, StatusError, err)
		return
	}
	j.res.PoolWarm = warm
	startCycle := sess.Machine().Cycle() // nonzero when resuming a checkpoint
	runCtx, cancel := context.WithTimeout(j.ctx, j.deadline)
	defer cancel()
	res, err := sess.RunSliced(s.cfg.Slice, func(uint64) error {
		select {
		case <-s.drainCtx.Done():
			return errPreempted
		case <-runCtx.Done():
			if errors.Is(runCtx.Err(), context.DeadlineExceeded) {
				return errDeadline
			}
			return errCanceled
		default:
			return nil
		}
	})
	elapsed := time.Since(start)
	j.res.RunMs = float64(elapsed) / float64(time.Millisecond)
	s.met.runNanos.Add(uint64(elapsed))
	s.met.simCycles.Add(sess.Machine().Cycle())

	// Any machine the pool handed out goes back to it — GetWarm resets
	// machines on checkout, so a deadline-stopped, canceled or faulted
	// machine is exactly as reusable as a cleanly finished one, and
	// cancel-heavy traffic keeps its warm hit rate. The one exception
	// is shutdown preemption: the process is exiting, so returning the
	// machine would only delay it; those count as pool_discarded.
	switch {
	case err == nil:
		j.code = http.StatusOK
		j.res.Status = StatusOK
		j.res.fill(sess, res, j.req.Ring)
		s.met.completed.Add(1)
		s.met.recordJobThroughput(sess.Machine().Cycle()-startCycle, elapsed.Seconds())
		s.pool.Put(sess)
		s.storeResult(j)
	case errors.Is(err, errPreempted):
		s.met.preempted.Add(1)
		j.code = http.StatusServiceUnavailable
		j.res.Status = StatusPreempted
		j.res.Error = s.checkpointPreempted(j, sess)
		s.met.poolDiscarded.Add(1)
	case errors.Is(err, errDeadline):
		s.met.failed.Add(1)
		j.fail(http.StatusGatewayTimeout, StatusDeadline,
			fmt.Errorf("deadline %s elapsed at cycle %d", j.deadline, sess.Machine().Cycle()))
		s.pool.Put(sess)
	case errors.Is(err, errCanceled):
		s.met.failed.Add(1)
		j.fail(statusClientClosedRequest, StatusCanceled, errCanceled)
		s.pool.Put(sess)
	default:
		// The machine itself stopped: a deterministic fault or the
		// simulated-cycle budget. The service worked; the run did not.
		s.met.failed.Add(1)
		j.fail(http.StatusUnprocessableEntity, StatusError, err)
		s.pool.Put(sess)
	}
}

// lookupCached answers a job from the result cache. The stored payload
// carries only the deterministic fields (host-side fields were zeroed
// before storing), so a hit reproduces the cold run's deterministic
// result byte for byte; the caller stamps the host-side ID. A payload
// that does not decode as a JobResult counts as a miss and is dropped,
// like any other corrupt entry.
func (s *Server) lookupCached(key string) (*JobResult, bool) {
	if payload, ok := s.cfg.Cache.Get(key); ok {
		var res JobResult
		if err := json.Unmarshal(payload, &res); err == nil {
			res.Cached = true
			s.met.cacheHits.Add(1)
			return &res, true
		}
		s.cfg.Cache.Remove(key)
	}
	s.met.cacheMisses.Add(1)
	return nil, false
}

// storeResult saves a cleanly finished job's deterministic payload
// under its content address. Host-side fields are zeroed first so
// every future hit returns exactly the deterministic fields of this
// run. Concurrent identical jobs race benignly: they store identical
// bytes and the cache write is atomic (last-write-wins).
func (s *Server) storeResult(j *job) {
	if s.cfg.Cache == nil || j.cacheKey == "" {
		return
	}
	payload := j.res
	payload.ID, payload.Checkpoint, payload.Worker = "", "", ""
	payload.Cached, payload.PoolWarm = false, false
	payload.QueueMs, payload.RunMs = 0, 0
	b, err := json.Marshal(&payload)
	if err != nil {
		return
	}
	// A failed store is a full cache miss next time — worth no more
	// than the re-simulation it costs.
	_ = s.cfg.Cache.Put(j.cacheKey, b)
}

// checkpointPreempted serializes a preempted job's machine state and
// returns the message describing where (or why not). The machine is
// paused at a cycle boundary, so the checkpoint resumes bit-exactly.
func (s *Server) checkpointPreempted(j *job, sess *sim.Session) string {
	cycle := sess.Machine().Cycle()
	if s.cfg.CheckpointDir == "" {
		return fmt.Sprintf("preempted by shutdown at cycle %d; state discarded (no checkpoint dir)", cycle)
	}
	cp, err := sess.Checkpoint()
	if err != nil {
		return fmt.Sprintf("preempted by shutdown at cycle %d; checkpoint failed: %v", cycle, err)
	}
	path := filepath.Join(s.cfg.CheckpointDir, j.id+".ckpt")
	if err := os.WriteFile(path, cp, 0o644); err != nil {
		return fmt.Sprintf("preempted by shutdown at cycle %d; checkpoint failed: %v", cycle, err)
	}
	j.res.Checkpoint = path
	return fmt.Sprintf("preempted by shutdown at cycle %d; resume with lbp-run -resume %s", cycle, path)
}

// handleJobs admits one job and answers with its JobResult — or, for a
// repeat job, answers from the result cache without consuming a queue
// slot or simulating a cycle.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	maxCycles := req.MaxCycles
	if maxCycles == 0 {
		maxCycles = s.cfg.DefaultMaxCycles
	}
	if maxCycles > s.cfg.MaxCyclesCap {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("maxCycles %d exceeds the server cap %d", maxCycles, s.cfg.MaxCyclesCap))
		return
	}
	deadline := s.cfg.Deadline
	if d := time.Duration(req.DeadlineMs) * time.Millisecond; d > 0 && d < deadline {
		deadline = d
	}
	prog, err := req.compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("program: %w", err))
		return
	}
	spec := sim.Spec{
		Program:         prog,
		Cores:           req.Cores,
		SharedBankBytes: req.BankBytes,
		MaxCycles:       maxCycles,
		Trace:           sim.TraceSpec{Digest: req.Digest, Ring: req.Ring},
		Profile:         req.Profile,
	}
	var cacheKey string
	if s.cfg.Cache != nil {
		if key, err := sim.CacheKey(spec); err == nil {
			cacheKey = key
			if res, ok := s.lookupCached(key); ok {
				res.ID = fmt.Sprintf("job-%06d", s.jobID())
				writeJSON(w, http.StatusOK, res)
				return
			}
		}
	}
	if s.cfg.Dispatcher != nil {
		s.runRemote(w, r, &req, prog, cacheKey, maxCycles, deadline)
		return
	}
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.jobID()),
		req:      req,
		spec:     spec,
		cacheKey: cacheKey,
		deadline: deadline,
		ctx:      r.Context(),
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	j.res.ID = j.id
	switch err := s.admit(j); {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	<-j.done
	writeJSON(w, j.code, &j.res)
}

// jobID hands out monotonically increasing job numbers.
func (s *Server) jobID() uint64 { return s.nextID.Add(1) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var cs cache.Stats
	if s.cfg.Cache != nil {
		cs = s.cfg.Cache.Stats()
	}
	s.met.writePrometheus(w, s.pool.Stats(), s.pool.Idle(), cs)
	if s.cfg.Dispatcher != nil {
		writeDispatchMetrics(w, s.cfg.Dispatcher.Metrics())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error means the client is gone; there is nobody to tell.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, &JobResult{Status: StatusRejected, Error: err.Error()})
}
