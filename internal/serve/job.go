package serve

import (
	"bytes"
	"fmt"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/sim"
)

// JobRequest is the body of POST /jobs: one simulation to run. Exactly
// one of Source or Image carries the program; everything else is
// optional and zero-defaults like sim.Spec.
type JobRequest struct {
	// Source is MiniC ("c", the default) or LBP assembly ("s") text.
	Source string `json:"source,omitempty"`
	Lang   string `json:"lang,omitempty"`

	// Image is a serialized program image (lbp-asm output), base64 in
	// JSON. Alternative to Source.
	Image []byte `json:"image,omitempty"`

	Cores     int    `json:"cores,omitempty"`     // 0 = 4
	BankBytes uint32 `json:"bankBytes,omitempty"` // 0 = default; else a power of two
	MaxCycles uint64 `json:"maxCycles,omitempty"` // 0 = server default; capped by the server

	Digest  bool `json:"digest,omitempty"`  // fold the event trace into a digest
	Ring    int  `json:"ring,omitempty"`    // retain the last Ring events (returned as Tail)
	Profile bool `json:"profile,omitempty"` // return the deterministic perf snapshot

	// DeadlineMs bounds the job's host wall-clock run time; 0 uses the
	// server default. The simulated-cycle budget is MaxCycles.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
}

// validate rejects malformed requests before they consume a queue slot.
func (r *JobRequest) validate() error {
	hasSource, hasImage := r.Source != "", len(r.Image) > 0
	if hasSource == hasImage {
		return fmt.Errorf("exactly one of source and image is required")
	}
	switch r.Lang {
	case "", "c", "s":
	default:
		return fmt.Errorf("lang %q must be \"c\" or \"s\"", r.Lang)
	}
	if hasImage && r.Lang != "" {
		return fmt.Errorf("lang applies to source, not image")
	}
	// An image was assembled against a fixed bank layout; resizing the
	// banks underneath it silently runs a different machine than the
	// one the program was built for. Reject instead of ignoring.
	if hasImage && r.BankBytes != 0 {
		return fmt.Errorf("bankBytes applies to source, not image (the image fixed its bank layout at assembly)")
	}
	if r.Cores < 0 {
		return fmt.Errorf("cores %d must not be negative", r.Cores)
	}
	// 0 means "server default" (4); anything else must be a geometry the
	// simulator accepts, rejected here so the client gets a 400 instead
	// of a queued job that dies at machine construction.
	if r.Cores != 0 {
		if err := lbp.ValidateGeometry(r.Cores, 0); err != nil {
			return err
		}
	}
	if b := r.BankBytes; b != 0 {
		if b&(b-1) != 0 {
			return fmt.Errorf("bankBytes %d must be a power of two", b)
		}
		// The compiler reserves the first BankReserveBytes of every
		// bank for __bank(n) globals; a bank smaller than the reserve
		// cannot hold any program data.
		if min := cc.DefaultOptions().BankReserveBytes; b < min {
			return fmt.Errorf("bankBytes %d is below the minimum bank size %d", b, min)
		}
	}
	if r.Ring < 0 {
		return fmt.Errorf("ring %d must not be negative", r.Ring)
	}
	if r.DeadlineMs < 0 {
		return fmt.Errorf("deadlineMs %d must not be negative", r.DeadlineMs)
	}
	return nil
}

// compile builds the program, mirroring sim.LoadFile's handling of the
// three input forms.
func (r *JobRequest) compile() (*asm.Program, error) {
	if len(r.Image) > 0 {
		return asm.ReadImage(bytes.NewReader(r.Image))
	}
	if r.Lang == "s" {
		return asm.Assemble(r.Source, asm.Options{})
	}
	opt := cc.DefaultOptions()
	if r.Cores > 0 {
		opt.Cores = r.Cores
	}
	if r.BankBytes != 0 {
		opt.SharedBankBytes = r.BankBytes
	}
	asmText, err := cc.BuildProgram(r.Source, opt)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(asmText, asm.Options{})
}

// Job status values.
const (
	StatusOK        = "ok"        // run completed (Halt says how)
	StatusError     = "error"     // machine fault or cycle budget exceeded
	StatusDeadline  = "deadline"  // wall-clock deadline elapsed mid-run
	StatusCanceled  = "canceled"  // client went away mid-run
	StatusPreempted = "preempted" // server shut down mid-run; see Checkpoint
	StatusRejected  = "rejected"  // never ran (draining before start)
)

// JobResult is the response body for one job. Cycles, Retired, IPC,
// Digest, Events, Mem and Perf are fully deterministic: any client
// running the same request anywhere — including a local sim.Session —
// sees identical values bit for bit. ID, Cached, PoolWarm, QueueMs and
// RunMs are host-side diagnostics and vary run to run (the result
// cache stores payloads with all of them zeroed, which is why a cache
// hit is byte-identical to a cold run in every deterministic field).
type JobResult struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	Halt    string  `json:"halt,omitempty"`
	Cycles  uint64  `json:"cycles,omitempty"`
	Retired uint64  `json:"retired,omitempty"`
	IPC     float64 `json:"ipc,omitempty"`

	Digest uint64   `json:"digest,omitempty"`
	Events uint64   `json:"events,omitempty"`
	Tail   []string `json:"tail,omitempty"` // last Ring events, oldest first

	Mem  *mem.Stats     `json:"mem,omitempty"`
	Perf *perf.Snapshot `json:"perf,omitempty"`

	// Checkpoint is the server-side path of the serialized machine
	// state of a preempted job; lbp-run -resume picks it back up.
	Checkpoint string `json:"checkpoint,omitempty"`

	// Worker is the backend address that ran a dispatched job
	// (coordinator mode only; host-side, zeroed in cached payloads).
	Worker string `json:"worker,omitempty"`

	Cached   bool    `json:"cached,omitempty"` // served from the result cache, no cycles simulated
	PoolWarm bool    `json:"poolWarm"`         // served by a warm pooled machine
	QueueMs  float64 `json:"queueMs"`          // admission-to-start wait
	RunMs    float64 `json:"runMs"`            // wall time inside the simulator
}

// fill copies the deterministic outcome of a finished run into the
// result.
func (jr *JobResult) fill(sess *sim.Session, res *lbp.Result, ring int) {
	jr.Halt = res.Halt
	jr.Cycles = res.Stats.Cycles
	jr.Retired = res.Stats.Retired
	jr.IPC = res.Stats.IPC()
	memStats := res.Mem
	jr.Mem = &memStats
	if rec := sess.Recorder(); rec != nil {
		jr.Digest = rec.Digest()
		jr.Events = rec.Count()
		for _, e := range rec.Last(ring) {
			jr.Tail = append(jr.Tail, e.String())
		}
	}
	jr.Perf = sess.PerfSnapshot()
}
