package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/asm"
	"repro/internal/dispatch"
)

// Dispatcher is the distributed back end the server shards jobs to
// when Config.Dispatcher is set: in production a *dispatch.Coordinator
// over -backends workers, in tests anything that answers Do.
//
// The HTTP surface is identical either way — same request schema, same
// response schema, same status codes, same cache behavior — because
// the deterministic fields of a result do not depend on which machine
// produced them.
type Dispatcher interface {
	// Do runs one job somewhere on the fleet and blocks until it
	// resolves. See dispatch.Coordinator.Do for the error contract.
	Do(ctx context.Context, job *dispatch.Job) (*dispatch.Result, error)
	// Metrics snapshots the dispatch counters for /metrics.
	Metrics() dispatch.Metrics
}

// runRemote answers one job through the dispatcher instead of the
// local worker pool. The program was already compiled (and the result
// cache already missed), so the job ships as a serialized image:
// workers decode it straight into a machine without needing the
// compiler front end, and every backend sees byte-identical input.
func (s *Server) runRemote(w http.ResponseWriter, r *http.Request, req *JobRequest,
	prog *asm.Program, cacheKey string, maxCycles uint64, deadline time.Duration) {
	var img bytes.Buffer
	if err := prog.WriteImage(&img); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serializing program: %w", err))
		return
	}
	id := fmt.Sprintf("job-%06d", s.jobID())
	job := &dispatch.Job{
		ID:         id,
		Key:        cacheKey,
		Image:      img.Bytes(),
		Cores:      req.Cores,
		BankBytes:  req.BankBytes,
		MaxCycles:  maxCycles,
		Digest:     req.Digest,
		Ring:       req.Ring,
		Profile:    req.Profile,
		DeadlineMs: deadline.Milliseconds(),
	}
	s.met.accepted.Add(1)
	s.met.inflight.Add(1)
	start := time.Now()
	res, err := s.cfg.Dispatcher.Do(r.Context(), job)
	elapsed := time.Since(start)
	s.met.inflight.Add(-1)

	out := &JobResult{ID: id, RunMs: float64(elapsed) / float64(time.Millisecond)}
	if err != nil {
		s.met.failed.Add(1)
		out.Error = err.Error()
		switch {
		case errors.Is(err, dispatch.ErrQueueFull):
			s.met.rejected.Add(1)
			out.Status = StatusRejected
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, out)
		case errors.Is(err, dispatch.ErrClosed):
			out.Status = StatusRejected
			writeJSON(w, http.StatusServiceUnavailable, out)
		case r.Context().Err() != nil:
			out.Status = StatusCanceled
			writeJSON(w, statusClientClosedRequest, out)
		default:
			// Every attempt exhausted: the fleet, not the job, failed.
			out.Status = StatusError
			writeJSON(w, http.StatusBadGateway, out)
		}
		return
	}

	out.Worker = res.Worker
	out.PoolWarm = res.PoolWarm
	out.Error = res.Error
	out.Status = res.Status
	switch res.Status {
	case dispatch.StatusOK:
		s.met.completed.Add(1)
		s.met.runNanos.Add(uint64(elapsed))
		s.met.simCycles.Add(res.Cycles)
		s.met.recordJobThroughput(res.Cycles, elapsed.Seconds())
		out.Halt = res.Halt
		out.Cycles = res.Cycles
		out.Retired = res.Retired
		out.IPC = res.IPC
		out.Digest = res.Digest
		out.Events = res.Events
		out.Tail = res.Tail
		out.Mem = res.Mem
		out.Perf = res.Perf
		s.storeRemote(cacheKey, out)
		writeJSON(w, http.StatusOK, out)
	case dispatch.StatusDeadline:
		s.met.failed.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, out)
	case dispatch.StatusCanceled:
		s.met.failed.Add(1)
		writeJSON(w, statusClientClosedRequest, out)
	default:
		// The machine faulted or ran out of cycle budget — the job's own
		// deterministic outcome, same as the local path's 422.
		s.met.failed.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, out)
	}
}

// storeRemote caches a remotely computed result under its content
// address, zeroing the host-side fields exactly like the local path so
// a future hit is byte-identical in every deterministic field.
func (s *Server) storeRemote(cacheKey string, res *JobResult) {
	if s.cfg.Cache == nil || cacheKey == "" {
		return
	}
	j := &job{cacheKey: cacheKey, res: *res}
	s.storeResult(j)
}
