package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/lbp"
	"repro/internal/sim"
)

// metrics holds the server counters exported at /metrics. All fields
// are atomics: the hot paths (admission, workers) touch them without a
// lock, and the exposition reads a consistent-enough snapshot.
type metrics struct {
	accepted  atomic.Uint64 // jobs admitted to the queue
	rejected  atomic.Uint64 // jobs turned away with 429 (queue full)
	completed atomic.Uint64 // runs that finished (StatusOK)
	failed    atomic.Uint64 // fault/budget/deadline/cancel outcomes
	preempted atomic.Uint64 // jobs checkpointed by shutdown

	cacheHits   atomic.Uint64 // jobs answered from the result cache
	cacheMisses atomic.Uint64 // cache lookups that had to simulate

	poolDiscarded atomic.Uint64 // sessions not returned to the pool (preempted by shutdown)

	queueDepth atomic.Int64 // jobs admitted but not yet started
	inflight   atomic.Int64 // jobs currently running

	simCycles atomic.Uint64 // simulated cycles across all runs (partial included)
	runNanos  atomic.Uint64 // host wall nanoseconds inside the simulator

	// lastJobCPS is the simulated-cycles-per-second of the most recently
	// completed job (math.Float64bits encoded), the per-job throughput
	// gauge next to the lifetime aggregate.
	lastJobCPS atomic.Uint64
}

// recordJobThroughput publishes one completed job's cycles/s.
func (m *metrics) recordJobThroughput(cycles uint64, seconds float64) {
	if seconds > 0 {
		m.lastJobCPS.Store(math.Float64bits(float64(cycles) / seconds))
	}
}

// writePrometheus emits the Prometheus text exposition format
// (hand-rolled: the repo takes no dependencies).
func (m *metrics) writePrometheus(w io.Writer, pool sim.PoolStats, idle int, cs cache.Stats) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("lbp_serve_jobs_accepted_total", "Jobs admitted to the run queue.", m.accepted.Load())
	counter("lbp_serve_jobs_rejected_total", "Jobs rejected with 429 because the queue was full.", m.rejected.Load())
	counter("lbp_serve_jobs_completed_total", "Jobs whose simulation ran to completion.", m.completed.Load())
	counter("lbp_serve_jobs_failed_total", "Jobs that ended in a fault, budget, deadline or cancellation.", m.failed.Load())
	counter("lbp_serve_jobs_preempted_total", "Jobs checkpointed to disk by a shutdown.", m.preempted.Load())
	counter("lbp_serve_cache_hits_total", "Jobs answered from the content-addressed result cache.", m.cacheHits.Load())
	counter("lbp_serve_cache_misses_total", "Cache lookups that fell through to a simulation.", m.cacheMisses.Load())
	gauge("lbp_serve_cache_bytes", "Payload bytes in the result cache.", float64(cs.Bytes))
	gauge("lbp_serve_cache_entries", "Payloads in the result cache.", float64(cs.Entries))
	counter("lbp_serve_cache_evictions_total", "Result-cache entries evicted by the size bound.", cs.Evictions)
	gauge("lbp_serve_queue_depth", "Jobs admitted but not yet running.", float64(m.queueDepth.Load()))
	gauge("lbp_serve_jobs_inflight", "Jobs currently running.", float64(m.inflight.Load()))
	counter("lbp_serve_pool_hits_total", "Warm-machine pool hits.", pool.Hits)
	counter("lbp_serve_pool_misses_total", "Warm-machine pool misses (fresh builds).", pool.Misses)
	counter("lbp_serve_pool_evictions_total", "Idle sessions evicted by the pool capacity bounds.", pool.Evictions)
	counter("lbp_serve_pool_reset_failures_total", "Warm machines dropped because their checkout Reset failed.", pool.ResetFailures)
	counter("lbp_serve_pool_discarded_total", "Checked-out sessions not returned to the pool (preempted by shutdown).", m.poolDiscarded.Load())
	gauge("lbp_serve_pool_idle", "Idle warm machines in the pool.", float64(idle))
	counter("lbp_serve_sim_cycles_total", "Simulated cycles across all jobs.", m.simCycles.Load())
	cps := 0.0
	if ns := m.runNanos.Load(); ns > 0 {
		cps = float64(m.simCycles.Load()) / (float64(ns) / 1e9)
	}
	gauge("lbp_serve_sim_cycles_per_second", "Lifetime simulated cycles per host second of run time.", cps)
	gauge("lbp_serve_last_job_sim_cycles_per_second", "Simulated cycles per host second of the most recently completed job.",
		math.Float64frombits(m.lastJobCPS.Load()))
	dh, dm, de := lbp.DecodeCacheStats()
	counter("lbp_serve_decode_cache_hits_total", "Program loads served by an already-decoded shared image.", dh)
	counter("lbp_serve_decode_cache_misses_total", "Program loads that decoded a fresh image.", dm)
	gauge("lbp_serve_decode_cache_entries", "Decoded program images currently cached.", float64(de))
}

// writeDispatchMetrics appends the coordinator's fleet counters
// (coordinator mode only).
func writeDispatchMetrics(w io.Writer, dm dispatch.Metrics) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("lbp_serve_dispatch_jobs_total", "Jobs admitted to the dispatcher.", dm.Dispatched)
	counter("lbp_serve_dispatch_completed_total", "Dispatched jobs answered with a worker result.", dm.Completed)
	counter("lbp_serve_dispatch_failed_total", "Dispatched jobs that exhausted their attempts or were abandoned.", dm.Failed)
	counter("lbp_serve_dispatch_retries_total", "Re-dispatches after a backend transport death.", dm.Retries)
	counter("lbp_serve_dispatch_migrations_total", "Retries that resumed from a streamed checkpoint.", dm.Migrations)
	counter("lbp_serve_dispatch_steals_total", "Jobs run by a non-affine backend to balance load.", dm.Steals)
	counter("lbp_serve_dispatch_checkpoints_total", "Migration checkpoints streamed by workers.", dm.Checkpoints)
	fmt.Fprintf(w, "# HELP lbp_serve_dispatch_backends_up Backends with a live connection.\n"+
		"# TYPE lbp_serve_dispatch_backends_up gauge\nlbp_serve_dispatch_backends_up %d\n", dm.BackendsUp)
}
