// Package asm implements a two-pass assembler for the RV32IM + X_PAR
// instruction set of the LBP processor.
//
// The accepted syntax is the usual RISC-V assembler syntax plus the X_PAR
// mnemonics of Figure 5 of the paper, a handful of directives (.text,
// .data, .word, .space, .fill, .align, .org, .equ, .global) and the common
// pseudo-instructions (li, la, mv, j, jr, call, ret, nop, p_ret, branches
// against zero, ...).
//
// Programs are assembled into a Program: a text image based at TextBase
// and a list of initialized data segments in the shared address space.
package asm

import (
	"fmt"
	"sort"
	"strings"
)

// Segment is a contiguous initialized region of the data space.
type Segment struct {
	Addr  uint32
	Words []uint32
}

// Program is the output of the assembler.
type Program struct {
	TextBase uint32
	Text     []uint32 // encoded instructions
	Segments []Segment
	Symbols  map[string]uint32
	Entry    uint32 // address of the "main" symbol (or TextBase)
	Source   []SourceLoc
}

// SourceLoc maps a text word index back to its source line, for traces.
type SourceLoc struct {
	Line int
	Text string
}

// DataEnd returns the first address past all initialized data segments.
func (p *Program) DataEnd() uint32 {
	end := uint32(0)
	for _, s := range p.Segments {
		e := s.Addr + uint32(4*len(s.Words))
		if e > end {
			end = e
		}
	}
	return end
}

// SymbolsSorted returns symbol names in deterministic order.
func (p *Program) SymbolsSorted() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Error is an assembly error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Options configure the assembler.
type Options struct {
	TextBase uint32 // base address of the text image (default 0)
	DataBase uint32 // base address of the .data section (default 0x80000000)
}

// DefaultDataBase is the beginning of the shared global address space.
const DefaultDataBase = 0x80000000

// Assemble assembles source into a Program.
func Assemble(source string, opt Options) (*Program, error) {
	if opt.DataBase == 0 {
		opt.DataBase = DefaultDataBase
	}
	a := &assembler{
		opt:     opt,
		symbols: map[string]uint32{},
		equs:    map[string]int64{},
	}
	lines := splitLines(source)
	if err := a.pass(lines, 1); err != nil {
		return nil, err
	}
	a.reset()
	if err := a.pass(lines, 2); err != nil {
		return nil, err
	}
	p := &Program{
		TextBase: opt.TextBase,
		Text:     a.text,
		Segments: a.closeSegments(),
		Symbols:  a.symbols,
		Source:   a.source,
	}
	if e, ok := a.symbols["main"]; ok {
		p.Entry = e
	} else {
		p.Entry = opt.TextBase
	}
	return p, nil
}

type line struct {
	num  int
	text string
}

func splitLines(src string) []line {
	raw := strings.Split(src, "\n")
	out := make([]line, 0, len(raw))
	for i, l := range raw {
		// strip comments: '#' and '//' and ';'
		if idx := strings.IndexAny(l, "#;"); idx >= 0 {
			l = l[:idx]
		}
		if idx := strings.Index(l, "//"); idx >= 0 {
			l = l[:idx]
		}
		l = strings.TrimSpace(l)
		out = append(out, line{num: i + 1, text: l})
	}
	return out
}

type assembler struct {
	opt     Options
	pass2   bool
	pc      uint32 // text location counter
	dloc    uint32 // data location counter
	inData  bool
	symbols map[string]uint32
	equs    map[string]int64
	text    []uint32
	source  []SourceLoc
	segs    []Segment
	curSeg  *Segment
	liSize  map[int]int // line -> instruction count decided in pass 1
}

func (a *assembler) reset() {
	a.pc = a.opt.TextBase
	a.dloc = a.opt.DataBase
	a.inData = false
	a.text = nil
	a.source = nil
	a.segs = nil
	a.curSeg = nil
	a.pass2 = true
}

func (a *assembler) pass(lines []line, n int) error {
	a.pc = a.opt.TextBase
	a.dloc = a.opt.DataBase
	if n == 1 {
		a.liSize = map[int]int{}
	}
	for _, l := range lines {
		if l.text == "" {
			continue
		}
		if err := a.doLine(l); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) errf(l line, format string, args ...any) error {
	return &Error{Line: l.num, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) doLine(l line) error {
	text := l.text
	// Labels (possibly several on one line).
	for {
		idx := strings.Index(text, ":")
		if idx < 0 {
			break
		}
		name := strings.TrimSpace(text[:idx])
		if !isIdent(name) {
			break
		}
		if !a.pass2 {
			if _, dup := a.symbols[name]; dup {
				return a.errf(l, "duplicate label %q", name)
			}
			if a.inData {
				a.symbols[name] = a.dloc
			} else {
				a.symbols[name] = a.pc
			}
		}
		text = strings.TrimSpace(text[idx+1:])
	}
	if text == "" {
		return nil
	}
	if strings.HasPrefix(text, ".") {
		return a.doDirective(l, text)
	}
	if a.inData {
		return a.errf(l, "instruction %q in .data section", text)
	}
	return a.doInst(l, text)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) doDirective(l line, text string) error {
	name, rest, _ := strings.Cut(text, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".global", ".globl", ".type", ".size", ".file", ".ident", ".section", ".option", ".attribute":
		// accepted and ignored
	case ".equ", ".set":
		parts := strings.SplitN(rest, ",", 2)
		if len(parts) != 2 {
			return a.errf(l, ".equ wants name, value")
		}
		nm := strings.TrimSpace(parts[0])
		v, err := a.eval(l, strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		a.equs[nm] = v
	case ".org":
		v, err := a.eval(l, rest)
		if err != nil {
			return err
		}
		if !a.inData {
			return a.errf(l, ".org only supported in .data")
		}
		a.dloc = uint32(v)
		a.curSeg = nil
	case ".align":
		v, err := a.eval(l, rest)
		if err != nil {
			return err
		}
		al := uint32(1) << uint(v)
		if a.inData {
			for a.dloc%al != 0 {
				a.emitDataWordPadding()
			}
		} else {
			for a.pc%al != 0 {
				a.emitText(l, 0x00000013) // nop
			}
		}
	case ".word":
		if !a.inData {
			return a.errf(l, ".word only supported in .data")
		}
		for _, f := range splitOperands(rest) {
			v, err := a.evalInst(l, f)
			if err != nil {
				return err
			}
			a.emitDataWord(uint32(v))
		}
	case ".space", ".zero":
		v, err := a.eval(l, rest)
		if err != nil {
			return err
		}
		if v%4 != 0 {
			return a.errf(l, ".space must be a multiple of 4 bytes")
		}
		for i := int64(0); i < v; i += 4 {
			a.emitDataWord(0)
		}
	case ".fill":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return a.errf(l, ".fill wants count, value")
		}
		cnt, err := a.eval(l, parts[0])
		if err != nil {
			return err
		}
		val, err := a.eval(l, parts[1])
		if err != nil {
			return err
		}
		for i := int64(0); i < cnt; i++ {
			a.emitDataWord(uint32(val))
		}
	default:
		return a.errf(l, "unknown directive %q", name)
	}
	return nil
}

func (a *assembler) emitText(l line, word uint32) {
	if a.pass2 {
		a.text = append(a.text, word)
		a.source = append(a.source, SourceLoc{Line: l.num, Text: l.text})
	}
	a.pc += 4
}

func (a *assembler) emitDataWord(w uint32) {
	if a.pass2 {
		if a.curSeg == nil || a.curSeg.Addr+uint32(4*len(a.curSeg.Words)) != a.dloc {
			a.segs = append(a.segs, Segment{Addr: a.dloc})
			a.curSeg = &a.segs[len(a.segs)-1]
		}
		a.curSeg.Words = append(a.curSeg.Words, w)
		// re-take the pointer: append may have grown a.segs
		a.curSeg = &a.segs[len(a.segs)-1]
	}
	a.dloc += 4
}

func (a *assembler) emitDataWordPadding() { a.emitDataWord(0) }

func (a *assembler) closeSegments() []Segment {
	return a.segs
}

// splitOperands splits on commas that are not inside parentheses.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}
