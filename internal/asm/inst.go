package asm

import (
	"strings"

	"repro/internal/isa"
)

// doInst assembles one instruction or pseudo-instruction statement.
func (a *assembler) doInst(l line, text string) error {
	mn, rest, _ := strings.Cut(text, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	ops := splitOperands(strings.TrimSpace(rest))

	emit := func(in isa.Inst) error {
		word, err := isa.Encode(in)
		if err != nil {
			return a.errf(l, "%v", err)
		}
		a.emitText(l, word)
		return nil
	}
	reg := func(i int) (uint8, error) {
		if i >= len(ops) {
			return 0, a.errf(l, "%s: missing operand %d", mn, i+1)
		}
		r, ok := isa.RegByName(ops[i])
		if !ok {
			return 0, a.errf(l, "%s: bad register %q", mn, ops[i])
		}
		return r, nil
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, a.errf(l, "%s: missing operand %d", mn, i+1)
		}
		return a.evalInst(l, ops[i])
	}
	// off(rs1) addressing
	memOperand := func(i int) (int64, uint8, error) {
		if i >= len(ops) {
			return 0, 0, a.errf(l, "%s: missing operand %d", mn, i+1)
		}
		s := ops[i]
		open := strings.LastIndex(s, "(")
		if open < 0 || !strings.HasSuffix(s, ")") {
			return 0, 0, a.errf(l, "%s: want off(reg), got %q", mn, s)
		}
		base, ok := isa.RegByName(strings.TrimSpace(s[open+1 : len(s)-1]))
		if !ok {
			return 0, 0, a.errf(l, "%s: bad base register in %q", mn, s)
		}
		offStr := strings.TrimSpace(s[:open])
		var off int64
		if offStr != "" {
			var err error
			off, err = a.evalInst(l, offStr)
			if err != nil {
				return 0, 0, err
			}
		}
		return off, base, nil
	}
	branchTarget := func(i int) (int32, error) {
		v, err := imm(i)
		if err != nil {
			return 0, err
		}
		if !a.pass2 {
			return 0, nil // offset computed properly only in pass 2
		}
		return int32(uint32(v) - a.pc), nil
	}
	nargs := func(n int) error {
		if len(ops) != n {
			return a.errf(l, "%s: want %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	switch mn {
	// ---- U-type
	case "lui", "auipc":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		op := isa.OpLUI
		if mn == "auipc" {
			op = isa.OpAUIPC
		}
		return emit(isa.Inst{Op: op, Rd: rd, Imm: int32(v << 12)})

	// ---- jumps
	case "jal":
		var rd uint8 = 1
		ti := 0
		if len(ops) == 2 {
			r, err := reg(0)
			if err != nil {
				return err
			}
			rd, ti = r, 1
		} else if err := nargs(1); err != nil {
			return err
		}
		off, err := branchTarget(ti)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpJAL, Rd: rd, Imm: off})
	case "j":
		if err := nargs(1); err != nil {
			return err
		}
		off, err := branchTarget(0)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: off})
	case "call":
		if err := nargs(1); err != nil {
			return err
		}
		off, err := branchTarget(0)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: off})
	case "jalr":
		switch len(ops) {
		case 1: // jalr rs1
			rs1, err := reg(0)
			if err != nil {
				return err
			}
			return emit(isa.Inst{Op: isa.OpJALR, Rd: 1, Rs1: rs1})
		case 2: // jalr rd, off(rs1)  or  jalr rd, rs1
			rd, err := reg(0)
			if err != nil {
				return err
			}
			if strings.Contains(ops[1], "(") {
				off, rs1, err := memOperand(1)
				if err != nil {
					return err
				}
				return emit(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: int32(off)})
			}
			rs1, err := reg(1)
			if err != nil {
				return err
			}
			return emit(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: rs1})
		case 3: // jalr rd, rs1, imm
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs1, err := reg(1)
			if err != nil {
				return err
			}
			v, err := imm(2)
			if err != nil {
				return err
			}
			return emit(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: int32(v)})
		}
		return a.errf(l, "jalr: bad operands")
	case "jr":
		if err := nargs(1); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpJALR, Rd: 0, Rs1: rs1})
	case "ret":
		return emit(isa.Inst{Op: isa.OpJALR, Rd: 0, Rs1: 1})

	// ---- branches
	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		if err := nargs(3); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		off, err := branchTarget(2)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"beq": isa.OpBEQ, "bne": isa.OpBNE, "blt": isa.OpBLT,
			"bge": isa.OpBGE, "bltu": isa.OpBLTU, "bgeu": isa.OpBGEU}[mn]
		return emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	case "bgt", "ble", "bgtu", "bleu": // swapped-operand pseudos
		if err := nargs(3); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		off, err := branchTarget(2)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"bgt": isa.OpBLT, "ble": isa.OpBGE,
			"bgtu": isa.OpBLTU, "bleu": isa.OpBGEU}[mn]
		return emit(isa.Inst{Op: op, Rs1: rs2, Rs2: rs1, Imm: off})
	case "beqz", "bnez", "bltz", "bgez":
		if err := nargs(2); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		off, err := branchTarget(1)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"beqz": isa.OpBEQ, "bnez": isa.OpBNE,
			"bltz": isa.OpBLT, "bgez": isa.OpBGE}[mn]
		return emit(isa.Inst{Op: op, Rs1: rs1, Rs2: 0, Imm: off})
	case "blez", "bgtz":
		if err := nargs(2); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		off, err := branchTarget(1)
		if err != nil {
			return err
		}
		// blez rs: bge x0, rs  ; bgtz rs: blt x0, rs
		op := isa.OpBGE
		if mn == "bgtz" {
			op = isa.OpBLT
		}
		return emit(isa.Inst{Op: op, Rs1: 0, Rs2: rs1, Imm: off})

	// ---- loads/stores
	case "lb", "lh", "lw", "lbu", "lhu":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		off, rs1, err := memOperand(1)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"lb": isa.OpLB, "lh": isa.OpLH, "lw": isa.OpLW,
			"lbu": isa.OpLBU, "lhu": isa.OpLHU}[mn]
		return emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(off)})
	case "sb", "sh", "sw":
		if err := nargs(2); err != nil {
			return err
		}
		rs2, err := reg(0)
		if err != nil {
			return err
		}
		off, rs1, err := memOperand(1)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"sb": isa.OpSB, "sh": isa.OpSH, "sw": isa.OpSW}[mn]
		return emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: int32(off)})

	// ---- op-imm
	case "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai":
		if err := nargs(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"addi": isa.OpADDI, "slti": isa.OpSLTI,
			"sltiu": isa.OpSLTIU, "xori": isa.OpXORI, "ori": isa.OpORI,
			"andi": isa.OpANDI, "slli": isa.OpSLLI, "srli": isa.OpSRLI,
			"srai": isa.OpSRAI}[mn]
		return emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)})

	// ---- op
	case "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
		"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu":
		if err := nargs(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		rs2, err := reg(2)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"add": isa.OpADD, "sub": isa.OpSUB,
			"sll": isa.OpSLL, "slt": isa.OpSLT, "sltu": isa.OpSLTU,
			"xor": isa.OpXOR, "srl": isa.OpSRL, "sra": isa.OpSRA,
			"or": isa.OpOR, "and": isa.OpAND, "mul": isa.OpMUL,
			"mulh": isa.OpMULH, "mulhsu": isa.OpMULHSU, "mulhu": isa.OpMULHU,
			"div": isa.OpDIV, "divu": isa.OpDIVU, "rem": isa.OpREM,
			"remu": isa.OpREMU}[mn]
		return emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})

	// ---- simple pseudos
	case "nop":
		return emit(isa.Inst{Op: isa.OpADDI})
	case "mv":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rs1})
	case "not":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpXORI, Rd: rd, Rs1: rs1, Imm: -1})
	case "neg":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpSUB, Rd: rd, Rs2: rs2})
	case "seqz":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpSLTIU, Rd: rd, Rs1: rs1, Imm: 1})
	case "snez":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpSLTU, Rd: rd, Rs1: 0, Rs2: rs2})

	// ---- li / la
	case "li", "la":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		return a.expandLoadImm(l, mn, rd, ops[1])

	// ---- system
	case "fence":
		return emit(isa.Inst{Op: isa.OpFENCE})
	case "ecall":
		return emit(isa.Inst{Op: isa.OpECALL})
	case "ebreak":
		return emit(isa.Inst{Op: isa.OpEBREAK})

	// ---- X_PAR
	case "p_fc", "p_fn":
		if err := nargs(1); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		op := isa.OpPFC
		if mn == "p_fn" {
			op = isa.OpPFN
		}
		return emit(isa.Inst{Op: op, Rd: rd})
	case "p_set":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1 := rd
		if len(ops) == 2 {
			if rs1, err = reg(1); err != nil {
				return err
			}
		} else if len(ops) != 1 {
			return a.errf(l, "p_set: want 1 or 2 operands")
		}
		return emit(isa.Inst{Op: isa.OpPSET, Rd: rd, Rs1: rs1})
	case "p_merge":
		if err := nargs(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		rs2, err := reg(2)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpPMERGE, Rd: rd, Rs1: rs1, Rs2: rs2})
	case "p_syncm":
		return emit(isa.Inst{Op: isa.OpPSYNCM})
	case "p_jalr":
		if err := nargs(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		rs2, err := reg(2)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpPJALR, Rd: rd, Rs1: rs1, Rs2: rs2})
	case "p_ret":
		rs1, rs2 := uint8(1), uint8(5) // ra, t0
		if len(ops) == 2 {
			var err error
			if rs1, err = reg(0); err != nil {
				return err
			}
			if rs2, err = reg(1); err != nil {
				return err
			}
		} else if len(ops) != 0 {
			return a.errf(l, "p_ret: want 0 or 2 operands")
		}
		return emit(isa.Inst{Op: isa.OpPJALR, Rd: 0, Rs1: rs1, Rs2: rs2})
	case "p_jal":
		if err := nargs(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		off, err := branchTarget(2)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: isa.OpPJAL, Rd: rd, Rs1: rs1, Imm: off})
	case "p_swcv", "p_swre":
		if err := nargs(3); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		op := isa.OpPSWCV
		if mn == "p_swre" {
			op = isa.OpPSWRE
		}
		return emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: int32(v)})
	case "p_lwcv", "p_lwre":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		op := isa.OpPLWCV
		rs1 := uint8(2)
		if mn == "p_lwre" {
			op, rs1 = isa.OpPLWRE, 0
		}
		return emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)})
	}
	return a.errf(l, "unknown mnemonic %q", mn)
}

// expandLoadImm emits li/la as one instruction when the value fits a
// signed 12-bit immediate and is fully resolvable in pass 1, and as a
// lui+addi pair otherwise. The decision is recorded in pass 1 so both
// passes agree on instruction addresses.
func (a *assembler) expandLoadImm(l line, mn string, rd uint8, expr string) error {
	emit := func(in isa.Inst) error {
		word, err := isa.Encode(in)
		if err != nil {
			return a.errf(l, "%v", err)
		}
		a.emitText(l, word)
		return nil
	}
	if !a.pass2 {
		size := 2
		if v, err := a.eval(l, expr); err == nil && v >= -2048 && v <= 2047 && mn == "li" {
			size = 1
		}
		a.liSize[l.num] = size
		a.pc += uint32(4 * size)
		return nil
	}
	v, err := a.eval(l, expr)
	if err != nil {
		return err
	}
	if a.liSize[l.num] == 1 {
		return emit(isa.Inst{Op: isa.OpADDI, Rd: rd, Imm: int32(v)})
	}
	u := uint32(v)
	hi := u & 0xFFFFF000
	lo := int32(u & 0xFFF)
	if lo >= 2048 {
		lo -= 4096
		hi += 0x1000
	}
	if err := emit(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: int32(hi)}); err != nil {
		return err
	}
	return emit(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo})
}
