package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func decodeAll(p *Program) []isa.Inst {
	out := make([]isa.Inst, len(p.Text))
	for i, w := range p.Text {
		out[i] = isa.Decode(w)
	}
	return out
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
		.text
	main:
		addi sp, sp, -8
		sw ra, 0(sp)
		li t0, -1
		lw ra, 0(sp)
		addi sp, sp, 8
		ret
	`)
	ins := decodeAll(p)
	if len(ins) != 6 {
		t.Fatalf("got %d instructions, want 6", len(ins))
	}
	if ins[0].Op != isa.OpADDI || ins[0].Rd != 2 || ins[0].Imm != -8 {
		t.Errorf("inst 0: %+v", ins[0])
	}
	if ins[1].Op != isa.OpSW || ins[1].Rs2 != 1 || ins[1].Rs1 != 2 {
		t.Errorf("inst 1: %+v", ins[1])
	}
	if ins[2].Op != isa.OpADDI || ins[2].Rd != 5 || ins[2].Imm != -1 {
		t.Errorf("li t0,-1 must be a single addi: %+v", ins[2])
	}
	if ins[5].Op != isa.OpJALR || ins[5].Rd != 0 || ins[5].Rs1 != 1 {
		t.Errorf("ret: %+v", ins[5])
	}
	if p.Entry != 0 {
		t.Errorf("entry = %#x, want 0", p.Entry)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	main:
		li a0, 0
	loop:
		addi a0, a0, 1
		blt a0, a1, loop
		beqz a0, main
		j done
		nop
	done:
		ret
	`)
	ins := decodeAll(p)
	// blt at index 2, loop at index 1 => offset -4
	if ins[2].Op != isa.OpBLT || ins[2].Imm != -4 {
		t.Errorf("blt: %+v", ins[2])
	}
	// beqz at index 3 targets main (0) => offset -12
	if ins[3].Op != isa.OpBEQ || ins[3].Imm != -12 || ins[3].Rs2 != 0 {
		t.Errorf("beqz: %+v", ins[3])
	}
	// j at index 4 targets done (index 6) => offset +8
	if ins[4].Op != isa.OpJAL || ins[4].Rd != 0 || ins[4].Imm != 8 {
		t.Errorf("j: %+v", ins[4])
	}
}

func TestForwardLiSymbol(t *testing.T) {
	p := mustAssemble(t, `
	main:
		la a0, vec
		lw a1, 0(a0)
		ret
		.data
	vec:
		.word 1, 2, 3
	`)
	ins := decodeAll(p)
	if ins[0].Op != isa.OpLUI || ins[1].Op != isa.OpADDI {
		t.Fatalf("la must expand to lui+addi: %v %v", ins[0].Op, ins[1].Op)
	}
	addr := uint32(ins[0].Imm) + uint32(ins[1].Imm)
	if addr != DefaultDataBase {
		t.Errorf("vec address = %#x, want %#x", addr, uint32(DefaultDataBase))
	}
	if len(p.Segments) != 1 || len(p.Segments[0].Words) != 3 {
		t.Fatalf("segments: %+v", p.Segments)
	}
	if p.Segments[0].Words[2] != 3 {
		t.Errorf("data words: %v", p.Segments[0].Words)
	}
}

func TestLuiAddiCarryFixup(t *testing.T) {
	// Value whose low 12 bits are >= 0x800 needs the +0x1000 carry fix.
	p := mustAssemble(t, `
	main:
		li a0, 0x12345FFF
		ret
	`)
	ins := decodeAll(p)
	got := uint32(ins[0].Imm) + uint32(ins[1].Imm)
	if got != 0x12345FFF {
		t.Errorf("li value = %#x, want 0x12345FFF", got)
	}
}

func TestXParSyntax(t *testing.T) {
	p := mustAssemble(t, `
	main:
		p_fc t6
		p_swcv t6, ra, 0
		p_swcv t6, t0, 4
		p_swcv t6, a1, 8
		p_merge t0, t0, t6
		p_syncm
		p_jalr ra, t0, a0
		p_lwcv ra, 0
		p_lwcv t0, 4
		p_lwcv a1, 8
		p_fn t5
		p_set t0
		p_set t1, t2
		p_swre t0, a0, 1
		p_lwre a0, 1
		p_ret
		p_ret ra, t0
		p_jal ra, t6, main
	`)
	ins := decodeAll(p)
	want := []isa.Op{isa.OpPFC, isa.OpPSWCV, isa.OpPSWCV, isa.OpPSWCV,
		isa.OpPMERGE, isa.OpPSYNCM, isa.OpPJALR, isa.OpPLWCV, isa.OpPLWCV,
		isa.OpPLWCV, isa.OpPFN, isa.OpPSET, isa.OpPSET, isa.OpPSWRE,
		isa.OpPLWRE, isa.OpPJALR, isa.OpPJALR, isa.OpPJAL}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ins), len(want))
	}
	for i, w := range want {
		if ins[i].Op != w {
			t.Errorf("inst %d: op %v, want %v", i, ins[i].Op, w)
		}
	}
	if !ins[15].IsPRet() || !ins[16].IsPRet() {
		t.Error("p_ret must decode with rd == x0")
	}
	if ins[11].Rs1 != 5 { // p_set t0 => rs1 defaults to rd
		t.Errorf("p_set single operand: rs1 = %d, want 5", ins[11].Rs1)
	}
	if ins[6].Rd != 1 || ins[6].Rs1 != 5 || ins[6].Rs2 != 10 {
		t.Errorf("p_jalr operands: %+v", ins[6])
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.equ N, 16
		.equ MASK, (1<<4)-1
	main:
		li a0, N*4
		li a1, MASK
		ret
		.data
	arr:
		.space 16
	brr:
		.fill 4, 7
	crr:
		.org 0x80010000
	far:
		.word 42
	`)
	ins := decodeAll(p)
	if ins[0].Imm != 64 {
		t.Errorf("N*4 = %d", ins[0].Imm)
	}
	if ins[1].Imm != 15 {
		t.Errorf("MASK = %d", ins[1].Imm)
	}
	if p.Symbols["brr"] != DefaultDataBase+16 {
		t.Errorf("brr = %#x", p.Symbols["brr"])
	}
	if p.Symbols["far"] != 0x80010000 {
		t.Errorf("far = %#x", p.Symbols["far"])
	}
	if len(p.Segments) != 2 {
		t.Fatalf("want 2 segments, got %+v", p.Segments)
	}
	if p.Segments[1].Addr != 0x80010000 || p.Segments[1].Words[0] != 42 {
		t.Errorf("far segment: %+v", p.Segments[1])
	}
	if p.DataEnd() != 0x80010004 {
		t.Errorf("DataEnd = %#x", p.DataEnd())
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"main:\n\tfrobnicate a0", "unknown mnemonic"},
		{"main:\n\taddi a0, a0", "want 3 operands"},
		{"main:\n\tlw a0, nope", "want off(reg)"},
		{"main:\n\tj nowhere", "undefined symbol"},
		{"main:\nmain:\n\tret", "duplicate label"},
		{"main:\n\taddi a0, q7, 1", "bad register"},
		{".data\n\taddi a0, a0, 1", "in .data section"},
		{"main:\n\tli a0, 1/0", "division by zero"},
		{"main:\n\t.bogus 3", "unknown directive"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) error = %v, want containing %q", c.src, err, c.wantSub)
		}
	}
}

func TestPassesAgreeOnAddresses(t *testing.T) {
	// A li with a forward data symbol must take 2 slots in both passes so
	// the label after it lands at the same place.
	p := mustAssemble(t, `
	main:
		la a0, buf
	after:
		ret
		.data
	buf:
		.word 0
	`)
	if p.Symbols["after"] != 8 {
		t.Errorf("after = %#x, want 8", p.Symbols["after"])
	}
}

func TestSwappedBranchPseudos(t *testing.T) {
	p := mustAssemble(t, `
	main:
		bgt a0, a1, main
		ble a0, a1, main
	`)
	ins := decodeAll(p)
	if ins[0].Op != isa.OpBLT || ins[0].Rs1 != 11 || ins[0].Rs2 != 10 {
		t.Errorf("bgt: %+v", ins[0])
	}
	if ins[1].Op != isa.OpBGE || ins[1].Rs1 != 11 || ins[1].Rs2 != 10 {
		t.Errorf("ble: %+v", ins[1])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAssemble(t, `
	# full line comment
	main: ; comment
		nop # trailing
		nop // c++ style

	`)
	if len(p.Text) != 2 {
		t.Errorf("got %d instructions, want 2", len(p.Text))
	}
}

func TestHiLo(t *testing.T) {
	p := mustAssemble(t, `
		.equ ADDR, 0x80001234
	main:
		lui a0, %hi(ADDR)
		addi a0, a0, %lo(ADDR)
		ret
	`)
	ins := decodeAll(p)
	got := uint32(int64(ins[0].Imm) + int64(ins[1].Imm))
	if got != 0x80001234 {
		t.Errorf("hi/lo reconstruction = %#x", got)
	}
}

func TestEntryIsMain(t *testing.T) {
	p := mustAssemble(t, `
	helper:
		ret
	main:
		ret
	`)
	if p.Entry != 4 {
		t.Errorf("entry = %d, want 4", p.Entry)
	}
}

func TestImageRoundTrip(t *testing.T) {
	p := mustAssemble(t, `
main:
	li a0, 1
	la a1, data
	ret
	.data
data:
	.word 1, 2, 3
	.org 0x80010000
far:
	.word 9
`)
	var buf strings.Builder
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadImage: %v\n%s", err, buf.String())
	}
	if q.Entry != p.Entry || q.TextBase != p.TextBase {
		t.Errorf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("text length %d vs %d", len(q.Text), len(p.Text))
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			t.Errorf("text[%d] = %08x vs %08x", i, q.Text[i], p.Text[i])
		}
	}
	if len(q.Segments) != len(p.Segments) {
		t.Fatalf("segments %d vs %d", len(q.Segments), len(p.Segments))
	}
	for i := range p.Segments {
		if q.Segments[i].Addr != p.Segments[i].Addr ||
			len(q.Segments[i].Words) != len(p.Segments[i].Words) {
			t.Errorf("segment %d mismatch", i)
		}
	}
	for name, v := range p.Symbols {
		if q.Symbols[name] != v {
			t.Errorf("symbol %s: %x vs %x", name, q.Symbols[name], v)
		}
	}
}

func TestReadImageErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus 1\n",
		"lbpimage 2\n",
		"lbpimage 1\ntext 0 4\n00000001\n", // truncated
		"lbpimage 1\nwhat 0\n",             // unknown record
		"lbpimage 1\ntext 0 1\nzz\n",       // bad word
	}
	for _, c := range cases {
		if _, err := ReadImage(strings.NewReader(c)); err == nil {
			t.Errorf("ReadImage(%q) succeeded", c)
		}
	}
}

// Property: the disassembly of an assembled program re-assembles to the
// identical text image (modulo label names, which the disassembler
// renders as absolute addresses the assembler accepts as literals).
func TestDisassemblyReassembles(t *testing.T) {
	src := `
main:
	addi sp, sp, -16
	sw ra, 0(sp)
	li a0, 5
	li a1, 0x12345678
	la a2, buf
	lw a3, 4(a2)
	sw a3, 8(a2)
	beq a3, zero, skip
	mul a4, a3, a0
	div a5, a4, a0
skip:
	p_fc t6
	p_swcv t6, ra, 0
	p_merge t0, t0, t6
	p_syncm
	p_lwcv a1, 8
	p_swre zero, a4, 1
	p_lwre a6, 1
	lw ra, 0(sp)
	addi sp, sp, 16
	p_ret
	.data
buf:	.word 1, 2, 3
`
	p := mustAssemble(t, src)
	var listing strings.Builder
	listing.WriteString("main:\n")
	for i, w := range p.Text {
		pc := p.TextBase + uint32(4*i)
		listing.WriteString("\t" + isa.Disassemble(isa.Decode(w), pc) + "\n")
	}
	// p_ret disassembles with parenthesized operands; normalize
	norm := strings.ReplaceAll(listing.String(), "p_ret (ra, t0)", "p_ret ra, t0")
	q, err := Assemble(norm, Options{})
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, norm)
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("length %d vs %d", len(q.Text), len(p.Text))
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			t.Errorf("word %d: %08x vs %08x (%s)", i, q.Text[i], p.Text[i],
				isa.Disassemble(isa.Decode(p.Text[i]), uint32(4*i)))
		}
	}
}

func TestExpressionEvaluator(t *testing.T) {
	cases := map[string]int64{
		"1+2*3":           7,
		"(1+2)*3":         9,
		"1<<4|3":          19,
		"0xFF & 0x0F":     15,
		"10 % 3":          1,
		"-4 + 2":          -2,
		"~0 & 0xF":        15,
		"'A' + 1":         66,
		"'\\n'":           10,
		"(1<<16)-1":       65535,
		"2*3+4*5":         26,
		"100/7/2":         7,
		"1 << 2 << 3":     32,
		"%lo(0x80001234)": 0x234,
		"%hi(0x80001234)": 0x80001,
		"%lo(0x80000FFF)": -1, // sign-extended low 12 bits
	}
	for expr, want := range cases {
		p := mustAssemble(t, ".equ V, "+expr+"\nmain:\n\tret\n")
		_ = p
		a := &assembler{symbols: map[string]uint32{}, equs: map[string]int64{}}
		got, err := a.eval(line{num: 1}, expr)
		if err != nil {
			t.Errorf("eval(%q): %v", expr, err)
			continue
		}
		if got != want {
			t.Errorf("eval(%q) = %d, want %d", expr, got, want)
		}
	}
}

func TestExpressionEvaluatorErrors(t *testing.T) {
	bad := []string{"", "1+", "(1", "1//2", "nope", "%mid(1)", "1 2"}
	a := &assembler{symbols: map[string]uint32{}, equs: map[string]int64{}, pass2: true}
	for _, expr := range bad {
		if _, err := a.eval(line{num: 1}, expr); err == nil {
			t.Errorf("eval(%q) succeeded", expr)
		}
	}
}
