package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// errForward marks a pass-1 failure to resolve a not-yet-defined symbol.
var errForward = errors.New("forward reference")

// evalInst evaluates an instruction operand. In pass 1, forward references
// evaluate to 0 (the layout does not depend on them); in pass 2 they are
// errors if still undefined.
func (a *assembler) evalInst(l line, s string) (int64, error) {
	v, err := a.eval(l, s)
	if err != nil && !a.pass2 && errors.Is(err, errForward) {
		return 0, nil
	}
	return v, err
}

// eval evaluates an assembler expression: integer literals (decimal, hex,
// char), symbols, %hi(...)/%lo(...), unary -/~, binary + - * / % << >> & | ^
// with C precedence, and parentheses.
func (a *assembler) eval(l line, s string) (int64, error) {
	p := &exprParser{a: a, l: l, s: s}
	v, err := p.parse(0)
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return 0, a.errf(l, "trailing garbage in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	a   *assembler
	l   line
	s   string
	pos int
}

// binary operator precedence levels (higher binds tighter)
var binPrec = map[string]int{
	"|": 1, "^": 2, "&": 3,
	"<<": 4, ">>": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peekOp() string {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return ""
	}
	two := ""
	if p.pos+1 < len(p.s) {
		two = p.s[p.pos : p.pos+2]
	}
	if two == "<<" || two == ">>" {
		return two
	}
	c := p.s[p.pos]
	if strings.ContainsRune("|^&+-*/%", rune(c)) {
		return string(c)
	}
	return ""
}

func (p *exprParser) parse(minPrec int) (int64, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		op := p.peekOp()
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos += len(op)
		rhs, err := p.parse(prec + 1)
		if err != nil {
			return 0, err
		}
		switch op {
		case "+":
			lhs += rhs
		case "-":
			lhs -= rhs
		case "*":
			lhs *= rhs
		case "/":
			if rhs == 0 {
				return 0, p.a.errf(p.l, "division by zero in expression")
			}
			lhs /= rhs
		case "%":
			if rhs == 0 {
				return 0, p.a.errf(p.l, "modulo by zero in expression")
			}
			lhs %= rhs
		case "<<":
			lhs <<= uint(rhs)
		case ">>":
			lhs >>= uint(rhs)
		case "&":
			lhs &= rhs
		case "|":
			lhs |= rhs
		case "^":
			lhs ^= rhs
		}
	}
}

func (p *exprParser) parseUnary() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0, p.a.errf(p.l, "unexpected end of expression %q", p.s)
	}
	switch p.s[p.pos] {
	case '-':
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	case '~':
		p.pos++
		v, err := p.parseUnary()
		return ^v, err
	case '(':
		p.pos++
		v, err := p.parse(0)
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != ')' {
			return 0, p.a.errf(p.l, "missing ')' in expression %q", p.s)
		}
		p.pos++
		return v, nil
	case '%':
		// %hi( ... ) / %lo( ... )
		rest := p.s[p.pos:]
		var hi bool
		switch {
		case strings.HasPrefix(rest, "%hi("):
			hi = true
		case strings.HasPrefix(rest, "%lo("):
		default:
			return 0, p.a.errf(p.l, "bad %% function in %q", p.s)
		}
		p.pos += 4
		v, err := p.parse(0)
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != ')' {
			return 0, p.a.errf(p.l, "missing ')' after %%hi/%%lo")
		}
		p.pos++
		u := uint32(v)
		lo := int64(int32(u<<20) >> 20) // sign-extended low 12 bits
		if hi {
			return int64((u - uint32(lo)) >> 12), nil
		}
		return lo, nil
	case '\'':
		// char literal
		end := strings.IndexByte(p.s[p.pos+1:], '\'')
		if end < 0 {
			return 0, p.a.errf(p.l, "unterminated char literal")
		}
		lit := p.s[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		if len(lit) == 1 {
			return int64(lit[0]), nil
		}
		if len(lit) == 2 && lit[0] == '\\' {
			switch lit[1] {
			case 'n':
				return '\n', nil
			case 't':
				return '\t', nil
			case '0':
				return 0, nil
			case '\\':
				return '\\', nil
			}
		}
		return 0, p.a.errf(p.l, "bad char literal %q", lit)
	}
	start := p.pos
	c := p.s[p.pos]
	if c >= '0' && c <= '9' {
		for p.pos < len(p.s) && isNumChar(p.s[p.pos]) {
			p.pos++
		}
		lit := p.s[start:p.pos]
		v, err := strconv.ParseInt(lit, 0, 64)
		if err != nil {
			// try unsigned (e.g. 0xFFFFFFFF)
			u, uerr := strconv.ParseUint(lit, 0, 64)
			if uerr != nil {
				return 0, p.a.errf(p.l, "bad number %q", lit)
			}
			v = int64(u)
		}
		return v, nil
	}
	// symbol
	for p.pos < len(p.s) && isIdentChar(p.s[p.pos]) {
		p.pos++
	}
	name := p.s[start:p.pos]
	if name == "" {
		return 0, p.a.errf(p.l, "bad expression %q at %q", p.s, p.s[p.pos:])
	}
	if v, ok := p.a.equs[name]; ok {
		return v, nil
	}
	if v, ok := p.a.symbols[name]; ok {
		return int64(v), nil
	}
	if !p.a.pass2 {
		return 0, fmt.Errorf("asm: line %d: symbol %q: %w", p.l.num, name, errForward)
	}
	return 0, p.a.errf(p.l, "undefined symbol %q", name)
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' ||
		c == 'x' || c == 'X' || c == 'b' || c == 'B' || c == 'o' || c == 'O'
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '.' || c == '$'
}
