package asm

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Program image serialization: a simple line-oriented text format so that
// lbp-asm output can be inspected, diffed and reloaded by lbp-run.
//
//	lbpimage 1
//	entry <hex>
//	text <base-hex> <nwords>
//	<8-hex-digit word> ...
//	seg <addr-hex> <nwords>
//	<words...>
//	sym <name> <hex>

// WriteImage serializes the program.
func (p *Program) WriteImage(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "lbpimage 1\n")
	fmt.Fprintf(bw, "entry %08x\n", p.Entry)
	fmt.Fprintf(bw, "text %08x %d\n", p.TextBase, len(p.Text))
	writeWords(bw, p.Text)
	for _, s := range p.Segments {
		fmt.Fprintf(bw, "seg %08x %d\n", s.Addr, len(s.Words))
		writeWords(bw, s.Words)
	}
	for _, name := range p.SymbolsSorted() {
		fmt.Fprintf(bw, "sym %s %08x\n", name, p.Symbols[name])
	}
	return bw.Flush()
}

func writeWords(w io.Writer, words []uint32) {
	for i, v := range words {
		if i%8 == 7 || i == len(words)-1 {
			fmt.Fprintf(w, "%08x\n", v)
		} else {
			fmt.Fprintf(w, "%08x ", v)
		}
	}
}

// ReadImage parses a serialized program.
func ReadImage(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var fields []string
	next := func() bool {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			fields = strings.Fields(line)
			return true
		}
		return false
	}
	if !next() || len(fields) != 2 || fields[0] != "lbpimage" || fields[1] != "1" {
		return nil, fmt.Errorf("asm: not an lbpimage v1 file")
	}
	p := &Program{Symbols: map[string]uint32{}}
	readWords := func(n int) ([]uint32, error) {
		out := make([]uint32, 0, n)
		for len(out) < n {
			if !next() {
				return nil, fmt.Errorf("asm: truncated image (want %d words, got %d)", n, len(out))
			}
			for _, f := range fields {
				var v uint32
				if _, err := fmt.Sscanf(f, "%x", &v); err != nil {
					return nil, fmt.Errorf("asm: bad word %q", f)
				}
				out = append(out, v)
			}
		}
		if len(out) != n {
			return nil, fmt.Errorf("asm: word count mismatch: %d vs %d", len(out), n)
		}
		return out, nil
	}
	for next() {
		switch fields[0] {
		case "entry":
			if _, err := fmt.Sscanf(fields[1], "%x", &p.Entry); err != nil {
				return nil, err
			}
		case "text":
			var n int
			if _, err := fmt.Sscanf(fields[1], "%x", &p.TextBase); err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &n); err != nil {
				return nil, err
			}
			words, err := readWords(n)
			if err != nil {
				return nil, err
			}
			p.Text = words
		case "seg":
			var addr uint32
			var n int
			if _, err := fmt.Sscanf(fields[1], "%x", &addr); err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &n); err != nil {
				return nil, err
			}
			words, err := readWords(n)
			if err != nil {
				return nil, err
			}
			p.Segments = append(p.Segments, Segment{Addr: addr, Words: words})
		case "sym":
			var v uint32
			if _, err := fmt.Sscanf(fields[2], "%x", &v); err != nil {
				return nil, err
			}
			p.Symbols[fields[1]] = v
		default:
			return nil, fmt.Errorf("asm: unknown image record %q", fields[0])
		}
	}
	return p, nil
}
