package phimodel

import "testing"

func TestCalibrationMatchesFigure21(t *testing.T) {
	r := Default().TiledMatmul(256)
	// paper: 32M instructions, 391K cycles, IPC 81.86 (1.28/core)
	if r.Instructions < 31_500_000 || r.Instructions > 32_500_000 {
		t.Errorf("instructions = %d, want ~32M", r.Instructions)
	}
	if r.Cycles < 370_000 || r.Cycles > 410_000 {
		t.Errorf("cycles = %d, want ~391K", r.Cycles)
	}
	if r.IPC < 78 || r.IPC > 86 {
		t.Errorf("IPC = %.2f, want ~81.86", r.IPC)
	}
	if r.IPCPerCore > Default().PeakPerCore {
		t.Errorf("per-core IPC %.2f exceeds the peak", r.IPCPerCore)
	}
}

func TestModelScalesMonotonically(t *testing.T) {
	c := Default()
	prev := Result{}
	for _, h := range []int{16, 64, 256} {
		r := c.TiledMatmul(h)
		if r.Instructions <= prev.Instructions || r.Cycles <= prev.Cycles {
			t.Errorf("h=%d not monotone: %+v after %+v", h, r, prev)
		}
		prev = r
	}
}

// The h=256 calibration point, pinned exactly: the clamp below must not
// move the number the paper is compared against.
func TestCalibrationPinned(t *testing.T) {
	r := Default().TiledMatmul(256)
	if r.Instructions != 32_000_000 {
		t.Errorf("instructions = %d, want exactly 32000000", r.Instructions)
	}
	if r.Cycles != 400_625 { // 32e6/(64*1.28) + 10000
		t.Errorf("cycles = %d, want 400625", r.Cycles)
	}
}

// Regression test: a sweep point with fewer threads than cores used to
// divide by all 64 cores, so a 16-thread run was modeled as if 64 cores
// shared the work — cycles 4x too low and a per-core IPC of ~0.027
// instead of the calibrated ~1.28 on the 16 busy cores.
func TestSmallSweepClampsCores(t *testing.T) {
	c := Default()
	r := c.TiledMatmul(16)
	// 16 threads occupy 16 cores: aggregate IPC spread over the busy
	// cores must equal IPCPerCore, not 1/4 of it.
	if got, want := r.IPCPerCore, r.IPC/16; !approxEqual(got, want) {
		t.Errorf("IPCPerCore = %v, want IPC/16 = %v", got, want)
	}
	// Startup dominates this tiny point; the work term is instr/(16*1.28).
	// Cycles is rounded to a whole cycle, so allow that much slack.
	instr := float64(r.Instructions)
	wantCycles := instr/(16*c.IPCPerCore) + c.Startup
	if got := float64(r.Cycles); got < wantCycles-1 || got > wantCycles+1 {
		t.Errorf("cycles = %v, want ~%v (clamped to 16 cores)", got, wantCycles)
	}
	// The busy cores must stay as efficient as the calibrated machine —
	// nowhere near the unclamped model's 4x-degraded per-core IPC.
	if r.IPCPerCore < 0.05 {
		t.Errorf("IPCPerCore = %v: surplus idle cores leaked into the divisor", r.IPCPerCore)
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
