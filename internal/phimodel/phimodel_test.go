package phimodel

import "testing"

func TestCalibrationMatchesFigure21(t *testing.T) {
	r := Default().TiledMatmul(256)
	// paper: 32M instructions, 391K cycles, IPC 81.86 (1.28/core)
	if r.Instructions < 31_500_000 || r.Instructions > 32_500_000 {
		t.Errorf("instructions = %d, want ~32M", r.Instructions)
	}
	if r.Cycles < 370_000 || r.Cycles > 410_000 {
		t.Errorf("cycles = %d, want ~391K", r.Cycles)
	}
	if r.IPC < 78 || r.IPC > 86 {
		t.Errorf("IPC = %.2f, want ~81.86", r.IPC)
	}
	if r.IPCPerCore > Default().PeakPerCore {
		t.Errorf("per-core IPC %.2f exceeds the peak", r.IPCPerCore)
	}
}

func TestModelScalesMonotonically(t *testing.T) {
	c := Default()
	prev := Result{}
	for _, h := range []int{16, 64, 256} {
		r := c.TiledMatmul(h)
		if r.Instructions <= prev.Instructions || r.Cycles <= prev.Cycles {
			t.Errorf("h=%d not monotone: %+v after %+v", h, r, prev)
		}
		prev = r
	}
}
