// Package phimodel is a calibrated surrogate for the Xeon Phi 7250
// ("Xeon Phi2") measurement that Figure 21 of the paper compares the
// 64-core LBP against.
//
// The paper reports exactly three quantities for the Phi, all for the
// tiled matrix multiplication with 256 threads (best of 1000 PAPI-
// instrumented runs): 391K cycles, 32M retired instructions and an
// aggregate IPC of 81.86 (1.28 per core against a 6-wide peak).
//
// No Phi hardware is available here, so this package models those numbers
// parametrically (see DESIGN.md, substitution table): the instruction
// count scales as alpha*h^3 + beta*h^2 (vectorized MACs plus tile
// bookkeeping) and the cycle count follows the calibrated 1.28
// instructions/core/cycle with a fixed parallel-section overhead. The
// coefficients are fitted to the paper's three numbers, so at h = 256 the
// model reproduces them; other sizes are extrapolations.
package phimodel

import "math"

// Config describes the modeled machine.
type Config struct {
	Cores       int     // cores used (the paper binds 256 threads on 64)
	IPCPerCore  float64 // calibrated achieved IPC per core
	PeakPerCore float64 // issue width (2 int + 2 mem + 2 vector)
	Alpha       float64 // h^3 instruction coefficient (vectorized MACs)
	Beta        float64 // h^2 instruction coefficient (tile bookkeeping)
	Startup     float64 // fixed cycles for team start/join
}

// Default returns the configuration calibrated to the paper's Figure 21.
func Default() Config {
	return Config{
		Cores:       64,
		IPCPerCore:  1.28,
		PeakPerCore: 6,
		// 32e6 = Alpha*256^3 + Beta*256^2  with Beta chosen at 40
		// (copy/loop overhead of ~40 instructions per matrix element
		// of one tile row): Alpha = (32e6 - 40*65536) / 16777216.
		Alpha:   (32e6 - 40*65536) / 16777216,
		Beta:    40,
		Startup: 10000,
	}
}

// Result is a modeled measurement.
type Result struct {
	Harts        int
	Instructions uint64
	Cycles       uint64
	IPC          float64 // aggregate
	IPCPerCore   float64
}

// TiledMatmul models the tiled integer matmul (X: h x h/2 times
// Y: h/2 x h) with one thread per h. With fewer threads than cores the
// surplus cores are idle, so the effective core count is min(Cores, h):
// dividing by all 64 cores for a 16-thread sweep point would both
// overstate the machine's speed (cycles 4x too low) and understate its
// per-core efficiency (IPCPerCore 4x too low).
func (c Config) TiledMatmul(h int) Result {
	hh := float64(h)
	cores := c.Cores
	if h < cores {
		cores = h
	}
	instr := c.Alpha*hh*hh*hh + c.Beta*hh*hh
	cycles := instr/(float64(cores)*c.IPCPerCore) + c.Startup
	return Result{
		Harts:        h,
		Instructions: uint64(math.Round(instr)),
		Cycles:       uint64(math.Round(cycles)),
		IPC:          instr / cycles,
		IPCPerCore:   instr / cycles / float64(cores),
	}
}
