package detomp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/lbp"
)

// buildMain wraps a thread function and a team size into a complete
// program using the detomp runtime.
func buildMain(nt int, thread string, data string) string {
	return fmt.Sprintf(`
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	la a0, thread
	la a1, shared
	li a3, %d
	jal LBP_parallel_start
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

thread:
%s
%s
	.data
shared:
%s
`, nt, thread, Runtime(), data)
}

func run(t *testing.T, cores int, src string) (*lbp.Machine, *lbp.Result) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := lbp.New(lbp.DefaultConfig(cores))
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestRuntimeTeamWritesResults(t *testing.T) {
	// thread: shared[index] = index * index
	src := buildMain(16, `
	slli a5, a2, 2
	add a5, a1, a5
	mul a6, a2, a2
	sw a6, 0(a5)
	p_ret
`, "\t.fill 16, 0")
	m, res := run(t, 4, src)
	for i := 0; i < 16; i++ {
		if v, _ := m.ReadShared(0x80000000 + uint32(4*i)); v != uint32(i*i) {
			t.Errorf("shared[%d] = %d, want %d", i, v, i*i)
		}
	}
	if res.Stats.Forks != 15 {
		t.Errorf("forks = %d", res.Stats.Forks)
	}
	// canonical placement: every one of the 16 harts ran
	for i := 0; i < 16; i++ {
		if res.Stats.PerHart[i] == 0 {
			t.Errorf("hart %d idle, placement not canonical", i)
		}
	}
}

func TestRuntimeReductionViaBackwardLine(t *testing.T) {
	// Each member sends its index+1 to the creator (home field of a4);
	// the creator accumulates after the join: sum 1..8 = 36.
	src := buildMain(8, `
	addi a5, a2, 1
	p_swre a4, a5, 0
	p_ret
`, "\t.word 0")
	// main collects: patch main to read 8 values after the join.
	src = strings.Replace(src, `	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret
`, `	li a6, 0
	li a7, 8
collect:
	p_lwre a5, 0
	add a6, a6, a5
	addi a7, a7, -1
	bnez a7, collect
	la a1, shared
	sw a6, 0(a1)
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret
`, 1)
	m, _ := run(t, 2, src)
	if v, _ := m.ReadShared(0x80000000); v != 36 {
		t.Errorf("reduction = %d, want 36", v)
	}
}

func TestRuntimeNestedCalls(t *testing.T) {
	// The thread function calls a helper: ra/t0 must be preserved around
	// the call for the p_ret protocol to work.
	src := buildMain(4, `
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	mv a0, a2
	jal square
	slli a5, a2, 2
	add a5, a1, a5
	sw a0, 0(a5)
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

square:
	mul a0, a0, a0
	ret
`, "\t.fill 4, 0")
	m, _ := run(t, 1, src)
	for i := 0; i < 4; i++ {
		if v, _ := m.ReadShared(0x80000000 + uint32(4*i)); v != uint32(i*i) {
			t.Errorf("shared[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRuntimeSingleMember(t *testing.T) {
	src := buildMain(1, `
	li a5, 7
	sw a5, 0(a1)
	p_ret
`, "\t.word 0")
	m, res := run(t, 1, src)
	if v, _ := m.ReadShared(0x80000000); v != 7 {
		t.Errorf("shared[0] = %d", v)
	}
	if res.Stats.Forks != 0 {
		t.Errorf("forks = %d, want 0", res.Stats.Forks)
	}
}

func TestRuntimeBackToBackTeams(t *testing.T) {
	// Two successive teams (the Figure 4 pattern) separated by the
	// hardware barrier: get must observe set.
	src := `
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	la a0, set
	la a1, shared
	li a3, 8
	jal LBP_parallel_start
	li t0, -1
	p_set t0, t0
	la a0, get
	la a1, shared
	li a3, 8
	jal LBP_parallel_start
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

set:
	slli a5, a2, 2
	add a5, a1, a5
	addi a6, a2, 10
	sw a6, 0(a5)
	p_ret

get:
	slli a5, a2, 2
	add a6, a1, a5
	lw a7, 0(a6)
	addi a6, a6, 32     # out = shared + 8 words
	slli a7, a7, 1
	sw a7, 0(a6)
	p_ret
` + Runtime() + `
	.data
shared:
	.fill 16, 0
`
	m, res := run(t, 2, src)
	for i := 0; i < 8; i++ {
		if v, _ := m.ReadShared(0x80000000 + 32 + uint32(4*i)); v != uint32(2*(10+i)) {
			t.Errorf("out[%d] = %d, want %d", i, v, 2*(10+i))
		}
	}
	if res.Stats.Joins != 2 {
		t.Errorf("joins = %d, want 2", res.Stats.Joins)
	}
}

func TestUsesRuntime(t *testing.T) {
	if !UsesRuntime(Runtime()) {
		t.Error("Runtime must be detected")
	}
	if UsesRuntime("main:\n\tret\n") {
		t.Error("plain program must not be detected")
	}
	if len(RuntimeSymbols()) == 0 {
		t.Error("runtime symbols must be listed")
	}
}

// Regression test: the fork-policy mask used to be hardcoded to
// `andi a5, a5, 3` / `li a6, 3`, silently baking HartsPerCore=4 into the
// runtime. The constants must instead derive from the hart count, and a
// non-power-of-two count (no longer a bit-field extraction) must be
// rejected loudly.
func TestRuntimeDerivesHartMask(t *testing.T) {
	r8 := runtimeFor(8)
	if !strings.Contains(r8, "andi a5, a5, 7") || !strings.Contains(r8, "li a6, 7") {
		t.Errorf("runtimeFor(8) must mask with 7:\n%s", r8)
	}
	if strings.Contains(r8, "andi a5, a5, 3") || strings.Contains(r8, "li a6, 3") {
		t.Error("runtimeFor(8) still contains the hardcoded 4-hart mask")
	}
	if r := Runtime(); !strings.Contains(r, fmt.Sprintf("andi a5, a5, %d", isa.HartsPerCore-1)) {
		t.Errorf("Runtime() out of sync with isa.HartsPerCore=%d", isa.HartsPerCore)
	}
	if strings.Contains(Runtime(), "%d") {
		t.Errorf("Runtime() leaked an unexpanded %q verb", "%d")
	}
	for _, bad := range []int{0, -4, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("runtimeFor(%d) must panic", bad)
				}
			}()
			runtimeFor(bad)
		}()
	}
}

// A team larger than the machine's hart capacity cannot be placed: the
// fork past the last core faults deterministically.
func TestTeamLargerThanMachineFaults(t *testing.T) {
	src := buildMain(8, `
	p_ret
`, "\t.word 0") // 8 members on a 1-core (4-hart) machine
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbp.DefaultConfig(1)
	cfg.LivelockWindow = 5000
	m := lbp.New(cfg)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(5_000_000)
	if err == nil {
		t.Fatal("oversized team must fail")
	}
	if !strings.Contains(err.Error(), "past the last core") &&
		!strings.Contains(err.Error(), "no progress") {
		t.Errorf("err = %v", err)
	}
}

// Nested teams: a thread function launches its own sub-team on the free
// harts after its own core position.
func TestNestedTeams(t *testing.T) {
	src := `
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	la a0, outer
	la a1, shared
	li a3, 2
	jal LBP_parallel_start
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

outer:                      # each outer member launches 2 inner members
	addi sp, sp, -12
	sw ra, 0(sp)
	sw t0, 4(sp)
	sw a2, 8(sp)
	li t0, -1
	p_set t0, t0
	la a0, inner
	slli a5, a2, 3          # inner data base = shared + outer*8
	add a1, a1, a5
	li a3, 2
	jal LBP_parallel_start
	lw ra, 0(sp)
	lw t0, 4(sp)
	lw a2, 8(sp)
	addi sp, sp, 12
	p_ret

inner:                      # data[index] = 5 + index
	slli a5, a2, 2
	add a5, a1, a5
	addi a6, a2, 5
	sw a6, 0(a5)
	p_ret
` + Runtime() + `
	.data
shared:
	.fill 4, 0
`
	m, _ := run(t, 2, src)
	for i := 0; i < 4; i++ {
		want := uint32(5 + i%2)
		if v, _ := m.ReadShared(0x80000000 + uint32(4*i)); v != want {
			t.Errorf("shared[%d] = %d, want %d", i, v, want)
		}
	}
}
