// Package detomp implements the Deterministic OpenMP runtime of the paper:
// the LBP_parallel_start team launcher (Figure 2), the hardware fork
// protocol (Figure 8) and the ending/join conventions (Figures 6-7),
// emitted as RV32 X_PAR assembly.
//
// Unlike the classic OpenMP runtime, no operating system is involved:
// teams of harts are created with p_fc/p_fn, arguments travel as
// continuation values (p_swcv/p_lwcv), the team is ordered, and the
// barrier at the end of a parallel section is the in-order commit of the
// p_ret instructions plus the ending-hart signal chain.
//
// # Register conventions
//
//   - t0 is reserved in all Deterministic OpenMP code: it carries the hart
//     identity word (home = join hart, link = successor team member).
//   - A thread function is entered with a1 = shared data pointer,
//     a2 = member index (the parallel-for iteration), a3 = team size and
//     a4 = the team identity word whose home field is the creator hart
//     (for p_swre reductions). It must return with p_ret, with ra and t0
//     holding their entry values.
//   - LBP_parallel_start is entered with a0 = thread function, a1 = data,
//     a3 = team size (>= 1), and with t0 = the caller's p_set identity.
//     It is frameless on the creator hart; the creator becomes team
//     member 0. Control returns to the caller's return address when the
//     last team member joins. All caller-saved registers are clobbered;
//     the caller must restore ra and t0 from its own frame afterwards.
package detomp

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Runtime returns the assembly of the Deterministic OpenMP runtime,
// to be appended once to any program using parallel constructs. The
// emitted constants follow isa.HartsPerCore.
func Runtime() string {
	return runtimeFor(isa.HartsPerCore)
}

// runtimeFor instantiates the runtime for a machine with hpc harts per
// core. The fork-policy branch masks the hart-in-core field of the p_set
// identity with hpc-1, which is only a field extraction when hpc is a
// power of two (as the identity-word layout requires).
func runtimeFor(hpc int) string {
	if hpc <= 0 || hpc&(hpc-1) != 0 {
		panic(fmt.Sprintf("detomp: harts per core must be a power of two, got %d", hpc))
	}
	return fmt.Sprintf(runtimeAsm, hpc-1, hpc-1)
}

// RuntimeSymbols lists the global symbols defined by Runtime, so that
// compilers can avoid colliding with them.
func RuntimeSymbols() []string {
	return []string{"LBP_parallel_start"}
}

// UsesRuntime reports whether an assembly source already includes the
// runtime (to avoid duplicate definitions when composing sources).
func UsesRuntime(src string) bool {
	return strings.Contains(src, "LBP_parallel_start:")
}

// The team launcher. See the package comment for the ABI. The fork
// target selection reproduces the paper's placement policy: fill the
// harts of the current core, then expand to the next core (Figure 3).
// The %d verbs are the hart-in-core mask and its compare bound
// (HartsPerCore-1), filled in by runtimeFor — the mask used to be
// hardcoded to 3 and would silently misplace teams on any machine with
// a different hart count.
const runtimeAsm = `
# ---- Deterministic OpenMP runtime ------------------------------------
# LBP_parallel_start(a0=f, a1=data, a3=nt), t0 = caller identity (p_set).
# Creates an ordered team of nt harts running f(a1, index). Member t runs
# on the hart t positions after the creator along the core line. The
# creator is member 0; the join returns here when the team has ended.
	.text
LBP_parallel_start:
	li a2, 0                 # a2 = member index
Lps_loop:
	addi a5, a3, -1
	bge a2, a5, Lps_last     # last member: no fork
	p_set a5, zero           # a5 = own identity; extract hart-in-core
	srli a5, a5, 16
	andi a5, a5, %d
	li a6, %d
	blt a5, a6, Lps_fc
	p_fn t6                  # last hart of the core: fork on next core
	j Lps_send
Lps_fc:
	p_fc t6                  # fork on the current core
Lps_send:
	p_swcv t6, ra, 0         # transmit the continuation state
	p_swcv t6, t0, 4
	p_swcv t6, a0, 8
	p_swcv t6, a1, 12
	p_swcv t6, a2, 16
	p_swcv t6, a3, 20
	p_merge t0, t0, t6       # link the new member into the identity
	p_syncm                  # wait for the continuation values to land
	mv a4, t0                # a4 = team identity (home = creator)
	p_jalr ra, t0, a0        # run f locally; continuation on the new hart
	p_lwcv ra, 0             # ---- runs on the forked hart ----
	p_lwcv t0, 4
	p_lwcv a0, 8
	p_lwcv a1, 12
	p_lwcv a2, 16
	p_lwcv a3, 20
	addi a2, a2, 1
	j Lps_loop
Lps_last:
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	mv a4, t0                # a4 = team identity (home = creator)
	p_set t0, t0             # local-return identity for the plain call
	jalr ra, a0              # run f(a1, nt-1) as a normal call
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret                    # sends the join address to the creator
# ---- end of runtime ---------------------------------------------------
`
