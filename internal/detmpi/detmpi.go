// Package detmpi implements the Deterministic MPI sketched in the
// paper's perspectives (Section 8): a message-passing layer "built
// around ordered communicators where a sender always precedes its
// receiver(s) (i.e. the sender rank is lower than all its receivers
// ranks)".
//
// Ranks are team members (one hart per rank, placed in order along the
// LBP core line by the Deterministic OpenMP launch). A rank may send
// only to higher ranks — a data cannot go back in time — which the
// runtime enforces at run time (lbp_halt on violation). Each (src, dst)
// pair has a depth-one mailbox in the receiver's own shared bank: the
// receiver polls locally, the sender writes remotely (value first, then
// the sequence word; the bank's FIFO port orders the two), and the
// sender blocks until the receiver has consumed the previous message.
// All synchronization reduces to read-after-write dependencies resolved
// by the machine, so transferred values are deterministic regardless of
// timing.
package detmpi

import (
	"fmt"
	"strings"
)

// MaxRanks bounds the communicator size supported by the generated
// mailbox layout (4 words per peer per rank must fit in the bank region).
const MaxRanks = 256

// reserveWords must match the cc.Options.BankReserveBytes/4 used to
// compile the generated source (the default 4096/4).
const reserveWords = 1024

// Prelude returns the MiniC runtime for an n-rank communicator: the
// mailbox accessors, dmpi_send, dmpi_recv and dmpi_rank/size helpers.
// The user provides `void dmpi_main(int me, int nranks)` and calls
// Launcher() from C main (or uses Program to assemble everything).
func Prelude(nranks int) string {
	return fmt.Sprintf(`/* Deterministic MPI runtime, %d ranks */
#define DMPI_NR %d
#define DMPI_RESW %d

/* per-rank mailbox block, in the rank's own shared bank:
   [0      .. NR)   seq[src]   incoming sequence numbers
   [NR     .. 2NR)  val[src]   incoming values
   [2NR    .. 3NR)  sent[dst]  outgoing message counters
   [3NR    .. 4NR)  rcvd[src]  consumed message counters */
int *__dmpi_base(int r) {
	return lbp_bank_ptr(r >> 2) + DMPI_RESW + (r & 3) * 4 * DMPI_NR;
}

/* dmpi_send(me, dst, v): blocking ordered send; dst must exceed me. */
void dmpi_send(int me, int dst, int v) {
	int *box;
	int *mine;
	int n;
	if (dst <= me) lbp_halt();
	if (dst >= DMPI_NR) lbp_halt();
	box = __dmpi_base(dst);
	mine = __dmpi_base(me);
	n = mine[2*DMPI_NR + dst] + 1;
	mine[2*DMPI_NR + dst] = n;
	/* depth-one flow control: wait until the receiver consumed n-1 */
	while (lbp_poll(box + 3*DMPI_NR + me) < n - 1) {}
	box[DMPI_NR + me] = v;   /* value first */
	box[me] = n;             /* sequence second: same bank, ordered */
}

/* dmpi_recv(me, src): blocking ordered receive; src must be below me. */
int dmpi_recv(int me, int src) {
	int *box;
	int n;
	int v;
	if (src >= me) lbp_halt();
	if (src < 0) lbp_halt();
	box = __dmpi_base(me);
	n = box[3*DMPI_NR + src] + 1;
	while (lbp_poll(box + src) < n) {}
	v = box[DMPI_NR + src];
	box[3*DMPI_NR + src] = n;  /* releases the sender's flow control */
	return v;
}

int dmpi_size() { return DMPI_NR; }
`, nranks, nranks, reserveWords)
}

// Launcher returns the C main that starts the communicator: one team
// member per rank, each running dmpi_main(rank, nranks).
func Launcher() string {
	return `
void main() {
	int r;
	#pragma omp parallel for
	for (r = 0; r < DMPI_NR; r++) dmpi_main(r, DMPI_NR);
}
`
}

// Program assembles a complete MiniC source: the prelude, the user's
// code (which must define dmpi_main), and the launcher.
func Program(nranks int, user string) (string, error) {
	if nranks < 1 || nranks > MaxRanks {
		return "", fmt.Errorf("detmpi: %d ranks out of range [1, %d]", nranks, MaxRanks)
	}
	if nranks%4 != 0 && nranks != 1 {
		return "", fmt.Errorf("detmpi: rank count %d must be a multiple of 4 (one hart per rank)", nranks)
	}
	if !strings.Contains(user, "dmpi_main") {
		return "", fmt.Errorf("detmpi: user code must define dmpi_main(int me, int nranks)")
	}
	return Prelude(nranks) + "\n" + user + Launcher(), nil
}

// BankWordsNeeded returns the per-bank mailbox footprint in words, for
// sizing the machine's shared banks (4 harts per bank).
func BankWordsNeeded(nranks int) int {
	return reserveWords + 4*4*nranks
}
