package detmpi

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/trace"
)

// buildAndRun compiles a detmpi program and runs it on nranks/4 cores.
func buildAndRun(t *testing.T, nranks int, user string) (*lbp.Machine, *asm.Program, *lbp.Result) {
	t.Helper()
	src, err := Program(nranks, user)
	if err != nil {
		t.Fatal(err)
	}
	cores := nranks / 4
	if cores == 0 {
		cores = 1
	}
	opt := cc.DefaultOptions()
	opt.Cores = cores
	asmText, err := cc.BuildProgram(src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := lbp.New(lbp.DefaultConfig(cores))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return m, prog, res
}

// A pipeline: rank 0 injects 100, each rank adds its number and forwards;
// every rank also records what it saw.
const pipelineUser = `
int seen[DMPI_NR];

void dmpi_main(int me, int nranks) {
	int v;
	if (me == 0) {
		v = 100;
	} else {
		v = dmpi_recv(me, me - 1);
	}
	seen[me] = v;
	if (me < nranks - 1) {
		dmpi_send(me, me + 1, v + me + 1);
	}
}
`

func TestPipeline(t *testing.T) {
	m, prog, _ := buildAndRun(t, 8, pipelineUser)
	base := prog.Symbols["seen"]
	// seen[r] = 100 + sum(1..r)
	want := 100
	for r := 0; r < 8; r++ {
		if v, _ := m.ReadShared(base + uint32(4*r)); v != uint32(want) {
			t.Errorf("seen[%d] = %d, want %d", r, v, want)
		}
		want += r + 1
	}
}

// Rank 0 scatters a seed to every other rank directly; each squares it
// and the last rank gathers nothing (no backward sends) — results land
// in memory.
const scatterUser = `
int out[DMPI_NR];

void dmpi_main(int me, int nranks) {
	int i;
	int v;
	if (me == 0) {
		out[0] = 7;
		for (i = 1; i < nranks; i++) dmpi_send(0, i, i + 10);
	} else {
		v = dmpi_recv(me, 0);
		out[me] = v * v;
	}
}
`

func TestScatterFromRankZero(t *testing.T) {
	m, prog, _ := buildAndRun(t, 8, scatterUser)
	base := prog.Symbols["out"]
	if v, _ := m.ReadShared(base); v != 7 {
		t.Errorf("out[0] = %d", v)
	}
	for r := 1; r < 8; r++ {
		want := uint32((r + 10) * (r + 10))
		if v, _ := m.ReadShared(base + uint32(4*r)); v != want {
			t.Errorf("out[%d] = %d, want %d", r, v, want)
		}
	}
}

// Multiple messages on one (src, dst) pair: the depth-one flow control
// serializes them without loss.
const streamUser = `
int sum;

void dmpi_main(int me, int nranks) {
	int i;
	int acc;
	if (me == 0) {
		for (i = 1; i <= 20; i++) dmpi_send(0, 1, i);
	}
	if (me == 1) {
		acc = 0;
		for (i = 1; i <= 20; i++) acc += dmpi_recv(1, 0);
		sum = acc;
	}
}
`

func TestStreamFlowControl(t *testing.T) {
	m, prog, _ := buildAndRun(t, 4, streamUser)
	if v, _ := m.ReadShared(prog.Symbols["sum"]); v != 210 {
		t.Errorf("sum = %d, want 210", v)
	}
}

// A backward send (to a lower rank) must halt the machine: the paper's
// ordered-communicator rule.
const backwardUser = `
int out;
void dmpi_main(int me, int nranks) {
	if (me == 3) dmpi_send(3, 0, 1);
	out = 1;
}
`

func TestBackwardSendHalts(t *testing.T) {
	src, err := Program(4, backwardUser)
	if err != nil {
		t.Fatal(err)
	}
	asmText, err := cc.BuildProgram(src, cc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := lbp.New(lbp.DefaultConfig(1))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halt != "ebreak" {
		t.Errorf("halt = %q, want ebreak (ordered-communicator violation)", res.Halt)
	}
}

func TestDeterministicTransfer(t *testing.T) {
	src, err := Program(8, pipelineUser)
	if err != nil {
		t.Fatal(err)
	}
	opt := cc.DefaultOptions()
	opt.Cores = 2
	asmText, err := cc.BuildProgram(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	digest := func() uint64 {
		m := lbp.New(lbp.DefaultConfig(2))
		rec := trace.New(0)
		m.SetTrace(rec)
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return rec.Digest()
	}
	if digest() != digest() {
		t.Error("detmpi runs must be cycle-deterministic")
	}
}

func TestProgramValidation(t *testing.T) {
	if _, err := Program(0, pipelineUser); err == nil {
		t.Error("0 ranks must fail")
	}
	if _, err := Program(6, pipelineUser); err == nil {
		t.Error("non-multiple-of-4 must fail")
	}
	if _, err := Program(8, "int x;"); err == nil {
		t.Error("missing dmpi_main must fail")
	}
	if _, err := Program(MaxRanks+4, pipelineUser); err == nil {
		t.Error("too many ranks must fail")
	}
	if !strings.Contains(Prelude(8), "dmpi_send") {
		t.Error("prelude must define dmpi_send")
	}
	if BankWordsNeeded(64) <= 0 {
		t.Error("bank sizing")
	}
}
