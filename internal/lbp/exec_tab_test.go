package lbp

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// TestExecTabMatchesReference drives every ALU-, multiply-, divide- and
// branch-class execTab entry directly and checks the result
// value, latency charge and next-pc decision against the reference
// switch semantics (aluCompute, branchTaken, latencyOf) over randomized
// operands. This is the executable proof that the threaded-code table
// preserves the old interpreter's semantics op by op.
func TestExecTabMatchesReference(t *testing.T) {
	m := New(DefaultConfig(1))
	c := m.cores[0]
	h := c.harts[0]
	rng := rand.New(rand.NewSource(7))

	operands := func(i int) (uint32, uint32) {
		switch i {
		case 0:
			return 0, 0
		case 1:
			return 0x80000000, 0xFFFFFFFF // div/rem overflow case
		case 2:
			return 0xFFFFFFFF, 0 // div-by-zero case
		default:
			return rng.Uint32(), rng.Uint32()
		}
	}

	for op := isa.Op(0); op < isa.NumOps; op++ {
		cls := isa.ClassOf(op)
		switch cls {
		case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassBranch:
		default:
			continue // mem/system/xpar ops need machine context; covered by the suite
		}
		if op == isa.OpInvalid || op == isa.OpPSET || op == isa.OpPMERGE {
			// p_set/p_merge classify as ALU in the table but read hart
			// identity, not just operands; covered by the xpar tests.
			continue
		}
		for trial := 0; trial < 64; trial++ {
			s1, s2 := operands(trial)
			imm := int32(rng.Intn(1<<12) - (1 << 11))
			in := isa.Inst{Op: op, Rd: 5, Rs1: 6, Rs2: 7, Imm: imm}
			d := isa.DescOf(in)
			pc := uint32(0x1000 + 4*trial)
			u := &uop{d: &d, pc: pc, src1: s1, src2: s2}

			h.exec = nil
			h.execReadyAt = 0
			h.pcValid = false
			h.pc = 0
			now := uint64(1000 + trial)
			execTab[op](c, h, u, now)
			if m.err != nil {
				t.Fatalf("%v: unexpected fault: %v", op, m.err)
			}

			if cls == isa.ClassBranch {
				want := branchTaken(op, s1, s2)
				wantPC := pc + 4
				if want {
					wantPC = pc + uint32(imm)
				}
				if !u.done {
					t.Fatalf("%v: branch did not retire", op)
				}
				if !h.pcValid || h.pc != wantPC {
					t.Fatalf("%v(s1=%#x s2=%#x): pc=%#x want %#x", op, s1, s2, h.pc, wantPC)
				}
				continue
			}
			want := aluCompute(&in, s1, s2, pc)
			if u.value != want {
				t.Fatalf("%v(s1=%#x s2=%#x imm=%d): value %#x, reference %#x",
					op, s1, s2, imm, u.value, want)
			}
			if h.exec != u {
				t.Fatalf("%v: result did not enter the execution slot", op)
			}
			if wantReady := now + m.latencyOf(op); h.execReadyAt != wantReady {
				t.Fatalf("%v: readyAt %d, reference latency gives %d", op, h.execReadyAt, wantReady)
			}
		}
	}
}

// TestExecTabComplete: every opcode the decoder can produce has a
// dispatch entry (the init fill guarantees no nil slots at all).
func TestExecTabComplete(t *testing.T) {
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if execTab[op] == nil {
			t.Errorf("execTab[%v] is nil", op)
		}
	}
}
