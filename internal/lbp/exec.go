package lbp

import "repro/internal/isa"

// aluCompute evaluates a register-result instruction from its operand
// values. pc is the instruction's own address (for auipc/jal link values).
func aluCompute(in *isa.Inst, s1, s2, pc uint32) uint32 {
	imm := uint32(in.Imm)
	switch in.Op {
	case isa.OpLUI:
		return imm
	case isa.OpAUIPC:
		return pc + imm
	case isa.OpADDI:
		return s1 + imm
	case isa.OpSLTI:
		if int32(s1) < in.Imm {
			return 1
		}
		return 0
	case isa.OpSLTIU:
		if s1 < imm {
			return 1
		}
		return 0
	case isa.OpXORI:
		return s1 ^ imm
	case isa.OpORI:
		return s1 | imm
	case isa.OpANDI:
		return s1 & imm
	case isa.OpSLLI:
		return s1 << (imm & 31)
	case isa.OpSRLI:
		return s1 >> (imm & 31)
	case isa.OpSRAI:
		return uint32(int32(s1) >> (imm & 31))
	case isa.OpADD:
		return s1 + s2
	case isa.OpSUB:
		return s1 - s2
	case isa.OpSLL:
		return s1 << (s2 & 31)
	case isa.OpSLT:
		if int32(s1) < int32(s2) {
			return 1
		}
		return 0
	case isa.OpSLTU:
		if s1 < s2 {
			return 1
		}
		return 0
	case isa.OpXOR:
		return s1 ^ s2
	case isa.OpSRL:
		return s1 >> (s2 & 31)
	case isa.OpSRA:
		return uint32(int32(s1) >> (s2 & 31))
	case isa.OpOR:
		return s1 | s2
	case isa.OpAND:
		return s1 & s2
	case isa.OpMUL:
		return s1 * s2
	case isa.OpMULH:
		return uint32(uint64(int64(int32(s1))*int64(int32(s2))) >> 32)
	case isa.OpMULHSU:
		return uint32(uint64(int64(int32(s1))*int64(s2)) >> 32)
	case isa.OpMULHU:
		return uint32(uint64(s1) * uint64(s2) >> 32)
	case isa.OpDIV:
		if s2 == 0 {
			return 0xFFFFFFFF
		}
		if s1 == 0x80000000 && s2 == 0xFFFFFFFF {
			return 0x80000000 // overflow per RISC-V spec
		}
		return uint32(int32(s1) / int32(s2))
	case isa.OpDIVU:
		if s2 == 0 {
			return 0xFFFFFFFF
		}
		return s1 / s2
	case isa.OpREM:
		if s2 == 0 {
			return s1
		}
		if s1 == 0x80000000 && s2 == 0xFFFFFFFF {
			return 0
		}
		return uint32(int32(s1) % int32(s2))
	case isa.OpREMU:
		if s2 == 0 {
			return s1
		}
		return s1 % s2
	}
	return 0
}

// branchTaken evaluates a conditional branch.
func branchTaken(op isa.Op, s1, s2 uint32) bool {
	switch op {
	case isa.OpBEQ:
		return s1 == s2
	case isa.OpBNE:
		return s1 != s2
	case isa.OpBLT:
		return int32(s1) < int32(s2)
	case isa.OpBGE:
		return int32(s1) >= int32(s2)
	case isa.OpBLTU:
		return s1 < s2
	case isa.OpBGEU:
		return s1 >= s2
	}
	return false
}

// latencyOf returns the functional-unit latency of a value-producing op.
func (m *Machine) latencyOf(op isa.Op) uint64 {
	switch isa.ClassOf(op) {
	case isa.ClassMul:
		return uint64(m.cfg.MulLat)
	case isa.ClassDiv:
		return uint64(m.cfg.DivLat)
	default:
		return uint64(m.cfg.ALULat)
	}
}

// memWidth maps a load/store opcode to its access width and signedness.
func memWidth(op isa.Op) (w memWidthT, signed bool) {
	switch op {
	case isa.OpLB:
		return widthByte, true
	case isa.OpLBU, isa.OpSB:
		return widthByte, false
	case isa.OpLH:
		return widthHalf, true
	case isa.OpLHU, isa.OpSH:
		return widthHalf, false
	default:
		return widthWord, false
	}
}

type memWidthT uint8

const (
	widthByte memWidthT = 1
	widthHalf memWidthT = 2
	widthWord memWidthT = 4
)
