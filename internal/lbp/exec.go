package lbp

import "repro/internal/isa"

// Threaded-code dispatch. Issue executes an instruction with one indexed
// call through execTab instead of re-classifying the opcode with
// switches: every opcode has its own execFn, and per-instruction
// metadata (operand flags, latency class, memory width) comes
// precomputed from the uop's descriptor (isa.Desc, decoded once per
// program image — see decode.go). The switch-based functions at the
// bottom of this file are kept as the reference semantics; exec_test.go
// checks the table against them exhaustively.

// execFn performs the semantics of one issued instruction.
type execFn func(c *core, h *hart, u *uop, now uint64)

// execTab is the dispatch table, indexed by opcode.
var execTab [isa.NumOps]execFn

func init() {
	t := &execTab
	for op := range t {
		// Defensive: fetch rejects OpInvalid, so no table hole is reachable.
		t[op] = execUnknown
	}

	// Register-result operations share finishALU, which charges the
	// descriptor's functional-unit latency class.
	alu := func(op isa.Op, fn func(u *uop) uint32) {
		t[op] = func(c *core, h *hart, u *uop, now uint64) {
			finishALU(c, h, u, now, fn(u))
		}
	}
	alu(isa.OpLUI, func(u *uop) uint32 { return uint32(u.d.Inst.Imm) })
	alu(isa.OpAUIPC, func(u *uop) uint32 { return u.pc + uint32(u.d.Inst.Imm) })
	alu(isa.OpADDI, func(u *uop) uint32 { return u.src1 + uint32(u.d.Inst.Imm) })
	alu(isa.OpSLTI, func(u *uop) uint32 { return b2u(int32(u.src1) < u.d.Inst.Imm) })
	alu(isa.OpSLTIU, func(u *uop) uint32 { return b2u(u.src1 < uint32(u.d.Inst.Imm)) })
	alu(isa.OpXORI, func(u *uop) uint32 { return u.src1 ^ uint32(u.d.Inst.Imm) })
	alu(isa.OpORI, func(u *uop) uint32 { return u.src1 | uint32(u.d.Inst.Imm) })
	alu(isa.OpANDI, func(u *uop) uint32 { return u.src1 & uint32(u.d.Inst.Imm) })
	alu(isa.OpSLLI, func(u *uop) uint32 { return u.src1 << (uint32(u.d.Inst.Imm) & 31) })
	alu(isa.OpSRLI, func(u *uop) uint32 { return u.src1 >> (uint32(u.d.Inst.Imm) & 31) })
	alu(isa.OpSRAI, func(u *uop) uint32 { return uint32(int32(u.src1) >> (uint32(u.d.Inst.Imm) & 31)) })
	alu(isa.OpADD, func(u *uop) uint32 { return u.src1 + u.src2 })
	alu(isa.OpSUB, func(u *uop) uint32 { return u.src1 - u.src2 })
	alu(isa.OpSLL, func(u *uop) uint32 { return u.src1 << (u.src2 & 31) })
	alu(isa.OpSLT, func(u *uop) uint32 { return b2u(int32(u.src1) < int32(u.src2)) })
	alu(isa.OpSLTU, func(u *uop) uint32 { return b2u(u.src1 < u.src2) })
	alu(isa.OpXOR, func(u *uop) uint32 { return u.src1 ^ u.src2 })
	alu(isa.OpSRL, func(u *uop) uint32 { return u.src1 >> (u.src2 & 31) })
	alu(isa.OpSRA, func(u *uop) uint32 { return uint32(int32(u.src1) >> (u.src2 & 31)) })
	alu(isa.OpOR, func(u *uop) uint32 { return u.src1 | u.src2 })
	alu(isa.OpAND, func(u *uop) uint32 { return u.src1 & u.src2 })
	alu(isa.OpMUL, func(u *uop) uint32 { return u.src1 * u.src2 })
	alu(isa.OpMULH, func(u *uop) uint32 {
		return uint32(uint64(int64(int32(u.src1))*int64(int32(u.src2))) >> 32)
	})
	alu(isa.OpMULHSU, func(u *uop) uint32 {
		return uint32(uint64(int64(int32(u.src1))*int64(u.src2)) >> 32)
	})
	alu(isa.OpMULHU, func(u *uop) uint32 { return uint32(uint64(u.src1) * uint64(u.src2) >> 32) })
	alu(isa.OpDIV, func(u *uop) uint32 { return divRV(u.src1, u.src2) })
	alu(isa.OpDIVU, func(u *uop) uint32 {
		if u.src2 == 0 {
			return 0xFFFFFFFF
		}
		return u.src1 / u.src2
	})
	alu(isa.OpREM, func(u *uop) uint32 { return remRV(u.src1, u.src2) })
	alu(isa.OpREMU, func(u *uop) uint32 {
		if u.src2 == 0 {
			return u.src1
		}
		return u.src1 % u.src2
	})

	br := func(op isa.Op, taken func(s1, s2 uint32) bool) {
		t[op] = func(c *core, h *hart, u *uop, now uint64) {
			finishBranch(h, u, now, taken(u.src1, u.src2))
		}
	}
	br(isa.OpBEQ, func(s1, s2 uint32) bool { return s1 == s2 })
	br(isa.OpBNE, func(s1, s2 uint32) bool { return s1 != s2 })
	br(isa.OpBLT, func(s1, s2 uint32) bool { return int32(s1) < int32(s2) })
	br(isa.OpBGE, func(s1, s2 uint32) bool { return int32(s1) >= int32(s2) })
	br(isa.OpBLTU, func(s1, s2 uint32) bool { return s1 < s2 })
	br(isa.OpBGEU, func(s1, s2 uint32) bool { return s1 >= s2 })

	t[isa.OpJAL] = execJAL
	t[isa.OpJALR] = execJALR
	t[isa.OpPJAL] = execPJAL
	t[isa.OpPJALR] = execPJALR

	for _, op := range []isa.Op{isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU, isa.OpPLWCV} {
		t[op] = (*core).execLoad
	}
	for _, op := range []isa.Op{isa.OpSB, isa.OpSH, isa.OpSW} {
		t[op] = (*core).execStore
	}
	t[isa.OpPSWCV] = (*core).execSwcv
	t[isa.OpPSWRE] = (*core).execSwre

	for _, op := range []isa.Op{isa.OpFENCE, isa.OpECALL, isa.OpEBREAK, isa.OpPSYNCM} {
		t[op] = execSystem
	}

	t[isa.OpPFC] = (*core).execPFC
	t[isa.OpPFN] = (*core).execPFN
	t[isa.OpPSET] = execPSET
	t[isa.OpPMERGE] = execPMERGE
	t[isa.OpPLWRE] = (*core).execPLWRE
}

// finishALU records a register result and charges the functional-unit
// latency of the uop's descriptor class (ALU, multiply or divide).
func finishALU(c *core, h *hart, u *uop, now uint64, v uint32) {
	u.value = v
	c.startExec(h, u, now+c.m.latTab[u.d.Lat])
}

// finishBranch resolves a conditional branch: the next pc leaves the
// execute stage, and the branch itself retires with no register result.
func finishBranch(h *hart, u *uop, now uint64, taken bool) {
	target := u.pc + 4
	if taken {
		target = u.pc + uint32(u.d.Inst.Imm)
	}
	h.pc = target
	h.pcValid = true
	h.pcReadyCycle = now + 1
	u.done = true
}

func execSystem(c *core, h *hart, u *uop, now uint64) {
	// fence is a no-op (no caches), ecall/ebreak terminate at commit,
	// p_syncm acted at rename.
	u.done = true
}

func execUnknown(c *core, h *hart, u *uop, now uint64) {
	c.faultf(h.idx, "unhandled op %v (pc %#x)", u.d.Inst.Op, u.pc)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func divRV(s1, s2 uint32) uint32 {
	if s2 == 0 {
		return 0xFFFFFFFF
	}
	if s1 == 0x80000000 && s2 == 0xFFFFFFFF {
		return 0x80000000 // overflow per RISC-V spec
	}
	return uint32(int32(s1) / int32(s2))
}

func remRV(s1, s2 uint32) uint32 {
	if s2 == 0 {
		return s1
	}
	if s1 == 0x80000000 && s2 == 0xFFFFFFFF {
		return 0
	}
	return uint32(int32(s1) % int32(s2))
}

// ---- reference semantics ----------------------------------------------
//
// The switch forms below predate the dispatch table and are retained as
// the executable specification: exec_test.go checks every execTab entry
// against them over exhaustive opcode and randomized operand sweeps.

// aluCompute evaluates a register-result instruction from its operand
// values. pc is the instruction's own address (for auipc/jal link values).
func aluCompute(in *isa.Inst, s1, s2, pc uint32) uint32 {
	imm := uint32(in.Imm)
	switch in.Op {
	case isa.OpLUI:
		return imm
	case isa.OpAUIPC:
		return pc + imm
	case isa.OpADDI:
		return s1 + imm
	case isa.OpSLTI:
		if int32(s1) < in.Imm {
			return 1
		}
		return 0
	case isa.OpSLTIU:
		if s1 < imm {
			return 1
		}
		return 0
	case isa.OpXORI:
		return s1 ^ imm
	case isa.OpORI:
		return s1 | imm
	case isa.OpANDI:
		return s1 & imm
	case isa.OpSLLI:
		return s1 << (imm & 31)
	case isa.OpSRLI:
		return s1 >> (imm & 31)
	case isa.OpSRAI:
		return uint32(int32(s1) >> (imm & 31))
	case isa.OpADD:
		return s1 + s2
	case isa.OpSUB:
		return s1 - s2
	case isa.OpSLL:
		return s1 << (s2 & 31)
	case isa.OpSLT:
		if int32(s1) < int32(s2) {
			return 1
		}
		return 0
	case isa.OpSLTU:
		if s1 < s2 {
			return 1
		}
		return 0
	case isa.OpXOR:
		return s1 ^ s2
	case isa.OpSRL:
		return s1 >> (s2 & 31)
	case isa.OpSRA:
		return uint32(int32(s1) >> (s2 & 31))
	case isa.OpOR:
		return s1 | s2
	case isa.OpAND:
		return s1 & s2
	case isa.OpMUL:
		return s1 * s2
	case isa.OpMULH:
		return uint32(uint64(int64(int32(s1))*int64(int32(s2))) >> 32)
	case isa.OpMULHSU:
		return uint32(uint64(int64(int32(s1))*int64(s2)) >> 32)
	case isa.OpMULHU:
		return uint32(uint64(s1) * uint64(s2) >> 32)
	case isa.OpDIV:
		return divRV(s1, s2)
	case isa.OpDIVU:
		if s2 == 0 {
			return 0xFFFFFFFF
		}
		return s1 / s2
	case isa.OpREM:
		return remRV(s1, s2)
	case isa.OpREMU:
		if s2 == 0 {
			return s1
		}
		return s1 % s2
	}
	return 0
}

// branchTaken evaluates a conditional branch.
func branchTaken(op isa.Op, s1, s2 uint32) bool {
	switch op {
	case isa.OpBEQ:
		return s1 == s2
	case isa.OpBNE:
		return s1 != s2
	case isa.OpBLT:
		return int32(s1) < int32(s2)
	case isa.OpBGE:
		return int32(s1) >= int32(s2)
	case isa.OpBLTU:
		return s1 < s2
	case isa.OpBGEU:
		return s1 >= s2
	}
	return false
}

// latencyOf returns the functional-unit latency of a value-producing op
// (reference for the descriptor latency class; the hot path reads
// m.latTab[u.d.Lat]).
func (m *Machine) latencyOf(op isa.Op) uint64 {
	switch isa.ClassOf(op) {
	case isa.ClassMul:
		return uint64(m.cfg.MulLat)
	case isa.ClassDiv:
		return uint64(m.cfg.DivLat)
	default:
		return uint64(m.cfg.ALULat)
	}
}

// memWidth maps a load/store opcode to its access width and signedness
// (reference for Desc.MemW/DescMemSigned).
func memWidth(op isa.Op) (w memWidthT, signed bool) {
	switch op {
	case isa.OpLB:
		return widthByte, true
	case isa.OpLBU, isa.OpSB:
		return widthByte, false
	case isa.OpLH:
		return widthHalf, true
	case isa.OpLHU, isa.OpSH:
		return widthHalf, false
	default:
		return widthWord, false
	}
}

type memWidthT uint8

const (
	widthByte memWidthT = 1
	widthHalf memWidthT = 2
	widthWord memWidthT = 4
)
