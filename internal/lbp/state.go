package lbp

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/trace"
)

// Checkpoint/restore. A machine paused at a cycle boundary (after New,
// after a completed run, or wherever Advance stopped) is pure data plus
// three pointer webs: uops referenced from the instruction table, the
// rename map, the execution slot and their dependence edges; in-flight
// memory-event clients pointing back at harts and uops; and the
// predecoded code image. The first two flatten to stable identifiers —
// every referencable uop lives in its hart's reorder buffer, so (hart
// global number, ROB index) names it — and the third is recomputed from
// the code bank. Everything else serializes by value with encoding/gob.
//
// Versioning rules (DESIGN.md §"Serializable machine state"): any change
// to the meaning, order or encoding of a saved field bumps
// checkpointVersion, and Restore refuses unknown versions outright.
// Version 2 is the sharded streamed format below; the monolithic
// version-1 images older builds wrote remain restorable (they are the
// one cross-version path — the serve-side result cache holds them).

// checkpointVersion is the format number embedded in every checkpoint
// this build writes.
const checkpointVersion = 2

// checkpointMagic prefixes every version-2 checkpoint stream. A
// version-1 image is a bare gob stream, which starts with a type
// descriptor, never these eight bytes — so the prefix discriminates
// the formats reliably.
var checkpointMagic = [8]byte{'L', 'B', 'P', 'C', 'K', 'P', 'T', '2'}

// checkpointShardCores is the core-group granularity of a version-2
// checkpoint: each group's cores, harts, performance counters and
// memory banks encode as one self-contained gob value on the shared
// stream. The version-1 encoder materialized the whole machine as a
// single struct — at 1024 cores that is thousands of hart images and
// bank arrays held live at once — while the sharded writer only ever
// holds one 64-core group between stream writes.
const checkpointShardCores = 64

// savedUop flattens a uop: the instruction rebuilds from its raw word,
// the pipeline class from the opcode, and the dependence edges from ROB
// indices (-1 = resolved).
type savedUop struct {
	Raw     uint32
	PC      uint32
	Seq     uint64
	Src1    uint32
	Src2    uint32
	Dep1    int32
	Dep2    int32
	Issued  bool
	Done    bool
	Value   uint32
	NeedsRB bool
	MemWait bool
	IsRet   bool
	RetRA   uint32
	RetT0   uint32
}

// savedHart flattens a hart. IT, LastWriter and Exec reference uops by
// ROB index; IB is the only uop that can live outside the ROB (fetched,
// not yet renamed) and is stored inline.
type savedHart struct {
	State       uint8
	PC          uint32
	PCValid     bool
	PCReady     uint64
	SyncmWait   bool
	Regs        [32]uint32
	LastWriter  [32]int32
	HasIB       bool
	IB          savedUop
	Rob         []savedUop
	IT          []int32
	Seq         uint64
	Renamed     uint64
	Exec        int32
	ExecReadyAt uint64
	InflightMem int32
	HasPred     bool
	PredSignal  bool
	Remote      [][]uint32
	Retired     uint64
	StartedBy   uint32
	EndingEpoch uint64
	LastCommit  uint64
}

// savedCore holds the per-core round-robin pointers and statistic
// counters (busy counts and the active list are derived state).
type savedCore struct {
	FetchRR  int32
	RenameRR int32
	IssueRR  int32
	WbRR     int32
	CommitRR int32
	Fetched  uint64
	Forks    uint64
	Sends    uint64
}

// Client kinds for savedClient, one per payload type in clients.go.
const (
	clientLoad uint8 = iota
	clientStore
	clientSwre
	clientStart
	clientSignal
	clientJoin
)

// savedClient flattens one in-flight memory-event client. The fields
// are a union keyed by Kind, mirroring the payload structs.
type savedClient struct {
	Kind     uint8
	Hart     uint32 // clientLoad/clientStore: issuing hart global number
	Rob      int32  // clientLoad: ROB index of the waiting uop
	Val      uint32 // clientLoad: parked bank value; clientSwre: sent value
	FromCore int32
	FromHart int32
	Tgt      uint32
	PC       uint32
	Addr     uint32
	Idx      uint32
}

// checkpointV1 is the monolithic serialized machine image of format
// version 1, kept for decoding old images only — this build never
// writes it.
type checkpointV1 struct {
	Version    int
	Cfg        Config
	Cycle      uint64
	Running    bool
	Exited     bool
	HaltMsg    string
	ErrMsg     string
	Progress   uint64
	Stats      Stats
	Profiling  bool
	DecodedLen uint32
	Cores      []savedCore
	Harts      []savedHart
	HPerf      []perf.HartCounters
	CPerf      []perf.CoreCounters
	Mem        mem.State
	MemClients []savedClient
	HasTrace   bool
	Trace      trace.RecorderState
	Devices    [][]byte
}

// checkpointManifest heads a version-2 stream: everything global —
// configuration, clock and counters, the memory system's link and
// event state (banks travel in the shards), in-flight clients, the
// trace chain, device state — plus the shard geometry the reader
// validates the following shard values against.
type checkpointManifest struct {
	Version    int
	Cfg        Config
	Cycle      uint64
	Running    bool
	Exited     bool
	HaltMsg    string
	ErrMsg     string
	Progress   uint64
	Stats      Stats
	Profiling  bool
	DecodedLen uint32
	Mem        mem.State // global state only: Local/Shared are nil
	MemClients []savedClient
	HasTrace   bool
	Trace      trace.RecorderState
	Devices    [][]byte
	ShardCores int
	NumShards  int
}

// checkpointShard carries one contiguous core group: its cores, harts,
// performance counters and memory banks.
type checkpointShard struct {
	FirstCore int
	Cores     []savedCore
	Harts     []savedHart
	HPerf     []perf.HartCounters
	CPerf     []perf.CoreCounters
	Local     [][]uint32
	Shared    [][]uint32
}

// WriteCheckpoint streams the full architectural state of the machine
// to w: hart registers, reorder buffers and rename maps, in-flight
// memory events and link-allocator state, device state, cycle and
// performance counters, and the trace-digest chain. Restoring the
// stream with Restore (or ReadCheckpoint) and advancing reproduces the
// uninterrupted run bit-exactly. Host-side execution knobs (worker
// count, fast-forward) are not part of the state — they never affect
// simulated results.
//
// The stream is the version-2 format: the magic tag, a gob-encoded
// manifest, then one gob value per checkpointShardCores-core group on
// the same encoder. Shards are captured one at a time, so peak host
// memory is bounded by one group, not the machine size.
func (m *Machine) WriteCheckpoint(w io.Writer) error {
	for _, c := range m.cores {
		if len(c.pend) > 0 || len(c.evbuf) > 0 {
			return fmt.Errorf("lbp: checkpoint mid-cycle: core %d has unapplied effects", c.idx)
		}
	}
	decodedLen := 0
	if m.img != nil {
		decodedLen = len(m.img.descs)
	}
	memState, clients := m.Mem.CaptureGlobalState()
	man := checkpointManifest{
		Version:    checkpointVersion,
		Cfg:        m.cfg,
		Cycle:      m.cycle,
		Running:    m.running,
		Exited:     m.exited,
		HaltMsg:    m.haltMsg,
		Progress:   m.progress,
		Stats:      m.stats,
		Profiling:  m.profiling,
		DecodedLen: uint32(decodedLen),
		Mem:        *memState,
		ShardCores: checkpointShardCores,
		NumShards:  (len(m.cores) + checkpointShardCores - 1) / checkpointShardCores,
	}
	if m.err != nil {
		man.ErrMsg = m.err.Error()
	}
	man.MemClients = make([]savedClient, len(clients))
	for i, cl := range clients {
		sc, err := saveClient(cl)
		if err != nil {
			return err
		}
		man.MemClients[i] = sc
	}
	if m.rec != nil {
		man.HasTrace = true
		man.Trace = m.rec.State()
	}
	man.Devices = make([][]byte, len(m.devices))
	for i, d := range m.devices {
		s, ok := d.(Stateful)
		if !ok {
			return fmt.Errorf("lbp: device %d (%T) does not support checkpointing", i, d)
		}
		b, err := s.DeviceState()
		if err != nil {
			return fmt.Errorf("lbp: device %d: %w", i, err)
		}
		man.Devices[i] = b
	}
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("lbp: writing checkpoint: %w", err)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&man); err != nil {
		return fmt.Errorf("lbp: encoding checkpoint manifest: %w", err)
	}
	for lo := 0; lo < len(m.cores); lo += checkpointShardCores {
		hi := lo + checkpointShardCores
		if hi > len(m.cores) {
			hi = len(m.cores)
		}
		sh, err := m.captureShard(lo, hi)
		if err != nil {
			return err
		}
		if err := enc.Encode(sh); err != nil {
			return fmt.Errorf("lbp: encoding checkpoint shard at core %d: %w", lo, err)
		}
	}
	return nil
}

// Checkpoint serializes the machine into a byte slice (WriteCheckpoint
// into memory) — the convenience form the sim and serve layers store
// and hash.
func (m *Machine) Checkpoint() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.WriteCheckpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// captureShard flattens the core group [lo, hi).
func (m *Machine) captureShard(lo, hi int) (*checkpointShard, error) {
	sh := &checkpointShard{
		FirstCore: lo,
		Cores:     make([]savedCore, hi-lo),
		Harts:     make([]savedHart, (hi-lo)*HartsPerCore),
		HPerf:     append([]perf.HartCounters(nil), m.hperf[lo*HartsPerCore:hi*HartsPerCore]...),
		CPerf:     append([]perf.CoreCounters(nil), m.cperf[lo:hi]...),
	}
	for i := lo; i < hi; i++ {
		c := m.cores[i]
		sh.Cores[i-lo] = savedCore{
			FetchRR: int32(c.fetchRR), RenameRR: int32(c.renameRR),
			IssueRR: int32(c.issueRR), WbRR: int32(c.wbRR), CommitRR: int32(c.commitRR),
			Fetched: c.statFetched, Forks: c.statForks, Sends: c.statSends,
		}
	}
	for i := lo * HartsPerCore; i < hi*HartsPerCore; i++ {
		s, err := saveHart(m.harts[i])
		if err != nil {
			return nil, err
		}
		sh.Harts[i-lo*HartsPerCore] = s
	}
	sh.Local, sh.Shared = m.Mem.CaptureBankRange(lo, hi)
	return sh, nil
}

// Restore rebuilds a machine from Checkpoint bytes, accepting both the
// sharded version-2 stream this build writes and the monolithic
// version-1 images of older builds. Devices are not serializable as
// configuration, so the caller passes freshly built, identically
// configured devices in the original AddDevice order; their mutable
// state is restored from the checkpoint before attachment.
func Restore(data []byte, devices ...Device) (*Machine, error) {
	if len(data) >= len(checkpointMagic) &&
		bytes.Equal(data[:len(checkpointMagic)], checkpointMagic[:]) {
		return ReadCheckpoint(bytes.NewReader(data), devices...)
	}
	return restoreV1(data, devices...)
}

// ReadCheckpoint rebuilds a machine from a version-2 checkpoint
// stream, decoding one core-group shard at a time.
func ReadCheckpoint(r io.Reader, devices ...Device) (*Machine, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("lbp: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("lbp: stream is not a version-%d checkpoint", checkpointVersion)
	}
	dec := gob.NewDecoder(r)
	var man checkpointManifest
	if err := dec.Decode(&man); err != nil {
		return nil, fmt.Errorf("lbp: decoding checkpoint manifest: %w", err)
	}
	if man.Version != checkpointVersion {
		return nil, fmt.Errorf("lbp: checkpoint version %d, this build supports %d",
			man.Version, checkpointVersion)
	}
	if len(devices) != len(man.Devices) {
		return nil, fmt.Errorf("lbp: checkpoint was taken with %d devices, restore got %d",
			len(man.Devices), len(devices))
	}
	if man.Cfg.Cores <= 0 {
		return nil, fmt.Errorf("lbp: checkpoint has a non-positive core count")
	}
	if man.ShardCores <= 0 ||
		man.NumShards != (man.Cfg.Cores+man.ShardCores-1)/man.ShardCores {
		return nil, fmt.Errorf("lbp: checkpoint shard geometry does not match its configuration")
	}
	m := New(man.Cfg)
	m.cycle = man.Cycle
	m.running = man.Running
	m.exited = man.Exited
	m.haltMsg = man.HaltMsg
	if man.ErrMsg != "" {
		m.err = faultError(man.ErrMsg)
	}
	m.progress = man.Progress
	m.stats = man.Stats
	if man.Profiling {
		m.EnableProfiling()
	}
	for s := 0; s < man.NumShards; s++ {
		lo := s * man.ShardCores
		hi := lo + man.ShardCores
		if hi > len(m.cores) {
			hi = len(m.cores)
		}
		var sh checkpointShard
		if err := dec.Decode(&sh); err != nil {
			return nil, fmt.Errorf("lbp: decoding checkpoint shard %d: %w", s, err)
		}
		if err := m.restoreShard(&sh, lo, hi); err != nil {
			return nil, err
		}
	}
	clients := make([]any, len(man.MemClients))
	for i := range man.MemClients {
		cl, err := m.restoreClient(&man.MemClients[i])
		if err != nil {
			return nil, err
		}
		clients[i] = cl
	}
	if err := m.Mem.RestoreGlobalState(&man.Mem, clients); err != nil {
		return nil, err
	}
	return finishRestore(m, man.DecodedLen, man.HasTrace, man.Trace, man.Devices, devices)
}

// restoreShard rebuilds the core group the shard claims, after checking
// it is exactly the [lo, hi) group the stream position calls for.
func (m *Machine) restoreShard(sh *checkpointShard, lo, hi int) error {
	if sh.FirstCore != lo || len(sh.Cores) != hi-lo ||
		len(sh.Harts) != (hi-lo)*HartsPerCore ||
		len(sh.HPerf) != len(sh.Harts) || len(sh.CPerf) != len(sh.Cores) {
		return fmt.Errorf("lbp: checkpoint shard at core %d has mismatched geometry", sh.FirstCore)
	}
	for i, sc := range sh.Cores {
		c := m.cores[lo+i]
		c.fetchRR, c.renameRR = int(sc.FetchRR), int(sc.RenameRR)
		c.issueRR, c.wbRR, c.commitRR = int(sc.IssueRR), int(sc.WbRR), int(sc.CommitRR)
		c.statFetched, c.statForks, c.statSends = sc.Fetched, sc.Forks, sc.Sends
	}
	hlo := lo * HartsPerCore
	for i := range sh.Harts {
		if err := restoreHart(m.harts[hlo+i], &sh.Harts[i]); err != nil {
			return err
		}
	}
	copy(m.hperf[hlo:], sh.HPerf)
	copy(m.cperf[lo:], sh.CPerf)
	return m.Mem.RestoreBankRange(lo, sh.Local, sh.Shared)
}

// restoreV1 rebuilds a machine from a monolithic version-1 image.
func restoreV1(data []byte, devices ...Device) (*Machine, error) {
	var cp checkpointV1
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
		return nil, fmt.Errorf("lbp: decoding checkpoint: %w", err)
	}
	if cp.Version != 1 {
		return nil, fmt.Errorf("lbp: checkpoint version %d, this build supports %d",
			cp.Version, checkpointVersion)
	}
	if len(devices) != len(cp.Devices) {
		return nil, fmt.Errorf("lbp: checkpoint was taken with %d devices, restore got %d",
			len(cp.Devices), len(devices))
	}
	if cp.Cfg.Cores <= 0 {
		return nil, fmt.Errorf("lbp: checkpoint has a non-positive core count")
	}
	m := New(cp.Cfg)
	if len(cp.Cores) != len(m.cores) || len(cp.Harts) != len(m.harts) ||
		len(cp.HPerf) != len(m.hperf) || len(cp.CPerf) != len(m.cperf) {
		return nil, fmt.Errorf("lbp: checkpoint geometry does not match its configuration")
	}
	m.cycle = cp.Cycle
	m.running = cp.Running
	m.exited = cp.Exited
	m.haltMsg = cp.HaltMsg
	if cp.ErrMsg != "" {
		m.err = faultError(cp.ErrMsg)
	}
	m.progress = cp.Progress
	m.stats = cp.Stats
	copy(m.hperf, cp.HPerf)
	copy(m.cperf, cp.CPerf)
	if cp.Profiling {
		m.EnableProfiling()
	}
	for i, sc := range cp.Cores {
		c := m.cores[i]
		c.fetchRR, c.renameRR = int(sc.FetchRR), int(sc.RenameRR)
		c.issueRR, c.wbRR, c.commitRR = int(sc.IssueRR), int(sc.WbRR), int(sc.CommitRR)
		c.statFetched, c.statForks, c.statSends = sc.Fetched, sc.Forks, sc.Sends
	}
	for i := range cp.Harts {
		if err := restoreHart(m.harts[i], &cp.Harts[i]); err != nil {
			return nil, err
		}
	}
	clients := make([]any, len(cp.MemClients))
	for i := range cp.MemClients {
		cl, err := m.restoreClient(&cp.MemClients[i])
		if err != nil {
			return nil, err
		}
		clients[i] = cl
	}
	if err := m.Mem.RestoreState(&cp.Mem, clients); err != nil {
		return nil, err
	}
	return finishRestore(m, cp.DecodedLen, cp.HasTrace, cp.Trace, cp.Devices, devices)
}

// finishRestore is the version-independent restore tail: rebuild the
// shared decoded image from the restored code bank, refresh the active
// list, reattach the trace recorder and the caller's devices.
func finishRestore(m *Machine, decodedLen uint32, hasTrace bool,
	ts trace.RecorderState, devState [][]byte, devices []Device) (*Machine, error) {
	if decodedLen > 0 {
		words := make([]uint32, decodedLen)
		for i := range words {
			w, ok := m.Mem.FetchWord(uint32(4 * i))
			if !ok {
				return nil, fmt.Errorf("lbp: checkpoint decoded image exceeds the code bank")
			}
			words[i] = w
		}
		// Same canonical key as LoadProgram (the full word image from
		// address 0), so a restored machine shares the decoded image with
		// machines that loaded the identical program directly.
		m.img = sharedImage(words)
	}
	for _, c := range m.cores {
		c.activeEdge = false
	}
	m.rebuildActive()
	if hasTrace {
		m.SetTrace(trace.NewFromState(ts))
	}
	for i, d := range devices {
		s, ok := d.(Stateful)
		if !ok {
			return nil, fmt.Errorf("lbp: restore device %d (%T) does not support checkpointing", i, d)
		}
		if err := s.RestoreDeviceState(devState[i]); err != nil {
			return nil, fmt.Errorf("lbp: restore device %d: %w", i, err)
		}
		m.AddDevice(d)
	}
	return m, nil
}

// robIndex finds u in h's reorder buffer and returns its logical
// position in ROB order (0 = oldest; -1 for nil). The buffer is at most
// a few dozen entries, so the scan is fine on the cold path. Logical
// positions keep the saved format independent of the ring's physical
// head, so checkpoints from before the ring representation restore
// identically.
func robIndex(h *hart, u *uop) (int32, error) {
	if u == nil {
		return -1, nil
	}
	for i := 0; i < h.robN; i++ {
		if h.robAt(i) == u {
			return int32(i), nil
		}
	}
	return -1, fmt.Errorf("lbp: hart %d references a uop outside its reorder buffer", h.gid)
}

// robResolve resolves a saved logical ROB index back to a pointer
// (-1 = nil).
func robResolve(h *hart, idx int32) (*uop, error) {
	if idx < 0 {
		return nil, nil
	}
	if int(idx) >= h.robN {
		return nil, fmt.Errorf("lbp: checkpoint references rob slot %d of %d on hart %d",
			idx, h.robN, h.gid)
	}
	return h.robAt(int(idx)), nil
}

func saveUop(h *hart, u *uop) (savedUop, error) {
	d1, err := robIndex(h, u.dep1)
	if err != nil {
		return savedUop{}, err
	}
	d2, err := robIndex(h, u.dep2)
	if err != nil {
		return savedUop{}, err
	}
	return savedUop{
		Raw: u.d.Inst.Raw, PC: u.pc, Seq: u.seq,
		Src1: u.src1, Src2: u.src2, Dep1: d1, Dep2: d2,
		Issued: u.issued, Done: u.done, Value: u.value,
		NeedsRB: u.needsRB, MemWait: u.memWait,
		IsRet: u.isRet, RetRA: u.retRA, RetT0: u.retT0,
	}, nil
}

// restoreUopInto fills everything but the dependence edges, which need
// the whole ROB rebuilt first. The descriptor is decoded standalone
// (content-identical to the shared image's entry) because harts restore
// before the code image does.
func restoreUopInto(u *uop, su *savedUop) {
	d := isa.DecodeDesc(su.Raw)
	*u = uop{
		d: &d, pc: su.PC, seq: su.Seq,
		src1: su.Src1, src2: su.Src2,
		issued: su.Issued, done: su.Done, value: su.Value,
		needsRB: su.NeedsRB, memWait: su.MemWait,
		isRet: su.IsRet, retRA: su.RetRA, retT0: su.RetT0,
	}
}

func saveHart(h *hart) (savedHart, error) {
	sh := savedHart{
		State: uint8(h.state), PC: h.pc, PCValid: h.pcValid, PCReady: h.pcReadyCycle,
		SyncmWait: h.syncmWait, Regs: h.regs,
		Seq: h.seq, Renamed: h.renamed, ExecReadyAt: h.execReadyAt,
		InflightMem: int32(h.inflightMem), HasPred: h.hasPred, PredSignal: h.predSignal,
		Retired: h.retired, StartedBy: h.startedBy,
		EndingEpoch: h.endingEpoch, LastCommit: h.lastCommit,
	}
	var err error
	sh.Rob = make([]savedUop, h.robN)
	for i := 0; i < h.robN; i++ {
		if sh.Rob[i], err = saveUop(h, h.robAt(i)); err != nil {
			return savedHart{}, err
		}
	}
	sh.IT = make([]int32, len(h.it))
	for i, u := range h.it {
		if sh.IT[i], err = robIndex(h, u); err != nil {
			return savedHart{}, err
		}
	}
	for r, u := range h.lastWriter {
		if sh.LastWriter[r], err = robIndex(h, u); err != nil {
			return savedHart{}, err
		}
	}
	if sh.Exec, err = robIndex(h, h.exec); err != nil {
		return savedHart{}, err
	}
	if h.ib != nil {
		sh.HasIB = true
		if sh.IB, err = saveUop(h, h.ib); err != nil {
			return savedHart{}, err
		}
	}
	sh.Remote = make([][]uint32, len(h.remote))
	for i := range h.remote {
		sh.Remote[i] = append([]uint32(nil), h.remote[i].vals...)
	}
	return sh, nil
}

func restoreHart(h *hart, sh *savedHart) error {
	if sh.State > uint8(hartWaitJoin) {
		return fmt.Errorf("lbp: checkpoint hart %d has unknown state %d", h.gid, sh.State)
	}
	if len(sh.Remote) != len(h.remote) {
		return fmt.Errorf("lbp: checkpoint hart %d has %d result buffers, machine has %d",
			h.gid, len(sh.Remote), len(h.remote))
	}
	h.setState(hartState(sh.State)) // keeps the core busy count right
	h.pc, h.pcValid, h.pcReadyCycle = sh.PC, sh.PCValid, sh.PCReady
	h.syncmWait = sh.SyncmWait
	h.regs = sh.Regs
	h.seq, h.renamed = sh.Seq, sh.Renamed
	h.execReadyAt = sh.ExecReadyAt
	h.inflightMem = int(sh.InflightMem)
	h.hasPred, h.predSignal = sh.HasPred, sh.PredSignal
	h.retired = sh.Retired
	h.startedBy = sh.StartedBy
	h.endingEpoch = sh.EndingEpoch
	h.lastCommit = sh.LastCommit
	if len(sh.Rob) > len(h.rob) {
		return fmt.Errorf("lbp: checkpoint hart %d has %d rob entries, capacity is %d",
			h.gid, len(sh.Rob), len(h.rob))
	}
	h.robClear()
	for i := range sh.Rob {
		u := h.newUop()
		restoreUopInto(u, &sh.Rob[i])
		h.robPush(u)
	}
	for i := range sh.Rob {
		su := &sh.Rob[i]
		var err error
		if h.robAt(i).dep1, err = robResolve(h, su.Dep1); err != nil {
			return err
		}
		if h.robAt(i).dep2, err = robResolve(h, su.Dep2); err != nil {
			return err
		}
	}
	h.it = h.it[:0]
	for _, idx := range sh.IT {
		u, err := robResolve(h, idx)
		if err != nil {
			return err
		}
		if u == nil {
			return fmt.Errorf("lbp: checkpoint hart %d has a nil instruction-table entry", h.gid)
		}
		h.it = append(h.it, u)
	}
	for r := range sh.LastWriter {
		u, err := robResolve(h, sh.LastWriter[r])
		if err != nil {
			return err
		}
		h.lastWriter[r] = u
	}
	exec, err := robResolve(h, sh.Exec)
	if err != nil {
		return err
	}
	h.exec = exec
	h.ib = nil
	if sh.HasIB {
		if sh.IB.Dep1 >= 0 || sh.IB.Dep2 >= 0 {
			return fmt.Errorf("lbp: checkpoint hart %d has a pre-rename uop with dependencies", h.gid)
		}
		u := h.newUop()
		restoreUopInto(u, &sh.IB)
		h.ib = u
	}
	for i := range h.remote {
		h.remote[i].vals = append(h.remote[i].vals[:0], sh.Remote[i]...)
	}
	return nil
}

func saveClient(cl any) (savedClient, error) {
	switch c := cl.(type) {
	case *loadClient:
		idx, err := robIndex(c.h, c.u)
		if err != nil {
			return savedClient{}, err
		}
		if idx < 0 {
			return savedClient{}, fmt.Errorf("lbp: in-flight load on hart %d has no uop", c.h.gid)
		}
		return savedClient{Kind: clientLoad, Hart: c.h.gid, Rob: idx, Val: c.v}, nil
	case *storeClient:
		return savedClient{Kind: clientStore, Hart: c.h.gid}, nil
	case *swreMsg:
		return savedClient{Kind: clientSwre, FromCore: int32(c.fromCore), FromHart: int32(c.fromHart),
			Tgt: c.tgt, Idx: c.idx, Val: c.val, PC: c.pc}, nil
	case *startMsg:
		return savedClient{Kind: clientStart, FromCore: int32(c.fromCore), FromHart: int32(c.fromHart),
			Tgt: c.tgt, PC: c.pc}, nil
	case *signalMsg:
		return savedClient{Kind: clientSignal, Tgt: c.tgt}, nil
	case *joinMsg:
		return savedClient{Kind: clientJoin, FromCore: int32(c.fromCore), FromHart: int32(c.fromHart),
			Tgt: c.tgt, Addr: c.addr}, nil
	default:
		return savedClient{}, fmt.Errorf("lbp: cannot checkpoint in-flight memory client %T", cl)
	}
}

func (m *Machine) restoreClient(sc *savedClient) (any, error) {
	hartAt := func(gid uint32) (*hart, error) {
		if int(gid) >= len(m.harts) {
			return nil, fmt.Errorf("lbp: checkpoint references hart %d of %d", gid, len(m.harts))
		}
		return m.harts[gid], nil
	}
	switch sc.Kind {
	case clientLoad:
		h, err := hartAt(sc.Hart)
		if err != nil {
			return nil, err
		}
		u, err := robResolve(h, sc.Rob)
		if err != nil {
			return nil, err
		}
		if u == nil {
			return nil, fmt.Errorf("lbp: in-flight load on hart %d has no uop", sc.Hart)
		}
		// Re-arm the hart's pooled client (at most one load in flight
		// per hart, so the slot is necessarily free).
		lc := &h.ldc
		lc.u, lc.v = u, sc.Val
		return lc, nil
	case clientStore:
		h, err := hartAt(sc.Hart)
		if err != nil {
			return nil, err
		}
		return &h.stc, nil
	case clientSwre:
		if _, err := hartAt(sc.Tgt); err != nil {
			return nil, err
		}
		return &swreMsg{m: m, fromCore: int(sc.FromCore), fromHart: int(sc.FromHart),
			tgt: sc.Tgt, idx: sc.Idx, val: sc.Val, pc: sc.PC}, nil
	case clientStart:
		if _, err := hartAt(sc.Tgt); err != nil {
			return nil, err
		}
		return &startMsg{m: m, fromCore: int(sc.FromCore), fromHart: int(sc.FromHart),
			tgt: sc.Tgt, pc: sc.PC}, nil
	case clientSignal:
		if _, err := hartAt(sc.Tgt); err != nil {
			return nil, err
		}
		return &signalMsg{m: m, tgt: sc.Tgt}, nil
	case clientJoin:
		if _, err := hartAt(sc.Tgt); err != nil {
			return nil, err
		}
		return &joinMsg{m: m, fromCore: int(sc.FromCore), fromHart: int(sc.FromHart),
			tgt: sc.Tgt, addr: sc.Addr}, nil
	default:
		return nil, fmt.Errorf("lbp: checkpoint has unknown client kind %d", sc.Kind)
	}
}
