package lbp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Two-phase stepping. Each cycle the active cores first run a compute
// phase (phase A) that reads only core-local state plus immutable or
// cycle-start-snapshot views of the rest of the machine, and records
// every cross-core or machine-global effect — memory submissions,
// forward/backward control messages, next-core fork allocations, trace
// events, statistic deltas, faults and halts — as an ordered per-core
// pending stream. A commit phase (phase B) then applies the streams
// serially in core-index order.
//
// Because phase A of one core neither reads nor writes another core's
// mutable state, the compute phase can be sharded across host threads,
// and because phase B replays the streams in the exact order the old
// single-threaded step would have performed the underlying operations
// (cores ascending, stage order within a core), link-slot allocation,
// event scheduling and the trace digest are bit-identical for any
// worker count — including worker count one, which runs the same two
// phases inline. DESIGN.md §"Two-phase stepping" documents the one
// deliberate semantic choice: cross-core effects become visible at the
// cycle boundary, never mid-cycle.

// pendKind tags one entry of a core's pending stream.
type pendKind uint8

const (
	pendLoad     pendKind = iota // mem.SubmitLoad
	pendStore                    // mem.SubmitStore
	pendCV                       // mem.SubmitCVWrite
	pendSwre                     // result value over the backward line
	pendStart                    // start pc over the forward link
	pendSignal                   // ending-hart signal over the forward link
	pendJoin                     // join address over the backward line
	pendForkNext                 // p_fn hart allocation on the next core
	pendFault                    // deterministic machine fault
	pendHalt                     // clean halt (exit, ebreak)
)

// pendItem is one deferred effect. The fields are a small union: a/b
// carry (addr, value), t the target core, h/u the issuing hart and
// instruction when the apply step must write back into them. Control
// messages (pendSwre/Start/Signal/Join) arrive pre-materialized: dc is
// the delivery client, built in phase A — where construction can run
// on a worker — so the serial phase-B merge only performs the
// link-slot allocation that must stay ordered. For pendForkNext, a
// holds 1 + the core's evbuf index of the placeholder fork event (0
// when tracing is off).
type pendItem struct {
	kind   pendKind
	w      mem.Width
	signed bool
	a, b   uint32
	t      uint32
	h      *hart
	u      *uop
	dc     mem.DoneClient
	msg    string
}

// emit records a trace event (phase A side of Machine.event). On a
// sharded cycle events go to the core's event buffer — pointer-free and
// an order of magnitude more frequent than actions, so a flat
// trace.Event slice keeps the hot path free of GC write barriers — and
// phase B drains the buffers in core order. Pending actions never reach
// the recorder at the current cycle (their callbacks fire during later
// Mem.Steps), so the drain reproduces the exact sequential emission
// order. On a serial cycle (seqTrace) the same order is the live order,
// and events fold straight into the recorder with no double handling —
// until a p_fn, whose fork event value only exists in phase B, flips
// the rest of the cycle onto the buffered path.
func (c *core) emit(kind trace.Kind, hartIdx int, value uint64) {
	if !c.m.tracing {
		return
	}
	e := trace.Event{
		Cycle: c.m.cycle, Core: uint16(c.idx), Hart: uint8(hartIdx),
		Kind: kind, Value: value,
	}
	if c.m.seqTrace {
		c.m.rec.Add(e)
		return
	}
	c.evbuf = append(c.evbuf, e)
}

// effect disposes of one phase-A effect. On a sharded cycle it always
// defers to the core's pending stream, replayed by phase B in core
// order. On a serial cycle (inlineFx) the cores already run in exactly
// that order, so the effect applies immediately — skipping the stream
// round-trip — with one exception: pendForkNext must still defer,
// because its hart allocation re-resolves against the target core's
// post-phase-A state. Once any item of the cycle has deferred, every
// later item defers too (m.deferred), so relative order within the
// stream — first fault wins, mem submissions FIFO — is preserved
// exactly. inlineFx is false on sharded cycles, settled before the
// workers start, so they never observe a true value or touch deferred.
func (c *core) effect(it pendItem) {
	m := c.m
	if m.inlineFx && !m.deferred {
		if it.kind != pendForkNext {
			m.applyItem(c, &it, m.cycle)
			return
		}
		m.deferred = true
	}
	c.pend = append(c.pend, it)
}

// faultf records a machine fault at its position in the stream, so that
// the first fault in (core, stage) order wins exactly as it did under
// sequential stepping. The message — identical to Machine.faultf's — is
// fully formatted here; the fault path is cold.
func (c *core) faultf(hartIdx int, format string, args ...any) {
	c.effect(pendItem{kind: pendFault, msg: fmt.Sprintf(
		"lbp: cycle %d core %d hart %d: %s",
		c.m.cycle, c.idx, hartIdx, fmt.Sprintf(format, args...))})
}

// deferHalt records a clean halt (p_ret exit identity, ecall/ebreak).
func (c *core) deferHalt(msg string) {
	c.effect(pendItem{kind: pendHalt, msg: msg})
}

// applyLanes is phase B: it replays the pending streams of the cycle's
// dirty cores — collected into per-shard commit lanes during phase A —
// in core-index order. It must run on the coordinating goroutine,
// after the phase-A barrier. The lanes exist so phase B is O(dirty
// cores), not O(active cores): on a 1024-core machine most cycles
// leave the vast majority of cores with empty streams, and walking
// them all serially per cycle dominates the host profile. The
// coordinator's lane holds the lowest core shard and the worker lanes
// follow in shard order, with each lane filled in iteration order over
// a contiguous ascending shard — so the concatenation is exactly
// ascending core order, and the merge is bit-identical to the full
// walk. (The per-core statistic counters are cumulative and folded
// into the totals once, by Machine.result — a per-cycle merge over 64
// cores is measurable.)
func (m *Machine) applyLanes(now uint64) {
	for _, c := range m.lane {
		m.applyCore(c, now)
	}
	m.lane = m.lane[:0]
	if p := m.pool; p != nil {
		for i := 0; i < p.n; i++ {
			for _, c := range p.lanes[i] {
				m.applyCore(c, now)
			}
			p.lanes[i] = p.lanes[i][:0]
		}
	}
}

// applyCore drains one lane entry: the core's pending stream, then its
// event buffer.
func (m *Machine) applyCore(c *core, now uint64) {
	if len(c.pend) > 0 {
		for i := range c.pend {
			m.applyItem(c, &c.pend[i], now)
		}
		// Release pointers so pooled uops and harts are not pinned,
		// then reuse the backing array next cycle.
		clear(c.pend)
		c.pend = c.pend[:0]
	}
	// Events drain after the actions so pendForkNext has patched its
	// placeholder; see the ordering argument on emit. evbuf is only
	// filled when tracing, which implies a recorder.
	if len(c.evbuf) > 0 {
		m.rec.AddBatch(c.evbuf)
		c.evbuf = c.evbuf[:0]
	}
}

// laneScan is the phase-A postlude for one core, shared by the serial
// path, the coordinator shard and the workers: fold the
// did-any-hart-commit flag into the caller's progress accumulator and
// enroll the core in a commit lane when it produced effects or events.
// It runs on the goroutine that stepped the core, so the committed
// reset stays data-race-free.
func laneScan(c *core, lane []*core, prog *bool) []*core {
	if c.committed {
		c.committed = false
		*prog = true
	}
	if len(c.pend) > 0 || len(c.evbuf) > 0 {
		lane = append(lane, c)
	}
	return lane
}

// applyItem performs one deferred effect. The mutations here are the
// exact statements the pre-two-phase pipeline executed inline, in the
// same order relative to each other.
func (m *Machine) applyItem(c *core, it *pendItem, now uint64) {
	switch it.kind {
	case pendLoad:
		// The hart's reusable load client was armed in phase A (execLoad):
		// the 1-deep result buffer guarantees at most one load in flight
		// per hart, so the slot was necessarily idle there.
		m.Mem.SubmitLoad(now, c.idx, it.a, it.w, it.signed, &it.h.ldc)
	case pendStore:
		m.Mem.SubmitStore(now, c.idx, it.a, it.b, it.w, &it.h.stc)
	case pendCV:
		m.Mem.SubmitCVWrite(now, c.idx, int(it.t), it.a, it.b, &it.h.stc)
	// The four control-message kinds carry their delivery client
	// pre-materialized from phase A; here only the ordered link-slot
	// allocation runs. The direction checks are mem-level invariants —
	// the issue sites already validated the targets in phase A.
	case pendSwre:
		if err := m.Mem.SendBackward(now, c.idx, int(it.t), it.dc); err != nil {
			m.faultf(c.idx, it.h.idx, "p_swre: %v", err)
		}
	case pendStart:
		if err := m.Mem.SendForward(now, c.idx, int(it.t), it.dc); err != nil {
			m.faultf(c.idx, it.h.idx, "start: %v", err)
		}
	case pendSignal:
		if err := m.Mem.SendForward(now, c.idx, int(it.t), it.dc); err != nil {
			m.faultf(c.idx, it.h.idx, "ending signal: %v", err)
		}
	case pendJoin:
		if err := m.Mem.SendBackward(now, c.idx, int(it.t), it.dc); err != nil {
			m.faultf(c.idx, it.h.idx, "join: %v", err)
		}
	case pendForkNext:
		// p_fn: the allocation happens here so the target core's own
		// phase A never races it; the result value is patched before the
		// earliest cycle writeback can read it.
		target := m.cores[c.idx+1]
		fh := target.freeHart()
		if fh == nil {
			// Drop the placeholder fork event: the sequential path emitted
			// none on this fault. At most one p_fn executes per core per
			// cycle, so no later item's index shifts.
			if it.a != 0 {
				c.evbuf = append(c.evbuf[:it.a-1], c.evbuf[it.a:]...)
			}
			m.faultf(c.idx, it.h.idx, "fork allocation raced (pc %#x)", it.u.pc)
			return
		}
		fh.allocate(&m.cfg, it.h.gid, now)
		it.u.value = fh.gid
		m.stats.Forks++
		if it.a != 0 {
			c.evbuf[it.a-1].Value = uint64(fh.gid)
		}
	case pendFault:
		if m.err == nil {
			m.err = faultError(it.msg)
		}
		m.exited = true
	case pendHalt:
		m.halt(it.msg)
	}
}

// ---- sharded phase-A worker pool --------------------------------------

// minShardCores is the smallest active-core count worth fanning out: a
// per-cycle channel barrier costs on the order of a microsecond, so tiny
// machines step inline even when -simworkers asks for more. The choice
// never affects results — phase A is embarrassingly parallel.
const minShardCores = 8

// stepPool runs phase A across persistent worker goroutines with a
// per-cycle start/finish barrier. Each worker owns a commit lane: the
// dirty cores of its shard, in shard (= ascending core) order, handed
// to the coordinator's phase-B merge at the barrier.
type stepPool struct {
	n     int            // worker goroutine count (excluding coordinator)
	start []chan uint64  // per-worker cycle kick
	act   []bool         // per-worker activity result
	prog  []bool         // per-worker did-any-hart-commit result
	shard [][]*core      // per-worker core slice, rebuilt with the active list
	lanes [][]*core      // per-worker commit lane, drained by applyLanes
	wg    sync.WaitGroup // per-cycle completion
	quit  chan struct{}
}

// newStepPool spawns workers-1 goroutines (the coordinator steps the
// first shard itself).
func newStepPool(workers int) *stepPool {
	p := &stepPool{
		n:     workers - 1,
		start: make([]chan uint64, workers-1),
		act:   make([]bool, workers-1),
		prog:  make([]bool, workers-1),
		shard: make([][]*core, workers-1),
		lanes: make([][]*core, workers-1),
		quit:  make(chan struct{}),
	}
	for i := 0; i < p.n; i++ {
		p.start[i] = make(chan uint64, 1)
		go p.worker(i)
	}
	return p
}

func (p *stepPool) worker(i int) {
	for {
		select {
		case now := <-p.start[i]:
			act, prog := false, false
			lane := p.lanes[i][:0]
			for _, c := range p.shard[i] {
				if c.stepCompute(now) {
					act = true
				}
				lane = laneScan(c, lane, &prog)
			}
			p.lanes[i] = lane
			p.act[i] = act
			p.prog[i] = prog
			p.wg.Done()
		case <-p.quit:
			return
		}
	}
}

func (p *stepPool) stop() { close(p.quit) }

// partition splits the active list into contiguous shards: shard 0 for
// the coordinator, shards 1..n for the workers. Shard boundaries have no
// observable effect — they only balance phase-A work.
func (p *stepPool) partition(active []*core) []*core {
	parts := p.n + 1
	per := (len(active) + parts - 1) / parts
	own := active[:per]
	rest := active[per:]
	for i := 0; i < p.n; i++ {
		k := per
		if k > len(rest) {
			k = len(rest)
		}
		p.shard[i] = rest[:k]
		rest = rest[k:]
	}
	return own
}

// stepParallel runs phase A for one cycle across the pool and reports
// whether any stage on any core did work. The coordinator steps the
// lowest shard into m.lane; worker lanes follow it in applyLanes, so
// the merged order is ascending core index.
func (p *stepPool) stepParallel(m *Machine, now uint64) bool {
	own := p.partition(m.active)
	p.wg.Add(p.n)
	for i := 0; i < p.n; i++ {
		p.start[i] <- now
	}
	activity, prog := false, false
	for _, c := range own {
		if c.stepCompute(now) {
			activity = true
		}
		m.lane = laneScan(c, m.lane, &prog)
	}
	p.wg.Wait()
	for i := 0; i < p.n; i++ {
		if p.act[i] {
			activity = true
		}
		if p.prog[i] {
			prog = true
		}
	}
	if prog {
		m.progress = now
	}
	return activity
}

// SetSimWorkers sets the host worker count for intra-run sharded
// stepping: 1 (the default) steps every core on the calling goroutine,
// n > 1 fans the compute phase across n host threads, n <= 0 selects
// GOMAXPROCS. Results, cycle counts, perf snapshots and trace digests
// are identical for every value. Must be called before Run.
func (m *Machine) SetSimWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	m.simWorkers = n
}

// SimWorkers reports the configured intra-run worker count.
func (m *Machine) SimWorkers() int {
	if m.simWorkers <= 0 {
		return 1
	}
	return m.simWorkers
}

// SetFastForward enables or disables idle-cycle fast-forward (on by
// default). Fast-forward never changes simulated cycle counts, stats,
// perf snapshots or digests; the switch exists for the equivalence
// tests and for timing-sensitive debugging.
func (m *Machine) SetFastForward(on bool) { m.fastFwd = on }

// ---- idle-cycle fast-forward ------------------------------------------

// Armed is an optional Device capability: NextArm returns the earliest
// future cycle at which the device will act on its own schedule (ok =
// false when it never will). Devices that only react to memory writes —
// which happen exclusively inside mem events — return (0, false).
// A device that does not implement Armed inhibits fast-forward entirely.
type Armed interface {
	NextArm(now uint64) (uint64, bool)
}

// nextWake computes the first cycle after now at which anything can
// happen: the earliest pending memory event, the earliest device arm
// time, or the earliest per-hart time gate (a produced pc becoming
// fetchable, a functional unit finishing). It is only meaningful on a
// cycle with zero pipeline activity — then every future state change is
// triggered by one of those three sources. Returns ok=false when a
// device without NextArm forbids skipping.
func (m *Machine) nextWake(now uint64) (uint64, bool) {
	const never = ^uint64(0)
	wake := never
	if ec, ok := m.Mem.NextEventCycle(); ok {
		wake = ec
	}
	for _, d := range m.devices {
		a, ok := d.(Armed)
		if !ok {
			return 0, false
		}
		if cyc, armed := a.NextArm(now); armed && cyc < wake {
			wake = cyc
		}
	}
	for _, c := range m.active {
		for _, h := range c.harts {
			if h.state != hartRunning {
				continue // allocated/waiting harts wake on queued messages
			}
			if h.pcValid && h.ib == nil && h.pcReadyCycle > now && h.pcReadyCycle < wake {
				wake = h.pcReadyCycle
			}
			if h.exec != nil && !h.exec.memWait && h.execReadyAt > now && h.execReadyAt < wake {
				wake = h.execReadyAt
			}
		}
	}
	return wake, true
}

// fastForward jumps the clock from a quiescent cycle `now` to just
// before the next cycle at which the machine can change state, bulk-
// crediting the skipped cycles to the stall-attribution counters so
// that attribution still sums to exactly 100% of hart-cycles. The jump
// is clamped so the Advance pause, the cycle-budget error and the
// livelock check all fire at exactly the cycle they would have under
// single-stepping.
func (m *Machine) fastForward(now, stop uint64) {
	wake, ok := m.nextWake(now)
	if !ok {
		return
	}
	target := wake
	if limit := stop + 1; target > limit {
		target = limit
	}
	if m.Mem.Drained() {
		// With no events in flight the livelock window is frozen; land on
		// the exact cycle the single-stepped run would have faulted at.
		if ll := m.progress + m.cfg.LivelockWindow + 1; target > ll {
			target = ll
		}
	}
	if target <= now+1 {
		return
	}
	skipped := target - now - 1
	if m.profiling {
		// classifyStall is a pure function of hart state, which is frozen
		// across the skipped span, so one classification per hart stands
		// for every skipped cycle.
		for _, h := range m.harts {
			h.perf.Stalls[classifyStall(h)] += skipped
		}
	}
	m.stats.FastForwarded += skipped
	m.cycle += skipped
}

// faultError adapts a preformatted phase-A fault message to the error
// the sequential faultf path produces.
type faultError string

func (e faultError) Error() string { return string(e) }
