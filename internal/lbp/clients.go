package lbp

import "repro/internal/trace"

// Typed memory-event payloads.
//
// Phase B hands these to the memory system instead of closures: each is
// a plain struct whose bodies are exactly the statements the former
// closures ran, and whose pointers the checkpoint layer (state.go) can
// flatten to stable identifiers — hart global number, ROB index — and
// rebuild on restore.

// loadClient completes a load: the bank value parks in v at service
// time, and delivery writes it back into the issuing uop.
type loadClient struct {
	h *hart
	u *uop
	v uint32
}

func (lc *loadClient) LoadValue(v uint32) { lc.v = v }

func (lc *loadClient) LoadDone(done uint64) {
	lc.u.value = lc.v
	lc.u.memWait = false
	lc.h.execReadyAt = done
	lc.h.inflightMem--
}

// storeClient acknowledges a store or continuation-value write back at
// the issuing hart.
type storeClient struct {
	h *hart
}

func (sc *storeClient) Done(uint64) { sc.h.inflightMem-- }

// swreMsg delivers a p_swre result value into the target hart's result
// buffer at the end of its backward-line traversal.
type swreMsg struct {
	m        *Machine
	fromCore int
	fromHart int
	tgt      uint32 // target hart global number
	idx      uint32 // result-buffer slot
	val      uint32
	pc       uint32 // sending instruction, for the overflow fault
}

func (s *swreMsg) Done(uint64) {
	th := s.m.harts[s.tgt]
	if !th.pushRemote(int(s.idx), s.val, s.m.cfg.RBDepth) {
		s.m.faultf(s.fromCore, s.fromHart,
			"p_swre overflowed result buffer %d of hart %d (pc %#x)", s.idx, s.tgt, s.pc)
	}
}

// startMsg delivers a start pc to an allocated hart (fork continuation).
type startMsg struct {
	m        *Machine
	fromCore int
	fromHart int
	tgt      uint32
	pc       uint32
}

func (s *startMsg) Done(done uint64) {
	m := s.m
	th := m.harts[s.tgt]
	if th.state != hartAllocated {
		m.faultf(s.fromCore, s.fromHart,
			"start for hart %d in state %d (not allocated)", s.tgt, th.state)
		return
	}
	th.start(s.pc, done)
	m.stats.Starts++
	m.event(trace.KindStart, th.core.idx, th.idx, uint64(s.pc))
}

// signalMsg delivers the ending-hart signal to the successor team member.
type signalMsg struct {
	m   *Machine
	tgt uint32
}

func (s *signalMsg) Done(uint64) {
	m := s.m
	th := m.harts[s.tgt]
	th.predSignal = true
	m.stats.Signals++
	m.event(trace.KindSignal, th.core.idx, th.idx, uint64(s.tgt))
}

// joinMsg delivers a join address backward to a waiting home hart.
type joinMsg struct {
	m        *Machine
	fromCore int
	fromHart int
	tgt      uint32
	addr     uint32
}

func (j *joinMsg) Done(done uint64) {
	m := j.m
	th := m.harts[j.tgt]
	if th.state != hartWaitJoin {
		m.faultf(j.fromCore, j.fromHart,
			"join for hart %d in state %d (not waiting)", j.tgt, th.state)
		return
	}
	th.start(j.addr, done)
	m.stats.Joins++
	m.event(trace.KindJoin, th.core.idx, th.idx, uint64(j.addr))
}
