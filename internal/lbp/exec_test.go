package lbp

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestALUComputeTable(t *testing.T) {
	cases := []struct {
		op       isa.Op
		s1, s2   uint32
		imm      int32
		pc, want uint32
	}{
		{isa.OpLUI, 0, 0, 0x12345000, 0, 0x12345000},
		{isa.OpAUIPC, 0, 0, 0x1000, 0x400, 0x1400},
		{isa.OpADDI, 5, 0, -3, 0, 2},
		{isa.OpADDI, 0xFFFFFFFF, 0, 1, 0, 0},
		{isa.OpSLTI, 0xFFFFFFFF, 0, 0, 0, 1},  // -1 < 0
		{isa.OpSLTIU, 0xFFFFFFFF, 0, 0, 0, 0}, // max uint not < 0
		{isa.OpXORI, 0b1100, 0, 0b1010, 0, 0b0110},
		{isa.OpORI, 0b1100, 0, 0b1010, 0, 0b1110},
		{isa.OpANDI, 0b1100, 0, 0b1010, 0, 0b1000},
		{isa.OpSLLI, 1, 0, 31, 0, 0x80000000},
		{isa.OpSRLI, 0x80000000, 0, 31, 0, 1},
		{isa.OpSRAI, 0x80000000, 0, 31, 0, 0xFFFFFFFF},
		{isa.OpADD, 7, 8, 0, 0, 15},
		{isa.OpSUB, 7, 8, 0, 0, 0xFFFFFFFF},
		{isa.OpSLL, 1, 35, 0, 0, 8}, // shift amount mod 32
		{isa.OpSLT, 0x80000000, 1, 0, 0, 1},
		{isa.OpSLTU, 0x80000000, 1, 0, 0, 0},
		{isa.OpXOR, 0xFF00, 0x0FF0, 0, 0, 0xF0F0},
		{isa.OpSRL, 0xF0, 4, 0, 0, 0xF},
		{isa.OpSRA, 0xFFFFFF00, 4, 0, 0, 0xFFFFFFF0},
		{isa.OpOR, 0xF0, 0x0F, 0, 0, 0xFF},
		{isa.OpAND, 0xF0, 0xFF, 0, 0, 0xF0},
		{isa.OpMUL, 1000, 1000, 0, 0, 1000000},
		{isa.OpMUL, 0xFFFFFFFF, 2, 0, 0, 0xFFFFFFFE}, // -1*2
		{isa.OpMULH, 0x80000000, 0x80000000, 0, 0, 0x40000000},
		{isa.OpMULHU, 0xFFFFFFFF, 0xFFFFFFFF, 0, 0, 0xFFFFFFFE},
		{isa.OpMULHSU, 0xFFFFFFFF, 0xFFFFFFFF, 0, 0, 0xFFFFFFFF},
		{isa.OpDIV, 100, 7, 0, 0, 14},
		{isa.OpDIV, 0xFFFFFF9C, 7, 0, 0, 0xFFFFFFF2}, // -100/7 = -14
		{isa.OpDIV, 5, 0, 0, 0, 0xFFFFFFFF},          // div by zero
		{isa.OpDIV, 0x80000000, 0xFFFFFFFF, 0, 0, 0x80000000},
		{isa.OpDIVU, 0xFFFFFFFF, 2, 0, 0, 0x7FFFFFFF},
		{isa.OpDIVU, 5, 0, 0, 0, 0xFFFFFFFF},
		{isa.OpREM, 100, 7, 0, 0, 2},
		{isa.OpREM, 0xFFFFFF9C, 7, 0, 0, 0xFFFFFFFE}, // -100%7 = -2
		{isa.OpREM, 5, 0, 0, 0, 5},
		{isa.OpREM, 0x80000000, 0xFFFFFFFF, 0, 0, 0},
		{isa.OpREMU, 7, 0, 0, 0, 7},
		{isa.OpREMU, 0xFFFFFFFF, 10, 0, 0, 5},
	}
	for _, c := range cases {
		in := isa.Inst{Op: c.op, Imm: c.imm}
		if got := aluCompute(&in, c.s1, c.s2, c.pc); got != c.want {
			t.Errorf("%v(%#x, %#x, imm=%d) = %#x, want %#x",
				c.op, c.s1, c.s2, c.imm, got, c.want)
		}
	}
}

func TestBranchTakenTable(t *testing.T) {
	cases := []struct {
		op     isa.Op
		s1, s2 uint32
		want   bool
	}{
		{isa.OpBEQ, 5, 5, true},
		{isa.OpBEQ, 5, 6, false},
		{isa.OpBNE, 5, 6, true},
		{isa.OpBNE, 5, 5, false},
		{isa.OpBLT, 0xFFFFFFFF, 0, true}, // -1 < 0
		{isa.OpBLT, 0, 0xFFFFFFFF, false},
		{isa.OpBGE, 0, 0xFFFFFFFF, true},
		{isa.OpBGE, 5, 5, true},
		{isa.OpBLTU, 0, 0xFFFFFFFF, true},
		{isa.OpBLTU, 0xFFFFFFFF, 0, false},
		{isa.OpBGEU, 0xFFFFFFFF, 0, true},
		{isa.OpBGEU, 7, 7, true},
	}
	for _, c := range cases {
		if got := branchTaken(c.op, c.s1, c.s2); got != c.want {
			t.Errorf("branchTaken(%v, %#x, %#x) = %v", c.op, c.s1, c.s2, got)
		}
	}
}

// Property: DIV/REM respect the RISC-V identity dividend = q*d + r for
// every non-overflow case.
func TestQuickDivRemIdentity(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 || (a == -1<<31 && b == -1) {
			return true
		}
		dIn := isa.Inst{Op: isa.OpDIV}
		rIn := isa.Inst{Op: isa.OpREM}
		q := int32(aluCompute(&dIn, uint32(a), uint32(b), 0))
		r := int32(aluCompute(&rIn, uint32(a), uint32(b), 0))
		return q*b+r == a && (r == 0 || (r < 0) == (a < 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MULH:MUL forms the full 64-bit signed product.
func TestQuickMulhMulIdentity(t *testing.T) {
	f := func(a, b int32) bool {
		lo := isa.Inst{Op: isa.OpMUL}
		hi := isa.Inst{Op: isa.OpMULH}
		l := aluCompute(&lo, uint32(a), uint32(b), 0)
		h := aluCompute(&hi, uint32(a), uint32(b), 0)
		full := int64(a) * int64(b)
		return uint64(full) == uint64(h)<<32|uint64(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyOf(t *testing.T) {
	m := New(DefaultConfig(1))
	if m.latencyOf(isa.OpADD) != 1 {
		t.Errorf("ALU latency = %d", m.latencyOf(isa.OpADD))
	}
	if m.latencyOf(isa.OpMUL) != 3 {
		t.Errorf("MUL latency = %d", m.latencyOf(isa.OpMUL))
	}
	if m.latencyOf(isa.OpDIV) != 17 {
		t.Errorf("DIV latency = %d", m.latencyOf(isa.OpDIV))
	}
}

func TestMemWidth(t *testing.T) {
	cases := map[isa.Op]struct {
		w      memWidthT
		signed bool
	}{
		isa.OpLB:  {widthByte, true},
		isa.OpLBU: {widthByte, false},
		isa.OpLH:  {widthHalf, true},
		isa.OpLHU: {widthHalf, false},
		isa.OpLW:  {widthWord, false},
		isa.OpSB:  {widthByte, false},
		isa.OpSH:  {widthHalf, false},
		isa.OpSW:  {widthWord, false},
	}
	for op, want := range cases {
		w, s := memWidth(op)
		if w != want.w || s != want.signed {
			t.Errorf("memWidth(%v) = %d,%v", op, w, s)
		}
	}
}
