package lbp

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// X_PAR semantics: hart allocation (p_fc/p_fn), identity manipulation
// (p_set/p_merge), continuation-value transmission (p_swcv), inter-team
// result transmission (p_swre/p_lwre), and the p_ret ending protocol with
// its four ending types (Figure 6 of the paper). Each instruction is its
// own execTab entry (exec.go).

// resolveLink extracts the hart designated for forward-direction actions
// (fork continuation, continuation values): the link field of an identity
// word, or the raw hart number as returned by p_fc/p_fn.
func resolveLink(v uint32) uint32 {
	if v&isa.HartIDValid != 0 {
		return isa.LinkHart(v)
	}
	return v
}

// resolveHome extracts the hart designated for backward-direction actions
// (p_swre result sends): the home field of an identity word, or the raw
// hart number.
func resolveHome(v uint32) uint32 {
	if v&isa.HartIDValid != 0 {
		return isa.HomeHart(v)
	}
	return v
}

// freeHart returns the lowest-numbered free hart of the core, or nil.
func (c *core) freeHart() *hart {
	return c.freeHartAfter(-1)
}

// freeHartAfter returns the first free hart with index > after, wrapping
// to the lowest free hart if none. Allocating "after" the forking hart
// keeps team placement canonical (member t on hart t%4 of core t/4) even
// when earlier members have already ended and freed their harts.
func (c *core) freeHartAfter(after int) *hart {
	for i := after + 1; i < HartsPerCore; i++ {
		if c.harts[i].state == hartFree {
			return c.harts[i]
		}
	}
	for i := 0; i <= after && i < HartsPerCore; i++ {
		if c.harts[i].state == hartFree {
			return c.harts[i]
		}
	}
	return nil
}

// execPFC performs a same-core fork: the allocation is core-local, so it
// happens in phase A like every other own-state mutation.
func (c *core) execPFC(h *hart, u *uop, now uint64) {
	fh := c.freeHartAfter(h.idx)
	if fh == nil {
		// canIssue guarantees availability
		c.faultf(h.idx, "fork allocation raced (pc %#x)", u.pc)
		return
	}
	fh.allocate(&c.m.cfg, h.gid, now)
	u.value = fh.gid
	c.statForks++
	c.emit(trace.KindFork, h.idx, uint64(fh.gid))
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

// execPFN performs a next-core fork: the allocation mutates the neighbor,
// so it is deferred to phase B, which re-resolves the free hart in core
// order and patches u.value before writeback can read it. The fork
// event's value (the new gid) is unknown until then, so a placeholder is
// reserved at the event's sequential position and patched by the same
// item.
func (c *core) execPFN(h *hart, u *uop, now uint64) {
	if c.idx+1 >= len(c.m.cores) {
		c.faultf(h.idx, "p_fn past the last core (pc %#x)", u.pc)
		return
	}
	var evIdx uint32
	if c.m.tracing {
		if c.m.seqTrace {
			// Serial cycles fold events live; from here to the cycle
			// boundary they must buffer instead, so the placeholder can
			// be patched before it reaches the digest. (Read-guarded:
			// on sharded cycles the flag is already false and workers
			// only read it.)
			c.m.seqTrace = false
		}
		c.emit(trace.KindFork, h.idx, 0)
		evIdx = uint32(len(c.evbuf))
	}
	c.effect(pendItem{kind: pendForkNext, h: h, u: u, a: evIdx})
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

func execPSET(c *core, h *hart, u *uop, now uint64) {
	u.value = isa.PSet(u.src1, h.gid)
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

func execPMERGE(c *core, h *hart, u *uop, now uint64) {
	u.value = isa.PMerge(u.src1, u.src2)
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

func (c *core) execPLWRE(h *hart, u *uop, now uint64) {
	v, ok := h.popRemote(int(u.d.Inst.Imm))
	if !ok {
		c.faultf(h.idx, "p_lwre from empty result buffer %d (pc %#x)", u.d.Inst.Imm, u.pc)
		return
	}
	u.value = v
	c.emit(trace.KindRecv, h.idx, uint64(v))
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

// execSwcv stores a continuation value on the stack of the designated
// hart (same or next core), through the forward link and the target
// core's local bank port.
func (c *core) execSwcv(h *hart, u *uop, now uint64) {
	tgt := resolveLink(u.src1)
	th := c.m.Hart(tgt)
	if th == nil {
		c.faultf(h.idx, "p_swcv to nonexistent hart %d (pc %#x)", tgt, u.pc)
		return
	}
	tc := th.core.idx
	if tc != c.idx && tc != c.idx+1 {
		c.faultf(h.idx, "p_swcv target hart %d is not on the same or next core (pc %#x)", tgt, u.pc)
		return
	}
	addr := c.m.cfg.SPInit(th.idx) + uint32(u.d.Inst.Imm)
	h.inflightMem++
	if !c.m.Mem.LocalMapped(addr) {
		c.faultf(h.idx, "p_swcv to unmapped stack address %#x (pc %#x)", addr, u.pc)
		return
	}
	c.effect(pendItem{kind: pendCV, h: h, t: uint32(tc), a: addr, b: u.src2})
	u.done = true
}

// execSwre sends a result value to a prior hart's result buffer over the
// backward line.
func (c *core) execSwre(h *hart, u *uop, now uint64) {
	tgt := resolveHome(u.src1)
	th := c.m.Hart(tgt)
	if th == nil {
		c.faultf(h.idx, "p_swre to nonexistent hart %d (pc %#x)", tgt, u.pc)
		return
	}
	if th.core.idx > c.idx {
		c.faultf(h.idx, "p_swre target hart %d is on a later core (pc %#x)", tgt, u.pc)
		return
	}
	// The delivery client materializes here, in phase A, so the serial
	// phase-B merge only allocates the backward-line slots.
	c.effect(pendItem{kind: pendSwre, h: h, t: uint32(th.core.idx),
		dc: &swreMsg{m: c.m, fromCore: c.idx, fromHart: h.idx,
			tgt: tgt, idx: uint32(u.d.Inst.Imm), val: u.src2, pc: u.pc}})
	c.statSends++
	c.emit(trace.KindSend, h.idx, uint64(u.src2))
	u.done = true
}

// sendStart delivers a start pc to an allocated hart (fork continuation).
// The validation runs in phase A; the forward-link traversal is deferred.
func (c *core) sendStart(h *hart, tgt uint32, pc uint32) {
	th := c.m.Hart(tgt)
	if th == nil {
		c.faultf(h.idx, "start for nonexistent hart %d", tgt)
		return
	}
	tc := th.core.idx
	if tc != c.idx && tc != c.idx+1 {
		c.faultf(h.idx, "start target hart %d is not on the same or next core", tgt)
		return
	}
	c.effect(pendItem{kind: pendStart, h: h, t: uint32(tc),
		dc: &startMsg{m: c.m, fromCore: c.idx, fromHart: h.idx, tgt: tgt, pc: pc}})
}

// doRet performs the four ending types of a committed p_ret (Figure 6):
//
//  1. ra == 0 and t0 designates another hart: the hart ends (frees).
//  2. ra == 0 and t0 designates this hart: wait for a join address.
//  3. ra == 0 and t0 == -1: the whole machine exits.
//  4. ra != 0: send ra to the t0 home hart, which resumes fetching there.
//
// All types forward the ending-hart signal to the link hart, realizing
// the in-order hardware barrier between team members.
func (c *core) doRet(h *hart, u *uop, now uint64) {
	ra, t0 := u.retRA, u.retT0
	if h.hasPred {
		h.hasPred = false
		h.predSignal = false
	}
	if ra == 0 && t0 == 0xFFFFFFFF {
		c.deferHalt("exit")
		return
	}
	valid := t0&isa.HartIDValid != 0
	home, link := uint32(0), uint32(isa.NoLink)
	if valid {
		home, link = isa.HomeHart(t0), isa.LinkHart(t0)
	}
	self := h.gid
	if valid && link != isa.NoLink && link != self {
		c.sendSignal(h, link)
	}
	switch {
	case ra == 0 && valid && home == self:
		// ending type 2: keep the hart, waiting for a join address
		h.setState(hartWaitJoin)
		h.pcValid = false
	case ra == 0:
		// ending type 1
		h.free(now)
	case valid && home == self:
		// ending type 4, join to self: resume at ra on the same hart
		h.pc = ra
		h.pcValid = true
		h.pcReadyCycle = now + 1
	case valid:
		// ending type 4: send the join address backward to the home hart
		c.sendJoin(h, home, ra)
		h.free(now)
	default:
		c.faultf(h.idx, "p_ret with ra=%#x but invalid identity t0=%#x (pc %#x)", ra, t0, u.pc)
	}
}

// sendSignal forwards the ending-hart signal to the successor team member.
func (c *core) sendSignal(h *hart, link uint32) {
	th := c.m.Hart(link)
	if th == nil {
		c.faultf(h.idx, "ending signal to nonexistent hart %d", link)
		return
	}
	tc := th.core.idx
	if tc != c.idx && tc != c.idx+1 {
		c.faultf(h.idx, "ending signal target hart %d is not on the same or next core", link)
		return
	}
	c.effect(pendItem{kind: pendSignal, h: h, t: uint32(tc),
		dc: &signalMsg{m: c.m, tgt: link}})
}

// sendJoin delivers a join address backward to the home hart.
func (c *core) sendJoin(h *hart, home uint32, addr uint32) {
	th := c.m.Hart(home)
	if th == nil {
		c.faultf(h.idx, "join to nonexistent hart %d", home)
		return
	}
	if th.core.idx > c.idx {
		c.faultf(h.idx, "join target hart %d is on a later core (a data cannot go back in time)", home)
		return
	}
	c.effect(pendItem{kind: pendJoin, h: h, t: uint32(th.core.idx),
		dc: &joinMsg{m: c.m, fromCore: c.idx, fromHart: h.idx, tgt: home, addr: addr}})
}
