package lbp

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// X_PAR semantics: hart allocation (p_fc/p_fn), identity manipulation
// (p_set/p_merge), continuation-value transmission (p_swcv), inter-team
// result transmission (p_swre/p_lwre), and the p_ret ending protocol with
// its four ending types (Figure 6 of the paper).

// resolveLink extracts the hart designated for forward-direction actions
// (fork continuation, continuation values): the link field of an identity
// word, or the raw hart number as returned by p_fc/p_fn.
func resolveLink(v uint32) uint32 {
	if v&isa.HartIDValid != 0 {
		return isa.LinkHart(v)
	}
	return v
}

// resolveHome extracts the hart designated for backward-direction actions
// (p_swre result sends): the home field of an identity word, or the raw
// hart number.
func resolveHome(v uint32) uint32 {
	if v&isa.HartIDValid != 0 {
		return isa.HomeHart(v)
	}
	return v
}

// freeHart returns the lowest-numbered free hart of the core, or nil.
func (c *core) freeHart() *hart {
	return c.freeHartAfter(-1)
}

// freeHartAfter returns the first free hart with index > after, wrapping
// to the lowest free hart if none. Allocating "after" the forking hart
// keeps team placement canonical (member t on hart t%4 of core t/4) even
// when earlier members have already ended and freed their harts.
func (c *core) freeHartAfter(after int) *hart {
	for i := after + 1; i < HartsPerCore; i++ {
		if c.harts[i].state == hartFree {
			return c.harts[i]
		}
	}
	for i := 0; i <= after && i < HartsPerCore; i++ {
		if c.harts[i].state == hartFree {
			return c.harts[i]
		}
	}
	return nil
}

// execXPar runs the non-memory X_PAR instructions at issue.
func (c *core) execXPar(h *hart, u *uop, now uint64) {
	in := &u.inst
	lat := now + uint64(c.m.cfg.ALULat)
	switch in.Op {
	case isa.OpPFC, isa.OpPFN:
		target := c
		if in.Op == isa.OpPFN {
			if c.idx+1 >= len(c.m.cores) {
				c.m.faultf(c.idx, h.idx, "p_fn past the last core (pc %#x)", u.pc)
				return
			}
			target = c.m.cores[c.idx+1]
		}
		var fh *hart
		if in.Op == isa.OpPFC {
			fh = target.freeHartAfter(h.idx)
		} else {
			fh = target.freeHart()
		}
		if fh == nil {
			// canIssue guarantees availability
			c.m.faultf(c.idx, h.idx, "fork allocation raced (pc %#x)", u.pc)
			return
		}
		fh.allocate(&c.m.cfg, h.gid, now)
		u.value = fh.gid
		c.m.stats.Forks++
		c.m.event(trace.KindFork, c.idx, h.idx, uint64(fh.gid))
		c.startExec(h, u, lat)
	case isa.OpPSET:
		u.value = isa.PSet(u.src1, h.gid)
		c.startExec(h, u, lat)
	case isa.OpPMERGE:
		u.value = isa.PMerge(u.src1, u.src2)
		c.startExec(h, u, lat)
	case isa.OpPLWRE:
		v, ok := h.popRemote(int(in.Imm))
		if !ok {
			c.m.faultf(c.idx, h.idx, "p_lwre from empty result buffer %d (pc %#x)", in.Imm, u.pc)
			return
		}
		u.value = v
		c.m.event(trace.KindRecv, c.idx, h.idx, uint64(v))
		c.startExec(h, u, lat)
	default:
		c.m.faultf(c.idx, h.idx, "unhandled X_PAR op %v (pc %#x)", in.Op, u.pc)
	}
}

// execSwcv stores a continuation value on the stack of the designated
// hart (same or next core), through the forward link and the target
// core's local bank port.
func (c *core) execSwcv(h *hart, u *uop, now uint64) {
	tgt := resolveLink(u.src1)
	th := c.m.Hart(tgt)
	if th == nil {
		c.m.faultf(c.idx, h.idx, "p_swcv to nonexistent hart %d (pc %#x)", tgt, u.pc)
		return
	}
	tc := th.core.idx
	if tc != c.idx && tc != c.idx+1 {
		c.m.faultf(c.idx, h.idx, "p_swcv target hart %d is not on the same or next core (pc %#x)", tgt, u.pc)
		return
	}
	addr := c.m.cfg.SPInit(th.idx) + uint32(u.inst.Imm)
	h.inflightMem++
	ok := c.m.Mem.SubmitCVWrite(now, c.idx, tc, addr, u.src2,
		func(done uint64) { h.inflightMem-- })
	if !ok {
		c.m.faultf(c.idx, h.idx, "p_swcv to unmapped stack address %#x (pc %#x)", addr, u.pc)
		return
	}
	u.done = true
}

// execSwre sends a result value to a prior hart's result buffer over the
// backward line.
func (c *core) execSwre(h *hart, u *uop, now uint64) {
	tgt := resolveHome(u.src1)
	th := c.m.Hart(tgt)
	if th == nil {
		c.m.faultf(c.idx, h.idx, "p_swre to nonexistent hart %d (pc %#x)", tgt, u.pc)
		return
	}
	tc := th.core.idx
	if tc > c.idx {
		c.m.faultf(c.idx, h.idx, "p_swre target hart %d is on a later core (pc %#x)", tgt, u.pc)
		return
	}
	idx := int(u.inst.Imm)
	val := u.src2
	pc := u.pc
	hidx := h.idx
	err := c.m.Mem.SendBackward(now, c.idx, tc, func(done uint64) {
		if !th.pushRemote(idx, val, c.m.cfg.RBDepth) {
			c.m.faultf(c.idx, hidx, "p_swre overflowed result buffer %d of hart %d (pc %#x)", idx, tgt, pc)
		}
	})
	if err != nil {
		c.m.faultf(c.idx, h.idx, "p_swre: %v", err)
		return
	}
	c.m.stats.RemoteSends++
	c.m.event(trace.KindSend, c.idx, h.idx, uint64(val))
	u.done = true
}

// sendStart delivers a start pc to an allocated hart (fork continuation).
func (c *core) sendStart(h *hart, tgt uint32, pc uint32, now uint64) {
	th := c.m.Hart(tgt)
	if th == nil {
		c.m.faultf(c.idx, h.idx, "start for nonexistent hart %d", tgt)
		return
	}
	tc := th.core.idx
	if tc != c.idx && tc != c.idx+1 {
		c.m.faultf(c.idx, h.idx, "start target hart %d is not on the same or next core", tgt)
		return
	}
	hidx := h.idx
	err := c.m.Mem.SendForward(now, c.idx, tc, func(done uint64) {
		if th.state != hartAllocated {
			c.m.faultf(c.idx, hidx, "start for hart %d in state %d (not allocated)", tgt, th.state)
			return
		}
		th.start(pc, done)
		c.m.stats.Starts++
		c.m.event(trace.KindStart, tc, th.idx, uint64(pc))
	})
	if err != nil {
		c.m.faultf(c.idx, h.idx, "start: %v", err)
	}
}

// doRet performs the four ending types of a committed p_ret (Figure 6):
//
//  1. ra == 0 and t0 designates another hart: the hart ends (frees).
//  2. ra == 0 and t0 designates this hart: wait for a join address.
//  3. ra == 0 and t0 == -1: the whole machine exits.
//  4. ra != 0: send ra to the t0 home hart, which resumes fetching there.
//
// All types forward the ending-hart signal to the link hart, realizing
// the in-order hardware barrier between team members.
func (m *Machine) doRet(h *hart, u *uop, now uint64) {
	ra, t0 := u.retRA, u.retT0
	if h.hasPred {
		h.hasPred = false
		h.predSignal = false
	}
	if ra == 0 && t0 == 0xFFFFFFFF {
		m.halt("exit")
		return
	}
	valid := t0&isa.HartIDValid != 0
	home, link := uint32(0), uint32(isa.NoLink)
	if valid {
		home, link = isa.HomeHart(t0), isa.LinkHart(t0)
	}
	self := h.gid
	if valid && link != isa.NoLink && link != self {
		m.sendSignal(h, link, now)
	}
	switch {
	case ra == 0 && valid && home == self:
		// ending type 2: keep the hart, waiting for a join address
		h.setState(hartWaitJoin)
		h.pcValid = false
	case ra == 0:
		// ending type 1
		h.free(now)
	case valid && home == self:
		// ending type 4, join to self: resume at ra on the same hart
		h.pc = ra
		h.pcValid = true
		h.pcReadyCycle = now + 1
	case valid:
		// ending type 4: send the join address backward to the home hart
		m.sendJoin(h, home, ra, now)
		h.free(now)
	default:
		m.faultf(h.core.idx, h.idx, "p_ret with ra=%#x but invalid identity t0=%#x (pc %#x)", ra, t0, u.pc)
	}
}

// sendSignal forwards the ending-hart signal to the successor team member.
func (m *Machine) sendSignal(h *hart, link uint32, now uint64) {
	th := m.Hart(link)
	if th == nil {
		m.faultf(h.core.idx, h.idx, "ending signal to nonexistent hart %d", link)
		return
	}
	fc, tc := h.core.idx, th.core.idx
	if tc != fc && tc != fc+1 {
		m.faultf(h.core.idx, h.idx, "ending signal target hart %d is not on the same or next core", link)
		return
	}
	err := m.Mem.SendForward(now, fc, tc, func(done uint64) {
		th.predSignal = true
		m.stats.Signals++
		m.event(trace.KindSignal, tc, th.idx, uint64(link))
	})
	if err != nil {
		m.faultf(h.core.idx, h.idx, "ending signal: %v", err)
	}
}

// sendJoin delivers a join address backward to the home hart.
func (m *Machine) sendJoin(h *hart, home uint32, addr uint32, now uint64) {
	th := m.Hart(home)
	if th == nil {
		m.faultf(h.core.idx, h.idx, "join to nonexistent hart %d", home)
		return
	}
	fc, tc := h.core.idx, th.core.idx
	if tc > fc {
		m.faultf(h.core.idx, h.idx, "join target hart %d is on a later core (a data cannot go back in time)", home)
		return
	}
	hidx := h.idx
	err := m.Mem.SendBackward(now, fc, tc, func(done uint64) {
		if th.state != hartWaitJoin {
			m.faultf(fc, hidx, "join for hart %d in state %d (not waiting)", home, th.state)
			return
		}
		th.start(addr, done)
		m.stats.Joins++
		m.event(trace.KindJoin, tc, th.idx, uint64(addr))
	})
	if err != nil {
		m.faultf(h.core.idx, h.idx, "join: %v", err)
	}
}
