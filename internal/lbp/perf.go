package lbp

import (
	"repro/internal/isa"
	"repro/internal/perf"
)

// Deterministic profiling. The pipeline stages maintain stage-occupancy,
// commit and retired-mix counters unconditionally (plain increments,
// no timing feedback); EnableProfiling additionally turns on the
// per-cycle stall-attribution walk, which classifies every hart-cycle
// that did not commit into exactly one perf.StallCause. The accounting is
// therefore exact: CommitCycles + sum(StallCycles) == Cycles * NumHarts.

// EnableProfiling turns on per-cycle stall attribution. It must be called
// before Run; profiling never changes a run's cycle count, results or
// event-trace digest.
func (m *Machine) EnableProfiling() {
	m.profiling = true
	m.tick = m.profTick
}

// Profiling reports whether stall attribution is enabled.
func (m *Machine) Profiling() bool { return m.profiling }

// PerfSnapshot aggregates the counters of a (finished or running) run.
// It returns nil unless EnableProfiling was called — without the per-cycle
// walk the stall attribution would be empty and the snapshot misleading.
func (m *Machine) PerfSnapshot() *perf.Snapshot {
	if !m.profiling {
		return nil
	}
	return perf.Build(m.cycle, HartsPerCore, m.hperf, m.cperf, &m.Mem.Perf)
}

// profTick attributes the current cycle of every hart (free harts
// included — an idle machine is itself a finding) to a stall cause.
// It runs after the pipeline stages, so a hart whose commit stage retired
// an instruction this cycle is counted as committing, not stalled.
func (m *Machine) profTick(now uint64) {
	for _, h := range m.harts {
		if h.lastCommit == now {
			continue // counted by Commits at the commit stage
		}
		h.perf.Stalls[classifyStall(h)]++
	}
}

// classifyStall names the reason a hart did not commit this cycle. The
// priority order mirrors the pipeline's own gating: lifecycle states
// first, then the oldest in-flight instruction's blockers, then the
// fetch-side conditions for an empty pipeline.
func classifyStall(h *hart) perf.StallCause {
	switch h.state {
	case hartFree:
		return perf.StallHartFree
	case hartAllocated:
		// fork issued, start pc still in flight on the forward link
		return perf.StallFork
	case hartWaitJoin:
		return perf.StallJoin
	}
	if h.exec != nil && h.exec.memWait {
		return perf.StallMem
	}
	if h.robN > 0 {
		u := h.robFront()
		switch {
		case u.done:
			if u.isRet {
				// p_ret commit gating (the hardware barrier)
				if h.hasPred && !h.predSignal {
					return perf.StallJoin
				}
				if h.inflightMem > 0 {
					return perf.StallMem
				}
			}
			// completed, waiting for the commit slot
			return perf.StallPipeline
		case !u.issued:
			if !u.ready() {
				return perf.StallOperand
			}
			switch u.d.Inst.Op {
			case isa.OpPFC, isa.OpPFN:
				return perf.StallFork // no free hart to fork onto
			case isa.OpPLWRE:
				return perf.StallOperand // p_swre result not yet arrived
			}
			if u.needsRB && h.exec != nil {
				return perf.StallPipeline // 1-deep result buffer occupied
			}
			if u.d.Cls == isa.ClassLoad || u.d.Cls == isa.ClassStore {
				// held by the per-hart memory issue order
				return perf.StallMem
			}
			return perf.StallPipeline // issue-slot contention
		default:
			// issued, executing (functional-unit latency)
			return perf.StallPipeline
		}
	}
	if h.ib != nil {
		return perf.StallPipeline // waiting for the rename slot
	}
	if h.syncmWait && h.inflightMem > 0 {
		return perf.StallMem
	}
	// pipeline empty: waiting for the next pc or the fetch slot
	return perf.StallFetch
}
