package lbp_test

// Host-side microbenchmarks of the simulator hot path. They measure
// exactly what the benchdiff throughput gate measures — simulated cycles
// per host second inside Machine.Run — on the fig-19 workloads, plus the
// raw stepping rate of a single machine. Run them with
//
//	go test -bench 'MachineStep|FigRow' -run @ ./internal/lbp
//
// (scripts/verify.sh -bench N runs them alongside the benchdiff gate).

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// benchSession builds a fig-19 session (digest tracing on, like the
// benchdiff rows) for one matmul variant at h harts.
func benchSession(v workloads.MatmulVariant, h int) (*sim.Session, error) {
	prog, err := workloads.BuildMatmul(v, h)
	if err != nil {
		return nil, err
	}
	cfg := workloads.MatmulConfig(h)
	return sim.New(sim.Spec{
		Program:   prog,
		Config:    &cfg,
		MaxCycles: workloads.MaxMatmulCycles(h),
		Trace:     sim.TraceSpec{Digest: true},
	})
}

// BenchmarkMachineStep measures the raw cycle-stepping rate: one warm
// machine, reset and re-run per iteration, reporting simulated cycles
// per second. This is the per-retire hot path (fetch through commit plus
// the trace digest) with no per-run build cost.
func BenchmarkMachineStep(b *testing.B) {
	prog, err := workloads.BuildMatmul(workloads.Base, 16)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := benchSession(workloads.Base, 16)
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
		b.StopTimer()
		if err := sess.Reset(prog); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkFigRow measures each fig-19 row end to end on a warm pool
// machine — the same measurement the BENCH_fig19.json throughput field
// records — reporting simulated cycles per second per variant.
func BenchmarkFigRow(b *testing.B) {
	for _, v := range workloads.Variants {
		b.Run(string(v), func(b *testing.B) {
			prog, err := workloads.BuildMatmul(v, 16)
			if err != nil {
				b.Fatal(err)
			}
			cfg := workloads.MatmulConfig(16)
			var pool sim.Pool
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess, err := pool.Get(sim.Spec{
					Program:   prog,
					Config:    &cfg,
					MaxCycles: workloads.MaxMatmulCycles(16),
					Trace:     sim.TraceSpec{Digest: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sess.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
				pool.Put(sess)
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkPhaseBCommit measures the commit-lane merge on a message-
// dense workload: the placed set/get program at 256 cores, where every
// hart forks, sends and joins, so phase B replays a pending item on
// most cores most cycles. The serial sub-benchmark drives the single
// coordinator lane (inline effects, lane replay); the sharded ones add
// per-worker lane pre-materialization and the deterministic core-order
// merge. Digests are identical across all three — only the host
// throughput moves.
func BenchmarkPhaseBCommit(b *testing.B) {
	src := `
#define H 1024
#define CHUNK 16
#define RESW 128

int *vchunk(int t) { return lbp_bank_ptr(t >> 2) + RESW + (t & 3) * CHUNK; }

void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < H; t++) {
		int *p; int i;
		p = vchunk(t);
		for (i = 0; i < CHUNK; i++) { *p = t + i; p = p + 1; }
	}
	#pragma omp parallel for
	for (t = 0; t < H; t++) {
		int *p; int i; int acc;
		p = vchunk(t);
		acc = 0;
		for (i = 0; i < CHUNK; i++) { acc = acc + *p; p = p + 1; }
		*vchunk(t) = acc;
	}
}
`
	opt := cc.DefaultOptions()
	opt.Cores = 256
	opt.BankReserveBytes = 512
	asmText, err := cc.BuildProgram(src, opt)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"lanes-2w", 2},
		{"lanes-4w", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sess, err := sim.New(sim.Spec{
				Program:    prog,
				Cores:      256,
				MaxCycles:  50_000_000,
				Trace:      sim.TraceSpec{Digest: true},
				SimWorkers: bc.workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			var digest uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sess.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
				d := sess.Recorder().Digest()
				if digest == 0 {
					digest = d
				} else if d != digest {
					b.Fatalf("digest drifted: %#x != %#x", d, digest)
				}
				b.StopTimer()
				if err := sess.Reset(prog); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// sanity: the bench sessions run and produce a nonempty digest trace.
func TestBenchSessionRuns(t *testing.T) {
	sess, err := benchSession(workloads.Base, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles == 0 || res.Stats.Retired == 0 {
		t.Fatalf("empty run: %+v", res.Stats)
	}
	if sess.Recorder().Count() == 0 {
		t.Fatal("no trace events recorded")
	}
}
