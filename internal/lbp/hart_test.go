package lbp

import "testing"

// Unit tests of the hart-internal structures.

func newTestHart() (*Machine, *hart) {
	m := New(DefaultConfig(1))
	return m, m.harts[1]
}

func TestRemoteRBFIFO(t *testing.T) {
	_, h := newTestHart()
	for i := uint32(0); i < 5; i++ {
		if !h.pushRemote(0, 100+i, 8) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := uint32(0); i < 5; i++ {
		v, ok := h.popRemote(0)
		if !ok || v != 100+i {
			t.Errorf("pop %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := h.popRemote(0); ok {
		t.Error("empty buffer must not pop")
	}
}

func TestRemoteRBBounds(t *testing.T) {
	_, h := newTestHart()
	if h.pushRemote(-1, 1, 8) || h.pushRemote(99, 1, 8) {
		t.Error("out-of-range buffer index must fail")
	}
	for i := 0; i < 3; i++ {
		h.pushRemote(1, uint32(i), 3)
	}
	if h.pushRemote(1, 9, 3) {
		t.Error("overflow past depth must fail")
	}
	if _, ok := h.popRemote(7); ok {
		_, h2 := newTestHart()
		_ = h2
		t.Error("pop from empty high index")
	}
}

func TestFreeHartAfterOrder(t *testing.T) {
	m := New(DefaultConfig(1))
	c := m.cores[0]
	// all free: after hart 1 -> hart 2
	if got := c.freeHartAfter(1); got.idx != 2 {
		t.Errorf("after 1 -> %d, want 2", got.idx)
	}
	// occupy 2 and 3: wraps to 0
	c.harts[2].state = hartRunning
	c.harts[3].state = hartRunning
	if got := c.freeHartAfter(1); got.idx != 0 {
		t.Errorf("after 1 with 2,3 busy -> %d, want 0", got.idx)
	}
	// everything busy: nil
	c.harts[0].state = hartRunning
	c.harts[1].state = hartRunning
	if got := c.freeHartAfter(1); got != nil {
		t.Errorf("all busy -> %v", got.idx)
	}
}

func TestHartLifecycle(t *testing.T) {
	m, h := newTestHart()
	h.allocate(&m.cfg, 0, 10)
	if h.state != hartAllocated {
		t.Error("allocate must reserve the hart")
	}
	if h.regs[2] != m.cfg.SPInit(1) {
		t.Errorf("sp = %#x, want %#x", h.regs[2], m.cfg.SPInit(1))
	}
	if !h.hasPred {
		t.Error("forked harts wait for the predecessor signal")
	}
	h.start(0x40, 20)
	if h.state != hartRunning || h.pc != 0x40 || !h.pcValid {
		t.Errorf("start: %+v", h.state)
	}
	h.free(30)
	if h.state != hartFree || h.pcValid {
		t.Error("free must release the hart")
	}
}

func TestUopPoolReuse(t *testing.T) {
	_, h := newTestHart()
	u1 := h.newUop()
	u1.seq = 42
	u1.done = true
	h.freeUop(u1)
	u2 := h.newUop()
	if u2 != u1 {
		t.Error("pool must recycle")
	}
	if u2.seq != 0 || u2.done {
		t.Error("recycled uop must be zeroed")
	}
}

func TestWakeCapturesValues(t *testing.T) {
	_, h := newTestHart()
	producer := h.newUop()
	consumer := h.newUop()
	consumer.dep1 = producer
	consumer.dep2 = producer
	h.it = append(h.it, consumer)
	h.wake(producer, 777)
	if consumer.dep1 != nil || consumer.dep2 != nil {
		t.Error("deps must clear on wake")
	}
	if consumer.src1 != 777 || consumer.src2 != 777 {
		t.Errorf("captured %d/%d", consumer.src1, consumer.src2)
	}
	if !consumer.ready() {
		t.Error("consumer must be ready")
	}
}

func TestRemoveFromIT(t *testing.T) {
	_, h := newTestHart()
	a, b, c := h.newUop(), h.newUop(), h.newUop()
	h.it = append(h.it, a, b, c)
	h.removeFromIT(b)
	if len(h.it) != 2 || h.it[0] != a || h.it[1] != c {
		t.Errorf("it: %v", h.it)
	}
	h.removeFromIT(b) // absent: no-op
	if len(h.it) != 2 {
		t.Error("double remove must be a no-op")
	}
}
