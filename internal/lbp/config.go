// Package lbp implements a cycle-level, deterministic simulator of the
// LBP parallelizing manycore processor described in the paper
// "Deterministic OpenMP and the LBP Parallelizing Manycore Processor".
//
// Each core is a five-stage pipeline — fetch, decode/rename, out-of-order
// issue, write back, in-order commit (Figures 10-12) — shared by four
// harts. There is no branch predictor, no cache hierarchy, no load/store
// queue and no interrupt support. Teams of harts are created, synchronized
// and joined entirely in hardware through the X_PAR instructions.
//
// The simulator is deterministic by construction: it advances in lock-step
// cycles, every arbitration is a pure function of machine state, and no
// goroutines, host time or randomized iteration participate in the
// simulated machine.
package lbp

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Config parameterizes an LBP machine.
type Config struct {
	Cores int
	Mem   mem.Config

	// Functional-unit latencies in cycles.
	ALULat int
	MulLat int
	DivLat int

	// Per-hart structure sizes.
	ITEntries  int // instruction table (reservation station) entries
	ROBEntries int // reorder buffer entries
	RemoteRBs  int // number of result buffers addressable by p_swre/p_lwre
	RBDepth    int // FIFO depth of each remote result buffer; reductions
	// buffer one value per team member until the join hart drains them,
	// so the default accommodates the largest teams

	// CVBytes reserves this many bytes at the top of each hart stack for
	// continuation values written by p_swcv.
	CVBytes uint32

	// StrictMemOrder keeps same-hart loads behind older non-issued stores
	// and in-flight stores to the same word, standing in for the p_syncm
	// discipline a careful compiler would emit (documented deviation).
	StrictMemOrder bool

	// LivelockWindow aborts the run if no instruction commits and no
	// memory event fires for this many cycles (0 = default).
	LivelockWindow uint64
}

// DefaultConfig returns a machine with n cores and paper-inspired
// parameters (Section 5 and DESIGN.md Section 5).
func DefaultConfig(n int) Config {
	return Config{
		Cores:          n,
		Mem:            mem.DefaultConfig(n),
		ALULat:         1,
		MulLat:         3,
		DivLat:         17,
		ITEntries:      8,
		ROBEntries:     16,
		RemoteRBs:      4,
		RBDepth:        1024,
		CVBytes:        64,
		StrictMemOrder: true,
		LivelockWindow: 100000,
	}
}

// HartsPerCore is fixed at 4 per the paper.
const HartsPerCore = isa.HartsPerCore

// MaxCores bounds the machine geometry every entry point accepts. The
// simulator itself has no hard ceiling — the router hierarchy grows with
// the core count — but 1024 cores (4096 harts) is the largest machine
// the paper's scaling discussion reaches, and the serpentine backward
// line makes runs far beyond it pathological rather than interesting.
const MaxCores = 1024

// ValidateGeometry rejects machine shapes no entry point should build:
// a core count outside [1, MaxCores], or a router degree that is set
// (non-zero) but below 2 and therefore cannot form a tree. It is called
// by sim.New and by every CLI/serving front end so that a bad -cores or
// job spec fails with a message instead of a normalized surprise.
func ValidateGeometry(cores, routerDegree int) error {
	if cores < 1 || cores > MaxCores {
		return fmt.Errorf("lbp: cores must be in [1, %d], got %d", MaxCores, cores)
	}
	if routerDegree != 0 && routerDegree < 2 {
		return fmt.Errorf("lbp: router degree must be at least 2 (or 0 for the default), got %d", routerDegree)
	}
	return nil
}

// StackBytes returns the stack region size of one hart.
func (c *Config) StackBytes() uint32 {
	return c.Mem.LocalBytes / HartsPerCore
}

// StackBase returns the lowest local address of hart h's stack region.
func (c *Config) StackBase(h int) uint32 {
	return mem.LocalBase + uint32(h)*c.StackBytes()
}

// SPInit returns the initial stack pointer of hart h: the top of its
// stack region minus the continuation-value area.
func (c *Config) SPInit(h int) uint32 {
	return c.StackBase(h) + c.StackBytes() - c.CVBytes
}
