package lbp

import (
	"strings"
	"testing"

	"repro/internal/asm"
)

// Micro-architectural behavior tests: timing properties the paper's
// design implies, measured on tiny programs.

// runStats assembles and runs src on one core, returning the result.
func runStats(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(cfg)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const exitTail = `
	li ra, 0
	li t0, -1
	p_ret
`

// A single hart cannot exceed 0.5 IPC: every fetch suspends until the
// decode produces the next pc (Section 5.2).
func TestSingleHartFetchSuspension(t *testing.T) {
	src := "main:\n"
	for i := 0; i < 400; i++ {
		src += "\taddi a0, a0, 1\n"
	}
	src += exitTail
	res := runStats(t, src, DefaultConfig(1))
	ipc := res.Stats.IPC()
	if ipc > 0.52 {
		t.Errorf("single-hart IPC %.3f exceeds the fetch-suspension bound", ipc)
	}
	if ipc < 0.40 {
		t.Errorf("single-hart IPC %.3f unexpectedly low for straight-line code", ipc)
	}
}

// Division blocks the hart's result buffer for its full latency: a chain
// of dependent divisions runs at ~1/(DivLat+overhead) IPC.
func TestDivLatencyChain(t *testing.T) {
	src := "main:\n\tli a0, 1000000\n\tli a1, 2\n"
	n := 50
	for i := 0; i < n; i++ {
		src += "\tdiv a0, a0, a1\n"
	}
	src += exitTail
	cfg := DefaultConfig(1)
	res := runStats(t, src, cfg)
	// each div occupies the hart for >= DivLat cycles
	if res.Stats.Cycles < uint64(n*cfg.DivLat) {
		t.Errorf("cycles = %d, want >= %d for %d chained divisions",
			res.Stats.Cycles, n*cfg.DivLat, n)
	}
}

// Independent divisions on different harts overlap: four harts dividing
// in parallel finish in far less than 4x the single-hart time.
func TestDivOverlapAcrossHarts(t *testing.T) {
	mk := func(nt int) string {
		return strings.ReplaceAll(`
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	la a0, thread
	la a1, shared
	li a3, NT
	jal LBP_parallel_start
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

thread:
	li a6, 3
	li a7, 40
tloop:
	li a5, 1000000
	div a5, a5, a6
	addi a7, a7, -1
	bnez a7, tloop
	p_ret

LBP_parallel_start:
	li a2, 0
Lps_loop:
	addi a4, a3, -1
	bge a2, a4, Lps_last
	p_fc t6
	p_swcv t6, ra, 0
	p_swcv t6, t0, 4
	p_swcv t6, a0, 8
	p_swcv t6, a1, 12
	p_swcv t6, a2, 16
	p_swcv t6, a3, 20
	p_merge t0, t0, t6
	p_syncm
	p_jalr ra, t0, a0
	p_lwcv ra, 0
	p_lwcv t0, 4
	p_lwcv a0, 8
	p_lwcv a1, 12
	p_lwcv a2, 16
	p_lwcv a3, 20
	addi a2, a2, 1
	j Lps_loop
Lps_last:
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	jalr ra, a0
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

	.data
shared:	.word 0
`, "NT", itoa(nt))
	}
	one := runStats(t, mk(1), DefaultConfig(1))
	four := runStats(t, mk(4), DefaultConfig(1))
	if four.Stats.Cycles > 2*one.Stats.Cycles {
		t.Errorf("4 harts dividing took %d cycles vs %d for 1: latencies not hidden",
			four.Stats.Cycles, one.Stats.Cycles)
	}
}

// The ROB bounds the number of in-flight instructions per hart: with a
// tiny ROB the machine still runs correctly, just slower.
func TestTinyROBStillCorrect(t *testing.T) {
	src := `
main:
	li a0, 0
	li a1, 100
loop:
	addi a0, a0, 1
	bne a0, a1, loop
	la a2, out
	sw a0, 0(a2)
` + exitTail + `
	.data
out:	.word 0
`
	cfg := DefaultConfig(1)
	cfg.ROBEntries = 2
	cfg.ITEntries = 2
	p, _ := asm.Assemble(src, asm.Options{})
	m := New(cfg)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadShared(0x80000000); v != 100 {
		t.Errorf("out = %d", v)
	}
	big := runStats(t, src, DefaultConfig(1))
	if res.Stats.Cycles < big.Stats.Cycles {
		t.Errorf("tiny ROB (%d cycles) cannot beat the default (%d)",
			res.Stats.Cycles, big.Stats.Cycles)
	}
}

// Store-then-load to the same address within one hart observes program
// order (StrictMemOrder stands in for compiler-inserted p_syncm).
func TestSameAddressStoreLoadOrder(t *testing.T) {
	src := `
main:
	la a0, slot
	li a1, 1
	li a2, 0
loop:
	sw a1, 0(a0)
	lw a3, 0(a0)
	add a2, a2, a3
	addi a1, a1, 1
	li a4, 11
	bne a1, a4, loop
	la a5, out
	sw a2, 0(a5)
` + exitTail + `
	.data
slot:	.word 0
out:	.word 0
`
	res := runStats(t, src, DefaultConfig(1))
	_ = res
	p, _ := asm.Assemble(src, asm.Options{})
	m := New(DefaultConfig(1))
	m.LoadProgram(p)
	m.Run(1_000_000)
	if v, _ := m.ReadShared(0x80000004); v != 55 {
		t.Errorf("sum = %d, want 55 (loads must see their own stores)", v)
	}
}

// p_syncm drains the hart's in-flight memory accesses before fetch
// resumes: a CV write followed by p_syncm is complete when the next
// instruction fetches.
func TestSyncmDrains(t *testing.T) {
	src := `
main:
	p_fc t6
	li a1, 77
	p_swcv t6, a1, 0
	p_syncm
	li ra, 0
	li t0, -1
	p_ret
`
	p, _ := asm.Assemble(src, asm.Options{})
	m := New(DefaultConfig(1))
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	// hart 1's CV area received the value
	spInit := m.cfg.SPInit(1)
	if v, _ := m.Mem.PeekLocal(0, spInit); v != 77 {
		t.Errorf("CV word = %d, want 77", v)
	}
}

// A full instruction-table hart must not wedge the other harts of the
// core: rename selection skips it.
func TestBlockedHartDoesNotStarveCore(t *testing.T) {
	// hart 0 waits forever on p_lwre (empty buffer) while the machine
	// deadlock detector watches; the fault must mention the lwre.
	src := `
main:
	p_lwre a0, 0
	li ra, 0
	li t0, -1
	p_ret
`
	p, _ := asm.Assemble(src, asm.Options{})
	cfg := DefaultConfig(1)
	cfg.LivelockWindow = 3000
	m := New(cfg)
	m.LoadProgram(p)
	_, err := m.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "p_lwre") {
		t.Errorf("diagnostic must show the blocked head: %v", err)
	}
}

// Two machines with different hop latencies produce different cycle
// counts but identical results: the timing model is decoupled from the
// semantics.
func TestTimingIndependentSemantics(t *testing.T) {
	src := `
main:
	la a0, out
	li a1, 123
	sw a1, 0(a0)
` + exitTail + `
	.data
out:	.word 0
`
	p, _ := asm.Assemble(src, asm.Options{})
	fast := DefaultConfig(2)
	slow := DefaultConfig(2)
	slow.Mem.HopLat = 9
	slow.Mem.SharedLat = 11
	mf, ms := New(fast), New(slow)
	mf.LoadProgram(p)
	ms.LoadProgram(p)
	rf, err1 := mf.Run(100000)
	rs, err2 := ms.Run(100000)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	vf, _ := mf.ReadShared(0x80000000)
	vs, _ := ms.ReadShared(0x80000000)
	if vf != 123 || vs != 123 {
		t.Errorf("results differ: %d %d", vf, vs)
	}
	if rs.Stats.Cycles <= rf.Stats.Cycles {
		t.Errorf("slower memory must cost cycles: %d vs %d",
			rs.Stats.Cycles, rf.Stats.Cycles)
	}
}
