package lbp

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/isa"
)

// Content-addressed decode cache. Predecoding a program into its
// descriptor image (one isa.Desc per code word — see exec.go) is pure:
// the image depends only on the code bytes, never on the machine
// configuration. So images are built once per distinct program, keyed by
// the SHA-256 of the code words — the same content-addressing discipline
// as sim.CacheKey — and shared read-only across every machine that loads
// the program, including all warm sim.Pool machines and checkpoint
// restores: lbp-serve never decodes the same image twice. The cache is
// a bounded package-level LRU; eviction only drops the shared reference,
// machines still holding the image keep it alive.

// progImage is an immutable predecoded code image, indexed by pc/4 from
// address zero (words below the text base decode to OpInvalid, exactly
// like the zeroed code bank there). Machines must never write through
// it; uops alias its descriptors.
type progImage struct {
	descs []isa.Desc
}

type imageKey [sha256.Size]byte

const decodeCacheCap = 64 // distinct program images kept warm

var decodeCache = struct {
	mu      sync.Mutex
	entries map[imageKey]*list.Element
	lru     *list.List // of *decodeEntry, front = most recently used
	hits    uint64
	misses  uint64
}{entries: make(map[imageKey]*list.Element), lru: list.New()}

type decodeEntry struct {
	key imageKey
	img *progImage
}

// hashImage content-addresses a full code image (length included, so a
// prefix and its extension never collide).
func hashImage(words []uint32) imageKey {
	h := sha256.New()
	buf := make([]byte, 0, 4096)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(words)))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint32(buf, w)
		if len(buf) >= 4088 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	var k imageKey
	h.Sum(k[:0])
	return k
}

func buildImage(words []uint32) *progImage {
	descs := make([]isa.Desc, len(words))
	for i, w := range words {
		descs[i] = isa.DecodeDesc(w)
	}
	return &progImage{descs: descs}
}

// sharedImage returns the cached descriptor image for the code words,
// building and publishing it on first sight.
func sharedImage(words []uint32) *progImage {
	key := hashImage(words)
	decodeCache.mu.Lock()
	if el, ok := decodeCache.entries[key]; ok {
		decodeCache.lru.MoveToFront(el)
		decodeCache.hits++
		img := el.Value.(*decodeEntry).img
		decodeCache.mu.Unlock()
		return img
	}
	decodeCache.misses++
	decodeCache.mu.Unlock()

	img := buildImage(words) // decode outside the lock

	decodeCache.mu.Lock()
	defer decodeCache.mu.Unlock()
	if el, ok := decodeCache.entries[key]; ok {
		// Another machine published the same image first; share theirs.
		decodeCache.lru.MoveToFront(el)
		return el.Value.(*decodeEntry).img
	}
	decodeCache.entries[key] = decodeCache.lru.PushFront(&decodeEntry{key: key, img: img})
	for decodeCache.lru.Len() > decodeCacheCap {
		old := decodeCache.lru.Back()
		decodeCache.lru.Remove(old)
		delete(decodeCache.entries, old.Value.(*decodeEntry).key)
	}
	return img
}

// DecodeCacheStats reports cumulative decode-cache hits and misses and
// the current entry count (for /metrics and tests).
func DecodeCacheStats() (hits, misses uint64, entries int) {
	decodeCache.mu.Lock()
	defer decodeCache.mu.Unlock()
	return decodeCache.hits, decodeCache.misses, decodeCache.lru.Len()
}

// installProgram makes the descriptor image for a program loaded at
// baseWords (text base / 4) the machine's fetch source. The common case —
// one program per machine — goes through the shared cache; loading a
// second program on top extends a private copy, since the merged image
// is unique to this machine.
func (m *Machine) installProgram(baseWords int, text []uint32) {
	if m.img == nil {
		words := make([]uint32, baseWords+len(text))
		copy(words[baseWords:], text)
		m.img = sharedImage(words)
		return
	}
	end := baseWords + len(text)
	n := len(m.img.descs)
	if end > n {
		n = end
	}
	priv := make([]isa.Desc, n)
	copy(priv, m.img.descs)
	for i, w := range text {
		priv[baseWords+i] = isa.DecodeDesc(w)
	}
	m.img = &progImage{descs: priv}
}
