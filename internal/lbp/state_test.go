package lbp

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/trace"
)

// ignoreFastForwarded zeroes the host-side diagnostic that legitimately
// differs between a split and an uninterrupted run (the resume leg
// single-steps the quiescent cycle it wakes on).
func ignoreFastForwarded(s Stats) Stats {
	s.FastForwarded = 0
	return s
}

func TestCheckpointResumeTeam(t *testing.T) {
	const cores, nt = 2, 8
	const budget = 2_000_000
	prog, err := asm.Assemble(sprintf(teamProgram, nt, nt), asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	base := New(DefaultConfig(cores))
	base.SetTrace(trace.New(0))
	if err := base.LoadProgram(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	baseRes, err := base.Run(budget)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkTeamResult(t, base, nt)
	total := baseRes.Stats.Cycles

	for _, k := range []uint64{1, 17, total / 3, total / 2, total - 1} {
		m := New(DefaultConfig(cores))
		m.SetTrace(trace.New(0))
		if err := m.LoadProgram(prog); err != nil {
			t.Fatalf("load: %v", err)
		}
		res, err := m.Advance(k)
		if err != nil {
			t.Fatalf("k=%d: advance: %v", k, err)
		}
		if res != nil {
			t.Fatalf("k=%d: program finished before the split point", k)
		}
		cp, err := m.Checkpoint()
		if err != nil {
			t.Fatalf("k=%d: checkpoint: %v", k, err)
		}
		m2, err := Restore(cp)
		if err != nil {
			t.Fatalf("k=%d: restore: %v", k, err)
		}
		if m2.Cycle() != k {
			t.Fatalf("k=%d: restored cycle = %d", k, m2.Cycle())
		}
		// A checkpoint of the restored machine must be byte-identical:
		// restore loses nothing.
		cp2, err := m2.Checkpoint()
		if err != nil {
			t.Fatalf("k=%d: re-checkpoint: %v", k, err)
		}
		if !bytes.Equal(cp, cp2) {
			t.Errorf("k=%d: re-checkpoint differs from the original", k)
		}
		res2, err := m2.Run(budget)
		if err != nil {
			t.Fatalf("k=%d: resumed run: %v", k, err)
		}
		if res2.Halt != baseRes.Halt {
			t.Errorf("k=%d: halt = %q, want %q", k, res2.Halt, baseRes.Halt)
		}
		if !reflect.DeepEqual(ignoreFastForwarded(res2.Stats), ignoreFastForwarded(baseRes.Stats)) {
			t.Errorf("k=%d: stats diverge:\n  split  %+v\n  single %+v", k, res2.Stats, baseRes.Stats)
		}
		if res2.Mem != baseRes.Mem {
			t.Errorf("k=%d: memory stats diverge:\n  split  %+v\n  single %+v", k, res2.Mem, baseRes.Mem)
		}
		if !trace.Same(m2.Trace(), base.Trace()) {
			t.Errorf("k=%d: trace diverges: digest %#x/%d, want %#x/%d", k,
				m2.Trace().Digest(), m2.Trace().Count(),
				base.Trace().Digest(), base.Trace().Count())
		}
		checkTeamResult(t, m2, nt)
	}
}

func TestCheckpointRefusesUnknownDevice(t *testing.T) {
	prog, err := asm.Assemble("main:\n\tli t0, -1\n\tli ra, 0\n\tp_ret\n", asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(DefaultConfig(1))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	m.AddDevice(plainDevice{})
	if _, err := m.Checkpoint(); err == nil {
		t.Fatal("checkpoint must refuse a device without Stateful")
	}
}

// plainDevice implements Device but not Stateful.
type plainDevice struct{}

func (plainDevice) Step(*Machine, uint64) {}

func TestMachineReset(t *testing.T) {
	const cores, nt = 2, 6
	prog, err := asm.Assemble(sprintf(teamProgram, nt, nt), asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	run := func(m *Machine) (*Result, uint64, uint64) {
		t.Helper()
		m.SetTrace(trace.New(0))
		res, err := m.Run(2_000_000)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res, m.Trace().Digest(), m.Trace().Count()
	}
	fresh := New(DefaultConfig(cores))
	if err := fresh.LoadProgram(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	wantRes, wantDig, wantCnt := run(fresh)

	m := New(DefaultConfig(cores))
	if err := m.LoadProgram(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	run(m) // dirty the machine
	for i := 0; i < 2; i++ {
		if err := m.Reset(prog); err != nil {
			t.Fatalf("reset %d: %v", i, err)
		}
		res, dig, cnt := run(m)
		if dig != wantDig || cnt != wantCnt {
			t.Fatalf("reset %d: digest %#x/%d, want %#x/%d", i, dig, cnt, wantDig, wantCnt)
		}
		if !reflect.DeepEqual(res.Stats, wantRes.Stats) {
			t.Fatalf("reset %d: stats diverge:\n  reset %+v\n  fresh %+v", i, res.Stats, wantRes.Stats)
		}
		checkTeamResult(t, m, nt)
	}
}

func TestReadSharedSliceBounds(t *testing.T) {
	m := New(DefaultConfig(1))
	const sharedBase = 0x80000000
	if _, ok := m.ReadSharedSlice(sharedBase, -1); ok {
		t.Error("negative length must fail")
	}
	if _, ok := m.ReadSharedSlice(sharedBase, 1<<30); ok {
		t.Error("a range past the top of the address space must fail")
	}
	if _, ok := m.ReadSharedSlice(0xFFFFFFFC, 2); ok {
		t.Error("a range wrapping the 32-bit address space must fail")
	}
	if v, ok := m.ReadSharedSlice(sharedBase, 4); !ok || len(v) != 4 {
		t.Errorf("small in-range read = (%v, %v), want 4 words", v, ok)
	}
	if v, ok := m.ReadSharedSlice(sharedBase, 0); !ok || len(v) != 0 {
		t.Errorf("zero-length read = (%v, %v), want empty ok", v, ok)
	}
}

// TestRestoreV1Checkpoint: checkpoints written before the sharded v2
// format — a bare gob stream with no magic prefix — must keep restoring
// bit-exactly. The fixture is an 8-core placed set/get run stopped at
// cycle 4000 with a digest recorder attached; the expected constants
// are the outcome of the original uninterrupted run.
func TestRestoreV1Checkpoint(t *testing.T) {
	cp, err := os.ReadFile("testdata/checkpoint_v1_8core.bin")
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	if bytes.HasPrefix(cp, checkpointMagic[:]) {
		t.Fatal("fixture has the v2 magic; it no longer exercises the v1 path")
	}
	m, err := Restore(cp)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if m.Cycle() != 4000 {
		t.Fatalf("restored cycle = %d, want 4000", m.Cycle())
	}
	res, err := m.Run(50_000_000)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	const wantCycles, wantRetired = 8683, 33332
	const wantDigest = uint64(0xb22e8eda05ed9d50)
	if res.Stats.Cycles != wantCycles || res.Stats.Retired != wantRetired {
		t.Errorf("resumed run: cycles=%d retired=%d, want %d/%d",
			res.Stats.Cycles, res.Stats.Retired, wantCycles, wantRetired)
	}
	if d := m.Trace().Digest(); d != wantDigest {
		t.Errorf("resumed digest = %#x, want %#x", d, wantDigest)
	}
}

// TestCheckpointV2Format: new checkpoints lead with the v2 magic, and a
// machine restored from the v1 fixture re-checkpoints in v2 form that
// restores to the same outcome — the upgrade path is lossless.
func TestCheckpointV2Format(t *testing.T) {
	v1, err := os.ReadFile("testdata/checkpoint_v1_8core.bin")
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	m, err := Restore(v1)
	if err != nil {
		t.Fatalf("restore v1: %v", err)
	}
	v2, err := m.Checkpoint()
	if err != nil {
		t.Fatalf("re-checkpoint: %v", err)
	}
	if !bytes.HasPrefix(v2, checkpointMagic[:]) {
		t.Fatal("re-checkpoint of a v1 machine must use the v2 format")
	}
	m2, err := Restore(v2)
	if err != nil {
		t.Fatalf("restore v2: %v", err)
	}
	res, err := m2.Run(50_000_000)
	if err != nil {
		t.Fatalf("run after upgrade: %v", err)
	}
	if res.Stats.Cycles != 8683 || m2.Trace().Digest() != 0xb22e8eda05ed9d50 {
		t.Errorf("upgraded checkpoint diverged: cycles=%d digest=%#x",
			res.Stats.Cycles, m2.Trace().Digest())
	}
}

// TestCheckpointResumeHostKnobMatrix splits one run at its midpoint and
// resumes it under every crossing of the host-side execution knobs
// (worker count x fast-forward), with the checkpoint leg itself run
// under every crossing too. The machine is large enough that worker
// counts above 1 genuinely engage the sharded compute phase, so the
// matrix proves the checkpoint format and the batched stepper agree on
// bit-identical state no matter which stepping mode produced or
// consumes a checkpoint.
func TestCheckpointResumeHostKnobMatrix(t *testing.T) {
	const cores, nt = 16, 48
	const budget = 4_000_000
	type knobs struct {
		workers int
		ffwd    bool
	}
	settings := []knobs{{1, true}, {1, false}, {3, true}, {3, false}}

	prog, err := asm.Assemble(sprintf(teamProgram, nt, nt), asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	newM := func(k knobs) *Machine {
		m := New(DefaultConfig(cores))
		m.SetTrace(trace.New(0))
		m.SetSimWorkers(k.workers)
		m.SetFastForward(k.ffwd)
		if err := m.LoadProgram(prog); err != nil {
			t.Fatalf("load: %v", err)
		}
		return m
	}
	base := newM(knobs{1, true})
	baseRes, err := base.Run(budget)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkTeamResult(t, base, nt)
	split := baseRes.Stats.Cycles / 2

	for _, kc := range settings {
		m := newM(kc)
		if res, err := m.Advance(split); err != nil || res != nil {
			t.Fatalf("%+v: advance to %d: res=%v err=%v", kc, split, res, err)
		}
		cp, err := m.Checkpoint()
		if err != nil {
			t.Fatalf("%+v: checkpoint: %v", kc, err)
		}
		for _, kr := range settings {
			m2, err := Restore(cp)
			if err != nil {
				t.Fatalf("%+v->%+v: restore: %v", kc, kr, err)
			}
			m2.SetSimWorkers(kr.workers)
			m2.SetFastForward(kr.ffwd)
			res2, err := m2.Run(budget)
			if err != nil {
				t.Fatalf("%+v->%+v: resumed run: %v", kc, kr, err)
			}
			if res2.Halt != baseRes.Halt {
				t.Errorf("%+v->%+v: halt = %q, want %q", kc, kr, res2.Halt, baseRes.Halt)
			}
			if !reflect.DeepEqual(ignoreFastForwarded(res2.Stats), ignoreFastForwarded(baseRes.Stats)) {
				t.Errorf("%+v->%+v: stats diverge:\n  split  %+v\n  single %+v",
					kc, kr, res2.Stats, baseRes.Stats)
			}
			if res2.Mem != baseRes.Mem {
				t.Errorf("%+v->%+v: memory stats diverge", kc, kr)
			}
			if !trace.Same(m2.Trace(), base.Trace()) {
				t.Errorf("%+v->%+v: trace diverges: digest %#x/%d, want %#x/%d", kc, kr,
					m2.Trace().Digest(), m2.Trace().Count(),
					base.Trace().Digest(), base.Trace().Count())
			}
			checkTeamResult(t, m2, nt)
		}
	}
}
