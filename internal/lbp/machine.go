package lbp

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/trace"
)

// Machine is a whole LBP processor: cores, harts, memory and devices.
type Machine struct {
	cfg   Config
	Mem   *mem.System
	cores []*core
	harts []*hart // flat, index = global hart number

	// Active-core fast path: only cores with at least one non-free hart
	// are stepped. The list is kept in core-index order (so skipping is
	// bit-identical to stepping every core: an all-free core's pipeline
	// stages are no-ops) and rebuilt on hart lifecycle edges, which cores
	// flag race-free on their own activeEdge bit.
	active []*core

	cycle    uint64
	running  bool
	exited   bool
	haltMsg  string
	err      error
	progress uint64 // cycle of the last commit or memory event

	devices []Device
	rec     *trace.Recorder
	emit    emitFn // trace sink, never nil (no-op when tracing is off)

	img    *progImage                // predecoded descriptor image (decode.go), shared read-only
	latTab [isa.NumLatClasses]uint64 // functional-unit latency by descriptor class
	stats  Stats

	// Performance counters. The inline increments in the pipeline stages
	// and the memory system are unconditional (they are cheap and cannot
	// affect timing); only the per-cycle stall-attribution walk is gated,
	// branch-free, behind the tick function pointer — like the trace emit
	// function, it is a no-op unless EnableProfiling was called.
	hperf     []perf.HartCounters // indexed by global hart number
	cperf     []perf.CoreCounters // indexed by core
	tick      tickFn
	profiling bool

	// Host-side execution knobs (never affect simulated results):
	// tracing mirrors rec != nil for the phase-A emit guard, simWorkers
	// shards the compute phase across host threads, fastFwd enables
	// idle-cycle fast-forward, pool is the lazily-built worker pool.
	tracing    bool
	seqTrace   bool // this cycle's phase A is serial: emit folds events live
	inlineFx   bool // this cycle's phase A is serial: effects apply inline
	deferred   bool // an effect of this cycle deferred; later ones must too
	simWorkers int
	fastFwd    bool
	pool       *stepPool

	// lane is the coordinator's commit lane: the dirty cores of the
	// cycle, collected during phase A (serial path, or the coordinator's
	// own shard) and drained — followed by the pool's worker lanes — by
	// applyLanes in ascending core order.
	lane []*core
}

// emitFn receives one machine event. Keeping the disabled path behind a
// function value instead of a per-event nil check makes event emission
// branch-free in the pipeline hot loops.
type emitFn func(kind trace.Kind, core, hartIdx int, value uint64)

func noopEmit(trace.Kind, int, int, uint64) {}

// tickFn runs once per cycle after the pipeline stages. The enabled
// version attributes every hart's cycle to a stall cause.
type tickFn func(now uint64)

func noopTick(uint64) {}

// Device models an external unit (sensor, actuator, timer) attached to
// the machine. Step is called once per cycle before the cores.
type Device interface {
	Step(m *Machine, now uint64)
}

// Stats aggregates run counters.
type Stats struct {
	Cycles      uint64
	Retired     uint64
	Fetched     uint64
	Forks       uint64
	Starts      uint64
	Joins       uint64
	Signals     uint64
	RemoteSends uint64 // p_swre messages
	PerHart     []uint64

	// FastForwarded counts simulated cycles covered by idle-cycle
	// fast-forward instead of being single-stepped. It is a host-side
	// diagnostic: Cycles and every other counter already include the
	// skipped cycles, so equivalence checks must ignore this field.
	FastForwarded uint64 `json:"FastForwarded,omitempty"`
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 {
		panic("lbp: Config.Cores must be positive")
	}
	if cfg.Mem.Cores != cfg.Cores {
		cfg.Mem.Cores = cfg.Cores
	}
	m := &Machine{
		cfg:     cfg,
		Mem:     mem.New(cfg.Mem),
		emit:    noopEmit,
		tick:    noopTick,
		fastFwd: true,
	}
	if cfg.LivelockWindow == 0 {
		m.cfg.LivelockWindow = 100000
	}
	m.latTab[isa.LatALU] = uint64(cfg.ALULat)
	m.latTab[isa.LatMul] = uint64(cfg.MulLat)
	m.latTab[isa.LatDiv] = uint64(cfg.DivLat)
	m.cores = make([]*core, cfg.Cores)
	m.harts = make([]*hart, cfg.Cores*HartsPerCore)
	m.hperf = make([]perf.HartCounters, cfg.Cores*HartsPerCore)
	m.cperf = make([]perf.CoreCounters, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		co := &core{m: m, idx: c, perf: &m.cperf[c]}
		for hi := 0; hi < HartsPerCore; hi++ {
			h := &hart{
				core:   co,
				idx:    hi,
				gid:    isa.GlobalHart(c, hi),
				remote: make([]remoteRB, cfg.RemoteRBs),
				rob:    make([]*uop, cfg.ROBEntries),
			}
			h.ldc.h = h
			h.stc.h = h
			h.perf = &m.hperf[h.gid]
			h.reset(&m.cfg)
			co.harts[hi] = h
			m.harts[h.gid] = h
		}
		m.cores[c] = co
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetTrace attaches an event recorder (nil disables tracing).
func (m *Machine) SetTrace(r *trace.Recorder) {
	m.rec = r
	m.tracing = r != nil
	if r == nil {
		m.emit = noopEmit
		return
	}
	m.emit = func(kind trace.Kind, core, hartIdx int, value uint64) {
		r.Add(trace.Event{
			Cycle: m.cycle, Core: uint16(core), Hart: uint8(hartIdx),
			Kind: kind, Value: value,
		})
	}
}

// Trace returns the attached recorder, if any.
func (m *Machine) Trace() *trace.Recorder { return m.rec }

// AddDevice attaches a device.
func (m *Machine) AddDevice(d Device) { m.devices = append(m.devices, d) }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// descAt returns the predecoded descriptor at pc, or nil when pc is
// unmapped. The returned descriptor aliases the shared immutable image.
func (m *Machine) descAt(pc uint32) *isa.Desc {
	if pc%4 != 0 || m.img == nil {
		return nil
	}
	idx := pc >> 2
	if uint64(idx) >= uint64(len(m.img.descs)) {
		return nil
	}
	return &m.img.descs[idx]
}

// Hart returns the hart with the given global number.
func (m *Machine) Hart(gid uint32) *hart {
	if int(gid) >= len(m.harts) {
		return nil
	}
	return m.harts[gid]
}

func (m *Machine) event(kind trace.Kind, core int, hartIdx int, value uint64) {
	m.emit(kind, core, hartIdx, value)
}

// rebuildActive refreshes the active-core list in core-index order.
func (m *Machine) rebuildActive() {
	m.active = m.active[:0]
	for _, c := range m.cores {
		if c.busy > 0 {
			m.active = append(m.active, c)
		}
	}
}

// faultf records a machine fault and stops the run. Faults are
// deterministic: the same program faults at the same cycle every run.
func (m *Machine) faultf(core, hartIdx int, format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf("lbp: cycle %d core %d hart %d: %s",
			m.cycle, core, hartIdx, fmt.Sprintf(format, args...))
	}
	m.exited = true
}

// halt stops the run cleanly (p_ret exit, ebreak).
func (m *Machine) halt(msg string) {
	m.exited = true
	m.haltMsg = msg
}

// LoadProgram installs an assembled program: the code image is replicated
// in every core's code bank, the initialized data segments are written to
// the shared space, and hart 0 of core 0 is started at the entry point
// with register t0 = -1 (the bare-metal exit identity of Figure 6 is set
// up by the program itself).
func (m *Machine) LoadProgram(p *asm.Program) error {
	if err := m.Mem.LoadCode(p.TextBase, p.Text); err != nil {
		return err
	}
	// Predecode the image: fetch is on the critical path of every cycle.
	// The descriptor image is content-addressed and shared across
	// machines running the same program (decode.go).
	m.installProgram(int(p.TextBase/4), p.Text)
	for _, seg := range p.Segments {
		if err := m.Mem.LoadShared(seg.Addr, seg.Words); err != nil {
			return err
		}
	}
	h0 := m.harts[0]
	h0.reset(&m.cfg)
	h0.setState(hartRunning)
	h0.pc = p.Entry
	h0.pcValid = true
	h0.regs[2] = m.cfg.SPInit(0)
	return nil
}

// Result summarizes a finished run.
type Result struct {
	Stats Stats
	Mem   mem.Stats
	Halt  string
}

// Run advances the machine until the program exits or maxCycles total
// simulated cycles elapse. The budget is absolute: on a machine resumed
// from a checkpoint or paused by Advance, cycles already simulated count
// against it.
//
// Each cycle: memory events and devices step first (serial), then phase A
// computes every active core — inline, or sharded across the worker pool —
// and phase B applies the pending streams in core-index order. A cycle on
// which no pipeline stage did work cannot make progress until the next
// memory event, device arm or hart time gate, so the clock fast-forwards
// there (see phase.go). Simulated results are identical for every worker
// count and with fast-forward on or off.
func (m *Machine) Run(maxCycles uint64) (*Result, error) {
	var n uint64
	if maxCycles > m.cycle {
		n = maxCycles - m.cycle
	}
	res, err := m.Advance(n)
	if res != nil || err != nil {
		return res, err
	}
	return nil, fmt.Errorf("lbp: exceeded %d cycles without exiting%s",
		maxCycles, m.stuckReport())
}

// Advance runs at most n more cycles. It returns (nil, nil) when the
// budget runs out before the program exits: the machine is then paused
// at a cycle boundary — no mid-cycle state is in flight — and can be
// advanced further, checkpointed, or both. A run split into Advance legs
// is bit-identical to one uninterrupted run (the host-side
// Stats.FastForwarded diagnostic excepted).
func (m *Machine) Advance(n uint64) (*Result, error) {
	if m.exited {
		if m.err != nil {
			return nil, m.err
		}
		return nil, fmt.Errorf("lbp: machine already ran; create a new one")
	}
	stop := m.cycle + n
	if !m.running {
		m.running = true
		m.progress = m.cycle
	}
	if w := m.SimWorkers(); w > 1 && m.pool == nil {
		m.pool = newStepPool(w)
	}
	if p := m.pool; p != nil {
		// The pool lives for one Advance call: a paused machine holds no
		// goroutines, and the next leg may run under a different worker
		// setting (worker count never affects simulated results).
		defer func() {
			p.stop()
			m.pool = nil
		}()
	}
	hasDevices := len(m.devices) > 0
	for !m.exited {
		if m.cycle >= stop {
			return nil, nil
		}
		m.cycle++
		if !m.Mem.Drained() {
			m.progress = m.cycle
		}
		m.Mem.Step(m.cycle)
		if hasDevices {
			for _, d := range m.devices {
				d.Step(m, m.cycle)
			}
		}
		dirty := false
		for _, c := range m.cores {
			if c.activeEdge {
				c.activeEdge = false
				dirty = true
			}
			// Cycle-start snapshot read by the previous core's p_fn issue
			// check — the same value the old sequential step observed,
			// since only Mem.Step and devices ran since the last phase B.
			c.freeSnap = c.busy < HartsPerCore
		}
		if dirty {
			m.rebuildActive()
		}
		activity := false
		if m.pool != nil && len(m.active) >= minShardCores {
			// Sharded cycle: every core buffers its events and defers its
			// effects; both flags are settled before the workers start and
			// only read by them.
			m.seqTrace = false
			m.inlineFx = false
			activity = m.pool.stepParallel(m, m.cycle)
		} else {
			// Serial cycle: the cores step in exactly the order phase B
			// would replay, so events fold into the recorder live and
			// effects apply inline (core.effect) — the common case runs
			// the whole cycle in one tight pass with empty commit lanes
			// for applyLanes to skip.
			m.seqTrace = m.tracing
			m.inlineFx = true
			m.deferred = false
			prog := false
			for _, c := range m.active {
				if c.stepCompute(m.cycle) {
					activity = true
				}
				m.lane = laneScan(c, m.lane, &prog)
			}
			m.inlineFx = false
			if prog {
				m.progress = m.cycle
			}
		}
		m.applyLanes(m.cycle)
		m.tick(m.cycle)
		if m.cycle-m.progress > m.cfg.LivelockWindow {
			m.faultf(-1, -1, "no progress for %d cycles (deadlock?)%s",
				m.cfg.LivelockWindow, m.stuckReport())
		}
		if !activity && m.fastFwd && !m.exited {
			m.fastForward(m.cycle, stop)
		}
	}
	if m.err != nil {
		return nil, m.err
	}
	return m.result(), nil
}

func (m *Machine) result() *Result {
	st := Stats{
		Cycles:  m.cycle,
		Fetched: m.stats.Fetched,
		Forks:   m.stats.Forks,
		Starts:  m.stats.Starts,
		Joins:   m.stats.Joins,
		Signals: m.stats.Signals,

		RemoteSends:   m.stats.RemoteSends,
		FastForwarded: m.stats.FastForwarded,
		PerHart:       make([]uint64, len(m.harts)),
	}
	// The cores accumulate their own-phase counters for the whole run;
	// fold them in here instead of every cycle.
	for _, c := range m.cores {
		st.Fetched += c.statFetched
		st.Forks += c.statForks
		st.RemoteSends += c.statSends
	}
	for i, h := range m.harts {
		st.PerHart[i] = h.retired
		st.Retired += h.retired
	}
	return &Result{Stats: st, Mem: m.Mem.Stats, Halt: m.haltMsg}
}

// stuckReport describes non-free harts, to diagnose deadlocks and timeouts.
func (m *Machine) stuckReport() string {
	var out strings.Builder
	for _, h := range m.harts {
		if h.state == hartFree {
			continue
		}
		fmt.Fprintf(&out, "\n  core %d hart %d: state=%d pc=%#x pcValid=%v rob=%d it=%d inflight=%d hasPred=%v sig=%v",
			h.core.idx, h.idx, h.state, h.pc, h.pcValid, h.robN, len(h.it),
			h.inflightMem, h.hasPred, h.predSignal)
		if h.robN > 0 {
			u := h.robFront()
			fmt.Fprintf(&out, " head=%s done=%v", isa.Disassemble(u.d.Inst, u.pc), u.done)
		}
	}
	return out.String()
}

// ReadShared reads a word from shared memory after (or during) a run.
func (m *Machine) ReadShared(addr uint32) (uint32, bool) {
	return m.Mem.PeekShared(addr)
}

// ReadSharedSlice reads n consecutive words starting at addr. It
// reports ok=false when n is negative, when the word range would wrap
// the 32-bit address space, or when any word is outside the shared
// region — and it validates the range endpoints before allocating, so a
// bogus huge n cannot make it reserve gigabytes first.
func (m *Machine) ReadSharedSlice(addr uint32, n int) ([]uint32, bool) {
	if n < 0 {
		return nil, false
	}
	if n > 0 {
		last := uint64(addr) + 4*uint64(n-1)
		if last > uint64(^uint32(0)) {
			return nil, false
		}
		if _, ok := m.Mem.PeekShared(addr); !ok {
			return nil, false
		}
		if _, ok := m.Mem.PeekShared(uint32(last)); !ok {
			return nil, false
		}
	}
	out := make([]uint32, n)
	for i := range out {
		v, ok := m.Mem.PeekShared(addr + uint32(4*i))
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// Reset returns the machine to its post-New state — keeping every
// allocation warm — and loads a new program, for machine reuse across
// the runs of a sweep. Host-side knobs (trace recorder, profiling,
// worker count, fast-forward) survive; a run on a reset machine is
// bit-identical to the same run on a freshly built one.
func (m *Machine) Reset(p *asm.Program) error {
	m.Mem.Reset()
	for _, h := range m.harts {
		h.reset(&m.cfg)
		// reset keeps the fields that are monotonic within one run;
		// between runs they start from zero like on a fresh machine.
		h.seq = 0
		h.renamed = 0
		h.execReadyAt = 0
		h.retired = 0
		h.startedBy = 0
		h.endingEpoch = 0
		h.lastCommit = 0
	}
	for _, c := range m.cores {
		c.fetchRR, c.renameRR, c.issueRR, c.wbRR, c.commitRR = 0, 0, 0, 0, 0
		c.statFetched, c.statForks, c.statSends = 0, 0, 0
		c.committed = false
		c.activeEdge = false
		c.freeSnap = false
		clear(c.pend)
		c.pend = c.pend[:0]
		c.evbuf = c.evbuf[:0]
	}
	clear(m.lane)
	m.lane = m.lane[:0]
	m.cycle = 0
	m.running = false
	m.exited = false
	m.haltMsg = ""
	m.err = nil
	m.progress = 0
	m.stats = Stats{}
	clear(m.hperf)
	clear(m.cperf)
	m.img = nil // the image is shared and immutable; just drop the reference
	m.rebuildActive()
	return m.LoadProgram(p)
}
