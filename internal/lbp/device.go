package lbp

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/trace"
)

// Stateful is an optional Device capability required for checkpointing:
// DeviceState returns an opaque serialized snapshot of the device's
// mutable state, and RestoreDeviceState installs one into a device built
// with the same configuration. A machine with a device that does not
// implement Stateful refuses to checkpoint.
type Stateful interface {
	DeviceState() ([]byte, error)
	RestoreDeviceState(data []byte) error
}

// I/O devices for the non-interruptible I/O pattern of Section 6
// (Figures 16-17). LBP takes no interrupts: input controllers poll
// memory-mapped ports and the out-of-order engine synchronizes the
// consumers through p_swre/p_lwre or plain loads; here the devices are
// modeled as memory-mapped ports driven by a cycle schedule.

// SensorEvent is one scheduled input arrival.
type SensorEvent struct {
	Cycle uint64
	Value uint32
}

// Sensor writes its value to ValueAddr and then bumps the sequence word
// at FlagAddr at each scheduled cycle. A polling hart observes the flag
// change and reads the value — the paper's "active wait of each input
// machine instruction on the input controller".
type Sensor struct {
	Name      string
	ValueAddr uint32
	FlagAddr  uint32
	Events    []SensorEvent

	next int
	seq  uint32
}

// Step implements Device.
func (s *Sensor) Step(m *Machine, now uint64) {
	for s.next < len(s.Events) && s.Events[s.next].Cycle <= now {
		ev := s.Events[s.next]
		s.next++
		s.seq++
		m.Mem.PokeShared(s.ValueAddr, ev.Value)
		m.Mem.PokeShared(s.FlagAddr, s.seq)
		m.event(trace.KindIO, -1, s.next, uint64(ev.Value))
	}
}

// NextArm implements Armed: a sensor acts at its next scheduled arrival,
// so idle-cycle fast-forward may never jump past it.
func (s *Sensor) NextArm(now uint64) (uint64, bool) {
	if s.next >= len(s.Events) {
		return 0, false
	}
	return s.Events[s.next].Cycle, true
}

// sensorState is the mutable part of a Sensor; the schedule itself is
// configuration and must be supplied again on restore.
type sensorState struct {
	Next int
	Seq  uint32
}

// DeviceState implements Stateful.
func (s *Sensor) DeviceState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sensorState{Next: s.next, Seq: s.seq}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreDeviceState implements Stateful.
func (s *Sensor) RestoreDeviceState(data []byte) error {
	var st sensorState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if st.Next < 0 || st.Next > len(s.Events) {
		return fmt.Errorf("lbp: sensor %q state cursor %d outside its %d-event schedule",
			s.Name, st.Next, len(s.Events))
	}
	s.next = st.Next
	s.seq = st.Seq
	return nil
}

// ActuatorWrite is one observed output.
type ActuatorWrite struct {
	Cycle uint64
	Value uint32
}

// Actuator watches a (value, sequence) pair of words: whenever the
// sequence word changes, the value word is recorded with the cycle of
// observation. The driving program writes the value first and the
// sequence second; the LBP memory orders the two stores (same bank).
type Actuator struct {
	Name      string
	ValueAddr uint32
	SeqAddr   uint32

	lastSeq uint32
	Writes  []ActuatorWrite
}

// Step implements Device.
func (a *Actuator) Step(m *Machine, now uint64) {
	seq, ok := m.Mem.PeekShared(a.SeqAddr)
	if !ok || seq == a.lastSeq {
		return
	}
	a.lastSeq = seq
	v, _ := m.Mem.PeekShared(a.ValueAddr)
	a.Writes = append(a.Writes, ActuatorWrite{Cycle: now, Value: v})
	m.event(trace.KindIO, -2, 0, uint64(v))
}

// NextArm implements Armed: the watched sequence word only changes when a
// store is applied, which happens exclusively inside memory events, so an
// actuator never needs to wake the machine on its own. Fast-forward lands
// exactly on the next memory-event cycle, where the poll observes the
// change at the same cycle single-stepping would.
func (a *Actuator) NextArm(now uint64) (uint64, bool) { return 0, false }

// actuatorState is the mutable part of an Actuator, including the
// writes observed so far — a resumed run appends to them.
type actuatorState struct {
	LastSeq uint32
	Writes  []ActuatorWrite
}

// DeviceState implements Stateful.
func (a *Actuator) DeviceState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(actuatorState{LastSeq: a.lastSeq, Writes: a.Writes}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreDeviceState implements Stateful.
func (a *Actuator) RestoreDeviceState(data []byte) error {
	var st actuatorState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	a.lastSeq = st.LastSeq
	a.Writes = st.Writes
	return nil
}
