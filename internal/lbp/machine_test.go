package lbp

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/trace"
)

// buildAndRun assembles src, runs it on a machine with n cores and
// returns the machine and result.
func buildAndRun(t *testing.T, n int, src string, maxCycles uint64) (*Machine, *Result) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(DefaultConfig(n))
	if err := m.LoadProgram(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := m.Run(maxCycles)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

// The bare-metal exit protocol: ra=0, t0=-1, p_ret.
const exitSeq = `
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret
`

const prologue = `
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
`

func TestExitProtocol(t *testing.T) {
	_, res := buildAndRun(t, 1, `
main:
	li t0, -1
	li ra, 0
	p_ret
`, 1000)
	if res.Halt != "exit" {
		t.Errorf("halt = %q", res.Halt)
	}
	if res.Stats.Retired != 3 {
		t.Errorf("retired = %d, want 3", res.Stats.Retired)
	}
}

func TestStoreAndArithmetic(t *testing.T) {
	m, _ := buildAndRun(t, 1, `
main:
`+prologue+`
	la a0, out
	li a1, 6
	li a2, 7
	mul a3, a1, a2
	sw a3, 0(a0)
	li a4, 100
	li a5, 8
	div a6, a4, a5
	sw a6, 4(a0)
	rem a7, a4, a5
	sw a7, 8(a0)
	sub t1, a1, a2
	sw t1, 12(a0)
	srai t2, t1, 31
	sw t2, 16(a0)
`+exitSeq+`
	.data
out:	.space 20
`, 10000)
	want := []uint32{42, 12, 4, 0xFFFFFFFF, 0xFFFFFFFF}
	got, _ := m.ReadSharedSlice(0x80000000, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestLoopSum(t *testing.T) {
	m, res := buildAndRun(t, 1, `
main:
`+prologue+`
	li a0, 0
	li a1, 1
	li a2, 100
loop:
	add a0, a0, a1
	addi a1, a1, 1
	ble a1, a2, loop
	la a3, out
	sw a0, 0(a3)
`+exitSeq+`
	.data
out:	.word 0
`, 100000)
	if v, _ := m.ReadShared(0x80000000); v != 5050 {
		t.Errorf("sum = %d, want 5050", v)
	}
	if res.Stats.Retired < 300 {
		t.Errorf("retired = %d, loop must have run", res.Stats.Retired)
	}
}

func TestFunctionCall(t *testing.T) {
	m, _ := buildAndRun(t, 1, `
main:
`+prologue+`
	li a0, 20
	jal double
	la a1, out
	sw a0, 0(a1)
`+exitSeq+`
double:
	slli a0, a0, 1
	ret
	.data
out:	.word 0
`, 10000)
	if v, _ := m.ReadShared(0x80000000); v != 40 {
		t.Errorf("double(20) = %d", v)
	}
}

func TestLocalStackLoadStore(t *testing.T) {
	m, _ := buildAndRun(t, 1, `
main:
`+prologue+`
	addi sp, sp, -16
	li a0, 11
	li a1, 22
	sw a0, 0(sp)
	sw a1, 4(sp)
	lw a2, 0(sp)
	lw a3, 4(sp)
	add a4, a2, a3
	la a5, out
	sw a4, 0(a5)
	addi sp, sp, 16
`+exitSeq+`
	.data
out:	.word 0
`, 10000)
	if v, _ := m.ReadShared(0x80000000); v != 33 {
		t.Errorf("stack round trip sum = %d", v)
	}
}

// teamProgram is the Deterministic OpenMP fork protocol of Figures 6-8,
// written by hand: a team of `nt` harts each stores 100+index into
// result[index]; the last member joins back to the team creator.
const teamProgram = `
	.equ NT, %d
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	la a0, thread
	la a1, result
	li a3, NT
	jal LBP_parallel_start
rp:
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret                    # ra=0, t0=-1 -> exit

LBP_parallel_start:          # a0=f, a1=data, a3=nt; frameless on the creator
	li a2, 0
Lps_loop:
	addi a4, a3, -1
	bge a2, a4, Lps_last
	andi a5, a2, 3
	li a6, 3
	blt a5, a6, Lfc
	p_fn t6
	j Lsend
Lfc:
	p_fc t6
Lsend:
	p_swcv t6, ra, 0
	p_swcv t6, t0, 4
	p_swcv t6, a0, 8
	p_swcv t6, a1, 12
	p_swcv t6, a2, 16
	p_swcv t6, a3, 20
	p_merge t0, t0, t6
	p_syncm
	p_jalr ra, t0, a0        # run f locally; continuation on the new hart
	p_lwcv ra, 0
	p_lwcv t0, 4
	p_lwcv a0, 8
	p_lwcv a1, 12
	p_lwcv a2, 16
	p_lwcv a3, 20
	addi a2, a2, 1
	j Lps_loop
Lps_last:
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	jalr ra, a0
rp2:
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret                    # ra=rp -> join back to the creator hart

thread:                      # a1=result base, a2=index
	slli a4, a2, 2
	add a4, a1, a4
	li a5, 100
	add a5, a5, a2
	sw a5, 0(a4)
	p_ret

	.data
result:
	.fill %d, 0
`

func runTeam(t *testing.T, cores, nt int) (*Machine, *Result) {
	t.Helper()
	src := strings.ReplaceAll(teamProgram, "%d", "")
	_ = src
	progSrc := sprintf(teamProgram, nt, nt)
	return buildAndRun(t, cores, progSrc, 2_000_000)
}

func sprintf(format string, args ...any) string {
	out := format
	for _, a := range args {
		i := strings.Index(out, "%d")
		if i < 0 {
			break
		}
		out = out[:i] + itoa(a.(int)) + out[i+2:]
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func checkTeamResult(t *testing.T, m *Machine, nt int) {
	t.Helper()
	got, ok := m.ReadSharedSlice(0x80000000, nt)
	if !ok {
		t.Fatal("cannot read result")
	}
	for i := 0; i < nt; i++ {
		if got[i] != uint32(100+i) {
			t.Errorf("result[%d] = %d, want %d", i, got[i], 100+i)
		}
	}
}

func TestTeamOfOne(t *testing.T) {
	m, res := runTeam(t, 1, 1)
	checkTeamResult(t, m, 1)
	if res.Stats.Forks != 0 {
		t.Errorf("forks = %d, want 0", res.Stats.Forks)
	}
}

func TestTeamOfTwoSameCore(t *testing.T) {
	m, res := runTeam(t, 1, 2)
	checkTeamResult(t, m, 2)
	if res.Stats.Forks != 1 || res.Stats.Starts != 1 || res.Stats.Joins != 1 {
		t.Errorf("forks/starts/joins = %d/%d/%d", res.Stats.Forks, res.Stats.Starts, res.Stats.Joins)
	}
	if res.Stats.Signals == 0 {
		t.Error("the ending-hart signal chain must have fired")
	}
}

func TestTeamOfFourFillsCore(t *testing.T) {
	m, res := runTeam(t, 1, 4)
	checkTeamResult(t, m, 4)
	if res.Stats.Forks != 3 {
		t.Errorf("forks = %d, want 3", res.Stats.Forks)
	}
	// every hart of the core retired instructions
	for i := 0; i < 4; i++ {
		if res.Stats.PerHart[i] == 0 {
			t.Errorf("hart %d retired nothing", i)
		}
	}
}

func TestTeamSpansCores(t *testing.T) {
	m, res := runTeam(t, 4, 16)
	checkTeamResult(t, m, 16)
	if res.Stats.Forks != 15 {
		t.Errorf("forks = %d, want 15", res.Stats.Forks)
	}
	for i := 0; i < 16; i++ {
		if res.Stats.PerHart[i] == 0 {
			t.Errorf("hart %d retired nothing", i)
		}
	}
}

func TestTeamPartialLastCore(t *testing.T) {
	// 6 members on 4 cores: core 0 full, core 1 half.
	m, res := runTeam(t, 4, 6)
	checkTeamResult(t, m, 6)
	if res.Stats.Forks != 5 {
		t.Errorf("forks = %d", res.Stats.Forks)
	}
}

func TestCycleDeterminismTeam(t *testing.T) {
	src := sprintf(teamProgram, 8, 8)
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var digests []uint64
	var cycles []uint64
	for i := 0; i < 3; i++ {
		m := New(DefaultConfig(2))
		rec := trace.New(0)
		m.SetTrace(rec)
		if err := m.LoadProgram(p); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, rec.Digest())
		cycles = append(cycles, res.Stats.Cycles)
	}
	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] {
			t.Errorf("run %d digest %#x differs from run 0 digest %#x", i, digests[i], digests[0])
		}
		if cycles[i] != cycles[0] {
			t.Errorf("run %d cycles %d differ from run 0 cycles %d", i, cycles[i], cycles[0])
		}
	}
}

func TestMachineFaults(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
		cores              int
	}{
		{"fetch unmapped", "main:\n\tlui t1, 0x40000\n\tjr t1", "unmapped pc", 1},
		{"load unmapped", "main:\n\tlui a0, 0xF0000\n\tlw a1, 0(a0)", "unmapped address", 1},
		{"misaligned", "main:\n\tla a0, w\n\tlw a1, 2(a0)\n.data\nw: .word 0, 0", "misaligned load", 1},
		{"p_fn last core", "main:\n\tp_fn t6", "past the last core", 1},
		{"swcv far core", "main:\n\tli t6, 8\n\tp_swcv t6, ra, 0", "same or next core", 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := asm.Assemble(c.src, asm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m := New(DefaultConfig(c.cores))
			if err := m.LoadProgram(p); err != nil {
				t.Fatal(err)
			}
			_, err = m.Run(100000)
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("err = %v, want containing %q", err, c.wantSub)
			}
		})
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A hart that p_rets waiting for a join that never comes.
	p, err := asm.Assemble(`
main:
	li ra, 0
	p_set t0, zero
	p_ret          # type 2: wait for join -> nobody joins
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.LivelockWindow = 2000
	m := New(cfg)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Errorf("err = %v, want livelock detection", err)
	}
}

func TestEbreakHalts(t *testing.T) {
	_, res := buildAndRun(t, 1, "main:\n\tebreak\n", 1000)
	if res.Halt != "ebreak" {
		t.Errorf("halt = %q", res.Halt)
	}
}

func TestSwreLwreReduction(t *testing.T) {
	// A 4-member team computes partial values; each member p_swre-sends
	// its value to the creator hart's result buffers; the creator sums
	// them after the join.
	m, _ := buildAndRun(t, 1, `
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	la a0, thread
	la a1, result
	li a3, 4
	jal LBP_parallel_start
rp:
	# collect the four partial values
	p_lwre a4, 0
	p_lwre a5, 0
	p_lwre a6, 0
	p_lwre a7, 0
	add a4, a4, a5
	add a4, a4, a6
	add a4, a4, a7
	la a1, result
	sw a4, 0(a1)
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

LBP_parallel_start:
	li a2, 0
Lps_loop:
	addi a4, a3, -1
	bge a2, a4, Lps_last
	p_fc t6
	p_swcv t6, ra, 0
	p_swcv t6, t0, 4
	p_swcv t6, a0, 8
	p_swcv t6, a1, 12
	p_swcv t6, a2, 16
	p_swcv t6, a3, 20
	p_merge t0, t0, t6
	p_syncm
	p_jalr ra, t0, a0
	p_lwcv ra, 0
	p_lwcv t0, 4
	p_lwcv a0, 8
	p_lwcv a1, 12
	p_lwcv a2, 16
	p_lwcv a3, 20
	addi a2, a2, 1
	j Lps_loop
Lps_last:
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	jalr ra, a0
rp2:
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

thread:                      # sends (index+1)*10 to hart 0 (the creator), buffer 0
	addi a4, a2, 1
	li a5, 10
	mul a4, a4, a5
	p_swre zero, a4, 0
	p_ret

	.data
result:	.word 0
`, 2_000_000)
	if v, _ := m.ReadShared(0x80000000); v != 100 {
		t.Errorf("reduction = %d, want 100", v)
	}
}

func TestHartsReusableAcrossTeams(t *testing.T) {
	// Two successive parallel sections (Figure 4): the second team reuses
	// the harts freed by the first; the hardware barrier orders them.
	m, res := buildAndRun(t, 1, `
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	la a0, set_thread
	la a1, vec
	li a3, 4
	jal LBP_parallel_start
rp_a:
	li t0, -1
	p_set t0, t0
	la a0, get_thread
	la a1, vec
	li a3, 4
	jal LBP_parallel_start
rp_b:
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

LBP_parallel_start:
	li a2, 0
Lps_loop:
	addi a4, a3, -1
	bge a2, a4, Lps_last
	p_fc t6
	p_swcv t6, ra, 0
	p_swcv t6, t0, 4
	p_swcv t6, a0, 8
	p_swcv t6, a1, 12
	p_swcv t6, a2, 16
	p_swcv t6, a3, 20
	p_merge t0, t0, t6
	p_syncm
	p_jalr ra, t0, a0
	p_lwcv ra, 0
	p_lwcv t0, 4
	p_lwcv a0, 8
	p_lwcv a1, 12
	p_lwcv a2, 16
	p_lwcv a3, 20
	addi a2, a2, 1
	j Lps_loop
Lps_last:
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	jalr ra, a0
rp2:
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

set_thread:                  # vec[i] = i+1
	slli a4, a2, 2
	add a4, a1, a4
	addi a5, a2, 1
	sw a5, 0(a4)
	p_ret

get_thread:                  # out[i] = vec[i] * 2
	slli a4, a2, 2
	add a5, a1, a4
	lw a6, 0(a5)
	la a7, out
	add a7, a7, a4
	slli a6, a6, 1
	sw a6, 0(a7)
	p_ret

	.data
vec:	.fill 4, 0
out:	.fill 4, 0
`, 2_000_000)
	got, _ := m.ReadSharedSlice(0x80000000+16, 4)
	for i := 0; i < 4; i++ {
		if got[i] != uint32(2*(i+1)) {
			t.Errorf("out[%d] = %d, want %d", i, got[i], 2*(i+1))
		}
	}
	if res.Stats.Forks != 6 {
		t.Errorf("forks = %d, want 6 (3 per team)", res.Stats.Forks)
	}
	if res.Stats.Joins != 2 {
		t.Errorf("joins = %d, want 2", res.Stats.Joins)
	}
}

// Machine-level counter invariants on a full parallel run.
func TestStatsInvariants(t *testing.T) {
	_, res := runTeam(t, 4, 16)
	st := res.Stats
	if st.Retired == 0 || st.Fetched < st.Retired {
		t.Errorf("fetched %d must cover retired %d", st.Fetched, st.Retired)
	}
	if st.Forks != st.Starts {
		t.Errorf("every fork is started exactly once: forks=%d starts=%d",
			st.Forks, st.Starts)
	}
	var perHart uint64
	for _, r := range st.PerHart {
		perHart += r
	}
	if perHart != st.Retired {
		t.Errorf("per-hart sum %d != retired %d", perHart, st.Retired)
	}
	if st.IPC() <= 0 || st.IPC() > float64(4) {
		t.Errorf("IPC %f out of range for a 4-core machine", st.IPC())
	}
}

// Reusing a Machine for a second Run is rejected: runs are one-shot so
// that reported statistics always describe a single program execution.
func TestMachineSingleUse(t *testing.T) {
	p, err := asm.Assemble("main:\n\tli ra, 0\n\tli t0, -1\n\tp_ret\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(1))
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err == nil {
		t.Error("second Run must be rejected")
	}
}

// The trace recorder sees the events the statistics count.
func TestTraceMatchesStats(t *testing.T) {
	src := sprintf(teamProgram, 8, 8)
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(2))
	rec := trace.New(64)
	m.SetTrace(rec)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// events = fetches + commits + forks + starts + signals + joins + sends
	want := res.Stats.Fetched + res.Stats.Retired + res.Stats.Forks +
		res.Stats.Starts + res.Stats.Signals + res.Stats.Joins + res.Stats.RemoteSends
	if rec.Count() != want {
		t.Errorf("trace events %d, stats imply %d", rec.Count(), want)
	}
	if len(rec.Last(16)) == 0 {
		t.Error("ring buffer empty")
	}
}

// p_jal: the direct-target parallelized call (Figure 5) — the callee runs
// locally while the continuation starts on the allocated hart.
func TestPJalParallelCall(t *testing.T) {
	m, res := buildAndRun(t, 1, `
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	p_fc t6
	li a1, 5
	p_swcv t6, ra, 0
	p_swcv t6, t0, 4
	p_swcv t6, a1, 8
	p_merge t0, t0, t6
	p_syncm
	p_jal ra, t0, worker    # run worker here; continuation on t6's hart
	# ---- continuation, on the forked hart ----
	p_lwcv ra, 0
	p_lwcv t0, 4            # home = main's hart
	p_lwcv a1, 8
	la a2, out
	slli a3, a1, 1          # out[1] = 10
	sw a3, 4(a2)
	la ra, mainresume
	p_ret                   # type 4: send the join address to main's hart

mainresume:                 # main's hart resumes here after the join
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret                   # ra=0, t0=-1 -> exit

worker:                     # out[0] = 7 (runs on main's hart, ra = 0)
	la a2, out
	li a3, 7
	sw a3, 0(a2)
	p_ret                   # type 2: main's hart waits for the join

	.data
out:	.fill 2, 0
`, 100000)
	if v, _ := m.ReadShared(0x80000000); v != 7 {
		t.Errorf("worker result = %d", v)
	}
	if v, _ := m.ReadShared(0x80000004); v != 10 {
		t.Errorf("continuation result = %d", v)
	}
	if res.Stats.Forks != 1 || res.Stats.Starts != 1 {
		t.Errorf("forks/starts: %d/%d", res.Stats.Forks, res.Stats.Starts)
	}
}
