package lbp

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

const decodeTestProg = "main:\n\tli ra, 0\n\tli t0, -1\n\taddi a0, zero, 7\n\tp_ret\n"

// TestDecodeImageShared: two machines loading the identical program must
// end up with the same (pointer-identical) decoded image, and the cache
// counters must reflect the hit.
func TestDecodeImageShared(t *testing.T) {
	p, err := asm.Assemble(decodeTestProg, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	h0, m0, _ := DecodeCacheStats()
	m1 := New(DefaultConfig(1))
	if err := m1.LoadProgram(p); err != nil {
		t.Fatalf("load 1: %v", err)
	}
	m2 := New(DefaultConfig(2)) // different geometry, same code image
	if err := m2.LoadProgram(p); err != nil {
		t.Fatalf("load 2: %v", err)
	}
	if m1.img == nil || m1.img != m2.img {
		t.Fatalf("machines loading the same program hold different images: %p vs %p", m1.img, m2.img)
	}
	h1, mi1, entries := DecodeCacheStats()
	if h1 <= h0 {
		t.Errorf("expected a cache hit: hits %d -> %d", h0, h1)
	}
	if mi1 <= m0 {
		t.Errorf("expected a cache miss for the first load: misses %d -> %d", m0, mi1)
	}
	if entries == 0 {
		t.Error("cache reports zero entries after a load")
	}

	// A different program must not share the image.
	p2, err := asm.Assemble("main:\n\tli ra, 0\n\tli t0, -1\n\taddi a0, zero, 8\n\tp_ret\n", asm.Options{})
	if err != nil {
		t.Fatalf("assemble 2: %v", err)
	}
	m3 := New(DefaultConfig(1))
	if err := m3.LoadProgram(p2); err != nil {
		t.Fatalf("load 3: %v", err)
	}
	if m3.img == m1.img {
		t.Error("different programs share a decoded image")
	}
}

// TestDecodeImageRestoreShared: a machine restored from a checkpoint must
// share the cached image with machines that loaded the program directly.
func TestDecodeImageRestoreShared(t *testing.T) {
	p, err := asm.Assemble(decodeTestProg, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m1 := New(DefaultConfig(1))
	if err := m1.LoadProgram(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	cp, err := m1.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	m2, err := Restore(cp)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if m2.img != m1.img {
		t.Errorf("restored machine rebuilt a private image: %p vs %p", m2.img, m1.img)
	}
	if _, err := m2.Run(100000); err != nil {
		t.Fatalf("restored run: %v", err)
	}
}

// TestDescAt: descriptor lookups mirror the old per-word decode.
func TestDescAt(t *testing.T) {
	p, err := asm.Assemble(decodeTestProg, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(DefaultConfig(1))
	if err := m.LoadProgram(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	if d := m.descAt(2); d != nil {
		t.Error("misaligned pc must not resolve")
	}
	if d := m.descAt(uint32(len(m.img.descs) * 4)); d != nil {
		t.Error("pc past the image must not resolve")
	}
	d := m.descAt(p.TextBase)
	if d == nil {
		t.Fatal("entry pc does not resolve")
	}
	w, ok := m.Mem.FetchWord(p.TextBase)
	if !ok {
		t.Fatal("entry word not fetchable")
	}
	if ref := isa.DecodeDesc(w); *d != ref {
		t.Errorf("descAt = %+v, DecodeDesc = %+v", *d, ref)
	}
}
