package lbp

import (
	"repro/internal/isa"
	"repro/internal/perf"
)

// hartState is the lifecycle state of a hardware thread.
type hartState uint8

const (
	hartFree      hartState = iota // available for p_fc/p_fn allocation
	hartAllocated                  // reserved by a fork, waiting for its start pc
	hartRunning                    // fetching/executing
	hartWaitJoin                   // ended with "keep waiting", awaits a join address
)

// uop is an in-flight instruction. uops live in the per-hart instruction
// table from rename to issue and in the reorder buffer until commit.
// d points at the instruction's shared, immutable descriptor (opcode,
// operand fields, pipeline class, latency class, memory width — see
// exec.go and decode.go); per-retire stages read it instead of
// re-deriving metadata from the opcode.
type uop struct {
	d   *isa.Desc
	pc  uint32
	seq uint64 // per-hart rename sequence number

	// Source operands: value captured at rename if the producer already
	// wrote back, otherwise dep points at the producing uop and the value
	// is captured at that uop's write back.
	src1, src2 uint32
	dep1, dep2 *uop

	issued bool
	done   bool // retired from the execution stage (commit-eligible)

	value   uint32 // register result (written back through the rb)
	needsRB bool
	memWait bool // load in flight; rb release gated on the response

	// p_ret bookkeeping: operand values captured at issue.
	isRet        bool
	retRA, retT0 uint32
}

func (u *uop) ready() bool { return u.dep1 == nil && u.dep2 == nil }

// remoteRB is one of the hart's addressable result buffers fed by p_swre
// messages from later harts; implemented as a bounded FIFO.
type remoteRB struct {
	vals []uint32
}

// hart is one hardware thread of a core.
type hart struct {
	core *core
	idx  int    // hart index within the core
	gid  uint32 // global hart number (4*core+idx)

	state        hartState
	pc           uint32
	pcValid      bool   // next pc known
	pcReadyCycle uint64 // earliest fetch cycle for the current pc
	syncmWait    bool   // p_syncm decoded: fetch blocked until memory drains

	regs       [32]uint32
	lastWriter [32]*uop // most recently renamed writer still in flight

	ib *uop   // fetched, not yet renamed (the decode-stage buffer)
	it []*uop // instruction table, in rename order

	// Reorder buffer: a fixed-capacity ring (commit consumes from the
	// head every cycle, so a plain slice would shed its backing array
	// capacity and reallocate on every wrap).
	rob     []*uop // len == Config.ROBEntries, allocated once
	robHead int
	robN    int

	seq     uint64 // rename counter
	renamed uint64 // statistics

	// Execution/result buffer: at most one value-producing instruction is
	// in flight per hart (the paper's 1-deep result buffer).
	exec        *uop
	execReadyAt uint64

	inflightMem int  // outstanding memory accesses (loads+stores+CV writes)
	hasPred     bool // must receive an ending-hart signal before p_ret commits
	predSignal  bool // signal received
	remote      []remoteRB
	retired     uint64
	startedBy   uint32 // global hart that forked us (diagnostics)
	endingEpoch uint64 // cycle of last lifecycle change (diagnostics)

	pool []*uop // recycled uops (bounded by ROB size)

	// Reusable memory-event payloads (clients.go). A hart has at most one
	// load in flight (the 1-deep result buffer gates issue until the
	// response returns), so ldc can be re-armed per load; stc is
	// stateless beyond the hart pointer and is shared by every
	// outstanding store and continuation-value write.
	ldc loadClient
	stc storeClient

	// Performance counters (always counted; reported when profiling is
	// enabled). lastCommit marks the cycle of the hart's latest commit so
	// the per-cycle stall attribution can tell retiring cycles apart.
	perf       *perf.HartCounters
	lastCommit uint64
}

// newUop takes a zeroed uop from the pool (or allocates one).
func (h *hart) newUop() *uop {
	if n := len(h.pool); n > 0 {
		u := h.pool[n-1]
		h.pool = h.pool[:n-1]
		*u = uop{}
		return u
	}
	return &uop{}
}

// freeUop returns a committed uop to the pool.
func (h *hart) freeUop(u *uop) {
	if len(h.pool) < 64 {
		h.pool = append(h.pool, u)
	}
}

// ---- reorder-buffer ring ----------------------------------------------

// robLen returns the number of in-flight entries.
func (h *hart) robLen() int { return h.robN }

// robFront returns the oldest entry; robN must be nonzero.
func (h *hart) robFront() *uop { return h.rob[h.robHead] }

// robAt returns the i-th oldest entry (0 = front); i must be < robN.
func (h *hart) robAt(i int) *uop { return h.rob[(h.robHead+i)%len(h.rob)] }

// robPush appends behind the newest entry; the caller checks robFull.
func (h *hart) robPush(u *uop) {
	h.rob[(h.robHead+h.robN)%len(h.rob)] = u
	h.robN++
}

// robPopFront removes and returns the oldest entry.
func (h *hart) robPopFront() *uop {
	u := h.rob[h.robHead]
	h.rob[h.robHead] = nil // release for the uop pool
	h.robHead = (h.robHead + 1) % len(h.rob)
	h.robN--
	return u
}

func (h *hart) robClear() {
	clear(h.rob)
	h.robHead, h.robN = 0, 0
}

// robFull reports whether the reorder buffer is at capacity.
func (h *hart) robFull(cfg *Config) bool { return h.robN >= cfg.ROBEntries }

// itFull reports whether the instruction table is at capacity.
func (h *hart) itFull(cfg *Config) bool { return len(h.it) >= cfg.ITEntries }

// setState transitions the hart lifecycle state, maintaining the owning
// core's busy-hart count so the machine can skip fully-idle cores (the
// active-core fast path; skipping is exact because every pipeline stage is
// a no-op on a core whose harts are all free).
func (h *hart) setState(s hartState) {
	old := h.state
	h.state = s
	if (old == hartFree) == (s == hartFree) {
		return
	}
	c := h.core
	if s == hartFree {
		c.busy--
		if c.busy == 0 {
			c.activeEdge = true
		}
	} else {
		c.busy++
		if c.busy == 1 {
			c.activeEdge = true
		}
	}
}

func (h *hart) reset(cfg *Config) {
	h.setState(hartFree)
	h.pc, h.pcValid, h.pcReadyCycle = 0, false, 0
	h.syncmWait = false
	h.regs = [32]uint32{}
	h.lastWriter = [32]*uop{}
	h.ib = nil
	h.it = h.it[:0]
	h.robClear()
	h.exec = nil
	h.inflightMem = 0
	h.hasPred, h.predSignal = false, false
	for i := range h.remote {
		h.remote[i].vals = h.remote[i].vals[:0]
	}
}

// allocate prepares a free hart for a fork: registers cleared, stack
// pointer set to the canonical initial value, waiting for a start pc.
func (h *hart) allocate(cfg *Config, by uint32, now uint64) {
	h.reset(cfg)
	h.setState(hartAllocated)
	h.regs[2] = cfg.SPInit(h.idx)
	h.hasPred = true
	h.startedBy = by
	h.endingEpoch = now
}

// start begins fetching at pc (delivered by a p_jalr/p_jal start message).
func (h *hart) start(pc uint32, now uint64) {
	h.setState(hartRunning)
	h.pc = pc
	h.pcValid = true
	h.pcReadyCycle = now
	h.endingEpoch = now
}

// free releases the hart for reallocation.
func (h *hart) free(now uint64) {
	h.setState(hartFree)
	h.pcValid = false
	h.ib = nil
	h.endingEpoch = now
}

// wake captures a written-back value in every dependent instruction.
func (h *hart) wake(producer *uop, value uint32) {
	for _, u := range h.it {
		if u.dep1 == producer {
			u.src1 = value
			u.dep1 = nil
		}
		if u.dep2 == producer {
			u.src2 = value
			u.dep2 = nil
		}
	}
}

// removeFromIT deletes an issued uop from the instruction table.
func (h *hart) removeFromIT(u *uop) {
	for i, v := range h.it {
		if v == u {
			h.it = append(h.it[:i], h.it[i+1:]...)
			return
		}
	}
}

// pushRemote appends a p_swre value to result buffer idx; reports overflow.
func (h *hart) pushRemote(idx int, v uint32, depth int) bool {
	if idx < 0 || idx >= len(h.remote) {
		return false
	}
	rb := &h.remote[idx]
	if len(rb.vals) >= depth {
		return false
	}
	rb.vals = append(rb.vals, v)
	return true
}

// popRemote removes and returns the head of result buffer idx.
func (h *hart) popRemote(idx int) (uint32, bool) {
	if idx < 0 || idx >= len(h.remote) || len(h.remote[idx].vals) == 0 {
		return 0, false
	}
	v := h.remote[idx].vals[0]
	h.remote[idx].vals = h.remote[idx].vals[1:]
	return v, true
}
