package lbp

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/trace"
)

// core is one LBP core: a five-stage pipeline shared by four harts.
// Each stage handles at most one instruction per cycle, selecting among
// the harts with a rotating priority (deterministic round robin).
type core struct {
	m     *Machine
	idx   int
	harts [HartsPerCore]*hart
	busy  int // harts not in hartFree state (maintained by hart.setState)

	fetchRR, renameRR, issueRR, wbRR, commitRR int

	perf *perf.CoreCounters // stage-occupancy counters (always counted)

	// Phase-A outputs: the ordered stream of deferred cross-core/global
	// effects and the cycle's trace events, both drained by
	// Machine.applyPending (phase B); whole-run statistic counters
	// folded into the totals by Machine.result; and the
	// did-any-hart-commit flag. activeEdge
	// marks a busy-count 0<->nonzero transition (active-list rebuild);
	// freeSnap is the cycle-start "has a free hart" snapshot the
	// *previous* core's p_fn issue check reads race-free.
	pend                              []pendItem
	evbuf                             []trace.Event
	statFetched, statForks, statSends uint64
	committed                         bool
	activeEdge                        bool
	freeSnap                          bool
}

// stepCompute advances the core by one cycle (phase A). Stages run in
// reverse pipeline order so that a stage's output is consumed by the
// next stage one cycle later at the earliest. It mutates only this
// core's state — everything cross-core or machine-global lands in the
// pending stream (or, on a serial cycle, applies inline; see
// core.effect) — and reports whether any stage did work.
func (c *core) stepCompute(now uint64) bool {
	start := c.perf.StageBusy
	c.commit(now)
	c.writeback(now)
	c.issue(now)
	c.rename(now)
	c.fetch(now)
	return c.perf.StageBusy != start
}

// Each stage scans the harts with rotating priority (deterministic round
// robin) and takes the first eligible one, updating the rotation pointer.
// The selection loops are written out per stage, without predicate
// closures, to keep the per-cycle hot path free of function values and
// allocations.

// ---- fetch stage ----------------------------------------------------

// fetch selects a hart whose pc is known and fetches one instruction into
// the decode buffer. A hart is suspended after every fetch until the next
// pc is produced (at rename for sequential flow and direct jumps, at
// execution for branches and indirect jumps) — the paper hides this
// latency with multithreading instead of prediction.
func (c *core) fetch(now uint64) {
	var h *hart
	for i := 1; i <= HartsPerCore; i++ {
		cand := c.harts[(c.fetchRR+i)%HartsPerCore]
		if cand.state != hartRunning || !cand.pcValid || cand.pcReadyCycle > now || cand.ib != nil {
			continue
		}
		if cand.syncmWait && cand.inflightMem > 0 {
			continue
		}
		h = cand
		c.fetchRR = cand.idx
		break
	}
	if h == nil {
		return
	}
	c.perf.StageBusy[perf.StageFetch]++
	h.syncmWait = false
	d := c.m.descAt(h.pc)
	if d == nil {
		c.faultf(h.idx, "instruction fetch from unmapped pc %#x", h.pc)
		return
	}
	if d.Inst.Op == isa.OpInvalid {
		c.faultf(h.idx, "invalid instruction %#08x at pc %#x", d.Inst.Raw, h.pc)
		return
	}
	u := h.newUop()
	u.d = d
	u.pc = h.pc
	h.ib = u
	h.pcValid = false
	c.statFetched++
	c.emit(trace.KindFetch, h.idx, uint64(u.pc))
}

// ---- decode/rename stage ---------------------------------------------

// rename moves the decode-buffer instruction into the instruction table
// and reorder buffer, records its source dependencies and produces the
// next pc when it is knowable at decode.
func (c *core) rename(now uint64) {
	var h *hart
	for i := 1; i <= HartsPerCore; i++ {
		cand := c.harts[(c.renameRR+i)%HartsPerCore]
		if cand.ib == nil || cand.itFull(&c.m.cfg) || cand.robFull(&c.m.cfg) {
			continue
		}
		h = cand
		c.renameRR = cand.idx
		break
	}
	if h == nil {
		return
	}
	c.perf.StageBusy[perf.StageRename]++
	u := h.ib
	h.ib = nil
	d := u.d
	in := &d.Inst

	if d.ReadsRs1() && in.Rs1 != 0 {
		if lw := h.lastWriter[in.Rs1]; lw != nil {
			u.dep1 = lw
		} else {
			u.src1 = h.regs[in.Rs1]
		}
	}
	if d.ReadsRs2() && in.Rs2 != 0 {
		if lw := h.lastWriter[in.Rs2]; lw != nil {
			u.dep2 = lw
		} else {
			u.src2 = h.regs[in.Rs2]
		}
	}
	u.seq = h.seq
	h.seq++
	u.isRet = d.IsPRet()
	writesRd := d.WritesRd()
	u.needsRB = writesRd || d.Cls == isa.ClassLoad ||
		(d.Cls == isa.ClassJump && !u.isRet)
	if writesRd {
		h.lastWriter[in.Rd] = u
	}
	h.it = append(h.it, u)
	h.robPush(u)

	// Next-pc production (Figure 10: nextPC leaves the decode stage).
	switch {
	case in.Op == isa.OpJAL || in.Op == isa.OpPJAL:
		h.pc = u.pc + uint32(in.Imm)
		h.pcValid = true
		h.pcReadyCycle = now + 1
	case in.Op == isa.OpJALR || in.Op == isa.OpPJALR || d.Cls == isa.ClassBranch:
		// resolved at execution; fetch stays suspended
	case in.Op == isa.OpPSYNCM:
		h.pc = u.pc + 4
		h.pcValid = true
		h.pcReadyCycle = now + 1
		h.syncmWait = true
	case in.Op == isa.OpECALL || in.Op == isa.OpEBREAK:
		// execution terminates at commit; fetch stops here
	default:
		h.pc = u.pc + 4
		h.pcValid = true
		h.pcReadyCycle = now + 1
	}
}

// ---- issue stage -----------------------------------------------------

// issue selects one ready instruction (oldest first within the selected
// hart) and begins its execution.
func (c *core) issue(now uint64) {
	var ih *hart
	var iu *uop
	for i := 1; i <= HartsPerCore; i++ {
		h := c.harts[(c.issueRR+i)%HartsPerCore]
		if u := c.issuable(h); u != nil {
			ih, iu = h, u
			break
		}
	}
	if ih == nil {
		return
	}
	c.issueRR = ih.idx
	c.perf.StageBusy[perf.StageIssue]++
	c.execute(ih, iu, now)
}

// issuable returns the oldest instruction of h that can issue this cycle.
func (c *core) issuable(h *hart) *uop {
	for _, u := range h.it {
		if !u.ready() {
			continue
		}
		if c.canIssue(h, u) {
			return u
		}
	}
	return nil
}

func (c *core) canIssue(h *hart, u *uop) bool {
	if u.needsRB && h.exec != nil {
		return false
	}
	d := u.d
	if c.m.cfg.StrictMemOrder && (d.Cls == isa.ClassLoad || d.Cls == isa.ClassStore) {
		// Memory operations leave the instruction table in program order
		// (standing in for compiler-inserted p_syncm; see DESIGN.md).
		for _, older := range h.it {
			if older.seq >= u.seq {
				break
			}
			if oc := older.d.Cls; oc == isa.ClassLoad || oc == isa.ClassStore {
				return false
			}
		}
	}
	switch d.Inst.Op {
	case isa.OpPLWRE:
		idx := int(d.Inst.Imm)
		return idx >= 0 && idx < len(h.remote) && len(h.remote[idx].vals) > 0
	case isa.OpPFC:
		return c.freeHart() != nil
	case isa.OpPFN:
		// A p_fn past the last core is a machine fault, raised at execute.
		if c.idx+1 >= len(c.m.cores) {
			return true
		}
		// The cycle-start snapshot, not live state: the next core's own
		// compute phase may be allocating or freeing harts concurrently.
		// The allocation itself re-resolves in phase B, in core order.
		return c.m.cores[c.idx+1].freeSnap
	}
	return true
}

// execute performs the semantics of an issued instruction: one indexed
// call through the descriptor dispatch table (exec.go).
func (c *core) execute(h *hart, u *uop, now uint64) {
	u.issued = true
	h.removeFromIT(u)
	execTab[u.d.Inst.Op](c, h, u, now)
}

func (c *core) startExec(h *hart, u *uop, readyAt uint64) {
	h.exec = u
	h.execReadyAt = readyAt
}

func execJAL(c *core, h *hart, u *uop, now uint64) {
	// target pc was produced at rename
	u.value = u.pc + 4
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

func execJALR(c *core, h *hart, u *uop, now uint64) {
	u.value = u.pc + 4
	h.pc = (u.src1 + uint32(u.d.Inst.Imm)) &^ 1
	h.pcValid = true
	h.pcReadyCycle = now + 1
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

func execPJAL(c *core, h *hart, u *uop, now uint64) {
	// local target pc was produced at rename; start the continuation
	// on the designated hart.
	u.value = 0 // "clear rd"
	c.sendStart(h, resolveLink(u.src1), u.pc+4)
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

func execPJALR(c *core, h *hart, u *uop, now uint64) {
	if u.isRet {
		u.retRA = u.src1
		u.retT0 = u.src2
		u.done = true // ending actions run at commit, in order
		return
	}
	u.value = 0
	h.pc = u.src2 &^ 1
	h.pcValid = true
	h.pcReadyCycle = now + 1
	c.sendStart(h, resolveLink(u.src1), u.pc+4)
	c.startExec(h, u, now+c.m.latTab[isa.LatALU])
}

func (c *core) execLoad(h *hart, u *uop, now uint64) {
	d := u.d
	addr := u.src1 + uint32(d.Inst.Imm)
	if addr%uint32(d.MemW) != 0 {
		c.faultf(h.idx, "misaligned load of width %d at %#x (pc %#x)", d.MemW, addr, u.pc)
		return
	}
	u.memWait = true
	c.startExec(h, u, ^uint64(0))
	h.inflightMem++
	if !c.m.Mem.DataMapped(addr) {
		c.faultf(h.idx, "load from unmapped address %#x (pc %#x)", addr, u.pc)
		return
	}
	// Arm the hart's reusable load client here in phase A: at most one
	// load is in flight per hart (the 1-deep result buffer holds the
	// previous one in the exec slot until delivery), so the slot is
	// idle, and nothing reads it before phase B submits it.
	h.ldc.u, h.ldc.v = u, 0
	c.effect(pendItem{kind: pendLoad, h: h,
		a: addr, w: mem.Width(d.MemW), signed: d.MemSigned()})
}

func (c *core) execStore(h *hart, u *uop, now uint64) {
	d := u.d
	addr := u.src1 + uint32(d.Inst.Imm)
	if addr%uint32(d.MemW) != 0 {
		c.faultf(h.idx, "misaligned store of width %d at %#x (pc %#x)", d.MemW, addr, u.pc)
		return
	}
	h.inflightMem++
	if !c.m.Mem.DataMapped(addr) {
		c.faultf(h.idx, "store to unmapped address %#x (pc %#x)", addr, u.pc)
		return
	}
	c.effect(pendItem{kind: pendStore, h: h, a: addr, b: u.src2, w: mem.Width(d.MemW)})
	u.done = true
}

// ---- write back stage -------------------------------------------------

// writeback retires one completed execution per cycle: the result buffer
// value is written to the register file and dependents are woken.
func (c *core) writeback(now uint64) {
	var h *hart
	for i := 1; i <= HartsPerCore; i++ {
		cand := c.harts[(c.wbRR+i)%HartsPerCore]
		if cand.exec == nil || cand.exec.memWait || cand.execReadyAt > now {
			continue
		}
		h = cand
		c.wbRR = cand.idx
		break
	}
	if h == nil {
		return
	}
	c.perf.StageBusy[perf.StageWriteback]++
	u := h.exec
	h.exec = nil
	if u.d.WritesRd() {
		rd := u.d.Inst.Rd
		if h.lastWriter[rd] == u {
			h.lastWriter[rd] = nil
			h.regs[rd] = u.value
		}
		h.wake(u, u.value)
	}
	u.done = true
}

// ---- commit stage ------------------------------------------------------

// commit retires one instruction per cycle in per-hart program order.
// p_ret commits only once the ending-hart signal from the predecessor has
// been received and the hart's memory accesses have drained — this is the
// hardware barrier between a parallel section and its sequel.
func (c *core) commit(now uint64) {
	var h *hart
	for i := 1; i <= HartsPerCore; i++ {
		cand := c.harts[(c.commitRR+i)%HartsPerCore]
		if cand.robN == 0 || !cand.robFront().done {
			continue
		}
		if u := cand.robFront(); u.isRet {
			if (cand.hasPred && !cand.predSignal) || cand.inflightMem > 0 || cand.exec != nil {
				continue
			}
		}
		h = cand
		c.commitRR = cand.idx
		break
	}
	if h == nil {
		return
	}
	u := h.robPopFront()
	h.retired++
	h.lastCommit = now
	h.perf.Commits++
	h.perf.Retired[u.d.Cls]++
	c.perf.StageBusy[perf.StageCommit]++
	c.committed = true
	c.emit(trace.KindCommit, h.idx, uint64(u.pc))
	switch {
	case u.isRet:
		c.doRet(h, u, now)
	case u.d.Inst.Op == isa.OpECALL || u.d.Inst.Op == isa.OpEBREAK:
		c.deferHalt(u.d.Inst.Op.String())
	}
	h.freeUop(u)
}
