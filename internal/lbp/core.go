package lbp

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/trace"
)

// core is one LBP core: a five-stage pipeline shared by four harts.
// Each stage handles at most one instruction per cycle, selecting among
// the harts with a rotating priority (deterministic round robin).
type core struct {
	m     *Machine
	idx   int
	harts [HartsPerCore]*hart
	busy  int // harts not in hartFree state (maintained by hart.setState)

	fetchRR, renameRR, issueRR, wbRR, commitRR int

	perf *perf.CoreCounters // stage-occupancy counters (always counted)

	// Phase-A outputs: the ordered stream of deferred cross-core/global
	// effects and the cycle's trace events, both drained by
	// Machine.applyPending (phase B); whole-run statistic counters
	// folded into the totals by Machine.result; and the
	// did-any-hart-commit flag. activeEdge
	// marks a busy-count 0<->nonzero transition (active-list rebuild);
	// freeSnap is the cycle-start "has a free hart" snapshot the
	// *previous* core's p_fn issue check reads race-free.
	pend                              []pendItem
	evbuf                             []trace.Event
	statFetched, statForks, statSends uint64
	committed                         bool
	activeEdge                        bool
	freeSnap                          bool
}

// stepCompute advances the core by one cycle (phase A). Stages run in
// reverse pipeline order so that a stage's output is consumed by the
// next stage one cycle later at the earliest. It mutates only this
// core's state — everything cross-core or machine-global lands in the
// pending stream — and reports whether any stage did work.
func (c *core) stepCompute(now uint64) bool {
	start := c.perf.StageBusy
	c.commit(now)
	c.writeback(now)
	c.issue(now)
	c.rename(now)
	c.fetch(now)
	return c.perf.StageBusy != start
}

// Each stage scans the harts with rotating priority (deterministic round
// robin) and takes the first eligible one, updating the rotation pointer.
// The selection loops are written out per stage, without predicate
// closures, to keep the per-cycle hot path free of function values and
// allocations.

// ---- fetch stage ----------------------------------------------------

// fetch selects a hart whose pc is known and fetches one instruction into
// the decode buffer. A hart is suspended after every fetch until the next
// pc is produced (at rename for sequential flow and direct jumps, at
// execution for branches and indirect jumps) — the paper hides this
// latency with multithreading instead of prediction.
func (c *core) fetch(now uint64) {
	var h *hart
	for i := 1; i <= HartsPerCore; i++ {
		cand := c.harts[(c.fetchRR+i)%HartsPerCore]
		if cand.state != hartRunning || !cand.pcValid || cand.pcReadyCycle > now || cand.ib != nil {
			continue
		}
		if cand.syncmWait && cand.inflightMem > 0 {
			continue
		}
		h = cand
		c.fetchRR = cand.idx
		break
	}
	if h == nil {
		return
	}
	c.perf.StageBusy[perf.StageFetch]++
	h.syncmWait = false
	in, ok := c.m.decodedAt(h.pc)
	if !ok {
		c.faultf(h.idx, "instruction fetch from unmapped pc %#x", h.pc)
		return
	}
	if in.Op == isa.OpInvalid {
		c.faultf(h.idx, "invalid instruction %#08x at pc %#x", in.Raw, h.pc)
		return
	}
	u := h.newUop()
	u.inst = in
	u.pc = h.pc
	h.ib = u
	h.pcValid = false
	c.statFetched++
	c.emit(trace.KindFetch, h.idx, uint64(u.pc))
}

// ---- decode/rename stage ---------------------------------------------

// rename moves the decode-buffer instruction into the instruction table
// and reorder buffer, records its source dependencies and produces the
// next pc when it is knowable at decode.
func (c *core) rename(now uint64) {
	var h *hart
	for i := 1; i <= HartsPerCore; i++ {
		cand := c.harts[(c.renameRR+i)%HartsPerCore]
		if cand.ib == nil || cand.itFull(&c.m.cfg) || cand.robFull(&c.m.cfg) {
			continue
		}
		h = cand
		c.renameRR = cand.idx
		break
	}
	if h == nil {
		return
	}
	c.perf.StageBusy[perf.StageRename]++
	u := h.ib
	h.ib = nil
	in := &u.inst

	if in.ReadsRs1() && in.Rs1 != 0 {
		if lw := h.lastWriter[in.Rs1]; lw != nil {
			u.dep1 = lw
		} else {
			u.src1 = h.regs[in.Rs1]
		}
	}
	if in.ReadsRs2() && in.Rs2 != 0 {
		if lw := h.lastWriter[in.Rs2]; lw != nil {
			u.dep2 = lw
		} else {
			u.src2 = h.regs[in.Rs2]
		}
	}
	u.seq = h.seq
	h.seq++
	class := isa.ClassOf(in.Op)
	u.cls = class
	u.isRet = in.IsPRet()
	u.needsRB = in.WritesRd() || class == isa.ClassLoad ||
		(class == isa.ClassJump && !u.isRet)
	if in.WritesRd() {
		h.lastWriter[in.Rd] = u
	}
	h.it = append(h.it, u)
	h.rob = append(h.rob, u)

	// Next-pc production (Figure 10: nextPC leaves the decode stage).
	switch {
	case in.Op == isa.OpJAL || in.Op == isa.OpPJAL:
		h.pc = u.pc + uint32(in.Imm)
		h.pcValid = true
		h.pcReadyCycle = now + 1
	case in.Op == isa.OpJALR || in.Op == isa.OpPJALR || class == isa.ClassBranch:
		// resolved at execution; fetch stays suspended
	case in.Op == isa.OpPSYNCM:
		h.pc = u.pc + 4
		h.pcValid = true
		h.pcReadyCycle = now + 1
		h.syncmWait = true
	case in.Op == isa.OpECALL || in.Op == isa.OpEBREAK:
		// execution terminates at commit; fetch stops here
	default:
		h.pc = u.pc + 4
		h.pcValid = true
		h.pcReadyCycle = now + 1
	}
}

// ---- issue stage -----------------------------------------------------

// issue selects one ready instruction (oldest first within the selected
// hart) and begins its execution.
func (c *core) issue(now uint64) {
	var ih *hart
	var iu *uop
	for i := 1; i <= HartsPerCore; i++ {
		h := c.harts[(c.issueRR+i)%HartsPerCore]
		if u := c.issuable(h); u != nil {
			ih, iu = h, u
			break
		}
	}
	if ih == nil {
		return
	}
	c.issueRR = ih.idx
	c.perf.StageBusy[perf.StageIssue]++
	c.execute(ih, iu, now)
}

// issuable returns the oldest instruction of h that can issue this cycle.
func (c *core) issuable(h *hart) *uop {
	for _, u := range h.it {
		if !u.ready() {
			continue
		}
		if c.canIssue(h, u) {
			return u
		}
	}
	return nil
}

func (c *core) canIssue(h *hart, u *uop) bool {
	if u.needsRB && h.exec != nil {
		return false
	}
	in := &u.inst
	class := isa.ClassOf(in.Op)
	if c.m.cfg.StrictMemOrder && (class == isa.ClassLoad || class == isa.ClassStore) {
		// Memory operations leave the instruction table in program order
		// (standing in for compiler-inserted p_syncm; see DESIGN.md).
		for _, older := range h.it {
			if older.seq >= u.seq {
				break
			}
			oc := isa.ClassOf(older.inst.Op)
			if oc == isa.ClassLoad || oc == isa.ClassStore {
				return false
			}
		}
	}
	switch in.Op {
	case isa.OpPLWRE:
		idx := int(in.Imm)
		return idx >= 0 && idx < len(h.remote) && len(h.remote[idx].vals) > 0
	case isa.OpPFC:
		return c.freeHart() != nil
	case isa.OpPFN:
		// A p_fn past the last core is a machine fault, raised at execute.
		if c.idx+1 >= len(c.m.cores) {
			return true
		}
		// The cycle-start snapshot, not live state: the next core's own
		// compute phase may be allocating or freeing harts concurrently.
		// The allocation itself re-resolves in phase B, in core order.
		return c.m.cores[c.idx+1].freeSnap
	}
	return true
}

// execute performs the semantics of an issued instruction.
func (c *core) execute(h *hart, u *uop, now uint64) {
	u.issued = true
	h.removeFromIT(u)
	in := &u.inst
	switch isa.ClassOf(in.Op) {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		u.value = aluCompute(in, u.src1, u.src2, u.pc)
		c.startExec(h, u, now+c.m.latencyOf(in.Op))
	case isa.ClassBranch:
		target := u.pc + 4
		if branchTaken(in.Op, u.src1, u.src2) {
			target = u.pc + uint32(in.Imm)
		}
		h.pc = target
		h.pcValid = true
		h.pcReadyCycle = now + 1
		u.done = true
	case isa.ClassJump:
		c.execJump(h, u, now)
	case isa.ClassLoad:
		c.execLoad(h, u, now)
	case isa.ClassStore:
		switch in.Op {
		case isa.OpPSWCV:
			c.execSwcv(h, u, now)
		case isa.OpPSWRE:
			c.execSwre(h, u, now)
		default:
			c.execStore(h, u, now)
		}
	case isa.ClassSystem:
		u.done = true
	case isa.ClassXPar:
		c.execXPar(h, u, now)
	}
}

func (c *core) startExec(h *hart, u *uop, readyAt uint64) {
	h.exec = u
	h.execReadyAt = readyAt
}

func (c *core) execJump(h *hart, u *uop, now uint64) {
	in := &u.inst
	cont := u.pc + 4
	switch in.Op {
	case isa.OpJAL:
		// target pc was produced at rename
		u.value = cont
		c.startExec(h, u, now+uint64(c.m.cfg.ALULat))
	case isa.OpJALR:
		u.value = cont
		h.pc = (u.src1 + uint32(in.Imm)) &^ 1
		h.pcValid = true
		h.pcReadyCycle = now + 1
		c.startExec(h, u, now+uint64(c.m.cfg.ALULat))
	case isa.OpPJAL:
		// local target pc was produced at rename; start the continuation
		// on the designated hart.
		u.value = 0 // "clear rd"
		c.sendStart(h, resolveLink(u.src1), cont)
		c.startExec(h, u, now+uint64(c.m.cfg.ALULat))
	case isa.OpPJALR:
		if u.isRet {
			u.retRA = u.src1
			u.retT0 = u.src2
			u.done = true // ending actions run at commit, in order
			return
		}
		u.value = 0
		h.pc = u.src2 &^ 1
		h.pcValid = true
		h.pcReadyCycle = now + 1
		c.sendStart(h, resolveLink(u.src1), cont)
		c.startExec(h, u, now+uint64(c.m.cfg.ALULat))
	}
}

func (c *core) execLoad(h *hart, u *uop, now uint64) {
	in := &u.inst
	addr := u.src1 + uint32(in.Imm)
	w, signed := memWidth(in.Op)
	if addr%uint32(w) != 0 {
		c.faultf(h.idx, "misaligned load of width %d at %#x (pc %#x)", w, addr, u.pc)
		return
	}
	u.memWait = true
	c.startExec(h, u, ^uint64(0))
	h.inflightMem++
	if !c.m.Mem.DataMapped(addr) {
		c.faultf(h.idx, "load from unmapped address %#x (pc %#x)", addr, u.pc)
		return
	}
	c.pend = append(c.pend, pendItem{kind: pendLoad, h: h, u: u,
		a: addr, w: mem.Width(w), signed: signed})
}

func (c *core) execStore(h *hart, u *uop, now uint64) {
	in := &u.inst
	addr := u.src1 + uint32(in.Imm)
	w, _ := memWidth(in.Op)
	if addr%uint32(w) != 0 {
		c.faultf(h.idx, "misaligned store of width %d at %#x (pc %#x)", w, addr, u.pc)
		return
	}
	h.inflightMem++
	if !c.m.Mem.DataMapped(addr) {
		c.faultf(h.idx, "store to unmapped address %#x (pc %#x)", addr, u.pc)
		return
	}
	c.pend = append(c.pend, pendItem{kind: pendStore, h: h,
		a: addr, b: u.src2, w: mem.Width(w)})
	u.done = true
}

// ---- write back stage -------------------------------------------------

// writeback retires one completed execution per cycle: the result buffer
// value is written to the register file and dependents are woken.
func (c *core) writeback(now uint64) {
	var h *hart
	for i := 1; i <= HartsPerCore; i++ {
		cand := c.harts[(c.wbRR+i)%HartsPerCore]
		if cand.exec == nil || cand.exec.memWait || cand.execReadyAt > now {
			continue
		}
		h = cand
		c.wbRR = cand.idx
		break
	}
	if h == nil {
		return
	}
	c.perf.StageBusy[perf.StageWriteback]++
	u := h.exec
	h.exec = nil
	if u.inst.WritesRd() {
		rd := u.inst.Rd
		if h.lastWriter[rd] == u {
			h.lastWriter[rd] = nil
			h.regs[rd] = u.value
		}
		h.wake(u, u.value)
	}
	u.done = true
}

// ---- commit stage ------------------------------------------------------

// commit retires one instruction per cycle in per-hart program order.
// p_ret commits only once the ending-hart signal from the predecessor has
// been received and the hart's memory accesses have drained — this is the
// hardware barrier between a parallel section and its sequel.
func (c *core) commit(now uint64) {
	var h *hart
	for i := 1; i <= HartsPerCore; i++ {
		cand := c.harts[(c.commitRR+i)%HartsPerCore]
		if len(cand.rob) == 0 || !cand.rob[0].done {
			continue
		}
		if u := cand.rob[0]; u.isRet {
			if (cand.hasPred && !cand.predSignal) || cand.inflightMem > 0 || cand.exec != nil {
				continue
			}
		}
		h = cand
		c.commitRR = cand.idx
		break
	}
	if h == nil {
		return
	}
	u := h.rob[0]
	h.rob = h.rob[1:]
	h.retired++
	h.lastCommit = now
	h.perf.Commits++
	h.perf.Retired[u.cls]++
	c.perf.StageBusy[perf.StageCommit]++
	c.committed = true
	c.emit(trace.KindCommit, h.idx, uint64(u.pc))
	switch {
	case u.isRet:
		c.doRet(h, u, now)
	case u.inst.Op == isa.OpECALL || u.inst.Op == isa.OpEBREAK:
		c.deferHalt(u.inst.Op.String())
	}
	h.freeUop(u)
}
