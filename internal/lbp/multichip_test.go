package lbp

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/trace"
)

// Teams spanning several chips (Figure 15): the fork protocol crosses
// the chip edge on the forward neighbor link, joins return on the
// backward line, and the run stays cycle-deterministic.

const multiChipTeam = `
main:
	li t0, -1
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	la a0, thread
	la a1, result
	li a3, 32
	jal LBP_parallel_start
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

thread:
	slli a5, a2, 2
	add a5, a1, a5
	addi a6, a2, 1000
	sw a6, 0(a5)
	p_ret

LBP_parallel_start:
	li a2, 0
Lps_loop:
	addi a5, a3, -1
	bge a2, a5, Lps_last
	p_set a5, zero
	srli a5, a5, 16
	andi a5, a5, 3
	li a6, 3
	blt a5, a6, Lps_fc
	p_fn t6
	j Lps_send
Lps_fc:
	p_fc t6
Lps_send:
	p_swcv t6, ra, 0
	p_swcv t6, t0, 4
	p_swcv t6, a0, 8
	p_swcv t6, a1, 12
	p_swcv t6, a2, 16
	p_swcv t6, a3, 20
	p_merge t0, t0, t6
	p_syncm
	p_jalr ra, t0, a0
	p_lwcv ra, 0
	p_lwcv t0, 4
	p_lwcv a0, 8
	p_lwcv a1, 12
	p_lwcv a2, 16
	p_lwcv a3, 20
	addi a2, a2, 1
	j Lps_loop
Lps_last:
	addi sp, sp, -8
	sw ra, 0(sp)
	sw t0, 4(sp)
	p_set t0, t0
	jalr ra, a0
	lw ra, 0(sp)
	lw t0, 4(sp)
	addi sp, sp, 8
	p_ret

	.data
result:
	.fill 32, 0
`

func runChips(t *testing.T, perChip, chipHop int) *Result {
	t.Helper()
	p, err := asm.Assemble(multiChipTeam, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8)
	cfg.Mem.CoresPerChip = perChip
	cfg.Mem.ChipHopLat = chipHop
	m := New(cfg)
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if v, _ := m.ReadShared(0x80000000 + uint32(4*i)); v != uint32(1000+i) {
			t.Errorf("result[%d] = %d", i, v)
		}
	}
	return res
}

func TestTeamSpansChips(t *testing.T) {
	res := runChips(t, 4, 20) // two chips of 4 cores, team of 32 harts
	if res.Stats.Forks != 31 {
		t.Errorf("forks = %d", res.Stats.Forks)
	}
	for i, r := range res.Stats.PerHart {
		if r == 0 {
			t.Errorf("hart %d idle", i)
		}
	}
}

func TestChipEdgeCostsCycles(t *testing.T) {
	mono := runChips(t, 8, 0) // single chip
	duo := runChips(t, 4, 20) // chip edge between cores 3 and 4
	if duo.Stats.Cycles <= mono.Stats.Cycles {
		t.Errorf("crossing the chip edge must cost cycles: %d vs %d",
			duo.Stats.Cycles, mono.Stats.Cycles)
	}
	if duo.Stats.Retired != mono.Stats.Retired {
		t.Errorf("chip latency must not change the instruction count: %d vs %d",
			duo.Stats.Retired, mono.Stats.Retired)
	}
}

func TestMultiChipDeterminism(t *testing.T) {
	p, err := asm.Assemble(multiChipTeam, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	digest := func() uint64 {
		cfg := DefaultConfig(8)
		cfg.Mem.CoresPerChip = 4
		cfg.Mem.ChipHopLat = 20
		m := New(cfg)
		rec := trace.New(0)
		m.SetTrace(rec)
		if err := m.LoadProgram(p); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return rec.Digest()
	}
	if digest() != digest() {
		t.Error("multi-chip runs must be cycle-deterministic")
	}
}
