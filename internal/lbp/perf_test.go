package lbp

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/perf"
	"repro/internal/trace"
)

// runTeamProfiled runs the Figure 6-8 team program with stall attribution
// enabled and returns the machine, result and counter snapshot.
func runTeamProfiled(t *testing.T, cores, nt int) (*Machine, *Result, *perf.Snapshot) {
	t.Helper()
	p, err := asm.Assemble(sprintf(teamProgram, nt, nt), asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(DefaultConfig(cores))
	m.EnableProfiling()
	if err := m.LoadProgram(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := m.Run(2_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := m.PerfSnapshot()
	if s == nil {
		t.Fatal("PerfSnapshot returned nil with profiling enabled")
	}
	return m, res, s
}

// The accounting identity: with profiling on, every hart-cycle is either
// a commit or exactly one named stall cause. Nothing escapes.
func TestPerfAccountingExact(t *testing.T) {
	m, res, s := runTeamProfiled(t, 4, 16)
	checkTeamResult(t, m, 16)

	harts := 4 * HartsPerCore
	if s.Harts != harts {
		t.Fatalf("snapshot harts = %d, want %d", s.Harts, harts)
	}
	if s.Cycles != res.Stats.Cycles {
		t.Errorf("snapshot cycles = %d, result cycles = %d", s.Cycles, res.Stats.Cycles)
	}
	if want := s.Cycles * uint64(harts); s.HartCycles != want {
		t.Errorf("HartCycles = %d, want %d", s.HartCycles, want)
	}
	if s.CommitCycles != res.Stats.Retired {
		t.Errorf("CommitCycles = %d, Retired = %d", s.CommitCycles, res.Stats.Retired)
	}
	var stalls uint64
	for _, c := range s.Stalls {
		stalls += c.Value
	}
	if s.CommitCycles+stalls != s.HartCycles {
		t.Errorf("commit(%d) + stalls(%d) = %d, want %d hart-cycles",
			s.CommitCycles, stalls, s.CommitCycles+stalls, s.HartCycles)
	}
	if f := s.AttributedFraction(); f != 1.0 {
		t.Errorf("AttributedFraction = %v, want exactly 1.0", f)
	}

	// The retired-instruction mix must account for every commit, and the
	// commit stage's occupancy is by definition the commit count.
	var retired uint64
	for _, c := range s.Retired {
		retired += c.Value
	}
	if retired != s.CommitCycles {
		t.Errorf("sum(retired by class) = %d, want %d", retired, s.CommitCycles)
	}
	if got := s.StageBusy[perf.StageCommit].Value; got != s.CommitCycles {
		t.Errorf("StageBusy[commit] = %d, want %d", got, s.CommitCycles)
	}

	// Per-core breakdowns must fold back into the machine totals.
	var coreCommits uint64
	perCoreStalls := make([]uint64, perf.NumStallCauses)
	for _, cs := range s.PerCore {
		coreCommits += cs.CommitCycles
		for i, c := range cs.Stalls {
			perCoreStalls[i] += c.Value
		}
	}
	if coreCommits != s.CommitCycles {
		t.Errorf("per-core commits sum = %d, want %d", coreCommits, s.CommitCycles)
	}
	for i, c := range s.Stalls {
		if perCoreStalls[i] != c.Value {
			t.Errorf("per-core %s sum = %d, want %d", c.Name, perCoreStalls[i], c.Value)
		}
	}

	// A 16-member team on 4 cores forks, joins and touches shared memory:
	// the corresponding causes must all have been observed.
	for _, cause := range []perf.StallCause{perf.StallHartFree, perf.StallFork, perf.StallJoin, perf.StallMem} {
		if s.StallCycles(cause) == 0 {
			t.Errorf("stall cause %s never observed", cause)
		}
	}
	var lat uint64
	for _, b := range s.LocalLat {
		lat += b
	}
	for _, b := range s.RemoteLat {
		lat += b
	}
	if lat == 0 {
		t.Error("no memory latency observations recorded")
	}
	var linkWait uint64
	for _, c := range s.LinkWait {
		linkWait += c.Value
	}
	if linkWait != m.Mem.Stats.TotalWaitCycles {
		t.Errorf("sum(link waits) = %d, want TotalWaitCycles = %d",
			linkWait, m.Mem.Stats.TotalWaitCycles)
	}
}

// Profiling must be observation-only: the same program with and without
// profiling retires the same instructions in the same cycles with an
// identical event trace.
func TestPerfDoesNotPerturb(t *testing.T) {
	run := func(profile bool) (*Result, *trace.Recorder) {
		p, err := asm.Assemble(sprintf(teamProgram, 16, 16), asm.Options{})
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		m := New(DefaultConfig(4))
		rec := trace.New(0)
		m.SetTrace(rec)
		if profile {
			m.EnableProfiling()
		} else if m.PerfSnapshot() != nil {
			t.Fatal("PerfSnapshot must be nil without EnableProfiling")
		}
		if err := m.LoadProgram(p); err != nil {
			t.Fatalf("load: %v", err)
		}
		res, err := m.Run(2_000_000)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res, rec
	}
	plain, plainRec := run(false)
	prof, profRec := run(true)
	if plain.Stats.Cycles != prof.Stats.Cycles {
		t.Errorf("cycles: plain %d, profiled %d", plain.Stats.Cycles, prof.Stats.Cycles)
	}
	if plain.Stats.Retired != prof.Stats.Retired {
		t.Errorf("retired: plain %d, profiled %d", plain.Stats.Retired, prof.Stats.Retired)
	}
	if !trace.Same(plainRec, profRec) {
		t.Error("profiling changed the event-trace digest")
	}
}

// Counter snapshots are themselves deterministic: two profiled runs of
// the same program produce identical snapshots and identical renderings.
func TestPerfSnapshotDeterministic(t *testing.T) {
	_, _, a := runTeamProfiled(t, 4, 16)
	_, _, b := runTeamProfiled(t, 4, 16)
	if a.Format() != b.Format() {
		t.Errorf("snapshots differ:\n--- a ---\n%s--- b ---\n%s", a.Format(), b.Format())
	}
}
