package perf

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 31, 32}, {^uint64(0), 32},
	}
	for _, c := range cases {
		h.Observe(c.v)
		if h.Buckets[c.bucket] == 0 {
			t.Errorf("Observe(%d) did not land in bucket %d: %v", c.v, c.bucket, h.Buckets)
		}
	}
	if h.Total() != uint64(len(cases)) {
		t.Errorf("Total = %d, want %d", h.Total(), len(cases))
	}
}

// Every enum value must have a distinct table name — a missing entry
// would silently render as "" in snapshots and reports.
func TestNameTablesComplete(t *testing.T) {
	seen := map[string]bool{}
	check := func(name string) {
		t.Helper()
		if name == "" || name == "unknown" || seen[name] {
			t.Errorf("bad or duplicate enum name %q", name)
		}
		seen[name] = true
	}
	for c := 0; c < NumStallCauses; c++ {
		check(StallCause(c).String())
	}
	for s := 0; s < NumStages; s++ {
		check(Stage(s).String())
	}
	for l := 0; l < NumLinkClasses; l++ {
		check(LinkClass(l).String())
	}
	for c := 0; c < numClasses; c++ {
		check(classNames[c])
	}
	if StallCause(200).String() != "unknown" ||
		Stage(200).String() != "unknown" || LinkClass(200).String() != "unknown" {
		t.Error("out-of-range enums must print as unknown")
	}
}

func buildSample() *Snapshot {
	harts := make([]HartCounters, 8) // 2 cores x 4 harts
	cores := make([]CoreCounters, 2)
	mc := &MemCounters{}
	for i := range harts {
		harts[i].Commits = uint64(10 * (i + 1))
		harts[i].Stalls[StallMem] = uint64(i)
		harts[i].Retired[3] = harts[i].Commits // all loads
	}
	cores[0].StageBusy[StageCommit] = 100
	cores[1].StageBusy[StageCommit] = 260
	mc.LinkWait[LinkBankPort] = 42
	mc.LocalLat.Observe(3)
	mc.RemoteLat.Observe(12)
	return Build(1000, 4, harts, cores, mc)
}

func TestBuildAggregates(t *testing.T) {
	s := buildSample()
	if s.Cycles != 1000 || s.Harts != 8 || s.HartCycles != 8000 {
		t.Errorf("totals: %+v", s)
	}
	if s.CommitCycles != 360 { // 10+20+...+80
		t.Errorf("CommitCycles = %d", s.CommitCycles)
	}
	if s.StallCycles(StallMem) != 28 { // 0+1+...+7
		t.Errorf("StallMem = %d", s.StallCycles(StallMem))
	}
	if len(s.PerCore) != 2 {
		t.Fatalf("PerCore: %+v", s.PerCore)
	}
	if s.PerCore[0].CommitCycles != 100 || s.PerCore[1].CommitCycles != 260 {
		t.Errorf("per-core commits: %+v", s.PerCore)
	}
	if s.LinkWait[LinkBankPort].Value != 42 {
		t.Errorf("LinkWait: %+v", s.LinkWait)
	}
	// trimHist cuts after the last non-zero bucket: Observe(3) -> bucket 2,
	// Observe(12) -> bucket 4.
	if len(s.LocalLat) != 3 || len(s.RemoteLat) != 5 {
		t.Errorf("histograms: local %v remote %v", s.LocalLat, s.RemoteLat)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := buildSample()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"stallCycles"`, `"linkWaitCycles"`, `"memory-wait"`, `"bank-port"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, &back) {
		t.Error("snapshot does not round-trip through JSON")
	}
}

func TestAttributedFraction(t *testing.T) {
	s := &Snapshot{HartCycles: 100, CommitCycles: 40,
		Stalls: []Count{{"a", 30}, {"b", 30}}}
	if f := s.AttributedFraction(); f != 1.0 {
		t.Errorf("exact accounting: %v", f)
	}
	s.Stalls[1].Value = 15
	if f := s.AttributedFraction(); f != 0.75 {
		t.Errorf("partial accounting: %v", f)
	}
	idle := &Snapshot{HartCycles: 50, CommitCycles: 50}
	if f := idle.AttributedFraction(); f != 1.0 {
		t.Errorf("all-commit run must be fully attributed: %v", f)
	}
}

func TestFormatReport(t *testing.T) {
	out := buildSample().Format()
	for _, want := range []string{
		"cycle attribution", "8 harts x 1000 cycles", "commit",
		"memory-wait", "retired by class", "load=360",
		"stage occupancy", "link wait cycles", "bank-port=42",
		"local :", "remote:", "[2,4)=1", "[8,16)=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
