// Package perf defines the deterministic performance-counter sets of the
// LBP simulator: per-hart cycle attribution by stall cause, per-core
// pipeline-stage occupancy, the retired-instruction mix by opcode class,
// and the memory-side counters (per-link-class wait cycles and
// local-vs-remote latency histograms).
//
// The counters are plain integers incremented inline by the simulator —
// they never feed back into timing, so enabling them cannot change a
// run's cycle count or event-trace digest. Because every simulated
// machine is single-threaded, counter values are a pure function of the
// program and the configuration: two runs of the same figure must produce
// byte-identical snapshots regardless of the host-side worker count (the
// seq-vs-parallel equivalence tests assert exactly that).
package perf

import (
	"math/bits"

	"repro/internal/isa"
)

// StallCause attributes one non-retiring hart-cycle. Every hart-cycle of
// a profiled run is either a commit or exactly one of these causes, so
// CommitCycles + sum(StallCycles) == Cycles * NumHarts.
type StallCause uint8

const (
	// StallHartFree: the hart is free — no team member is placed on it.
	StallHartFree StallCause = iota
	// StallFetch: the hart is running but its pipeline is empty and the
	// next pc is not yet fetchable (the per-fetch suspension of Section 5.2).
	StallFetch
	// StallOperand: the oldest instruction waits for a source operand
	// (an in-flight producer, or a p_lwre result not yet arrived).
	StallOperand
	// StallMem: the hart waits on the memory system — an in-flight load,
	// a p_syncm / p_ret drain, or a load/store held by the issue order.
	StallMem
	// StallFork: a p_fc/p_fn waits for a free hart, or a freshly
	// allocated hart waits for its start pc.
	StallFork
	// StallJoin: the hart waits at the hardware barrier — a p_ret held by
	// the predecessor's ending-hart signal, or a hart parked for a join
	// address.
	StallJoin
	// StallPipeline: the hart has work in flight but did not commit this
	// cycle — functional-unit latency, result-buffer occupancy, or losing
	// a stage's round-robin slot to a sibling hart.
	StallPipeline

	NumStallCauses = int(StallPipeline) + 1
)

var stallNames = [NumStallCauses]string{
	"hart-free", "fetch-starved", "operand-wait", "memory-wait",
	"fork-slot-wait", "join-wait", "pipeline-busy",
}

// String returns the snapshot/table name of the cause.
func (c StallCause) String() string {
	if int(c) < NumStallCauses {
		return stallNames[c]
	}
	return "unknown"
}

// Stage indexes the five pipeline stages for occupancy counting.
type Stage uint8

const (
	StageFetch Stage = iota
	StageRename
	StageIssue
	StageWriteback
	StageCommit

	NumStages = int(StageCommit) + 1
)

var stageNames = [NumStages]string{"fetch", "rename", "issue", "writeback", "commit"}

// String returns the stage name.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// numClasses covers isa.ClassALU..isa.ClassXPar.
const numClasses = int(isa.ClassXPar) + 1

var classNames = [numClasses]string{
	"alu", "mul", "div", "load", "store", "branch", "jump", "system", "xpar",
}

// HartCounters is the per-hart counter set, incremented by the pipeline.
type HartCounters struct {
	Stalls  [NumStallCauses]uint64
	Commits uint64
	Retired [numClasses]uint64
}

// CoreCounters is the per-core counter set: cycles in which each pipeline
// stage processed an instruction.
type CoreCounters struct {
	StageBusy [NumStages]uint64
}

// LinkClass labels the link families of the memory system for wait-cycle
// attribution (see mem.System: every unidirectional link carries one
// transaction per cycle, so time spent waiting for a busy slot is the
// contention signal).
type LinkClass uint8

const (
	LinkCoreUp    LinkClass = iota // core -> r1 request link
	LinkCoreDown                   // r1 -> core result link
	LinkLocalPort                  // local-bank port (stacks, CV area)
	LinkBankPort                   // shared-bank port, router side
	LinkBankLocal                  // shared-bank port, own-core side
	LinkR1Req                      // r1 <-> r2 request links
	LinkR1Resp                     // r1 <-> r2 result links
	LinkR2Req                      // r2 <-> r3 request links
	LinkR2Resp                     // r2 <-> r3 result links
	LinkForward                    // forward neighbor link (forks, CVs, signals)
	LinkBackward                   // backward line (joins, p_swre results)
	LinkChipReq                    // external chip-to-chip request links
	LinkChipResp                   // external chip-to-chip result links

	NumLinkClasses = int(LinkChipResp) + 1
)

// Router levels beyond r2 — which exist only on machines above 64
// cores — attribute their waits to the r2 classes: LinkWait is a fixed
// array inside every serialized checkpoint, and gob ties a fixed
// array's identity to its length, so growing the enum would make
// version-1 checkpoints undecodable. The upper tree is one aggregate
// contention bucket; per-level granularity lives in the timing model,
// not the counters.

var linkNames = [NumLinkClasses]string{
	"core-up", "core-down", "local-port", "bank-port", "bank-local",
	"r1-req", "r1-resp", "r2-req", "r2-resp",
	"forward", "backward", "chip-req", "chip-resp",
}

// String returns the snapshot/table name of the link class.
func (l LinkClass) String() string {
	if int(l) < NumLinkClasses {
		return linkNames[l]
	}
	return "unknown"
}

// Histogram counts values in log2 buckets: bucket i holds values v with
// bits.Len64(v) == i, i.e. bucket 0 is v == 0 and bucket i >= 1 covers
// [2^(i-1), 2^i).
type Histogram struct {
	Buckets [33]uint64
}

// Observe adds one value.
func (h *Histogram) Observe(v uint64) {
	b := bits.Len64(v)
	if b >= len(h.Buckets) {
		b = len(h.Buckets) - 1
	}
	h.Buckets[b]++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 {
	var n uint64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// MemCounters is the memory-side counter set, owned by mem.System and
// incremented inline by the link-slot allocator and the submit paths.
type MemCounters struct {
	// LinkWait accumulates, per link class, the cycles transactions spent
	// waiting for a busy link slot.
	LinkWait [NumLinkClasses]uint64
	// LocalLat / RemoteLat are submit-to-completion latency histograms:
	// local covers local-bank and own-shared-bank accesses, remote covers
	// routed shared accesses.
	LocalLat  Histogram
	RemoteLat Histogram
}
