package perf

import (
	"fmt"
	"strings"
)

// Count is one named counter value in a snapshot, kept in canonical
// (enum) order so that snapshots of equal runs compare byte-identical.
type Count struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// CoreSnapshot is the per-core slice of a snapshot.
type CoreSnapshot struct {
	Core         int     `json:"core"`
	CommitCycles uint64  `json:"commitCycles"`
	Stalls       []Count `json:"stallCycles"`
	StageBusy    []Count `json:"stageBusyCycles"`
}

// Snapshot is the serializable form of a run's counters: embedded in
// BENCH_fig<N>.json by `lbp-bench -profile` and rendered as a table by
// `lbp-run -stats`. All slices are in canonical enum order.
type Snapshot struct {
	Cycles       uint64 `json:"cycles"`
	Harts        int    `json:"harts"`
	HartCycles   uint64 `json:"hartCycles"` // Cycles * Harts
	CommitCycles uint64 `json:"commitCycles"`

	Stalls    []Count `json:"stallCycles"`
	StageBusy []Count `json:"stageBusyCycles"`
	Retired   []Count `json:"retiredByClass"`

	LinkWait  []Count  `json:"linkWaitCycles"`
	LocalLat  []uint64 `json:"localLatencyLog2"`  // bucket i: see Histogram
	RemoteLat []uint64 `json:"remoteLatencyLog2"` //

	PerCore []CoreSnapshot `json:"perCore"`
}

// Build aggregates raw counters into a Snapshot. harts must be ordered by
// global hart number and cores by core index; the per-core breakdown
// folds each core's consecutive HartsPerCore harts together.
func Build(cycles uint64, hartsPerCore int, harts []HartCounters, cores []CoreCounters, mc *MemCounters) *Snapshot {
	s := &Snapshot{
		Cycles:     cycles,
		Harts:      len(harts),
		HartCycles: cycles * uint64(len(harts)),
	}
	var stalls [NumStallCauses]uint64
	var retired [numClasses]uint64
	for i := range harts {
		h := &harts[i]
		s.CommitCycles += h.Commits
		for c, v := range h.Stalls {
			stalls[c] += v
		}
		for c, v := range h.Retired {
			retired[c] += v
		}
	}
	for c, v := range stalls {
		s.Stalls = append(s.Stalls, Count{StallCause(c).String(), v})
	}
	for c, v := range retired {
		s.Retired = append(s.Retired, Count{classNames[c], v})
	}
	var stages [NumStages]uint64
	for i := range cores {
		for st, v := range cores[i].StageBusy {
			stages[st] += v
		}
	}
	for st, v := range stages {
		s.StageBusy = append(s.StageBusy, Count{Stage(st).String(), v})
	}
	for l, v := range mc.LinkWait {
		s.LinkWait = append(s.LinkWait, Count{LinkClass(l).String(), v})
	}
	s.LocalLat = trimHist(&mc.LocalLat)
	s.RemoteLat = trimHist(&mc.RemoteLat)
	for ci := range cores {
		cs := CoreSnapshot{Core: ci}
		var cStalls [NumStallCauses]uint64
		for hi := 0; hi < hartsPerCore; hi++ {
			h := &harts[ci*hartsPerCore+hi]
			cs.CommitCycles += h.Commits
			for c, v := range h.Stalls {
				cStalls[c] += v
			}
		}
		for c, v := range cStalls {
			cs.Stalls = append(cs.Stalls, Count{StallCause(c).String(), v})
		}
		for st, v := range cores[ci].StageBusy {
			cs.StageBusy = append(cs.StageBusy, Count{Stage(st).String(), v})
		}
		s.PerCore = append(s.PerCore, cs)
	}
	return s
}

// trimHist renders a histogram as a slice cut after the last non-zero
// bucket (an empty histogram becomes an empty, non-nil slice).
func trimHist(h *Histogram) []uint64 {
	last := 0
	for i, b := range h.Buckets {
		if b > 0 {
			last = i + 1
		}
	}
	out := make([]uint64, last)
	copy(out, h.Buckets[:last])
	return out
}

// StallCycles returns the snapshot's total for one cause.
func (s *Snapshot) StallCycles(c StallCause) uint64 {
	return s.Stalls[c].Value
}

// AttributedFraction returns the fraction of non-retiring hart-cycles
// attributed to a named stall cause (1.0 when the accounting is exact).
func (s *Snapshot) AttributedFraction() float64 {
	non := s.HartCycles - s.CommitCycles
	if non == 0 {
		return 1
	}
	var attributed uint64
	for _, c := range s.Stalls {
		attributed += c.Value
	}
	return float64(attributed) / float64(non)
}

// Format renders the snapshot as the human-readable attribution tables of
// `lbp-run -stats`.
func (s *Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle attribution (%d harts x %d cycles = %d hart-cycles)\n",
		s.Harts, s.Cycles, s.HartCycles)
	pct := func(v uint64) float64 {
		if s.HartCycles == 0 {
			return 0
		}
		return 100 * float64(v) / float64(s.HartCycles)
	}
	fmt.Fprintf(&b, "  %-16s %14d  %5.1f%%\n", "commit", s.CommitCycles, pct(s.CommitCycles))
	for _, c := range s.Stalls {
		fmt.Fprintf(&b, "  %-16s %14d  %5.1f%%\n", c.Name, c.Value, pct(c.Value))
	}
	b.WriteString("retired by class: ")
	writeCounts(&b, s.Retired)
	b.WriteString("stage occupancy (busy cycles): ")
	writeCounts(&b, s.StageBusy)
	b.WriteString("link wait cycles: ")
	writeCounts(&b, s.LinkWait)
	fmt.Fprintf(&b, "memory latency (log2 buckets, cycles):\n")
	fmt.Fprintf(&b, "  local : %s\n", formatHist(s.LocalLat))
	fmt.Fprintf(&b, "  remote: %s\n", formatHist(s.RemoteLat))
	return b.String()
}

// writeCounts prints non-zero counts on one line, "(none)" if all zero.
func writeCounts(b *strings.Builder, counts []Count) {
	any := false
	for _, c := range counts {
		if c.Value == 0 {
			continue
		}
		if any {
			b.WriteString("  ")
		}
		fmt.Fprintf(b, "%s=%d", c.Name, c.Value)
		any = true
	}
	if !any {
		b.WriteString("(none)")
	}
	b.WriteString("\n")
}

// formatHist prints "[lo,hi)=count" terms for the non-zero buckets.
func formatHist(buckets []uint64) string {
	var parts []string
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		switch i {
		case 0:
			parts = append(parts, fmt.Sprintf("0=%d", n))
		case 1:
			parts = append(parts, fmt.Sprintf("1=%d", n))
		default:
			parts = append(parts, fmt.Sprintf("[%d,%d)=%d", 1<<(i-1), 1<<i, n))
		}
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, "  ")
}
