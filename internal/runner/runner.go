// Package runner fans independent simulations across host CPUs.
//
// The simulated LBP machine is cycle-deterministic by construction
// (DESIGN.md §6): host parallelism between whole simulations is always
// safe, and since the two-phase cycle loop (DESIGN.md §6, "Two-phase
// stepping") a machine can additionally shard its own compute phase via
// lbp.Machine.SetSimWorkers without changing any simulated result. This
// package provides the outer layer: a fixed-size worker pool that maps a
// job function over an index space and returns the results in index
// order, so a parallel sweep is observably identical to the sequential
// loop it replaces. The two layers compose — each job may itself run a
// sharded machine — but on a fully loaded host the outer fan-out alone
// is usually the better use of cores.
//
// Determinism contract for job functions:
//
//   - fn(i) must build its own lbp.Machine (and trace.Recorder, devices,
//     ...) — workers share no mutable state;
//   - fn(i) must depend only on i and on inputs that are read-only for the
//     duration of the call (e.g. a pre-assembled *asm.Program);
//   - results are placed at index i of the output slice, so the caller
//     observes the same ordering regardless of worker count or host
//     scheduling.
//
// Equivalence of parallel and sequential execution is asserted by the
// event-trace digest tests in internal/figures (extending experiment E4).
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: n <= 0 selects all host CPUs
// (GOMAXPROCS), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(0) .. fn(n-1) on up to `workers` goroutines and returns the
// results in index order. workers <= 0 uses all host CPUs; workers == 1 (or
// n <= 1) runs inline on the calling goroutine with no goroutines spawned.
//
// All n jobs are always executed — there is no early cancellation — and if
// any fail, the error of the lowest failing index is returned (the same
// error a sequential loop would have stopped at, since job errors are
// themselves deterministic). On error the result slice is nil.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map without per-job results: it runs fn(0) .. fn(n-1) across
// the pool and returns the lowest-index error, if any.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
