package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var counts [50]atomic.Int32
	_, err := Map(8, len(counts), func(i int) (struct{}, error) {
		counts[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Errorf("job %d ran %d times", i, n)
		}
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v, want job 3's", workers, err)
		}
	}
}

func TestMapErrorNilsResults(t *testing.T) {
	got, err := Map(4, 5, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(3, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Errorf("sum = %d", sum.Load())
	}
	if err := ForEach(3, 10, func(i int) error {
		if i >= 5 {
			return fmt.Errorf("e%d", i)
		}
		return nil
	}); err == nil || err.Error() != "e5" {
		t.Errorf("err = %v", err)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestMapSequentialParallelIdentical is the package-level statement of the
// determinism contract: a pure job function yields bit-identical output
// slices for any worker count.
func TestMapSequentialParallelIdentical(t *testing.T) {
	job := func(i int) (uint64, error) {
		// small deterministic FNV-style mix
		h := uint64(14695981039346656037)
		for k := 0; k < 1000; k++ {
			h ^= uint64(i + k)
			h *= 1099511628211
		}
		return h, nil
	}
	seq, err := Map(1, 64, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 16} {
		par, err := Map(workers, 64, job)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: out[%d] differs", workers, i)
			}
		}
	}
}
