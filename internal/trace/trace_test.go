package trace

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestDigestDeterministic(t *testing.T) {
	mk := func() *Recorder {
		r := New(0)
		for i := 0; i < 100; i++ {
			r.Add(Event{Cycle: uint64(i), Core: uint16(i % 4), Hart: uint8(i % 4),
				Kind: Kind(i % int(numKinds)), Value: uint64(i * 7)})
		}
		return r
	}
	a, b := mk(), mk()
	if !Same(a, b) {
		t.Error("identical streams must have identical digests")
	}
	if a.Count() != 100 {
		t.Errorf("count = %d", a.Count())
	}
}

func TestDigestSensitive(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(Event{Cycle: 1, Core: 0, Hart: 0, Kind: KindFetch, Value: 4})
	b.Add(Event{Cycle: 1, Core: 0, Hart: 0, Kind: KindFetch, Value: 8})
	if Same(a, b) {
		t.Error("different values must differ")
	}
	c, d := New(0), New(0)
	c.Add(Event{Cycle: 1, Core: 2, Hart: 0, Kind: KindCommit})
	d.Add(Event{Cycle: 1, Core: 0, Hart: 2, Kind: KindCommit})
	if Same(c, d) {
		t.Error("core/hart swap must differ")
	}
}

func TestRing(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Add(Event{Cycle: uint64(i)})
	}
	last := r.Last(4)
	if len(last) != 4 {
		t.Fatalf("got %d events", len(last))
	}
	for i, e := range last {
		if e.Cycle != uint64(6+i) {
			t.Errorf("event %d: cycle %d", i, e.Cycle)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[0].Cycle != 8 {
		t.Errorf("Last(2) = %v", got)
	}
	empty := New(0)
	if empty.Last(5) != nil {
		t.Error("recorder without ring must return nil")
	}
}

// Regression test: Last with a non-positive n used to slice with a
// negative offset (evs[len(evs)-n:] for n < 0) and panic.
func TestLastNonPositive(t *testing.T) {
	r := New(4)
	for i := 0; i < 6; i++ {
		r.Add(Event{Cycle: uint64(i)})
	}
	if got := r.Last(-1); got != nil {
		t.Errorf("Last(-1) = %v, want nil", got)
	}
	if got := r.Last(0); got != nil {
		t.Errorf("Last(0) = %v, want nil", got)
	}
}

// Last must stay oldest-first across the exact ring-wrap boundary:
// when the ring has wrapped, the result stitches the tail of the
// buffer (oldest) before its head (newest).
func TestLastAcrossWrap(t *testing.T) {
	r := New(4)
	for i := 0; i < 4; i++ { // exactly full: next == 0, full == true
		r.Add(Event{Cycle: uint64(i)})
	}
	if got := r.Last(4); len(got) != 4 || got[0].Cycle != 0 || got[3].Cycle != 3 {
		t.Errorf("Last(4) at exact fill = %v", got)
	}
	r.Add(Event{Cycle: 4}) // overwrite the oldest slot
	got := r.Last(4)
	if len(got) != 4 {
		t.Fatalf("Last(4) after wrap: %d events", len(got))
	}
	for i, e := range got {
		if e.Cycle != uint64(1+i) {
			t.Errorf("event %d: cycle %d, want %d", i, e.Cycle, 1+i)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[0].Cycle != 3 || got[1].Cycle != 4 {
		t.Errorf("Last(2) after wrap = %v", got)
	}
}

func TestKindStringOutOfRange(t *testing.T) {
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("Kind(200).String() = %q", got)
	}
	if got := numKinds.String(); got != fmt.Sprintf("kind(%d)", uint8(numKinds)) {
		t.Errorf("numKinds.String() = %q", got)
	}
	if got := KindIO.String(); got != "io" {
		t.Errorf("KindIO.String() = %q", got)
	}
}

func TestRingPartial(t *testing.T) {
	r := New(8)
	r.Add(Event{Cycle: 1})
	r.Add(Event{Cycle: 2})
	last := r.Last(8)
	if len(last) != 2 || last[0].Cycle != 1 || last[1].Cycle != 2 {
		t.Errorf("partial ring: %v", last)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 467171, Core: 55, Hart: 2, Kind: KindMemReq, Value: 106688}
	want := "at cycle 467171, core 55, hart 2: memreq 0x1a0c0"
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: order matters — any transposition of two distinct events
// changes the digest.
func TestQuickOrderSensitivity(t *testing.T) {
	f := func(v1, v2 uint64) bool {
		if v1 == v2 {
			return true
		}
		a, b := New(0), New(0)
		a.Add(Event{Value: v1})
		a.Add(Event{Value: v2})
		b.Add(Event{Value: v2})
		b.Add(Event{Value: v1})
		return !Same(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
