package trace

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestDigestDeterministic(t *testing.T) {
	mk := func() *Recorder {
		r := New(0)
		for i := 0; i < 100; i++ {
			r.Add(Event{Cycle: uint64(i), Core: uint16(i % 4), Hart: uint8(i % 4),
				Kind: Kind(i % int(numKinds)), Value: uint64(i * 7)})
		}
		return r
	}
	a, b := mk(), mk()
	if !Same(a, b) {
		t.Error("identical streams must have identical digests")
	}
	if a.Count() != 100 {
		t.Errorf("count = %d", a.Count())
	}
}

func TestDigestSensitive(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(Event{Cycle: 1, Core: 0, Hart: 0, Kind: KindFetch, Value: 4})
	b.Add(Event{Cycle: 1, Core: 0, Hart: 0, Kind: KindFetch, Value: 8})
	if Same(a, b) {
		t.Error("different values must differ")
	}
	c, d := New(0), New(0)
	c.Add(Event{Cycle: 1, Core: 2, Hart: 0, Kind: KindCommit})
	d.Add(Event{Cycle: 1, Core: 0, Hart: 2, Kind: KindCommit})
	if Same(c, d) {
		t.Error("core/hart swap must differ")
	}
}

func TestRing(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Add(Event{Cycle: uint64(i)})
	}
	last := r.Last(4)
	if len(last) != 4 {
		t.Fatalf("got %d events", len(last))
	}
	for i, e := range last {
		if e.Cycle != uint64(6+i) {
			t.Errorf("event %d: cycle %d", i, e.Cycle)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[0].Cycle != 8 {
		t.Errorf("Last(2) = %v", got)
	}
	empty := New(0)
	if empty.Last(5) != nil {
		t.Error("recorder without ring must return nil")
	}
}

// Regression test: Last with a non-positive n used to slice with a
// negative offset (evs[len(evs)-n:] for n < 0) and panic.
func TestLastNonPositive(t *testing.T) {
	r := New(4)
	for i := 0; i < 6; i++ {
		r.Add(Event{Cycle: uint64(i)})
	}
	if got := r.Last(-1); got != nil {
		t.Errorf("Last(-1) = %v, want nil", got)
	}
	if got := r.Last(0); got != nil {
		t.Errorf("Last(0) = %v, want nil", got)
	}
}

// Last must stay oldest-first across the exact ring-wrap boundary:
// when the ring has wrapped, the result stitches the tail of the
// buffer (oldest) before its head (newest).
func TestLastAcrossWrap(t *testing.T) {
	r := New(4)
	for i := 0; i < 4; i++ { // exactly full: next == 0, full == true
		r.Add(Event{Cycle: uint64(i)})
	}
	if got := r.Last(4); len(got) != 4 || got[0].Cycle != 0 || got[3].Cycle != 3 {
		t.Errorf("Last(4) at exact fill = %v", got)
	}
	r.Add(Event{Cycle: 4}) // overwrite the oldest slot
	got := r.Last(4)
	if len(got) != 4 {
		t.Fatalf("Last(4) after wrap: %d events", len(got))
	}
	for i, e := range got {
		if e.Cycle != uint64(1+i) {
			t.Errorf("event %d: cycle %d, want %d", i, e.Cycle, 1+i)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[0].Cycle != 3 || got[1].Cycle != 4 {
		t.Errorf("Last(2) after wrap = %v", got)
	}
}

func TestKindStringOutOfRange(t *testing.T) {
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("Kind(200).String() = %q", got)
	}
	if got := numKinds.String(); got != fmt.Sprintf("kind(%d)", uint8(numKinds)) {
		t.Errorf("numKinds.String() = %q", got)
	}
	if got := KindIO.String(); got != "io" {
		t.Errorf("KindIO.String() = %q", got)
	}
}

func TestRingPartial(t *testing.T) {
	r := New(8)
	r.Add(Event{Cycle: 1})
	r.Add(Event{Cycle: 2})
	last := r.Last(8)
	if len(last) != 2 || last[0].Cycle != 1 || last[1].Cycle != 2 {
		t.Errorf("partial ring: %v", last)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 467171, Core: 55, Hart: 2, Kind: KindMemReq, Value: 106688}
	want := "at cycle 467171, core 55, hart 2: memreq 0x1a0c0"
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: order matters — any transposition of two distinct events
// changes the digest.
func TestQuickOrderSensitivity(t *testing.T) {
	f := func(v1, v2 uint64) bool {
		if v1 == v2 {
			return true
		}
		a, b := New(0), New(0)
		a.Add(Event{Value: v1})
		a.Add(Event{Value: v2})
		b.Add(Event{Value: v2})
		b.Add(Event{Value: v1})
		return !Same(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// refFold is the straight-line reference FNV-1a fold the optimized
// zero-run fold in Add/AddBatch must match byte for byte.
func refFold(h uint64, evs []Event) uint64 {
	for _, e := range evs {
		for _, w := range [4]uint64{e.Cycle, uint64(e.Core)<<8 | uint64(e.Hart), uint64(e.Kind), e.Value} {
			for i := 0; i < 8; i++ {
				h ^= w & 0xFF
				h *= fnvPrime
				w >>= 8
			}
		}
	}
	return h
}

func TestDigestMatchesReference(t *testing.T) {
	cases := [][]Event{
		nil,
		{{}}, // all-zero event: a 32-byte zero run
		{{}, {}, {}},
		{{Cycle: 1, Core: 2, Hart: 3, Kind: KindFork, Value: 4}},
		{{Cycle: 0xFFFFFFFFFFFFFFFF, Value: 0xFFFFFFFFFFFFFFFF, Core: 0xFFFF, Hart: 0xFF, Kind: Kind(255)}},
		{{Cycle: 0x0100}, {Value: 0x01000000_00000000}}, // interior and leading zeros
		{{Cycle: 0x00FF00FF00FF00FF, Value: 0xFF00FF00FF00FF00}},
	}
	for i, evs := range cases {
		ra, rb := New(0), New(0)
		for _, e := range evs {
			ra.Add(e)
		}
		rb.AddBatch(evs)
		want := refFold(fnvOffset, evs)
		if ra.Digest() != want {
			t.Errorf("case %d: Add digest %#x, reference %#x", i, ra.Digest(), want)
		}
		if rb.Digest() != want {
			t.Errorf("case %d: AddBatch digest %#x, reference %#x", i, rb.Digest(), want)
		}
	}
	if err := quick.Check(func(evs []Event) bool {
		r := New(0)
		r.AddBatch(evs)
		return r.Digest() == refFold(fnvOffset, evs)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// quick generates uniform random words (few zero bytes); also sweep
	// sparse events, where the zero-run path does the real work.
	for cyc := uint64(0); cyc < 300; cyc += 7 {
		evs := []Event{
			{Cycle: cyc, Kind: KindCommit, Value: cyc * cyc},
			{Cycle: cyc, Core: 1, Kind: KindFetch},
		}
		r := New(0)
		r.AddBatch(evs)
		if want := refFold(fnvOffset, evs); r.Digest() != want {
			t.Fatalf("cycle %d: digest %#x, reference %#x", cyc, r.Digest(), want)
		}
	}
}

func BenchmarkAddBatch(b *testing.B) {
	evs := make([]Event, 256)
	for i := range evs {
		evs[i] = Event{Cycle: uint64(4000 + i), Core: uint16(i % 64), Hart: uint8(i % 4),
			Kind: Kind(i % int(numKinds)), Value: uint64(i * 2654435761)}
	}
	r := New(0)
	b.SetBytes(int64(len(evs) * 32))
	for i := 0; i < b.N; i++ {
		r.AddBatch(evs)
	}
}
