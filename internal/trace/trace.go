// Package trace records the cycle-by-cycle events of an LBP run in a form
// suitable for determinism checking: every event folds into a running
// 64-bit FNV-1a digest, and (optionally) the most recent events are kept
// in a ring buffer for inspection.
//
// Two runs of the same program on the same machine configuration must
// produce identical digests and identical event counts — that is the
// paper's cycle-determinism property (experiment E4 in DESIGN.md).
package trace

import (
	"fmt"
	"math/bits"
)

// Kind labels an event class.
type Kind uint8

const (
	KindFetch Kind = iota
	KindCommit
	KindMemReq
	KindMemDone
	KindFork
	KindStart
	KindSignal
	KindJoin
	KindSend
	KindRecv
	KindIO
	numKinds
)

var kindNames = [numKinds]string{
	"fetch", "commit", "memreq", "memdone", "fork", "start",
	"signal", "join", "send", "recv", "io",
}

// String returns a short name for the kind.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one machine event.
type Event struct {
	Cycle uint64
	Core  uint16
	Hart  uint8
	Kind  Kind
	Value uint64 // event-specific payload (pc, address, value, ...)
}

// String formats an event like the paper's example statements
// ("at cycle 467171, core 55, hart 2 ...").
func (e Event) String() string {
	return fmt.Sprintf("at cycle %d, core %d, hart %d: %s %#x",
		e.Cycle, e.Core, e.Hart, e.Kind, e.Value)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvPow[k] = fnvPrime^k mod 2^64. Folding a zero byte is
// h = (h ^ 0) * prime = h * prime, so a run of k zero bytes collapses to
// one multiplication by prime^k — the event words are mostly-zero
// (cycle counts, hart numbers, kinds are small), and the digest fold is
// the hot loop of every traced run, so the collapse is worth the table.
var fnvPow = func() [33]uint64 {
	var p [33]uint64
	p[0] = 1
	for i := 1; i < len(p); i++ {
		p[i] = p[i-1] * fnvPrime
	}
	return p
}()

// flushZeros folds zrun pending zero bytes into h.
func flushZeros(h uint64, zrun int) uint64 {
	for zrun >= 32 {
		h *= fnvPow[32]
		zrun -= 32
	}
	return h * fnvPow[zrun]
}

// foldWord folds the 8 little-endian bytes of w into h, byte-identical
// to the reference per-byte FNV-1a loop. Zero bytes at the low end join
// the caller's pending run; zero bytes at the high end are returned as
// the new pending run, so runs spanning word (and event) boundaries
// still collapse.
func foldWord(h uint64, w uint64, zrun int) (uint64, int) {
	if w == 0 {
		return h, zrun + 8
	}
	tz := bits.TrailingZeros64(w) >> 3
	h = flushZeros(h, zrun+tz)
	hi := 8 - bits.LeadingZeros64(w)>>3
	w >>= uint(tz * 8)
	for i := tz; i < hi; i++ {
		h ^= w & 0xFF
		h *= fnvPrime
		w >>= 8
	}
	return h, 8 - hi
}

// foldEvent folds one event's four words, carrying the zero run.
func foldEvent(h uint64, e *Event, zrun int) (uint64, int) {
	h, zrun = foldWord(h, e.Cycle, zrun)
	h, zrun = foldWord(h, uint64(e.Core)<<8|uint64(e.Hart), zrun)
	h, zrun = foldWord(h, uint64(e.Kind), zrun)
	h, zrun = foldWord(h, e.Value, zrun)
	return h, zrun
}

// Recorder accumulates events. The zero value records nothing; use New.
type Recorder struct {
	digest uint64
	count  uint64
	ring   []Event
	next   int
	full   bool
}

// New creates a Recorder keeping the last ringSize events (0 = none).
func New(ringSize int) *Recorder {
	r := &Recorder{digest: fnvOffset}
	if ringSize > 0 {
		r.ring = make([]Event, ringSize)
	}
	return r
}

// Add folds an event into the digest.
func (r *Recorder) Add(e Event) {
	h, zrun := foldEvent(r.digest, &e, 0)
	r.digest = flushZeros(h, zrun)
	r.count++
	if r.ring != nil {
		r.ring[r.next] = e
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
			r.full = true
		}
	}
}

// AddBatch folds a slice of events in order, exactly as the equivalent
// Add calls would, but keeps the digest in a register across the batch —
// the simulator drains one core's cycle worth of events at a time, and
// the per-call overhead of Add is measurable at that rate.
func (r *Recorder) AddBatch(evs []Event) {
	h, zrun := r.digest, 0
	for i := range evs {
		h, zrun = foldEvent(h, &evs[i], zrun)
	}
	r.digest = flushZeros(h, zrun)
	r.count += uint64(len(evs))
	if r.ring != nil {
		for _, e := range evs {
			r.ring[r.next] = e
			r.next++
			if r.next == len(r.ring) {
				r.next = 0
				r.full = true
			}
		}
	}
}

// Digest returns the running digest.
func (r *Recorder) Digest() uint64 { return r.digest }

// Count returns the number of recorded events.
func (r *Recorder) Count() uint64 { return r.count }

// RingSize returns the event-retention capacity (0 = digest-only: the
// recorder folds events but keeps none for Last or WriteChrome).
func (r *Recorder) RingSize() int { return len(r.ring) }

// Last returns up to n of the most recent events, oldest first.
// Non-positive n returns nil.
func (r *Recorder) Last(n int) []Event {
	if r.ring == nil || n <= 0 {
		return nil
	}
	var evs []Event
	if r.full {
		evs = append(evs, r.ring[r.next:]...)
	}
	evs = append(evs, r.ring[:r.next]...)
	if n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Same reports whether two recorders saw identical event streams
// (same digest and count).
func Same(a, b *Recorder) bool {
	return a.Digest() == b.Digest() && a.Count() == b.Count()
}

// RecorderState is the serializable state of a Recorder. Restoring it
// with NewFromState yields a recorder whose digest, count and ring
// contents continue exactly where the original left off.
type RecorderState struct {
	Digest uint64
	Count  uint64
	Ring   []Event
	Next   int
	Full   bool
}

// State snapshots the recorder.
func (r *Recorder) State() RecorderState {
	return RecorderState{
		Digest: r.digest,
		Count:  r.count,
		Ring:   append([]Event(nil), r.ring...),
		Next:   r.next,
		Full:   r.full,
	}
}

// NewFromState rebuilds a recorder from a snapshot.
func NewFromState(st RecorderState) *Recorder {
	r := &Recorder{digest: st.Digest, count: st.Count, next: st.Next, full: st.Full}
	if len(st.Ring) > 0 {
		r.ring = append([]Event(nil), st.Ring...)
	}
	if r.next < 0 || r.next >= len(r.ring) {
		// A corrupt snapshot must not make Add index out of range.
		r.next = 0
	}
	return r
}
