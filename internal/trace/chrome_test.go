package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

type chromeDoc struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

func decodeChrome(t *testing.T, b []byte) chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, b)
	}
	return doc
}

func TestWriteChromeSpans(t *testing.T) {
	evs := []Event{
		{Cycle: 5, Core: 0, Hart: 0, Kind: KindFork, Value: 6},
		{Cycle: 10, Core: 1, Hart: 2, Kind: KindStart, Value: 0x100},
		{Cycle: 20, Core: 1, Hart: 2, Kind: KindCommit, Value: 0x104},
		{Cycle: 50, Core: 1, Hart: 2, Kind: KindJoin, Value: 0x200},
		{Cycle: 60, Core: 0, Hart: 1, Kind: KindStart, Value: 0x300},
		{Cycle: 70, Core: 0, Hart: 0, Kind: KindCommit, Value: 0x108},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, buf.Bytes())

	var instants, spans int
	var joined, open map[string]any
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "i":
			instants++
		case "X":
			spans++
			switch e["pid"].(float64) {
			case 1:
				joined = e
			case 0:
				open = e
			}
		}
	}
	if instants != len(evs) {
		t.Errorf("instants = %d, want %d", instants, len(evs))
	}
	if spans != 2 {
		t.Fatalf("spans = %d, want 2 (one joined, one still open)", spans)
	}
	if joined["ts"].(float64) != 10 || joined["dur"].(float64) != 40 ||
		joined["tid"].(float64) != 2 {
		t.Errorf("joined span = %v, want ts=10 dur=40 tid=2", joined)
	}
	// The hart that never joined is closed at the last seen cycle (70).
	if open["ts"].(float64) != 60 || open["dur"].(float64) != 10 ||
		open["tid"].(float64) != 1 {
		t.Errorf("open span = %v, want ts=60 dur=10 tid=1", open)
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	// Many open spans exercise the map-iteration path, which must be
	// hidden by the final sort.
	var evs []Event
	for i := 0; i < 32; i++ {
		evs = append(evs, Event{
			Cycle: uint64(100 + i), Core: uint16(i % 7), Hart: uint8(i % 4),
			Kind: KindStart, Value: uint64(i),
		})
	}
	var a, b bytes.Buffer
	if err := WriteChrome(&a, evs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical inputs must serialize identically")
	}
	decodeChrome(t, a.Bytes())
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if doc := decodeChrome(t, buf.Bytes()); len(doc.TraceEvents) != 0 {
		t.Errorf("empty input produced %d events", len(doc.TraceEvents))
	}
}

func TestRecorderWriteChrome(t *testing.T) {
	r := New(8)
	r.Add(Event{Cycle: 1, Core: 0, Hart: 0, Kind: KindStart})
	r.Add(Event{Cycle: 9, Core: 0, Hart: 0, Kind: KindJoin})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, buf.Bytes())
	if len(doc.TraceEvents) != 3 { // 2 instants + 1 span
		t.Errorf("got %d events, want 3\n%s", len(doc.TraceEvents), buf.Bytes())
	}
}
