package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteChrome writes evs (oldest first, as returned by Recorder.Last) in
// the Chrome trace-event JSON format, loadable in chrome://tracing or
// Perfetto. One simulated cycle maps to one trace microsecond.
//
// Every event becomes a thread-scoped instant on (pid=core, tid=hart).
// Hart lifetimes are reconstructed as complete ("X") spans from the
// existing event stream — a span opens at a hart's KindStart and closes
// at its KindJoin (or at the last seen cycle if the hart never joined,
// e.g. hart 0 or a truncated ring). No new event kinds are introduced,
// so digests recorded before this exporter existed are unaffected.
//
// The output is deterministic: instants appear in input order, spans
// sorted by (core, hart, start cycle).
func WriteChrome(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	put := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n ")
		fmt.Fprintf(bw, format, args...)
	}

	type key struct {
		core uint16
		hart uint8
	}
	type span struct {
		core       uint16
		hart       uint8
		start, end uint64
	}
	open := make(map[key]uint64)
	var spans []span
	var last uint64
	for _, e := range evs {
		if e.Cycle > last {
			last = e.Cycle
		}
		put(`{"name":%q,"ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"value":%d}}`,
			e.Kind.String(), e.Cycle, e.Core, e.Hart, e.Value)
		k := key{e.Core, e.Hart}
		switch e.Kind {
		case KindStart:
			if s, ok := open[k]; ok {
				// restarted without an observed join (ring truncation):
				// close the stale span at the new start.
				spans = append(spans, span{k.core, k.hart, s, e.Cycle})
			}
			open[k] = e.Cycle
		case KindJoin:
			if s, ok := open[k]; ok {
				spans = append(spans, span{k.core, k.hart, s, e.Cycle})
				delete(open, k)
			}
		}
	}
	for k, s := range open {
		spans = append(spans, span{k.core, k.hart, s, last})
	}
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.core != b.core {
			return a.core < b.core
		}
		if a.hart != b.hart {
			return a.hart < b.hart
		}
		return a.start < b.start
	})
	for _, s := range spans {
		put(`{"name":"hart","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d}`,
			s.start, s.end-s.start, s.core, s.hart)
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}

// WriteChrome exports all events retained in the recorder's ring buffer.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChrome(w, r.Last(len(r.ring)))
}
