package mem

import "repro/internal/perf"

// Width of a memory access in bytes.
type Width uint8

const (
	Width8  Width = 1
	Width16 Width = 2
	Width32 Width = 4
)

// LoadClient receives a load's value at bank service time and its
// completion at response-delivery time. A shared load schedules two
// events — the bank read at service time parks the value in the client,
// the response delivery hands back the completion cycle — both carrying
// the same client, so implementations must be pointer types: checkpoint
// capture relies on pointer identity to keep the pair attached to one
// serialized client record.
type LoadClient interface {
	LoadValue(v uint32)
	LoadDone(done uint64)
}

// DoneClient receives a completion cycle: a store acknowledged back at
// the core, a continuation-value write performed at the target bank, or
// a control message delivered over the neighbor links.
type DoneClient interface {
	Done(done uint64)
}

// LoadFunc adapts a callback to the LoadClient interface, for tests and
// tools. Adapter clients are not serializable: a checkpoint taken while
// one is in flight fails.
func LoadFunc(fn func(value uint32, done uint64)) LoadClient {
	return &loadFunc{fn: fn}
}

type loadFunc struct {
	fn func(uint32, uint64)
	v  uint32
}

func (l *loadFunc) LoadValue(v uint32)   { l.v = v }
func (l *loadFunc) LoadDone(done uint64) { l.fn(l.v, done) }

// DoneFunc adapts a callback to the DoneClient interface, for tests and
// tools. Like LoadFunc adapters it cannot be checkpointed.
type DoneFunc func(done uint64)

// Done implements DoneClient.
func (f DoneFunc) Done(done uint64) { f(done) }

// evKind discriminates the typed memory events. Events are plain data —
// no closures — so the in-flight queue is serializable; the client
// fields carry the machine-side payload invoked on dispatch.
type evKind uint8

const (
	evLocalLoad   evKind = iota // read a local bank, deliver value + done
	evSharedRead                // read a shared bank at service time (value parks in the client)
	evLoadDone                  // deliver a shared load's completion
	evLocalStore                // write a local bank, acknowledge
	evSharedWrite               // write a shared bank at service time
	evStoreDone                 // acknowledge a shared store
	evCVWrite                   // continuation-value word write into a local bank
	evMessage                   // control-message delivery (forward/backward links)
)

// event is a scheduled action in the memory system: applying an access at
// its bank service time, or delivering a response at its completion time.
type event struct {
	cycle  uint64
	seq    uint64
	kind   evKind
	core   int32 // bank/core index of the access
	off    uint32
	addr   uint32
	val    uint32
	width  Width
	signed bool
	lc     LoadClient
	dc     DoneClient
}

// dispatch performs one due event.
func (s *System) dispatch(e *event) {
	switch e.kind {
	case evLocalLoad:
		e.lc.LoadValue(subWordLoad(s.local[e.core][e.off], e.addr, e.width, e.signed))
		e.lc.LoadDone(e.cycle)
	case evSharedRead:
		e.lc.LoadValue(subWordLoad(s.shared[e.core][e.off], e.addr, e.width, e.signed))
	case evLoadDone:
		e.lc.LoadDone(e.cycle)
	case evLocalStore:
		s.local[e.core][e.off] = subWordStore(s.local[e.core][e.off], e.val, e.addr, e.width)
		if e.dc != nil {
			e.dc.Done(e.cycle)
		}
	case evSharedWrite:
		s.shared[e.core][e.off] = subWordStore(s.shared[e.core][e.off], e.val, e.addr, e.width)
	case evStoreDone, evMessage:
		if e.dc != nil {
			e.dc.Done(e.cycle)
		}
	case evCVWrite:
		s.local[e.core][e.off] = e.val
		if e.dc != nil {
			e.dc.Done(e.cycle)
		}
	}
}

// eventQueue is a binary min-heap of events ordered by (cycle, seq). It is
// implemented directly on the typed slice — not via container/heap — so
// pushing and popping events, the per-cycle hot path of Step, never boxes
// an event into an interface value (one heap allocation per transaction
// otherwise).
type eventQueue []event

// before reports whether event i orders before event j.
func (q eventQueue) before(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the clients for GC
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.before(l, smallest) {
			smallest = l
		}
		if r < n && h.before(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

func (s *System) schedule(cycle uint64, e event) {
	s.seq++
	e.cycle = cycle
	e.seq = s.seq
	s.events.push(e)
	if len(s.events) > s.Stats.PeakPendingEvents {
		s.Stats.PeakPendingEvents = len(s.events)
	}
}

// Step runs all memory events due at or before cycle `now`. It must be
// called once per machine cycle, before the pipeline stages, so that
// loads observe stores served in earlier cycles.
func (s *System) Step(now uint64) {
	for len(s.events) > 0 && s.events[0].cycle <= now {
		e := s.events.pop()
		s.dispatch(&e)
	}
}

// Drained reports whether no events remain in flight.
func (s *System) Drained() bool { return len(s.events) == 0 }

// NextEventCycle returns the cycle of the earliest pending event. The
// machine's idle-cycle fast-forward peeks it to know how far the clock
// can jump while every hart is blocked on in-flight memory.
func (s *System) NextEventCycle() (uint64, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].cycle, true
}

// DataMapped reports whether a load or store to addr would reach a
// backed word (the same mapping check SubmitLoad/SubmitStore perform).
// It is a pure function of the configuration, so the pipeline's compute
// phase can raise unmapped-address faults before the submit is applied.
func (s *System) DataMapped(addr uint32) bool {
	switch RegionOf(addr) {
	case RegionLocal:
		_, ok := s.localSlot(addr)
		return ok
	case RegionShared:
		_, _, ok := s.sharedSlot(addr)
		return ok
	default:
		return false
	}
}

// LocalMapped reports whether addr falls inside a core's local bank
// (the mapping check of SubmitCVWrite).
func (s *System) LocalMapped(addr uint32) bool {
	_, ok := s.localSlot(addr)
	return ok
}

// reqClass attributes a request-link wait at tree level index k (0 =
// the paper's r1 links). Levels beyond r2 exist only on machines above
// 64 cores and share the r2 bucket (see the note in internal/perf on
// why the LinkClass enum cannot grow).
func reqClass(k int) perf.LinkClass {
	if k == 0 {
		return perf.LinkR1Req
	}
	return perf.LinkR2Req
}

// respClass is reqClass for the result-link families.
func respClass(k int) perf.LinkClass {
	if k == 0 {
		return perf.LinkR1Resp
	}
	return perf.LinkR2Resp
}

// routeShared reserves the link slots of a shared access from core c to
// bank o and returns (serviceStart, responseDone). hops counts link
// traversals for the statistics.
//
// The request ascends the router hierarchy from c to the lowest common
// ancestor and descends to o — one up link per level with a differing
// group index, then the matching down links in reverse — and the
// response retraces the path on the result-link families. For the
// paper's 64-core degree-4 machine this is link-for-link the fixed
// r1/r2 switch the model used to hard-code (converging at r1: no tree
// links; at r2: r1 up + r1 down; at the root: r1+r2 up, r2+r1 down).
func (s *System) routeShared(now uint64, c, o int) (serviceT, doneT uint64) {
	hop := uint64(s.cfg.HopLat)
	lat := uint64(s.cfg.SharedLat)
	if c == o {
		// Own bank through the local port: no routing.
		s.Stats.SharedLocal++
		t := s.alloc(&s.bankLocal[c], now+1, perf.LinkBankLocal)
		return t, t + lat
	}
	s.Stats.SharedRemote++
	d := s.cfg.RouterDegree
	chc, cho := s.cfg.ChipOf(c), s.cfg.ChipOf(o)
	chipHop := uint64(s.cfg.ChipHopLat)
	// Group indices of c and o at every level below the convergence
	// point; cg[k]/og[k] index the level-(k+1) link arrays.
	var cg, og [maxTreeDepth]int32
	up := 0
	for gc, gr := c/d, o/d; gc != gr; gc, gr = gc/d, gr/d {
		cg[up], og[up] = int32(gc), int32(gr)
		up++
	}
	hops := uint64(3) + 4*uint64(up) // core links, bank port, both tree traversals
	t := s.alloc(&s.coreUp[c], now+hop, perf.LinkCoreUp)
	if chc != cho {
		// leave the source chip and enter the destination chip
		t = s.alloc(&s.chipUpReq[chc], t+chipHop, perf.LinkChipReq)
		t = s.alloc(&s.chipDownReq[cho], t+chipHop, perf.LinkChipReq)
		hops += 2
	}
	for k := 0; k < up; k++ {
		t = s.alloc(&s.upReq[k][cg[k]], t+hop, reqClass(k))
	}
	for k := up - 1; k >= 0; k-- {
		t = s.alloc(&s.downReq[k][og[k]], t+hop, reqClass(k))
	}
	t = s.alloc(&s.bankPort[o], t+hop, perf.LinkBankPort)
	serviceT = t
	// response path (reverse), on the result links
	t += lat
	if chc != cho {
		t = s.alloc(&s.chipUpResp[cho], t+chipHop, perf.LinkChipResp)
		t = s.alloc(&s.chipDownResp[chc], t+chipHop, perf.LinkChipResp)
		hops += 2
	}
	for k := 0; k < up; k++ {
		t = s.alloc(&s.upResp[k][og[k]], t+hop, respClass(k))
	}
	for k := up - 1; k >= 0; k-- {
		t = s.alloc(&s.downResp[k][cg[k]], t+hop, respClass(k))
	}
	t = s.alloc(&s.coreDown[c], t+hop, perf.LinkCoreDown)
	s.Stats.RemoteHops += hops
	return serviceT, t
}

// observeShared records a shared access's submit-to-completion latency in
// the local (own bank) or remote (routed) histogram.
func (s *System) observeShared(core, bank int, lat uint64) {
	if core == bank {
		s.Perf.LocalLat.Observe(lat)
	} else {
		s.Perf.RemoteLat.Observe(lat)
	}
}

// subWordLoad extracts a (sub-)word from w for an access at addr.
func subWordLoad(w, addr uint32, width Width, signed bool) uint32 {
	switch width {
	case Width8:
		b := w >> ((addr & 3) * 8) & 0xFF
		if signed {
			return uint32(int32(b<<24) >> 24)
		}
		return b
	case Width16:
		h := w >> ((addr & 2) * 8) & 0xFFFF
		if signed {
			return uint32(int32(h<<16) >> 16)
		}
		return h
	default:
		return w
	}
}

// subWordStore merges v into w for an access at addr.
func subWordStore(w, v, addr uint32, width Width) uint32 {
	switch width {
	case Width8:
		sh := (addr & 3) * 8
		return w&^(0xFF<<sh) | (v&0xFF)<<sh
	case Width16:
		sh := (addr & 2) * 8
		return w&^(0xFFFF<<sh) | (v&0xFFFF)<<sh
	default:
		return v
	}
}

// SubmitLoad submits a load from `core` at cycle `now`. The client's
// LoadValue is invoked at bank service time and LoadDone when the
// response arrives back at the core (both during later Step calls).
// It returns false for an unmapped address.
func (s *System) SubmitLoad(now uint64, core int, addr uint32, width Width, signed bool, lc LoadClient) bool {
	switch RegionOf(addr) {
	case RegionLocal:
		off, ok := s.localSlot(addr)
		if !ok {
			return false
		}
		s.Stats.LocalAccesses++
		t := s.alloc(&s.localPort[core], now+1, perf.LinkLocalPort)
		done := t + uint64(s.cfg.LocalLat)
		s.Perf.LocalLat.Observe(done - now)
		s.schedule(done, event{kind: evLocalLoad, core: int32(core), off: off,
			addr: addr, width: width, signed: signed, lc: lc})
		return true
	case RegionShared:
		bank, off, ok := s.sharedSlot(addr)
		if !ok {
			return false
		}
		serviceT, done := s.routeShared(now, core, bank)
		s.observeShared(core, bank, done-now)
		s.schedule(serviceT, event{kind: evSharedRead, core: int32(bank), off: off,
			addr: addr, width: width, signed: signed, lc: lc})
		s.schedule(done, event{kind: evLoadDone, lc: lc})
		return true
	default:
		return false
	}
}

// SubmitStore submits a store from `core`. dc (optional) is invoked when
// the write is acknowledged back at the core.
func (s *System) SubmitStore(now uint64, core int, addr, value uint32, width Width, dc DoneClient) bool {
	switch RegionOf(addr) {
	case RegionLocal:
		off, ok := s.localSlot(addr)
		if !ok {
			return false
		}
		s.Stats.LocalAccesses++
		t := s.alloc(&s.localPort[core], now+1, perf.LinkLocalPort)
		done := t + uint64(s.cfg.LocalLat)
		s.Perf.LocalLat.Observe(done - now)
		s.schedule(done, event{kind: evLocalStore, core: int32(core), off: off,
			addr: addr, val: value, width: width, dc: dc})
		return true
	case RegionShared:
		bank, off, ok := s.sharedSlot(addr)
		if !ok {
			return false
		}
		serviceT, done := s.routeShared(now, core, bank)
		s.observeShared(core, bank, done-now)
		s.schedule(serviceT, event{kind: evSharedWrite, core: int32(bank), off: off,
			addr: addr, val: value, width: width})
		s.schedule(done, event{kind: evStoreDone, dc: dc})
		return true
	default:
		return false
	}
}

// SubmitCVWrite submits a continuation-value write (p_swcv): a word store
// into the local bank of targetCore, issued by fromCore. If the target is
// the next core, the forward inter-core link is traversed first.
// dc is invoked when the write has been performed at the target bank.
func (s *System) SubmitCVWrite(now uint64, fromCore, targetCore int, addr, value uint32, dc DoneClient) bool {
	off, ok := s.localSlot(addr)
	if !ok {
		return false
	}
	s.Stats.CVWrites++
	t := now
	if targetCore != fromCore {
		t = s.alloc(&s.forward[fromCore], t+uint64(s.cfg.HopLat), perf.LinkForward)
	}
	t = s.alloc(&s.localPort[targetCore], t+1, perf.LinkLocalPort)
	done := t + uint64(s.cfg.LocalLat)
	if targetCore == fromCore {
		s.Perf.LocalLat.Observe(done - now)
	} else {
		s.Perf.RemoteLat.Observe(done - now)
	}
	s.schedule(done, event{kind: evCVWrite, core: int32(targetCore), off: off, val: value, dc: dc})
	return true
}
