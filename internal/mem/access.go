package mem

import "repro/internal/perf"

// Width of a memory access in bytes.
type Width uint8

const (
	Width8  Width = 1
	Width16 Width = 2
	Width32 Width = 4
)

// event is a scheduled action in the memory system: applying an access at
// its bank service time, or delivering a response at its completion time.
type event struct {
	cycle uint64
	seq   uint64
	run   func()
}

// eventQueue is a binary min-heap of events ordered by (cycle, seq). It is
// implemented directly on the typed slice — not via container/heap — so
// pushing and popping events, the per-cycle hot path of Step, never boxes
// an event into an interface value (one heap allocation per transaction
// otherwise).
type eventQueue []event

// before reports whether event i orders before event j.
func (q eventQueue) before(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure for GC
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.before(l, smallest) {
			smallest = l
		}
		if r < n && h.before(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

func (s *System) schedule(cycle uint64, run func()) {
	s.seq++
	s.events.push(event{cycle: cycle, seq: s.seq, run: run})
	if len(s.events) > s.Stats.PeakPendingEvents {
		s.Stats.PeakPendingEvents = len(s.events)
	}
}

// Step runs all memory events due at or before cycle `now`. It must be
// called once per machine cycle, before the pipeline stages, so that
// loads observe stores served in earlier cycles.
func (s *System) Step(now uint64) {
	for len(s.events) > 0 && s.events[0].cycle <= now {
		e := s.events.pop()
		e.run()
	}
}

// Drained reports whether no events remain in flight.
func (s *System) Drained() bool { return len(s.events) == 0 }

// NextEventCycle returns the cycle of the earliest pending event. The
// machine's idle-cycle fast-forward peeks it to know how far the clock
// can jump while every hart is blocked on in-flight memory.
func (s *System) NextEventCycle() (uint64, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].cycle, true
}

// DataMapped reports whether a load or store to addr would reach a
// backed word (the same mapping check SubmitLoad/SubmitStore perform).
// It is a pure function of the configuration, so the pipeline's compute
// phase can raise unmapped-address faults before the submit is applied.
func (s *System) DataMapped(addr uint32) bool {
	switch RegionOf(addr) {
	case RegionLocal:
		_, ok := s.localSlot(addr)
		return ok
	case RegionShared:
		_, _, ok := s.sharedSlot(addr)
		return ok
	default:
		return false
	}
}

// LocalMapped reports whether addr falls inside a core's local bank
// (the mapping check of SubmitCVWrite).
func (s *System) LocalMapped(addr uint32) bool {
	_, ok := s.localSlot(addr)
	return ok
}

// routeShared reserves the link slots of a shared access from core c to
// bank o and returns (serviceStart, responseDone). hops counts link
// traversals for the statistics.
func (s *System) routeShared(now uint64, c, o int) (serviceT, doneT uint64) {
	hop := uint64(s.cfg.HopLat)
	lat := uint64(s.cfg.SharedLat)
	if c == o {
		// Own bank through the local port: no routing.
		s.Stats.SharedLocal++
		t := s.alloc(&s.bankLocal[c], now+1, perf.LinkBankLocal)
		return t, t + lat
	}
	s.Stats.SharedRemote++
	d := s.cfg.RouterDegree
	g1c, g1o := c/d, o/d // r1 groups
	g2c, g2o := g1c/d, g1o/d
	chc, cho := s.cfg.ChipOf(c), s.cfg.ChipOf(o)
	chipHop := uint64(s.cfg.ChipHopLat)
	hops := uint64(0)
	t := s.alloc(&s.coreUp[c], now+hop, perf.LinkCoreUp)
	hops++
	if chc != cho {
		// leave the source chip and enter the destination chip
		t = s.alloc(&s.chipUpReq[chc], t+chipHop, perf.LinkChipReq)
		t = s.alloc(&s.chipDownReq[cho], t+chipHop, perf.LinkChipReq)
		hops += 2
	}
	switch {
	case g1c == g1o:
		// stays inside one r1
	case g2c == g2o:
		t = s.alloc(&s.r1UpReq[g1c], t+hop, perf.LinkR1Req)
		t = s.alloc(&s.r1DownReq[g1o], t+hop, perf.LinkR1Req)
		hops += 2
	default:
		t = s.alloc(&s.r1UpReq[g1c], t+hop, perf.LinkR1Req)
		t = s.alloc(&s.r2UpReq[g2c], t+hop, perf.LinkR2Req)
		t = s.alloc(&s.r2DownReq[g2o], t+hop, perf.LinkR2Req)
		t = s.alloc(&s.r1DownReq[g1o], t+hop, perf.LinkR1Req)
		hops += 4
	}
	t = s.alloc(&s.bankPort[o], t+hop, perf.LinkBankPort)
	hops++
	serviceT = t
	// response path (reverse), on the result links
	t += lat
	if chc != cho {
		t = s.alloc(&s.chipUpResp[cho], t+chipHop, perf.LinkChipResp)
		t = s.alloc(&s.chipDownResp[chc], t+chipHop, perf.LinkChipResp)
		hops += 2
	}
	switch {
	case g1c == g1o:
	case g2c == g2o:
		t = s.alloc(&s.r1UpResp[g1o], t+hop, perf.LinkR1Resp)
		t = s.alloc(&s.r1DownResp[g1c], t+hop, perf.LinkR1Resp)
		hops += 2
	default:
		t = s.alloc(&s.r1UpResp[g1o], t+hop, perf.LinkR1Resp)
		t = s.alloc(&s.r2UpResp[g2o], t+hop, perf.LinkR2Resp)
		t = s.alloc(&s.r2DownResp[g2c], t+hop, perf.LinkR2Resp)
		t = s.alloc(&s.r1DownResp[g1c], t+hop, perf.LinkR1Resp)
		hops += 4
	}
	t = s.alloc(&s.coreDown[c], t+hop, perf.LinkCoreDown)
	hops++
	s.Stats.RemoteHops += hops
	return serviceT, t
}

// observeShared records a shared access's submit-to-completion latency in
// the local (own bank) or remote (routed) histogram.
func (s *System) observeShared(core, bank int, lat uint64) {
	if core == bank {
		s.Perf.LocalLat.Observe(lat)
	} else {
		s.Perf.RemoteLat.Observe(lat)
	}
}

// subWordLoad extracts a (sub-)word from w for an access at addr.
func subWordLoad(w, addr uint32, width Width, signed bool) uint32 {
	switch width {
	case Width8:
		b := w >> ((addr & 3) * 8) & 0xFF
		if signed {
			return uint32(int32(b<<24) >> 24)
		}
		return b
	case Width16:
		h := w >> ((addr & 2) * 8) & 0xFFFF
		if signed {
			return uint32(int32(h<<16) >> 16)
		}
		return h
	default:
		return w
	}
}

// subWordStore merges v into w for an access at addr.
func subWordStore(w, v, addr uint32, width Width) uint32 {
	switch width {
	case Width8:
		sh := (addr & 3) * 8
		return w&^(0xFF<<sh) | (v&0xFF)<<sh
	case Width16:
		sh := (addr & 2) * 8
		return w&^(0xFFFF<<sh) | (v&0xFFFF)<<sh
	default:
		return v
	}
}

// SubmitLoad submits a load from `core` at cycle `now`. When the response
// arrives, cb is invoked (during a later Step call) with the loaded value
// and the completion cycle. It returns false for an unmapped address.
func (s *System) SubmitLoad(now uint64, core int, addr uint32, width Width, signed bool, cb func(value uint32, done uint64)) bool {
	switch RegionOf(addr) {
	case RegionLocal:
		off, ok := s.localSlot(addr)
		if !ok {
			return false
		}
		s.Stats.LocalAccesses++
		t := s.alloc(&s.localPort[core], now+1, perf.LinkLocalPort)
		done := t + uint64(s.cfg.LocalLat)
		s.Perf.LocalLat.Observe(done - now)
		s.schedule(done, func() {
			v := subWordLoad(s.local[core][off], addr, width, signed)
			cb(v, done)
		})
		return true
	case RegionShared:
		bank, off, ok := s.sharedSlot(addr)
		if !ok {
			return false
		}
		serviceT, done := s.routeShared(now, core, bank)
		s.observeShared(core, bank, done-now)
		var v uint32
		s.schedule(serviceT, func() {
			v = subWordLoad(s.shared[bank][off], addr, width, signed)
		})
		s.schedule(done, func() { cb(v, done) })
		return true
	default:
		return false
	}
}

// SubmitStore submits a store from `core`. cb (optional) is invoked when
// the write is acknowledged back at the core.
func (s *System) SubmitStore(now uint64, core int, addr, value uint32, width Width, cb func(done uint64)) bool {
	switch RegionOf(addr) {
	case RegionLocal:
		off, ok := s.localSlot(addr)
		if !ok {
			return false
		}
		s.Stats.LocalAccesses++
		t := s.alloc(&s.localPort[core], now+1, perf.LinkLocalPort)
		done := t + uint64(s.cfg.LocalLat)
		s.Perf.LocalLat.Observe(done - now)
		s.schedule(done, func() {
			s.local[core][off] = subWordStore(s.local[core][off], value, addr, width)
			if cb != nil {
				cb(done)
			}
		})
		return true
	case RegionShared:
		bank, off, ok := s.sharedSlot(addr)
		if !ok {
			return false
		}
		serviceT, done := s.routeShared(now, core, bank)
		s.observeShared(core, bank, done-now)
		s.schedule(serviceT, func() {
			s.shared[bank][off] = subWordStore(s.shared[bank][off], value, addr, width)
		})
		s.schedule(done, func() {
			if cb != nil {
				cb(done)
			}
		})
		return true
	default:
		return false
	}
}

// SubmitCVWrite submits a continuation-value write (p_swcv): a word store
// into the local bank of targetCore, issued by fromCore. If the target is
// the next core, the forward inter-core link is traversed first.
// cb is invoked when the write has been performed at the target bank.
func (s *System) SubmitCVWrite(now uint64, fromCore, targetCore int, addr, value uint32, cb func(done uint64)) bool {
	off, ok := s.localSlot(addr)
	if !ok {
		return false
	}
	s.Stats.CVWrites++
	t := now
	if targetCore != fromCore {
		t = s.alloc(&s.forward[fromCore], t+uint64(s.cfg.HopLat), perf.LinkForward)
	}
	t = s.alloc(&s.localPort[targetCore], t+1, perf.LinkLocalPort)
	done := t + uint64(s.cfg.LocalLat)
	if targetCore == fromCore {
		s.Perf.LocalLat.Observe(done - now)
	} else {
		s.Perf.RemoteLat.Observe(done - now)
	}
	s.schedule(done, func() {
		s.local[targetCore][off] = value
		if cb != nil {
			cb(done)
		}
	})
	return true
}
