package mem

import (
	"testing"
	"testing/quick"
)

func newSys(cores int) *System {
	return New(DefaultConfig(cores))
}

// run advances the system until all events drained, returning the final cycle.
func run(s *System, from uint64) uint64 {
	now := from
	for !s.Drained() {
		now++
		s.Step(now)
		if now > from+100000 {
			panic("memory system did not drain")
		}
	}
	return now
}

func TestRegionOf(t *testing.T) {
	cases := map[uint32]Region{
		0x00000000: RegionCode,
		0x3FFFFFFC: RegionCode,
		0x40000000: RegionLocal,
		0x7FFFFFFC: RegionLocal,
		0x80000000: RegionShared,
		0xFFFFFFFC: RegionShared,
	}
	for addr, want := range cases {
		if got := RegionOf(addr); got != want {
			t.Errorf("RegionOf(%#x) = %v, want %v", addr, got, want)
		}
	}
}

func TestLocalStoreLoadRoundTrip(t *testing.T) {
	s := newSys(4)
	addr := uint32(LocalBase + 0x100)
	s.SubmitStore(0, 1, addr, 0xDEADBEEF, Width32, nil)
	run(s, 0)
	var got uint32
	var doneAt uint64
	s.SubmitLoad(10, 1, addr, Width32, false, LoadFunc(func(v uint32, done uint64) {
		got, doneAt = v, done
	}))
	run(s, 10)
	if got != 0xDEADBEEF {
		t.Errorf("loaded %#x", got)
	}
	if doneAt <= 10 {
		t.Errorf("load completed at %d, must be after submission", doneAt)
	}
	// Local banks are private per core: core 0 sees zero at the same address.
	var other uint32
	s.SubmitLoad(20, 0, addr, Width32, false, LoadFunc(func(v uint32, _ uint64) { other = v }))
	run(s, 20)
	if other != 0 {
		t.Errorf("core 0 local bank leaked value %#x", other)
	}
}

func TestSharedRemoteRoundTrip(t *testing.T) {
	s := newSys(16)
	// bank 9 address, accessed from core 2 (different r1 group).
	addr := s.SharedAddr(9, 5)
	if s.BankOwner(addr) != 9 {
		t.Fatalf("BankOwner = %d", s.BankOwner(addr))
	}
	var storeDone uint64
	s.SubmitStore(0, 2, addr, 42, Width32, DoneFunc(func(d uint64) { storeDone = d }))
	run(s, 0)
	if storeDone == 0 {
		t.Fatal("store ack not delivered")
	}
	var localDone, remoteDone uint64
	s.SubmitLoad(100, 9, s.SharedAddr(9, 6), Width32, false, LoadFunc(func(_ uint32, d uint64) { localDone = d }))
	var got uint32
	s.SubmitLoad(100, 2, addr, Width32, false, LoadFunc(func(v uint32, d uint64) { got, remoteDone = v, d }))
	run(s, 100)
	if got != 42 {
		t.Errorf("remote load = %d, want 42", got)
	}
	if remoteDone <= localDone {
		t.Errorf("remote access (%d) must be slower than bank-local access (%d)", remoteDone, localDone)
	}
	if s.Stats.SharedRemote != 2 || s.Stats.SharedLocal != 1 {
		t.Errorf("stats: %+v", s.Stats)
	}
}

func TestRemoteLatencyGrowsWithDistance(t *testing.T) {
	s := newSys(64)
	lat := func(from int, bank int) uint64 {
		var done uint64
		start := s.coreUp[from] + s.bankPort[bank] + 1000 // quiesce
		s.SubmitLoad(start, from, s.SharedAddr(bank, 0), Width32, false,
			LoadFunc(func(_ uint32, d uint64) { done = d }))
		run(s, start)
		return done - start
	}
	same := lat(0, 0)      // own bank
	sameR1 := lat(0, 1)    // same r1 group
	sameR2 := lat(0, 5)    // same r2, different r1
	farthest := lat(0, 63) // through r3
	if !(same < sameR1 && sameR1 < sameR2 && sameR2 < farthest) {
		t.Errorf("latencies must grow with distance: %d %d %d %d", same, sameR1, sameR2, farthest)
	}
}

func TestBankContentionSerializes(t *testing.T) {
	s := newSys(4)
	// Four cores hit the same remote bank in the same cycle: completions
	// must be serialized on the bank port.
	dones := map[int]uint64{}
	for c := 1; c < 4; c++ {
		c := c
		s.SubmitLoad(0, c, s.SharedAddr(0, 0), Width32, false,
			LoadFunc(func(_ uint32, d uint64) { dones[c] = d }))
	}
	run(s, 0)
	seen := map[uint64]bool{}
	for c, d := range dones {
		if seen[d] {
			t.Errorf("core %d completion %d collides", c, d)
		}
		seen[d] = true
	}
}

func TestSubWordAccess(t *testing.T) {
	s := newSys(1)
	addr := uint32(LocalBase + 64)
	s.SubmitStore(0, 0, addr, 0x11223344, Width32, nil)
	run(s, 0)
	s.SubmitStore(10, 0, addr+1, 0xAB, Width8, nil)
	run(s, 10)
	var got uint32
	s.SubmitLoad(20, 0, addr, Width32, false, LoadFunc(func(v uint32, _ uint64) { got = v }))
	run(s, 20)
	if got != 0x1122AB44 {
		t.Errorf("byte store merge = %#x", got)
	}
	var b, bs uint32
	s.SubmitLoad(30, 0, addr+3, Width8, false, LoadFunc(func(v uint32, _ uint64) { b = v }))
	s.SubmitLoad(30, 0, addr+3, Width8, true, LoadFunc(func(v uint32, _ uint64) { bs = v }))
	run(s, 30)
	if b != 0x11 || bs != 0x11 {
		t.Errorf("byte loads: %#x %#x", b, bs)
	}
	var h uint32
	s.SubmitStore(40, 0, addr+2, 0x8765, Width16, nil)
	run(s, 40)
	s.SubmitLoad(50, 0, addr+2, Width16, true, LoadFunc(func(v uint32, _ uint64) { h = v }))
	run(s, 50)
	if int32(h) != int32(-30875) { // 0x8765 sign-extended
		t.Errorf("lh sign extension = %#x", h)
	}
}

func TestStoreThenLoadOrdering(t *testing.T) {
	// A load submitted after a store to the same bank must see the value,
	// even when both are still in flight.
	s := newSys(4)
	addr := s.SharedAddr(3, 7)
	s.SubmitStore(0, 0, addr, 77, Width32, nil)
	var got uint32
	s.SubmitLoad(1, 0, addr, Width32, false, LoadFunc(func(v uint32, _ uint64) { got = v }))
	run(s, 1)
	if got != 77 {
		t.Errorf("load raced past store: got %d", got)
	}
}

func TestCVWriteSameAndNextCore(t *testing.T) {
	s := newSys(4)
	addr := uint32(LocalBase + 0x2000)
	var d0, d1 uint64
	s.SubmitCVWrite(0, 2, 2, addr, 5, DoneFunc(func(d uint64) { d0 = d }))
	run(s, 0)
	s.SubmitCVWrite(100, 2, 3, addr, 6, DoneFunc(func(d uint64) { d1 = d }))
	run(s, 100)
	if v, _ := s.PeekLocal(2, addr); v != 5 {
		t.Errorf("same-core CV write: %d", v)
	}
	if v, _ := s.PeekLocal(3, addr); v != 6 {
		t.Errorf("next-core CV write: %d", v)
	}
	if d1-100 <= d0-0 {
		t.Errorf("next-core CV write (%d cycles) must be slower than same-core (%d)", d1-100, d0)
	}
	if s.Stats.CVWrites != 2 {
		t.Errorf("CVWrites = %d", s.Stats.CVWrites)
	}
}

func TestUnmappedAddresses(t *testing.T) {
	s := newSys(2)
	if s.SubmitLoad(0, 0, s.SharedAddr(2, 0), Width32, false, LoadFunc(func(uint32, uint64) {})) {
		t.Error("load from bank beyond last core must fail")
	}
	if s.SubmitStore(0, 0, LocalBase+DefaultConfig(2).LocalBytes, 0, Width32, nil) {
		t.Error("store past local bank must fail")
	}
	if s.SubmitLoad(0, 0, 0x1000, Width32, false, LoadFunc(func(uint32, uint64) {})) {
		t.Error("data load from code space must fail")
	}
}

func TestLoadCodeAndFetch(t *testing.T) {
	s := newSys(1)
	if err := s.LoadCode(0, []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if w, ok := s.FetchWord(8); !ok || w != 3 {
		t.Errorf("FetchWord(8) = %d,%v", w, ok)
	}
	if _, ok := s.FetchWord(2); ok {
		t.Error("unaligned fetch must fail")
	}
	if _, ok := s.FetchWord(LocalBase); ok {
		t.Error("fetch outside code must fail")
	}
	if err := s.LoadCode(0, make([]uint32, 1<<20)); err == nil {
		t.Error("oversized code image must fail")
	}
}

func TestLoadShared(t *testing.T) {
	s := newSys(4)
	// span a bank boundary
	addr := s.SharedAddr(0, DefaultConfig(4).SharedBytes/4-1)
	if err := s.LoadShared(addr, []uint32{10, 20}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.PeekShared(addr); v != 10 {
		t.Errorf("word 0: %d", v)
	}
	if v, _ := s.PeekShared(s.SharedAddr(1, 0)); v != 20 {
		t.Errorf("word 1 must land in bank 1: %d", v)
	}
	if err := s.LoadShared(s.SharedAddr(3, DefaultConfig(4).SharedBytes/4-1), []uint32{1, 2}); err == nil {
		t.Error("overflow past last bank must fail")
	}
}

// Property: sub-word store then load round-trips on arbitrary values.
func TestQuickSubWord(t *testing.T) {
	f := func(w, v uint32, off uint8, half bool) bool {
		addr := uint32(off)
		if half {
			addr &^= 1
			merged := subWordStore(w, v, addr, Width16)
			return subWordLoad(merged, addr, Width16, false) == v&0xFFFF
		}
		merged := subWordStore(w, v, addr, Width8)
		return subWordLoad(merged, addr, Width8, false) == v&0xFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: events always drain and completion is strictly after submission.
func TestQuickAccessesDrain(t *testing.T) {
	f := func(ops []uint16) bool {
		s := newSys(8)
		now := uint64(0)
		okAll := true
		for _, op := range ops {
			now++
			submitted := now
			core := int(op) % 8
			bank := int(op>>3) % 8
			off := uint32(op>>6) % 64
			addr := s.SharedAddr(bank, off)
			if op&1 == 0 {
				s.SubmitStore(now, core, addr, uint32(op), Width32, DoneFunc(func(d uint64) {
					if d <= submitted {
						okAll = false
					}
				}))
			} else {
				s.SubmitLoad(now, core, addr, Width32, false, LoadFunc(func(_ uint32, d uint64) {
					if d <= submitted {
						okAll = false
					}
				}))
			}
		}
		run(s, now)
		return okAll && s.Drained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRouterDegreeTwo(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.RouterDegree = 2
	s := New(cfg)
	// every (core, bank) pair still routes and completes
	for c := 0; c < 8; c++ {
		for b := 0; b < 8; b++ {
			done := uint64(0)
			now := uint64(1000 * (uint64(c*8+b) + 1))
			s.SubmitStore(now, c, s.SharedAddr(b, 3), uint32(c*8+b), Width32,
				DoneFunc(func(d uint64) { done = d }))
			for !s.Drained() {
				now++
				s.Step(now)
			}
			if done == 0 {
				t.Fatalf("store %d->%d never completed", c, b)
			}
		}
	}
	for b := 0; b < 8; b++ {
		if v, _ := s.PeekShared(s.SharedAddr(b, 3)); v != uint32(7*8+b) {
			t.Errorf("bank %d: %d", b, v)
		}
	}
}

func TestSingleCoreNoRouters(t *testing.T) {
	s := New(DefaultConfig(1))
	var got uint32
	s.SubmitStore(0, 0, s.SharedAddr(0, 0), 9, Width32, nil)
	s.SubmitLoad(1, 0, s.SharedAddr(0, 0), Width32, false,
		LoadFunc(func(v uint32, _ uint64) { got = v }))
	now := uint64(1)
	for !s.Drained() {
		now++
		s.Step(now)
	}
	if got != 9 {
		t.Errorf("got %d", got)
	}
	if s.Stats.SharedRemote != 0 {
		t.Error("single-core accesses are never remote")
	}
}
