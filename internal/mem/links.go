package mem

import (
	"fmt"

	"repro/internal/perf"
)

// Inter-core message transport.
//
// Besides memory transactions, the LBP cores exchange small control
// messages: hart start addresses and ending-hart signals travel on the
// forward neighbor links (blue arrows of Figure 9), join addresses and
// p_swre result values travel on the backward line (magenta arrows).
// These share the deterministic link-slot allocation and the event queue
// of the memory system so that all machine events are totally ordered.

// ensureBackward lazily sizes the backward link array.
func (s *System) ensureBackward() {
	if s.backward == nil {
		s.backward = make([]uint64, s.cfg.Cores)
	}
}

// SendForward delivers a control message from core `from` to core `to`,
// where to == from or to == from+1 (the forward links only connect
// neighbors). The client's Done runs at delivery time during a Step call.
func (s *System) SendForward(now uint64, from, to int, dc DoneClient) error {
	if to != from && to != from+1 {
		return fmt.Errorf("mem: forward message %d->%d is not neighbor-bound", from, to)
	}
	t := now + 1
	if to != from {
		t = s.alloc(&s.forward[from], now+uint64(s.cfg.HopLat), perf.LinkForward)
		if s.cfg.ChipOf(to) != s.cfg.ChipOf(from) {
			t += uint64(s.cfg.ChipHopLat) // neighbor link crosses the chip edge
		}
	}
	s.schedule(t, event{kind: evMessage, dc: dc})
	return nil
}

// SendBackward delivers a message from core `from` to a prior core `to`
// (to <= from) over the backward line, one link per intermediate core.
func (s *System) SendBackward(now uint64, from, to int, dc DoneClient) error {
	if to > from {
		return fmt.Errorf("mem: backward message %d->%d goes forward in core order", from, to)
	}
	s.ensureBackward()
	t := now
	if to == from {
		t = now + 1
	} else {
		for c := from; c > to; c-- {
			t = s.alloc(&s.backward[c], t+uint64(s.cfg.HopLat), perf.LinkBackward)
			if s.cfg.ChipOf(c) != s.cfg.ChipOf(c-1) {
				t += uint64(s.cfg.ChipHopLat)
			}
		}
	}
	s.schedule(t, event{kind: evMessage, dc: dc})
	return nil
}
