package mem

import (
	"fmt"

	"repro/internal/perf"
)

// Inter-core message transport.
//
// Besides memory transactions, the LBP cores exchange small control
// messages: hart start addresses and ending-hart signals travel on the
// forward neighbor links (blue arrows of Figure 9), join addresses and
// p_swre result values travel on the backward line (magenta arrows).
// These share the deterministic link-slot allocation and the event queue
// of the memory system so that all machine events are totally ordered.

// ensureBackward lazily sizes the backward link array.
func (s *System) ensureBackward() {
	if s.backward == nil {
		s.backward = make([]uint64, s.cfg.Cores)
	}
}

// SendForward delivers a control message from core `from` to core `to`,
// where to == from or to == from+1 (the forward links only connect
// neighbors). The client's Done runs at delivery time during a Step call.
func (s *System) SendForward(now uint64, from, to int, dc DoneClient) error {
	if to != from && to != from+1 {
		return fmt.Errorf("mem: forward message %d->%d is not neighbor-bound", from, to)
	}
	t := now + 1
	if to != from {
		t = s.alloc(&s.forward[from], now+uint64(s.cfg.HopLat), perf.LinkForward)
		if s.cfg.ChipOf(to) != s.cfg.ChipOf(from) {
			t += uint64(s.cfg.ChipHopLat) // neighbor link crosses the chip edge
		}
	}
	s.schedule(t, event{kind: evMessage, dc: dc})
	return nil
}

// backSerpentineMax is the largest machine whose backward line is the
// paper's flat serpentine walk, one link per intermediate core. The
// paper validates that line at its 64-core machine; the scaled design
// points beyond it segment the line per bottom-level router group and
// join the segments through per-level express links on the router
// hierarchy, so a machine-spanning join pays O(levels) hops instead of
// O(cores). Keeping the flat walk up to 64 cores preserves the paper
// configurations' timing bit-for-bit.
const backSerpentineMax = 64

// SendBackward delivers a message from core `from` to a prior core `to`
// (to <= from) over the backward line: the serpentine walk on machines
// up to backSerpentineMax cores or within one bottom-level group, the
// hierarchical express path otherwise.
func (s *System) SendBackward(now uint64, from, to int, dc DoneClient) error {
	if to > from {
		return fmt.Errorf("mem: backward message %d->%d goes forward in core order", from, to)
	}
	s.ensureBackward()
	var t uint64
	switch {
	case to == from:
		t = now + 1
	case s.cfg.Cores <= backSerpentineMax || from/s.cfg.RouterDegree == to/s.cfg.RouterDegree:
		t = now
		for c := from; c > to; c-- {
			t = s.alloc(&s.backward[c], t+uint64(s.cfg.HopLat), perf.LinkBackward)
			if s.cfg.ChipOf(c) != s.cfg.ChipOf(c-1) {
				t += uint64(s.cfg.ChipHopLat)
			}
		}
	default:
		t = s.backExpress(now, from, to)
	}
	s.schedule(t, event{kind: evMessage, dc: dc})
	return nil
}

// backExpress routes a backward message hierarchically: serpentine hops
// to the low edge of the source's bottom-level group, express links up
// to the lowest common ancestor and down to the target's group (one
// per level, modeled like the request tree: HopLat plus contention on
// a one-slot-per-cycle link), then serpentine hops from the group's
// high edge down to the target. Chip-boundary crossings pay ChipHopLat
// once per boundary between the endpoints, as the flat walk did.
func (s *System) backExpress(now uint64, from, to int) uint64 {
	d := s.cfg.RouterDegree
	hop := uint64(s.cfg.HopLat)
	t := now
	for c := from; c > (from/d)*d; c-- {
		t = s.alloc(&s.backward[c], t+hop, perf.LinkBackward)
	}
	var fg, tg [maxTreeDepth]int32
	up := 0
	for gf, gt := from/d, to/d; gf != gt; gf, gt = gf/d, gt/d {
		fg[up], tg[up] = int32(gf), int32(gt)
		up++
	}
	for k := 0; k < up; k++ {
		t = s.alloc(&s.backUp[k][fg[k]], t+hop, perf.LinkBackward)
	}
	for k := up - 1; k >= 0; k-- {
		t = s.alloc(&s.backDown[k][tg[k]], t+hop, perf.LinkBackward)
	}
	top := (to/d)*d + d - 1
	if top > s.cfg.Cores-1 {
		top = s.cfg.Cores - 1
	}
	for c := top; c > to; c-- {
		t = s.alloc(&s.backward[c], t+hop, perf.LinkBackward)
	}
	if s.cfg.CoresPerChip > 0 {
		t += uint64(s.cfg.ChipHopLat) * uint64(s.cfg.ChipOf(from)-s.cfg.ChipOf(to))
	}
	return t
}
