package mem

import "testing"

// Multi-chip extension tests (Figure 15: a line of chips extends the
// line of cores; crossing the chip edge costs extra latency and
// serializes on one external link pair per chip).

func chipSys(cores, perChip int) *System {
	cfg := DefaultConfig(cores)
	cfg.CoresPerChip = perChip
	cfg.ChipHopLat = 12
	return New(cfg)
}

func TestChipOf(t *testing.T) {
	cfg := DefaultConfig(8)
	if cfg.ChipOf(7) != 0 {
		t.Error("single chip: every core on chip 0")
	}
	cfg.CoresPerChip = 4
	if cfg.ChipOf(3) != 0 || cfg.ChipOf(4) != 1 || cfg.ChipOf(7) != 1 {
		t.Error("chip mapping wrong")
	}
}

func TestCrossChipAccessSlower(t *testing.T) {
	// fresh system per probe: link reservations would otherwise leak
	// between measurements
	lat := func(perChip, from, bank int) uint64 {
		s := chipSys(8, perChip)
		var done uint64
		s.SubmitLoad(1000, from, s.SharedAddr(bank, 0), Width32, false,
			LoadFunc(func(_ uint32, d uint64) { done = d }))
		now := uint64(1000)
		for !s.Drained() {
			now++
			s.Step(now)
		}
		return done - 1000
	}
	// core 1 -> bank 6: same distance in the router tree, but the second
	// machine crosses a chip boundary
	lw := lat(8, 1, 6)
	la := lat(4, 1, 6)
	if la <= lw {
		t.Errorf("cross-chip access (%d cycles) must exceed in-chip (%d)", la, lw)
	}
	// four extra chip hops of 12 each way
	if la < lw+4*12 {
		t.Errorf("cross-chip penalty too small: %d vs %d", la, lw)
	}
	// in-chip accesses on the two-chip machine are unaffected
	if lat(4, 1, 2) != lat(8, 1, 2) {
		t.Errorf("in-chip access must not pay the chip penalty")
	}
}

func TestChipLinkSerializes(t *testing.T) {
	s := chipSys(8, 4)
	// all four cores of chip 0 access chip 1 simultaneously: the single
	// external request link serializes them
	var dones []uint64
	for c := 0; c < 4; c++ {
		s.SubmitLoad(0, c, s.SharedAddr(6, 0), Width32, false,
			LoadFunc(func(_ uint32, d uint64) { dones = append(dones, d) }))
	}
	now := uint64(0)
	for !s.Drained() {
		now++
		s.Step(now)
	}
	seen := map[uint64]bool{}
	for _, d := range dones {
		if seen[d] {
			t.Errorf("completions collide at %d: the chip link must serialize", d)
		}
		seen[d] = true
	}
}

func TestCrossChipForwardBackward(t *testing.T) {
	s := chipSys(8, 4)
	var fwdIn, fwdCross, backIn, backCross uint64
	s.SendForward(100, 1, 2, DoneFunc(func(d uint64) { fwdIn = d - 100 }))
	s.SendForward(100, 3, 4, DoneFunc(func(d uint64) { fwdCross = d - 100 }))
	s.SendBackward(100, 2, 1, DoneFunc(func(d uint64) { backIn = d - 100 }))
	s.SendBackward(100, 4, 3, DoneFunc(func(d uint64) { backCross = d - 100 }))
	now := uint64(100)
	for !s.Drained() {
		now++
		s.Step(now)
	}
	if fwdCross <= fwdIn {
		t.Errorf("forward across the chip edge (%d) must exceed in-chip (%d)", fwdCross, fwdIn)
	}
	if backCross <= backIn {
		t.Errorf("backward across the chip edge (%d) must exceed in-chip (%d)", backCross, backIn)
	}
}
