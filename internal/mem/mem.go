// Package mem models the LBP memory organization (Figure 13 of the paper):
// per core a code bank, a local bank (hart stacks) and one bank of the
// shared global memory, plus the hierarchical router tree that serves
// remote shared accesses. The paper's fixed r1/r2/r3 tree is the
// 64-core instance of a general degree-d hierarchy: level-k routers
// group d level-(k-1) routers (cores at level 0), so a machine of n
// cores has ceil(log_d(n)) router levels and remote traffic pays one
// hop per level ascended to the lowest common ancestor and one per
// level descended. For n <= 64 at the paper's degree 4 this reproduces
// the fixed tree link-for-link.
//
// Timing model. Every unidirectional link (core->r1, r1->core, r1<->r2,
// r2<->r3, bank ports) carries one transaction per cycle. A transaction
// traversing a sequence of links is serialized on each of them: it takes
// one cycle per hop plus any wait for the link to become free, plus the
// bank access latency at the target bank. The model is deterministic:
// transactions acquire link slots in submission order.
//
// Values are exchanged at bank service time: a store updates the backing
// array when it is served by the bank, a load reads it then. Completion
// (the response arriving back at the requesting core) is reported later,
// after the response traversed the return path.
package mem

import (
	"fmt"

	"repro/internal/perf"
)

// Address space layout.
const (
	CodeBase   = 0x00000000
	LocalBase  = 0x40000000
	SharedBase = 0x80000000
)

// Region identifies which address space an address belongs to.
type Region uint8

const (
	RegionCode Region = iota
	RegionLocal
	RegionShared
	RegionBad
)

// RegionOf classifies an address.
func RegionOf(addr uint32) Region {
	switch {
	case addr < LocalBase:
		return RegionCode
	case addr < SharedBase:
		return RegionLocal
	default:
		return RegionShared
	}
}

// Config sizes the memory system.
type Config struct {
	Cores        int
	CodeBytes    uint32 // size of the (replicated) code bank
	LocalBytes   uint32 // size of each core's local bank
	SharedBytes  uint32 // size of each core's shared bank
	LocalLat     int    // local-bank access latency (cycles at the bank)
	SharedLat    int    // shared-bank access latency (cycles at the bank)
	HopLat       int    // per-link traversal latency
	RouterDegree int    // fan-in of each router level (4 in the paper)

	// Multi-chip extension (Figure 15): when CoresPerChip > 0, cores are
	// grouped into chips of that size; traffic crossing a chip boundary
	// pays ChipHopLat per boundary and serializes on one external link
	// pair per chip (requests and results separately).
	CoresPerChip int
	ChipHopLat   int
}

// ChipOf returns the chip index of a core (0 when single-chip).
func (c *Config) ChipOf(core int) int {
	if c.CoresPerChip <= 0 {
		return 0
	}
	return core / c.CoresPerChip
}

// DefaultConfig returns the paper-inspired parameters for n cores.
func DefaultConfig(n int) Config {
	return Config{
		Cores:        n,
		CodeBytes:    1 << 20, // 1 MiB of code
		LocalBytes:   1 << 16, // 64 KiB local bank (4 hart stacks)
		SharedBytes:  1 << 16, // 64 KiB shared bank per core
		LocalLat:     2,
		SharedLat:    3,
		HopLat:       2,
		RouterDegree: 4,
	}
}

// AccessKind describes a memory transaction for statistics.
type AccessKind uint8

const (
	AccessLoad AccessKind = iota
	AccessStore
)

// Stats aggregates memory traffic counters.
type Stats struct {
	LocalAccesses     uint64 // own local-bank accesses
	SharedLocal       uint64 // own shared-bank accesses (no routing)
	SharedRemote      uint64 // routed shared accesses
	RemoteHops        uint64 // total link hops of routed accesses
	TotalWaitCycles   uint64 // cycles spent waiting for busy links/ports
	CVWrites          uint64 // continuation-value writes (p_swcv)
	PeakPendingEvents int
}

// System is the whole memory subsystem of an LBP machine.
type System struct {
	cfg    Config
	code   []uint32
	local  [][]uint32 // per core
	shared [][]uint32 // per core

	// link free times, all indexed as described in route().
	coreUp, coreDown    []uint64 // core <-> r1
	bankPort, bankLocal []uint64 // shared bank ports (router side, local side)
	localPort           []uint64 // local bank port
	// Router-tree links, one slot per cycle each, level-indexed: entry k
	// holds the links between the level-(k+1) routers and their parents,
	// one per level-(k+1) router (so upReq[0] is the paper's r1->r2
	// request link array, upReq[1] the r2->r3 one, and deeper levels
	// exist only on machines above 64 cores). Requests and results
	// travel on distinct links in each direction (Section 5.3: an r2
	// receives 4 requests from its r1s AND sends 4 results back each
	// cycle), so the four families are independent.
	upReq, upResp     [][]uint64 // router level k+1 -> level k+2
	downReq, downResp [][]uint64 // router level k+2 -> level k+1
	// Express backward links for machines beyond the paper's 64 cores:
	// long join/result messages climb the same router hierarchy instead
	// of walking the serpentine line core by core (see SendBackward).
	backUp, backDown [][]uint64
	forward          []uint64 // core c -> core c+1 forward link
	backward         []uint64 // core c -> core c-1 backward line

	// per-chip external links (multi-chip extension)
	chipUpReq, chipUpResp     []uint64
	chipDownReq, chipDownResp []uint64

	events eventQueue
	seq    uint64
	Stats  Stats
	Perf   perf.MemCounters
}

// maxTreeDepth bounds the router-tree depth: degree >= 2 and a 32-bit
// core index converge within 32 levels, so routing can use fixed stack
// buffers for the per-level group indices.
const maxTreeDepth = 32

// routerCounts returns the router count of each link level: entry k is
// the number of level-(k+1) routers, and levels stop once a single
// router covers the whole machine (that root has no parent link).
func routerCounts(n, d int) []int {
	var counts []int
	for c := (n + d - 1) / d; c > 1; c = (c + d - 1) / d {
		counts = append(counts, c)
	}
	return counts
}

// makeLevels allocates one link array per tree level.
func makeLevels(counts []int) [][]uint64 {
	lv := make([][]uint64, len(counts))
	for k, n := range counts {
		lv[k] = make([]uint64, n)
	}
	return lv
}

// New creates a memory system.
func New(cfg Config) *System {
	if cfg.RouterDegree < 2 {
		// 0 means unset; degrees below 2 cannot form a tree. Entry-point
		// validation rejects them, so normalize to the paper's 4 here.
		cfg.RouterDegree = 4
	}
	n := cfg.Cores
	d := cfg.RouterDegree
	counts := routerCounts(n, d)
	s := &System{
		cfg:       cfg,
		code:      make([]uint32, cfg.CodeBytes/4),
		local:     make([][]uint32, n),
		shared:    make([][]uint32, n),
		coreUp:    make([]uint64, n),
		coreDown:  make([]uint64, n),
		bankPort:  make([]uint64, n),
		bankLocal: make([]uint64, n),
		localPort: make([]uint64, n),
		upReq:     makeLevels(counts),
		upResp:    makeLevels(counts),
		downReq:   makeLevels(counts),
		downResp:  makeLevels(counts),
		backUp:    makeLevels(counts),
		backDown:  makeLevels(counts),
		forward:   make([]uint64, n),
	}
	if cfg.CoresPerChip > 0 {
		nchips := (n + cfg.CoresPerChip - 1) / cfg.CoresPerChip
		s.chipUpReq = make([]uint64, nchips)
		s.chipUpResp = make([]uint64, nchips)
		s.chipDownReq = make([]uint64, nchips)
		s.chipDownResp = make([]uint64, nchips)
	}
	for c := 0; c < n; c++ {
		s.local[c] = make([]uint32, cfg.LocalBytes/4)
		s.shared[c] = make([]uint32, cfg.SharedBytes/4)
	}
	return s
}

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// LoadCode installs the (replicated) code image.
func (s *System) LoadCode(base uint32, words []uint32) error {
	if base%4 != 0 {
		return fmt.Errorf("mem: code base %#x not word aligned", base)
	}
	idx := (base - CodeBase) / 4
	if int(idx)+len(words) > len(s.code) {
		return fmt.Errorf("mem: code image of %d words overflows code bank", len(words))
	}
	copy(s.code[idx:], words)
	return nil
}

// LoadShared installs initialized data words at an absolute shared address.
func (s *System) LoadShared(addr uint32, words []uint32) error {
	for i, w := range words {
		a := addr + uint32(4*i)
		bank, off, ok := s.sharedSlot(a)
		if !ok {
			return fmt.Errorf("mem: data address %#x outside shared space", a)
		}
		s.shared[bank][off] = w
	}
	return nil
}

// FetchWord reads an instruction word from the code bank. Instruction
// fetch has a dedicated port per core and never contends.
func (s *System) FetchWord(addr uint32) (uint32, bool) {
	if addr%4 != 0 || RegionOf(addr) != RegionCode {
		return 0, false
	}
	idx := addr / 4
	if int(idx) >= len(s.code) {
		return 0, false
	}
	return s.code[idx], true
}

// sharedSlot maps a shared address to (bank, word offset).
func (s *System) sharedSlot(addr uint32) (int, uint32, bool) {
	if RegionOf(addr) != RegionShared {
		return 0, 0, false
	}
	off := addr - SharedBase
	bank := int(off / s.cfg.SharedBytes)
	if bank >= s.cfg.Cores {
		return 0, 0, false
	}
	return bank, (off % s.cfg.SharedBytes) / 4, true
}

// localSlot maps a local address to a word offset in the core's local bank.
func (s *System) localSlot(addr uint32) (uint32, bool) {
	if RegionOf(addr) != RegionLocal {
		return 0, false
	}
	off := addr - LocalBase
	if off >= s.cfg.LocalBytes {
		return 0, false
	}
	return off / 4, true
}

// BankOwner returns the core whose shared bank holds addr, or -1.
func (s *System) BankOwner(addr uint32) int {
	bank, _, ok := s.sharedSlot(addr)
	if !ok {
		return -1
	}
	return bank
}

// SharedAddr returns the absolute address of word index off in bank b.
func (s *System) SharedAddr(bank int, off uint32) uint32 {
	return SharedBase + uint32(bank)*s.cfg.SharedBytes + off*4
}

// alloc reserves the first slot >= tmin on a link and returns it. class
// attributes any wait for a busy slot to the link family (Perf.LinkWait);
// the counters never feed back into timing.
func (s *System) alloc(link *uint64, tmin uint64, class perf.LinkClass) uint64 {
	t := tmin
	if *link > t {
		w := *link - t
		s.Stats.TotalWaitCycles += w
		s.Perf.LinkWait[class] += w
		t = *link
	}
	*link = t + 1
	return t
}

// PeekLocal reads a word from a core's local bank without timing
// (inspection/debug only).
func (s *System) PeekLocal(core int, addr uint32) (uint32, bool) {
	off, ok := s.localSlot(addr)
	if !ok {
		return 0, false
	}
	return s.local[core][off], true
}

// PeekShared reads a word from the shared space without timing.
func (s *System) PeekShared(addr uint32) (uint32, bool) {
	bank, off, ok := s.sharedSlot(addr)
	if !ok {
		return 0, false
	}
	return s.shared[bank][off], true
}

// PokeShared writes a word to the shared space without timing (device and
// loader use).
func (s *System) PokeShared(addr uint32, v uint32) bool {
	bank, off, ok := s.sharedSlot(addr)
	if !ok {
		return false
	}
	s.shared[bank][off] = v
	return true
}
