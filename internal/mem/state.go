package mem

import (
	"fmt"

	"repro/internal/perf"
)

// Serializable memory-system state.
//
// A System is plain data except for the clients attached to in-flight
// events, which point back into the machine. CaptureGlobalState
// therefore splits a snapshot in two: a State struct of pure values, and
// a flat client table the caller (internal/lbp) serializes with its own
// knowledge of the client types. Event records reference clients by
// table index; a LoadClient shared by a service/delivery event pair is
// deduplicated by pointer identity so restore re-attaches one client to
// both events.
//
// The bank images — the bulk of the bytes on large machines — are
// captured separately per core range (CaptureBankRange), so the sharded
// checkpoint format streams them in per-core-group shards instead of
// materializing one contiguous snapshot of every bank.

// State is the serializable state of a System at a cycle boundary,
// minus the per-core bank images when produced by CaptureGlobalState.
// Bank images are trimmed of trailing zero words; the events slice is
// the heap's backing array verbatim (a heap restored in array order is
// the same heap, so pop order is preserved bit-exactly).
type State struct {
	Seq   uint64
	Stats Stats
	Perf  perf.MemCounters

	Code   []uint32
	Local  [][]uint32 // per core; nil in a global-only snapshot
	Shared [][]uint32 // per core; nil in a global-only snapshot

	CoreUp, CoreDown, BankPort, BankLocal, LocalPort []uint64

	// Router-tree links, level-indexed (entry k = level k+1); see
	// System. BackUp/BackDown are the express backward links of
	// machines above 64 cores.
	UpReq, UpResp, DownReq, DownResp [][]uint64
	BackUp, BackDown                 [][]uint64

	// Legacy fixed-tree link arrays. Version-1 checkpoints carry the
	// two levels in these named fields; they are never written by the
	// current capture paths but must stay declared so gob decodes old
	// streams into them for RestoreState's legacy mapping.
	R1UpReq, R1UpResp, R1DownReq, R1DownResp []uint64
	R2UpReq, R2UpResp, R2DownReq, R2DownResp []uint64

	Forward, Backward                                []uint64
	ChipUpReq, ChipUpResp, ChipDownReq, ChipDownResp []uint64

	Events []EventState
}

// EventState is one in-flight event with its client flattened to a
// table index (-1 = no client attached).
type EventState struct {
	Cycle  uint64
	Seq    uint64
	Kind   uint8
	Core   int32
	Off    uint32
	Addr   uint32
	Val    uint32
	Width  uint8
	Signed bool
	Client int32
}

func trimZeros(words []uint32) []uint32 {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	return append([]uint32(nil), words[:n]...)
}

func copyU64(v []uint64) []uint64 { return append([]uint64(nil), v...) }

func copyLevels(lv [][]uint64) [][]uint64 {
	if len(lv) == 0 {
		return nil
	}
	out := make([][]uint64, len(lv))
	for k := range lv {
		out[k] = copyU64(lv[k])
	}
	return out
}

// CaptureGlobalState snapshots everything but the per-core bank images:
// link-allocator state, counters, the code bank and the in-flight event
// queue. The returned client table holds every distinct event client in
// first-reference order; the caller owns serializing and rebuilding them
// (RestoreGlobalState re-attaches by index).
func (s *System) CaptureGlobalState() (*State, []any) {
	st := &State{
		Seq:   s.seq,
		Stats: s.Stats,
		Perf:  s.Perf,
		Code:  trimZeros(s.code),

		CoreUp: copyU64(s.coreUp), CoreDown: copyU64(s.coreDown),
		BankPort: copyU64(s.bankPort), BankLocal: copyU64(s.bankLocal),
		LocalPort: copyU64(s.localPort),
		UpReq:     copyLevels(s.upReq), UpResp: copyLevels(s.upResp),
		DownReq: copyLevels(s.downReq), DownResp: copyLevels(s.downResp),
		BackUp: copyLevels(s.backUp), BackDown: copyLevels(s.backDown),
		Forward: copyU64(s.forward), Backward: copyU64(s.backward),
		ChipUpReq: copyU64(s.chipUpReq), ChipUpResp: copyU64(s.chipUpResp),
		ChipDownReq: copyU64(s.chipDownReq), ChipDownResp: copyU64(s.chipDownResp),
	}
	var clients []any
	loadIdx := make(map[LoadClient]int32)
	st.Events = make([]EventState, len(s.events))
	for i := range s.events {
		e := &s.events[i]
		es := EventState{
			Cycle: e.cycle, Seq: e.seq, Kind: uint8(e.kind), Core: e.core,
			Off: e.off, Addr: e.addr, Val: e.val,
			Width: uint8(e.width), Signed: e.signed, Client: -1,
		}
		switch {
		case e.lc != nil:
			// The two events of a shared load share one client; dedup by
			// identity (LoadClient implementations are pointers).
			id, ok := loadIdx[e.lc]
			if !ok {
				id = int32(len(clients))
				clients = append(clients, e.lc)
				loadIdx[e.lc] = id
			}
			es.Client = id
		case e.dc != nil:
			// Done clients are used by exactly one event each.
			es.Client = int32(len(clients))
			clients = append(clients, e.dc)
		}
		st.Events[i] = es
	}
	return st, clients
}

// CaptureBankRange snapshots the local and shared bank images of cores
// [lo, hi), trimmed of trailing zero words.
func (s *System) CaptureBankRange(lo, hi int) (local, shared [][]uint32) {
	local = make([][]uint32, hi-lo)
	shared = make([][]uint32, hi-lo)
	for i := lo; i < hi; i++ {
		local[i-lo] = trimZeros(s.local[i])
		shared[i-lo] = trimZeros(s.shared[i])
	}
	return local, shared
}

// CaptureState snapshots the whole system, bank images included, as one
// State (the version-1 monolithic layout).
func (s *System) CaptureState() (*State, []any) {
	st, clients := s.CaptureGlobalState()
	st.Local, st.Shared = s.CaptureBankRange(0, s.cfg.Cores)
	return st, clients
}

// RestoreBankRange installs captured bank images for cores starting at
// lo.
func (s *System) RestoreBankRange(lo int, local, shared [][]uint32) error {
	if len(local) != len(shared) || lo < 0 || lo+len(local) > len(s.local) {
		return fmt.Errorf("mem: state bank range [%d,%d+%d) does not fit the configuration", lo, lo, len(local))
	}
	restoreBank := func(dst, src []uint32, what string, i int) error {
		if len(src) > len(dst) {
			return fmt.Errorf("mem: state %s bank %d exceeds its configured size", what, i)
		}
		clear(dst)
		copy(dst, src)
		return nil
	}
	for i := range local {
		if err := restoreBank(s.local[lo+i], local[i], "local", lo+i); err != nil {
			return err
		}
		if err := restoreBank(s.shared[lo+i], shared[i], "shared", lo+i); err != nil {
			return err
		}
	}
	return nil
}

// restoreTreeLinks installs the router-tree link levels. A version-1
// snapshot carries no level-indexed arrays; its two fixed levels arrive
// in the legacy R1*/R2* fields instead, and deeper levels or express
// backward links cannot exist in such a snapshot (the format predates
// machines above 64 cores).
func (s *System) restoreTreeLinks(st *State) error {
	restoreLevels := func(dst [][]uint64, src [][]uint64, name string) error {
		if len(src) != len(dst) {
			return fmt.Errorf("mem: state link levels %s do not match the configuration", name)
		}
		for k := range dst {
			if len(src[k]) != len(dst[k]) {
				return fmt.Errorf("mem: state link level %s[%d] does not match the configuration", name, k)
			}
			copy(dst[k], src[k])
		}
		return nil
	}
	if st.UpReq != nil || st.R1UpReq == nil {
		for _, l := range []struct {
			dst  [][]uint64
			src  [][]uint64
			name string
		}{
			{s.upReq, st.UpReq, "upReq"}, {s.upResp, st.UpResp, "upResp"},
			{s.downReq, st.DownReq, "downReq"}, {s.downResp, st.DownResp, "downResp"},
			{s.backUp, st.BackUp, "backUp"}, {s.backDown, st.BackDown, "backDown"},
		} {
			if err := restoreLevels(l.dst, l.src, l.name); err != nil {
				return err
			}
		}
		return nil
	}
	// Legacy layout: level 1 = r1 arrays, level 2 = r2 arrays. The old
	// format always allocated both levels (length >= 1) even when the
	// machine was too small to route through them; such unused arrays
	// hold only zeros and are dropped.
	legacy := [][4][]uint64{
		{st.R1UpReq, st.R1UpResp, st.R1DownReq, st.R1DownResp},
		{st.R2UpReq, st.R2UpResp, st.R2DownReq, st.R2DownResp},
	}
	for k, fam := range legacy {
		if k >= len(s.upReq) {
			continue
		}
		dst := [4][]uint64{s.upReq[k], s.upResp[k], s.downReq[k], s.downResp[k]}
		for f := range dst {
			if len(fam[f]) != len(dst[f]) {
				return fmt.Errorf("mem: state legacy link level %d does not match the configuration", k+1)
			}
			copy(dst[f], fam[f])
		}
	}
	return nil
}

// RestoreGlobalState installs a global snapshot — everything but the
// bank images — into a freshly built System of the same configuration.
// clients must be the rebuilt client table, index-aligned with the one
// CaptureGlobalState returned.
func (s *System) RestoreGlobalState(st *State, clients []any) error {
	if len(st.Code) > len(s.code) {
		return fmt.Errorf("mem: state code image exceeds the code bank")
	}
	restoreLinks := func(dst, src []uint64, name string) error {
		if len(src) != len(dst) {
			return fmt.Errorf("mem: state link array %s does not match the configuration", name)
		}
		copy(dst, src)
		return nil
	}
	clear(s.code)
	copy(s.code, st.Code)
	if len(st.Backward) > 0 {
		s.ensureBackward()
	}
	for _, l := range []struct {
		dst  []uint64
		src  []uint64
		name string
	}{
		{s.coreUp, st.CoreUp, "coreUp"}, {s.coreDown, st.CoreDown, "coreDown"},
		{s.bankPort, st.BankPort, "bankPort"}, {s.bankLocal, st.BankLocal, "bankLocal"},
		{s.localPort, st.LocalPort, "localPort"},
		{s.forward, st.Forward, "forward"}, {s.backward, st.Backward, "backward"},
		{s.chipUpReq, st.ChipUpReq, "chipUpReq"}, {s.chipUpResp, st.ChipUpResp, "chipUpResp"},
		{s.chipDownReq, st.ChipDownReq, "chipDownReq"}, {s.chipDownResp, st.ChipDownResp, "chipDownResp"},
	} {
		if err := restoreLinks(l.dst, l.src, l.name); err != nil {
			return err
		}
	}
	if err := s.restoreTreeLinks(st); err != nil {
		return err
	}
	s.seq = st.Seq
	s.Stats = st.Stats
	s.Perf = st.Perf
	s.events = s.events[:0]
	for i := range st.Events {
		es := &st.Events[i]
		e := event{
			cycle: es.Cycle, seq: es.Seq, kind: evKind(es.Kind), core: es.Core,
			off: es.Off, addr: es.Addr, val: es.Val,
			width: Width(es.Width), signed: es.Signed,
		}
		if es.Client >= 0 {
			if int(es.Client) >= len(clients) {
				return fmt.Errorf("mem: state event %d references client %d of %d", i, es.Client, len(clients))
			}
			cl := clients[es.Client]
			switch e.kind {
			case evLocalLoad, evSharedRead, evLoadDone:
				lc, ok := cl.(LoadClient)
				if !ok {
					return fmt.Errorf("mem: state event %d needs a LoadClient, got %T", i, cl)
				}
				e.lc = lc
			default:
				dc, ok := cl.(DoneClient)
				if !ok {
					return fmt.Errorf("mem: state event %d needs a DoneClient, got %T", i, cl)
				}
				e.dc = dc
			}
		}
		s.events = append(s.events, e)
	}
	return nil
}

// RestoreState installs a monolithic snapshot (global state plus all
// bank images) into a freshly built System of the same configuration.
func (s *System) RestoreState(st *State, clients []any) error {
	if len(st.Local) != len(s.local) || len(st.Shared) != len(s.shared) {
		return fmt.Errorf("mem: state bank count does not match the configuration")
	}
	if err := s.RestoreBankRange(0, st.Local, st.Shared); err != nil {
		return err
	}
	return s.RestoreGlobalState(st, clients)
}

// Reset returns the system to its post-New state, keeping allocations,
// for warm-machine reuse across runs.
func (s *System) Reset() {
	clear(s.code)
	for i := range s.local {
		clear(s.local[i])
	}
	for i := range s.shared {
		clear(s.shared[i])
	}
	for _, l := range [][]uint64{
		s.coreUp, s.coreDown, s.bankPort, s.bankLocal, s.localPort,
		s.forward, s.backward,
		s.chipUpReq, s.chipUpResp, s.chipDownReq, s.chipDownResp,
	} {
		clear(l)
	}
	for _, lv := range [][][]uint64{
		s.upReq, s.upResp, s.downReq, s.downResp, s.backUp, s.backDown,
	} {
		for _, l := range lv {
			clear(l)
		}
	}
	clear(s.events) // release clients
	s.events = s.events[:0]
	s.seq = 0
	s.Stats = Stats{}
	s.Perf = perf.MemCounters{}
}
