package mem

import (
	"fmt"

	"repro/internal/perf"
)

// Serializable memory-system state.
//
// A System is plain data except for the clients attached to in-flight
// events, which point back into the machine. CaptureState therefore
// splits a snapshot in two: a State struct of pure values, and a flat
// client table the caller (internal/lbp) serializes with its own
// knowledge of the client types. Event records reference clients by
// table index; a LoadClient shared by a service/delivery event pair is
// deduplicated by pointer identity so restore re-attaches one client to
// both events.

// State is the serializable state of a System at a cycle boundary.
// Bank images are trimmed of trailing zero words; the events slice is
// the heap's backing array verbatim (a heap restored in array order is
// the same heap, so pop order is preserved bit-exactly).
type State struct {
	Seq   uint64
	Stats Stats
	Perf  perf.MemCounters

	Code   []uint32
	Local  [][]uint32 // per core
	Shared [][]uint32 // per core

	CoreUp, CoreDown, BankPort, BankLocal, LocalPort []uint64
	R1UpReq, R1UpResp, R1DownReq, R1DownResp         []uint64
	R2UpReq, R2UpResp, R2DownReq, R2DownResp         []uint64
	Forward, Backward                                []uint64
	ChipUpReq, ChipUpResp, ChipDownReq, ChipDownResp []uint64

	Events []EventState
}

// EventState is one in-flight event with its client flattened to a
// table index (-1 = no client attached).
type EventState struct {
	Cycle  uint64
	Seq    uint64
	Kind   uint8
	Core   int32
	Off    uint32
	Addr   uint32
	Val    uint32
	Width  uint8
	Signed bool
	Client int32
}

func trimZeros(words []uint32) []uint32 {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	return append([]uint32(nil), words[:n]...)
}

func copyU64(v []uint64) []uint64 { return append([]uint64(nil), v...) }

// CaptureState snapshots the system. The returned client table holds
// every distinct event client in first-reference order; the caller owns
// serializing and rebuilding them (RestoreState re-attaches by index).
func (s *System) CaptureState() (*State, []any) {
	st := &State{
		Seq:   s.seq,
		Stats: s.Stats,
		Perf:  s.Perf,
		Code:  trimZeros(s.code),

		CoreUp: copyU64(s.coreUp), CoreDown: copyU64(s.coreDown),
		BankPort: copyU64(s.bankPort), BankLocal: copyU64(s.bankLocal),
		LocalPort: copyU64(s.localPort),
		R1UpReq:   copyU64(s.r1UpReq), R1UpResp: copyU64(s.r1UpResp),
		R1DownReq: copyU64(s.r1DownReq), R1DownResp: copyU64(s.r1DownResp),
		R2UpReq: copyU64(s.r2UpReq), R2UpResp: copyU64(s.r2UpResp),
		R2DownReq: copyU64(s.r2DownReq), R2DownResp: copyU64(s.r2DownResp),
		Forward: copyU64(s.forward), Backward: copyU64(s.backward),
		ChipUpReq: copyU64(s.chipUpReq), ChipUpResp: copyU64(s.chipUpResp),
		ChipDownReq: copyU64(s.chipDownReq), ChipDownResp: copyU64(s.chipDownResp),
	}
	st.Local = make([][]uint32, len(s.local))
	for i, b := range s.local {
		st.Local[i] = trimZeros(b)
	}
	st.Shared = make([][]uint32, len(s.shared))
	for i, b := range s.shared {
		st.Shared[i] = trimZeros(b)
	}
	var clients []any
	loadIdx := make(map[LoadClient]int32)
	st.Events = make([]EventState, len(s.events))
	for i := range s.events {
		e := &s.events[i]
		es := EventState{
			Cycle: e.cycle, Seq: e.seq, Kind: uint8(e.kind), Core: e.core,
			Off: e.off, Addr: e.addr, Val: e.val,
			Width: uint8(e.width), Signed: e.signed, Client: -1,
		}
		switch {
		case e.lc != nil:
			// The two events of a shared load share one client; dedup by
			// identity (LoadClient implementations are pointers).
			id, ok := loadIdx[e.lc]
			if !ok {
				id = int32(len(clients))
				clients = append(clients, e.lc)
				loadIdx[e.lc] = id
			}
			es.Client = id
		case e.dc != nil:
			// Done clients are used by exactly one event each.
			es.Client = int32(len(clients))
			clients = append(clients, e.dc)
		}
		st.Events[i] = es
	}
	return st, clients
}

// RestoreState installs a captured snapshot into a freshly built System
// of the same configuration. clients must be the rebuilt client table,
// index-aligned with the one CaptureState returned.
func (s *System) RestoreState(st *State, clients []any) error {
	if len(st.Local) != len(s.local) || len(st.Shared) != len(s.shared) {
		return fmt.Errorf("mem: state bank count does not match the configuration")
	}
	if len(st.Code) > len(s.code) {
		return fmt.Errorf("mem: state code image exceeds the code bank")
	}
	restoreBank := func(dst, src []uint32, what string, i int) error {
		if len(src) > len(dst) {
			return fmt.Errorf("mem: state %s bank %d exceeds its configured size", what, i)
		}
		clear(dst)
		copy(dst, src)
		return nil
	}
	restoreLinks := func(dst, src []uint64, name string) error {
		if len(src) != len(dst) {
			return fmt.Errorf("mem: state link array %s does not match the configuration", name)
		}
		copy(dst, src)
		return nil
	}
	clear(s.code)
	copy(s.code, st.Code)
	for i := range s.local {
		if err := restoreBank(s.local[i], st.Local[i], "local", i); err != nil {
			return err
		}
	}
	for i := range s.shared {
		if err := restoreBank(s.shared[i], st.Shared[i], "shared", i); err != nil {
			return err
		}
	}
	if len(st.Backward) > 0 {
		s.ensureBackward()
	}
	for _, l := range []struct {
		dst  []uint64
		src  []uint64
		name string
	}{
		{s.coreUp, st.CoreUp, "coreUp"}, {s.coreDown, st.CoreDown, "coreDown"},
		{s.bankPort, st.BankPort, "bankPort"}, {s.bankLocal, st.BankLocal, "bankLocal"},
		{s.localPort, st.LocalPort, "localPort"},
		{s.r1UpReq, st.R1UpReq, "r1UpReq"}, {s.r1UpResp, st.R1UpResp, "r1UpResp"},
		{s.r1DownReq, st.R1DownReq, "r1DownReq"}, {s.r1DownResp, st.R1DownResp, "r1DownResp"},
		{s.r2UpReq, st.R2UpReq, "r2UpReq"}, {s.r2UpResp, st.R2UpResp, "r2UpResp"},
		{s.r2DownReq, st.R2DownReq, "r2DownReq"}, {s.r2DownResp, st.R2DownResp, "r2DownResp"},
		{s.forward, st.Forward, "forward"}, {s.backward, st.Backward, "backward"},
		{s.chipUpReq, st.ChipUpReq, "chipUpReq"}, {s.chipUpResp, st.ChipUpResp, "chipUpResp"},
		{s.chipDownReq, st.ChipDownReq, "chipDownReq"}, {s.chipDownResp, st.ChipDownResp, "chipDownResp"},
	} {
		if err := restoreLinks(l.dst, l.src, l.name); err != nil {
			return err
		}
	}
	s.seq = st.Seq
	s.Stats = st.Stats
	s.Perf = st.Perf
	s.events = s.events[:0]
	for i := range st.Events {
		es := &st.Events[i]
		e := event{
			cycle: es.Cycle, seq: es.Seq, kind: evKind(es.Kind), core: es.Core,
			off: es.Off, addr: es.Addr, val: es.Val,
			width: Width(es.Width), signed: es.Signed,
		}
		if es.Client >= 0 {
			if int(es.Client) >= len(clients) {
				return fmt.Errorf("mem: state event %d references client %d of %d", i, es.Client, len(clients))
			}
			cl := clients[es.Client]
			switch e.kind {
			case evLocalLoad, evSharedRead, evLoadDone:
				lc, ok := cl.(LoadClient)
				if !ok {
					return fmt.Errorf("mem: state event %d needs a LoadClient, got %T", i, cl)
				}
				e.lc = lc
			default:
				dc, ok := cl.(DoneClient)
				if !ok {
					return fmt.Errorf("mem: state event %d needs a DoneClient, got %T", i, cl)
				}
				e.dc = dc
			}
		}
		s.events = append(s.events, e)
	}
	return nil
}

// Reset returns the system to its post-New state, keeping allocations,
// for warm-machine reuse across runs.
func (s *System) Reset() {
	clear(s.code)
	for i := range s.local {
		clear(s.local[i])
	}
	for i := range s.shared {
		clear(s.shared[i])
	}
	for _, l := range [][]uint64{
		s.coreUp, s.coreDown, s.bankPort, s.bankLocal, s.localPort,
		s.r1UpReq, s.r1UpResp, s.r1DownReq, s.r1DownResp,
		s.r2UpReq, s.r2UpResp, s.r2DownReq, s.r2DownResp,
		s.forward, s.backward,
		s.chipUpReq, s.chipUpResp, s.chipDownReq, s.chipDownResp,
	} {
		clear(l)
	}
	clear(s.events) // release clients
	s.events = s.events[:0]
	s.seq = 0
	s.Stats = Stats{}
	s.Perf = perf.MemCounters{}
}
