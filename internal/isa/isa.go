// Package isa defines the instruction set simulated by the LBP machine:
// the RV32IM base integer instruction set plus the X_PAR (PISC) extension
// described in the paper "Deterministic OpenMP and the LBP Parallelizing
// Manycore Processor" (Figure 5).
//
// The package provides instruction opcodes, 32-bit binary encodings, a
// decoder and a disassembler. The encodings follow the standard RISC-V
// formats (R/I/S/B/U/J); X_PAR instructions live in the custom-0 (0001011)
// and custom-1 (0101011) major opcode spaces.
package isa

import "fmt"

// Op enumerates every instruction the machine understands, after decoding.
type Op uint8

// RV32I base instructions, RV32M multiply/divide extension, and the twelve
// X_PAR instructions of Figure 5.
const (
	OpInvalid Op = iota

	// RV32I
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpFENCE
	OpECALL
	OpEBREAK

	// RV32M
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU

	// X_PAR (PISC) extension, Figure 5 of the paper.
	OpPFC    // p_fc rd: allocate a free hart on the current core
	OpPFN    // p_fn rd: allocate a free hart on the next core
	OpPSET   // p_set rd, rs1: build a hart identity word
	OpPMERGE // p_merge rd, rs1, rs2: merge home and link hart identities
	OpPSYNCM // p_syncm: block fetch until in-flight memory accesses are done
	OpPJAL   // p_jal rd, rs1, off: call pc+off locally, send pc+4 to rs1 hart
	OpPJALR  // p_jalr rd, rs1, rs2: call rs2 locally, send pc+4 to rs1 hart;
	// with rd == x0 this is p_ret, the hart ending protocol
	OpPSWCV // p_swcv rs1, rs2, off: store rs2 on the rs1 hart stack at off
	OpPLWCV // p_lwcv rd, off: load rd from the local stack at off
	OpPSWRE // p_swre rs1, rs2, idx: send rs2 to rs1 hart result buffer idx
	OpPLWRE // p_lwre rd, idx: receive rd from local result buffer idx

	NumOps // sentinel
)

var opNames = [NumOps]string{
	OpInvalid: "invalid",
	OpLUI:     "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori",
	OpORI: "ori", OpANDI: "andi", OpSLLI: "slli", OpSRLI: "srli",
	OpSRAI: "srai",
	OpADD:  "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpFENCE: "fence", OpECALL: "ecall", OpEBREAK: "ebreak",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
	OpPFC: "p_fc", OpPFN: "p_fn", OpPSET: "p_set", OpPMERGE: "p_merge",
	OpPSYNCM: "p_syncm", OpPJAL: "p_jal", OpPJALR: "p_jalr",
	OpPSWCV: "p_swcv", OpPLWCV: "p_lwcv", OpPSWRE: "p_swre",
	OpPLWRE: "p_lwre",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is a decoded instruction. Imm is sign-extended where the format
// calls for it.
type Inst struct {
	Op   Op
	Rd   uint8
	Rs1  uint8
	Rs2  uint8
	Imm  int32
	Raw  uint32 // original encoding, for diagnostics
	Addr uint32 // address the instruction was fetched from (filled by users)
}

// Class groups opcodes by the pipeline resources they use.
type Class uint8

const (
	ClassALU    Class = iota // 1-cycle integer operation
	ClassMul                 // multi-cycle multiply
	ClassDiv                 // multi-cycle divide/remainder
	ClassLoad                // memory read, result via the result buffer
	ClassStore               // memory write, no result
	ClassBranch              // conditional branch, resolves next pc
	ClassJump                // jal/jalr, writes rd and redirects fetch
	ClassSystem              // fence/ecall/ebreak/p_syncm
	ClassXPar                // X_PAR control instructions (fork, set, ...)
)

// ClassOf reports the pipeline class of an opcode.
func ClassOf(op Op) Class {
	switch op {
	case OpMUL, OpMULH, OpMULHSU, OpMULHU:
		return ClassMul
	case OpDIV, OpDIVU, OpREM, OpREMU:
		return ClassDiv
	case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpPLWCV:
		return ClassLoad
	case OpSB, OpSH, OpSW, OpPSWCV, OpPSWRE:
		return ClassStore
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return ClassBranch
	case OpJAL, OpJALR, OpPJAL, OpPJALR:
		return ClassJump
	case OpFENCE, OpECALL, OpEBREAK, OpPSYNCM:
		return ClassSystem
	case OpPFC, OpPFN, OpPSET, OpPMERGE, OpPLWRE:
		return ClassXPar
	default:
		return ClassALU
	}
}

// WritesRd reports whether the instruction produces a register result.
func (i *Inst) WritesRd() bool {
	if i.Rd == 0 {
		return false
	}
	switch ClassOf(i.Op) {
	case ClassStore, ClassBranch, ClassSystem:
		return false
	}
	return true
}

// ReadsRs1 reports whether rs1 is a source operand.
func (i *Inst) ReadsRs1() bool {
	switch i.Op {
	case OpLUI, OpAUIPC, OpJAL, OpPFC, OpPFN, OpPSYNCM, OpFENCE,
		OpECALL, OpEBREAK, OpPLWRE:
		return false
	case OpPLWCV:
		// p_lwcv loads relative to the implicit stack pointer (x2).
		return true
	}
	return true
}

// ReadsRs2 reports whether rs2 is a source operand.
func (i *Inst) ReadsRs2() bool {
	switch ClassOf(i.Op) {
	case ClassBranch, ClassStore:
		return true
	}
	switch i.Op {
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA,
		OpOR, OpAND, OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU,
		OpREM, OpREMU, OpPMERGE, OpPJALR:
		return true
	}
	return false
}

// IsPRet reports whether the instruction is the p_ret form of p_jalr
// (rd == x0), which runs the hart ending protocol of Figure 6.
func (i *Inst) IsPRet() bool {
	return i.Op == OpPJALR && i.Rd == 0
}

// Register ABI names, indexed by register number.
var RegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegByName maps an ABI or numeric register name to its number.
func RegByName(name string) (uint8, bool) {
	for i, n := range RegNames {
		if n == name {
			return uint8(i), true
		}
	}
	if len(name) >= 2 && name[0] == 'x' {
		n := 0
		for _, c := range name[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		if n < 32 {
			return uint8(n), true
		}
	}
	if name == "fp" {
		return 8, true
	}
	return 0, false
}
