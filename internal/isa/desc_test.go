package isa

import "testing"

// Every descriptor field must agree with the switch-based reference
// predicates for every opcode and rd value (rd matters for WritesRd and
// IsPRet).
func TestDescMatchesPredicates(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		for _, rd := range []uint8{0, 1, 31} {
			in := Inst{Op: op, Rd: rd, Rs1: 5, Rs2: 6, Imm: -4, Raw: 0xdeadbeef}
			d := DescOf(in)
			if d.Inst != in {
				t.Fatalf("%v: DescOf mutated the instruction", op)
			}
			if d.Cls != ClassOf(op) {
				t.Errorf("%v: Cls = %d, ClassOf = %d", op, d.Cls, ClassOf(op))
			}
			if d.ReadsRs1() != in.ReadsRs1() {
				t.Errorf("%v: ReadsRs1 = %v, want %v", op, d.ReadsRs1(), in.ReadsRs1())
			}
			if d.ReadsRs2() != in.ReadsRs2() {
				t.Errorf("%v: ReadsRs2 = %v, want %v", op, d.ReadsRs2(), in.ReadsRs2())
			}
			if d.WritesRd() != in.WritesRd() {
				t.Errorf("%v rd=%d: WritesRd = %v, want %v", op, rd, d.WritesRd(), in.WritesRd())
			}
			if d.IsPRet() != in.IsPRet() {
				t.Errorf("%v rd=%d: IsPRet = %v, want %v", op, rd, d.IsPRet(), in.IsPRet())
			}
			wantLat := LatALU
			switch ClassOf(op) {
			case ClassMul:
				wantLat = LatMul
			case ClassDiv:
				wantLat = LatDiv
			}
			if d.Lat != wantLat {
				t.Errorf("%v: Lat = %d, want %d", op, d.Lat, wantLat)
			}
			wantW, wantSigned := uint8(4), false
			switch op {
			case OpLB:
				wantW, wantSigned = 1, true
			case OpLBU, OpSB:
				wantW = 1
			case OpLH:
				wantW, wantSigned = 2, true
			case OpLHU, OpSH:
				wantW = 2
			}
			if d.MemW != wantW || d.MemSigned() != wantSigned {
				t.Errorf("%v: MemW,Signed = %d,%v want %d,%v",
					op, d.MemW, d.MemSigned(), wantW, wantSigned)
			}
		}
	}
}

func TestDecodeDesc(t *testing.T) {
	// addi x5, x6, 8 = imm[11:0]=8 rs1=6 funct3=000 rd=5 opcode=0010011
	raw := uint32(8)<<20 | 6<<15 | 5<<7 | 0b0010011
	d := DecodeDesc(raw)
	if d.Op() != OpADDI || d.Inst.Rd != 5 || d.Inst.Rs1 != 6 || d.Inst.Imm != 8 {
		t.Fatalf("DecodeDesc(addi) = %+v", d)
	}
}
