package isa

// Operation descriptors: the per-instruction metadata the simulator's
// per-retire hot path needs — pipeline class, operand-read/result-write
// flags, functional-unit latency class and memory access shape —
// precomputed once at decode so fetch/rename/issue/execute do flag tests
// and one indexed dispatch instead of re-deriving everything from the
// opcode with switches ("threaded code"). A Desc is immutable after
// DescOf; predecoded descriptor images are shared read-only across
// machines (see internal/lbp's decode cache).

// DescFlags packs the boolean instruction properties.
type DescFlags uint8

const (
	// DescReadsRs1 marks rs1 as a source operand (Inst.ReadsRs1).
	DescReadsRs1 DescFlags = 1 << iota
	// DescReadsRs2 marks rs2 as a source operand (Inst.ReadsRs2).
	DescReadsRs2
	// DescWritesRd marks a register result (Inst.WritesRd).
	DescWritesRd
	// DescIsPRet marks the p_ret form of p_jalr (Inst.IsPRet).
	DescIsPRet
	// DescMemSigned marks a sign-extending load (lb/lh).
	DescMemSigned
)

// LatClass selects a functional-unit latency: the machine maps each
// class to its configured cycle count (ALULat/MulLat/DivLat).
type LatClass uint8

const (
	LatALU LatClass = iota // 1-cycle integer/jump/X_PAR latency class
	LatMul                 // multi-cycle multiply
	LatDiv                 // multi-cycle divide/remainder
	NumLatClasses
)

// Desc is a fully decoded instruction plus its precomputed pipeline
// metadata. The embedded Inst keeps the operand fields and the raw word
// for diagnostics.
type Desc struct {
	Inst  Inst
	Cls   Class
	Flags DescFlags
	Lat   LatClass
	MemW  uint8 // load/store access width in bytes (4 for word ops)
}

// ReadsRs1 reports whether rs1 is a source operand.
func (d *Desc) ReadsRs1() bool { return d.Flags&DescReadsRs1 != 0 }

// ReadsRs2 reports whether rs2 is a source operand.
func (d *Desc) ReadsRs2() bool { return d.Flags&DescReadsRs2 != 0 }

// WritesRd reports whether the instruction produces a register result.
func (d *Desc) WritesRd() bool { return d.Flags&DescWritesRd != 0 }

// IsPRet reports whether the instruction is p_ret.
func (d *Desc) IsPRet() bool { return d.Flags&DescIsPRet != 0 }

// MemSigned reports whether a load sign-extends its value.
func (d *Desc) MemSigned() bool { return d.Flags&DescMemSigned != 0 }

// Op returns the opcode.
func (d *Desc) Op() Op { return d.Inst.Op }

// DescOf precomputes the descriptor of a decoded instruction. It is the
// single source of the metadata: every field is derived from the
// existing Inst predicates and ClassOf, so descriptor-driven execution
// agrees with the switch-driven reference semantics by construction.
func DescOf(in Inst) Desc {
	d := Desc{Inst: in, Cls: ClassOf(in.Op), MemW: 4}
	if in.ReadsRs1() {
		d.Flags |= DescReadsRs1
	}
	if in.ReadsRs2() {
		d.Flags |= DescReadsRs2
	}
	if in.WritesRd() {
		d.Flags |= DescWritesRd
	}
	if in.IsPRet() {
		d.Flags |= DescIsPRet
	}
	switch d.Cls {
	case ClassMul:
		d.Lat = LatMul
	case ClassDiv:
		d.Lat = LatDiv
	}
	switch in.Op {
	case OpLB:
		d.MemW, d.Flags = 1, d.Flags|DescMemSigned
	case OpLH:
		d.MemW, d.Flags = 2, d.Flags|DescMemSigned
	case OpLBU, OpSB:
		d.MemW = 1
	case OpLHU, OpSH:
		d.MemW = 2
	}
	return d
}

// DecodeDesc decodes a raw instruction word straight to its descriptor.
func DecodeDesc(raw uint32) Desc { return DescOf(Decode(raw)) }
