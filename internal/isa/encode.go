package isa

import "fmt"

// RISC-V major opcodes used by the encoder/decoder.
const (
	opcLUI       = 0x37
	opcAUIPC     = 0x17
	opcJAL       = 0x6F
	opcJALR      = 0x67
	opcBranch    = 0x63
	opcLoad      = 0x03
	opcStore     = 0x23
	opcOpImm     = 0x13
	opcOp        = 0x33
	opcMiscMem   = 0x0F
	opcSystem    = 0x73
	opcXParCtl   = 0x0B // custom-0: p_fc, p_fn, p_set, p_merge, p_syncm, p_jalr, p_lwre, p_jal
	opcXParMem   = 0x2B // custom-1: p_swcv, p_lwcv, p_swre
	funct7MulDiv = 0x01
)

// X_PAR funct3 assignments inside custom-0.
const (
	xf3Fork  = 0 // p_fc (funct7=0), p_fn (funct7=1)
	xf3Set   = 1
	xf3Merge = 2
	xf3Syncm = 3
	xf3Jalr  = 4
	xf3Lwre  = 5
	xf3Jal   = 6 // I-type: rd, rs1, imm12 (pc-relative)
)

// X_PAR funct3 assignments inside custom-1.
const (
	xf3Swcv = 0 // S-type
	xf3Lwcv = 1 // I-type
	xf3Swre = 2 // S-type
)

func encR(opc, f3, f7 uint32, rd, rs1, rs2 uint8) uint32 {
	return f7<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | opc
}

func encI(opc, f3 uint32, rd, rs1 uint8, imm int32) uint32 {
	return uint32(imm&0xFFF)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | opc
}

func encS(opc, f3 uint32, rs1, rs2 uint8, imm int32) uint32 {
	u := uint32(imm)
	return (u>>5&0x7F)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | (u&0x1F)<<7 | opc
}

func encB(opc, f3 uint32, rs1, rs2 uint8, imm int32) uint32 {
	u := uint32(imm)
	return (u>>12&1)<<31 | (u>>5&0x3F)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 |
		f3<<12 | (u>>1&0xF)<<8 | (u>>11&1)<<7 | opc
}

func encU(opc uint32, rd uint8, imm int32) uint32 {
	return uint32(imm)&0xFFFFF000 | uint32(rd)<<7 | opc
}

func encJ(opc uint32, rd uint8, imm int32) uint32 {
	u := uint32(imm)
	return (u>>20&1)<<31 | (u>>1&0x3FF)<<21 | (u>>11&1)<<20 | (u>>12&0xFF)<<12 |
		uint32(rd)<<7 | opc
}

// iType describes how each opcode is encoded.
type encSpec struct {
	opc uint32
	f3  uint32
	f7  uint32
	fmt byte // 'R','I','S','B','U','J','N' (none), special letters for shifts
}

var encTable = map[Op]encSpec{
	OpLUI:    {opcLUI, 0, 0, 'U'},
	OpAUIPC:  {opcAUIPC, 0, 0, 'U'},
	OpJAL:    {opcJAL, 0, 0, 'J'},
	OpJALR:   {opcJALR, 0, 0, 'I'},
	OpBEQ:    {opcBranch, 0, 0, 'B'},
	OpBNE:    {opcBranch, 1, 0, 'B'},
	OpBLT:    {opcBranch, 4, 0, 'B'},
	OpBGE:    {opcBranch, 5, 0, 'B'},
	OpBLTU:   {opcBranch, 6, 0, 'B'},
	OpBGEU:   {opcBranch, 7, 0, 'B'},
	OpLB:     {opcLoad, 0, 0, 'I'},
	OpLH:     {opcLoad, 1, 0, 'I'},
	OpLW:     {opcLoad, 2, 0, 'I'},
	OpLBU:    {opcLoad, 4, 0, 'I'},
	OpLHU:    {opcLoad, 5, 0, 'I'},
	OpSB:     {opcStore, 0, 0, 'S'},
	OpSH:     {opcStore, 1, 0, 'S'},
	OpSW:     {opcStore, 2, 0, 'S'},
	OpADDI:   {opcOpImm, 0, 0, 'I'},
	OpSLTI:   {opcOpImm, 2, 0, 'I'},
	OpSLTIU:  {opcOpImm, 3, 0, 'I'},
	OpXORI:   {opcOpImm, 4, 0, 'I'},
	OpORI:    {opcOpImm, 6, 0, 'I'},
	OpANDI:   {opcOpImm, 7, 0, 'I'},
	OpSLLI:   {opcOpImm, 1, 0x00, 'H'},
	OpSRLI:   {opcOpImm, 5, 0x00, 'H'},
	OpSRAI:   {opcOpImm, 5, 0x20, 'H'},
	OpADD:    {opcOp, 0, 0x00, 'R'},
	OpSUB:    {opcOp, 0, 0x20, 'R'},
	OpSLL:    {opcOp, 1, 0x00, 'R'},
	OpSLT:    {opcOp, 2, 0x00, 'R'},
	OpSLTU:   {opcOp, 3, 0x00, 'R'},
	OpXOR:    {opcOp, 4, 0x00, 'R'},
	OpSRL:    {opcOp, 5, 0x00, 'R'},
	OpSRA:    {opcOp, 5, 0x20, 'R'},
	OpOR:     {opcOp, 6, 0x00, 'R'},
	OpAND:    {opcOp, 7, 0x00, 'R'},
	OpFENCE:  {opcMiscMem, 0, 0, 'I'},
	OpECALL:  {opcSystem, 0, 0, 'I'},
	OpEBREAK: {opcSystem, 0, 0, 'E'},

	OpMUL:    {opcOp, 0, funct7MulDiv, 'R'},
	OpMULH:   {opcOp, 1, funct7MulDiv, 'R'},
	OpMULHSU: {opcOp, 2, funct7MulDiv, 'R'},
	OpMULHU:  {opcOp, 3, funct7MulDiv, 'R'},
	OpDIV:    {opcOp, 4, funct7MulDiv, 'R'},
	OpDIVU:   {opcOp, 5, funct7MulDiv, 'R'},
	OpREM:    {opcOp, 6, funct7MulDiv, 'R'},
	OpREMU:   {opcOp, 7, funct7MulDiv, 'R'},

	OpPFC:    {opcXParCtl, xf3Fork, 0x00, 'R'},
	OpPFN:    {opcXParCtl, xf3Fork, 0x01, 'R'},
	OpPSET:   {opcXParCtl, xf3Set, 0, 'R'},
	OpPMERGE: {opcXParCtl, xf3Merge, 0, 'R'},
	OpPSYNCM: {opcXParCtl, xf3Syncm, 0, 'R'},
	OpPJALR:  {opcXParCtl, xf3Jalr, 0, 'R'},
	OpPLWRE:  {opcXParCtl, xf3Lwre, 0, 'I'},
	OpPJAL:   {opcXParCtl, xf3Jal, 0, 'I'},
	OpPSWCV:  {opcXParMem, xf3Swcv, 0, 'S'},
	OpPLWCV:  {opcXParMem, xf3Lwcv, 0, 'I'},
	OpPSWRE:  {opcXParMem, xf3Swre, 0, 'S'},
}

// Encode produces the 32-bit binary encoding of a decoded instruction.
func Encode(in Inst) (uint32, error) {
	spec, ok := encTable[in.Op]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode op %v", in.Op)
	}
	switch spec.fmt {
	case 'R':
		return encR(spec.opc, spec.f3, spec.f7, in.Rd, in.Rs1, in.Rs2), nil
	case 'I':
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("isa: %v immediate %d out of 12-bit range", in.Op, in.Imm)
		}
		return encI(spec.opc, spec.f3, in.Rd, in.Rs1, in.Imm), nil
	case 'H': // shift-immediate
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("isa: %v shift amount %d out of range", in.Op, in.Imm)
		}
		return encI(spec.opc, spec.f3, in.Rd, in.Rs1, in.Imm|int32(spec.f7)<<5), nil
	case 'S':
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("isa: %v immediate %d out of 12-bit range", in.Op, in.Imm)
		}
		return encS(spec.opc, spec.f3, in.Rs1, in.Rs2, in.Imm), nil
	case 'B':
		if in.Imm < -4096 || in.Imm > 4095 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: %v branch offset %d invalid", in.Op, in.Imm)
		}
		return encB(spec.opc, spec.f3, in.Rs1, in.Rs2, in.Imm), nil
	case 'U':
		return encU(spec.opc, in.Rd, in.Imm), nil
	case 'J':
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: %v jump offset %d invalid", in.Op, in.Imm)
		}
		return encJ(spec.opc, in.Rd, in.Imm), nil
	case 'E': // ebreak
		return encI(spec.opc, spec.f3, 0, 0, 1), nil
	}
	return 0, fmt.Errorf("isa: unknown format for %v", in.Op)
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode interprets a 32-bit word as an instruction. Unknown words decode
// to an Inst with Op == OpInvalid; no error is returned so that the
// pipeline can raise a deterministic machine fault instead.
func Decode(raw uint32) Inst {
	in := Inst{Raw: raw}
	opc := raw & 0x7F
	rd := uint8(raw >> 7 & 0x1F)
	f3 := raw >> 12 & 0x7
	rs1 := uint8(raw >> 15 & 0x1F)
	rs2 := uint8(raw >> 20 & 0x1F)
	f7 := raw >> 25 & 0x7F
	immI := signExtend(raw>>20, 12)
	immS := signExtend(raw>>25<<5|raw>>7&0x1F, 12)
	immB := signExtend((raw>>31&1)<<12|(raw>>7&1)<<11|(raw>>25&0x3F)<<5|(raw>>8&0xF)<<1, 13)
	immU := int32(raw & 0xFFFFF000)
	immJ := signExtend((raw>>31&1)<<20|(raw>>12&0xFF)<<12|(raw>>20&1)<<11|(raw>>21&0x3FF)<<1, 21)

	switch opc {
	case opcLUI:
		in.Op, in.Rd, in.Imm = OpLUI, rd, immU
	case opcAUIPC:
		in.Op, in.Rd, in.Imm = OpAUIPC, rd, immU
	case opcJAL:
		in.Op, in.Rd, in.Imm = OpJAL, rd, immJ
	case opcJALR:
		if f3 == 0 {
			in.Op, in.Rd, in.Rs1, in.Imm = OpJALR, rd, rs1, immI
		}
	case opcBranch:
		ops := map[uint32]Op{0: OpBEQ, 1: OpBNE, 4: OpBLT, 5: OpBGE, 6: OpBLTU, 7: OpBGEU}
		if op, ok := ops[f3]; ok {
			in.Op, in.Rs1, in.Rs2, in.Imm = op, rs1, rs2, immB
		}
	case opcLoad:
		ops := map[uint32]Op{0: OpLB, 1: OpLH, 2: OpLW, 4: OpLBU, 5: OpLHU}
		if op, ok := ops[f3]; ok {
			in.Op, in.Rd, in.Rs1, in.Imm = op, rd, rs1, immI
		}
	case opcStore:
		ops := map[uint32]Op{0: OpSB, 1: OpSH, 2: OpSW}
		if op, ok := ops[f3]; ok {
			in.Op, in.Rs1, in.Rs2, in.Imm = op, rs1, rs2, immS
		}
	case opcOpImm:
		switch f3 {
		case 0:
			in.Op = OpADDI
		case 2:
			in.Op = OpSLTI
		case 3:
			in.Op = OpSLTIU
		case 4:
			in.Op = OpXORI
		case 6:
			in.Op = OpORI
		case 7:
			in.Op = OpANDI
		case 1:
			in.Op = OpSLLI
		case 5:
			if f7 == 0x20 {
				in.Op = OpSRAI
			} else {
				in.Op = OpSRLI
			}
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, immI
		if in.Op == OpSLLI || in.Op == OpSRLI || in.Op == OpSRAI {
			in.Imm = int32(rs2) // shamt
		}
	case opcOp:
		type key struct {
			f3, f7 uint32
		}
		ops := map[key]Op{
			{0, 0x00}: OpADD, {0, 0x20}: OpSUB, {1, 0x00}: OpSLL,
			{2, 0x00}: OpSLT, {3, 0x00}: OpSLTU, {4, 0x00}: OpXOR,
			{5, 0x00}: OpSRL, {5, 0x20}: OpSRA, {6, 0x00}: OpOR,
			{7, 0x00}: OpAND,
			{0, 0x01}: OpMUL, {1, 0x01}: OpMULH, {2, 0x01}: OpMULHSU,
			{3, 0x01}: OpMULHU, {4, 0x01}: OpDIV, {5, 0x01}: OpDIVU,
			{6, 0x01}: OpREM, {7, 0x01}: OpREMU,
		}
		if op, ok := ops[key{f3, f7}]; ok {
			in.Op, in.Rd, in.Rs1, in.Rs2 = op, rd, rs1, rs2
		}
	case opcMiscMem:
		in.Op = OpFENCE
	case opcSystem:
		if raw>>20&0xFFF == 1 {
			in.Op = OpEBREAK
		} else {
			in.Op = OpECALL
		}
	case opcXParCtl:
		switch f3 {
		case xf3Fork:
			if f7 == 0 {
				in.Op, in.Rd = OpPFC, rd
			} else if f7 == 1 {
				in.Op, in.Rd = OpPFN, rd
			}
		case xf3Set:
			in.Op, in.Rd, in.Rs1 = OpPSET, rd, rs1
		case xf3Merge:
			in.Op, in.Rd, in.Rs1, in.Rs2 = OpPMERGE, rd, rs1, rs2
		case xf3Syncm:
			in.Op = OpPSYNCM
		case xf3Jalr:
			in.Op, in.Rd, in.Rs1, in.Rs2 = OpPJALR, rd, rs1, rs2
		case xf3Lwre:
			in.Op, in.Rd, in.Imm = OpPLWRE, rd, immI
		case xf3Jal:
			in.Op, in.Rd, in.Rs1, in.Imm = OpPJAL, rd, rs1, immI
		}
	case opcXParMem:
		switch f3 {
		case xf3Swcv:
			in.Op, in.Rs1, in.Rs2, in.Imm = OpPSWCV, rs1, rs2, immS
		case xf3Lwcv:
			in.Op, in.Rd, in.Imm = OpPLWCV, rd, immI
			in.Rs1 = 2 // implicit sp
		case xf3Swre:
			in.Op, in.Rs1, in.Rs2, in.Imm = OpPSWRE, rs1, rs2, immS
		}
	}
	return in
}

// Disassemble renders the instruction in assembler syntax. pc is used to
// print absolute targets for pc-relative instructions.
func Disassemble(in Inst, pc uint32) string {
	r := func(n uint8) string { return RegNames[n] }
	switch in.Op {
	case OpInvalid:
		return fmt.Sprintf(".word 0x%08x", in.Raw)
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s, 0x%x", in.Op, r(in.Rd), uint32(in.Imm)>>12)
	case OpJAL:
		return fmt.Sprintf("jal %s, 0x%x", r(in.Rd), pc+uint32(in.Imm))
	case OpJALR:
		return fmt.Sprintf("jalr %s, %d(%s)", r(in.Rd), in.Imm, r(in.Rs1))
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Op, r(in.Rs1), r(in.Rs2), pc+uint32(in.Imm))
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rd), in.Imm, r(in.Rs1))
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rs2), in.Imm, r(in.Rs1))
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs1), r(in.Rs2))
	case OpFENCE, OpECALL, OpEBREAK, OpPSYNCM:
		return in.Op.String()
	case OpPFC, OpPFN:
		return fmt.Sprintf("%s %s", in.Op, r(in.Rd))
	case OpPSET:
		return fmt.Sprintf("p_set %s, %s", r(in.Rd), r(in.Rs1))
	case OpPMERGE:
		return fmt.Sprintf("p_merge %s, %s, %s", r(in.Rd), r(in.Rs1), r(in.Rs2))
	case OpPJALR:
		if in.IsPRet() {
			return fmt.Sprintf("p_ret (%s, %s)", r(in.Rs1), r(in.Rs2))
		}
		return fmt.Sprintf("p_jalr %s, %s, %s", r(in.Rd), r(in.Rs1), r(in.Rs2))
	case OpPJAL:
		return fmt.Sprintf("p_jal %s, %s, 0x%x", r(in.Rd), r(in.Rs1), pc+uint32(in.Imm))
	case OpPSWCV:
		return fmt.Sprintf("p_swcv %s, %s, %d", r(in.Rs1), r(in.Rs2), in.Imm)
	case OpPLWCV:
		return fmt.Sprintf("p_lwcv %s, %d", r(in.Rd), in.Imm)
	case OpPSWRE:
		return fmt.Sprintf("p_swre %s, %s, %d", r(in.Rs1), r(in.Rs2), in.Imm)
	case OpPLWRE:
		return fmt.Sprintf("p_lwre %s, %d", r(in.Rd), in.Imm)
	}
	return fmt.Sprintf("%s ???", in.Op)
}
