package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpLUI, Rd: 5, Imm: 0x12345 << 12},
		{Op: OpAUIPC, Rd: 1, Imm: -4096},
		{Op: OpJAL, Rd: 1, Imm: 2048},
		{Op: OpJAL, Rd: 0, Imm: -2},
		{Op: OpJALR, Rd: 1, Rs1: 5, Imm: -4},
		{Op: OpBEQ, Rs1: 5, Rs2: 6, Imm: 16},
		{Op: OpBNE, Rs1: 1, Rs2: 2, Imm: -16},
		{Op: OpBLT, Rs1: 3, Rs2: 4, Imm: 4094},
		{Op: OpBGE, Rs1: 3, Rs2: 4, Imm: -4096},
		{Op: OpBLTU, Rs1: 31, Rs2: 30, Imm: 2},
		{Op: OpBGEU, Rs1: 0, Rs2: 1, Imm: 8},
		{Op: OpLW, Rd: 10, Rs1: 2, Imm: 12},
		{Op: OpLB, Rd: 10, Rs1: 2, Imm: -1},
		{Op: OpLBU, Rd: 10, Rs1: 2, Imm: 255},
		{Op: OpLH, Rd: 7, Rs1: 8, Imm: 2},
		{Op: OpLHU, Rd: 7, Rs1: 8, Imm: -2},
		{Op: OpSW, Rs1: 2, Rs2: 10, Imm: -8},
		{Op: OpSB, Rs1: 2, Rs2: 10, Imm: 7},
		{Op: OpSH, Rs1: 2, Rs2: 10, Imm: 2046},
		{Op: OpADDI, Rd: 2, Rs1: 2, Imm: -16},
		{Op: OpSLTI, Rd: 5, Rs1: 6, Imm: 100},
		{Op: OpSLTIU, Rd: 5, Rs1: 6, Imm: 100},
		{Op: OpXORI, Rd: 5, Rs1: 6, Imm: -1},
		{Op: OpORI, Rd: 5, Rs1: 6, Imm: 0x7FF},
		{Op: OpANDI, Rd: 5, Rs1: 6, Imm: 0xFF},
		{Op: OpSLLI, Rd: 5, Rs1: 6, Imm: 31},
		{Op: OpSRLI, Rd: 5, Rs1: 6, Imm: 1},
		{Op: OpSRAI, Rd: 5, Rs1: 6, Imm: 16},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSLL, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSLT, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSLTU, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpXOR, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSRL, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSRA, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpOR, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpAND, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpMUL, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpMULH, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpMULHSU, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpMULHU, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpDIV, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpDIVU, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpREM, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpREMU, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpPFC, Rd: 31},
		{Op: OpPFN, Rd: 30},
		{Op: OpPSET, Rd: 5, Rs1: 5},
		{Op: OpPMERGE, Rd: 5, Rs1: 5, Rs2: 31},
		{Op: OpPSYNCM},
		{Op: OpPJALR, Rd: 1, Rs1: 5, Rs2: 10},
		{Op: OpPJALR, Rd: 0, Rs1: 1, Rs2: 5}, // p_ret
		{Op: OpPJAL, Rd: 1, Rs1: 31, Imm: 64},
		{Op: OpPSWCV, Rs1: 31, Rs2: 1, Imm: 0},
		{Op: OpPSWCV, Rs1: 31, Rs2: 5, Imm: 8},
		{Op: OpPLWCV, Rd: 1, Rs1: 2, Imm: 0},
		{Op: OpPSWRE, Rs1: 5, Rs2: 10, Imm: 1},
		{Op: OpPLWRE, Rd: 10, Imm: 1},
	}
	for _, c := range cases {
		raw, err := Encode(c)
		if err != nil {
			t.Fatalf("encode %+v: %v", c, err)
		}
		got := Decode(raw)
		got.Raw = 0
		if got.Op != c.Op || got.Rd != c.Rd || got.Rs2 != c.Rs2 || got.Imm != c.Imm {
			t.Errorf("round trip %v: got %+v want %+v (raw %08x)", c.Op, got, c, raw)
		}
		// Rs1: p_lwcv injects the implicit sp.
		wantRs1 := c.Rs1
		if c.Op == OpPLWCV {
			wantRs1 = 2
		}
		if got.Rs1 != wantRs1 {
			t.Errorf("round trip %v: rs1 = %d want %d", c.Op, got.Rs1, wantRs1)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: 2048},
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: -2049},
		{Op: OpSW, Rs1: 1, Rs2: 1, Imm: 4000},
		{Op: OpBEQ, Rs1: 1, Rs2: 1, Imm: 3}, // odd
		{Op: OpBEQ, Rs1: 1, Rs2: 1, Imm: 4096},
		{Op: OpJAL, Rd: 1, Imm: 1 << 20},
		{Op: OpSLLI, Rd: 1, Rs1: 1, Imm: 32},
	}
	for _, c := range bad {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%+v) succeeded, want range error", c)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	for _, raw := range []uint32{0, 0xFFFFFFFF, 0x0000007F, 0x00000057} {
		if in := Decode(raw); in.Op != OpInvalid {
			t.Errorf("Decode(%08x) = %v, want invalid", raw, in.Op)
		}
	}
}

func TestClassOf(t *testing.T) {
	checks := map[Op]Class{
		OpADD: ClassALU, OpADDI: ClassALU, OpLUI: ClassALU,
		OpMUL: ClassMul, OpDIV: ClassDiv, OpREMU: ClassDiv,
		OpLW: ClassLoad, OpPLWCV: ClassLoad,
		OpSW: ClassStore, OpPSWCV: ClassStore, OpPSWRE: ClassStore,
		OpBEQ: ClassBranch, OpBGEU: ClassBranch,
		OpJAL: ClassJump, OpJALR: ClassJump, OpPJAL: ClassJump, OpPJALR: ClassJump,
		OpPSYNCM: ClassSystem, OpFENCE: ClassSystem,
		OpPFC: ClassXPar, OpPFN: ClassXPar, OpPSET: ClassXPar,
		OpPMERGE: ClassXPar, OpPLWRE: ClassXPar,
	}
	for op, want := range checks {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestWritesRd(t *testing.T) {
	if (&Inst{Op: OpSW, Rd: 5}).WritesRd() {
		t.Error("store must not write rd")
	}
	if (&Inst{Op: OpADD, Rd: 0}).WritesRd() {
		t.Error("x0 destination must not count as a write")
	}
	if !(&Inst{Op: OpPFC, Rd: 31}).WritesRd() {
		t.Error("p_fc writes its destination")
	}
	if !(&Inst{Op: OpPLWRE, Rd: 10}).WritesRd() {
		t.Error("p_lwre writes its destination")
	}
	if (&Inst{Op: OpBEQ, Rd: 1}).WritesRd() {
		t.Error("branches do not write a destination")
	}
}

func TestRegByName(t *testing.T) {
	for i, name := range RegNames {
		got, ok := RegByName(name)
		if !ok || got != uint8(i) {
			t.Errorf("RegByName(%q) = %d,%v want %d", name, got, ok, i)
		}
	}
	if r, ok := RegByName("x17"); !ok || r != 17 {
		t.Errorf("RegByName(x17) = %d,%v", r, ok)
	}
	if r, ok := RegByName("fp"); !ok || r != 8 {
		t.Errorf("RegByName(fp) = %d,%v", r, ok)
	}
	if _, ok := RegByName("x32"); ok {
		t.Error("x32 must be rejected")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("bogus must be rejected")
	}
}

func TestHartIDFields(t *testing.T) {
	id := MakeHartID(7, 13)
	if id&HartIDValid == 0 {
		t.Error("valid flag missing")
	}
	if HomeHart(id) != 7 || LinkHart(id) != 13 {
		t.Errorf("fields: home %d link %d", HomeHart(id), LinkHart(id))
	}
	if PSet(0xFFFFFFFF, 3) != MakeHartID(3, NoLink) {
		t.Errorf("PSet(-1,3) = %08x", PSet(0xFFFFFFFF, 3))
	}
	merged := PMerge(MakeHartID(3, NoLink), 9)
	if HomeHart(merged) != 3 || LinkHart(merged) != 9 {
		t.Errorf("PMerge: home %d link %d", HomeHart(merged), LinkHart(merged))
	}
}

func TestGlobalHartSplit(t *testing.T) {
	f := func(core, hart uint8) bool {
		c := int(core % 64)
		h := int(hart % HartsPerCore)
		gc, gh := SplitHart(GlobalHart(c, h))
		return gc == c && gh == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every encodable instruction round-trips through Decode.
func TestQuickRoundTripRType(t *testing.T) {
	rops := []Op{OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA,
		OpOR, OpAND, OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU,
		OpREM, OpREMU, OpPMERGE}
	f := func(opIdx, rd, rs1, rs2 uint8) bool {
		in := Inst{
			Op: rops[int(opIdx)%len(rops)],
			Rd: rd % 32, Rs1: rs1 % 32, Rs2: rs2 % 32,
		}
		raw, err := Encode(in)
		if err != nil {
			return false
		}
		got := Decode(raw)
		return got.Op == in.Op && got.Rd == in.Rd && got.Rs1 == in.Rs1 && got.Rs2 == in.Rs2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripIType(t *testing.T) {
	iops := []Op{OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpLW, OpLB,
		OpLH, OpLBU, OpLHU, OpJALR}
	f := func(opIdx, rd, rs1 uint8, imm int16) bool {
		in := Inst{
			Op: iops[int(opIdx)%len(iops)],
			Rd: rd % 32, Rs1: rs1 % 32,
			Imm: int32(imm) % 2048,
		}
		raw, err := Encode(in)
		if err != nil {
			return false
		}
		got := Decode(raw)
		return got.Op == in.Op && got.Rd == in.Rd && got.Rs1 == in.Rs1 && got.Imm == in.Imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripBranch(t *testing.T) {
	bops := []Op{OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU}
	f := func(opIdx, rs1, rs2 uint8, imm int16) bool {
		off := (int32(imm) % 2048) * 2
		in := Inst{Op: bops[int(opIdx)%len(bops)], Rs1: rs1 % 32, Rs2: rs2 % 32, Imm: off}
		raw, err := Encode(in)
		if err != nil {
			return false
		}
		got := Decode(raw)
		return got.Op == in.Op && got.Rs1 == in.Rs1 && got.Rs2 == in.Rs2 && got.Imm == in.Imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	cases := []struct {
		in   Inst
		pc   uint32
		want string
	}{
		{Inst{Op: OpADDI, Rd: 2, Rs1: 2, Imm: -8}, 0, "addi sp, sp, -8"},
		{Inst{Op: OpJAL, Rd: 1, Imm: 0x100}, 0x400, "jal ra, 0x500"},
		{Inst{Op: OpPFC, Rd: 31}, 0, "p_fc t6"},
		{Inst{Op: OpPSWCV, Rs1: 31, Rs2: 1, Imm: 0}, 0, "p_swcv t6, ra, 0"},
		{Inst{Op: OpPJALR, Rd: 0, Rs1: 1, Rs2: 5}, 0, "p_ret (ra, t0)"},
		{Inst{Op: OpPJALR, Rd: 1, Rs1: 5, Rs2: 10}, 0, "p_jalr ra, t0, a0"},
		{Inst{Op: OpPSYNCM}, 0, "p_syncm"},
		{Inst{Op: OpLW, Rd: 1, Rs1: 2, Imm: 4}, 0, "lw ra, 4(sp)"},
		{Inst{Op: OpSW, Rs1: 2, Rs2: 1, Imm: 0}, 0, "sw ra, 0(sp)"},
		{Inst{Op: OpBEQ, Rs1: 10, Rs2: 0, Imm: 8}, 0x10, "beq a0, zero, 0x18"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in, c.pc); got != c.want {
			t.Errorf("Disassemble(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}
