package isa

// Hart identity words.
//
// X_PAR instructions designate harts with a 32-bit identity word
// (Figure 5 of the paper):
//
//	bit 31     : valid flag (0x80000000)
//	bits 16-30 : the "home" hart — the hart a join address is sent to
//	bits 0-15  : the "link" hart — the next team member, receiver of the
//	             ending-hart signal and of continuation values
//
// A hart is globally numbered 4*core+hart (HartsPerCore is fixed at 4 in
// the paper's design). p_set builds an identity with home = current hart;
// p_merge grafts a freshly allocated hart into the link field.

// HartsPerCore is the number of hardware threads per LBP core.
const HartsPerCore = 4

// HartIDValid is the valid flag of a hart identity word.
const HartIDValid = 0x80000000

// NoLink marks an identity word whose link field designates no hart.
const NoLink = 0xFFFF

// MakeHartID builds a valid identity word with the given home and link
// global hart numbers.
func MakeHartID(home, link uint32) uint32 {
	return HartIDValid | (home&0x7FFF)<<16 | link&0xFFFF
}

// HomeHart extracts the home field of an identity word.
func HomeHart(id uint32) uint32 { return id >> 16 & 0x7FFF }

// LinkHart extracts the link field of an identity word.
func LinkHart(id uint32) uint32 { return id & 0xFFFF }

// GlobalHart converts (core, hart) to a global hart number.
func GlobalHart(core, hart int) uint32 {
	return uint32(core*HartsPerCore + hart)
}

// SplitHart converts a global hart number back to (core, hart).
func SplitHart(g uint32) (core, hart int) {
	return int(g) / HartsPerCore, int(g) % HartsPerCore
}

// PSet implements the p_set semantics: rd = (rs1 & 0xffff) |
// (current hart << 16) | valid flag.
func PSet(rs1, currentHart uint32) uint32 {
	return HartIDValid | (currentHart&0x7FFF)<<16 | rs1&0xFFFF
}

// PMerge implements the p_merge semantics: keep the home (high) half of
// rs1 and take the link (low) half from rs2.
func PMerge(rs1, rs2 uint32) uint32 {
	return rs1&0x7FFF0000 | rs2&0xFFFF | HartIDValid
}
