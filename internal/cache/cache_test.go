package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// keyOf builds a well-formed content address from any seed.
func keyOf(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

// payload builds a valid JSON payload of roughly n bytes.
func payload(seed string, n int) []byte {
	pad := n - len(seed) - len(`{"seed":"","pad":""}`)
	if pad < 0 {
		pad = 0
	}
	return []byte(fmt.Sprintf(`{"seed":%q,"pad":%q}`, seed, strings.Repeat("x", pad)))
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf("a")
	want := []byte(`{"cycles":42}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != int64(len(want)) {
		t.Errorf("stats = %+v, want 1 entry of %d bytes", st, len(want))
	}
}

func TestBadKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "xyz", keyOf("a")[:63], keyOf("a") + "0", "../" + keyOf("a")[3:]} {
		if err := s.Put(key, []byte("{}")); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit on a malformed key", key)
		}
	}
}

// TestCorruptEntryIsMiss: a payload that rots on disk (truncated,
// overwritten, or deleted) reads as a miss, and the bad entry is
// dropped so the next Put repairs it.
func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf("corrupt")
	if err := s.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), []byte(`{"ok":tr`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Errorf("corrupt entry still indexed: %+v", st)
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Errorf("corrupt file not removed: %v", err)
	}
	// A vanished file is the same story.
	if err := s.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	os.Remove(s.path(key))
	if _, ok := s.Get(key); ok {
		t.Fatal("vanished entry served as a hit")
	}
}

// TestLRUEviction: Put beyond the byte bound evicts least recently
// used first, and Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	// Three ~100-byte payloads against a 250-byte bound.
	s, err := Open(t.TempDir(), 250)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := keyOf("a"), keyOf("b"), keyOf("c")
	for _, k := range []string{a, b} {
		if err := s.Put(k, payload(k, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is now the LRU entry.
	if _, ok := s.Get(a); !ok {
		t.Fatal("a missing before eviction")
	}
	if err := s.Put(c, payload(c, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Error("LRU entry b survived eviction")
	}
	for _, k := range []string{a, c} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("entry %s... evicted out of LRU order", k[:8])
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes > 250 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries, <= 250 bytes", st)
	}
}

// TestOversizedEntrySurvivesAlone: a single payload larger than the
// bound is kept (evicting it would make the cache useless), but it is
// the only survivor.
func TestOversizedEntrySurvivesAlone(t *testing.T) {
	s, err := Open(t.TempDir(), 50)
	if err != nil {
		t.Fatal(err)
	}
	a, b := keyOf("a"), keyOf("b")
	if err := s.Put(a, payload(a, 200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(a); !ok {
		t.Fatal("oversized sole entry evicted")
	}
	if err := s.Put(b, payload(b, 200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(a); ok {
		t.Error("older oversized entry survived a newer Put")
	}
	if _, ok := s.Get(b); !ok {
		t.Error("newest entry evicted")
	}
}

// TestReopenFindsEntries: the index is rebuilt from the directory, so
// a cache outlives its process.
func TestReopenFindsEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf("persist")
	want := []byte(`{"cycles":7}`)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	// Foreign files in the layout are ignored, not indexed or deleted.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key[:2], "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("reopened Get = %q, %v; want %q, true", got, ok, want)
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Errorf("reopened stats = %+v, want exactly 1 entry", st)
	}
}

// TestConcurrentPutGet: racing writers on the same key write identical
// bytes (last-write-wins is correct by construction) while readers
// never observe a torn payload. Run under -race in tier-1.
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	key := keyOf("contended")
	want := []byte(`{"cycles":1151,"digest":123456789}`)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := s.Put(key, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); ok && string(got) != string(want) {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, ok := s.Get(key); !ok || string(got) != string(want) {
		t.Fatalf("final Get = %q, %v", got, ok)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != int64(len(want)) {
		t.Errorf("stats = %+v, want a single entry of %d bytes", st, len(want))
	}
}

// TestConcurrentEvictionVsPut pins the eviction/Put race: with a bound
// tight enough that every Put evicts, a concurrent Put of an evicted
// key must never end up as a phantom entry — indexed but with its
// fresh file unlinked by the eviction that chose it a moment earlier.
// Readers racing the churn must see a full payload or a clean miss,
// and afterward the index must agree with the directory byte for byte.
// Runs under -race in tier-1.
func TestConcurrentEvictionVsPut(t *testing.T) {
	const keys = 8
	const size = 1024
	// Room for ~2.5 payloads: every Put beyond the second evicts.
	s, err := Open(t.TempDir(), int64(size*5/2))
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, keys)
	addrs := make([]string, keys)
	for i := range payloads {
		addrs[i] = keyOf(fmt.Sprintf("churn-%d", i))
		payloads[i] = payload(fmt.Sprintf("churn-%d", i), size)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				i := (w + j) % keys
				if err := s.Put(addrs[i], payloads[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				i := (r + j) % keys
				if got, ok := s.Get(addrs[i]); ok && string(got) != string(payloads[i]) {
					t.Errorf("torn or stale read for key %d: %d bytes", i, len(got))
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// The index and the directory must agree exactly: every indexed
	// entry has its file, sizes match, and the byte total adds up.
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for key, e := range s.entries {
		info, err := os.Stat(s.path(key))
		if err != nil {
			t.Errorf("phantom entry %s: indexed but %v", key[:8], err)
			continue
		}
		if info.Size() != e.size {
			t.Errorf("entry %s: indexed size %d, file size %d", key[:8], e.size, info.Size())
		}
		total += e.size
	}
	if total != s.bytes {
		t.Errorf("accounted bytes %d, sum of entries %d", s.bytes, total)
	}
	if s.bytes > s.max {
		t.Errorf("bytes %d exceed the bound %d after churn", s.bytes, s.max)
	}
}
