// Package cache is a content-addressed, on-disk result store: the
// persistence layer behind lbp-serve's result cache. Every simulation
// in this repository is deterministic and digest-verified, so a job's
// outcome is a pure function of its canonical content address
// (sim.CacheKey) — which makes the stored payload immutable: a key
// either maps to the one correct payload or to nothing. That property
// shapes the whole design:
//
//   - Writes are atomic (temp file + rename into place) and
//     last-write-wins. Concurrent writers racing on the same key are
//     by construction writing identical bytes, so no locking across
//     processes is needed and a reader never observes a torn file.
//   - Reads are corruption-tolerant: a missing, unreadable or
//     non-JSON file is a miss, never an error. The entry is dropped
//     and the caller re-simulates, which rewrites it.
//   - The store is bounded: an in-memory index tracks every entry's
//     size and recency, and Put evicts least-recently-used entries
//     until the configured byte bound holds again.
//
// Layout: <dir>/<first two hex digits>/<64-hex-digit key>.json — the
// classic CAS fan-out so no single directory grows unboundedly. Open
// rebuilds the index by scanning that layout, so the cache survives
// process restarts with recency approximated by file modification
// time.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultMaxBytes bounds a store whose caller does not: 256 MiB holds
// on the order of a hundred thousand typical result payloads.
const DefaultMaxBytes = 256 << 20

// Stats is a snapshot of the store's size and eviction traffic.
// Hit/miss accounting belongs to the caller (the serving layer counts
// lookups; the store only knows about bytes).
type Stats struct {
	Entries   int   // payloads currently indexed
	Bytes     int64 // total payload bytes on disk
	Evictions uint64
}

// entry is the index record of one stored payload.
type entry struct {
	size int64
	seq  uint64 // last-use sequence; smallest = least recently used
}

// Store is one content-addressed directory. It is safe for concurrent
// use by any number of goroutines.
type Store struct {
	dir string
	max int64

	mu        sync.Mutex
	entries   map[string]entry
	seq       uint64
	bytes     int64
	evictions uint64
}

// Open creates (or reopens) the store rooted at dir, bounded to
// maxBytes of payload (<= 0 selects DefaultMaxBytes). Existing entries
// are indexed with recency taken from file modification times; entries
// beyond the bound are evicted oldest-first immediately.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s := &Store{dir: dir, max: maxBytes, entries: make(map[string]entry)}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.remove(s.evictLocked())
	s.mu.Unlock()
	return s, nil
}

// validKey reports whether key is a well-formed content address
// (64 lowercase hex digits, the SHA-256 of the canonical job).
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path is the on-disk location of a key's payload.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// scan rebuilds the index from the directory layout.
func (s *Store) scan() error {
	type found struct {
		key  string
		size int64
		mod  time.Time
	}
	var all []found
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			continue // a vanished shard is an empty shard
		}
		for _, f := range files {
			key, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok || !validKey(key) || key[:2] != shard.Name() {
				continue // foreign file; leave it alone
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			all = append(all, found{key, info.Size(), info.ModTime()})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mod.Before(all[j].mod) })
	for _, f := range all {
		s.seq++
		s.entries[f.key] = entry{size: f.size, seq: s.seq}
		s.bytes += f.size
	}
	return nil
}

// Get returns the payload stored under key. Any failure to produce a
// well-formed payload — no entry, unreadable file, payload that is not
// valid JSON — is reported as a miss and the bad entry is dropped, so
// on-disk corruption costs one re-simulation, never an error.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.seq++
	e.seq = s.seq
	s.entries[key] = e
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(key))
	if err != nil || !json.Valid(data) {
		s.Remove(key)
		return nil, false
	}
	return data, true
}

// Put stores payload under key, atomically (write-temp-then-rename):
// a concurrent Get sees either the old complete payload or the new
// one, never a partial write. Racing Puts on the same key carry
// identical bytes by construction, so last-write-wins is correct.
// Least-recently-used entries are evicted until the byte bound holds.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("cache: malformed key %q", key)
	}
	shard := filepath.Join(s.dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	// The rename and every eviction unlink happen under the index lock:
	// if they did not, an eviction chosen before a concurrent Put could
	// unlink the fresh payload the Put just renamed into place, leaving
	// an indexed entry with no file behind it (a phantom entry whose
	// bytes stay counted until a Get heals it). Both are metadata-only
	// syscalls; the payload write itself stayed outside the lock.
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.size
	}
	s.seq++
	s.entries[key] = entry{size: int64(len(payload)), seq: s.seq}
	s.bytes += int64(len(payload))
	s.remove(s.evictLocked())
	return nil
}

// evictLocked drops least-recently-used index entries until the byte
// bound holds (the newest entry always survives, even oversized) and
// returns the keys whose files the caller must remove before releasing
// the lock — unlinking after unlock races a concurrent Put re-adding
// the same key. Callers hold s.mu.
func (s *Store) evictLocked() []string {
	var removals []string
	for s.bytes > s.max && len(s.entries) > 1 {
		oldestKey, oldestSeq := "", uint64(0)
		for key, e := range s.entries {
			if oldestKey == "" || e.seq < oldestSeq {
				oldestKey, oldestSeq = key, e.seq
			}
		}
		s.bytes -= s.entries[oldestKey].size
		delete(s.entries, oldestKey)
		s.evictions++
		removals = append(removals, oldestKey)
	}
	return removals
}

// remove deletes evicted payload files. Callers hold s.mu so the
// unlinks cannot cross a concurrent Put's rename of the same key.
func (s *Store) remove(keys []string) {
	for _, key := range keys {
		os.Remove(s.path(key))
	}
}

// Remove drops one entry (index and file). Dropping an absent key is a
// no-op, so callers can disagree about what is present.
func (s *Store) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		delete(s.entries, key)
		s.bytes -= e.size
	}
	// Unlinked under the lock for the same reason evictions are: after
	// unlock the file may already be a fresh concurrent Put's payload.
	if validKey(key) {
		os.Remove(s.path(key))
	}
}

// Stats returns a snapshot of the store's size and eviction counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Entries: len(s.entries), Bytes: s.bytes, Evictions: s.evictions}
}
