// Package dispatch shards simulation jobs across worker processes: the
// distributed half of lbp-serve. A Coordinator owns a set of backend
// addresses and routes each Job to one over the internal/rpc protocol;
// a Worker executes jobs on its local warm sim.Pool and answers with
// the deterministic result.
//
// Determinism is what makes the whole design safe: every job is a pure
// function of its canonical content (sim.CacheKey hashes the program
// image and every result-affecting parameter), so any worker produces
// bit-identical results, a retried job cannot diverge from its first
// attempt, and a job migrated mid-run via a checkpoint finishes with
// exactly the digest of an uninterrupted run.
//
// Routing is digest-affine: the coordinator consistent-hashes the
// job's content address onto the backend ring, so repeats of the same
// job land on the same worker, whose warm sim.Pool machines and
// decode-cache images stay hot for it. Affinity is a performance
// preference, never a correctness requirement — work stealing moves
// queued jobs to idle backends when an affine queue runs deep, and
// failover re-dispatches to the ring successor when a backend dies.
package dispatch

import (
	"repro/internal/mem"
	"repro/internal/perf"
)

// Protocol method names (coordinator → worker over internal/rpc).
const (
	// MethodRun executes one Job and returns a Result. While it is
	// pending the worker may push MethodCheckpoint notifications.
	MethodRun = "lbp.run"
	// MethodPing returns WorkerStats (liveness + load).
	MethodPing = "lbp.ping"
	// MethodCancel is a client-to-worker notification: stop the named
	// job at its next slice boundary (the pending MethodRun answers
	// with StatusCanceled).
	MethodCancel = "lbp.cancel"
	// MethodCheckpoint is a worker-to-coordinator notification carrying
	// a running job's latest streamed checkpoint.
	MethodCheckpoint = "lbp.checkpoint"
)

// Job is the wire form of one simulation: the program travels as a
// serialized image (the coordinator compiles source exactly once, at
// the HTTP edge), plus the resolved result-affecting parameters.
type Job struct {
	ID string `json:"id"`

	// Key is the job's canonical content address (sim.CacheKey): the
	// affinity routing key, and the proof that two jobs with equal keys
	// are the same pure function.
	Key string `json:"key"`

	// Image is the serialized program (asm.Program.WriteImage bytes);
	// base64 on the wire.
	Image []byte `json:"image"`

	Cores     int    `json:"cores,omitempty"`
	BankBytes uint32 `json:"bankBytes,omitempty"`
	MaxCycles uint64 `json:"maxCycles,omitempty"`
	Digest    bool   `json:"digest,omitempty"`
	Ring      int    `json:"ring,omitempty"`
	Profile   bool   `json:"profile,omitempty"`

	// DeadlineMs bounds one attempt's host wall-clock run time (0 = no
	// worker-side deadline). Each re-dispatch attempt gets the full
	// budget: the deadline guards against a wedged run, not total
	// latency, which the client's own context bounds end to end.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`

	// Checkpoint, when non-empty, resumes the job from serialized
	// machine state instead of loading Image fresh — how a job migrates
	// to another worker after its first backend died mid-run.
	Checkpoint []byte `json:"checkpoint,omitempty"`

	// CheckpointEvery streams a checkpoint notification to the
	// coordinator every n simulated cycles (0 = never). Serialization
	// happens between Advance slices at cycle boundaries, so streaming
	// never perturbs the simulated results.
	CheckpointEvery uint64 `json:"checkpointEvery,omitempty"`
}

// Job outcome statuses (Result.Status). They mirror the serving
// layer's values so the coordinator can map them 1:1 onto HTTP codes.
const (
	StatusOK       = "ok"       // run completed (Halt says how)
	StatusError    = "error"    // machine fault or cycle budget exceeded
	StatusDeadline = "deadline" // the attempt's wall-clock deadline elapsed
	StatusCanceled = "canceled" // coordinator canceled the job mid-run
)

// Result is the outcome of one Job. Halt, Cycles, Retired, IPC,
// Digest, Events, Tail, Mem and Perf are fully deterministic — equal
// for any worker, any attempt, resumed or not. Worker, PoolWarm and
// Resumed are host-side diagnostics.
type Result struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	Halt    string  `json:"halt,omitempty"`
	Cycles  uint64  `json:"cycles,omitempty"`
	Retired uint64  `json:"retired,omitempty"`
	IPC     float64 `json:"ipc,omitempty"`

	Digest uint64   `json:"digest,omitempty"`
	Events uint64   `json:"events,omitempty"`
	Tail   []string `json:"tail,omitempty"`

	Mem  *mem.Stats     `json:"mem,omitempty"`
	Perf *perf.Snapshot `json:"perf,omitempty"`

	Worker   string `json:"worker,omitempty"`  // address that produced the result
	PoolWarm bool   `json:"poolWarm"`          // served by a warm pooled machine
	Resumed  bool   `json:"resumed,omitempty"` // ran from a migrated checkpoint
}

// CheckpointNote is the payload of a MethodCheckpoint notification.
type CheckpointNote struct {
	ID    string `json:"id"`
	Cycle uint64 `json:"cycle"`
	State []byte `json:"state"`
}

// CancelNote is the payload of a MethodCancel notification.
type CancelNote struct {
	ID string `json:"id"`
}

// WorkerStats is MethodPing's result: enough load signal for health
// checks and dashboards.
type WorkerStats struct {
	Inflight    int64  `json:"inflight"`    // jobs currently running
	Completed   uint64 `json:"completed"`   // jobs finished since start (any status)
	MachinesOut int64  `json:"machinesOut"` // pool machines checked out right now
}
