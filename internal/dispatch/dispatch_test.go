package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/sim"
)

// quickSource exits after a few hundred cycles.
const quickSource = `main:
	li t1, 100
loop:
	addi t1, t1, -1
	bne t1, zero, loop
	li ra, 0
	li t0, -1
	p_ret
`

// spinSource busy-loops for a few million simulated cycles — long
// enough to kill a worker mid-run — then exits cleanly.
const spinSource = `main:
	li t1, 2000000
loop:
	addi t1, t1, -1
	bne t1, zero, loop
	li ra, 0
	li t0, -1
	p_ret
`

// imageOf assembles source and returns its serialized image.
func imageOf(t *testing.T, source string) []byte {
	t.Helper()
	prog, err := asm.Assemble(source, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prog.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// directRun executes a job's spec locally through sim.Session: the
// deterministic outcome every dispatch path must reproduce bit for bit.
func directRun(t *testing.T, job *Job) *Result {
	t.Helper()
	prog, err := asm.ReadImage(bytes.NewReader(job.Image))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sim.New(sim.Spec{
		Program:         prog,
		Cores:           job.Cores,
		SharedBankBytes: job.BankBytes,
		MaxCycles:       job.MaxCycles,
		Trace:           sim.TraceSpec{Digest: job.Digest, Ring: job.Ring},
		Profile:         job.Profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := &Result{Status: StatusOK}
	fillResult(out, sess, res, job.Ring)
	return out
}

// sameDeterministic fails the test unless got reproduces want's
// deterministic fields exactly.
func sameDeterministic(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Halt != want.Halt || got.Cycles != want.Cycles || got.Retired != want.Retired ||
		got.Digest != want.Digest || got.Events != want.Events || got.IPC != want.IPC {
		t.Errorf("%s diverged: halt=%q cycles=%d retired=%d digest=%#x events=%d,"+
			" want halt=%q cycles=%d retired=%d digest=%#x events=%d",
			label, got.Halt, got.Cycles, got.Retired, got.Digest, got.Events,
			want.Halt, want.Cycles, want.Retired, want.Digest, want.Events)
	}
	if want.Mem != nil && (got.Mem == nil || *got.Mem != *want.Mem) {
		t.Errorf("%s: memory stats diverged: %+v, want %+v", label, got.Mem, want.Mem)
	}
	if want.Perf != nil && (got.Perf == nil || got.Perf.HartCycles != want.Perf.HartCycles) {
		t.Errorf("%s: perf snapshot diverged", label)
	}
}

// startWorker boots a worker on an ephemeral port; cleanup closes it.
func startWorker(t *testing.T, cfg WorkerConfig) (*Worker, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(cfg)
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })
	return w, ln.Addr().String()
}

// waitFor polls cond for up to 10 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSingleBackendRoundTrip: one worker, one job, deterministic
// fields identical to a direct run; the machine flows back to the pool.
func TestSingleBackendRoundTrip(t *testing.T) {
	w, addr := startWorker(t, WorkerConfig{Slice: 1024})
	c, err := New(Config{Backends: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := &Job{ID: "job-1", Key: "k1", Image: imageOf(t, quickSource),
		Cores: 1, MaxCycles: 1_000_000, Digest: true, Ring: 4, Profile: true}
	want := directRun(t, job)
	res, err := c.Do(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK {
		t.Fatalf("status %q (%s), want ok", res.Status, res.Error)
	}
	sameDeterministic(t, "dispatched job", res, want)
	if res.Worker != addr {
		t.Errorf("result worker = %q, want %q", res.Worker, addr)
	}
	if len(res.Tail) == 0 {
		t.Error("ring requested but tail empty")
	}
	m := w.Metrics()
	if m.CheckedOut != 1 || m.PoolReturned != 1 || m.MachinesOut != 0 {
		t.Errorf("machine accounting off: %+v", m)
	}
	cm := c.Metrics()
	if cm.Completed != 1 || cm.Failed != 0 || cm.BackendsUp != 1 {
		t.Errorf("coordinator metrics off: %+v", cm)
	}
}

// TestDigestAffinityRouting: jobs with the same key land on the same
// backend (warming its pool), jobs overall use both backends.
func TestDigestAffinityRouting(t *testing.T) {
	w1, addr1 := startWorker(t, WorkerConfig{Slice: 1024})
	w2, addr2 := startWorker(t, WorkerConfig{Slice: 1024})
	c, err := New(Config{Backends: []string{addr1, addr2}, StealDepth: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	image := imageOf(t, quickSource)
	// Repeats of one key always hit one backend; the second run there
	// must be served by a warm pooled machine.
	workers := make(map[string]bool)
	for i := 0; i < 3; i++ {
		res, err := c.Do(context.Background(), &Job{
			ID: fmt.Sprintf("rep-%d", i), Key: "same-key", Image: image,
			Cores: 1, MaxCycles: 1_000_000, Digest: true})
		if err != nil {
			t.Fatal(err)
		}
		workers[res.Worker] = true
		if i > 0 && !res.PoolWarm {
			t.Errorf("repeat %d not served warm: affinity broken", i)
		}
	}
	if len(workers) != 1 {
		t.Errorf("one key used %d backends %v, want 1", len(workers), workers)
	}
	// Distinct keys spread across the fleet.
	spread := make(map[string]bool)
	for i := 0; i < 32; i++ {
		res, err := c.Do(context.Background(), &Job{
			ID: fmt.Sprintf("spread-%d", i), Key: fmt.Sprintf("key-%d", i),
			Image: image, Cores: 1, MaxCycles: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		spread[res.Worker] = true
	}
	if len(spread) != 2 {
		t.Errorf("32 distinct keys used backends %v, want both", spread)
	}
	if out1, out2 := w1.Metrics().MachinesOut, w2.Metrics().MachinesOut; out1 != 0 || out2 != 0 {
		t.Errorf("machines still out after all jobs done: %d, %d", out1, out2)
	}
}

// TestWorkStealing: with every job affine to one backend and that
// backend limited to one slot, the other backend steals from the deep
// queue — and stolen runs stay bit-identical.
func TestWorkStealing(t *testing.T) {
	_, addr1 := startWorker(t, WorkerConfig{Slice: 1024})
	_, addr2 := startWorker(t, WorkerConfig{Slice: 1024})
	c, err := New(Config{Backends: []string{addr1, addr2}, PerBackend: 1, StealDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := &Job{Image: imageOf(t, quickSource), Cores: 1, MaxCycles: 1_000_000, Digest: true}
	want := directRun(t, job)

	const jobs = 16
	results := make([]*Result, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := *job
			j.ID = fmt.Sprintf("steal-%d", i)
			j.Key = "hot-key" // every job affine to the same backend
			results[i], errs[i] = c.Do(context.Background(), &j)
		}(i)
	}
	wg.Wait()
	workers := make(map[string]int)
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		sameDeterministic(t, fmt.Sprintf("job %d", i), results[i], want)
		workers[results[i].Worker]++
	}
	if c.Metrics().Steals == 0 || len(workers) != 2 {
		t.Errorf("no stealing happened: steals=%d spread=%v", c.Metrics().Steals, workers)
	}
}

// TestWorkerLossMigratesFromCheckpoint is the tentpole acceptance
// test: a worker dies mid-job, the coordinator re-dispatches the job
// to the survivor resuming from the last streamed checkpoint, and the
// final result is bit-identical to an uninterrupted run.
func TestWorkerLossMigratesFromCheckpoint(t *testing.T) {
	w1, addr1 := startWorker(t, WorkerConfig{Slice: 4096})
	w2, addr2 := startWorker(t, WorkerConfig{Slice: 4096})
	backends := []string{addr1, addr2}
	c, err := New(Config{Backends: backends, CheckpointEvery: 64 << 10, StealDepth: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := &Job{Image: imageOf(t, spinSource), Cores: 1, MaxCycles: 50_000_000, Digest: true}
	want := directRun(t, job)

	// Pick a key whose affine backend is the worker we will kill.
	r := buildRing(backends)
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("victim-key-%d", i)
		if r.walk(key)[0] == 0 {
			break
		}
	}
	job.ID, job.Key = "migrating-job", key

	done := make(chan struct{})
	var res *Result
	var doErr error
	go func() {
		defer close(done)
		res, doErr = c.Do(context.Background(), job)
	}()
	// Kill the affine worker only after a checkpoint has streamed, so
	// the retry is a true mid-run migration, not a cold restart.
	waitFor(t, "first streamed checkpoint", func() bool { return c.Metrics().Checkpoints > 0 })
	w1.Close()
	<-done

	if doErr != nil {
		t.Fatalf("migrated job failed: %v", doErr)
	}
	if res.Status != StatusOK {
		t.Fatalf("migrated job status %q (%s), want ok", res.Status, res.Error)
	}
	sameDeterministic(t, "migrated job", res, want)
	if res.Worker != addr2 {
		t.Errorf("survivor %q did not run the job (worker=%q)", addr2, res.Worker)
	}
	if !res.Resumed {
		t.Error("result not marked resumed: the retry restarted from cycle 0 instead of migrating")
	}
	m := c.Metrics()
	if m.Retries == 0 || m.Migrations == 0 {
		t.Errorf("metrics = %+v, want retries > 0 and migrations > 0", m)
	}
	// The killed worker released its machine through the cancel path;
	// the survivor's checkpoint-restored machine was discarded (it
	// cannot be pooled). Nothing leaks on either side.
	waitFor(t, "killed worker released its machine", func() bool {
		return w1.Metrics().MachinesOut == 0
	})
	m1, m2 := w1.Metrics(), w2.Metrics()
	if m1.CheckedOut != m1.PoolReturned+m1.PoolDiscarded {
		t.Errorf("worker 1 leaked: %+v", m1)
	}
	if m2.MachinesOut != 0 || m2.CheckedOut != m2.PoolReturned+m2.PoolDiscarded {
		t.Errorf("worker 2 leaked: %+v", m2)
	}
	if m2.Resumed != 1 || m2.PoolDiscarded != 1 {
		t.Errorf("survivor metrics = %+v, want exactly one resumed run discarding its machine", m2)
	}
}

// TestMachineLeakAccounting drives every failure path the serving
// fleet can hit — clean finish, budget fault, attempt deadline, client
// cancel mid-run, coordinator connection death mid-run — and verifies
// the worker's machine accounting balances to zero afterward.
func TestMachineLeakAccounting(t *testing.T) {
	w, addr := startWorker(t, WorkerConfig{Slice: 1024})
	c, err := New(Config{Backends: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}

	quick := imageOf(t, quickSource)
	spin := imageOf(t, spinSource)

	// Clean finish.
	if res, err := c.Do(context.Background(), &Job{ID: "ok", Image: quick, Cores: 1,
		MaxCycles: 1_000_000, Digest: true}); err != nil || res.Status != StatusOK {
		t.Fatalf("ok job: %v / %+v", err, res)
	}
	// Budget exceeded: the machine stops, the worker is healthy.
	if res, err := c.Do(context.Background(), &Job{ID: "budget", Image: spin, Cores: 1,
		MaxCycles: 10_000}); err != nil || res.Status != StatusError {
		t.Fatalf("budget job: %v / %+v", err, res)
	}
	// Attempt deadline.
	if res, err := c.Do(context.Background(), &Job{ID: "deadline", Image: spin, Cores: 1,
		MaxCycles: 500_000_000, DeadlineMs: 30}); err != nil || res.Status != StatusDeadline {
		t.Fatalf("deadline job: %v / %+v", err, res)
	}
	// Client cancel mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	cancelDone := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, &Job{ID: "cancel", Image: spin, Cores: 1, MaxCycles: 500_000_000})
		cancelDone <- err
	}()
	waitFor(t, "cancel job running", func() bool { return w.Metrics().MachinesOut == 1 })
	cancel()
	if err := <-cancelDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job returned %v, want context.Canceled", err)
	}
	waitFor(t, "canceled job released", func() bool { return w.Metrics().MachinesOut == 0 })

	// Coordinator dies mid-run: the worker's connection context
	// cancels and the running machine must still flow back.
	midrunDone := make(chan struct{})
	go func() {
		defer close(midrunDone)
		c.Do(context.Background(), &Job{ID: "conn-death", Image: spin, Cores: 1, MaxCycles: 500_000_000})
	}()
	waitFor(t, "conn-death job running", func() bool { return w.Metrics().MachinesOut == 1 })
	c.Close()
	<-midrunDone
	waitFor(t, "conn-death job released", func() bool { return w.Metrics().MachinesOut == 0 })

	m := w.Metrics()
	if m.CheckedOut != m.PoolReturned+m.PoolDiscarded {
		t.Errorf("accounting does not balance: %+v", m)
	}
	if m.CheckedOut != 5 {
		t.Errorf("checked out %d machines, want 5 (%+v)", m.CheckedOut, m)
	}
	if m.Completed != 1 || m.Errored != 1 || m.Deadline != 1 || m.Canceled != 2 {
		t.Errorf("outcome counters off: %+v", m)
	}
	// Every returned machine is actually in the pool, idle.
	if idle := w.pool.Idle(); idle == 0 {
		t.Error("no idle machines pooled after returns")
	}
}

// TestQueueFullRefusesAdmission: a backend whose queue is at bound
// answers ErrQueueFull instead of queueing unboundedly.
func TestQueueFullRefusesAdmission(t *testing.T) {
	// No worker listens: the single dispatcher sits in dial-retry
	// backoff holding one job while the queue holds the next.
	c, err := New(Config{
		Backends: []string{"127.0.0.1:1"}, PerBackend: 1, QueueDepth: 1,
		Attempts: 2, RetryBackoff: 30 * time.Second, DialTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	image := imageOf(t, quickSource)
	launch := func(id string) {
		go c.Do(context.Background(), &Job{ID: id, Image: image, Cores: 1, MaxCycles: 1000})
	}
	launch("held") // picked up by the dispatcher, stuck in backoff
	waitFor(t, "first job picked up", func() bool { return c.Metrics().Retries == 1 })
	launch("queued") // fills the one queue slot
	waitFor(t, "queue depth 1", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.backs[0].queue) == 1
	})
	_, err = c.Do(context.Background(), &Job{ID: "overflow", Image: image, Cores: 1, MaxCycles: 1000})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow returned %v, want ErrQueueFull", err)
	}
}

// TestAllBackendsDeadFailsAfterAttempts: with nothing listening the
// job exhausts its attempts and reports the last transport error.
func TestAllBackendsDeadFailsAfterAttempts(t *testing.T) {
	c, err := New(Config{
		Backends: []string{"127.0.0.1:1", "127.0.0.1:2"},
		Attempts: 2, RetryBackoff: time.Millisecond, DialTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Do(context.Background(), &Job{ID: "doomed", Image: imageOf(t, quickSource),
		Cores: 1, MaxCycles: 1000})
	if err == nil || errors.Is(err, ErrQueueFull) {
		t.Fatalf("dead fleet returned %v, want a dispatch failure", err)
	}
	if m := c.Metrics(); m.Failed != 1 || m.Completed != 0 {
		t.Errorf("metrics = %+v, want 1 failed", m)
	}
}

// TestConfigValidation: empty and duplicate backend lists refuse.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no backends accepted")
	}
	if _, err := New(Config{Backends: []string{"a:1", "a:1"}}); err == nil {
		t.Error("duplicate backends accepted")
	}
	if _, err := New(Config{Backends: []string{""}}); err == nil {
		t.Error("empty backend address accepted")
	}
}
