package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rpc"
)

// Config parameterizes a Coordinator. The zero value of every field
// but Backends selects a sensible default.
type Config struct {
	// Backends are the worker addresses (host:port). Required.
	Backends []string

	// PerBackend is the number of jobs dispatched concurrently to each
	// backend (0 = 4). Multiplexed over one connection per backend.
	PerBackend int

	// QueueDepth bounds each backend's pending (admitted, not yet
	// dispatched) queue; overflow returns ErrQueueFull (0 = 64).
	QueueDepth int

	// StealDepth is the minimum depth an affine queue must reach
	// before an idle backend steals from it (0 = 2). Stealing trades
	// warm-pool affinity for latency; it never affects results.
	StealDepth int

	// Attempts bounds how many backends a job may be dispatched to
	// before it fails (0 = one per backend, minimum 2). Only transport
	// deaths consume attempts; job-level outcomes are terminal.
	Attempts int

	// RetryBackoff is the pause before re-dispatching a job whose
	// backend died, doubling per attempt (0 = 50ms).
	RetryBackoff time.Duration

	// CheckpointEvery asks workers to stream a migration checkpoint
	// every n simulated cycles (0 = 4M; negative = never). A job killed
	// mid-run resumes from its last streamed checkpoint on another
	// backend instead of restarting from cycle zero.
	CheckpointEvery int64

	// DialTimeout bounds one connection attempt (0 = 2s).
	DialTimeout time.Duration
}

func (c *Config) normalize() {
	if c.PerBackend <= 0 {
		c.PerBackend = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.StealDepth <= 0 {
		c.StealDepth = 2
	}
	if c.Attempts <= 0 {
		c.Attempts = len(c.Backends)
		if c.Attempts < 2 {
			c.Attempts = 2
		}
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
}

// Admission and lifecycle errors.
var (
	ErrQueueFull = errors.New("dispatch: backend queue is full")
	ErrClosed    = errors.New("dispatch: coordinator closed")
)

// Metrics is a snapshot of the coordinator's lifetime counters.
type Metrics struct {
	Dispatched  uint64 // jobs admitted
	Completed   uint64 // jobs answered with a Result
	Failed      uint64 // jobs that exhausted their attempts (or died with the coordinator)
	Retries     uint64 // re-dispatches after a backend transport death
	Migrations  uint64 // retries that resumed from a streamed checkpoint
	Steals      uint64 // jobs run by a non-affine backend to balance load
	Checkpoints uint64 // streamed checkpoints received
	BackendsUp  int    // backends with a live connection right now
}

// outcome is what a pending job resolves to.
type outcome struct {
	res *Result
	err error
}

// pending is one admitted job waiting for, or undergoing, dispatch.
type pending struct {
	job   *Job
	ctx   context.Context
	done  chan outcome // buffered(1): delivery never blocks a dispatcher
	order []int        // ring walk: order[0] is affine, the rest failover

	abandoned atomic.Bool // client gave up; skip instead of dispatching

	mu       sync.Mutex
	attempts int    // dispatch attempts consumed
	ckpt     []byte // latest streamed checkpoint
	ckptAt   uint64 // its cycle
}

// deliver resolves the job exactly once.
func (p *pending) deliver(out outcome) {
	select {
	case p.done <- out:
	default:
	}
}

// setCheckpoint records a newer streamed checkpoint.
func (p *pending) setCheckpoint(note *CheckpointNote) {
	p.mu.Lock()
	if note.Cycle > p.ckptAt || p.ckpt == nil {
		p.ckpt = note.State
		p.ckptAt = note.Cycle
	}
	p.mu.Unlock()
}

// backend is the coordinator's view of one worker.
type backend struct {
	idx  int
	addr string

	queue []*pending // guarded by Coordinator.mu

	mu   sync.Mutex
	conn *rpc.Conn // nil until dialed; dropped on transport death
}

// Coordinator shards jobs across worker backends with digest-affine
// routing, work stealing, retry-with-backoff and checkpoint migration.
// It is safe for concurrent use; create with New, stop with Close.
type Coordinator struct {
	cfg   Config
	ring  ring
	backs []*backend

	mu      sync.Mutex
	cond    *sync.Cond
	pending map[string]*pending // running or queued, by job ID
	closed  bool

	wg sync.WaitGroup

	dispatched  atomic.Uint64
	completed   atomic.Uint64
	failed      atomic.Uint64
	retries     atomic.Uint64
	migrations  atomic.Uint64
	steals      atomic.Uint64
	checkpoints atomic.Uint64
}

// New builds a coordinator over the configured backends and starts its
// dispatchers. No connection is attempted until the first job.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("dispatch: at least one backend is required")
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for _, a := range cfg.Backends {
		if a == "" {
			return nil, errors.New("dispatch: empty backend address")
		}
		if seen[a] {
			return nil, fmt.Errorf("dispatch: duplicate backend %q", a)
		}
		seen[a] = true
	}
	cfg.normalize()
	c := &Coordinator{
		cfg:     cfg,
		ring:    buildRing(cfg.Backends),
		pending: make(map[string]*pending),
	}
	c.cond = sync.NewCond(&c.mu)
	for i, addr := range cfg.Backends {
		c.backs = append(c.backs, &backend{idx: i, addr: addr})
	}
	for _, b := range c.backs {
		for w := 0; w < cfg.PerBackend; w++ {
			c.wg.Add(1)
			go c.dispatcher(b)
		}
	}
	return c, nil
}

// Close stops the coordinator: queued jobs fail with ErrClosed,
// in-flight RPCs sever, dispatchers exit.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var queued []*pending
	for _, b := range c.backs {
		queued = append(queued, b.queue...)
		b.queue = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, p := range queued {
		p.deliver(outcome{err: ErrClosed})
	}
	for _, b := range c.backs {
		b.mu.Lock()
		if b.conn != nil {
			b.conn.Close()
			b.conn = nil
		}
		b.mu.Unlock()
	}
	c.wg.Wait()
	return nil
}

// Metrics returns a snapshot of the coordinator counters.
func (c *Coordinator) Metrics() Metrics {
	up := 0
	for _, b := range c.backs {
		b.mu.Lock()
		if b.conn != nil && b.conn.Err() == nil {
			up++
		}
		b.mu.Unlock()
	}
	return Metrics{
		Dispatched:  c.dispatched.Load(),
		Completed:   c.completed.Load(),
		Failed:      c.failed.Load(),
		Retries:     c.retries.Load(),
		Migrations:  c.migrations.Load(),
		Steals:      c.steals.Load(),
		Checkpoints: c.checkpoints.Load(),
		BackendsUp:  up,
	}
}

// Backends returns the configured backend addresses (for /metrics).
func (c *Coordinator) Backends() []string { return c.cfg.Backends }

// affinityKey is what routes the job: its canonical content address
// when it has one, its ID otherwise (uniform spread; an uncacheable
// job has no warm state worth chasing).
func affinityKey(job *Job) string {
	if job.Key != "" {
		return job.Key
	}
	return job.ID
}

// Do runs one job on the fleet and blocks until it resolves: a Result
// (whose Status may still be an error status — those are the job's own
// outcome, never retried), ErrQueueFull when the affine backend's
// queue is at bound, ctx's error when the client gives up, or a
// dispatch failure once every attempt is exhausted.
func (c *Coordinator) Do(ctx context.Context, job *Job) (*Result, error) {
	if job.CheckpointEvery == 0 && c.cfg.CheckpointEvery > 0 {
		job.CheckpointEvery = uint64(c.cfg.CheckpointEvery)
	}
	p := &pending{
		job:   job,
		ctx:   ctx,
		done:  make(chan outcome, 1),
		order: c.ring.walk(affinityKey(job)),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := c.pending[job.ID]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("dispatch: duplicate job ID %q", job.ID)
	}
	affine := c.backs[p.order[0]]
	if len(affine.queue) >= c.cfg.QueueDepth {
		c.mu.Unlock()
		return nil, ErrQueueFull
	}
	affine.queue = append(affine.queue, p)
	c.pending[job.ID] = p
	c.cond.Broadcast()
	c.mu.Unlock()
	c.dispatched.Add(1)

	defer func() {
		c.mu.Lock()
		delete(c.pending, job.ID)
		c.mu.Unlock()
	}()
	select {
	case out := <-p.done:
		if out.err != nil {
			c.failed.Add(1)
			return nil, out.err
		}
		c.completed.Add(1)
		return out.res, nil
	case <-ctx.Done():
		// The client is gone. A queued job is skipped when a dispatcher
		// reaches it; a running one is canceled by the dispatcher's own
		// ctx watch. Either way nobody is waiting for the outcome.
		p.abandoned.Store(true)
		c.failed.Add(1)
		return nil, ctx.Err()
	}
}

// next blocks until a job is available for backend b — its own queue
// first, then a steal from the deepest queue at or beyond StealDepth —
// or the coordinator closes (nil).
func (c *Coordinator) next(b *backend) *pending {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil
		}
		if len(b.queue) > 0 {
			p := b.queue[0]
			b.queue = b.queue[1:]
			return p
		}
		var victim *backend
		for _, o := range c.backs {
			if o != b && len(o.queue) >= c.cfg.StealDepth &&
				(victim == nil || len(o.queue) > len(victim.queue)) {
				victim = o
			}
		}
		if victim != nil {
			p := victim.queue[0]
			victim.queue = victim.queue[1:]
			c.steals.Add(1)
			return p
		}
		c.cond.Wait()
	}
}

// dispatcher is one backend-bound worker loop.
func (c *Coordinator) dispatcher(b *backend) {
	defer c.wg.Done()
	for {
		p := c.next(b)
		if p == nil {
			return
		}
		if p.abandoned.Load() || p.ctx.Err() != nil {
			continue
		}
		c.runOn(b, p)
	}
}

// connect returns b's live connection, dialing if needed. Checkpoint
// notifications from the worker route to their pending job.
func (c *Coordinator) connect(b *backend) (*rpc.Conn, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.conn != nil && b.conn.Err() == nil {
		return b.conn, nil
	}
	nc, err := net.DialTimeout("tcp", b.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	b.conn = rpc.NewConn(nc, c.handleNote)
	return b.conn, nil
}

// drop discards a dead connection (unless a new one already replaced it).
func (c *Coordinator) drop(b *backend, conn *rpc.Conn) {
	conn.Close()
	b.mu.Lock()
	if b.conn == conn {
		b.conn = nil
	}
	b.mu.Unlock()
}

// handleNote routes worker notifications. It runs on a connection read
// loop, so it only stores bytes.
func (c *Coordinator) handleNote(method string, params json.RawMessage) {
	if method != MethodCheckpoint {
		return
	}
	var note CheckpointNote
	if err := json.Unmarshal(params, &note); err != nil {
		return
	}
	c.mu.Lock()
	p := c.pending[note.ID]
	c.mu.Unlock()
	if p != nil {
		p.setCheckpoint(&note)
		c.checkpoints.Add(1)
	}
}

// runOn dispatches p to backend b and resolves or re-routes it.
func (c *Coordinator) runOn(b *backend, p *pending) {
	p.mu.Lock()
	p.attempts++
	attempt := p.attempts
	job := *p.job
	if p.ckpt != nil {
		// Migration: resume from the freshest streamed checkpoint
		// instead of restarting at cycle zero. Determinism makes the
		// spliced run bit-identical to an uninterrupted one.
		job.Checkpoint = p.ckpt
	}
	p.mu.Unlock()

	conn, err := c.connect(b)
	if err != nil {
		c.retryElsewhere(p, fmt.Errorf("dialing %s: %w", b.addr, err))
		return
	}
	var res Result
	err = conn.Call(p.ctx, MethodRun, &job, &res)
	switch {
	case err == nil:
		res.Worker = b.addr
		if job.Checkpoint != nil && attempt > 1 {
			c.migrations.Add(1)
		}
		p.deliver(outcome{res: &res})
	case p.ctx.Err() != nil:
		// The client gave up mid-run: tell the worker to stop (its
		// machine flows back to its pool) and resolve with the ctx
		// error; Do has already returned it.
		_ = conn.Notify(MethodCancel, &CancelNote{ID: job.ID})
		p.deliver(outcome{err: p.ctx.Err()})
	case isRemote(err):
		// The worker ran the job and refused it (bad image, restore
		// failure). Terminal: another backend would refuse identically.
		p.deliver(outcome{err: fmt.Errorf("backend %s: %w", b.addr, err)})
	default:
		// Transport death: the backend is gone mid-job. Re-dispatch.
		c.drop(b, conn)
		c.retryElsewhere(p, fmt.Errorf("backend %s: %w", b.addr, err))
	}
}

// isRemote reports whether err is the remote handler's refusal rather
// than a transport failure.
func isRemote(err error) bool {
	var re *rpc.Error
	return errors.As(err, &re)
}

// retryElsewhere re-queues p on its next failover backend after a
// backoff, or fails it once attempts are exhausted.
func (c *Coordinator) retryElsewhere(p *pending, cause error) {
	p.mu.Lock()
	attempt := p.attempts
	p.mu.Unlock()
	if attempt >= c.cfg.Attempts {
		p.deliver(outcome{err: fmt.Errorf("dispatch: job %s failed after %d attempts: %w",
			p.job.ID, attempt, cause)})
		return
	}
	c.retries.Add(1)
	// Exponential backoff, capped: a dead backend should not turn into
	// a tight redial loop, but a healthy failover must not idle long.
	pause := c.cfg.RetryBackoff << (attempt - 1)
	if max := 2 * time.Second; pause > max {
		pause = max
	}
	select {
	case <-time.After(pause):
	case <-p.ctx.Done():
		p.deliver(outcome{err: p.ctx.Err()})
		return
	}
	target := c.backs[p.order[attempt%len(p.order)]]
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		p.deliver(outcome{err: ErrClosed})
		return
	}
	target.queue = append(target.queue, p)
	c.cond.Broadcast()
	c.mu.Unlock()
}
