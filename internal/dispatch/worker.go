package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/lbp"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// WorkerConfig parameterizes a Worker; the zero value of every field
// selects a sensible default.
type WorkerConfig struct {
	// Slice is the Advance granularity between cancellation checks and
	// checkpoint streams, in simulated cycles (0 = 1M). Results never
	// depend on it.
	Slice uint64

	// PoolPerKey/PoolTotal bound the warm-machine pool
	// (0 = sim defaults).
	PoolPerKey int
	PoolTotal  int
}

func (c *WorkerConfig) normalize() {
	if c.Slice == 0 {
		c.Slice = 1 << 20
	}
}

// Sentinel errors classifying why a worker run stopped early.
var (
	errCanceled = errors.New("job canceled by the coordinator")
	errDeadline = errors.New("attempt deadline elapsed")
)

// WorkerMetrics is a snapshot of one worker's lifetime counters. The
// machine-accounting invariant every path must preserve:
//
//	checkedOut == poolReturned + poolDiscarded + machinesOut
//
// with machinesOut dropping to zero once no job is running — a warm
// machine is never leaked, whatever killed its job (cancel, deadline,
// fault, coordinator connection death mid-run).
type WorkerMetrics struct {
	Completed uint64 // StatusOK results
	Canceled  uint64
	Deadline  uint64
	Errored   uint64 // machine fault or budget exceeded
	Resumed   uint64 // jobs that started from a migrated checkpoint

	CheckedOut    uint64 // machines obtained (pool checkout or checkpoint restore)
	PoolReturned  uint64 // machines handed back to the warm pool
	PoolDiscarded uint64 // machines that cannot be pooled (restored from a checkpoint)
	MachinesOut   int64  // machines currently held by running jobs

	CheckpointsStreamed uint64
}

// Worker executes dispatched jobs on a local warm sim.Pool: the
// backend half of distributed lbp-serve. Start it with Serve on a TCP
// listener; the coordinator connects over internal/rpc.
type Worker struct {
	cfg  WorkerConfig
	pool sim.Pool
	srv  *rpc.Server

	mu      sync.Mutex
	running map[string]context.CancelFunc

	completed  atomic.Uint64
	canceled   atomic.Uint64
	deadline   atomic.Uint64
	errored    atomic.Uint64
	resumed    atomic.Uint64
	checkedOut atomic.Uint64
	returned   atomic.Uint64
	discarded  atomic.Uint64
	out        atomic.Int64
	streamed   atomic.Uint64
}

// NewWorker builds a worker; start it with Serve.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg.normalize()
	w := &Worker{cfg: cfg, running: make(map[string]context.CancelFunc)}
	w.pool.SetCapacity(cfg.PoolPerKey, cfg.PoolTotal)
	w.srv = rpc.NewServer(w)
	return w
}

// Serve accepts coordinator connections on l until Close.
func (w *Worker) Serve(l net.Listener) error { return w.srv.Serve(l) }

// Close stops the worker: the listener closes, live connections sever,
// and every running job's context cancels (its machine flows back
// through the usual accounting).
func (w *Worker) Close() error { return w.srv.Close() }

// Metrics returns a snapshot of the worker counters.
func (w *Worker) Metrics() WorkerMetrics {
	return WorkerMetrics{
		Completed:           w.completed.Load(),
		Canceled:            w.canceled.Load(),
		Deadline:            w.deadline.Load(),
		Errored:             w.errored.Load(),
		Resumed:             w.resumed.Load(),
		CheckedOut:          w.checkedOut.Load(),
		PoolReturned:        w.returned.Load(),
		PoolDiscarded:       w.discarded.Load(),
		MachinesOut:         w.out.Load(),
		CheckpointsStreamed: w.streamed.Load(),
	}
}

// PoolStats exposes the warm-pool counters (tests and /metrics).
func (w *Worker) PoolStats() sim.PoolStats { return w.pool.Stats() }

// ServeRPC dispatches one protocol method. MethodRun runs in the
// per-request goroutine internal/rpc already provides, so a long job
// never blocks a ping on the same connection.
func (w *Worker) ServeRPC(ctx context.Context, conn *rpc.ServerConn, method string, params json.RawMessage) (any, error) {
	switch method {
	case MethodRun:
		var job Job
		if err := json.Unmarshal(params, &job); err != nil {
			return nil, &rpc.Error{Code: rpc.CodeInvalidParams, Message: err.Error()}
		}
		return w.run(ctx, conn, &job)
	case MethodCancel:
		var note CancelNote
		if err := json.Unmarshal(params, &note); err != nil {
			return nil, &rpc.Error{Code: rpc.CodeInvalidParams, Message: err.Error()}
		}
		w.cancel(note.ID)
		return nil, nil
	case MethodPing:
		return &WorkerStats{
			Inflight: func() int64 {
				w.mu.Lock()
				defer w.mu.Unlock()
				return int64(len(w.running))
			}(),
			Completed: w.completed.Load() + w.canceled.Load() +
				w.deadline.Load() + w.errored.Load(),
			MachinesOut: w.out.Load(),
		}, nil
	}
	return nil, &rpc.Error{Code: rpc.CodeMethodNotFound, Message: method}
}

// cancel stops the named job at its next slice boundary; canceling an
// unknown (already finished) job is a no-op.
func (w *Worker) cancel(id string) {
	w.mu.Lock()
	stop := w.running[id]
	w.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// register installs a job's cancel hook; the returned func removes it.
func (w *Worker) register(id string, stop context.CancelFunc) func() {
	w.mu.Lock()
	w.running[id] = stop
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		delete(w.running, id)
		w.mu.Unlock()
	}
}

// checkout obtains the machine for a job: a warm pool session for a
// fresh run, a restored one for a migrated checkpoint.
func (w *Worker) checkout(job *Job) (sess *sim.Session, warm, resumed bool, err error) {
	if len(job.Checkpoint) > 0 {
		sess, err = sim.Resume(job.Checkpoint, sim.ResumeSpec{MaxCycles: job.MaxCycles})
		if err != nil {
			return nil, false, false, &rpc.Error{Code: rpc.CodeInvalidParams,
				Message: fmt.Sprintf("restoring checkpoint: %v", err)}
		}
		w.resumed.Add(1)
		return sess, false, true, nil
	}
	prog, err := asm.ReadImage(bytes.NewReader(job.Image))
	if err != nil {
		return nil, false, false, &rpc.Error{Code: rpc.CodeInvalidParams,
			Message: fmt.Sprintf("decoding program image: %v", err)}
	}
	sess, warm, err = w.pool.GetWarm(sim.Spec{
		Program:         prog,
		Cores:           job.Cores,
		SharedBankBytes: job.BankBytes,
		MaxCycles:       job.MaxCycles,
		Trace:           sim.TraceSpec{Digest: job.Digest, Ring: job.Ring},
		Profile:         job.Profile,
	})
	if err != nil {
		return nil, false, false, &rpc.Error{Code: rpc.CodeInvalidParams, Message: err.Error()}
	}
	return sess, warm, false, nil
}

// release accounts one job's machine back in: pooled sessions return
// to the warm pool, checkpoint-restored ones cannot be pooled (their
// Spec has no program to reset to) and are discarded — but always
// through exactly one of the two counters, so machines never leak.
func (w *Worker) release(sess *sim.Session, resumed bool) {
	if resumed {
		w.discarded.Add(1)
	} else {
		w.pool.Put(sess)
		w.returned.Add(1)
	}
	w.out.Add(-1)
}

// run executes one job. Every exit path — clean finish, fault, budget,
// deadline, coordinator cancel, connection death — releases the
// machine through the same accounting.
func (w *Worker) run(ctx context.Context, conn *rpc.ServerConn, job *Job) (*Result, error) {
	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	unregister := w.register(job.ID, stop)
	defer unregister()

	sess, warm, resumed, err := w.checkout(job)
	if err != nil {
		return nil, err
	}
	w.checkedOut.Add(1)
	w.out.Add(1)
	defer w.release(sess, resumed)

	deadlineCtx := runCtx
	if job.DeadlineMs > 0 {
		var cancel context.CancelFunc
		deadlineCtx, cancel = context.WithTimeout(runCtx,
			time.Duration(job.DeadlineMs)*time.Millisecond)
		defer cancel()
	}

	lastStream := sess.Machine().Cycle()
	res, err := sess.RunSliced(w.cfg.Slice, func(cycle uint64) error {
		select {
		case <-deadlineCtx.Done():
			if runCtx.Err() == nil && errors.Is(deadlineCtx.Err(), context.DeadlineExceeded) {
				return errDeadline
			}
			return errCanceled
		default:
		}
		if job.CheckpointEvery > 0 && cycle-lastStream >= job.CheckpointEvery {
			lastStream = cycle
			// The machine is paused at a cycle boundary: serialization
			// is pure observation. A failed stream is only a lost
			// migration point, never a failed job.
			if cp, err := sess.Checkpoint(); err == nil {
				if conn.Notify(MethodCheckpoint, &CheckpointNote{ID: job.ID, Cycle: cycle, State: cp}) == nil {
					w.streamed.Add(1)
				}
			}
		}
		return nil
	})

	out := &Result{PoolWarm: warm, Resumed: resumed}
	switch {
	case err == nil:
		w.completed.Add(1)
		out.Status = StatusOK
		fillResult(out, sess, res, job.Ring)
	case errors.Is(err, errCanceled):
		w.canceled.Add(1)
		out.Status = StatusCanceled
		out.Error = fmt.Sprintf("canceled at cycle %d", sess.Machine().Cycle())
	case errors.Is(err, errDeadline):
		w.deadline.Add(1)
		out.Status = StatusDeadline
		out.Error = fmt.Sprintf("deadline %dms elapsed at cycle %d", job.DeadlineMs, sess.Machine().Cycle())
	default:
		// The machine itself stopped: a deterministic fault or the
		// simulated-cycle budget. The worker is healthy; the run is not.
		w.errored.Add(1)
		out.Status = StatusError
		out.Error = err.Error()
	}
	return out, nil
}

// fillResult copies the deterministic outcome of a finished run.
func fillResult(out *Result, sess *sim.Session, res *lbp.Result, ring int) {
	out.Halt = res.Halt
	out.Cycles = res.Stats.Cycles
	out.Retired = res.Stats.Retired
	out.IPC = res.Stats.IPC()
	memStats := res.Mem
	out.Mem = &memStats
	if rec := sess.Recorder(); rec != nil {
		out.Digest = rec.Digest()
		out.Events = rec.Count()
		for _, e := range rec.Last(ring) {
			out.Tail = append(out.Tail, e.String())
		}
	}
	out.Perf = sess.PerfSnapshot()
}
