package dispatch

import (
	"fmt"
	"testing"
)

// TestRingWalkCoversAllBackends: every key's walk visits each backend
// exactly once, starting from the affine owner.
func TestRingWalkCoversAllBackends(t *testing.T) {
	backends := []string{"a:1", "b:2", "c:3", "d:4"}
	r := buildRing(backends)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		order := r.walk(key)
		if len(order) != len(backends) {
			t.Fatalf("walk(%q) = %v, want %d distinct backends", key, order, len(backends))
		}
		seen := make(map[int]bool)
		for _, b := range order {
			if b < 0 || b >= len(backends) || seen[b] {
				t.Fatalf("walk(%q) = %v: out of range or repeated index", key, order)
			}
			seen[b] = true
		}
	}
}

// TestRingAffinityIsStable: the same key maps to the same backend on
// every ring built from the same addresses — across processes too,
// since the hash is seedless (FNV-1a + a fixed finalizer).
func TestRingAffinityIsStable(t *testing.T) {
	backends := []string{"a:1", "b:2", "c:3"}
	r1, r2 := buildRing(backends), buildRing(backends)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("job-%d", i)
		if a, b := r1.walk(key)[0], r2.walk(key)[0]; a != b {
			t.Fatalf("key %q: affine backend %d vs %d across identical rings", key, a, b)
		}
	}
}

// TestRingSpreadsLoad: with virtual nodes, no backend owns a wildly
// disproportionate share of uniformly random keys.
func TestRingSpreadsLoad(t *testing.T) {
	backends := []string{"a:1", "b:2", "c:3", "d:4"}
	r := buildRing(backends)
	counts := make([]int, len(backends))
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.walk(fmt.Sprintf("%064x", i))[0]]++
	}
	for i, n := range counts {
		// Fair share is 1000; ±60% tolerates consistent hashing's
		// natural imbalance at 64 virtual nodes without flaking.
		if n < keys/10 || n > keys/2 {
			t.Errorf("backend %d owns %d of %d keys: spread too skewed (%v)", i, n, keys, counts)
		}
	}
}

// TestRingEmpty: a ring over no backends walks to nothing (the
// coordinator refuses to build at all, but the ring must not panic).
func TestRingEmpty(t *testing.T) {
	if got := (ring{}).walk("anything"); got != nil {
		t.Errorf("empty ring walk = %v, want nil", got)
	}
}
