package dispatch

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the number of virtual points each backend projects
// onto the hash ring. 64 keeps the load split within a few percent of
// even for small fleets while the ring stays tiny (a few KB).
const ringReplicas = 64

// point is one virtual node: a position on the 64-bit ring owned by a
// backend index.
type point struct {
	hash    uint64
	backend int
}

// ring consistent-hashes job keys onto backend indices. It is built
// once and never mutated, so lookups need no lock; liveness is the
// caller's concern (walk skips backends the caller excludes).
type ring struct {
	points []point
	n      int // backend count
}

// buildRing projects every backend onto the ring.
func buildRing(backends []string) ring {
	r := ring{points: make([]point, 0, len(backends)*ringReplicas), n: len(backends)}
	for i, addr := range backends {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, point{hashString(fmt.Sprintf("%s#%d", addr, v)), i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Identical hashes (vanishingly rare) order by backend so the
		// ring is deterministic regardless of sort internals.
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

// hashString is FNV-1a 64 with a splitmix64 finalizer. FNV alone
// diffuses trailing-byte changes poorly — near-sequential keys (job
// IDs, counter-suffixed names) land within ~2^44 of each other on a
// 2^64 ring and pile onto one backend — so the finalizer avalanches
// the result. Both halves are seedless constants, so affinity is
// stable across processes and coordinator restarts.
func hashString(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// walk returns the distinct backend indices owning key, in ring order
// starting from the key's successor point: walk(key)[0] is the affine
// backend, the rest is the deterministic failover order.
func (r ring) walk(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, r.n)
	seen := make(map[int]bool, r.n)
	for i := 0; i < len(r.points) && len(order) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			order = append(order, p.backend)
		}
	}
	return order
}
