package figures

import (
	"fmt"
	"strings"

	"repro/internal/lbp"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Design ablations (E8+): measure how the paper's architectural choices
// affect the headline experiment. Each ablation reruns a matmul variant
// with one machine parameter changed. The sweep points are independent
// machines, so each sweep compiles its program once and fans the
// simulations across the worker pool (see Parallelism).

// AblationPoint is one (configuration, measurement) pair. Digest is the
// event-trace digest of the run, so sweep results can be compared exactly
// across worker counts and across PRs.
type AblationPoint struct {
	Label   string
	Cycles  uint64
	Retired uint64
	IPC     float64
	Digest  uint64
}

// cfgPoint is one sweep point: a label and a machine-config mutation.
type cfgPoint struct {
	label  string
	mutate func(*lbp.Config)
}

// runPoints builds variant v at h harts once, then runs one machine per
// sweep point. mutate must only touch the fresh Config it is handed.
func runPoints(v workloads.MatmulVariant, h int, points []cfgPoint) ([]AblationPoint, error) {
	prog, err := workloads.BuildMatmul(v, h)
	if err != nil {
		return nil, err
	}
	return runner.Map(Parallelism, len(points), func(i int) (AblationPoint, error) {
		pt := points[i]
		cfg := workloads.MatmulConfig(h)
		pt.mutate(&cfg)
		sess, err := sim.New(sim.Spec{
			Program:   prog,
			Config:    &cfg,
			MaxCycles: workloads.MaxMatmulCycles(h),
			Trace:     sim.TraceSpec{Digest: true},
		})
		if err != nil {
			return AblationPoint{}, err
		}
		res, err := sess.Run()
		if err != nil {
			return AblationPoint{}, fmt.Errorf("figures: ablation %q: %w", pt.label, err)
		}
		if err := workloads.VerifyMatmul(sess.Machine(), prog, v, h); err != nil {
			return AblationPoint{}, fmt.Errorf("figures: ablation %q: %w", pt.label, err)
		}
		return AblationPoint{
			Label:   pt.label,
			Cycles:  res.Stats.Cycles,
			Retired: res.Stats.Retired,
			IPC:     res.Stats.IPC(),
			Digest:  sess.Recorder().Digest(),
		}, nil
	})
}

// RunHopLatAblation sweeps the per-link router latency: LBP's tree must
// keep remote latency low enough for the 1-deep result buffers to hide.
func RunHopLatAblation(v workloads.MatmulVariant, h int, hops []int) ([]AblationPoint, error) {
	var points []cfgPoint
	for _, hop := range hops {
		hop := hop
		points = append(points, cfgPoint{fmt.Sprintf("hop=%d", hop), func(c *lbp.Config) {
			c.Mem.HopLat = hop
		}})
	}
	return runPoints(v, h, points)
}

// RunBankLatAblation sweeps the shared-bank access latency.
func RunBankLatAblation(v workloads.MatmulVariant, h int, lats []int) ([]AblationPoint, error) {
	var points []cfgPoint
	for _, lat := range lats {
		lat := lat
		points = append(points, cfgPoint{fmt.Sprintf("bankLat=%d", lat), func(c *lbp.Config) {
			c.Mem.SharedLat = lat
		}})
	}
	return runPoints(v, h, points)
}

// RunMemOrderAblation compares the strict per-hart memory issue order
// with fully relaxed issue (the paper's bare hardware; safe here because
// the matmul kernels have no same-address hazards inside a hart).
func RunMemOrderAblation(v workloads.MatmulVariant, h int) ([]AblationPoint, error) {
	var points []cfgPoint
	for _, strict := range []bool{true, false} {
		strict := strict
		label := "relaxed"
		if strict {
			label = "strict"
		}
		points = append(points, cfgPoint{label, func(c *lbp.Config) {
			c.StrictMemOrder = strict
		}})
	}
	return runPoints(v, h, points)
}

// RunFULatAblation sweeps the divider latency to show it is off the
// critical path of the matmul (no divisions in the inner loops).
func RunFULatAblation(v workloads.MatmulVariant, h int, divLats []int) ([]AblationPoint, error) {
	var points []cfgPoint
	for _, d := range divLats {
		d := d
		points = append(points, cfgPoint{fmt.Sprintf("div=%d", d), func(c *lbp.Config) {
			c.DivLat = d
		}})
	}
	return runPoints(v, h, points)
}

// FormatAblationPoints renders one ablation table.
func FormatAblationPoints(title string, pts []AblationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %12s %12s %8s\n", "config", "cycles", "retired", "IPC")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14s %12d %12d %8.2f\n", p.Label, p.Cycles, p.Retired, p.IPC)
	}
	return b.String()
}

// RunChipAblation compares one monolithic machine against the same core
// count split into chips (Figure 15): the team spans the chip edges, the
// program result is unchanged, the cycles grow with the edge latency.
func RunChipAblation(v workloads.MatmulVariant, h int, chipSizes []int, chipHop int) ([]AblationPoint, error) {
	var points []cfgPoint
	for _, cs := range chipSizes {
		cs := cs
		label := "monolithic"
		if cs > 0 && cs < h/4 {
			label = fmt.Sprintf("chips-of-%d", cs)
		}
		points = append(points, cfgPoint{label, func(c *lbp.Config) {
			c.Mem.CoresPerChip = cs
			c.Mem.ChipHopLat = chipHop
		}})
	}
	return runPoints(v, h, points)
}
