package figures

import (
	"fmt"
	"strings"

	"repro/internal/lbp"
	"repro/internal/workloads"
)

// Design ablations (E8+): measure how the paper's architectural choices
// affect the headline experiment. Each ablation reruns a matmul variant
// with one machine parameter changed.

// AblationPoint is one (configuration, measurement) pair.
type AblationPoint struct {
	Label   string
	Cycles  uint64
	Retired uint64
	IPC     float64
}

// runWith runs variant v at h harts on a machine derived from the
// standard experiment machine by mutate.
func runWith(v workloads.MatmulVariant, h int, label string, mutate func(*lbp.Config)) (AblationPoint, error) {
	prog, err := workloads.BuildMatmul(v, h)
	if err != nil {
		return AblationPoint{}, err
	}
	cfg := lbp.DefaultConfig(h / 4)
	cfg.Mem.SharedBytes = workloads.SharedBankBytes(h)
	mutate(&cfg)
	m := lbp.New(cfg)
	if err := m.LoadProgram(prog); err != nil {
		return AblationPoint{}, err
	}
	res, err := m.Run(workloads.MaxMatmulCycles(h))
	if err != nil {
		return AblationPoint{}, fmt.Errorf("figures: ablation %q: %w", label, err)
	}
	if err := workloads.VerifyMatmul(m, prog, v, h); err != nil {
		return AblationPoint{}, fmt.Errorf("figures: ablation %q: %w", label, err)
	}
	return AblationPoint{
		Label:   label,
		Cycles:  res.Stats.Cycles,
		Retired: res.Stats.Retired,
		IPC:     res.Stats.IPC(),
	}, nil
}

// RunHopLatAblation sweeps the per-link router latency: LBP's tree must
// keep remote latency low enough for the 1-deep result buffers to hide.
func RunHopLatAblation(v workloads.MatmulVariant, h int, hops []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, hop := range hops {
		hop := hop
		p, err := runWith(v, h, fmt.Sprintf("hop=%d", hop), func(c *lbp.Config) {
			c.Mem.HopLat = hop
		})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RunBankLatAblation sweeps the shared-bank access latency.
func RunBankLatAblation(v workloads.MatmulVariant, h int, lats []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, lat := range lats {
		lat := lat
		p, err := runWith(v, h, fmt.Sprintf("bankLat=%d", lat), func(c *lbp.Config) {
			c.Mem.SharedLat = lat
		})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RunMemOrderAblation compares the strict per-hart memory issue order
// with fully relaxed issue (the paper's bare hardware; safe here because
// the matmul kernels have no same-address hazards inside a hart).
func RunMemOrderAblation(v workloads.MatmulVariant, h int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, strict := range []bool{true, false} {
		strict := strict
		label := "relaxed"
		if strict {
			label = "strict"
		}
		p, err := runWith(v, h, label, func(c *lbp.Config) {
			c.StrictMemOrder = strict
		})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RunFULatAblation sweeps the divider latency to show it is off the
// critical path of the matmul (no divisions in the inner loops).
func RunFULatAblation(v workloads.MatmulVariant, h int, divLats []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, d := range divLats {
		d := d
		p, err := runWith(v, h, fmt.Sprintf("div=%d", d), func(c *lbp.Config) {
			c.DivLat = d
		})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatAblationPoints renders one ablation table.
func FormatAblationPoints(title string, pts []AblationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %12s %12s %8s\n", "config", "cycles", "retired", "IPC")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14s %12d %12d %8.2f\n", p.Label, p.Cycles, p.Retired, p.IPC)
	}
	return b.String()
}

// RunChipAblation compares one monolithic machine against the same core
// count split into chips (Figure 15): the team spans the chip edges, the
// program result is unchanged, the cycles grow with the edge latency.
func RunChipAblation(v workloads.MatmulVariant, h int, chipSizes []int, chipHop int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, cs := range chipSizes {
		cs := cs
		label := "monolithic"
		if cs > 0 && cs < h/4 {
			label = fmt.Sprintf("chips-of-%d", cs)
		}
		p, err := runWith(v, h, label, func(c *lbp.Config) {
			c.Mem.CoresPerChip = cs
			c.Mem.ChipHopLat = chipHop
		})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
