package figures

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// Sequential-vs-parallel equivalence (extends E4): every figure runner
// must produce identical results — including cycle counts and event-trace
// digests — whether its simulations run on one goroutine or on a pool.
// The comparison is reflect.DeepEqual over the full result structures, so
// any divergence in ordering, cycles, digests or statistics fails.

// withWorkers runs f with the package Parallelism knob set to n.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	old := Parallelism
	Parallelism = n
	defer func() { Parallelism = old }()
	f()
}

func TestFigureRunnersParallelEquivalence(t *testing.T) {
	cases := []struct {
		name string
		run  func() (any, error)
	}{
		{"matmul-figure-16", func() (any, error) { return RunMatmulFigure(16) }},
		{"determinism-base-16", func() (any, error) { return RunDeterminism(workloads.Base, 16, 3) }},
		{"hart-ablation", func() (any, error) { return RunHartAblation(2000) }},
		{"hop-latency", func() (any, error) { return RunHopLatAblation(workloads.Base, 16, []int{1, 2}) }},
		{"bank-latency", func() (any, error) { return RunBankLatAblation(workloads.Base, 16, []int{1, 3}) }},
		{"mem-order", func() (any, error) { return RunMemOrderAblation(workloads.Copy, 16) }},
		{"div-latency", func() (any, error) { return RunFULatAblation(workloads.Base, 16, []int{17, 68}) }},
		{"chips", func() (any, error) { return RunChipAblation(workloads.Base, 16, []int{0, 2}, 25) }},
		{"response-sweep", func() (any, error) { return RunResponseSweep(8) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var seq, par any
			var seqErr, parErr error
			withWorkers(t, 1, func() { seq, seqErr = tc.run() })
			if seqErr != nil {
				t.Fatalf("sequential: %v", seqErr)
			}
			withWorkers(t, 4, func() { par, parErr = tc.run() })
			if parErr != nil {
				t.Fatalf("parallel: %v", parErr)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel result diverges from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// TestMatmulRowsCarryDigests pins the digest plumbing: every row of a
// figure records a non-empty event trace, and equal machines yield equal
// digests run-to-run (the E4 property surfaced through the figure API).
func TestMatmulRowsCarryDigests(t *testing.T) {
	rows, err := RunMatmulFigure(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Digest == 0 || r.Events == 0 {
			t.Errorf("%s: digest %#x over %d events — trace not attached?", r.Variant, r.Digest, r.Events)
		}
	}
	again, err := RunMatmul(workloads.Base, 16)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != rows[0].Digest || again.Cycles != rows[0].Cycles {
		t.Errorf("repeat run of %s diverged: digest %#x vs %#x, cycles %d vs %d",
			workloads.Base, again.Digest, rows[0].Digest, again.Cycles, rows[0].Cycles)
	}
}

// TestAblationPointsCarryDigests does the same for the sweep API.
func TestAblationPointsCarryDigests(t *testing.T) {
	pts, err := RunMemOrderAblation(workloads.Copy, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points: %+v", pts)
	}
	for _, p := range pts {
		if p.Digest == 0 {
			t.Errorf("%s: zero digest", p.Label)
		}
	}
	// Note: strict and relaxed legitimately coincide for copy/16 (E8c —
	// the issue order is off this kernel's critical path), so equal
	// digests across points are not an error. A config change that does
	// matter must show up:
	hop, err := RunHopLatAblation(workloads.Base, 16, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if hop[0].Digest == hop[1].Digest {
		t.Error("hop=1 and hop=8 must produce different traces")
	}
}
