package figures

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// Sequential-vs-parallel equivalence (extends E4): every figure runner
// must produce identical results — including cycle counts and event-trace
// digests — whether its simulations run on one goroutine or on a pool.
// The comparison is reflect.DeepEqual over the full result structures, so
// any divergence in ordering, cycles, digests or statistics fails.

// withWorkers runs f with the package Parallelism knob set to n.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	old := Parallelism
	Parallelism = n
	defer func() { Parallelism = old }()
	f()
}

func TestFigureRunnersParallelEquivalence(t *testing.T) {
	cases := []struct {
		name string
		run  func() (any, error)
	}{
		{"matmul-figure-16", func() (any, error) { return RunMatmulFigure(16) }},
		{"determinism-base-16", func() (any, error) { return RunDeterminism(workloads.Base, 16, 3) }},
		{"hart-ablation", func() (any, error) { return RunHartAblation(2000) }},
		{"hop-latency", func() (any, error) { return RunHopLatAblation(workloads.Base, 16, []int{1, 2}) }},
		{"bank-latency", func() (any, error) { return RunBankLatAblation(workloads.Base, 16, []int{1, 3}) }},
		{"mem-order", func() (any, error) { return RunMemOrderAblation(workloads.Copy, 16) }},
		{"div-latency", func() (any, error) { return RunFULatAblation(workloads.Base, 16, []int{17, 68}) }},
		{"chips", func() (any, error) { return RunChipAblation(workloads.Base, 16, []int{0, 2}, 25) }},
		{"response-sweep", func() (any, error) { return RunResponseSweep(8) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var seq, par any
			var seqErr, parErr error
			withWorkers(t, 1, func() { seq, seqErr = tc.run() })
			if seqErr != nil {
				t.Fatalf("sequential: %v", seqErr)
			}
			withWorkers(t, 4, func() { par, parErr = tc.run() })
			if parErr != nil {
				t.Fatalf("parallel: %v", parErr)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel result diverges from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// withProfile runs f with the package Profile knob set.
func withProfile(t *testing.T, f func()) {
	t.Helper()
	old := Profile
	Profile = true
	defer func() { Profile = old }()
	f()
}

// TestProfiledParallelEquivalence extends the equivalence property to the
// counter layer: with profiling on, the embedded perf snapshots — stall
// attribution, stage occupancy, retired mix, link waits, latency
// histograms — must be byte-identical for any Parallelism, because the
// counters are a pure function of each single-threaded simulation.
func TestProfiledParallelEquivalence(t *testing.T) {
	var seq, par []MatmulRow
	var seqErr, parErr error
	withProfile(t, func() {
		withWorkers(t, 1, func() { seq, seqErr = RunMatmulFigure(16) })
		withWorkers(t, 4, func() { par, parErr = RunMatmulFigure(16) })
	})
	if seqErr != nil {
		t.Fatalf("sequential: %v", seqErr)
	}
	if parErr != nil {
		t.Fatalf("parallel: %v", parErr)
	}
	if len(seq) == 0 {
		t.Fatal("no rows")
	}
	for i := range seq {
		if seq[i].Perf == nil || par[i].Perf == nil {
			t.Fatalf("row %s: snapshot missing with Profile on", seq[i].Variant)
		}
		if !reflect.DeepEqual(seq[i].Perf, par[i].Perf) {
			t.Errorf("row %s: counter snapshot diverges between Parallelism=1 and 4",
				seq[i].Variant)
		}
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("profiled rows diverge between Parallelism=1 and 4")
	}
	// And the knob must stay opt-in: with Profile off, rows carry no
	// snapshot and the run is unchanged.
	plain, err := RunMatmul(workloads.Base, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Perf != nil {
		t.Error("Perf must be nil when Profile is off")
	}
	if plain.Cycles != seq[0].Cycles || plain.Digest != seq[0].Digest {
		t.Errorf("profiling perturbed the run: cycles %d vs %d, digest %#x vs %#x",
			plain.Cycles, seq[0].Cycles, plain.Digest, seq[0].Digest)
	}
}

// TestProfiledAttribution pins the acceptance criterion of the
// observability layer on a real figure workload: for the Figure 19 base
// variant, at least 90% of non-retiring hart-cycles carry a named stall
// cause (the implementation is exact, so the fraction is 1.0).
func TestProfiledAttribution(t *testing.T) {
	var row MatmulRow
	var err error
	withProfile(t, func() { row, err = RunMatmul(workloads.Base, 16) })
	if err != nil {
		t.Fatal(err)
	}
	s := row.Perf
	if s == nil {
		t.Fatal("no snapshot")
	}
	if f := s.AttributedFraction(); f < 0.9 {
		t.Errorf("attributed fraction = %v, want >= 0.9", f)
	}
	var stalls uint64
	for _, c := range s.Stalls {
		stalls += c.Value
	}
	if s.CommitCycles+stalls != s.HartCycles {
		t.Errorf("accounting not exact: %d + %d != %d",
			s.CommitCycles, stalls, s.HartCycles)
	}
	var linkWait uint64
	for _, c := range s.LinkWait {
		linkWait += c.Value
	}
	if linkWait == 0 {
		t.Error("base/16 saw no link contention — mem hooks not wired?")
	}
	if len(s.LocalLat) == 0 && len(s.RemoteLat) == 0 {
		t.Error("no latency observations")
	}
}

// TestMatmulRowsCarryDigests pins the digest plumbing: every row of a
// figure records a non-empty event trace, and equal machines yield equal
// digests run-to-run (the E4 property surfaced through the figure API).
func TestMatmulRowsCarryDigests(t *testing.T) {
	rows, err := RunMatmulFigure(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Digest == 0 || r.Events == 0 {
			t.Errorf("%s: digest %#x over %d events — trace not attached?", r.Variant, r.Digest, r.Events)
		}
	}
	again, err := RunMatmul(workloads.Base, 16)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != rows[0].Digest || again.Cycles != rows[0].Cycles {
		t.Errorf("repeat run of %s diverged: digest %#x vs %#x, cycles %d vs %d",
			workloads.Base, again.Digest, rows[0].Digest, again.Cycles, rows[0].Cycles)
	}
}

// TestAblationPointsCarryDigests does the same for the sweep API.
func TestAblationPointsCarryDigests(t *testing.T) {
	pts, err := RunMemOrderAblation(workloads.Copy, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points: %+v", pts)
	}
	for _, p := range pts {
		if p.Digest == 0 {
			t.Errorf("%s: zero digest", p.Label)
		}
	}
	// Note: strict and relaxed legitimately coincide for copy/16 (E8c —
	// the issue order is off this kernel's critical path), so equal
	// digests across points are not an error. A config change that does
	// matter must show up:
	hop, err := RunHopLatAblation(workloads.Base, 16, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if hop[0].Digest == hop[1].Digest {
		t.Error("hop=1 and hop=8 must produce different traces")
	}
}
