package figures

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// E10: input-to-output response time. The paper's motivation for
// non-interruptible I/O (Section 6) is timing safety: "once the data is
// available to the input controller, within a few cycles it is received
// by the requesting hart. The response time is very short (a few cycles)
// and easy to bound" — unlike interrupt-driven I/O whose response time
// is "very hard to bound".
//
// The experiment runs the Figure 16 sensor-fusion loop with the last
// sensor arriving at a sweep of phases and measures the delay from that
// arrival to the actuator write. On LBP the delay varies only with the
// phase of the polling loop, so its spread is bounded by a handful of
// cycles.

// ResponseReport summarizes the sweep.
type ResponseReport struct {
	Samples  []uint64 // arrival->actuation delay per phase
	Min, Max uint64
}

// Jitter returns max-min: the paper's repeatable-timing figure of merit.
func (r *ResponseReport) Jitter() uint64 { return r.Max - r.Min }

// RunResponseSweep measures the response delay for `phases` consecutive
// arrival offsets of the last sensor. phases must be positive: a sweep
// over zero phases has no samples, and the Min fold below starts at
// ^uint64(0), so letting it through would report Min=2^64-1, Max=0 and a
// wrapped-around Jitter of ~1.8e19 cycles.
func RunResponseSweep(phases int) (*ResponseReport, error) {
	if phases <= 0 {
		return nil, fmt.Errorf("figures: response sweep needs at least one phase, got %d", phases)
	}
	src := workloads.SensorFusionSource(1)
	asmText, err := cc.BuildProgram(src, cc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		return nil, err
	}
	// Each phase is an independent machine (own devices, own run), so the
	// sweep fans out across the worker pool; the min/max fold happens
	// after all phases, in phase order.
	samples, err := runner.Map(Parallelism, phases, func(p int) (uint64, error) {
		// three sensors answer early; the last one arrives late, at a
		// phase-swept cycle, so the fusion waits only on it
		last := uint64(3000 + p)
		var devices []lbp.Device
		for i := 0; i < 4; i++ {
			cyc := uint64(500 + 13*i)
			if i == 3 {
				cyc = last
			}
			devices = append(devices, &lbp.Sensor{
				ValueAddr: prog.Symbols["sval"] + uint32(4*i),
				FlagAddr:  prog.Symbols["sflag"] + uint32(4*i),
				Events:    []lbp.SensorEvent{{Cycle: cyc, Value: uint32(4 * (i + 1))}},
			})
		}
		act := &lbp.Actuator{
			ValueAddr: prog.Symbols["factuator"],
			SeqAddr:   prog.Symbols["aseq"],
		}
		devices = append(devices, act)
		sess, err := sim.New(sim.Spec{
			Program:   prog,
			Cores:     1,
			Devices:   devices,
			MaxCycles: 50_000_000,
		})
		if err != nil {
			return 0, err
		}
		if _, err := sess.Run(); err != nil {
			return 0, err
		}
		if len(act.Writes) != 1 {
			return 0, fmt.Errorf("figures: response sweep: %d actuator writes", len(act.Writes))
		}
		return act.Writes[0].Cycle - last, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &ResponseReport{Min: ^uint64(0), Samples: samples}
	for _, d := range samples {
		if d < rep.Min {
			rep.Min = d
		}
		if d > rep.Max {
			rep.Max = d
		}
	}
	return rep, nil
}

// FormatResponse renders E10.
func FormatResponse(r *ResponseReport) string {
	var b strings.Builder
	b.WriteString("E10 — input-to-actuation response time over arrival phases\n")
	fmt.Fprintf(&b, "phases: %d  min: %d cycles  max: %d cycles  jitter: %d cycles\n",
		len(r.Samples), r.Min, r.Max, r.Jitter())
	b.WriteString("(no interrupts: the delay is the polling-loop phase plus the fixed fusion path)\n")
	return b.String()
}
