package figures

// The scaling figure (E18, recorded as BENCH_fig22.json) is the
// companion of the 256-to-1024-core growth work: the Figure 4 placed
// set/get program, weak-scaled so every hart owns a fixed chunk of its
// core's bank, run at 64, 256 and 1024 cores. Cycles and digests are
// deterministic anchors for the scaling tests; the Host throughput
// column is what the per-core commit lanes and the generalized router
// hierarchy are supposed to move.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ScaleCores lists the machine sizes of the scaling figure, largest
// last so a progress-watching run fails fast on the cheap points.
var ScaleCores = []int{64, 256, 1024}

// scaleChunk is the number of words each hart writes and reads back:
// the per-hart work is constant, so the sweep is a weak-scaling curve.
const scaleChunk = 64

// scaleReserveBytes keeps the compiler's bank reserve below the RESW
// offset the program addresses past (128 words).
const scaleReserveBytes = 512

// FigureScale is the figure number the scaling sweep is recorded under.
const FigureScale = 22

// buildScaleProgram compiles the placed set/get program for an n-core
// machine (4n harts).
func buildScaleProgram(n int) (*asm.Program, error) {
	opt := cc.DefaultOptions()
	opt.Cores = n
	opt.BankReserveBytes = scaleReserveBytes
	asmText, err := cc.BuildProgram(localitySource(n*lbp.HartsPerCore, scaleChunk), opt)
	if err != nil {
		return nil, fmt.Errorf("figures: scale/%dc: compile: %w", n, err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		return nil, fmt.Errorf("figures: scale/%dc: assemble: %w", n, err)
	}
	return prog, nil
}

// verifyScale checks every hart's get-phase reduction: chunk t must end
// holding sum(t..t+CHUNK-1), through the same placement arithmetic the
// program uses. A wrong sum means a miscompiled or misrouted run, which
// a digest alone would happily reproduce.
func verifyScale(m *lbp.Machine, n int) error {
	bankBytes := m.Config().Mem.SharedBytes
	for t := 0; t < n*lbp.HartsPerCore; t++ {
		addr := 0x80000000 + uint32(t>>2)*bankBytes + 4*uint32(128+(t&3)*scaleChunk)
		val, ok := m.ReadShared(addr)
		if !ok {
			return fmt.Errorf("figures: scale/%dc: chunk %d unmapped at %#x", n, t, addr)
		}
		want := uint32(scaleChunk*t + scaleChunk*(scaleChunk-1)/2)
		if val != want {
			return fmt.Errorf("figures: scale/%dc: chunk %d = %d, want %d", n, t, val, want)
		}
	}
	return nil
}

// runScaleProg runs one pre-assembled scale point on a pooled machine,
// mirroring runMatmulProg: digest-only tracing, optional perf counters,
// and a best-of-ThroughputRepeats host-throughput measurement with a
// digest recheck on every repeat.
func runScaleProg(prog *asm.Program, n int) (MatmulRow, error) {
	sess, err := pool.Get(sim.Spec{
		Program:       prog,
		Cores:         n,
		MaxCycles:     uint64(n)*4*scaleChunk*1000 + 1_000_000,
		Trace:         sim.TraceSpec{Digest: true},
		Profile:       Profile,
		SimWorkers:    specSimWorkers(),
		NoFastForward: !FastForward,
	})
	if err != nil {
		return MatmulRow{}, err
	}
	start := time.Now()
	res, err := sess.Run()
	wall := time.Since(start).Seconds()
	if err != nil {
		return MatmulRow{}, fmt.Errorf("figures: scale/%dc: %w", n, err)
	}
	if err := verifyScale(sess.Machine(), n); err != nil {
		return MatmulRow{}, err
	}
	if res.Mem.SharedRemote != 0 {
		return MatmulRow{}, fmt.Errorf("figures: scale/%dc: %d routed accesses in an all-local placement",
			n, res.Mem.SharedRemote)
	}
	rec := sess.Recorder()
	row := MatmulRow{
		Variant: workloads.MatmulVariant(fmt.Sprintf("scale-%dc", n)),
		Harts:   n * lbp.HartsPerCore,
		Cycles:  res.Stats.Cycles,
		Retired: res.Stats.Retired,
		Perf:    sess.PerfSnapshot(),
		IPC:     res.Stats.IPC(),
		Remote:  res.Mem.SharedRemote,
		Local:   res.Mem.SharedLocal + res.Mem.LocalAccesses,
		Digest:  rec.Digest(),
		Events:  rec.Count(),
	}
	if RecordThroughput {
		for i := 1; i < ThroughputRepeats; i++ {
			if err := sess.Reset(prog); err != nil {
				return MatmulRow{}, fmt.Errorf("figures: scale/%dc: rerun reset: %w", n, err)
			}
			rstart := time.Now()
			rres, err := sess.Run()
			rwall := time.Since(rstart).Seconds()
			if err != nil {
				return MatmulRow{}, fmt.Errorf("figures: scale/%dc: rerun: %w", n, err)
			}
			if d := sess.Recorder().Digest(); d != row.Digest {
				return MatmulRow{}, fmt.Errorf("figures: scale/%dc: rerun digest %#x != %#x", n, d, row.Digest)
			}
			if rwall < wall {
				wall = rwall
				res = rres
			}
		}
		t := &Throughput{
			WallSec:       wall,
			SimWorkers:    sess.Machine().SimWorkers(),
			FastForwarded: res.Stats.FastForwarded,
		}
		if wall > 0 {
			t.CyclesPerSec = float64(res.Stats.Cycles) / wall
		}
		row.Host = t
	}
	pool.Put(sess)
	return row, nil
}

// RunScaleFigure runs the weak-scaling sweep over ScaleCores. Points
// compile sequentially, then simulate on the Parallelism-sized worker
// pool; rows come back in ScaleCores order either way.
func RunScaleFigure() ([]MatmulRow, error) {
	progs := make([]*asm.Program, len(ScaleCores))
	for i, n := range ScaleCores {
		p, err := buildScaleProgram(n)
		if err != nil {
			return nil, err
		}
		progs[i] = p
	}
	return runner.Map(Parallelism, len(progs), func(i int) (MatmulRow, error) {
		return runScaleProg(progs[i], ScaleCores[i])
	})
}

// FormatScaleFigure renders the sweep as a weak-scaling table: cycles
// should grow roughly linearly in the core count (the serpentine
// backward line of the fork/join wave), IPC should stay near flat, and
// every access stays local.
func FormatScaleFigure(rows []MatmulRow) string {
	var b strings.Builder
	b.WriteString("E18 — weak-scaling set/get sweep (fixed chunk per hart)\n")
	fmt.Fprintf(&b, "%6s %6s %12s %12s %7s %10s %8s\n",
		"cores", "harts", "cycles", "retired", "IPC", "local", "remote")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %6d %12d %12d %7.2f %10d %8d\n",
			r.Harts/lbp.HartsPerCore, r.Harts, r.Cycles, r.Retired, r.IPC, r.Local, r.Remote)
	}
	return b.String()
}
