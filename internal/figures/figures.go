// Package figures reproduces the evaluation of the paper: Figures 19, 20
// and 21 (cycles, IPC and retired instructions of the five matrix
// multiplication versions on 4-, 16- and 64-core LBP machines, plus the
// Xeon-Phi-like model for Figure 21), and the supporting experiments of
// DESIGN.md: cycle determinism (E4), hart-count latency hiding (E5),
// deterministic I/O (E6) and the locality of placed two-phase programs
// (E7).
package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/perf"
	"repro/internal/phimodel"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Parallelism is the worker count the figure runners hand to
// internal/runner when fanning out independent simulations: 1 (the
// default) runs strictly sequentially, 0 uses all host CPUs, any other
// value caps the pool at that many goroutines.
//
// Parallelism never reaches inside a simulated machine — each worker
// builds and runs its own single-threaded lbp.Machine — so results,
// cycle counts and event-trace digests are identical for every setting
// (asserted by the equivalence tests in parallel_test.go). Programs are
// compiled before the fan-out; workers only simulate.
var Parallelism = 1

// Profile, when true, enables per-run performance counters on every
// matmul figure machine: stall attribution, stage occupancy, retired mix
// and memory-side counters are snapshotted into MatmulRow.Perf. Counters
// are deterministic — a pure function of the program and configuration —
// so snapshots, like digests, are byte-identical for any Parallelism.
var Profile = false

// SimWorkers is the *intra-run* worker count handed to every figure
// machine (lbp.Machine.SetSimWorkers): 1 steps each simulation on a
// single goroutine, 0 uses all host CPUs. Unlike Parallelism, which
// fans out whole simulations, SimWorkers shards the compute phase of a
// single machine's cycle loop; both knobs leave every simulated result
// bit-identical and compose freely.
var SimWorkers = 1

// FastForward toggles idle-cycle fast-forward on the figure machines
// (on by default, matching lbp.New). Exposed for the equivalence tests.
var FastForward = true

// RecordThroughput, when true, attaches host-side wall-time and
// simulated-cycles-per-second to each figure row (MatmulRow.Host).
// Off by default: throughput is the only nondeterministic content a row
// can carry, and the equivalence tests compare rows with DeepEqual.
var RecordThroughput = false

// ThroughputRepeats is how many times a row's simulation runs when
// RecordThroughput is on; the reported wall time is the fastest run.
// A single 5-20ms run is dominated by cold-start noise (first-touch
// page faults, GC warm-up), so a best-of-N over a reset warm machine is
// what the throughput comparison in benchdiff needs. The repeats double
// as a determinism check: every run must reproduce the first digest.
var ThroughputRepeats = 3

// pool recycles warm machines across the figure sweeps: every run of
// the same variant size reuses a reset machine instead of reallocating
// banks, link queues and reorder buffers. sim.Pool is safe for the
// Parallelism-sized fan-out.
var pool sim.Pool

// specSimWorkers translates the package SimWorkers knob (0 = all host
// CPUs, lbp.SetSimWorkers convention) into the sim.Spec convention
// (0 = single-threaded, negative = all host CPUs).
func specSimWorkers() int {
	if SimWorkers == 0 {
		return -1
	}
	return SimWorkers
}

// Throughput records the host-side execution speed of one simulation.
type Throughput struct {
	WallSec       float64 // host seconds inside Machine.Run
	CyclesPerSec  float64 // simulated cycles per host second
	SimWorkers    int     // intra-run worker count used
	FastForwarded uint64  // simulated cycles covered by fast-forward
}

// MatmulRow is one bar group of Figures 19-21. Digest and Events identify
// the full event trace of the run (experiment E4): two runs of the same
// variant and machine size must agree on them exactly, regardless of the
// host-side worker count that produced the row.
type MatmulRow struct {
	Variant workloads.MatmulVariant
	Harts   int
	Cycles  uint64
	Retired uint64
	IPC     float64
	Remote  uint64 // routed shared accesses
	Local   uint64 // local-bank + own-shared-bank accesses
	Digest  uint64 // event-trace digest of the run
	Events  uint64 // number of trace events folded into Digest

	// Perf is the deterministic counter snapshot of the run; nil unless
	// the Profile knob (lbp-bench -profile) is on.
	Perf *perf.Snapshot `json:",omitempty"`

	// Host is the host-side throughput of the run; nil unless the
	// RecordThroughput knob (lbp-bench) is on.
	Host *Throughput `json:",omitempty"`
}

// RunMatmul builds, runs and verifies one variant at h harts.
func RunMatmul(v workloads.MatmulVariant, h int) (MatmulRow, error) {
	prog, err := workloads.BuildMatmul(v, h)
	if err != nil {
		return MatmulRow{}, err
	}
	return runMatmulProg(prog, v, h)
}

// runMatmulProg runs a pre-assembled variant on a pooled machine with a
// digest-only trace recorder attached. prog is only read, so concurrent
// calls may share it.
func runMatmulProg(prog *asm.Program, v workloads.MatmulVariant, h int) (MatmulRow, error) {
	cfg := workloads.MatmulConfig(h)
	sess, err := pool.Get(sim.Spec{
		Program:       prog,
		Config:        &cfg,
		MaxCycles:     workloads.MaxMatmulCycles(h),
		Trace:         sim.TraceSpec{Digest: true},
		Profile:       Profile,
		SimWorkers:    specSimWorkers(),
		NoFastForward: !FastForward,
	})
	if err != nil {
		return MatmulRow{}, err
	}
	start := time.Now()
	res, err := sess.Run()
	wall := time.Since(start).Seconds()
	if err != nil {
		return MatmulRow{}, fmt.Errorf("figures: %s/%d: %w", v, h, err)
	}
	if err := workloads.VerifyMatmul(sess.Machine(), prog, v, h); err != nil {
		return MatmulRow{}, err
	}
	rec := sess.Recorder()
	row := MatmulRow{
		Variant: v,
		Harts:   h,
		Cycles:  res.Stats.Cycles,
		Retired: res.Stats.Retired,
		Perf:    sess.PerfSnapshot(),
		IPC:     res.Stats.IPC(),
		Remote:  res.Mem.SharedRemote,
		Local:   res.Mem.SharedLocal + res.Mem.LocalAccesses,
		Digest:  rec.Digest(),
		Events:  rec.Count(),
	}
	if RecordThroughput {
		for i := 1; i < ThroughputRepeats; i++ {
			if err := sess.Reset(prog); err != nil {
				return MatmulRow{}, fmt.Errorf("figures: %s/%d: rerun reset: %w", v, h, err)
			}
			rstart := time.Now()
			rres, err := sess.Run()
			rwall := time.Since(rstart).Seconds()
			if err != nil {
				return MatmulRow{}, fmt.Errorf("figures: %s/%d: rerun: %w", v, h, err)
			}
			if d := sess.Recorder().Digest(); d != row.Digest {
				return MatmulRow{}, fmt.Errorf("figures: %s/%d: rerun digest %#x != %#x",
					v, h, d, row.Digest)
			}
			if rwall < wall {
				wall = rwall
				res = rres
			}
		}
		t := &Throughput{
			WallSec:       wall,
			SimWorkers:    sess.Machine().SimWorkers(),
			FastForwarded: res.Stats.FastForwarded,
		}
		if wall > 0 {
			t.CyclesPerSec = float64(res.Stats.Cycles) / wall
		}
		row.Host = t
	}
	pool.Put(sess)
	return row, nil
}

// RunMatmulFigure runs all five variants for one machine size. The
// variants compile sequentially, then simulate on the Parallelism-sized
// worker pool; rows come back in Variants order either way.
func RunMatmulFigure(h int) ([]MatmulRow, error) {
	progs := make([]*asm.Program, len(workloads.Variants))
	for i, v := range workloads.Variants {
		p, err := workloads.BuildMatmul(v, h)
		if err != nil {
			return nil, err
		}
		progs[i] = p
	}
	return runner.Map(Parallelism, len(progs), func(i int) (MatmulRow, error) {
		return runMatmulProg(progs[i], workloads.Variants[i], h)
	})
}

// FigureForHarts maps a hart count to the paper's figure number.
func FigureForHarts(h int) int {
	switch h {
	case 16:
		return 19
	case 64:
		return 20
	case 256:
		return 21
	}
	return 0
}

// FormatMatmulFigure renders a figure like the paper's histograms
// (number of cycles, IPC, retired instructions per version). For
// Figure 21 pass the Phi model result; otherwise phi may be nil.
func FormatMatmulFigure(rows []MatmulRow, phi *phimodel.Result) string {
	var b strings.Builder
	h := rows[0].Harts
	fmt.Fprintf(&b, "Figure %d — matrix multiplication on a %d-core LBP (%d harts)\n",
		FigureForHarts(h), h/4, h)
	fmt.Fprintf(&b, "%-14s %14s %8s %14s %10s %10s\n",
		"version", "cycles", "IPC", "retired", "remote", "local")
	best := rows[0]
	for _, r := range rows {
		if r.Cycles < best.Cycles {
			best = r
		}
	}
	for _, r := range rows {
		mark := " "
		if r.Variant == best.Variant {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-13s%s %14d %8.2f %14d %10d %10d\n",
			r.Variant, mark, r.Cycles, r.IPC, r.Retired, r.Remote, r.Local)
	}
	if phi != nil {
		fmt.Fprintf(&b, "%-14s %14d %8.2f %14d %10s %10s   (calibrated model)\n",
			"xeon-phi2", phi.Cycles, phi.IPC, phi.Instructions, "-", "-")
	}
	fmt.Fprintf(&b, "(* fastest; peak IPC = %d)\n", h/4)
	return b.String()
}

// ---- E4: cycle determinism ------------------------------------------------

// DetReport summarizes repeated runs of one program.
type DetReport struct {
	Variant  workloads.MatmulVariant
	Harts    int
	Runs     int
	Digests  []uint64
	Cycles   []uint64
	AllEqual bool
}

// RunDeterminism runs a variant `n` times with full event tracing and
// compares the digests and cycle counts. The repeats are independent
// whole-machine simulations, so they fan out across the worker pool; the
// comparison happens after all runs, in run order.
func RunDeterminism(v workloads.MatmulVariant, h, n int) (DetReport, error) {
	rep := DetReport{Variant: v, Harts: h, Runs: n, AllEqual: true}
	prog, err := workloads.BuildMatmul(v, h)
	if err != nil {
		return rep, err
	}
	type detRun struct {
		digest uint64
		cycles uint64
	}
	runs, err := runner.Map(Parallelism, n, func(int) (detRun, error) {
		cfg := workloads.MatmulConfig(h)
		sess, err := pool.Get(sim.Spec{
			Program:   prog,
			Config:    &cfg,
			MaxCycles: workloads.MaxMatmulCycles(h),
			Trace:     sim.TraceSpec{Digest: true},
		})
		if err != nil {
			return detRun{}, err
		}
		res, err := sess.Run()
		if err != nil {
			return detRun{}, err
		}
		r := detRun{digest: sess.Recorder().Digest(), cycles: res.Stats.Cycles}
		pool.Put(sess)
		return r, nil
	})
	if err != nil {
		return rep, err
	}
	for i, r := range runs {
		rep.Digests = append(rep.Digests, r.digest)
		rep.Cycles = append(rep.Cycles, r.cycles)
		if rep.Digests[i] != rep.Digests[0] || rep.Cycles[i] != rep.Cycles[0] {
			rep.AllEqual = false
		}
	}
	return rep, nil
}

// FormatDeterminism renders E4.
func FormatDeterminism(reports []DetReport) string {
	var b strings.Builder
	b.WriteString("E4 — cycle determinism: repeated runs, full event-trace digests\n")
	fmt.Fprintf(&b, "%-14s %6s %6s %18s %12s %s\n",
		"version", "harts", "runs", "digest", "cycles", "identical")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-14s %6d %6d %#18x %12d %v\n",
			r.Variant, r.Harts, r.Runs, r.Digests[0], r.Cycles[0], r.AllEqual)
	}
	return b.String()
}

// ---- E5: latency hiding through multithreading -----------------------------

// AblationRow is one point of the hart-count ablation.
type AblationRow struct {
	Harts   int // team size on a single core
	Cycles  uint64
	Retired uint64
	IPC     float64
}

// ablationSource runs k harts on one core, each over a dependent ALU
// chain, so the IPC reflects pure pipeline filling (no memory effects).
func ablationSource(k, iters int) string {
	return fmt.Sprintf(`
#define K %d
#define N %d
int out[4];
void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < K; t++) {
		int x;
		int i;
		x = t + 1;
		for (i = 0; i < N; i++) x = x * 5 + 7;
		out[t] = x;
	}
}
`, k, iters)
}

// RunHartAblation measures core IPC with 1..4 active harts (E5: the
// paper's claim that ~1 IPC/core needs all four harts; a single hart is
// limited by the fetch suspension after every instruction). The four
// team sizes compile sequentially and simulate in parallel.
func RunHartAblation(iters int) ([]AblationRow, error) {
	progs := make([]*asm.Program, lbp.HartsPerCore)
	for k := 1; k <= lbp.HartsPerCore; k++ {
		asmText, err := cc.BuildProgram(ablationSource(k, iters), cc.DefaultOptions())
		if err != nil {
			return nil, err
		}
		prog, err := asm.Assemble(asmText, asm.Options{})
		if err != nil {
			return nil, err
		}
		progs[k-1] = prog
	}
	return runner.Map(Parallelism, len(progs), func(i int) (AblationRow, error) {
		k := i + 1
		sess, err := sim.New(sim.Spec{
			Program:   progs[i],
			Cores:     1,
			MaxCycles: uint64(200*iters*k + 1_000_000),
		})
		if err != nil {
			return AblationRow{}, err
		}
		res, err := sess.Run()
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Harts:   k,
			Cycles:  res.Stats.Cycles,
			Retired: res.Stats.Retired,
			IPC:     res.Stats.IPC(),
		}, nil
	})
}

// FormatAblation renders E5.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("E5 — core IPC vs active harts (dependent ALU chains, one core)\n")
	fmt.Fprintf(&b, "%6s %12s %12s %8s\n", "harts", "cycles", "retired", "IPC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %12d %12d %8.2f\n", r.Harts, r.Cycles, r.Retired, r.IPC)
	}
	b.WriteString("(peak 1 IPC/core; a lone hart is bounded by the per-fetch suspension)\n")
	return b.String()
}

// ---- E7: locality of the placed two-phase program --------------------------

// LocalityRow reports the Figure 4 experiment.
type LocalityRow struct {
	Harts   int
	Cycles  uint64
	Remote  uint64
	Local   uint64
	AllZero bool // no routed accesses at all
}

// localitySource is the Figure 4 program: a set phase then a get phase
// over a vector whose chunk t lives in the bank of the core running
// hart t — every access is local.
func localitySource(h, chunk int) string {
	return fmt.Sprintf(`
#define H %d
#define CHUNK %d
#define RESW 128

int *vchunk(int t) { return lbp_bank_ptr(t >> 2) + RESW + (t & 3) * CHUNK; }

void main() {
	int t;
	#pragma omp parallel for
	for (t = 0; t < H; t++) {
		int *p; int i;
		p = vchunk(t);
		for (i = 0; i < CHUNK; i++) { *p = t + i; p = p + 1; }
	}
	#pragma omp parallel for
	for (t = 0; t < H; t++) {
		int *p; int i; int acc;
		p = vchunk(t);
		acc = 0;
		for (i = 0; i < CHUNK; i++) { acc = acc + *p; p = p + 1; }
		*vchunk(t) = acc;
	}
}
`, h, chunk)
}

// RunLocality runs the placed set/get program and reports the access mix.
func RunLocality(h, chunk int) (LocalityRow, error) {
	opt := cc.DefaultOptions()
	opt.Cores = h / 4
	opt.BankReserveBytes = 512
	asmText, err := cc.BuildProgram(localitySource(h, chunk), opt)
	if err != nil {
		return LocalityRow{}, err
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		return LocalityRow{}, err
	}
	sess, err := sim.New(sim.Spec{
		Program:   prog,
		Cores:     h / 4,
		MaxCycles: uint64(h*chunk*1000 + 1_000_000),
	})
	if err != nil {
		return LocalityRow{}, err
	}
	res, err := sess.Run()
	if err != nil {
		return LocalityRow{}, err
	}
	return LocalityRow{
		Harts:   h,
		Cycles:  res.Stats.Cycles,
		Remote:  res.Mem.SharedRemote,
		Local:   res.Mem.SharedLocal + res.Mem.LocalAccesses,
		AllZero: res.Mem.SharedRemote == 0,
	}, nil
}

// FormatLocality renders E7.
func FormatLocality(rows []LocalityRow) string {
	var b strings.Builder
	b.WriteString("E7 — Figure 4 placement: set/get phases on aligned harts and banks\n")
	fmt.Fprintf(&b, "%6s %12s %10s %10s %s\n", "harts", "cycles", "remote", "local", "all-local")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %12d %10d %10d %v\n", r.Harts, r.Cycles, r.Remote, r.Local, r.AllZero)
	}
	return b.String()
}
