package figures

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestHopLatAblationMonotone(t *testing.T) {
	pts, err := RunHopLatAblation(workloads.Base, 16, []int{1, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycles <= pts[i-1].Cycles {
			t.Errorf("slower links must cost cycles: %+v", pts)
		}
		if pts[i].Retired != pts[0].Retired {
			t.Errorf("timing ablation must not change the instruction count: %+v", pts)
		}
	}
}

func TestBankLatAblationMonotone(t *testing.T) {
	pts, err := RunBankLatAblation(workloads.Base, 16, []int{1, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycles <= pts[i-1].Cycles {
			t.Errorf("slower banks must cost cycles: %+v", pts)
		}
	}
}

func TestMemOrderAblation(t *testing.T) {
	pts, err := RunMemOrderAblation(workloads.Copy, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points: %+v", pts)
	}
	strict, relaxed := pts[0], pts[1]
	if relaxed.Cycles > strict.Cycles {
		t.Errorf("relaxed issue (%d) must not be slower than strict (%d)",
			relaxed.Cycles, strict.Cycles)
	}
	if strict.Retired != relaxed.Retired {
		t.Errorf("ordering must not change the instruction count: %+v", pts)
	}
}

func TestFULatAblationOffCriticalPath(t *testing.T) {
	// The matmul thread does no division in its inner loops (base
	// version); a slower divider must barely move the cycle count.
	pts, err := RunFULatAblation(workloads.Base, 16, []int{17, 68})
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := float64(pts[1].Cycles), float64(pts[0].Cycles)
	if slow > fast*1.05 {
		t.Errorf("divider latency is off the critical path: %v vs %v", slow, fast)
	}
}

func TestFormatAblation(t *testing.T) {
	out := FormatAblationPoints("hop sweep", []AblationPoint{
		{Label: "hop=1", Cycles: 100, Retired: 50, IPC: 0.5},
	})
	if !strings.Contains(out, "hop=1") || !strings.Contains(out, "cycles") {
		t.Errorf("output: %s", out)
	}
}

func TestChipAblation(t *testing.T) {
	pts, err := RunChipAblation(workloads.Base, 16, []int{0, 2, 1}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points: %+v", pts)
	}
	// finer chip splits cross more edges: cycles must grow
	if !(pts[0].Cycles < pts[1].Cycles && pts[1].Cycles < pts[2].Cycles) {
		t.Errorf("cycles must grow with chip splitting: %+v", pts)
	}
	for _, p := range pts[1:] {
		if p.Retired != pts[0].Retired {
			t.Errorf("chip topology must not change the instruction count: %+v", pts)
		}
	}
}
