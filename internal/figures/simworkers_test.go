package figures

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/perf"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Intra-run equivalence matrix: the sharded cycle loop (SimWorkers) and
// idle-cycle fast-forward are host-side accelerations, so every simulated
// result — cycles, retired, digests, perf snapshots — must be bit-identical
// across {workers 1, 2, GOMAXPROCS} × {fast-forward on/off} × {profiling
// on/off}. Run under -race in tier-1, this also asserts the compute phase
// shares no mutable state across shards.

// withSimConfig runs f with the intra-run knobs set, restoring them after.
func withSimConfig(t *testing.T, workers int, ffwd, profile bool, f func()) {
	t.Helper()
	oldW, oldF, oldP := SimWorkers, FastForward, Profile
	SimWorkers, FastForward, Profile = workers, ffwd, profile
	defer func() { SimWorkers, FastForward, Profile = oldW, oldF, oldP }()
	f()
}

func TestSimWorkersEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence matrix is long")
	}
	const h = 64 // 16 cores: enough active cores to engage the shard pool
	workerVals := []int{1, 2}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 {
		workerVals = append(workerVals, g)
	}
	var base *MatmulRow
	var basePerf *perf.Snapshot
	for _, w := range workerVals {
		for _, ffwd := range []bool{false, true} {
			for _, profile := range []bool{false, true} {
				var row MatmulRow
				var err error
				withSimConfig(t, w, ffwd, profile, func() {
					row, err = RunMatmul(workloads.Distributed, h)
				})
				if err != nil {
					t.Fatalf("workers=%d ffwd=%v profile=%v: %v", w, ffwd, profile, err)
				}
				snap := row.Perf
				row.Perf = nil // compared separately: nil unless profiling
				if base == nil {
					base = &row
				} else if !reflect.DeepEqual(*base, row) {
					t.Errorf("workers=%d ffwd=%v profile=%v: row diverged:\n got %+v\nwant %+v",
						w, ffwd, profile, row, *base)
				}
				if !profile {
					continue
				}
				if snap == nil {
					t.Fatalf("workers=%d ffwd=%v: no perf snapshot with profiling on", w, ffwd)
				}
				if basePerf == nil {
					basePerf = snap
				} else if !reflect.DeepEqual(basePerf, snap) {
					t.Errorf("workers=%d ffwd=%v: perf snapshot diverged", w, ffwd)
				}
			}
		}
	}
}

// sensorOutcome is everything observable from one sensor-fusion run.
type sensorOutcome struct {
	cycles  uint64
	retired uint64
	digest  uint64
	events  uint64
	skipped uint64 // Stats.FastForwarded — excluded from equivalence
	writes  []lbp.ActuatorWrite
}

// runSensorFusion runs the Figure 16 sensor-fusion program with the given
// host knobs and returns the outcome.
func runSensorFusion(t *testing.T, prog *asm.Program, workers int, ffwd bool, extra lbp.Device) sensorOutcome {
	t.Helper()
	m := lbp.New(lbp.DefaultConfig(1))
	rec := trace.New(0)
	m.SetTrace(rec)
	m.SetSimWorkers(workers)
	m.SetFastForward(ffwd)
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.AddDevice(&lbp.Sensor{
			ValueAddr: prog.Symbols["sval"] + uint32(4*i),
			FlagAddr:  prog.Symbols["sflag"] + uint32(4*i),
			Events: []lbp.SensorEvent{
				{Cycle: 1000 + uint64(101*i), Value: uint32(10 * (i + 1))},
				{Cycle: 4000 + uint64(57*i), Value: uint32(20 * (i + 1))},
			},
		})
	}
	act := &lbp.Actuator{
		ValueAddr: prog.Symbols["factuator"],
		SeqAddr:   prog.Symbols["aseq"],
	}
	m.AddDevice(act)
	if extra != nil {
		m.AddDevice(extra)
	}
	res, err := m.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return sensorOutcome{
		cycles:  res.Stats.Cycles,
		retired: res.Stats.Retired,
		digest:  rec.Digest(),
		events:  rec.Count(),
		skipped: res.Stats.FastForwarded,
		writes:  act.Writes,
	}
}

// opaqueDevice implements lbp.Device but not lbp.Armed: its presence must
// inhibit fast-forward entirely (the machine cannot know when it acts).
type opaqueDevice struct{}

func (opaqueDevice) Step(m *lbp.Machine, now uint64) {}

func TestSensorFastForwardEquivalence(t *testing.T) {
	asmText, err := cc.BuildProgram(workloads.SensorFusionSource(2), cc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runSensorFusion(t, prog, 1, false, nil)
	if len(baseline.writes) == 0 {
		t.Fatal("sensor fusion produced no actuator writes")
	}
	for _, w := range []int{1, 2} {
		for _, ffwd := range []bool{false, true} {
			got := runSensorFusion(t, prog, w, ffwd, nil)
			skipped := got.skipped
			got.skipped = baseline.skipped
			if !reflect.DeepEqual(got, baseline) {
				t.Errorf("workers=%d ffwd=%v: outcome diverged:\n got %+v\nwant %+v",
					w, ffwd, got, baseline)
			}
			if ffwd && skipped == 0 {
				t.Errorf("workers=%d: fast-forward never engaged on a device-idle workload", w)
			}
		}
	}
	// A device without NextArm makes idle gaps unskippable: the machine
	// must fall back to single-stepping (and still agree on the results).
	opaque := runSensorFusion(t, prog, 1, true, opaqueDevice{})
	if opaque.skipped != 0 {
		t.Errorf("fast-forward engaged despite a device without NextArm (skipped %d cycles)", opaque.skipped)
	}
	opaque.skipped = baseline.skipped
	if !reflect.DeepEqual(opaque, baseline) {
		t.Errorf("opaque device changed simulated results:\n got %+v\nwant %+v", opaque, baseline)
	}
}
