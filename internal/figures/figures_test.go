package figures

import (
	"strings"
	"testing"

	"repro/internal/phimodel"
	"repro/internal/workloads"
)

func TestFigure19ShapeHolds(t *testing.T) {
	rows, err := RunMatmulFigure(16)
	if err != nil {
		t.Fatal(err)
	}
	by := map[workloads.MatmulVariant]MatmulRow{}
	for _, r := range rows {
		by[r.Variant] = r
	}
	// Paper, Figure 19: on 4 cores the base version is the fastest even
	// though tiled has the highest IPC; tiled is about twice slower.
	for _, v := range workloads.Variants {
		if v == workloads.Base {
			continue
		}
		if by[workloads.Base].Cycles > by[v].Cycles {
			t.Errorf("base (%d cycles) must be fastest at 16 harts, %s took %d",
				by[workloads.Base].Cycles, v, by[v].Cycles)
		}
	}
	if by[workloads.Tiled].IPC <= by[workloads.Base].IPC {
		t.Errorf("tiled IPC (%.2f) must exceed base IPC (%.2f)",
			by[workloads.Tiled].IPC, by[workloads.Base].IPC)
	}
	if by[workloads.Tiled].Cycles < 2*by[workloads.Base].Cycles {
		t.Logf("note: tiled/base cycle ratio %.2f (paper: ~2)",
			float64(by[workloads.Tiled].Cycles)/float64(by[workloads.Base].Cycles))
	}
	out := FormatMatmulFigure(rows, nil)
	if !strings.Contains(out, "Figure 19") || !strings.Contains(out, "base") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestFigure20ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunMatmulFigure(64)
	if err != nil {
		t.Fatal(err)
	}
	by := map[workloads.MatmulVariant]MatmulRow{}
	for _, r := range rows {
		by[r.Variant] = r
	}
	// Paper, Figure 20: at 16 cores the copy version is the fastest and
	// base is clearly slower than copy.
	if by[workloads.Copy].Cycles > by[workloads.Base].Cycles {
		t.Errorf("copy (%d) must beat base (%d) at 64 harts",
			by[workloads.Copy].Cycles, by[workloads.Base].Cycles)
	}
	if by[workloads.Copy].IPC <= by[workloads.Base].IPC {
		t.Errorf("copy IPC (%.2f) must exceed base IPC (%.2f)",
			by[workloads.Copy].IPC, by[workloads.Base].IPC)
	}
}

func TestCycleDeterminismAcrossVariants(t *testing.T) {
	reports := []DetReport{}
	for _, v := range []workloads.MatmulVariant{workloads.Base, workloads.Tiled} {
		rep, err := RunDeterminism(v, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AllEqual {
			t.Errorf("%s: digests %v cycles %v differ across runs", v, rep.Digests, rep.Cycles)
		}
		reports = append(reports, rep)
	}
	out := FormatDeterminism(reports)
	if !strings.Contains(out, "true") {
		t.Errorf("report:\n%s", out)
	}
}

func TestHartAblationScales(t *testing.T) {
	rows, err := RunHartAblation(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %+v", rows)
	}
	// IPC must increase with the number of active harts, and four harts
	// must at least double the single-hart IPC (the paper: at least two
	// full harts are necessary to fill the pipeline).
	for i := 1; i < 4; i++ {
		if rows[i].IPC <= rows[i-1].IPC {
			t.Errorf("IPC must grow with harts: %+v", rows)
		}
	}
	if rows[3].IPC < 2*rows[0].IPC {
		t.Errorf("4-hart IPC %.2f should at least double 1-hart IPC %.2f",
			rows[3].IPC, rows[0].IPC)
	}
	if rows[0].IPC > 0.55 {
		t.Errorf("a single hart cannot exceed ~0.5 IPC (fetch suspension), got %.2f", rows[0].IPC)
	}
}

func TestLocalityAllLocal(t *testing.T) {
	row, err := RunLocality(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !row.AllZero {
		t.Errorf("placed set/get must make no routed accesses: %+v", row)
	}
	if row.Local == 0 {
		t.Error("the program must access memory")
	}
}

func TestPhiRowInFigure21Format(t *testing.T) {
	rows := []MatmulRow{{Variant: workloads.Tiled, Harts: 256, Cycles: 3_400_000,
		Retired: 200_000_000, IPC: 60}}
	phi := phimodel.Default().TiledMatmul(256)
	out := FormatMatmulFigure(rows, &phi)
	if !strings.Contains(out, "xeon-phi2") || !strings.Contains(out, "Figure 21") {
		t.Errorf("output:\n%s", out)
	}
}

func TestResponseTimeBounded(t *testing.T) {
	rep, err := RunResponseSweep(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) != 24 {
		t.Fatalf("samples: %v", rep.Samples)
	}
	// The paper: "within a few cycles it is received ... easy to bound".
	// The delay must be small (well under a thousand cycles end to end,
	// including the parallel-sections join and the fusion arithmetic)
	// and its jitter bounded by one polling-loop period.
	if rep.Max > 2000 {
		t.Errorf("response delay too large: %+v", rep)
	}
	if rep.Jitter() > 64 {
		t.Errorf("jitter %d exceeds a polling period: %v", rep.Jitter(), rep.Samples)
	}
	out := FormatResponse(rep)
	if !strings.Contains(out, "jitter") {
		t.Errorf("format: %s", out)
	}
}

// Regression test: a non-positive phase count used to slip through and
// produce a zero-sample report whose Min stayed at ^uint64(0), so Jitter
// wrapped around to ~1.8e19 cycles instead of failing.
func TestResponseSweepRejectsNonPositivePhases(t *testing.T) {
	for _, phases := range []int{0, -3} {
		rep, err := RunResponseSweep(phases)
		if err == nil {
			t.Fatalf("phases=%d: no error (report %+v, jitter %d)", phases, rep, rep.Jitter())
		}
		if !strings.Contains(err.Error(), "at least one phase") {
			t.Errorf("phases=%d: unexpected error %v", phases, err)
		}
	}
}
