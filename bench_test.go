// Package repro_test holds the benchmark harness: one benchmark per
// table/figure of the paper's evaluation (Figures 19, 20, 21) plus the
// companion experiments of DESIGN.md. Each benchmark runs the complete
// experiment per iteration and reports the simulated machine's cycles,
// retired instructions and IPC as custom metrics, so the paper's numbers
// can be regenerated with:
//
//	go test -bench=. -benchmem
//
// Figure 21 simulates a 64-core, 256-hart machine and takes minutes per
// variant; it is skipped under -short.
package repro_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/figures"
	"repro/internal/lbp"
	"repro/internal/phimodel"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// benchVariant runs one matmul variant at h harts, reporting the
// simulated metrics.
func benchVariant(b *testing.B, v workloads.MatmulVariant, h int) {
	for i := 0; i < b.N; i++ {
		row, err := figures.RunMatmul(v, h)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(row.Cycles), "lbp-cycles")
		b.ReportMetric(float64(row.Retired), "lbp-retired")
		b.ReportMetric(row.IPC, "lbp-IPC")
	}
}

// BenchmarkFigure19 regenerates Figure 19: the five versions on a 4-core
// (16-hart) LBP.
func BenchmarkFigure19(b *testing.B) {
	for _, v := range workloads.Variants {
		b.Run(string(v), func(b *testing.B) { benchVariant(b, v, 16) })
	}
}

// BenchmarkFigure20 regenerates Figure 20: the five versions on a 16-core
// (64-hart) LBP.
func BenchmarkFigure20(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	for _, v := range workloads.Variants {
		b.Run(string(v), func(b *testing.B) { benchVariant(b, v, 64) })
	}
}

// BenchmarkFigure21 regenerates Figure 21: the five versions on a 64-core
// (256-hart) LBP, plus the calibrated Xeon-Phi2 model for the tiled
// version.
func BenchmarkFigure21(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode: the 64-core runs take minutes")
	}
	for _, v := range workloads.Variants {
		b.Run(string(v), func(b *testing.B) { benchVariant(b, v, 256) })
	}
	b.Run("xeon-phi2-model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := phimodel.Default().TiledMatmul(256)
			b.ReportMetric(float64(r.Cycles), "phi-cycles")
			b.ReportMetric(float64(r.Instructions), "phi-retired")
			b.ReportMetric(r.IPC, "phi-IPC")
		}
	})
}

// BenchmarkDeterminism measures E4: three traced runs compared by digest.
func BenchmarkDeterminism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.RunDeterminism(workloads.Base, 16, 3)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllEqual {
			b.Fatal("runs diverged")
		}
	}
}

// BenchmarkHartAblation measures E5: core IPC with 1..4 active harts.
func BenchmarkHartAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.RunHartAblation(5000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.IPC, "IPC-"+itoa(r.Harts)+"hart")
		}
	}
}

// BenchmarkLocality measures E7: the placed two-phase set/get program.
func BenchmarkLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := figures.RunLocality(16, 128)
		if err != nil {
			b.Fatal(err)
		}
		if !row.AllZero {
			b.Fatal("remote accesses in the placed program")
		}
		b.ReportMetric(float64(row.Cycles), "lbp-cycles")
	}
}

func itoa(v int) string {
	return string(rune('0' + v))
}

// BenchmarkAblations measures the design-choice sweeps of DESIGN.md:
// router hop latency, bank latency, per-hart memory issue order and
// divider latency, all on the 16-hart base/copy versions.
func BenchmarkAblations(b *testing.B) {
	b.Run("hop-latency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := figures.RunHopLatAblation(workloads.Base, 16, []int{1, 2, 4})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pts {
				b.ReportMetric(float64(p.Cycles), "cycles-"+p.Label)
			}
		}
	})
	b.Run("bank-latency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := figures.RunBankLatAblation(workloads.Base, 16, []int{1, 3, 6})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pts {
				b.ReportMetric(float64(p.Cycles), "cycles-"+p.Label)
			}
		}
	})
	b.Run("mem-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := figures.RunMemOrderAblation(workloads.Copy, 16)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pts {
				b.ReportMetric(float64(p.Cycles), "cycles-"+p.Label)
			}
		}
	})
	b.Run("div-latency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := figures.RunFULatAblation(workloads.Base, 16, []int{17, 68})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pts {
				b.ReportMetric(float64(p.Cycles), "cycles-"+p.Label)
			}
		}
	})
}

// BenchmarkSensorIO measures E6: the Figure 16 deterministic I/O run.
func BenchmarkSensorIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := workloads.SensorFusionSource(1)
		asmText, err := cc.BuildProgram(src, cc.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		prog, err := asm.Assemble(asmText, asm.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var devices []lbp.Device
		for s := 0; s < 4; s++ {
			devices = append(devices, &lbp.Sensor{
				ValueAddr: prog.Symbols["sval"] + uint32(4*s),
				FlagAddr:  prog.Symbols["sflag"] + uint32(4*s),
				Events:    []lbp.SensorEvent{{Cycle: 500 + uint64(97*s), Value: uint32(s + 1)}},
			})
		}
		sess, err := sim.New(sim.Spec{
			Program:   prog,
			Cores:     1,
			Devices:   devices,
			MaxCycles: 10_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Cycles), "lbp-cycles")
	}
}
