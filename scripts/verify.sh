#!/bin/sh
# verify.sh — the tier-1 verification gate (see ROADMAP.md).
#
#   scripts/verify.sh            build + vet + gofmt + tests + race subset
#   scripts/verify.sh -bench N   ...then regenerate figure N and benchdiff
#                                it against the recorded BENCH_figN.json
#                                (fails on any simulated-result change).
set -eu
cd "$(dirname "$0")/.."

fig=""
if [ "${1:-}" = "-bench" ]; then
    fig="${2:?usage: scripts/verify.sh [-bench N]}"
fi

go build ./...
go vet ./...
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go test ./...
go test -race ./internal/runner ./internal/figures ./internal/sim ./cmd/lbp-bench

if [ -n "$fig" ]; then
    go run ./cmd/lbp-bench -fig "$fig" -outdir out/
    go run ./cmd/benchdiff "BENCH_fig$fig.json" "out/BENCH_fig$fig.json"
fi

echo "verify: OK"
