#!/bin/sh
# verify.sh — the tier-1 verification gate (see ROADMAP.md).
#
#   scripts/verify.sh            build + vet + gofmt + tests + race subset
#                                + lbp-serve smoke test
#   scripts/verify.sh -bench N   ...then regenerate figure N and benchdiff
#                                it against the recorded BENCH_figN.json
#                                (fails on any simulated-result change).
set -eu
cd "$(dirname "$0")/.."

fig=""
if [ "${1:-}" = "-bench" ]; then
    fig="${2:?usage: scripts/verify.sh [-bench N]}"
fi

go build ./...
go vet ./...
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go test ./...
go test -race ./internal/runner ./internal/figures ./internal/sim ./internal/serve ./internal/cache ./internal/rpc ./internal/dispatch ./internal/fuzzgen ./cmd/lbp-bench

# Smoke-test the serving daemon over real HTTP: ephemeral port, the
# same job twice (the repeat must be a cache hit with an identical
# digest), /healthz, then a clean SIGTERM drain.
smokedir=$(mktemp -d)
servepid="" w1pid="" w2pid="" coordpid=""
trap 'kill $servepid $w1pid $w2pid $coordpid 2>/dev/null || true; rm -rf "$smokedir"' EXIT INT TERM
go build -o "$smokedir/lbp-serve" ./cmd/lbp-serve
"$smokedir/lbp-serve" -addr 127.0.0.1:0 -addrfile "$smokedir/addr" \
    -cachedir "$smokedir/cache" \
    >"$smokedir/serve.log" 2>&1 &
servepid=$!
i=0
while [ ! -s "$smokedir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "lbp-serve never wrote its address:" >&2
        cat "$smokedir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$smokedir/addr")
curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS -X POST "http://$addr/jobs" \
    -d '{"source":"main:\n\tli ra, 0\n\tli t0, -1\n\tp_ret\n","lang":"s","cores":1,"digest":true}' \
    >"$smokedir/job.json"
grep -q '"status": "ok"' "$smokedir/job.json"
grep -q '"halt": "exit"' "$smokedir/job.json"
# The identical job again: served from the result cache (no second
# completion), byte-identical digest, marked cached.
curl -fsS -X POST "http://$addr/jobs" \
    -d '{"source":"main:\n\tli ra, 0\n\tli t0, -1\n\tp_ret\n","lang":"s","cores":1,"digest":true}' \
    >"$smokedir/job2.json"
grep -q '"cached": true' "$smokedir/job2.json"
digest1=$(grep '"digest"' "$smokedir/job.json")
digest2=$(grep '"digest"' "$smokedir/job2.json")
if [ "$digest1" != "$digest2" ] || [ -z "$digest1" ]; then
    echo "cached digest mismatch: '$digest1' vs '$digest2'" >&2
    exit 1
fi
curl -fsS "http://$addr/metrics" >"$smokedir/metrics.txt"
grep -q '^lbp_serve_jobs_completed_total 1$' "$smokedir/metrics.txt"
grep -q '^lbp_serve_cache_hits_total 1$' "$smokedir/metrics.txt"
kill -TERM "$servepid"
wait "$servepid"
grep -q "drained" "$smokedir/serve.log"
echo "verify: lbp-serve smoke OK"

# Distributed smoke: a coordinator sharding jobs over two worker
# processes via JSON-RPC. The same job is run cold, repeated (no result
# cache here, so the repeat re-executes on a warm affine machine), and
# again after one worker is killed (failing over to the survivor) —
# all three responses must carry byte-identical deterministic fields.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "$2 never wrote its address:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}
"$smokedir/lbp-serve" -worker 127.0.0.1:0 -addrfile "$smokedir/w1.addr" \
    >"$smokedir/w1.log" 2>&1 &
w1pid=$!
"$smokedir/lbp-serve" -worker 127.0.0.1:0 -addrfile "$smokedir/w2.addr" \
    >"$smokedir/w2.log" 2>&1 &
w2pid=$!
wait_addr "$smokedir/w1.addr" "worker 1" "$smokedir/w1.log"
wait_addr "$smokedir/w2.addr" "worker 2" "$smokedir/w2.log"
"$smokedir/lbp-serve" -addr 127.0.0.1:0 -addrfile "$smokedir/coord.addr" \
    -backends "$(cat "$smokedir/w1.addr"),$(cat "$smokedir/w2.addr")" \
    >"$smokedir/coord.log" 2>&1 &
coordpid=$!
wait_addr "$smokedir/coord.addr" "coordinator" "$smokedir/coord.log"
caddr=$(cat "$smokedir/coord.addr")
djob='{"source":"main:\n\tli t1, 60000\nloop:\n\taddi t1, t1, -1\n\tbne t1, zero, loop\n\tli ra, 0\n\tli t0, -1\n\tp_ret\n","lang":"s","cores":1,"digest":true}'
curl -fsS -X POST "http://$caddr/jobs" -d "$djob" >"$smokedir/djob1.json"
grep -q '"status": "ok"' "$smokedir/djob1.json"
grep -q '"worker":' "$smokedir/djob1.json"
curl -fsS -X POST "http://$caddr/jobs" -d "$djob" >"$smokedir/djob2.json"
grep -q '"status": "ok"' "$smokedir/djob2.json"
kill -TERM "$w1pid"
wait "$w1pid" 2>/dev/null || true
# Several posts after the kill: uncacheable jobs route by ID, so some
# of these land on the dead backend and must fail over to the survivor.
for n in 3 4 5; do
    curl -fsS -X POST "http://$caddr/jobs" -d "$djob" >"$smokedir/djob$n.json"
    grep -q '"status": "ok"' "$smokedir/djob$n.json"
done
det1=$(grep -E '"(digest|cycles|retired)"' "$smokedir/djob1.json")
if [ -z "$det1" ]; then
    echo "distributed smoke: no deterministic fields in djob1.json" >&2
    exit 1
fi
for n in 2 3 4 5; do
    detn=$(grep -E '"(digest|cycles|retired)"' "$smokedir/djob$n.json")
    if [ "$det1" != "$detn" ]; then
        echo "distributed determinism mismatch across worker kill (job $n):" >&2
        printf '%s\n---\n%s\n' "$det1" "$detn" >&2
        exit 1
    fi
done
curl -fsS "http://$caddr/metrics" >"$smokedir/dmetrics.txt"
grep -q '^lbp_serve_dispatch_jobs_total 5$' "$smokedir/dmetrics.txt"
grep -q '^lbp_serve_dispatch_completed_total 5$' "$smokedir/dmetrics.txt"
kill -TERM "$coordpid"
wait "$coordpid"
grep -q "drained" "$smokedir/coord.log"
kill -TERM "$w2pid"
wait "$w2pid" 2>/dev/null || true
echo "verify: distributed smoke OK"

# Determinism fuzzing smoke: a small fixed-seed campaign across the
# {cores} x {-simworkers} x {-ffwd} matrix must find zero divergences
# from the sequential reference evaluator.
go run ./cmd/lbp-fuzz -n 25 -seed 1 -crashdir "$smokedir/fuzz"
echo "verify: lbp-fuzz smoke OK"

# 256-core geometry smoke: a small campaign with the 256-core rung of
# the cores ladder enabled, so the generalized router hierarchy and the
# sharded commit lanes are exercised at depth on every verify run.
go run ./cmd/lbp-fuzz -n 5 -seed 2 -maxcores 256 -crashdir "$smokedir/fuzz256"
echo "verify: 256-core smoke OK"

if [ -n "$fig" ]; then
    go run ./cmd/lbp-bench -fig "$fig" -outdir out/
    go run ./cmd/benchdiff "BENCH_fig$fig.json" "out/BENCH_fig$fig.json"
    # Host-side interpreter throughput (cycles/s): steady-state numbers
    # from the Go microbenchmarks, for eyeballing against EXPERIMENTS E17.
    go test ./internal/lbp -run '^$' -bench 'BenchmarkMachineStep|BenchmarkFigRow|BenchmarkPhaseBCommit' -benchtime 1s
fi

echo "verify: OK"
