#!/bin/sh
# verify.sh — the tier-1 verification gate (see ROADMAP.md).
#
#   scripts/verify.sh            build + vet + gofmt + tests + race subset
#                                + lbp-serve smoke test
#   scripts/verify.sh -bench N   ...then regenerate figure N and benchdiff
#                                it against the recorded BENCH_figN.json
#                                (fails on any simulated-result change).
set -eu
cd "$(dirname "$0")/.."

fig=""
if [ "${1:-}" = "-bench" ]; then
    fig="${2:?usage: scripts/verify.sh [-bench N]}"
fi

go build ./...
go vet ./...
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go test ./...
go test -race ./internal/runner ./internal/figures ./internal/sim ./internal/serve ./internal/cache ./internal/fuzzgen ./cmd/lbp-bench

# Smoke-test the serving daemon over real HTTP: ephemeral port, the
# same job twice (the repeat must be a cache hit with an identical
# digest), /healthz, then a clean SIGTERM drain.
smokedir=$(mktemp -d)
trap 'kill "$servepid" 2>/dev/null || true; rm -rf "$smokedir"' EXIT INT TERM
go build -o "$smokedir/lbp-serve" ./cmd/lbp-serve
"$smokedir/lbp-serve" -addr 127.0.0.1:0 -addrfile "$smokedir/addr" \
    -cachedir "$smokedir/cache" \
    >"$smokedir/serve.log" 2>&1 &
servepid=$!
i=0
while [ ! -s "$smokedir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "lbp-serve never wrote its address:" >&2
        cat "$smokedir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$smokedir/addr")
curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS -X POST "http://$addr/jobs" \
    -d '{"source":"main:\n\tli ra, 0\n\tli t0, -1\n\tp_ret\n","lang":"s","cores":1,"digest":true}' \
    >"$smokedir/job.json"
grep -q '"status": "ok"' "$smokedir/job.json"
grep -q '"halt": "exit"' "$smokedir/job.json"
# The identical job again: served from the result cache (no second
# completion), byte-identical digest, marked cached.
curl -fsS -X POST "http://$addr/jobs" \
    -d '{"source":"main:\n\tli ra, 0\n\tli t0, -1\n\tp_ret\n","lang":"s","cores":1,"digest":true}' \
    >"$smokedir/job2.json"
grep -q '"cached": true' "$smokedir/job2.json"
digest1=$(grep '"digest"' "$smokedir/job.json")
digest2=$(grep '"digest"' "$smokedir/job2.json")
if [ "$digest1" != "$digest2" ] || [ -z "$digest1" ]; then
    echo "cached digest mismatch: '$digest1' vs '$digest2'" >&2
    exit 1
fi
curl -fsS "http://$addr/metrics" >"$smokedir/metrics.txt"
grep -q '^lbp_serve_jobs_completed_total 1$' "$smokedir/metrics.txt"
grep -q '^lbp_serve_cache_hits_total 1$' "$smokedir/metrics.txt"
kill -TERM "$servepid"
wait "$servepid"
grep -q "drained" "$smokedir/serve.log"
echo "verify: lbp-serve smoke OK"

# Determinism fuzzing smoke: a small fixed-seed campaign across the
# {cores} x {-simworkers} x {-ffwd} matrix must find zero divergences
# from the sequential reference evaluator.
go run ./cmd/lbp-fuzz -n 25 -seed 1 -crashdir "$smokedir/fuzz"
echo "verify: lbp-fuzz smoke OK"

# 256-core geometry smoke: a small campaign with the 256-core rung of
# the cores ladder enabled, so the generalized router hierarchy and the
# sharded commit lanes are exercised at depth on every verify run.
go run ./cmd/lbp-fuzz -n 5 -seed 2 -maxcores 256 -crashdir "$smokedir/fuzz256"
echo "verify: 256-core smoke OK"

if [ -n "$fig" ]; then
    go run ./cmd/lbp-bench -fig "$fig" -outdir out/
    go run ./cmd/benchdiff "BENCH_fig$fig.json" "out/BENCH_fig$fig.json"
    # Host-side interpreter throughput (cycles/s): steady-state numbers
    # from the Go microbenchmarks, for eyeballing against EXPERIMENTS E17.
    go test ./internal/lbp -run '^$' -bench 'BenchmarkMachineStep|BenchmarkFigRow|BenchmarkPhaseBCommit' -benchtime 1s
fi

echo "verify: OK"
