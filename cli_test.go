package repro_test

// End-to-end tests of the command-line tools: each binary is built with
// `go build` into a temp dir and driven on the sample programs in
// testdata/.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTool compiles one cmd into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: builds four binaries")
	}
	dir := t.TempDir()
	lbpcc := buildTool(t, dir, "lbp-cc")
	lbpasm := buildTool(t, dir, "lbp-asm")
	lbprun := buildTool(t, dir, "lbp-run")

	// lbp-cc: MiniC -> assembly
	asmPath := filepath.Join(dir, "vecsum.s")
	runTool(t, lbpcc, "-o", asmPath, "-cores", "2", "testdata/vecsum.c")
	asmText, err := os.ReadFile(asmPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(asmText), "LBP_parallel_start") {
		t.Error("compiled output must embed the detomp runtime")
	}

	// lbp-asm: assembly -> image, plus a listing
	imgPath := filepath.Join(dir, "vecsum.img")
	runTool(t, lbpasm, "-o", imgPath, asmPath)
	listing := runTool(t, lbpasm, "-list", asmPath)
	if !strings.Contains(listing, "p_fc") || !strings.Contains(listing, "main") {
		t.Errorf("listing:\n%.400s", listing)
	}

	// lbp-run on all three input forms
	for _, input := range []string{"testdata/vecsum.c", asmPath, imgPath} {
		out := runTool(t, lbprun, "-cores", "2", "-digest", input)
		if !strings.Contains(out, "halt:     exit") {
			t.Errorf("%s: %s", input, out)
		}
		if !strings.Contains(out, "forks:    7") {
			t.Errorf("%s must fork 7 team members:\n%s", input, out)
		}
		if !strings.Contains(out, "digest:") {
			t.Errorf("%s: digest missing:\n%s", input, out)
		}
	}

	// the digest is identical across runs and input forms
	d1 := digestLine(t, runTool(t, lbprun, "-cores", "2", "-digest", asmPath))
	d2 := digestLine(t, runTool(t, lbprun, "-cores", "2", "-digest", imgPath))
	if d1 != d2 {
		t.Errorf("digests differ across input forms: %s vs %s", d1, d2)
	}

	// plain assembly program
	out := runTool(t, lbprun, "-cores", "1", "testdata/hello.s")
	if !strings.Contains(out, "halt:     exit") {
		t.Errorf("hello.s: %s", out)
	}
}

func digestLine(t *testing.T, out string) string {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "digest:") {
			return l
		}
	}
	t.Fatalf("no digest in:\n%s", out)
	return ""
}

func TestCLIBenchQuickFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "lbp-bench")
	out := runTool(t, bench, "-fig", "19")
	for _, want := range []string{"Figure 19", "base", "tiled", "fastest"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	out = runTool(t, bench, "-fig", "locality")
	if !strings.Contains(out, "true") {
		t.Errorf("locality output:\n%s", out)
	}
}

// TestCLIBenchUnknownFig: a typo'd -fig must not silently run nothing and
// exit 0; it lists the valid experiments and exits 2.
func TestCLIBenchUnknownFig(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "lbp-bench")
	out, err := exec.Command(bench, "-fig", "99").CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("-fig 99: err = %v, want exit code 2\n%s", err, out)
	}
	for _, want := range []string{"unknown -fig", "19", "response", "locality"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("error message missing %q:\n%s", want, out)
		}
	}
}

// TestCLIBenchParallelIdentical: the same figure run sequentially and on a
// worker pool must emit byte-identical JSON rows (digests included), and
// both runs must leave a parseable BENCH_fig19.json behind.
func TestCLIBenchParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "lbp-bench")
	outputs := make(map[string][]byte)
	for _, par := range []string{"1", "0"} {
		cmd := exec.Command(bench, "-fig", "19", "-json", "-parallel", par, "-outdir", dir)
		cmd.Stderr = nil
		stdout, err := cmd.Output()
		if err != nil {
			t.Fatalf("-parallel %s: %v", par, err)
		}
		outputs[par] = stdout
	}
	if string(outputs["1"]) != string(outputs["0"]) {
		t.Errorf("-parallel 0 JSON differs from -parallel 1:\n%s\n---\n%s", outputs["0"], outputs["1"])
	}
	var rec struct {
		Figure int `json:"figure"`
		Rows   []struct {
			Variant string `json:"Variant"`
			Cycles  uint64 `json:"Cycles"`
			Digest  uint64 `json:"Digest"`
		} `json:"rows"`
		WallTimeSec float64 `json:"wallTimeSec"`
		Host        struct {
			NumCPU    int    `json:"numCPU"`
			GoVersion string `json:"goVersion"`
		} `json:"host"`
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_fig19.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("BENCH_fig19.json: %v", err)
	}
	if rec.Figure != 19 || len(rec.Rows) != 5 {
		t.Errorf("record: figure %d, %d rows", rec.Figure, len(rec.Rows))
	}
	for _, r := range rec.Rows {
		if r.Cycles == 0 || r.Digest == 0 {
			t.Errorf("row %s: cycles %d digest %#x", r.Variant, r.Cycles, r.Digest)
		}
	}
	if rec.WallTimeSec <= 0 || rec.Host.NumCPU < 1 || rec.Host.GoVersion == "" {
		t.Errorf("host/wall metadata incomplete: %+v", rec)
	}
}

// TestCLIRunStats: -stats prints the cycle-attribution report and
// -chrome leaves a loadable trace-event JSON behind, without changing
// the run (same digest as a plain run).
func TestCLIRunStats(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbprun := buildTool(t, dir, "lbp-run")
	chromePath := filepath.Join(dir, "trace.json")
	out := runTool(t, lbprun, "-cores", "2", "-digest", "-stats", "-chrome", chromePath, "testdata/vecsum.c")
	for _, want := range []string{
		"cycle attribution", "commit", "hart-free", "retired by class",
		"stage occupancy", "link wait cycles", "memory latency",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
	if digestLine(t, out) != digestLine(t, runTool(t, lbprun, "-cores", "2", "-digest", "testdata/vecsum.c")) {
		t.Error("-stats changed the event-trace digest")
	}
	data, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("-chrome trace is empty")
	}
}

// TestCLIBenchPhasesValidation: a non-positive -phases is a usage error
// (exit 2) before any simulation runs — pre-validation it would produce
// a response report with a wrapped-around jitter of ~1.8e19 cycles.
func TestCLIBenchPhasesValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "lbp-bench")
	for _, bad := range []string{"0", "-5"} {
		out, err := exec.Command(bench, "-fig", "response", "-phases", bad).CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Errorf("-phases %s: err = %v, want exit code 2\n%s", bad, err, out)
		}
		if !strings.Contains(string(out), "must be positive") {
			t.Errorf("-phases %s error message: %s", bad, out)
		}
	}
	out := runTool(t, bench, "-fig", "response", "-phases", "4")
	if !strings.Contains(out, "phases: 4") {
		t.Errorf("-phases 4 output:\n%s", out)
	}
}

// TestCLIBenchProfileRecord: -profile embeds the counter snapshot — with
// per-stall-cause cycles and per-link-class waits — in BENCH_fig19.json.
func TestCLIBenchProfileRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "lbp-bench")
	cmd := exec.Command(bench, "-fig", "19", "-json", "-profile", "-outdir", dir)
	cmd.Stderr = nil
	if _, err := cmd.Output(); err != nil {
		t.Fatalf("-profile run: %v", err)
	}
	var rec struct {
		Profile bool `json:"profile"`
		Rows    []struct {
			Variant string `json:"Variant"`
			Perf    *struct {
				HartCycles   uint64 `json:"hartCycles"`
				CommitCycles uint64 `json:"commitCycles"`
				Stalls       []struct {
					Name  string `json:"name"`
					Value uint64 `json:"value"`
				} `json:"stallCycles"`
				LinkWait []struct {
					Name  string `json:"name"`
					Value uint64 `json:"value"`
				} `json:"linkWaitCycles"`
			} `json:"Perf"`
		} `json:"rows"`
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_fig19.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.Profile || len(rec.Rows) != 5 {
		t.Fatalf("record: profile=%v rows=%d", rec.Profile, len(rec.Rows))
	}
	for _, r := range rec.Rows {
		if r.Perf == nil {
			t.Fatalf("row %s: no perf snapshot", r.Variant)
		}
		var stalls, waits uint64
		for _, s := range r.Perf.Stalls {
			stalls += s.Value
		}
		for _, w := range r.Perf.LinkWait {
			waits += w.Value
		}
		if r.Perf.CommitCycles+stalls != r.Perf.HartCycles {
			t.Errorf("row %s: attribution not exact: %d + %d != %d",
				r.Variant, r.Perf.CommitCycles, stalls, r.Perf.HartCycles)
		}
		if waits == 0 {
			t.Errorf("row %s: no link-wait cycles recorded", r.Variant)
		}
	}
}

// TestCLIRunBankValidation: -bank promises a power of two; reject the rest.
func TestCLIRunBankValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbprun := buildTool(t, dir, "lbp-run")
	for _, bad := range []string{"12345", "0", "4294967296"} {
		out, err := exec.Command(lbprun, "-bank", bad, "testdata/hello.s").CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Errorf("-bank %s: err = %v, want exit code 2\n%s", bad, err, out)
		}
	}
	// a valid power of two still runs
	out := runTool(t, lbprun, "-cores", "1", "-bank", "32768", "testdata/hello.s")
	if !strings.Contains(out, "halt:     exit") {
		t.Errorf("valid -bank run: %s", out)
	}
}

// TestCLIRunWorkersValidation: negative -simworkers or -tail are usage
// errors (exit 2) with a message naming the bad value, matching the
// -bank validation; valid values still run.
func TestCLIRunWorkersValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbprun := buildTool(t, dir, "lbp-run")
	for _, args := range [][]string{
		{"-simworkers", "-1", "testdata/hello.s"},
		{"-simworkers", "-8", "testdata/hello.s"},
		{"-tail", "-3", "testdata/hello.s"},
	} {
		out, err := exec.Command(lbprun, args...).CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Errorf("%v: err = %v, want exit code 2\n%s", args, err, out)
		}
		if !strings.Contains(string(out), "must not be negative") {
			t.Errorf("%v error message: %s", args, out)
		}
	}
	out := runTool(t, lbprun, "-cores", "1", "-simworkers", "2", "-tail", "0", "testdata/hello.s")
	if !strings.Contains(out, "halt:     exit") {
		t.Errorf("valid -simworkers run: %s", out)
	}
}

// TestCLICoresValidation: every entry point bounds the machine geometry
// to [1, 1024] cores. lbp-run and lbp-cc reject out-of-range -cores as a
// usage error (exit 2) naming the bound; in-range values still run.
func TestCLICoresValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbprun := buildTool(t, dir, "lbp-run")
	lbpcc := buildTool(t, dir, "lbp-cc")
	for _, tc := range []struct {
		bin  string
		args []string
	}{
		{lbprun, []string{"-cores", "0", "testdata/hello.s"}},
		{lbprun, []string{"-cores", "-3", "testdata/hello.s"}},
		{lbprun, []string{"-cores", "1025", "testdata/hello.s"}},
		{lbpcc, []string{"-cores", "-1", "testdata/vecsum.c"}},
		{lbpcc, []string{"-cores", "2000", "testdata/vecsum.c"}},
	} {
		out, err := exec.Command(tc.bin, tc.args...).CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Errorf("%s %v: err = %v, want exit code 2\n%s", filepath.Base(tc.bin), tc.args, err, out)
		}
		if !strings.Contains(string(out), "[1, 1024]") {
			t.Errorf("%s %v error message must name the bound: %s", filepath.Base(tc.bin), tc.args, out)
		}
	}
	// The boundary geometries themselves are accepted: 1 core runs, and
	// 1024 cores build (lbp-cc only places banks, so it stays cheap).
	out := runTool(t, lbprun, "-cores", "1", "testdata/hello.s")
	if !strings.Contains(out, "halt:     exit") {
		t.Errorf("-cores 1 run: %s", out)
	}
	cc := runTool(t, lbpcc, "-cores", "1024", "testdata/vecsum.c")
	if !strings.Contains(cc, "LBP_parallel_start") {
		t.Errorf("-cores 1024 compile: %.300s", cc)
	}
}

// TestCLICheckpointResume is E13 end to end: a run that periodically
// serializes its state, then a second process resuming the last saved
// checkpoint, must finish with exactly the digest of an uninterrupted
// run. Also covers the flag-pairing and resume usage errors.
func TestCLICheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbprun := buildTool(t, dir, "lbp-run")
	single := digestLine(t, runTool(t, lbprun, "-cores", "2", "-digest", "testdata/vecsum.c"))

	ckpt := filepath.Join(dir, "vecsum.ckpt")
	out := runTool(t, lbprun, "-cores", "2", "-digest", "-checkpoint", ckpt, "-every", "500", "testdata/vecsum.c")
	if digestLine(t, out) != single {
		t.Errorf("checkpointing changed the digest:\n%s\nwant %s", out, single)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	resumed := runTool(t, lbprun, "-resume", ckpt, "-digest")
	if !strings.Contains(resumed, "halt:     exit") {
		t.Fatalf("resumed run: %s", resumed)
	}
	if digestLine(t, resumed) != single {
		t.Errorf("resumed digest differs:\n%s\nwant %s", digestLine(t, resumed), single)
	}

	for _, args := range [][]string{
		{"-checkpoint", ckpt, "testdata/vecsum.c"}, // -checkpoint without -every
		{"-every", "500", "testdata/vecsum.c"},     // -every without -checkpoint
		{"-resume", ckpt, "testdata/vecsum.c"},     // resume with a program argument
	} {
		out, err := exec.Command(lbprun, args...).CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Errorf("%v: err = %v, want exit code 2\n%s", args, err, out)
		}
	}

	// A checkpoint from an untraced run cannot satisfy -digest on resume.
	plain := filepath.Join(dir, "plain.ckpt")
	runTool(t, lbprun, "-cores", "2", "-checkpoint", plain, "-every", "500", "testdata/vecsum.c")
	out2, err := exec.Command(lbprun, "-resume", plain, "-digest").CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Errorf("-resume -digest on untraced checkpoint: err = %v, want exit 1\n%s", err, out2)
	}
	if !strings.Contains(string(out2), "no trace recorder") {
		t.Errorf("error message: %s", out2)
	}
}

// TestCLIResumeChromeNeedsRing: resuming a digest-only checkpoint with
// -chrome used to write an empty/partial trace silently (the recorder
// exists, but retains no events); it must fail like -digest/-tail on an
// untraced checkpoint, hinting at -tail. With a ring retained, -chrome
// still works after resume.
func TestCLIResumeChromeNeedsRing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbprun := buildTool(t, dir, "lbp-run")

	// Digest-only original: recorder present, ring empty.
	ckpt := filepath.Join(dir, "digestonly.ckpt")
	runTool(t, lbprun, "-cores", "2", "-digest", "-checkpoint", ckpt, "-every", "500", "testdata/vecsum.c")
	chrome := filepath.Join(dir, "trace.json")
	out, err := exec.Command(lbprun, "-resume", ckpt, "-chrome", chrome).CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Errorf("-resume -chrome on ringless checkpoint: err = %v, want exit 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "no trace ring") || !strings.Contains(string(out), "-tail") {
		t.Errorf("error message must hint at -tail: %s", out)
	}
	if _, err := os.Stat(chrome); err == nil {
		t.Error("a partial chrome trace was written despite the error")
	}

	// With a retained ring the resumed -chrome export works.
	ckpt2 := filepath.Join(dir, "ringed.ckpt")
	runTool(t, lbprun, "-cores", "2", "-tail", "64", "-checkpoint", ckpt2, "-every", "500", "testdata/vecsum.c")
	resumed := runTool(t, lbprun, "-resume", ckpt2, "-chrome", chrome)
	if !strings.Contains(resumed, "trace written to") {
		t.Fatalf("resumed -chrome run: %s", resumed)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Errorf("resumed chrome trace invalid (err=%v, %d events)", err, len(doc.TraceEvents))
	}
}

// TestCLIBenchdiffToleranceValidation: -tolerance outside [0, 1) is a
// usage error — negative fails every comparison, >= 1 silently disables
// the throughput guard.
func TestCLIBenchdiffToleranceValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	benchdiff := buildTool(t, dir, "benchdiff")
	for _, bad := range []string{"-0.1", "1", "1.5"} {
		out, err := exec.Command(benchdiff, "-tolerance", bad, "BENCH_fig19.json", "BENCH_fig19.json").CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Errorf("-tolerance %s: err = %v, want exit code 2\n%s", bad, err, out)
		}
		if !strings.Contains(string(out), "must be in [0, 1)") {
			t.Errorf("-tolerance %s error message: %s", bad, out)
		}
	}
	// A record always agrees with itself under a valid tolerance.
	out := runTool(t, benchdiff, "-tolerance", "0.5", "BENCH_fig19.json", "BENCH_fig19.json")
	if !strings.Contains(out, "OK") {
		t.Errorf("self-compare: %s", out)
	}
}

// TestCLIServeSmoke drives the lbp-serve daemon over real HTTP: start
// on an ephemeral port, check /healthz, run one job, verify its digest
// matches a local lbp-run of the same program, and shut down cleanly
// on SIGTERM.
func TestCLIServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbpserve := buildTool(t, dir, "lbp-serve")
	lbprun := buildTool(t, dir, "lbp-run")

	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(lbpserve, "-addr", "127.0.0.1:0", "-addrfile", addrFile)
	var logBuf strings.Builder
	cmd.Stdout = &logBuf
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	var addr string
	for i := 0; i < 100; i++ {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote its address; log:\n%s", logBuf.String())
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}

	src, err := os.ReadFile("testdata/vecsum.c")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"source": string(src), "cores": 2, "digest": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post("http://"+addr+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var jr struct {
		Status string `json:"status"`
		Halt   string `json:"halt"`
		Digest uint64 `json:"digest"`
		Events uint64 `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || jr.Status != "ok" || jr.Halt != "exit" {
		t.Fatalf("job: HTTP %d decode err %v result %+v", resp.StatusCode, err, jr)
	}
	want := digestLine(t, runTool(t, lbprun, "-cores", "2", "-digest", "testdata/vecsum.c"))
	if got := fmt.Sprintf("digest:   %#x over %d events", jr.Digest, jr.Events); got != want {
		t.Errorf("served digest %q differs from local run %q", got, want)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("SIGTERM shutdown: %v; log:\n%s", err, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "drained") {
		t.Errorf("server did not drain cleanly:\n%s", logBuf.String())
	}
}

// TestCLICCBankValidation: lbp-cc promises a power-of-two -bank, like
// lbp-run; a bad -bank or an oversized -reserve must be a usage error
// instead of a silent uint32 truncation.
func TestCLICCBankValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbpcc := buildTool(t, dir, "lbp-cc")
	for _, args := range [][]string{
		{"-bank", "12345", "testdata/vecsum.c"},
		{"-bank", "0", "testdata/vecsum.c"},
		{"-bank", "4294967296", "testdata/vecsum.c"},
		{"-bank", "8192", "-reserve", "8192", "testdata/vecsum.c"},
	} {
		out, err := exec.Command(lbpcc, args...).CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Errorf("%v: err = %v, want exit code 2\n%s", args, err, out)
		}
		if !strings.Contains(string(out), "must be") {
			t.Errorf("%v error message: %s", args, out)
		}
	}
	// A valid bank/reserve pair still compiles.
	out := runTool(t, lbpcc, "-cores", "2", "-bank", "32768", "-reserve", "4096", "testdata/vecsum.c")
	if !strings.Contains(out, "LBP_parallel_start") {
		t.Errorf("valid -bank compile: %.300s", out)
	}
}

// TestCLIBenchProfileCloseError: a -memprofile that cannot be written
// must be reported and make the run exit 1 — not silently leave a
// truncated or missing profile behind next to a zero exit status.
func TestCLIBenchProfileCloseError(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "lbp-bench")
	// The profile path is a directory: os.Create fails after the figure
	// has otherwise completed successfully.
	out, err := exec.Command(bench, "-fig", "locality", "-outdir", dir, "-memprofile", dir).CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("-memprofile <dir>: err = %v, want exit code 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "-memprofile") {
		t.Errorf("error message must name the flag:\n%s", out)
	}
	// A writable path keeps the run green and leaves a non-empty profile.
	prof := filepath.Join(dir, "mem.pb.gz")
	runTool(t, bench, "-fig", "locality", "-outdir", dir, "-memprofile", prof)
	if fi, err := os.Stat(prof); err != nil || fi.Size() == 0 {
		t.Errorf("profile not written: %v", err)
	}
}

// TestCLIFuzzSmoke: a tiny fixed-seed lbp-fuzz campaign must complete
// with zero divergences and a summary line; bad flags are usage errors.
func TestCLIFuzzSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbpfuzz := buildTool(t, dir, "lbp-fuzz")
	out := runTool(t, lbpfuzz, "-n", "5", "-seed", "1", "-crashdir", filepath.Join(dir, "crashes"))
	if !strings.Contains(out, "5 programs") || !strings.Contains(out, "0 failures") {
		t.Errorf("summary: %s", out)
	}
	for _, args := range [][]string{
		{"-n", "0"},
		{"-workers", "1,x"},
		{"-ffwd", "sometimes"},
		{"-maxcores", "0"},
	} {
		out, err := exec.Command(lbpfuzz, args...).CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Errorf("%v: err = %v, want exit code 2\n%s", args, err, out)
		}
	}
}

func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	lbprun := buildTool(t, dir, "lbp-run")
	bad := filepath.Join(dir, "bad.c")
	os.WriteFile(bad, []byte("void main() { undefined_fn(); }"), 0o644)
	out, err := exec.Command(lbprun, bad).CombinedOutput()
	if err == nil {
		t.Errorf("bad program must fail, got:\n%s", out)
	}
	if !strings.Contains(string(out), "undefined") {
		t.Errorf("error message: %s", out)
	}
}

// Every example program must run to completion and print its headline.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := map[string]string{
		"quickstart": "cycle-deterministic",
		"matmul":     "verified",
		"sensors":    "actuator",
		"reduction":  "want 768",
		"pipeline":   "identical",
		"dma":        "no interrupts",
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
