// A parallel reduction: the OpenMP reduction clause is lowered to the
// backward inter-core line — each team member p_swre-sends its partial
// sum to the creator hart's result buffer, and the creator accumulates
// after the hardware join (Section 4 of the paper: "a team [can] produce
// a reduction value and have its ... member send it to the join hart").
//
//	go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/sim"
)

const source = `
#include <det_omp.h>
#define NUM_HART 16
#define N 256

int data[N] = {[0 ... 255] = 3};
int total;

void main() {
	int t;
	total = 0;
	#pragma omp parallel for reduction(+:total)
	for (t = 0; t < NUM_HART; t++) {
		int i;
		int *p;
		p = data + t * (N / NUM_HART);
		for (i = 0; i < N / NUM_HART; i++) {
			total += *p;
			p = p + 1;
		}
	}
}
`

func main() {
	asmText, err := cc.BuildProgram(source, cc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := sim.New(sim.Spec{Program: prog, Cores: 4, MaxCycles: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	total, _ := sess.Machine().ReadShared(prog.Symbols["total"])
	fmt.Printf("sum of 256 threes, reduced over 16 harts: %d (want 768)\n", total)
	fmt.Printf("cycles: %d, backward-line sends: %d\n",
		res.Stats.Cycles, res.Stats.RemoteSends)
}
