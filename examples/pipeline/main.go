// Deterministic MPI (the paper's Section 8 perspective): an ordered
// communicator where senders always precede their receivers. This
// example builds an 8-rank pipeline — rank 0 injects a value, each rank
// transforms and forwards it — and shows the transfer is exactly
// reproducible.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/detmpi"
	"repro/internal/sim"
)

const user = `
int seen[DMPI_NR];

void dmpi_main(int me, int nranks) {
	int v;
	if (me == 0) {
		v = 1;
	} else {
		v = dmpi_recv(me, me - 1);   /* blocks on the sender's mailbox */
	}
	seen[me] = v;
	if (me < nranks - 1) {
		dmpi_send(me, me + 1, v * 2 + 1);
	}
}
`

func main() {
	src, err := detmpi.Program(8, user)
	if err != nil {
		log.Fatal(err)
	}
	opt := cc.DefaultOptions()
	opt.Cores = 2
	asmText, err := cc.BuildProgram(src, opt)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	run := func() ([]uint32, uint64, uint64) {
		sess, err := sim.New(sim.Spec{
			Program:   prog,
			Cores:     2,
			MaxCycles: 10_000_000,
			Trace:     sim.TraceSpec{Digest: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		vals, _ := sess.Machine().ReadSharedSlice(prog.Symbols["seen"], 8)
		return vals, res.Stats.Cycles, sess.Recorder().Digest()
	}
	v1, c1, d1 := run()
	v2, c2, d2 := run()
	fmt.Println("pipeline values per rank:", v1)
	fmt.Printf("run 1: %d cycles, digest %#x\n", c1, d1)
	fmt.Printf("run 2: %d cycles, digest %#x\n", c2, d2)
	if c1 == c2 && d1 == d2 {
		fmt.Println("identical: message passing on LBP is cycle-deterministic")
	}
	_ = v2
}
