// Quickstart: compile a Deterministic OpenMP program from source, run it
// on a simulated 4-core LBP and read the results back from shared memory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/sim"
)

// A classic OpenMP-style program: the only Deterministic OpenMP change is
// the header name, exactly as in Figure 1 of the paper. The parallel-for
// pragma creates a team of 16 harts — one per iteration — placed along
// the LBP core line by the hardware fork instructions.
const source = `
#include <det_omp.h>
#define NUM_HART 16

int squares[NUM_HART];

void thread(int t) {
	squares[t] = t * t;
}

void main() {
	int t;
	omp_set_num_threads(NUM_HART);
	#pragma omp parallel for
	for (t = 0; t < NUM_HART; t++) thread(t);
}
`

func main() {
	// compile MiniC -> X_PAR assembly (the detomp runtime is appended)
	asmText, err := cc.BuildProgram(source, cc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	// assemble -> program image
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// run on a 4-core (16-hart) LBP
	sess, err := sim.New(sim.Spec{Program: prog, Cores: 4, MaxCycles: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	vals, _ := sess.Machine().ReadSharedSlice(prog.Symbols["squares"], 16)
	fmt.Println("squares:", vals)
	fmt.Printf("cycles: %d, retired: %d, IPC: %.2f, forks: %d, joins: %d\n",
		res.Stats.Cycles, res.Stats.Retired, res.Stats.IPC(),
		res.Stats.Forks, res.Stats.Joins)
	fmt.Println("run it twice: the cycle count is identical — LBP is cycle-deterministic")
}
