// The non-interruptible I/O example of Section 6 (Figures 16-17): four
// sensors answer in arbitrary order, four harts poll them in a parallel
// sections team, and the fused value drives an actuator. LBP takes no
// interrupts; the static position of the reads fixes the semantics, so
// the fused output is deterministic even though the arrival times are
// not.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	asmText, err := cc.BuildProgram(workloads.SensorFusionSource(3), cc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// three rounds of sensor inputs; note round 2 arrives in reverse order
	var devices []lbp.Device
	for i := 0; i < 4; i++ {
		devices = append(devices, &lbp.Sensor{
			Name:      fmt.Sprintf("sensor%d", i),
			ValueAddr: prog.Symbols["sval"] + uint32(4*i),
			FlagAddr:  prog.Symbols["sflag"] + uint32(4*i),
			Events: []lbp.SensorEvent{
				{Cycle: 1000 + uint64(211*i), Value: uint32(10 + i)},
				{Cycle: 20000 + uint64(211*(3-i)), Value: uint32(100 * (i + 1))},
				{Cycle: 40000, Value: uint32(7)},
			},
		})
	}
	act := &lbp.Actuator{
		Name:      "actuator",
		ValueAddr: prog.Symbols["factuator"],
		SeqAddr:   prog.Symbols["aseq"],
	}
	devices = append(devices, act)
	sess, err := sim.New(sim.Spec{
		Program:   prog,
		Cores:     1,
		Devices:   devices,
		MaxCycles: 10_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run finished in %d cycles (%d instructions)\n",
		res.Stats.Cycles, res.Stats.Retired)
	for i, w := range act.Writes {
		fmt.Printf("round %d: actuator <- %d at cycle %d\n", i, w.Value, w.Cycle)
	}
}
