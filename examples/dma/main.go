// The DMA pattern of Section 6: one hart acts as an input controller,
// filling every consumer's shared bank with streamed data and releasing
// each consumer through the backward result line (p_swre/p_lwre) —
// no interrupts anywhere.
//
//	go run ./examples/dma
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/lbp"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	const nt = 16
	src := workloads.DMASource(nt)
	opt := cc.DefaultOptions()
	opt.Cores = nt / 4
	opt.BankReserveBytes = 512
	asmText, err := cc.BuildProgram(src, opt)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	events := make([]lbp.SensorEvent, nt-1)
	for i := range events {
		events[i] = lbp.SensorEvent{Cycle: 1500 + uint64(150*i), Value: uint32(10 * (i + 1))}
	}
	stream := &lbp.Sensor{
		Name:      "stream",
		ValueAddr: prog.Symbols["inval"],
		FlagAddr:  prog.Symbols["inflag"],
		Events:    events,
	}
	sess, err := sim.New(sim.Spec{
		Program:   prog,
		Cores:     nt / 4,
		Devices:   []lbp.Device{stream},
		MaxCycles: 10_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	out, _ := sess.Machine().ReadSharedSlice(prog.Symbols["out"], nt-1)
	fmt.Println("consumer results (datum*2 + release token):", out)
	fmt.Printf("cycles: %d, backward-line releases: %d, no interrupts taken (LBP has none)\n",
		res.Stats.Cycles, res.Stats.RemoteSends)
}
