// The paper's main experiment (Section 7): one of the five matrix
// multiplication versions on an LBP machine sized h/4 cores.
//
//	go run ./examples/matmul -variant tiled -harts 64
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/figures"
	"repro/internal/workloads"
)

func main() {
	variant := flag.String("variant", "base", "base|copy|distributed|d+c|tiled")
	harts := flag.Int("harts", 16, "team size (16, 64 or 256)")
	flag.Parse()
	v := workloads.MatmulVariant(*variant)
	row, err := figures.RunMatmul(v, *harts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d cores (%d harts): X(%dx%d) * Y(%dx%d) -> Z verified\n",
		v, *harts/4, *harts, *harts, *harts/2, *harts/2, *harts)
	fmt.Printf("cycles:  %d\n", row.Cycles)
	fmt.Printf("retired: %d\n", row.Retired)
	fmt.Printf("IPC:     %.2f (peak %d)\n", row.IPC, *harts/4)
	fmt.Printf("shared accesses: %d remote, %d local\n", row.Remote, row.Local)
}
