// lbp-serve is the batching simulation service: a long-running
// HTTP/JSON daemon that accepts simulation jobs and runs them on warm
// machines from a shared sim.Pool through a bounded worker pool.
//
// Usage:
//
//	lbp-serve [-addr HOST:PORT] [-workers N] [-queue N] [-deadline D]
//	          [-maxcycles N] [-slice N] [-ckptdir DIR] [-drain D]
//	          [-pool-per-key N] [-pool-total N] [-addrfile FILE]
//	          [-cachedir DIR] [-cachemax BYTES]
//	lbp-serve -worker HOST:PORT [-slice N] [-pool-per-key N]
//	          [-pool-total N] [-addrfile FILE]
//	lbp-serve -backends A,B,C [-per-backend N] [-steal-depth N]
//	          [-ckpt-every N] [-retries N] [...front-end flags]
//
// Endpoints:
//
//	POST /jobs     run one simulation job (JSON in, JSON out)
//	GET  /healthz  liveness ("ok", or 503 while draining)
//	GET  /metrics  Prometheus text format counters
//
// A job carries MiniC or assembly source (or a serialized image),
// machine geometry and observer options; the response embeds the
// deterministic digest and perf snapshot, so any client can verify the
// result bit-for-bit against a local lbp-run of the same program.
//
// Every run is deterministic, so results are pure functions of the
// canonical job. With -cachedir set, the server keeps a
// content-addressed result cache on disk (bounded to -cachemax bytes,
// least recently used evicted first): a repeat job is answered from the
// cache without simulating a cycle, byte-identical in every
// deterministic field and marked "cached": true.
//
// Admission is bounded: when the queue is full the server answers 429
// with Retry-After instead of queueing without limit. On SIGINT or
// SIGTERM the server stops admitting, drains queued and in-flight jobs
// for up to -drain, then preempts still-running jobs at their next
// slice boundary and checkpoints them to -ckptdir (resume offline with
// lbp-run -resume).
//
// -addr :0 picks an ephemeral port; -addrfile writes the bound address
// to a file once listening, for scripts that need to find the port.
//
// Distributed serving splits the binary into two roles. `-worker
// HOST:PORT` runs a headless worker: a JSON-RPC server executing
// dispatched jobs on its own warm pool, no HTTP. `-backends A,B,C`
// runs the HTTP front end as a coordinator: jobs that miss the result
// cache are sharded across the named workers with digest-affine
// routing (repeat jobs land on the worker whose pool is warm for
// them), work stealing when a queue runs deep, and checkpoint
// migration — a job whose worker dies mid-run resumes from its last
// streamed checkpoint on another worker, bit-identical to an
// uninterrupted run. The HTTP surface is unchanged in either mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the bound address to `file` once listening")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth (overflow answers 429)")
	deadline := flag.Duration("deadline", 60*time.Second, "default and maximum per-job wall-clock run time")
	maxCycles := flag.Uint64("maxcycles", 1_000_000_000, "largest acceptable per-job cycle budget")
	slice := flag.Uint64("slice", 1<<20, "cycles per Advance slice between cancellation checks")
	ckptDir := flag.String("ckptdir", "", "directory for checkpoints of jobs preempted by shutdown")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace before in-flight jobs are preempted")
	poolPerKey := flag.Int("pool-per-key", 0, "warm machines kept per configuration (0 = default)")
	poolTotal := flag.Int("pool-total", 0, "warm machines kept in total (0 = default)")
	cacheDir := flag.String("cachedir", "", "content-addressed result cache directory (empty = caching off)")
	cacheMax := flag.Int64("cachemax", 0, "result cache size bound in bytes (0 = 256 MiB)")
	workerAddr := flag.String("worker", "", "run as a headless worker listening on `host:port` (no HTTP)")
	backends := flag.String("backends", "", "run as a coordinator over comma-separated worker `addresses`")
	perBackend := flag.Int("per-backend", 0, "concurrent dispatches per backend (0 = 4)")
	stealDepth := flag.Int("steal-depth", 0, "queue depth before idle backends steal work (0 = 2)")
	ckptEvery := flag.Int64("ckpt-every", 0, "cycles between streamed migration checkpoints (0 = 4M, negative = never)")
	retries := flag.Int("retries", 0, "dispatch attempts before a job fails (0 = one per backend)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: lbp-serve [flags] (it takes no arguments)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *workerAddr != "" && *backends != "" {
		fmt.Fprintln(os.Stderr, "lbp-serve: -worker and -backends are mutually exclusive")
		os.Exit(2)
	}
	if *workerAddr != "" {
		runWorker(*workerAddr, *addrFile, *slice, *poolPerKey, *poolTotal)
		return
	}
	if *queue < 1 {
		fmt.Fprintf(os.Stderr, "lbp-serve: -queue %d must be positive\n", *queue)
		os.Exit(2)
	}
	if *slice == 0 {
		fmt.Fprintln(os.Stderr, "lbp-serve: -slice must be positive")
		os.Exit(2)
	}
	if *cacheMax < 0 {
		fmt.Fprintf(os.Stderr, "lbp-serve: -cachemax %d must not be negative\n", *cacheMax)
		os.Exit(2)
	}
	if *cacheMax > 0 && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "lbp-serve: -cachemax needs -cachedir")
		os.Exit(2)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
	}
	var store *cache.Store
	if *cacheDir != "" {
		var err error
		if store, err = cache.Open(*cacheDir, *cacheMax); err != nil {
			fatal(err)
		}
	}

	var coord *dispatch.Coordinator
	if *backends != "" {
		var err error
		coord, err = dispatch.New(dispatch.Config{
			Backends:        strings.Split(*backends, ","),
			PerBackend:      *perBackend,
			QueueDepth:      *queue,
			StealDepth:      *stealDepth,
			Attempts:        *retries,
			CheckpointEvery: *ckptEvery,
		})
		if err != nil {
			fatal(err)
		}
	}

	cfg := serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxCyclesCap:  *maxCycles,
		Deadline:      *deadline,
		Slice:         *slice,
		CheckpointDir: *ckptDir,
		PoolPerKey:    *poolPerKey,
		PoolTotal:     *poolTotal,
		Cache:         store,
	}
	if coord != nil {
		cfg.Dispatcher = coord
	}
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	fmt.Printf("lbp-serve: listening on http://%s\n", bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("lbp-serve: %s: draining (grace %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "lbp-serve:", err)
		}
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "lbp-serve:", err)
		}
		if coord != nil {
			if err := coord.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "lbp-serve:", err)
			}
		}
		fmt.Println("lbp-serve: drained, bye")
	case err := <-errc:
		fatal(err)
	}
}

// runWorker is the -worker mode: a headless JSON-RPC job executor on
// its own warm pool. It serves until SIGINT/SIGTERM, then closes —
// running jobs cancel at their next slice boundary and their machines
// flow back through the usual accounting before exit.
func runWorker(addr, addrFile string, slice uint64, poolPerKey, poolTotal int) {
	w := dispatch.NewWorker(dispatch.WorkerConfig{
		Slice:      slice,
		PoolPerKey: poolPerKey,
		PoolTotal:  poolTotal,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	fmt.Printf("lbp-serve: worker listening on %s\n", bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- w.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("lbp-serve: worker: %s: closing\n", sig)
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lbp-serve:", err)
		}
		fmt.Println("lbp-serve: worker: bye")
	case err := <-errc:
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbp-serve:", err)
	os.Exit(1)
}
