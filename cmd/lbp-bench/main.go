// lbp-bench regenerates the paper's evaluation: Figures 19, 20 and 21
// (the five matrix multiplication versions on 4-, 16- and 64-core LBP
// machines, with the Xeon-Phi-like model on Figure 21) and the companion
// experiments of DESIGN.md: cycle determinism (det), latency hiding vs
// hart count (harts), deterministic I/O (io) and two-phase locality
// (locality).
//
// Usage:
//
//	lbp-bench -fig 19|20|21|det|harts|io|locality|all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/figures"
	"repro/internal/lbp"
	"repro/internal/phimodel"
	"repro/internal/workloads"
)

func main() {
	fig := flag.String("fig", "all", "which figure/experiment to run: 19|20|21|det|harts|io|locality|ablate|chips|response|all")
	asJSON := flag.Bool("json", false, "emit matmul figure rows as JSON instead of tables")
	flag.Parse()
	jsonMode = *asJSON
	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "lbp-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	run("19", func() error { return matmulFigure(16) })
	run("20", func() error { return matmulFigure(64) })
	run("21", func() error { return matmulFigure(256) })
	run("det", determinism)
	run("harts", ablation)
	run("io", ioExperiment)
	run("locality", locality)
	run("ablate", designAblations)
	run("chips", chips)
	run("response", response)
}

var jsonMode bool

func matmulFigure(h int) error {
	rows, err := figures.RunMatmulFigure(h)
	if err != nil {
		return err
	}
	var phi *phimodel.Result
	if h == 256 {
		r := phimodel.Default().TiledMatmul(256)
		phi = &r
	}
	if jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Figure int                 `json:"figure"`
			Rows   []figures.MatmulRow `json:"rows"`
			Phi    *phimodel.Result    `json:"xeonPhiModel,omitempty"`
		}{figures.FigureForHarts(h), rows, phi})
	}
	fmt.Print(figures.FormatMatmulFigure(rows, phi))
	return nil
}

func determinism() error {
	var reports []figures.DetReport
	for _, v := range workloads.Variants {
		rep, err := figures.RunDeterminism(v, 16, 3)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	fmt.Print(figures.FormatDeterminism(reports))
	return nil
}

func ablation() error {
	rows, err := figures.RunHartAblation(20000)
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblation(rows))
	return nil
}

func locality() error {
	var rows []figures.LocalityRow
	for _, h := range []int{16, 64} {
		row, err := figures.RunLocality(h, 128)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	fmt.Print(figures.FormatLocality(rows))
	return nil
}

// designAblations sweeps the machine parameters DESIGN.md calls out.
func designAblations() error {
	hop, err := figures.RunHopLatAblation(workloads.Base, 16, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints("E8a — router hop latency sweep (base, 16 harts)", hop))
	bank, err := figures.RunBankLatAblation(workloads.Base, 16, []int{1, 3, 6, 12})
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints("E8b — shared-bank latency sweep (base, 16 harts)", bank))
	mo, err := figures.RunMemOrderAblation(workloads.Copy, 16)
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints("E8c — per-hart memory issue order (copy, 16 harts)", mo))
	fu, err := figures.RunFULatAblation(workloads.Base, 16, []int{17, 68})
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints("E8d — divider latency (off the matmul critical path)", fu))
	return nil
}

// response runs the E10 input-to-actuation sweep.
func response() error {
	rep, err := figures.RunResponseSweep(24)
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatResponse(rep))
	return nil
}

// chips runs the Figure 15 multi-chip experiment.
func chips() error {
	pts, err := figures.RunChipAblation(workloads.Base, 16, []int{0, 2, 1}, 25)
	if err != nil {
		return err
	}
	fmt.Print(figures.FormatAblationPoints(
		"E9 — Figure 15 chip lines (4 cores as 1, 2 or 4 chips; 25-cycle edges)", pts))
	return nil
}

// ioExperiment runs the Figure 16 sensor fusion with two different input
// schedules: same fused outputs, different cycle counts (E6).
func ioExperiment() error {
	src := workloads.SensorFusionSource(2)
	asmText, err := cc.BuildProgram(src, cc.DefaultOptions())
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(asmText, asm.Options{})
	if err != nil {
		return err
	}
	runOnce := func(base uint64) (uint64, []lbp.ActuatorWrite, error) {
		m := lbp.New(lbp.DefaultConfig(1))
		if err := m.LoadProgram(prog); err != nil {
			return 0, nil, err
		}
		for i := 0; i < 4; i++ {
			m.AddDevice(&lbp.Sensor{
				ValueAddr: prog.Symbols["sval"] + uint32(4*i),
				FlagAddr:  prog.Symbols["sflag"] + uint32(4*i),
				Events: []lbp.SensorEvent{
					{Cycle: base + uint64(101*i), Value: uint32(10 * (i + 1))},
					{Cycle: 4*base + uint64(57*i), Value: uint32(20 * (i + 1))},
				},
			})
		}
		act := &lbp.Actuator{
			ValueAddr: prog.Symbols["factuator"],
			SeqAddr:   prog.Symbols["aseq"],
		}
		m.AddDevice(act)
		res, err := m.Run(50_000_000)
		if err != nil {
			return 0, nil, err
		}
		return res.Stats.Cycles, act.Writes, nil
	}
	fmt.Println("E6 — Figure 16 sensor fusion under two input schedules")
	for _, base := range []uint64{1000, 9000} {
		cycles, writes, err := runOnce(base)
		if err != nil {
			return err
		}
		fmt.Printf("schedule base=%5d: cycles=%8d actuator:", base, cycles)
		for _, w := range writes {
			fmt.Printf(" (%d @%d)", w.Value, w.Cycle)
		}
		fmt.Println()
	}
	fmt.Println("(same fused values, cycle counts follow the inputs; ordering is preserved)")
	return nil
}
